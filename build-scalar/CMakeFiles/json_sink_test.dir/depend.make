# Empty dependencies file for json_sink_test.
# This may be replaced when dependencies are built.
