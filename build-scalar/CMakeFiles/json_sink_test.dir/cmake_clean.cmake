file(REMOVE_RECURSE
  "CMakeFiles/json_sink_test.dir/tests/json_sink_test.cpp.o"
  "CMakeFiles/json_sink_test.dir/tests/json_sink_test.cpp.o.d"
  "json_sink_test"
  "json_sink_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_sink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
