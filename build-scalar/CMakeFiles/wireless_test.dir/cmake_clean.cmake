file(REMOVE_RECURSE
  "CMakeFiles/wireless_test.dir/tests/wireless_test.cpp.o"
  "CMakeFiles/wireless_test.dir/tests/wireless_test.cpp.o.d"
  "wireless_test"
  "wireless_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wireless_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
