file(REMOVE_RECURSE
  "CMakeFiles/group_explorer.dir/examples/group_explorer.cpp.o"
  "CMakeFiles/group_explorer.dir/examples/group_explorer.cpp.o.d"
  "group_explorer"
  "group_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
