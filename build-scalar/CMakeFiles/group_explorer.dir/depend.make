# Empty dependencies file for group_explorer.
# This may be replaced when dependencies are built.
