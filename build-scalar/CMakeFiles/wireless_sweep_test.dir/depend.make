# Empty dependencies file for wireless_sweep_test.
# This may be replaced when dependencies are built.
