file(REMOVE_RECURSE
  "CMakeFiles/wireless_sweep_test.dir/tests/wireless_sweep_test.cpp.o"
  "CMakeFiles/wireless_sweep_test.dir/tests/wireless_sweep_test.cpp.o.d"
  "wireless_sweep_test"
  "wireless_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wireless_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
