# Empty dependencies file for campus_streaming.
# This may be replaced when dependencies are built.
