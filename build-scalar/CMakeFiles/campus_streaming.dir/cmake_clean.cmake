file(REMOVE_RECURSE
  "CMakeFiles/campus_streaming.dir/examples/campus_streaming.cpp.o"
  "CMakeFiles/campus_streaming.dir/examples/campus_streaming.cpp.o.d"
  "campus_streaming"
  "campus_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
