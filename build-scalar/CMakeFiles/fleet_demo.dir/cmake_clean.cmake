file(REMOVE_RECURSE
  "CMakeFiles/fleet_demo.dir/examples/fleet_demo.cpp.o"
  "CMakeFiles/fleet_demo.dir/examples/fleet_demo.cpp.o.d"
  "fleet_demo"
  "fleet_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
