# Empty dependencies file for fleet_demo.
# This may be replaced when dependencies are built.
