file(REMOVE_RECURSE
  "CMakeFiles/nn_sweep_test.dir/tests/nn_sweep_test.cpp.o"
  "CMakeFiles/nn_sweep_test.dir/tests/nn_sweep_test.cpp.o.d"
  "nn_sweep_test"
  "nn_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
