# Empty dependencies file for nn_sweep_test.
# This may be replaced when dependencies are built.
