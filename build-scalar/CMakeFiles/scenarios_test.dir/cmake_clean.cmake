file(REMOVE_RECURSE
  "CMakeFiles/scenarios_test.dir/tests/scenarios_test.cpp.o"
  "CMakeFiles/scenarios_test.dir/tests/scenarios_test.cpp.o.d"
  "scenarios_test"
  "scenarios_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
