file(REMOVE_RECURSE
  "CMakeFiles/dtmsv_serve.dir/tools/dtmsv_serve.cpp.o"
  "CMakeFiles/dtmsv_serve.dir/tools/dtmsv_serve.cpp.o.d"
  "dtmsv_serve"
  "dtmsv_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtmsv_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
