# Empty dependencies file for dtmsv_serve.
# This may be replaced when dependencies are built.
