file(REMOVE_RECURSE
  "CMakeFiles/video_test.dir/tests/video_test.cpp.o"
  "CMakeFiles/video_test.dir/tests/video_test.cpp.o.d"
  "video_test"
  "video_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
