file(REMOVE_RECURSE
  "CMakeFiles/custom_stage.dir/examples/custom_stage.cpp.o"
  "CMakeFiles/custom_stage.dir/examples/custom_stage.cpp.o.d"
  "custom_stage"
  "custom_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
