# Empty dependencies file for custom_stage.
# This may be replaced when dependencies are built.
