
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/popularity.cpp" "CMakeFiles/dtmsv.dir/src/analysis/popularity.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/analysis/popularity.cpp.o.d"
  "/root/repo/src/analysis/recommend.cpp" "CMakeFiles/dtmsv.dir/src/analysis/recommend.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/analysis/recommend.cpp.o.d"
  "/root/repo/src/analysis/swiping.cpp" "CMakeFiles/dtmsv.dir/src/analysis/swiping.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/analysis/swiping.cpp.o.d"
  "/root/repo/src/behavior/preference.cpp" "CMakeFiles/dtmsv.dir/src/behavior/preference.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/behavior/preference.cpp.o.d"
  "/root/repo/src/behavior/session.cpp" "CMakeFiles/dtmsv.dir/src/behavior/session.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/behavior/session.cpp.o.d"
  "/root/repo/src/cli/scenario_loader.cpp" "CMakeFiles/dtmsv.dir/src/cli/scenario_loader.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/cli/scenario_loader.cpp.o.d"
  "/root/repo/src/cli/serve_loader.cpp" "CMakeFiles/dtmsv.dir/src/cli/serve_loader.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/cli/serve_loader.cpp.o.d"
  "/root/repo/src/clustering/kmeans.cpp" "CMakeFiles/dtmsv.dir/src/clustering/kmeans.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/clustering/kmeans.cpp.o.d"
  "/root/repo/src/clustering/metrics.cpp" "CMakeFiles/dtmsv.dir/src/clustering/metrics.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/clustering/metrics.cpp.o.d"
  "/root/repo/src/clustering/point_matrix.cpp" "CMakeFiles/dtmsv.dir/src/clustering/point_matrix.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/clustering/point_matrix.cpp.o.d"
  "/root/repo/src/clustering/selectors.cpp" "CMakeFiles/dtmsv.dir/src/clustering/selectors.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/clustering/selectors.cpp.o.d"
  "/root/repo/src/core/feature_compressor.cpp" "CMakeFiles/dtmsv.dir/src/core/feature_compressor.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/core/feature_compressor.cpp.o.d"
  "/root/repo/src/core/fleet.cpp" "CMakeFiles/dtmsv.dir/src/core/fleet.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/core/fleet.cpp.o.d"
  "/root/repo/src/core/group_constructor.cpp" "CMakeFiles/dtmsv.dir/src/core/group_constructor.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/core/group_constructor.cpp.o.d"
  "/root/repo/src/core/json_sink.cpp" "CMakeFiles/dtmsv.dir/src/core/json_sink.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/core/json_sink.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "CMakeFiles/dtmsv.dir/src/core/pipeline.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/core/pipeline.cpp.o.d"
  "/root/repo/src/core/scenarios.cpp" "CMakeFiles/dtmsv.dir/src/core/scenarios.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/core/scenarios.cpp.o.d"
  "/root/repo/src/core/serve.cpp" "CMakeFiles/dtmsv.dir/src/core/serve.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/core/serve.cpp.o.d"
  "/root/repo/src/core/serve_workload.cpp" "CMakeFiles/dtmsv.dir/src/core/serve_workload.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/core/serve_workload.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "CMakeFiles/dtmsv.dir/src/core/simulation.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/core/simulation.cpp.o.d"
  "/root/repo/src/mobility/campus_map.cpp" "CMakeFiles/dtmsv.dir/src/mobility/campus_map.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/mobility/campus_map.cpp.o.d"
  "/root/repo/src/mobility/random_waypoint.cpp" "CMakeFiles/dtmsv.dir/src/mobility/random_waypoint.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/mobility/random_waypoint.cpp.o.d"
  "/root/repo/src/nn/activations.cpp" "CMakeFiles/dtmsv.dir/src/nn/activations.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/nn/activations.cpp.o.d"
  "/root/repo/src/nn/conv1d.cpp" "CMakeFiles/dtmsv.dir/src/nn/conv1d.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/nn/conv1d.cpp.o.d"
  "/root/repo/src/nn/gradient_check.cpp" "CMakeFiles/dtmsv.dir/src/nn/gradient_check.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/nn/gradient_check.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "CMakeFiles/dtmsv.dir/src/nn/init.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/nn/init.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "CMakeFiles/dtmsv.dir/src/nn/linear.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "CMakeFiles/dtmsv.dir/src/nn/loss.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/nn/loss.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "CMakeFiles/dtmsv.dir/src/nn/optimizer.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "CMakeFiles/dtmsv.dir/src/nn/pooling.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/nn/pooling.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "CMakeFiles/dtmsv.dir/src/nn/sequential.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/nn/sequential.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "CMakeFiles/dtmsv.dir/src/nn/serialize.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/nn/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "CMakeFiles/dtmsv.dir/src/nn/tensor.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/nn/tensor.cpp.o.d"
  "/root/repo/src/predict/baselines.cpp" "CMakeFiles/dtmsv.dir/src/predict/baselines.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/predict/baselines.cpp.o.d"
  "/root/repo/src/predict/channel_predictor.cpp" "CMakeFiles/dtmsv.dir/src/predict/channel_predictor.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/predict/channel_predictor.cpp.o.d"
  "/root/repo/src/predict/demand.cpp" "CMakeFiles/dtmsv.dir/src/predict/demand.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/predict/demand.cpp.o.d"
  "/root/repo/src/predict/planner.cpp" "CMakeFiles/dtmsv.dir/src/predict/planner.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/predict/planner.cpp.o.d"
  "/root/repo/src/rl/ddqn.cpp" "CMakeFiles/dtmsv.dir/src/rl/ddqn.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/rl/ddqn.cpp.o.d"
  "/root/repo/src/rl/replay_buffer.cpp" "CMakeFiles/dtmsv.dir/src/rl/replay_buffer.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/rl/replay_buffer.cpp.o.d"
  "/root/repo/src/twin/collector.cpp" "CMakeFiles/dtmsv.dir/src/twin/collector.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/twin/collector.cpp.o.d"
  "/root/repo/src/twin/column_store.cpp" "CMakeFiles/dtmsv.dir/src/twin/column_store.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/twin/column_store.cpp.o.d"
  "/root/repo/src/twin/store.cpp" "CMakeFiles/dtmsv.dir/src/twin/store.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/twin/store.cpp.o.d"
  "/root/repo/src/twin/udt.cpp" "CMakeFiles/dtmsv.dir/src/twin/udt.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/twin/udt.cpp.o.d"
  "/root/repo/src/util/config.cpp" "CMakeFiles/dtmsv.dir/src/util/config.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/util/config.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/dtmsv.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/error.cpp" "CMakeFiles/dtmsv.dir/src/util/error.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/util/error.cpp.o.d"
  "/root/repo/src/util/parallel.cpp" "CMakeFiles/dtmsv.dir/src/util/parallel.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/util/parallel.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/dtmsv.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/dtmsv.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/dtmsv.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/util/table.cpp.o.d"
  "/root/repo/src/video/catalog.cpp" "CMakeFiles/dtmsv.dir/src/video/catalog.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/video/catalog.cpp.o.d"
  "/root/repo/src/video/dataset.cpp" "CMakeFiles/dtmsv.dir/src/video/dataset.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/video/dataset.cpp.o.d"
  "/root/repo/src/video/transcode.cpp" "CMakeFiles/dtmsv.dir/src/video/transcode.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/video/transcode.cpp.o.d"
  "/root/repo/src/wireless/channel.cpp" "CMakeFiles/dtmsv.dir/src/wireless/channel.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/wireless/channel.cpp.o.d"
  "/root/repo/src/wireless/cqi.cpp" "CMakeFiles/dtmsv.dir/src/wireless/cqi.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/wireless/cqi.cpp.o.d"
  "/root/repo/src/wireless/fading.cpp" "CMakeFiles/dtmsv.dir/src/wireless/fading.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/wireless/fading.cpp.o.d"
  "/root/repo/src/wireless/multicast.cpp" "CMakeFiles/dtmsv.dir/src/wireless/multicast.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/wireless/multicast.cpp.o.d"
  "/root/repo/src/wireless/pathloss.cpp" "CMakeFiles/dtmsv.dir/src/wireless/pathloss.cpp.o" "gcc" "CMakeFiles/dtmsv.dir/src/wireless/pathloss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
