file(REMOVE_RECURSE
  "libdtmsv.a"
)
