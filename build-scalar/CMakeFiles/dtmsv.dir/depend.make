# Empty dependencies file for dtmsv.
# This may be replaced when dependencies are built.
