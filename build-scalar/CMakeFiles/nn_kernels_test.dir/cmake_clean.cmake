file(REMOVE_RECURSE
  "CMakeFiles/nn_kernels_test.dir/tests/nn_kernels_test.cpp.o"
  "CMakeFiles/nn_kernels_test.dir/tests/nn_kernels_test.cpp.o.d"
  "nn_kernels_test"
  "nn_kernels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
