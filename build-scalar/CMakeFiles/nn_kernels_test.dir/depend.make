# Empty dependencies file for nn_kernels_test.
# This may be replaced when dependencies are built.
