file(REMOVE_RECURSE
  "CMakeFiles/point_matrix_test.dir/tests/point_matrix_test.cpp.o"
  "CMakeFiles/point_matrix_test.dir/tests/point_matrix_test.cpp.o.d"
  "point_matrix_test"
  "point_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/point_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
