# Empty dependencies file for point_matrix_test.
# This may be replaced when dependencies are built.
