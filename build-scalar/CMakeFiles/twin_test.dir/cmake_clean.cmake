file(REMOVE_RECURSE
  "CMakeFiles/twin_test.dir/tests/twin_test.cpp.o"
  "CMakeFiles/twin_test.dir/tests/twin_test.cpp.o.d"
  "twin_test"
  "twin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
