# Empty dependencies file for twin_test.
# This may be replaced when dependencies are built.
