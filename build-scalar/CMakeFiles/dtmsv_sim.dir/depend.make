# Empty dependencies file for dtmsv_sim.
# This may be replaced when dependencies are built.
