file(REMOVE_RECURSE
  "CMakeFiles/dtmsv_sim.dir/tools/dtmsv_sim.cpp.o"
  "CMakeFiles/dtmsv_sim.dir/tools/dtmsv_sim.cpp.o.d"
  "dtmsv_sim"
  "dtmsv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtmsv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
