#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and report per-benchmark deltas.

The CI bench-regression gate: a freshly produced BENCH_*.json is compared
against the committed baseline, per-benchmark time deltas are printed, and
anything slower than the threshold is flagged. By default regressions only
*warn* (hosted-runner noise must never hard-fail a PR); pass --strict to
exit non-zero when a regression exceeds the threshold (for dedicated perf
hardware).

Standard library only, by design.

Usage:
  tools/bench_diff.py BASELINE.json CURRENT.json [--threshold 15]
      [--metric cpu_time|real_time] [--filter REGEX] [--strict]

Exit status: 0 OK (or warnings without --strict), 1 regression with
--strict, 2 unreadable/invalid input.
"""

import argparse
import json
import os
import re
import sys


def die(message):
    print(f"bench_diff: {message}", file=sys.stderr)
    sys.exit(2)


def load_benchmarks(path, metric):
    """Returns {name: time_ns} for the plain iteration entries of `path`."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as err:
        die(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        die(f"{path} is not valid JSON: {err}")
    out = {}
    for entry in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of --benchmark_repetitions);
        # manual emitter entries are run_type == "iteration" as well.
        if entry.get("run_type", "iteration") != "iteration":
            continue
        name = entry.get("name")
        value = entry.get(metric, entry.get("real_time"))
        if name is None or value is None:
            continue
        out[name] = float(value)  # benchmark emits times in ns
    if not out:
        die(f"{path} holds no benchmark entries")
    return out


def format_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if abs(ns) >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def main():
    parser = argparse.ArgumentParser(
        description="Per-benchmark delta report between two google-benchmark "
        "JSON files, with a warn/fail regression threshold."
    )
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=15.0,
        help="regression threshold in percent (default: 15)",
    )
    parser.add_argument(
        "--metric",
        choices=("cpu_time", "real_time"),
        default="cpu_time",
        help="which benchmark time to compare (default: cpu_time; CI "
        "wall-clock is noisier than CPU time)",
    )
    parser.add_argument(
        "--filter", default="", help="only compare benchmarks matching this regex"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any regression exceeds the threshold (default: warn "
        "only — hosted-runner noise must not fail PRs)",
    )
    args = parser.parse_args()
    if args.threshold <= 0:
        parser.error("--threshold must be positive")

    baseline = load_benchmarks(args.baseline, args.metric)
    current = load_benchmarks(args.current, args.metric)
    if args.filter:
        pattern = re.compile(args.filter)
        baseline = {k: v for k, v in baseline.items() if pattern.search(k)}
        current = {k: v for k, v in current.items() if pattern.search(k)}

    shared = [name for name in baseline if name in current]
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))

    regressions = []
    improvements = []
    width = max((len(n) for n in shared), default=4)
    print(f"bench_diff: {args.current} vs {args.baseline} "
          f"({args.metric}, threshold {args.threshold:g}%)\n")
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  {'delta':>8}")
    for name in shared:
        base_ns = baseline[name]
        cur_ns = current[name]
        delta = (cur_ns - base_ns) / base_ns * 100.0 if base_ns > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            flag = "  <-- REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.threshold:
            flag = "  (faster)"
            improvements.append((name, delta))
        print(
            f"{name:<{width}}  {format_ns(base_ns):>10}  "
            f"{format_ns(cur_ns):>10}  {delta:>+7.1f}%{flag}"
        )

    if only_baseline:
        print(f"\nonly in baseline (removed?): {', '.join(only_baseline)}")
    if only_current:
        print(f"\nonly in current (new): {', '.join(only_current)}")

    annotate = os.environ.get("GITHUB_ACTIONS") == "true"
    # A benchmark added by the PR has nothing to be compared against: call
    # it out as informational (a notice, never a failure) instead of
    # skipping it silently — the committed baseline needs refreshing to
    # start gating it.
    for name in only_current:
        message = (
            f"{name} is new — no entry in the committed baseline; reported "
            f"informationally only (refresh the baseline to gate it)"
        )
        if annotate:
            print(f"::notice title=new benchmark::{message}")
        else:
            print(f"note: {message}", file=sys.stderr)

    print(
        f"\n{len(shared)} compared, {len(regressions)} regression(s) beyond "
        f"{args.threshold:g}%, {len(improvements)} improvement(s) beyond it"
    )
    for name, delta in regressions:
        message = (
            f"{name} regressed {delta:+.1f}% vs baseline "
            f"(threshold {args.threshold:g}%)"
        )
        if annotate:
            print(f"::warning title=bench regression::{message}")
        else:
            print(f"warning: {message}", file=sys.stderr)

    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
