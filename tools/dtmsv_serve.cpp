// dtmsv_serve — always-on streaming serving mode.
//
// Drives a core::ServeLoop with deterministic synthetic twin-report traffic
// (core::ServeWorkload) from an INI config ([serve]/[workload]/[run]
// sections): events are offered through the bounded admission queue, one
// prediction fires per interval boundary under the configured deadline
// budget, and the degradation ladder swaps pipeline fidelity under load.
// Streams every group/interval/degradation/drop record as NDJSON and prints
// a latency summary (p50/p95/p99, sustained events/sec). See configs/
// serve_steady.ini and serve_overload.ini, and README.md ("Serving mode").
//
//   $ dtmsv_serve configs/serve_steady.ini --out serve.ndjson
//   $ dtmsv_serve configs/serve_overload.ini --set serve.deadline_ms=20
#include <chrono>
#include <fstream>
#include <iostream>
#include <ostream>
#include <string>
#include <vector>

#include "cli/serve_loader.hpp"
#include "core/json_sink.hpp"
#include "core/pipeline.hpp"
#include "core/serve.hpp"
#include "core/serve_workload.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;  // config/runtime failure
constexpr int kExitUsage = 2;    // bad command line

void print_usage(std::ostream& out) {
  out << "usage: dtmsv_serve <config.ini> [options]\n"
         "\n"
         "Runs the always-on serving mode described by an INI config file\n"
         "(see configs/serve_*.ini): synthetic twin-report traffic through\n"
         "the admission queue, one prediction per interval under the\n"
         "deadline budget, graceful degradation under overload.\n"
         "\n"
         "options:\n"
         "  --out PATH       stream NDJSON records to PATH ('-' = stdout);\n"
         "                   overrides the config's [run] report key\n"
         "  --set KEY=VALUE  override a config key (repeatable), e.g.\n"
         "                   --set serve.deadline_ms=20\n"
         "  --threads N      thread-pool size (overrides [run] threads;\n"
         "                   0 = hardware default)\n"
         "  --print-config   print the effective config after overrides, then exit\n"
         "  --quiet          suppress the summary table\n"
         "  --help           show this text\n"
         "\n"
         "exit status: 0 success, 1 config/runtime error, 2 usage error\n";
}

struct Options {
  std::string config_path;
  std::string out_path;
  bool out_path_set = false;
  std::vector<std::string> overrides;
  std::size_t threads = 0;
  bool threads_set = false;
  bool print_config = false;
  bool quiet = false;
};

/// Returns false (after printing the problem) on a malformed command line.
bool parse_args(int argc, char** argv, Options& options, bool& help) {
  const auto value_of = [&](int& i, const std::string& flag,
                            std::string& out) -> bool {
    if (i + 1 >= argc) {
      std::cerr << "dtmsv_serve: " << flag << " needs a value\n";
      return false;
    }
    out = argv[++i];
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help = true;
      return true;
    } else if (arg == "--out") {
      if (!value_of(i, arg, options.out_path)) {
        return false;
      }
      options.out_path_set = true;
    } else if (arg == "--set") {
      std::string pair;
      if (!value_of(i, arg, pair)) {
        return false;
      }
      if (pair.find('=') == std::string::npos) {
        std::cerr << "dtmsv_serve: --set expects KEY=VALUE, got '" << pair
                  << "'\n";
        return false;
      }
      options.overrides.push_back(pair);
    } else if (arg == "--threads") {
      std::string n;
      if (!value_of(i, arg, n)) {
        return false;
      }
      try {
        options.threads =
            static_cast<std::size_t>(dtmsv::util::parse_uint64(n, "--threads"));
      } catch (const dtmsv::util::RuntimeError& error) {
        std::cerr << "dtmsv_serve: " << error.what() << "\n";
        return false;
      }
      options.threads_set = true;
    } else if (arg == "--print-config") {
      options.print_config = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "dtmsv_serve: unknown option '" << arg << "'\n";
      return false;
    } else if (options.config_path.empty()) {
      options.config_path = arg;
    } else {
      std::cerr << "dtmsv_serve: unexpected argument '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

std::string ladder_to_string(const dtmsv::core::DegradationPolicyConfig& cfg) {
  std::string out;
  for (const auto& level : cfg.ladder) {
    if (!out.empty()) {
      out += " -> ";
    }
    out += level.name;
  }
  return out;
}

void write_run_meta(dtmsv::core::JsonReportSink& sink,
                    const dtmsv::cli::ServePlan& plan, std::size_t threads) {
  using dtmsv::core::json_number;
  using dtmsv::core::json_string;
  sink.meta("run",
            {{"mode", json_string("serve")},
             {"seed", std::to_string(plan.serve.scheme.seed)},
             {"user_count", std::to_string(plan.serve.scheme.user_count)},
             {"intervals", std::to_string(plan.intervals)},
             {"interval_s", json_number(plan.serve.scheme.interval_s)},
             {"deadline_ms", json_number(plan.serve.deadline_ms)},
             {"queue_capacity", std::to_string(plan.serve.queue_capacity)},
             {"ladder", json_string(ladder_to_string(plan.serve.degradation))},
             {"grouping_stage", json_string(plan.serve.scheme.grouping_stage)},
             {"demand_stage", json_string(plan.serve.scheme.demand_stage)},
             {"threads", std::to_string(threads)},
             {"simd_backend",
              json_string(dtmsv::util::simd::active_backend_name())},
             {"native_arch",
              json_string(dtmsv::util::simd::native_arch_build() ? "on"
                                                                 : "off")}});
}

void write_summary_meta(dtmsv::core::JsonReportSink& sink,
                        const dtmsv::core::ServeStats& stats,
                        std::uint64_t offered, double wall_s) {
  using dtmsv::core::json_number;
  const double events_per_s =
      wall_s > 0.0 ? static_cast<double>(stats.events_ingested) / wall_s : 0.0;
  sink.meta(
      "summary",
      {{"intervals", std::to_string(stats.intervals)},
       {"deadline_misses", std::to_string(stats.deadline_misses)},
       {"events_offered", std::to_string(offered)},
       {"events_ingested", std::to_string(stats.events_ingested)},
       {"events_dropped", std::to_string(stats.events_dropped)},
       {"steps_down", std::to_string(stats.steps_down)},
       {"steps_up", std::to_string(stats.steps_up)},
       {"latency_p50_ms",
        json_number(dtmsv::core::latency_percentile(stats.latencies_ms, 50.0))},
       {"latency_p95_ms",
        json_number(dtmsv::core::latency_percentile(stats.latencies_ms, 95.0))},
       {"latency_p99_ms",
        json_number(dtmsv::core::latency_percentile(stats.latencies_ms, 99.0))},
       {"events_per_s", json_number(events_per_s)},
       {"wall_s", json_number(wall_s)}});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtmsv;

  Options options;
  bool help = false;
  if (!parse_args(argc, argv, options, help)) {
    std::cerr << "\n";
    print_usage(std::cerr);
    return kExitUsage;
  }
  if (help) {
    print_usage(std::cout);
    return kExitOk;
  }
  if (options.config_path.empty()) {
    std::cerr << "dtmsv_serve: missing config file\n\n";
    print_usage(std::cerr);
    return kExitUsage;
  }

  try {
    util::Config config = util::Config::read_file(options.config_path);
    for (const std::string& pair : options.overrides) {
      const std::size_t eq = pair.find('=');
      config.set(pair.substr(0, eq), pair.substr(eq + 1));
    }
    if (options.print_config) {
      std::cout << config.to_string();
      return kExitOk;
    }

    cli::ServePlan plan = cli::load_serve_plan(config);
    if (options.out_path_set) {
      plan.report_path = options.out_path;
    }
    if (options.threads_set) {
      plan.threads = options.threads;
    }
    if (plan.threads > 0) {
      util::set_thread_count(plan.threads);
    }

    std::ofstream report_file;
    std::ostream* report_stream = nullptr;
    if (plan.report_path == "-") {
      report_stream = &std::cout;
    } else if (!plan.report_path.empty()) {
      report_file.open(plan.report_path);
      if (!report_file) {
        throw util::RuntimeError("cannot write NDJSON report to " +
                                 plan.report_path);
      }
      report_stream = &report_file;
    }

    std::unique_ptr<core::JsonReportSink> sink;
    if (report_stream != nullptr) {
      sink = std::make_unique<core::JsonReportSink>(*report_stream);
      write_run_meta(*sink, plan, plan.threads);
    }

    core::SteadyServeClock clock;
    core::ServeLoop loop(plan.serve, clock, sink.get());
    core::ServeWorkload workload(plan.workload, loop.catalog());

    const double interval_s = plan.serve.scheme.interval_s;
    std::vector<core::TwinEvent> events;
    const auto started = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < plan.intervals; ++i) {
      const bool overload =
          plan.overload_intervals > 0 && i >= plan.overload_start &&
          i < plan.overload_start + plan.overload_intervals;
      workload.set_rate_multiplier(overload ? plan.overload_multiplier : 1.0);
      events.clear();
      workload.generate(static_cast<double>(i) * interval_s,
                        static_cast<double>(i + 1) * interval_s, events);
      for (const core::TwinEvent& event : events) {
        loop.offer(event);
      }
      loop.advance_to(static_cast<double>(i + 1) * interval_s);
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
            .count();

    const core::ServeStats& stats = loop.stats();
    const std::uint64_t offered = stats.events_ingested + stats.events_dropped;
    std::size_t records = 0;
    if (sink != nullptr) {
      write_summary_meta(*sink, stats, offered, wall_s);
      records = sink->record_count();
    }

    // Flush (and for files, close) before checking: a failure in the final
    // buffer flush must not produce a truncated report with exit 0.
    if (report_stream == &report_file && report_file.is_open()) {
      report_file.close();
    } else if (report_stream != nullptr) {
      report_stream->flush();
    }
    if (report_stream != nullptr &&
        (report_stream->fail() || report_stream->bad())) {
      throw util::RuntimeError("I/O error while writing NDJSON report to " +
                               (plan.report_path == "-" ? "stdout"
                                                        : plan.report_path));
    }

    if (!options.quiet) {
      std::ostream& info = plan.report_path == "-" ? std::cerr : std::cout;
      util::Table summary({"intervals", "misses", "p50 ms", "p95 ms", "p99 ms",
                           "events/s", "ingested", "dropped", "down", "up"});
      const double events_per_s =
          wall_s > 0.0 ? static_cast<double>(stats.events_ingested) / wall_s
                       : 0.0;
      summary.add_row(
          {std::to_string(stats.intervals),
           std::to_string(stats.deadline_misses),
           util::fixed(core::latency_percentile(stats.latencies_ms, 50.0), 2),
           util::fixed(core::latency_percentile(stats.latencies_ms, 95.0), 2),
           util::fixed(core::latency_percentile(stats.latencies_ms, 99.0), 2),
           util::fixed(events_per_s, 0), std::to_string(stats.events_ingested),
           std::to_string(stats.events_dropped),
           std::to_string(stats.steps_down), std::to_string(stats.steps_up)});
      info << "\n== dtmsv_serve: " << options.config_path << " ==\n"
           << summary.to_string();
      info << "ladder: " << ladder_to_string(plan.serve.degradation)
           << " (at rung " << loop.degradation().level() << " after run)\n";
      if (!plan.report_path.empty()) {
        info << records << " NDJSON records written to "
             << (plan.report_path == "-" ? "stdout" : plan.report_path) << "\n";
      }
    }
    return kExitOk;
  } catch (const std::exception& error) {
    std::cerr << "dtmsv_serve: " << error.what() << "\n";
    return kExitRuntime;
  }
}
