// dtmsv_sim — declarative scenario harness.
//
// Runs named multi-cell workloads (and stage-ablation grids) from an INI
// config file through core::run_scenario, streaming every per-group,
// per-interval and per-handover record as NDJSON and printing a
// human-readable summary. The scriptable entry point CI's scenario-matrix
// job drives; see configs/ for one config per named scenario plus the
// ablation grid, and README.md ("Running scenarios from the command line")
// for the config-format and NDJSON-schema reference.
//
//   $ dtmsv_sim configs/flash_crowd.ini --out flash_crowd.ndjson
//   $ dtmsv_sim configs/ablation_grid.ini --set scenario.total_users=96
#include <chrono>
#include <fstream>
#include <iostream>
#include <ostream>
#include <string>
#include <vector>

#include "cli/scenario_loader.hpp"
#include "core/json_sink.hpp"
#include "core/pipeline.hpp"
#include "core/scenarios.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;  // config/runtime failure
constexpr int kExitUsage = 2;    // bad command line

void print_usage(std::ostream& out) {
  out << "usage: dtmsv_sim <config.ini> [options]\n"
         "\n"
         "Runs the scenario(s) described by an INI config file (see configs/)\n"
         "through the multi-cell fleet, streaming NDJSON reports and printing\n"
         "a summary table per job.\n"
         "\n"
         "options:\n"
         "  --out PATH       stream NDJSON records to PATH ('-' = stdout);\n"
         "                   overrides the config's [run] report key\n"
         "  --set KEY=VALUE  override a config key (repeatable), e.g.\n"
         "                   --set scenario.total_users=96\n"
         "  --threads N      thread-pool size (overrides [run] threads;\n"
         "                   0 = hardware default)\n"
         "  --print-config   print the effective config after overrides, then exit\n"
         "  --list-stages    print the registered pipeline stage keys, then exit\n"
         "  --quiet          suppress the summary tables\n"
         "  --help           show this text\n"
         "\n"
         "exit status: 0 success, 1 config/runtime error, 2 usage error\n";
}

struct Options {
  std::string config_path;
  std::string out_path;  // --out; empty = config's [run] report (or none)
  bool out_path_set = false;
  std::vector<std::string> overrides;  // KEY=VALUE
  std::size_t threads = 0;
  bool threads_set = false;
  bool print_config = false;
  bool list_stages = false;
  bool quiet = false;
};

/// Returns false (after printing the problem) on a malformed command line.
bool parse_args(int argc, char** argv, Options& options, bool& help) {
  const auto value_of = [&](int& i, const std::string& flag,
                            std::string& out) -> bool {
    if (i + 1 >= argc) {
      std::cerr << "dtmsv_sim: " << flag << " needs a value\n";
      return false;
    }
    out = argv[++i];
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help = true;
      return true;
    } else if (arg == "--out") {
      if (!value_of(i, arg, options.out_path)) {
        return false;
      }
      options.out_path_set = true;
    } else if (arg == "--set") {
      std::string pair;
      if (!value_of(i, arg, pair)) {
        return false;
      }
      if (pair.find('=') == std::string::npos) {
        std::cerr << "dtmsv_sim: --set expects KEY=VALUE, got '" << pair << "'\n";
        return false;
      }
      options.overrides.push_back(pair);
    } else if (arg == "--threads") {
      std::string n;
      if (!value_of(i, arg, n)) {
        return false;
      }
      try {
        options.threads =
            static_cast<std::size_t>(dtmsv::util::parse_uint64(n, "--threads"));
      } catch (const dtmsv::util::RuntimeError& error) {
        std::cerr << "dtmsv_sim: " << error.what() << "\n";
        return false;
      }
      options.threads_set = true;
    } else if (arg == "--print-config") {
      options.print_config = true;
    } else if (arg == "--list-stages") {
      options.list_stages = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "dtmsv_sim: unknown option '" << arg << "'\n";
      return false;
    } else if (options.config_path.empty()) {
      options.config_path = arg;
    } else {
      std::cerr << "dtmsv_sim: unexpected argument '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

void list_stages() {
  const auto& registry = dtmsv::core::StageRegistry::instance();
  const auto print = [](const std::string& title,
                        const std::vector<std::string>& keys) {
    std::cout << title << ":";
    for (const std::string& key : keys) {
      std::cout << " " << key;
    }
    std::cout << "\n";
  };
  print("feature", registry.feature_keys());
  print("grouping", registry.grouping_keys());
  print("demand", registry.demand_keys());
}

/// {"type":"run",...} header so every job's records are self-describing
/// even when several grid jobs share one NDJSON file.
void write_run_meta(dtmsv::core::JsonReportSink& sink,
                    const dtmsv::cli::SimJob& job, std::size_t threads) {
  using dtmsv::core::json_string;
  const dtmsv::core::ScenarioConfig& s = job.scenario;
  sink.meta("run",
            {{"label", json_string(job.label)},
             {"scenario", json_string(dtmsv::core::to_string(s.kind))},
             {"seed", std::to_string(s.seed)},
             {"total_users", std::to_string(s.total_users)},
             {"cell_count", std::to_string(s.cell_count)},
             {"intervals", std::to_string(s.intervals)},
             {"threads", std::to_string(threads)},
             {"simd_backend",
              json_string(dtmsv::util::simd::active_backend_name())},
             {"native_arch",
              json_string(dtmsv::util::simd::native_arch_build() ? "on" : "off")},
             {"feature_stage", json_string(feature_stage_key(s.base))},
             {"grouping_stage", json_string(grouping_stage_key(s.base))},
             {"demand_stage", json_string(demand_stage_key(s.base))}});
}

void write_summary_meta(dtmsv::core::JsonReportSink& sink,
                        const dtmsv::cli::SimJob& job,
                        const dtmsv::core::ScenarioResult& result,
                        double wall_s) {
  using dtmsv::core::json_number;
  using dtmsv::core::json_string;
  sink.meta("summary",
            {{"label", json_string(job.label)},
             {"peak_users", std::to_string(result.peak_users)},
             {"handovers", std::to_string(result.handovers)},
             {"radio_accuracy", json_number(result.radio_accuracy)},
             {"compute_accuracy", json_number(result.compute_accuracy)},
             {"wall_s", json_number(wall_s)}});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtmsv;

  Options options;
  bool help = false;
  if (!parse_args(argc, argv, options, help)) {
    std::cerr << "\n";
    print_usage(std::cerr);
    return kExitUsage;
  }
  if (help) {
    print_usage(std::cout);
    return kExitOk;
  }
  if (options.list_stages) {
    list_stages();
    return kExitOk;
  }
  if (options.config_path.empty()) {
    std::cerr << "dtmsv_sim: missing config file\n\n";
    print_usage(std::cerr);
    return kExitUsage;
  }

  try {
    util::Config config = util::Config::read_file(options.config_path);
    for (const std::string& pair : options.overrides) {
      const std::size_t eq = pair.find('=');
      config.set(pair.substr(0, eq), pair.substr(eq + 1));
    }
    if (options.print_config) {
      std::cout << config.to_string();
      return kExitOk;
    }

    cli::SimPlan plan = cli::load_plan(config);
    if (options.out_path_set) {
      plan.report_path = options.out_path;
    }
    if (options.threads_set) {
      plan.threads = options.threads;
    }
    if (plan.threads > 0) {
      util::set_thread_count(plan.threads);
    }

    std::ofstream report_file;
    std::ostream* report_stream = nullptr;
    if (plan.report_path == "-") {
      report_stream = &std::cout;
    } else if (!plan.report_path.empty()) {
      report_file.open(plan.report_path);
      if (!report_file) {
        throw util::RuntimeError("cannot write NDJSON report to " +
                                 plan.report_path);
      }
      report_stream = &report_file;
    }

    util::Table summary({"job", "peak users", "cells", "handovers",
                         "radio accuracy", "compute accuracy", "wall s"});
    std::size_t records = 0;
    for (const cli::SimJob& job : plan.jobs) {
      const auto started = std::chrono::steady_clock::now();
      core::ScenarioResult result;
      if (report_stream != nullptr) {
        core::JsonReportSink sink(*report_stream);
        write_run_meta(sink, job, plan.threads);
        result = core::run_scenario(job.scenario, &sink);
        const double wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          started)
                .count();
        write_summary_meta(sink, job, result, wall_s);
        records += sink.record_count();
      } else {
        result = core::run_scenario(job.scenario);
      }
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      summary.add_row({job.label, std::to_string(result.peak_users),
                       std::to_string(job.scenario.cell_count),
                       std::to_string(result.handovers),
                       util::percent(result.radio_accuracy, 1),
                       util::percent(result.compute_accuracy, 1),
                       util::fixed(wall_s, 2)});
    }

    // Flush (and for files, close) before checking: a failure in the final
    // buffer flush must not produce a truncated report with exit 0.
    if (report_stream == &report_file && report_file.is_open()) {
      report_file.close();
    } else if (report_stream != nullptr) {
      report_stream->flush();
    }
    if (report_stream != nullptr &&
        (report_stream->fail() || report_stream->bad())) {
      throw util::RuntimeError("I/O error while writing NDJSON report to " +
                               (plan.report_path == "-" ? "stdout"
                                                        : plan.report_path));
    }
    if (!options.quiet) {
      // With records streaming to stdout the human-readable output moves to
      // stderr so the NDJSON stays machine-parseable.
      std::ostream& info = plan.report_path == "-" ? std::cerr : std::cout;
      info << "\n== dtmsv_sim: " << options.config_path << " ("
           << plan.jobs.size() << " job" << (plan.jobs.size() == 1 ? "" : "s")
           << ") ==\n"
           << summary.to_string();
      if (!plan.report_path.empty()) {
        info << "\n" << records << " NDJSON records written to "
             << (plan.report_path == "-" ? "stdout" : plan.report_path) << "\n";
      }
    }
    return kExitOk;
  } catch (const std::exception& error) {
    std::cerr << "dtmsv_sim: " << error.what() << "\n";
    return kExitRuntime;
  }
}
