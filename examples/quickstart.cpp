// Quickstart: the smallest end-to-end use of the dtmsv public API.
//
// Builds the DT-assisted multicast short-video pipeline on a reduced campus
// scenario, runs a few 5-minute reservation intervals, and prints the
// predicted vs. actual radio resource demand per interval.
//
//   $ ./quickstart
#include <iostream>

#include "core/simulation.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace dtmsv;

  // 1. Configure the scheme. Defaults follow the paper (5-minute intervals,
  //    DDQN-empowered K-means++, 1D-CNN compression); we shrink the user
  //    population so the example finishes in seconds.
  core::SchemeConfig config;
  config.seed = 7;
  config.user_count = 60;
  config.interval_s = 120.0;           // shortened for the demo
  config.demand.interval_s = config.interval_s;
  config.warmup_intervals = 1;
  config.feature_window_s = 240.0;

  // 2. Build the simulation (campus, users, channels, twins, learning).
  core::Simulation sim(config);

  // 3. Run intervals through a streaming ReportSink; each interval report
  //    pairs the demand predicted one interval ahead with what the
  //    multicast groups actually consumed (groups arrive via on_group).
  struct QuickstartSink final : core::ReportSink {
    util::Table table{{"interval", "groups", "K", "silhouette", "predicted MHz",
                       "actual MHz", "error"}};
    std::vector<double> predicted;
    std::vector<double> actual;
    std::size_t interval_groups = 0;

    void on_group(const core::GroupReport&, util::IntervalId) override {
      ++interval_groups;
    }
    void on_interval(const core::EpochReport& r) override {
      if (!r.has_prediction) {
        table.add_row({std::to_string(r.interval), "warm-up", "-", "-", "-", "-", "-"});
      } else {
        predicted.push_back(r.predicted_radio_hz_total);
        actual.push_back(r.actual_radio_hz_total);
        table.add_row({std::to_string(r.interval), std::to_string(interval_groups),
                       std::to_string(r.k), util::fixed(r.silhouette, 3),
                       util::fixed(r.predicted_radio_hz_total / 1e6, 3),
                       util::fixed(r.actual_radio_hz_total / 1e6, 3),
                       util::percent(r.radio_error, 1)});
      }
      interval_groups = 0;
    }
  } sink;
  sim.run(8, sink);
  sink.table.print("dtmsv quickstart: predicted vs actual radio demand");
  const std::vector<double>& predicted = sink.predicted;
  const std::vector<double>& actual = sink.actual;

  // 4. The paper's headline metric: prediction accuracy = 1 - MAPE.
  if (const auto acc = util::prediction_accuracy(actual, predicted)) {
    std::cout << "\nradio demand prediction accuracy: " << util::percent(*acc, 2)
              << "\n";
  }
  return 0;
}
