// Quickstart: the smallest end-to-end use of the dtmsv public API.
//
// Builds the DT-assisted multicast short-video pipeline on a reduced campus
// scenario, runs a few 5-minute reservation intervals, and prints the
// predicted vs. actual radio resource demand per interval.
//
//   $ ./quickstart
#include <iostream>

#include "core/simulation.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace dtmsv;

  // 1. Configure the scheme. Defaults follow the paper (5-minute intervals,
  //    DDQN-empowered K-means++, 1D-CNN compression); we shrink the user
  //    population so the example finishes in seconds.
  core::SchemeConfig config;
  config.seed = 7;
  config.user_count = 60;
  config.interval_s = 120.0;           // shortened for the demo
  config.demand.interval_s = config.interval_s;
  config.warmup_intervals = 1;
  config.feature_window_s = 240.0;

  // 2. Build the simulation (campus, users, channels, twins, learning).
  core::Simulation sim(config);

  // 3. Run intervals; each report pairs the demand predicted one interval
  //    ahead with what the multicast groups actually consumed.
  util::Table table({"interval", "groups", "K", "silhouette", "predicted MHz",
                     "actual MHz", "error"});
  std::vector<double> predicted;
  std::vector<double> actual;
  for (int i = 0; i < 8; ++i) {
    const core::EpochReport r = sim.run_interval();
    if (!r.has_prediction) {
      table.add_row({std::to_string(r.interval), "warm-up", "-", "-", "-", "-", "-"});
      continue;
    }
    predicted.push_back(r.predicted_radio_hz_total);
    actual.push_back(r.actual_radio_hz_total);
    table.add_row({std::to_string(r.interval), std::to_string(r.groups.size()),
                   std::to_string(r.k), util::fixed(r.silhouette, 3),
                   util::fixed(r.predicted_radio_hz_total / 1e6, 3),
                   util::fixed(r.actual_radio_hz_total / 1e6, 3),
                   util::percent(r.radio_error, 1)});
  }
  table.print("dtmsv quickstart: predicted vs actual radio demand");

  // 4. The paper's headline metric: prediction accuracy = 1 - MAPE.
  if (const auto acc = util::prediction_accuracy(actual, predicted)) {
    std::cout << "\nradio demand prediction accuracy: " << util::percent(*acc, 2)
              << "\n";
  }
  return 0;
}
