// Custom stage walkthrough: extending the interval pipeline from outside
// src/core, without touching the library.
//
// The pipeline runs three typed stages per reservation interval (see
// core/pipeline.hpp): FeatureStage -> GroupingStage -> DemandStage. Each is
// selected by a string key through the process-wide StageRegistry, so a new
// backend is (1) a class implementing the stage interface, (2) one
// registration call from any translation unit, (3) a SchemeConfig naming
// the key. This example plugs in a taste-quantile grouping stage — it
// ignores the feature geometry entirely and splits users into K equal
// buckets by their first feature coordinate — and compares it against the
// paper's DDQN-empowered K-means++ on the same workload.
//
//   $ ./custom_stage
#include <algorithm>
#include <iostream>
#include <numeric>

#include "core/simulation.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace dtmsv;

// (1) Implement the stage interface. A GroupingStage receives the feature
// points the FeatureStage produced and returns K plus the per-user cluster
// assignment; silhouette/epsilon are observability extras.
class QuantileGroupingStage final : public core::GroupingStage {
 public:
  explicit QuantileGroupingStage(std::size_t k) : k_(k) {}

  core::GroupingOutcome group(const clustering::Points& features,
                              util::Rng& /*rng*/) override {
    core::GroupingOutcome out;
    out.k = std::min<std::size_t>(k_, features.size());
    // Rank users by their first feature coordinate and cut into equal
    // quantile buckets — a deterministic, geometry-free baseline.
    std::vector<std::size_t> order(features.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return features[a][0] < features[b][0];
    });
    out.assignment.resize(features.size());
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      out.assignment[order[rank]] = rank * out.k / order.size();
    }
    return out;
  }

  std::string name() const override { return "taste_quantile"; }

 private:
  std::size_t k_;
};

}  // namespace

int main() {
  using namespace dtmsv;

  // (2) Register the backend under a new key. Typically done from a static
  // registrar at namespace scope in the plugin's TU; here inline for the
  // walkthrough. The factory sees the full SchemeConfig, so existing knobs
  // (fixed_k here) parameterize custom stages too.
  core::StageRegistry::instance().register_grouping(
      "taste_quantile", [](const core::SchemeConfig& config, util::Rng&) {
        return std::make_unique<QuantileGroupingStage>(config.fixed_k);
      });

  const auto run_with = [](const std::string& grouping_key) {
    core::SchemeConfig config;
    config.seed = 17;
    config.user_count = 60;
    config.interval_s = 120.0;
    config.demand.interval_s = config.interval_s;
    config.warmup_intervals = 1;
    config.feature_window_s = 240.0;
    config.fixed_k = 4;
    // (3) Select the stage by key. The feature and demand stages stay on
    // the paper's defaults ("cnn", "joint") — stages swap independently.
    config.grouping_stage = grouping_key;

    core::Simulation sim(config);
    std::vector<double> predicted;
    std::vector<double> actual;
    for (int i = 0; i < 8; ++i) {
      const core::EpochReport r = sim.run_interval();
      if (r.has_prediction) {
        predicted.push_back(r.predicted_radio_hz_total);
        actual.push_back(r.actual_radio_hz_total);
      }
    }
    return util::prediction_accuracy(actual, predicted).value_or(0.0);
  };

  util::Table table({"grouping stage", "radio accuracy"});
  table.add_row({"ddqn (paper)", util::percent(run_with("ddqn"), 2)});
  table.add_row({"taste_quantile (this example)",
                 util::percent(run_with("taste_quantile"), 2)});
  table.print("custom out-of-tree grouping stage vs. the paper's");

  std::cout << "\nRegistered grouping keys now:";
  for (const auto& key : core::StageRegistry::instance().grouping_keys()) {
    std::cout << ' ' << key;
  }
  std::cout << "\n";
  return 0;
}
