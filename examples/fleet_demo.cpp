// Fleet demo: the multi-cell scenario library end-to-end.
//
// With no arguments, runs all four named workloads (steady-state, flash
// crowd, mobility churn, catalog drift) on a reduced fleet and prints
// their summary, then walks through the flash-crowd run interval by
// interval so the surge is visible in the aggregate demand.
//
// With a config-file argument it becomes config-driven: the same
// declarative INI files the `dtmsv_sim` CLI consumes (see configs/) select
// the workloads, scale, seeds and pipeline stages, and the per-interval
// walkthrough covers the first job of the plan.
//
//   $ ./fleet_demo
//   $ ./fleet_demo configs/flash_crowd.ini
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "cli/scenario_loader.hpp"
#include "core/json_sink.hpp"
#include "core/scenarios.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

using namespace dtmsv;

/// Streaming ReportSink watching the run live: per-group reports and
/// handover events arrive as they happen, nothing is buffered.
struct FleetWatcher final : core::ReportSink {
  std::size_t groups_seen = 0;
  std::size_t handovers_seen = 0;
  void on_group(const core::GroupReport&, util::IntervalId) override {
    ++groups_seen;
  }
  void on_handover(const core::HandoverEvent&) override { ++handovers_seen; }
};

/// Fans one report stream out to two sinks (the live watcher above plus an
/// optional NDJSON file when the config sets [run] report) — sinks compose.
struct TeeSink final : core::ReportSink {
  core::ReportSink* first = nullptr;
  core::ReportSink* second = nullptr;  // may be null
  void on_group(const core::GroupReport& g, util::IntervalId i) override {
    first->on_group(g, i);
    if (second != nullptr) {
      second->on_group(g, i);
    }
  }
  void on_interval(const core::EpochReport& r) override {
    first->on_interval(r);
    if (second != nullptr) {
      second->on_interval(r);
    }
  }
  void on_handover(const core::HandoverEvent& e) override {
    first->on_handover(e);
    if (second != nullptr) {
      second->on_handover(e);
    }
  }
};

void print_interval_detail(const cli::SimJob& job,
                           const core::ScenarioResult& result) {
  util::Table detail({"interval", "users", "grouped shards", "predicted MHz",
                      "actual MHz", "fleet err", "worst cell err"});
  for (const core::FleetReport& r : result.reports) {
    const bool predicting = !r.shard_radio_error.empty();
    detail.add_row(
        {std::to_string(r.interval), std::to_string(r.user_count),
         std::to_string(r.grouped_shards) + "/" + std::to_string(r.shards.size()),
         predicting ? util::fixed(r.predicted_radio_hz_total / 1e6, 3) : "-",
         predicting ? util::fixed(r.actual_radio_hz_total / 1e6, 3) : "-",
         predicting ? util::percent(r.radio_error, 1) : "-",
         predicting ? util::percent(r.shard_radio_error.max(), 1) : "-"});
  }
  detail.print("per-interval fleet aggregates: " + job.label);
}

int run_from_config(const std::string& path) {
  util::Config config = util::Config::read_file(path);
  cli::SimPlan plan = cli::load_plan(config);
  if (plan.threads > 0) {
    util::set_thread_count(plan.threads);
  }

  util::Table summary({"job", "peak users", "cells", "handovers",
                       "radio accuracy", "compute accuracy"});
  FleetWatcher watcher;
  // Honor the config's [run] report key like dtmsv_sim does.
  std::ofstream report_file;
  std::unique_ptr<core::JsonReportSink> json;
  if (!plan.report_path.empty()) {
    report_file.open(plan.report_path);
    if (!report_file) {
      throw util::RuntimeError("cannot write NDJSON report to " +
                               plan.report_path);
    }
    json = std::make_unique<core::JsonReportSink>(report_file);
  }
  TeeSink tee;
  tee.first = &watcher;
  tee.second = json.get();
  std::vector<core::ScenarioResult> results;
  results.reserve(plan.jobs.size());
  for (const cli::SimJob& job : plan.jobs) {
    results.push_back(core::run_scenario(job.scenario, &tee));
    const core::ScenarioResult& result = results.back();
    summary.add_row({job.label, std::to_string(result.peak_users),
                     std::to_string(job.scenario.cell_count),
                     std::to_string(result.handovers),
                     util::percent(result.radio_accuracy, 1),
                     util::percent(result.compute_accuracy, 1)});
  }
  summary.print("dtmsv fleet demo: " + path);
  print_interval_detail(plan.jobs.front(), results.front());
  std::cout << "\nstreamed group reports observed by the sink: "
            << watcher.groups_seen << "\n"
            << "streamed handover events observed by the sink: "
            << watcher.handovers_seen << "\n";
  if (json != nullptr) {
    report_file.close();
    if (report_file.fail()) {
      throw util::RuntimeError("I/O error while writing NDJSON report to " +
                               plan.report_path);
    }
    std::cout << json->record_count() << " NDJSON records written to "
              << plan.report_path << "\n";
  }
  return 0;
}

int run_builtin() {
  constexpr std::size_t kUsers = 240;
  constexpr std::size_t kCells = 4;

  // 1. Every named scenario at the same scale: one row per workload.
  util::Table summary({"scenario", "peak users", "cells", "handovers",
                       "radio accuracy", "compute accuracy"});
  for (const core::ScenarioKind kind : core::all_scenarios()) {
    core::ScenarioConfig cfg = core::make_scenario(kind, kUsers, kCells, 7);
    cfg.intervals = 5;
    const core::ScenarioResult result = core::run_scenario(cfg);
    summary.add_row({core::to_string(kind), std::to_string(result.peak_users),
                     std::to_string(kCells), std::to_string(result.handovers),
                     util::percent(result.radio_accuracy, 1),
                     util::percent(result.compute_accuracy, 1)});
  }
  summary.print("dtmsv fleet demo: four workloads, " + std::to_string(kUsers) +
                " users / " + std::to_string(kCells) + " cells");

  // 2. Flash crowd in detail: per-interval fleet aggregates. The surge
  //    lands in interval 2, warms up, then its demand joins the totals.
  FleetWatcher watcher;
  cli::SimJob crowd;
  crowd.label = "flash_crowd";
  crowd.scenario =
      core::make_scenario(core::ScenarioKind::kFlashCrowd, kUsers, kCells, 7);
  crowd.scenario.intervals = 6;
  const core::ScenarioResult result = core::run_scenario(crowd.scenario, &watcher);
  print_interval_detail(crowd, result);

  std::cout << "\nfleet radio demand prediction accuracy: "
            << util::percent(result.radio_accuracy, 2) << "\n"
            << "streamed group reports observed by the sink: "
            << watcher.groups_seen << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    std::cerr << "usage: fleet_demo [config.ini]\n";
    return 1;
  }
  try {
    return argc == 2 ? run_from_config(argv[1]) : run_builtin();
  } catch (const std::exception& error) {
    std::cerr << "fleet_demo: " << error.what() << "\n";
    return 1;
  }
}
