// Fleet demo: the multi-cell scenario library end-to-end.
//
// Runs all four named workloads (steady-state, flash crowd, mobility
// churn, catalog drift) on a reduced fleet and prints their summary, then
// walks through the flash-crowd run interval by interval so the surge is
// visible in the aggregate demand.
//
//   $ ./fleet_demo
#include <iostream>

#include "core/scenarios.hpp"
#include "util/table.hpp"

int main() {
  using namespace dtmsv;

  constexpr std::size_t kUsers = 240;
  constexpr std::size_t kCells = 4;

  // 1. Every named scenario at the same scale: one row per workload.
  util::Table summary({"scenario", "peak users", "cells", "handovers",
                       "radio accuracy", "compute accuracy"});
  for (const core::ScenarioKind kind : core::all_scenarios()) {
    core::ScenarioConfig cfg = core::make_scenario(kind, kUsers, kCells, 7);
    cfg.intervals = 5;
    const core::ScenarioResult result = core::run_scenario(cfg);
    summary.add_row({core::to_string(kind), std::to_string(result.peak_users),
                     std::to_string(kCells), std::to_string(result.handovers),
                     util::percent(result.radio_accuracy, 1),
                     util::percent(result.compute_accuracy, 1)});
  }
  summary.print("dtmsv fleet demo: four workloads, " + std::to_string(kUsers) +
                " users / " + std::to_string(kCells) + " cells");

  // 2. Flash crowd in detail: per-interval fleet aggregates. The surge
  //    lands in interval 2, warms up, then its demand joins the totals.
  //    A streaming ReportSink watches the run live: per-group reports and
  //    handover events arrive as they happen, nothing is buffered.
  struct FleetWatcher final : core::ReportSink {
    std::size_t groups_seen = 0;
    std::size_t handovers_seen = 0;
    void on_group(const core::GroupReport&, util::IntervalId) override {
      ++groups_seen;
    }
    void on_handover(const core::HandoverEvent&) override { ++handovers_seen; }
  } watcher;
  core::ScenarioConfig crowd =
      core::make_scenario(core::ScenarioKind::kFlashCrowd, kUsers, kCells, 7);
  crowd.intervals = 6;
  const core::ScenarioResult result = core::run_scenario(crowd, &watcher);

  util::Table detail({"interval", "users", "grouped shards", "predicted MHz",
                      "actual MHz", "fleet err", "worst cell err"});
  for (const core::FleetReport& r : result.reports) {
    const bool predicting = !r.shard_radio_error.empty();
    detail.add_row(
        {std::to_string(r.interval), std::to_string(r.user_count),
         std::to_string(r.grouped_shards) + "/" + std::to_string(r.shards.size()),
         predicting ? util::fixed(r.predicted_radio_hz_total / 1e6, 3) : "-",
         predicting ? util::fixed(r.actual_radio_hz_total / 1e6, 3) : "-",
         predicting ? util::percent(r.radio_error, 1) : "-",
         predicting ? util::percent(r.shard_radio_error.max(), 1) : "-"});
  }
  detail.print("flash crowd: surge into cell 0 at interval " +
               std::to_string(crowd.surge_interval));

  std::cout << "\nfleet radio demand prediction accuracy: "
            << util::percent(result.radio_accuracy, 2) << "\n"
            << "streamed group reports observed by the sink: "
            << watcher.groups_seen << "\n";
  return 0;
}
