// Dataset explorer: works with the synthetic short-video-streaming-challenge
// dataset directly (no live simulation) — generate a trace, inspect its
// statistical shape, round-trip it through CSV, and verify the invariants
// the demand model relies on.
//
//   $ ./dataset_explorer [users] [sessions_per_user] [csv_path]
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "video/dataset.hpp"

int main(int argc, char** argv) {
  using namespace dtmsv;

  const int users = argc > 1 ? std::atoi(argv[1]) : 200;
  const int sessions = argc > 2 ? std::atoi(argv[2]) : 80;
  const std::string csv_path = argc > 3 ? argv[3] : "";
  if (users <= 0 || sessions <= 0) {
    std::cerr << "usage: dataset_explorer [users>0] [sessions>0] [csv_path]\n";
    return 1;
  }

  video::DatasetConfig config;
  config.user_count = static_cast<std::size_t>(users);
  config.sessions_per_user = static_cast<std::size_t>(sessions);

  util::Rng rng(404);
  const video::Dataset dataset = video::Dataset::generate(config, rng);
  std::cout << "generated " << dataset.records().size() << " viewing events ("
            << users << " users x " << sessions << " sessions), catalog of "
            << dataset.catalog().size() << " videos\n";

  // --- per-category engagement shape -----------------------------------
  const auto mean_frac = dataset.mean_watch_fraction_by_category();
  util::Table per_category({"category", "events", "mean watch fraction",
                            "P(instant swipe)", "P(completed)"});
  for (const auto c : video::all_categories()) {
    std::size_t events = 0;
    std::size_t instant = 0;
    std::size_t completed = 0;
    for (const auto& rec : dataset.records()) {
      if (rec.category != c) {
        continue;
      }
      ++events;
      if (rec.watch_fraction < 0.08) {
        ++instant;
      }
      if (rec.watch_fraction >= 1.0 - 1e-9) {
        ++completed;
      }
    }
    const double n = std::max<double>(1.0, static_cast<double>(events));
    per_category.add_row(
        {video::to_string(c), std::to_string(events),
         util::fixed(mean_frac[static_cast<std::size_t>(c)], 3),
         util::percent(static_cast<double>(instant) / n, 1),
         util::percent(static_cast<double>(completed) / n, 1)});
  }
  per_category.print("per-category engagement (whole population)");

  // --- taste polarisation ------------------------------------------------
  util::RunningStats top_affinity;
  for (const auto& aff : dataset.affinities()) {
    top_affinity.add(*std::max_element(aff.begin(), aff.end()));
  }
  std::cout << "\nmean top-category affinity: " << util::fixed(top_affinity.mean(), 3)
            << " (1/" << video::kCategoryCount << " = "
            << util::fixed(1.0 / video::kCategoryCount, 3)
            << " would be taste-free)\n";

  // --- duration / bitrate shape ------------------------------------------
  std::vector<double> durations;
  for (const auto& v : dataset.catalog().videos()) {
    durations.push_back(v.duration_s);
  }
  std::cout << "clip durations: p10 " << util::fixed(util::percentile(durations, 10), 1)
            << " s, median " << util::fixed(util::percentile(durations, 50), 1)
            << " s, p90 " << util::fixed(util::percentile(durations, 90), 1)
            << " s (log-uniform 5-60 s, skewing short)\n";

  // --- CSV round trip ------------------------------------------------------
  const std::string csv = dataset.trace_to_csv();
  const auto reparsed = video::Dataset::trace_from_csv(csv);
  std::cout << "CSV round-trip: " << reparsed.size() << " / "
            << dataset.records().size() << " events preserved "
            << (reparsed.size() == dataset.records().size() ? "(lossless)"
                                                            : "(MISMATCH)")
            << '\n';
  if (!csv_path.empty()) {
    std::ofstream os(csv_path);
    os << csv;
    std::cout << "trace written to " << csv_path << '\n';
  }
  return 0;
}
