// Campus streaming scenario: the paper's full setup — users walking the
// UWaterloo-like campus watching short videos over multicast, UDTs collected
// at per-attribute frequencies, 5-minute reservation intervals.
//
// Prints a per-interval operations view (groups, K, demand, accuracy) and
// exports the series to CSV for plotting.
//
//   $ ./campus_streaming [intervals] [users] [csv_path]
//   $ ./campus_streaming 16 120 campus.csv
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/simulation.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dtmsv;

  const int intervals = argc > 1 ? std::atoi(argv[1]) : 12;
  const int users = argc > 2 ? std::atoi(argv[2]) : 120;
  const std::string csv_path = argc > 3 ? argv[3] : "";
  if (intervals <= 0 || users <= 0) {
    std::cerr << "usage: campus_streaming [intervals>0] [users>0] [csv_path]\n";
    return 1;
  }

  core::SchemeConfig config;  // paper defaults: 5-min intervals, DDQN+KMeans++
  config.seed = 2023;
  config.user_count = static_cast<std::size_t>(users);

  core::Simulation sim(config);
  std::cout << "campus: " << users << " users, "
            << sim.catalog().size() << " videos, "
            << config.interval_s << " s reservation interval\n";

  // Streaming consumption: group extremes are folded in on_group as each
  // group is scored, so no per-interval group vector is ever materialized.
  struct OperationsSink final : core::ReportSink {
    util::Table table{{"interval", "groups", "K next", "sil", "min|max group",
                       "videos", "pred MHz", "act MHz", "radio err", "pred Gcyc",
                       "act Gcyc"}};
    util::CsvWriter csv;
    std::vector<double> pred_radio;
    std::vector<double> act_radio;
    std::vector<double> pred_compute;
    std::vector<double> act_compute;

    std::size_t groups = 0;
    std::size_t smallest = 0;
    std::size_t largest = 0;
    std::size_t videos = 0;

    void on_group(const core::GroupReport& g, util::IntervalId) override {
      smallest = groups == 0 ? g.size : std::min(smallest, g.size);
      largest = std::max(largest, g.size);
      videos += g.videos_played;
      ++groups;
    }

    void on_interval(const core::EpochReport& r) override {
      if (!r.has_prediction) {
        table.add_row({std::to_string(r.interval), "-", std::to_string(r.k), "-",
                       "warm-up", "-", "-", "-", "-", "-", "-"});
      } else {
        pred_radio.push_back(r.predicted_radio_hz_total);
        act_radio.push_back(r.actual_radio_hz_total);
        pred_compute.push_back(r.predicted_compute_total);
        act_compute.push_back(r.actual_compute_total);

        table.add_row({std::to_string(r.interval), std::to_string(groups),
                       std::to_string(r.k), util::fixed(r.silhouette, 2),
                       std::to_string(smallest) + "|" + std::to_string(largest),
                       std::to_string(videos),
                       util::fixed(r.predicted_radio_hz_total / 1e6, 3),
                       util::fixed(r.actual_radio_hz_total / 1e6, 3),
                       util::percent(r.radio_error, 1),
                       util::fixed(r.predicted_compute_total / 1e9, 1),
                       util::fixed(r.actual_compute_total / 1e9, 1)});
        csv.add_row(std::vector<double>{
            static_cast<double>(r.interval), static_cast<double>(r.k), r.silhouette,
            r.predicted_radio_hz_total, r.actual_radio_hz_total, r.radio_error,
            r.predicted_compute_total, r.actual_compute_total});
      }
      groups = smallest = largest = videos = 0;
    }
  } sink;
  sink.csv.set_header({"interval", "k", "silhouette", "predicted_radio_hz",
                       "actual_radio_hz", "radio_error", "predicted_compute_cycles",
                       "actual_compute_cycles"});

  sim.run(static_cast<std::size_t>(intervals), sink);
  sink.table.print("campus streaming: per-interval operations view");
  const std::vector<double>& pred_radio = sink.pred_radio;
  const std::vector<double>& act_radio = sink.act_radio;
  const std::vector<double>& pred_compute = sink.pred_compute;
  const std::vector<double>& act_compute = sink.act_compute;
  util::CsvWriter& csv = sink.csv;

  const auto radio_acc = util::prediction_accuracy(act_radio, pred_radio);
  const auto compute_acc = util::volume_weighted_accuracy(act_compute, pred_compute);
  std::cout << "\nradio demand prediction accuracy:                 "
            << (radio_acc ? util::percent(*radio_acc, 2) : "n/a") << "\n"
            << "computing demand accuracy (volume-weighted):      "
            << (compute_acc ? util::percent(*compute_acc, 2) : "n/a") << "\n";

  const auto& cs = sim.collector_stats();
  std::cout << "twin reports: " << cs.channel_reports << " channel, "
            << cs.location_reports << " location, " << cs.watch_reports
            << " watch, " << cs.preference_reports << " preference ("
            << cs.dropped_reports << " dropped)\n";

  if (!csv_path.empty()) {
    csv.write_file(csv_path);
    std::cout << "series exported to " << csv_path << "\n";
  }
  return 0;
}
