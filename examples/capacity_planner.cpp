// Capacity planner: a downstream consumer of the paper's predictions.
//
// The paper's future work is resource *reservation* based on predicted
// demand; this example shows what an operator gets today: reserve
// predicted-demand × headroom each interval, then score over- and
// under-provisioning against what the groups actually consumed, comparing
// the DT-assisted predictor against a last-value baseline.
//
//   $ ./capacity_planner [intervals] [headroom_percent]
#include <cstdlib>
#include <iostream>

#include "core/simulation.hpp"
#include "predict/baselines.hpp"
#include "predict/planner.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dtmsv;

  const int intervals = argc > 1 ? std::atoi(argv[1]) : 16;
  const double headroom = argc > 2 ? std::atof(argv[2]) / 100.0 : 0.10;
  if (intervals <= 0 || headroom < 0.0) {
    std::cerr << "usage: capacity_planner [intervals>0] [headroom_percent>=0]\n";
    return 1;
  }

  core::SchemeConfig config;
  config.seed = 31;
  config.user_count = 100;
  config.interval_s = 120.0;  // shortened so the example runs in seconds
  config.demand.interval_s = config.interval_s;
  config.feature_window_s = 240.0;

  core::Simulation sim(config);

  predict::ReservationPolicy policy;
  policy.headroom = headroom;

  // The planners consume the interval stream directly: a ReportSink is the
  // natural shape for a downstream reservation system (nothing buffered).
  struct PlannerSink final : core::ReportSink {
    explicit PlannerSink(const predict::ReservationPolicy& policy)
        : dt_planner(policy), naive_planner(policy) {}
    predict::CapacityPlanner dt_planner;
    predict::CapacityPlanner naive_planner;
    predict::LastValueSeries last_value;

    void on_interval(const core::EpochReport& r) override {
      if (!r.has_prediction) {
        return;
      }
      // DT-assisted reservation: model prediction + headroom.
      dt_planner.step(r.predicted_radio_hz_total, r.actual_radio_hz_total);
      // Baseline: last interval's realized demand + the same headroom.
      naive_planner.step(last_value.forecast(r.actual_radio_hz_total),
                         r.actual_radio_hz_total);
      last_value.observe(r.actual_radio_hz_total);
    }
  } sink(policy);
  sim.run(static_cast<std::size_t>(intervals), sink);
  const predict::CapacityPlanner& dt_planner = sink.dt_planner;
  const predict::CapacityPlanner& naive_planner = sink.naive_planner;

  const auto row = [&](const char* name, const predict::CapacityPlanner& p) {
    const auto& o = p.outcome();
    const double n = std::max<double>(1.0, static_cast<double>(o.intervals));
    return std::vector<std::string>{
        name,
        std::to_string(o.intervals),
        util::fixed(o.reserved_total / n / 1e6, 3),
        util::fixed(o.over_total / n / 1e6, 3),
        std::to_string(o.violations),
        util::fixed(o.unmet_total / 1e6, 3),
        util::percent(o.waste_fraction(), 1)};
  };
  util::Table table({"planner", "intervals", "avg reserved MHz", "avg waste MHz",
                     "underprov events", "total unmet MHz", "waste frac"});
  table.add_row(row("dt-assisted", dt_planner));
  table.add_row(row("last-value", naive_planner));
  table.print("capacity planning with " + util::percent(headroom, 0) + " headroom");

  std::cout << "\nWaste = reserved-but-unused spectrum; underprovision events are\n"
               "intervals whose realized demand exceeded the reservation (SLA risk).\n";
  return 0;
}
