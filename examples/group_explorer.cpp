// Group explorer: a deep dive into the multicast group construction stage.
//
// Runs the pipeline to a steady state, then inspects the compressed
// embeddings: what K the DDQN picks vs. the elbow / silhouette-sweep /
// fixed baselines, the resulting silhouette, and each group's profile
// (size, preference mix, swiping behaviour, predicted efficiency).
//
//   $ ./group_explorer [users] [warm_intervals]
#include <cstdlib>
#include <iostream>

#include "behavior/preference.hpp"
#include "clustering/metrics.hpp"
#include "clustering/selectors.hpp"
#include "core/simulation.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dtmsv;

  const int users = argc > 1 ? std::atoi(argv[1]) : 90;
  const int warm = argc > 2 ? std::atoi(argv[2]) : 6;
  if (users <= 0 || warm <= 0) {
    std::cerr << "usage: group_explorer [users>0] [warm_intervals>0]\n";
    return 1;
  }

  core::SchemeConfig config;
  config.seed = 99;
  config.user_count = static_cast<std::size_t>(users);
  config.interval_s = 120.0;
  config.demand.interval_s = config.interval_s;
  config.feature_window_s = 240.0;

  core::Simulation sim(config);
  std::cout << "warming up " << warm << " intervals...\n";
  sim.run(static_cast<std::size_t>(warm));

  // --- group profiles under the DDQN decision --------------------------
  util::Table groups({"group", "size", "top preference", "pref weight",
                      "E[watch frac] top cat", "playlist"});
  for (std::size_t g = 0; g < sim.group_count(); ++g) {
    const auto& pref = sim.group_preference(g);
    const std::size_t top = behavior::top_category(pref);
    const auto top_cat = video::all_categories()[top];
    groups.add_row(
        {std::to_string(g), std::to_string(sim.group_members(g).size()),
         video::to_string(top_cat), util::fixed(pref[top], 3),
         util::fixed(sim.group_swiping(g).expected_watch_fraction(top_cat), 3),
         std::to_string(sim.group_recommendation(g).playlist.size())});
  }
  groups.print("multicast groups (DDQN-chosen K = " +
               std::to_string(sim.group_count()) + ")");

  // --- K-selection comparison on the same embeddings --------------------
  // Rebuild the embedding cloud the way the pipeline does, then let each
  // baseline choose K and cluster.
  const twin::FeatureScaling scaling{1200.0, 1000.0, 10.0, 40.0};
  twin::FeatureArena arena;
  const clustering::Points summaries = core::to_points(sim.twins().columns().summary_features(
      {sim.now(), config.feature_window_s, scaling}, arena));

  util::Rng rng(1234);
  util::Table compare({"strategy", "K", "silhouette", "Davies-Bouldin"});
  const auto evaluate = [&](clustering::KSelector& selector) {
    const std::size_t k = selector.select_k(summaries, rng);
    const auto result = clustering::k_means(summaries, k, rng);
    compare.add_row({selector.name(), std::to_string(k),
                     util::fixed(clustering::silhouette(summaries, result.assignment), 3),
                     util::fixed(clustering::davies_bouldin(summaries, result.assignment), 3)});
  };
  clustering::FixedKSelector fixed4(4);
  clustering::ElbowKSelector elbow(config.grouping.k_min, config.grouping.k_max);
  clustering::SilhouetteSweepSelector sweep(config.grouping.k_min,
                                            config.grouping.k_max);
  clustering::RandomKSelector random(config.grouping.k_min, config.grouping.k_max);
  evaluate(fixed4);
  evaluate(elbow);
  evaluate(sweep);
  evaluate(random);
  compare.add_row({"ddqn (pipeline)", std::to_string(sim.group_count()), "see above",
                   "-"});
  compare.print("K-selection strategies on the current user embedding cloud");

  std::cout << "\nNote: the silhouette-sweep row is the slow oracle the DDQN\n"
               "approximates online without sweeping K every interval.\n";
  return 0;
}
