// Unit tests for dtmsv::core — the 1D-CNN feature compressor (training,
// embedding, discrimination), the DDQN+K-means++ group constructor (state
// encoding, learning loop, decision validity), and scheme configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/feature_compressor.hpp"
#include "core/group_constructor.hpp"
#include "util/error.hpp"

namespace {

using namespace dtmsv::core;
using dtmsv::clustering::Points;
using dtmsv::util::PreconditionError;
using dtmsv::util::Rng;

// ------------------------------------------------------- FeatureCompressor

CompressorConfig small_compressor() {
  CompressorConfig cfg;
  cfg.channels = 3;
  cfg.timesteps = 16;
  cfg.embedding_dim = 4;
  cfg.conv1_filters = 8;
  cfg.conv2_filters = 8;
  cfg.decoder_hidden = 32;
  cfg.epochs_per_fit = 3;
  return cfg;
}

/// Windows with two latent modes: flat-low and oscillating-high.
std::vector<std::vector<float>> two_mode_windows(std::size_t per_mode, Rng& rng) {
  const CompressorConfig cfg = small_compressor();
  std::vector<std::vector<float>> windows;
  for (std::size_t m = 0; m < 2; ++m) {
    for (std::size_t i = 0; i < per_mode; ++i) {
      std::vector<float> w(cfg.channels * cfg.timesteps);
      for (std::size_t c = 0; c < cfg.channels; ++c) {
        for (std::size_t t = 0; t < cfg.timesteps; ++t) {
          const double base =
              m == 0 ? 0.2
                     : 0.8 + 0.2 * std::sin(2.0 * M_PI * static_cast<double>(t) / 8.0);
          w[c * cfg.timesteps + t] =
              static_cast<float>(base + rng.normal(0.0, 0.02));
        }
      }
      windows.push_back(std::move(w));
    }
  }
  return windows;
}

TEST(FeatureCompressor, EmbeddingShape) {
  FeatureCompressor comp(small_compressor(), 1);
  Rng rng(1);
  const auto windows = two_mode_windows(5, rng);
  const Points points = comp.embed(windows);
  ASSERT_EQ(points.size(), windows.size());
  for (const auto& p : points) {
    EXPECT_EQ(p.size(), 4u);
    for (const double v : p) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(FeatureCompressor, TrainingReducesReconstructionLoss) {
  FeatureCompressor comp(small_compressor(), 2);
  Rng rng(2);
  const auto windows = two_mode_windows(16, rng);
  const float before = comp.reconstruction_loss(windows);
  for (int i = 0; i < 25; ++i) {
    comp.fit(windows);
  }
  const float after = comp.reconstruction_loss(windows);
  EXPECT_LT(after, 0.5f * before)
      << "autoencoder failed to learn: " << before << " -> " << after;
}

TEST(FeatureCompressor, EmbeddingSeparatesModes) {
  FeatureCompressor comp(small_compressor(), 3);
  Rng rng(3);
  const auto windows = two_mode_windows(12, rng);
  for (int i = 0; i < 15; ++i) {
    comp.fit(windows);
  }
  const Points points = comp.embed(windows);
  // Mean intra-mode distance must be far below the inter-mode distance.
  const auto mean_dist = [&](std::size_t a_begin, std::size_t a_end,
                             std::size_t b_begin, std::size_t b_end) {
    double total = 0.0;
    std::size_t n = 0;
    for (std::size_t i = a_begin; i < a_end; ++i) {
      for (std::size_t j = b_begin; j < b_end; ++j) {
        if (i != j) {
          total += dtmsv::clustering::distance(points[i], points[j]);
          ++n;
        }
      }
    }
    return total / static_cast<double>(n);
  };
  const double intra = 0.5 * (mean_dist(0, 12, 0, 12) + mean_dist(12, 24, 12, 24));
  const double inter = mean_dist(0, 12, 12, 24);
  EXPECT_GT(inter, 2.0 * intra);
}

TEST(FeatureCompressor, DeterministicGivenSeed) {
  FeatureCompressor a(small_compressor(), 7);
  FeatureCompressor b(small_compressor(), 7);
  Rng rng(4);
  const auto windows = two_mode_windows(4, rng);
  const Points pa = a.embed(windows);
  const Points pb = b.embed(windows);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t d = 0; d < pa[i].size(); ++d) {
      EXPECT_DOUBLE_EQ(pa[i][d], pb[i][d]);
    }
  }
}

TEST(FeatureCompressor, WindowSizeMismatchRejected) {
  FeatureCompressor comp(small_compressor(), 5);
  std::vector<std::vector<float>> bad = {{1.0f, 2.0f}};
  EXPECT_THROW(comp.embed(bad), PreconditionError);
  EXPECT_THROW(comp.fit(bad), PreconditionError);
}

TEST(FeatureCompressor, EmptyInputRejected) {
  FeatureCompressor comp(small_compressor(), 6);
  const std::vector<std::vector<float>> none;
  EXPECT_THROW(comp.embed(none), PreconditionError);
  EXPECT_THROW(comp.fit(none), PreconditionError);
  // The zero-copy batch entry points reject empty batches the same way.
  EXPECT_THROW(comp.embed(dtmsv::twin::WindowBatch{}), PreconditionError);
  EXPECT_THROW(comp.fit(dtmsv::twin::WindowBatch{}), PreconditionError);
}

// -------------------------------------------------------- GroupConstructor

GroupConstructorConfig small_grouping() {
  GroupConstructorConfig cfg;
  cfg.k_min = 2;
  cfg.k_max = 6;
  cfg.ddqn.hidden = {32};
  cfg.ddqn.min_replay_before_train = 8;
  cfg.ddqn.batch_size = 8;
  cfg.ddqn.epsilon_decay_steps = 50;
  cfg.train_steps_per_interval = 4;
  return cfg;
}

Points blob_points(std::size_t blobs, std::size_t per_blob, double sep, Rng& rng) {
  Points points;
  for (std::size_t b = 0; b < blobs; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      points.push_back({sep * static_cast<double>(b) + rng.normal(0.0, 0.3),
                        rng.normal(0.0, 0.3)});
    }
  }
  return points;
}

TEST(GroupConstructor, StateDimensionMatchesEncoder) {
  const GroupConstructorConfig cfg = small_grouping();
  GroupConstructor ctor(cfg, 1);
  Rng rng(1);
  const Points points = blob_points(3, 10, 10.0, rng);
  const auto state = ctor.encode_state(points, 3);
  EXPECT_EQ(state.size(), GroupConstructor::state_dimension(cfg));
  for (const float v : state) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(GroupConstructor, StateHistogramIsDistribution) {
  const GroupConstructorConfig cfg = small_grouping();
  GroupConstructor ctor(cfg, 2);
  Rng rng(2);
  const Points points = blob_points(2, 20, 5.0, rng);
  const auto state = ctor.encode_state(points, 2);
  double hist_sum = 0.0;
  for (std::size_t i = 0; i < cfg.distance_histogram_bins; ++i) {
    hist_sum += state[i];
  }
  EXPECT_NEAR(hist_sum, 1.0, 1e-5);
}

TEST(GroupConstructor, DecisionWithinConfiguredRange) {
  GroupConstructor ctor(small_grouping(), 3);
  Rng rng(3);
  const Points points = blob_points(3, 10, 8.0, rng);
  for (int i = 0; i < 10; ++i) {
    const GroupingDecision d = ctor.construct(points, rng);
    EXPECT_GE(d.k, 2u);
    EXPECT_LE(d.k, 6u);
    ASSERT_EQ(d.assignment.size(), points.size());
    for (const std::size_t a : d.assignment) {
      EXPECT_LT(a, d.k);
    }
    EXPECT_GE(d.silhouette, -1.0);
    EXPECT_LE(d.silhouette, 1.0);
  }
}

TEST(GroupConstructor, ClampsKToPointCount) {
  GroupConstructorConfig cfg = small_grouping();
  cfg.k_min = 4;
  cfg.k_max = 12;
  GroupConstructor ctor(cfg, 4);
  Rng rng(4);
  const Points tiny = blob_points(1, 3, 1.0, rng);  // 3 points
  const GroupingDecision d = ctor.construct(tiny, rng);
  EXPECT_LE(d.k, 3u);
}

TEST(GroupConstructor, LearningLoopRunsAndEpsilonDecays) {
  GroupConstructor ctor(small_grouping(), 5);
  Rng rng(5);
  const Points points = blob_points(3, 12, 10.0, rng);
  const double eps0 = ctor.construct(points, rng).epsilon;
  for (int i = 0; i < 60; ++i) {
    ctor.report_outcome(0.1);
    ctor.construct(points, rng);
  }
  const double eps1 = ctor.construct(points, rng).epsilon;
  EXPECT_LT(eps1, eps0);
  EXPECT_GT(ctor.agent().replay_size(), 30u);
  EXPECT_GT(ctor.agent().train_steps(), 0u);
}

TEST(GroupConstructor, LearnsTowardGoodKOnSeparableData) {
  // With three well-separated blobs, silhouette rewards K=3 strongly.
  // After exploration decays, the greedy decision should cluster near 3.
  GroupConstructorConfig cfg = small_grouping();
  cfg.ddqn.epsilon_decay_steps = 120;
  cfg.ddqn.learning_rate = 2e-3;
  cfg.k_cost_weight = 0.05;
  GroupConstructor ctor(cfg, 6);
  Rng rng(6);
  const Points points = blob_points(3, 15, 20.0, rng);

  for (int i = 0; i < 160; ++i) {
    ctor.report_outcome(0.05);
    ctor.construct(points, rng);
  }
  // Greedy phase: collect the last decisions.
  std::vector<std::size_t> ks;
  for (int i = 0; i < 10; ++i) {
    ctor.report_outcome(0.05);
    ks.push_back(ctor.construct(points, rng).k);
  }
  // Majority of late decisions in {3, 4} (silhouette at 3 dominates).
  std::size_t good = 0;
  for (const std::size_t k : ks) {
    if (k == 3 || k == 4) {
      ++good;
    }
  }
  EXPECT_GE(good, 6u) << "DDQN failed to concentrate on the separable K";
}

TEST(GroupConstructor, ReportOutcomeValidation) {
  GroupConstructor ctor(small_grouping(), 7);
  EXPECT_THROW(ctor.report_outcome(-0.1), PreconditionError);
  ctor.report_outcome(0.5);  // fine
}

TEST(GroupConstructor, EmptyEmbeddingsRejected) {
  GroupConstructor ctor(small_grouping(), 8);
  Rng rng(8);
  Points empty;
  EXPECT_THROW(ctor.construct(empty, rng), PreconditionError);
}

TEST(GroupConstructor, InvalidConfigRejected) {
  GroupConstructorConfig cfg = small_grouping();
  cfg.k_min = 0;
  EXPECT_THROW(GroupConstructor(cfg, 1), PreconditionError);
  cfg = small_grouping();
  cfg.k_max = 1;
  cfg.k_min = 3;
  EXPECT_THROW(GroupConstructor(cfg, 1), PreconditionError);
}

}  // namespace
