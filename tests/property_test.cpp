// Property-based tests: parameterized sweeps over seeds and sizes asserting
// invariants that must hold for any configuration — distribution laws,
// demand-model monotonicity, swiping-CDF properties, and cross-module
// consistency of the multicast accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/swiping.hpp"
#include "clustering/kmeans.hpp"
#include "clustering/metrics.hpp"
#include "mobility/random_waypoint.hpp"
#include "predict/demand.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "video/dataset.hpp"
#include "wireless/channel.hpp"
#include "wireless/multicast.hpp"

namespace {

using namespace dtmsv;
using util::Rng;

// ----------------------------------------------- RNG distribution laws

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMomentsAndBounds) {
  Rng rng(GetParam());
  util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST_P(RngSeedSweep, DirichletAlwaysSimplex) {
  Rng rng(GetParam());
  const std::vector<double> alpha = {0.3, 0.3, 0.3, 0.3, 0.3, 0.3};
  for (int i = 0; i < 200; ++i) {
    const auto p = rng.dirichlet(alpha);
    double total = 0.0;
    for (const double v : p) {
      ASSERT_GE(v, 0.0);
      total += v;
    }
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_P(RngSeedSweep, BetaInUnitInterval) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const double b = rng.beta(0.7, 2.3);
    ASSERT_GE(b, 0.0);
    ASSERT_LE(b, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 17, 4242, 99991, 123456789));

// ----------------------------------------------- swiping CDF properties

struct SwipingParam {
  std::uint64_t seed;
  double beta_a;
  double beta_b;
};

class SwipingSweep : public ::testing::TestWithParam<SwipingParam> {};

TEST_P(SwipingSweep, CdfIsMonotoneZeroToOne) {
  const auto param = GetParam();
  Rng rng(param.seed);
  analysis::SwipingDistribution dist;
  for (int i = 0; i < 800; ++i) {
    dist.observe(video::Category::kMusic, rng.beta(param.beta_a, param.beta_b));
  }
  double prev = 0.0;
  EXPECT_NEAR(dist.cumulative_swipe_probability(video::Category::kMusic, 0.0), 0.0,
              1e-9);
  for (double t = 0.05; t <= 1.0; t += 0.05) {
    const double cdf = dist.cumulative_swipe_probability(video::Category::kMusic, t);
    ASSERT_GE(cdf, prev - 1e-12);
    prev = cdf;
  }
  // Evaluate the boundary explicitly: the loop's accumulated t drifts below 1.
  EXPECT_NEAR(dist.cumulative_swipe_probability(video::Category::kMusic, 1.0), 1.0,
              1e-9);
}

TEST_P(SwipingSweep, ExpectedMaxMonotoneInGroupSize) {
  const auto param = GetParam();
  Rng rng(param.seed);
  analysis::SwipingDistribution dist;
  for (int i = 0; i < 800; ++i) {
    dist.observe(video::Category::kGame, rng.beta(param.beta_a, param.beta_b));
  }
  double prev = 0.0;
  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u, 64u}) {
    const double e = dist.expected_max_watch_fraction(video::Category::kGame, k);
    ASSERT_GE(e, prev - 1e-12);
    ASSERT_LE(e, 1.0);
    prev = e;
  }
}

TEST_P(SwipingSweep, ExpectedMaxOfOneEqualsMean) {
  const auto param = GetParam();
  Rng rng(param.seed);
  analysis::SwipingDistribution dist;
  for (int i = 0; i < 2000; ++i) {
    dist.observe(video::Category::kNews, rng.beta(param.beta_a, param.beta_b));
  }
  EXPECT_NEAR(dist.expected_max_watch_fraction(video::Category::kNews, 1),
              dist.expected_watch_fraction(video::Category::kNews), 0.03);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SwipingSweep,
                         ::testing::Values(SwipingParam{1, 2.0, 2.0},
                                           SwipingParam{2, 0.5, 3.0},
                                           SwipingParam{3, 5.0, 1.5},
                                           SwipingParam{4, 1.0, 1.0}));

// ----------------------------------------------- demand-model monotonicity

struct DemandParam {
  std::uint64_t seed;
  std::size_t members;
  double efficiency;
};

class DemandSweep : public ::testing::TestWithParam<DemandParam> {};

predict::ContentStats flat_content() {
  predict::ContentStats content;
  content.mean_duration_s.fill(15.0);
  content.ladder_kbps = {750.0, 1200.0, 1850.0, 2850.0, 4300.0};
  return content;
}

TEST_P(DemandSweep, DemandNonNegativeAndConsistent) {
  const auto param = GetParam();
  Rng rng(param.seed);
  analysis::SwipingDistribution swiping;
  for (int i = 0; i < 500; ++i) {
    for (const auto c : video::all_categories()) {
      swiping.observe(c, rng.beta(1.5, 2.5));
    }
  }
  behavior::PreferenceVector mix{};
  mix.fill(1.0 / video::kCategoryCount);
  std::array<std::size_t, video::kCategoryCount> playlist{};
  playlist.fill(4);
  predict::DemandModelConfig config;

  const auto d = predict::predict_group_demand(param.members, mix, swiping,
                                               param.efficiency, playlist,
                                               flat_content(), config);
  ASSERT_GE(d.radio_hz, 0.0);
  ASSERT_GE(d.compute_cycles, 0.0);
  ASSERT_GE(d.transmitted_bits, 0.0);
  // radio_hz must equal bits / efficiency / interval with the floored
  // efficiency.
  const double eff = std::max(param.efficiency, config.efficiency_floor);
  EXPECT_NEAR(d.radio_hz, d.transmitted_bits / eff / config.interval_s,
              1e-6 * std::max(1.0, d.radio_hz));
}

TEST_P(DemandSweep, BitsMonotoneInMembersAtFixedEfficiency) {
  const auto param = GetParam();
  Rng rng(param.seed);
  analysis::SwipingDistribution swiping;
  for (int i = 0; i < 500; ++i) {
    for (const auto c : video::all_categories()) {
      swiping.observe(c, rng.beta(2.0, 3.0));
    }
  }
  behavior::PreferenceVector mix{};
  mix.fill(1.0 / video::kCategoryCount);
  std::array<std::size_t, video::kCategoryCount> playlist{};
  playlist.fill(4);
  predict::DemandModelConfig config;
  const auto content = flat_content();

  double prev_on_air_share = 0.0;
  for (const std::size_t m : {1u, 2u, 4u, 16u, 64u}) {
    const auto d = predict::predict_group_demand(m, mix, swiping, param.efficiency,
                                                 playlist, content, config);
    // Per-video on-air time (bits / bitrate / videos) grows with group size.
    const double per_video_s =
        d.transmitted_bits /
        (content.ladder_kbps[d.rung] * 1e3 * std::max(d.distinct_videos, 1e-9));
    ASSERT_GE(per_video_s, prev_on_air_share - 1e-9);
    prev_on_air_share = per_video_s;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, DemandSweep,
                         ::testing::Values(DemandParam{1, 1, 0.2},
                                           DemandParam{2, 5, 1.0},
                                           DemandParam{3, 20, 2.5},
                                           DemandParam{4, 50, 5.0},
                                           DemandParam{5, 8, 0.05}));

// ----------------------------------------------- multicast PHY properties

class PhySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PhySweep, GroupEfficiencyNeverExceedsAnyMember) {
  Rng rng(GetParam());
  wireless::MulticastPhy phy;
  for (int trial = 0; trial < 100; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 30));
    std::vector<double> effs;
    for (std::size_t i = 0; i < n; ++i) {
      effs.push_back(rng.uniform(0.0, 6.0));
    }
    const double g = phy.group_efficiency(effs);
    for (const double e : effs) {
      ASSERT_LE(g, std::max(e, phy.min_efficiency_floor()) + 1e-12);
    }
  }
}

TEST_P(PhySweep, BandwidthScalesLinearlyWithBitrate) {
  Rng rng(GetParam());
  wireless::MulticastPhy phy;
  for (int trial = 0; trial < 50; ++trial) {
    const double eff = rng.uniform(0.1, 6.0);
    const double rate = rng.uniform(100.0, 5000.0);
    const double one = phy.required_bandwidth_hz(rate, eff);
    const double two = phy.required_bandwidth_hz(2.0 * rate, eff);
    ASSERT_NEAR(two, 2.0 * one, 1e-6 * two);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhySweep, ::testing::Values(11, 22, 33));

// ----------------------------------------------- dataset statistical shape

class DatasetSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DatasetSweep, WatchFractionsLawful) {
  Rng rng(GetParam());
  video::DatasetConfig cfg;
  cfg.catalog.videos_per_category = 20;
  cfg.user_count = 20;
  cfg.sessions_per_user = 30;
  const auto ds = video::Dataset::generate(cfg, rng);
  for (const auto& rec : ds.records()) {
    ASSERT_GE(rec.watch_fraction, 0.0);
    ASSERT_LE(rec.watch_fraction, 1.0);
    ASSERT_GT(rec.duration_s, 0.0);
    ASSERT_LT(rec.video_id, ds.catalog().size());
  }
}

TEST_P(DatasetSweep, CsvRoundTripLossless) {
  Rng rng(GetParam());
  video::DatasetConfig cfg;
  cfg.catalog.videos_per_category = 10;
  cfg.user_count = 8;
  cfg.sessions_per_user = 10;
  const auto ds = video::Dataset::generate(cfg, rng);
  const auto parsed = video::Dataset::trace_from_csv(ds.trace_to_csv());
  ASSERT_EQ(parsed.size(), ds.records().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    ASSERT_EQ(parsed[i].video_id, ds.records()[i].video_id);
    ASSERT_DOUBLE_EQ(parsed[i].watch_fraction, ds.records()[i].watch_fraction);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatasetSweep, ::testing::Values(5, 50, 500));

// ----------------------------------------------- channel model invariants

class ChannelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelSweep, EfficiencyAlwaysLawful) {
  const auto map = mobility::CampusMap::waterloo_campus();
  Rng rng(GetParam());
  wireless::RadioConfig cfg;
  wireless::ChannelModel channel(map, cfg, 10, rng);
  mobility::MobilityConfig mob_cfg;
  Rng mob_rng(GetParam() + 1);
  mobility::MobilityField field(map, mob_cfg, 10, mob_rng);

  for (int t = 0; t < 120; ++t) {
    field.advance(1.0);
    channel.step(field.snapshot());
    for (std::size_t u = 0; u < 10; ++u) {
      const auto& s = channel.sample_of(u);
      ASSERT_TRUE(std::isfinite(s.snr_db));
      ASSERT_GE(s.efficiency_bps_hz, 0.0);
      ASSERT_LE(s.efficiency_bps_hz, 5.5547 + 1e-9);  // CQI-15 cap
      ASSERT_LT(s.serving_bs, map.base_stations().size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelSweep, ::testing::Values(7, 77, 777));

// ----------------------------------------------- clustering + metrics glue

class SilhouetteSweepProp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SilhouetteSweepProp, BetterSeparationBetterSilhouette) {
  Rng rng(GetParam());
  const auto make_blobs = [&](double sep) {
    clustering::Points points;
    for (int b = 0; b < 3; ++b) {
      for (int i = 0; i < 15; ++i) {
        points.push_back({sep * b + rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)});
      }
    }
    return points;
  };
  const auto tight = make_blobs(30.0);
  const auto loose = make_blobs(3.0);
  const auto rt = clustering::k_means(tight, 3, rng);
  const auto rl = clustering::k_means(loose, 3, rng);
  EXPECT_GT(clustering::silhouette(tight, rt.assignment),
            clustering::silhouette(loose, rl.assignment));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SilhouetteSweepProp, ::testing::Values(3, 33, 333));

}  // namespace
