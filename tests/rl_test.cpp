// Unit tests for dtmsv::rl — replay-buffer semantics, epsilon schedule, and
// DDQN learning on a tiny bandit/chain environment.
#include <gtest/gtest.h>

#include <algorithm>

#include "rl/ddqn.hpp"
#include "rl/replay_buffer.hpp"
#include "util/error.hpp"

namespace {

using namespace dtmsv::rl;
using dtmsv::util::PreconditionError;
using dtmsv::util::Rng;

Transition make_transition(float marker, std::size_t action = 0) {
  Transition t;
  t.state = {marker, 0.0f};
  t.action = action;
  t.reward = marker;
  t.next_state = {marker + 0.5f, 0.0f};
  t.done = false;
  return t;
}

// ------------------------------------------------------------ ReplayBuffer

TEST(ReplayBuffer, StartsEmpty) {
  ReplayBuffer buf(4);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 4u);
}

TEST(ReplayBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(ReplayBuffer(0), PreconditionError);
}

TEST(ReplayBuffer, FillsThenEvictsOldest) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 3; ++i) {
    buf.push(make_transition(static_cast<float>(i)));
  }
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_FLOAT_EQ(buf.at(0).reward, 0.0f);

  buf.push(make_transition(3.0f));  // evicts 0
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_FLOAT_EQ(buf.at(0).reward, 1.0f);
  EXPECT_FLOAT_EQ(buf.at(2).reward, 3.0f);
}

TEST(ReplayBuffer, AgeOrderStableAcrossWraparound) {
  ReplayBuffer buf(4);
  for (int i = 0; i < 10; ++i) {
    buf.push(make_transition(static_cast<float>(i)));
  }
  // Retained: 6, 7, 8, 9 (oldest first).
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(buf.at(i).reward, static_cast<float>(6 + i));
  }
}

TEST(ReplayBuffer, SampleOnlyReturnsStored) {
  ReplayBuffer buf(8);
  for (int i = 0; i < 5; ++i) {
    buf.push(make_transition(static_cast<float>(i)));
  }
  Rng rng(1);
  const auto batch = buf.sample(64, rng);
  ASSERT_EQ(batch.size(), 64u);
  for (const auto* t : batch) {
    EXPECT_GE(t->reward, 0.0f);
    EXPECT_LE(t->reward, 4.0f);
  }
}

TEST(ReplayBuffer, SampleEmptyRejected) {
  ReplayBuffer buf(2);
  Rng rng(1);
  EXPECT_THROW(buf.sample(1, rng), PreconditionError);
}

TEST(ReplayBuffer, ClearResets) {
  ReplayBuffer buf(2);
  buf.push(make_transition(1.0f));
  buf.clear();
  EXPECT_TRUE(buf.empty());
  buf.push(make_transition(2.0f));
  EXPECT_FLOAT_EQ(buf.at(0).reward, 2.0f);
}

TEST(ReplayBuffer, OutOfRangeAtRejected) {
  ReplayBuffer buf(2);
  buf.push(make_transition(1.0f));
  EXPECT_THROW(buf.at(1), PreconditionError);
}

// -------------------------------------------------------- EpsilonSchedule

TEST(EpsilonSchedule, LinearDecayEndpoints) {
  EpsilonSchedule sched(1.0, 0.1, 100);
  EXPECT_DOUBLE_EQ(sched.value(0), 1.0);
  EXPECT_NEAR(sched.value(50), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(sched.value(100), 0.1);
  EXPECT_DOUBLE_EQ(sched.value(10000), 0.1);
}

TEST(EpsilonSchedule, RejectsRisingSchedule) {
  EXPECT_THROW(EpsilonSchedule(0.1, 0.5, 10), PreconditionError);
}

// -------------------------------------------------------------- DdqnAgent

DdqnConfig small_config(std::size_t state_dim = 2, std::size_t actions = 3) {
  DdqnConfig cfg;
  cfg.state_dim = state_dim;
  cfg.action_count = actions;
  cfg.hidden = {16};
  cfg.batch_size = 16;
  cfg.replay_capacity = 512;
  cfg.min_replay_before_train = 32;
  cfg.target_sync_every = 20;
  cfg.epsilon_start = 1.0;
  cfg.epsilon_end = 0.05;
  cfg.epsilon_decay_steps = 200;
  return cfg;
}

TEST(DdqnAgent, ConfigValidation) {
  DdqnConfig cfg = small_config();
  cfg.state_dim = 0;
  EXPECT_THROW(DdqnAgent(cfg, 1), PreconditionError);
  cfg = small_config();
  cfg.action_count = 0;
  EXPECT_THROW(DdqnAgent(cfg, 1), PreconditionError);
  cfg = small_config();
  cfg.gamma = 1.0;
  EXPECT_THROW(DdqnAgent(cfg, 1), PreconditionError);
}

TEST(DdqnAgent, QValuesShape) {
  DdqnAgent agent(small_config(), 7);
  const std::vector<float> state = {0.5f, -0.5f};
  const auto q = agent.q_values(state);
  EXPECT_EQ(q.size(), 3u);
}

TEST(DdqnAgent, GreedyMatchesArgmax) {
  DdqnAgent agent(small_config(), 8);
  const std::vector<float> state = {0.2f, 0.8f};
  const auto q = agent.q_values(state);
  const auto argmax = static_cast<std::size_t>(
      std::distance(q.begin(), std::max_element(q.begin(), q.end())));
  EXPECT_EQ(agent.greedy_action(state), argmax);
}

TEST(DdqnAgent, EpsilonDecaysWithActions) {
  DdqnAgent agent(small_config(), 9);
  const double eps0 = agent.current_epsilon();
  const std::vector<float> state = {0.0f, 0.0f};
  for (int i = 0; i < 100; ++i) {
    agent.act(state);
  }
  EXPECT_LT(agent.current_epsilon(), eps0);
  EXPECT_EQ(agent.action_steps(), 100u);
}

TEST(DdqnAgent, EvalActionsLeaveEpsilonScheduleUntouched) {
  // Regression: act(explore=false) used to advance the schedule, so
  // evaluation rollouts silently consumed the exploration budget.
  DdqnAgent agent(small_config(), 29);
  const double eps0 = agent.current_epsilon();
  const std::vector<float> state = {0.3f, -0.7f};
  for (int i = 0; i < 50; ++i) {
    agent.act(state, /*explore=*/false);
  }
  EXPECT_EQ(agent.action_steps(), 0u);
  EXPECT_DOUBLE_EQ(agent.current_epsilon(), eps0);
  // Exploring calls still decay it.
  for (int i = 0; i < 10; ++i) {
    agent.act(state, /*explore=*/true);
  }
  EXPECT_EQ(agent.action_steps(), 10u);
  EXPECT_LT(agent.current_epsilon(), eps0);
}

TEST(DdqnAgent, NoTrainingBeforeMinReplay) {
  DdqnAgent agent(small_config(), 10);
  agent.observe(make_transition(0.1f));
  EXPECT_FALSE(agent.train_step().has_value());
  EXPECT_EQ(agent.train_steps(), 0u);
}

TEST(DdqnAgent, ObserveValidatesShapes) {
  DdqnAgent agent(small_config(), 11);
  Transition t;
  t.state = {0.0f};  // wrong dim
  t.next_state = {0.0f, 0.0f};
  EXPECT_THROW(agent.observe(t), PreconditionError);
  Transition t2 = make_transition(0.0f, /*action=*/99);
  EXPECT_THROW(agent.observe(t2), PreconditionError);
}

TEST(DdqnAgent, DeterministicAcrossSeeds) {
  DdqnAgent a(small_config(), 42);
  DdqnAgent b(small_config(), 42);
  const std::vector<float> state = {0.3f, 0.7f};
  const auto qa = a.q_values(state);
  const auto qb = b.q_values(state);
  for (std::size_t i = 0; i < qa.size(); ++i) {
    EXPECT_FLOAT_EQ(qa[i], qb[i]);
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.act(state), b.act(state));
  }
}

// A 2-armed bandit with state-dependent best arm: state (1,0) -> arm 0 pays
// 1, arm 1 pays 0; state (0,1) reversed. DDQN must learn the mapping.
TEST(DdqnAgent, LearnsContextualBandit) {
  DdqnConfig cfg = small_config(2, 2);
  cfg.gamma = 0.0;  // bandit: no bootstrapping
  cfg.learning_rate = 5e-3;
  cfg.epsilon_decay_steps = 400;
  DdqnAgent agent(cfg, 123);
  Rng env_rng(321);

  for (int episode = 0; episode < 600; ++episode) {
    const bool flip = env_rng.bernoulli(0.5);
    const std::vector<float> state = flip ? std::vector<float>{0.0f, 1.0f}
                                          : std::vector<float>{1.0f, 0.0f};
    const std::size_t action = agent.act(state);
    const std::size_t best = flip ? 1u : 0u;
    const float reward = action == best ? 1.0f : 0.0f;
    agent.observe({state, action, reward, state, true});
    agent.train_step();
  }

  EXPECT_EQ(agent.greedy_action(std::vector<float>{1.0f, 0.0f}), 0u);
  EXPECT_EQ(agent.greedy_action(std::vector<float>{0.0f, 1.0f}), 1u);
  EXPECT_GT(agent.train_steps(), 0u);
}

// Two-state chain: from s0, action 1 reaches s1 (reward 0), where action 1
// pays 10 and terminates. With gamma high enough the agent must prefer
// action 1 in s0 even though its immediate reward is 0.
TEST(DdqnAgent, PropagatesValueThroughBootstrap) {
  DdqnConfig cfg = small_config(2, 2);
  cfg.gamma = 0.9;
  cfg.learning_rate = 5e-3;
  cfg.epsilon_decay_steps = 300;
  cfg.target_sync_every = 25;
  DdqnAgent agent(cfg, 77);

  const std::vector<float> s0 = {1.0f, 0.0f};
  const std::vector<float> s1 = {0.0f, 1.0f};
  for (int episode = 0; episode < 500; ++episode) {
    // In s0: action 0 terminates with tiny reward; action 1 moves to s1.
    const std::size_t a0 = agent.act(s0);
    if (a0 == 0) {
      agent.observe({s0, 0, 0.5f, s0, true});
    } else {
      agent.observe({s0, 1, 0.0f, s1, false});
      const std::size_t a1 = agent.act(s1);
      const float r1 = a1 == 1 ? 10.0f : 0.0f;
      agent.observe({s1, a1, r1, s1, true});
    }
    agent.train_step();
    agent.train_step();
  }

  EXPECT_EQ(agent.greedy_action(s1), 1u);
  EXPECT_EQ(agent.greedy_action(s0), 1u) << "agent failed to bootstrap future value";
}

TEST(DdqnAgent, TargetSyncHappens) {
  DdqnConfig cfg = small_config();
  cfg.min_replay_before_train = 16;
  cfg.batch_size = 8;
  cfg.target_sync_every = 5;
  DdqnAgent agent(cfg, 5);
  for (int i = 0; i < 32; ++i) {
    agent.observe(make_transition(static_cast<float>(i) * 0.01f, i % 3));
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(agent.train_step().has_value());
  }
  // After a sync the target and online nets agree on Q-values.
  // (train_steps == 10, last sync at step 10.)
  const std::vector<float> probe = {0.4f, 0.6f};
  dtmsv::nn::Tensor input({1, 2});
  input[0] = probe[0];
  input[1] = probe[1];
  const auto q_online = agent.online_network().forward(input);
  const auto q_target = agent.target_network().forward(input);
  for (std::size_t i = 0; i < q_online.size(); ++i) {
    EXPECT_FLOAT_EQ(q_online[i], q_target[i]);
  }
}

}  // namespace
