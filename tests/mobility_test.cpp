// Unit tests for dtmsv::mobility — campus graph invariants, shortest paths,
// walker kinematics and the lock-step mobility field.
#include <gtest/gtest.h>

#include <cmath>

#include "mobility/campus_map.hpp"
#include "mobility/random_waypoint.hpp"
#include "util/error.hpp"

namespace {

using namespace dtmsv::mobility;
using dtmsv::util::PreconditionError;
using dtmsv::util::Rng;

TEST(Position, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

// ---------------------------------------------------------------- CampusMap

TEST(CampusMap, WaterlooCampusIsValid) {
  const CampusMap map = CampusMap::waterloo_campus();
  EXPECT_GT(map.waypoint_count(), 20u);
  EXPECT_GE(map.base_stations().size(), 3u);
  EXPECT_DOUBLE_EQ(map.width(), 1200.0);
  EXPECT_DOUBLE_EQ(map.height(), 1000.0);
  map.validate();  // must not throw
}

TEST(CampusMap, WaypointsInsideBoundingBox) {
  const CampusMap map = CampusMap::waterloo_campus();
  for (const auto& wp : map.waypoints()) {
    EXPECT_GE(wp.position.x, 0.0);
    EXPECT_LE(wp.position.x, map.width());
    EXPECT_GE(wp.position.y, 0.0);
    EXPECT_LE(wp.position.y, map.height());
  }
}

TEST(CampusMap, GridConstruction) {
  const CampusMap map = CampusMap::grid(4, 3, 100.0);
  EXPECT_EQ(map.waypoint_count(), 12u);
  EXPECT_DOUBLE_EQ(map.width(), 400.0);
  EXPECT_DOUBLE_EQ(map.height(), 300.0);
  // Corner has exactly 2 neighbours; interior node has 4.
  EXPECT_EQ(map.waypoint(0).neighbors.size(), 2u);
  EXPECT_EQ(map.waypoint(5).neighbors.size(), 4u);
}

TEST(CampusMap, GridRejectsDegenerate) {
  EXPECT_THROW(CampusMap::grid(1, 3, 10.0), PreconditionError);
  EXPECT_THROW(CampusMap::grid(3, 3, 0.0), PreconditionError);
}

TEST(CampusMap, NearestWaypoint) {
  const CampusMap map = CampusMap::grid(3, 3, 100.0);
  // Waypoint 0 sits at (50, 50).
  EXPECT_EQ(map.nearest_waypoint({40.0, 60.0}), 0u);
  // Waypoint 8 sits at (250, 250).
  EXPECT_EQ(map.nearest_waypoint({260.0, 240.0}), 8u);
}

TEST(CampusMap, ShortestPathOnGrid) {
  const CampusMap map = CampusMap::grid(3, 3, 100.0);
  // 0 -> 8 needs 4 hops (Manhattan), path has 5 nodes.
  const auto path = map.shortest_path(0, 8);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 8u);
  // Consecutive nodes are neighbours.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto& nbrs = map.waypoint(path[i]).neighbors;
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), path[i + 1]), nbrs.end());
  }
}

TEST(CampusMap, ShortestPathToSelf) {
  const CampusMap map = CampusMap::grid(3, 3, 100.0);
  const auto path = map.shortest_path(4, 4);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 4u);
}

TEST(CampusMap, AllWaterlooPairsReachable) {
  const CampusMap map = CampusMap::waterloo_campus();
  for (std::size_t to = 1; to < map.waypoint_count(); ++to) {
    EXPECT_FALSE(map.shortest_path(0, to).empty())
        << "waypoint " << to << " unreachable from 0";
  }
}

TEST(CampusMap, RandomPositionInBounds) {
  const CampusMap map = CampusMap::waterloo_campus();
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Position p = map.random_position(rng);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, map.width());
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, map.height());
  }
}

// ------------------------------------------------------------------- Walker

MobilityConfig walker_config() {
  MobilityConfig cfg;
  cfg.min_speed_mps = 1.0;
  cfg.max_speed_mps = 1.5;
  cfg.min_pause_s = 0.0;
  cfg.max_pause_s = 5.0;
  return cfg;
}

TEST(Walker, SpeedBoundsMovement) {
  const CampusMap map = CampusMap::waterloo_campus();
  const MobilityConfig cfg = walker_config();
  Walker w(map, cfg, Rng(7));
  Position prev = w.position();
  for (int i = 0; i < 500; ++i) {
    w.advance(1.0);
    const double moved = distance(prev, w.position());
    // Movement per second can never exceed max speed.
    EXPECT_LE(moved, cfg.max_speed_mps + 1e-6);
    prev = w.position();
  }
}

TEST(Walker, EventuallyMoves) {
  const CampusMap map = CampusMap::waterloo_campus();
  Walker w(map, walker_config(), Rng(8));
  const Position start = w.position();
  double total_moved = 0.0;
  Position prev = start;
  for (int i = 0; i < 600; ++i) {
    w.advance(1.0);
    total_moved += distance(prev, w.position());
    prev = w.position();
  }
  EXPECT_GT(total_moved, 100.0) << "walker barely moved in 10 minutes";
}

TEST(Walker, AdvanceRejectsNonPositiveDt) {
  const CampusMap map = CampusMap::waterloo_campus();
  Walker w(map, walker_config(), Rng(9));
  EXPECT_THROW(w.advance(0.0), PreconditionError);
  EXPECT_THROW(w.advance(-1.0), PreconditionError);
}

TEST(Walker, DeterministicGivenSeed) {
  const CampusMap map = CampusMap::waterloo_campus();
  Walker a(map, walker_config(), Rng(10));
  Walker b(map, walker_config(), Rng(10));
  for (int i = 0; i < 100; ++i) {
    a.advance(1.0);
    b.advance(1.0);
  }
  EXPECT_DOUBLE_EQ(a.position().x, b.position().x);
  EXPECT_DOUBLE_EQ(a.position().y, b.position().y);
}

TEST(Walker, LargeTimestepEquivalentDistance) {
  // Total distance walked is conserved regardless of tick granularity
  // (same seed → same waypoint/speed stream; no pauses for comparability).
  const CampusMap map = CampusMap::waterloo_campus();
  MobilityConfig cfg = walker_config();
  cfg.max_pause_s = 0.0;
  cfg.min_pause_s = 0.0;
  Walker fine(map, cfg, Rng(11));
  Walker coarse(map, cfg, Rng(11));
  for (int i = 0; i < 300; ++i) {
    fine.advance(1.0);
  }
  for (int i = 0; i < 30; ++i) {
    coarse.advance(10.0);
  }
  EXPECT_NEAR(fine.position().x, coarse.position().x, 1e-6);
  EXPECT_NEAR(fine.position().y, coarse.position().y, 1e-6);
}

// ------------------------------------------------------------ MobilityField

TEST(MobilityField, PopulationSnapshot) {
  const CampusMap map = CampusMap::waterloo_campus();
  Rng rng(12);
  MobilityField field(map, walker_config(), 25, rng);
  EXPECT_EQ(field.user_count(), 25u);
  const auto snap = field.snapshot();
  ASSERT_EQ(snap.size(), 25u);
  field.advance(5.0);
  for (const auto& p : field.snapshot()) {
    EXPECT_TRUE(std::isfinite(p.x));
    EXPECT_TRUE(std::isfinite(p.y));
  }
}

TEST(MobilityField, UsersSpreadOut) {
  const CampusMap map = CampusMap::waterloo_campus();
  Rng rng(13);
  MobilityField field(map, walker_config(), 40, rng);
  const auto snap = field.snapshot();
  double max_pairwise = 0.0;
  for (std::size_t i = 0; i < snap.size(); ++i) {
    for (std::size_t j = i + 1; j < snap.size(); ++j) {
      max_pairwise = std::max(max_pairwise, distance(snap[i], snap[j]));
    }
  }
  EXPECT_GT(max_pairwise, 200.0);
}

TEST(MobilityField, OutOfRangeUserRejected) {
  const CampusMap map = CampusMap::waterloo_campus();
  Rng rng(14);
  MobilityField field(map, walker_config(), 3, rng);
  EXPECT_THROW(field.position_of(3), PreconditionError);
}

TEST(MobilityField, ZeroUsersRejected) {
  const CampusMap map = CampusMap::waterloo_campus();
  Rng rng(15);
  EXPECT_THROW(MobilityField(map, walker_config(), 0, rng), PreconditionError);
}

}  // namespace
