// Unit tests for util::Config (the INI parser behind the dtmsv_sim CLI) and
// cli::load_plan (config text -> scenario jobs): parse/round-trip behaviour,
// typed getters, malformed-input errors, grid expansion, stage-key and
// unknown-key validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "cli/scenario_loader.hpp"
#include "core/scenarios.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

namespace {

using namespace dtmsv;
using util::Config;

// ------------------------------------------------------------------ parsing

TEST(Config, ParsesSectionsCommentsAndWhitespace) {
  Config c = Config::parse(
      "# full-line comment\n"
      "; alternative comment\n"
      "root_key = 1\n"
      "\n"
      "[scenario]\n"
      "  kind   =   flash_crowd  \n"
      "users = 240   # inline comment\n"
      "list = a, b ,c,\n"
      "[a.b]\n"
      "nested = yes\n");
  EXPECT_EQ(c.get("root_key"), "1");
  EXPECT_EQ(c.get("scenario.kind"), "flash_crowd");
  EXPECT_EQ(c.get_size("scenario.users"), 240u);
  EXPECT_EQ(c.get_list("scenario.list"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(c.get_bool("a.b.nested"));
  EXPECT_EQ(c.size(), 5u);
}

TEST(Config, ValueMayContainEqualsAndUnspacedHash) {
  Config c = Config::parse("expr = a=b=c\ncolor = #ff0000\n");
  EXPECT_EQ(c.get("expr"), "a=b=c");
  // '#' only starts an inline comment after whitespace.
  EXPECT_EQ(c.get("color"), "#ff0000");
}

TEST(Config, MalformedLinesReportLineNumbers) {
  try {
    Config::parse("ok = 1\nnot a pair\n");
    FAIL() << "expected RuntimeError";
  } catch (const util::RuntimeError& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(Config::parse("[unterminated\n"), util::RuntimeError);
  EXPECT_THROW(Config::parse("[]\n"), util::RuntimeError);
  EXPECT_THROW(Config::parse("= value\n"), util::RuntimeError);
  EXPECT_THROW(Config::parse("a = 1\na = 2\n"), util::RuntimeError);
  // Same leaf under different sections is not a duplicate.
  EXPECT_NO_THROW(Config::parse("[x]\na = 1\n[y]\na = 2\n"));
}

TEST(Config, TypedGettersValidate) {
  Config c = Config::parse(
      "d = 2.5\nn = 7\nneg = -3\nb1 = on\nb0 = No\nbad = maybe\ntext = abc\n");
  EXPECT_DOUBLE_EQ(c.get_double("d"), 2.5);
  EXPECT_EQ(c.get_size("n"), 7u);
  EXPECT_EQ(c.get_uint64("n"), 7u);
  EXPECT_TRUE(c.get_bool("b1"));
  EXPECT_FALSE(c.get_bool("b0"));
  EXPECT_THROW(c.get_double("text"), util::RuntimeError);
  EXPECT_THROW(c.get_size("neg"), util::RuntimeError);
  EXPECT_THROW(c.get_size("d"), util::RuntimeError);
  EXPECT_THROW(c.get_bool("bad"), util::RuntimeError);
  EXPECT_THROW(c.get("missing"), util::RuntimeError);
  EXPECT_EQ(c.get_or("missing", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(c.get_double_or("missing", 1.5), 1.5);
  EXPECT_EQ(c.get_size_or("missing", 9u), 9u);
  EXPECT_TRUE(c.get_bool_or("missing", true));
}

TEST(Config, RoundTripsThroughToString) {
  Config original = Config::parse(
      "zebra = root keys sort after sections\n"
      "alpha = 1\n"
      "[scenario]\n"
      "kind = steady_state\n"
      "total_users = 240\n"
      "[a.b]\n"
      "deep = value with spaces\n");
  Config reparsed = Config::parse(original.to_string());
  ASSERT_EQ(reparsed.keys(), original.keys());
  for (const std::string& key : original.keys()) {
    EXPECT_EQ(reparsed.get(key), original.get(key)) << key;
  }
  // A second trip is a fixed point.
  EXPECT_EQ(Config::parse(reparsed.to_string()).to_string(),
            reparsed.to_string());
}

TEST(Config, ParseUint64RejectsSignsPartialParsesAndOverflow) {
  EXPECT_EQ(util::parse_uint64("7", "n"), 7u);
  EXPECT_EQ(util::parse_uint64("0", "n"), 0u);
  EXPECT_THROW(util::parse_uint64("-1", "n"), util::RuntimeError);
  EXPECT_THROW(util::parse_uint64("+1", "n"), util::RuntimeError);
  EXPECT_THROW(util::parse_uint64("7x", "n"), util::RuntimeError);
  EXPECT_THROW(util::parse_uint64(" 7", "n"), util::RuntimeError);
  EXPECT_THROW(util::parse_uint64("", "n"), util::RuntimeError);
  EXPECT_THROW(util::parse_uint64("99999999999999999999999", "n"),
               util::RuntimeError);
}

TEST(Config, SetOverridesAndUnreadTracking) {
  Config c = Config::parse("[s]\nread_me = 1\ntypo_key = 2\n");
  c.set("s.read_me", "10");
  EXPECT_EQ(c.get_size("s.read_me"), 10u);
  const std::vector<std::string> unread = c.unread_keys();
  ASSERT_EQ(unread.size(), 1u);
  EXPECT_EQ(unread.front(), "s.typo_key");
}

TEST(Config, KeysInSectionExcludesNestedSections) {
  Config c = Config::parse("[a]\nx = 1\n[a.b]\ny = 2\n");
  EXPECT_EQ(c.keys_in("a"), std::vector<std::string>{"x"});
  EXPECT_EQ(c.keys_in("a.b"), std::vector<std::string>{"y"});
}

// ------------------------------------------------------------- plan loading

TEST(ScenarioLoader, LoadsSingleScenarioWithOverrides) {
  Config c = Config::parse(
      "[scenario]\n"
      "kind = flash_crowd\n"
      "total_users = 64\n"
      "cell_count = 2\n"
      "intervals = 4\n"
      "seed = 9\n"
      "surge_interval = 1\n"
      "surge_fraction = 0.25\n"
      "[run]\n"
      "threads = 3\n"
      "report = out.ndjson\n"
      "[stages]\n"
      "feature = summary\n"
      "grouping = elbow\n"
      "demand = mean\n"
      "[scheme]\n"
      "interval_s = 30\n"
      "[grouping]\n"
      "k_max = 5\n");
  const cli::SimPlan plan = cli::load_plan(c);
  EXPECT_EQ(plan.threads, 3u);
  EXPECT_EQ(plan.report_path, "out.ndjson");
  ASSERT_EQ(plan.jobs.size(), 1u);
  const cli::SimJob& job = plan.jobs.front();
  EXPECT_EQ(job.label, "flash_crowd");
  EXPECT_EQ(job.scenario.kind, core::ScenarioKind::kFlashCrowd);
  EXPECT_EQ(job.scenario.total_users, 64u);
  EXPECT_EQ(job.scenario.cell_count, 2u);
  EXPECT_EQ(job.scenario.intervals, 4u);
  EXPECT_EQ(job.scenario.seed, 9u);
  EXPECT_EQ(job.scenario.surge_interval, 1u);
  EXPECT_DOUBLE_EQ(job.scenario.surge_fraction, 0.25);
  EXPECT_EQ(job.scenario.base.feature_stage, "summary");
  EXPECT_EQ(job.scenario.base.grouping_stage, "elbow");
  EXPECT_EQ(job.scenario.base.demand_stage, "mean");
  EXPECT_DOUBLE_EQ(job.scenario.base.interval_s, 30.0);
  // demand model must track the overridden reservation interval
  EXPECT_DOUBLE_EQ(job.scenario.base.demand.interval_s, 30.0);
  EXPECT_EQ(job.scenario.base.grouping.k_max, 5u);
}

TEST(ScenarioLoader, GridExpandsCrossProductWithUniqueLabels) {
  Config c = Config::parse(
      "[grid]\n"
      "scenario = steady_state, catalog_drift\n"
      "seed = 1, 2\n"
      "grouping = ddqn, elbow\n");
  const cli::SimPlan plan = cli::load_plan(c);
  ASSERT_EQ(plan.jobs.size(), 8u);
  std::set<std::string> labels;
  for (const cli::SimJob& job : plan.jobs) {
    labels.insert(job.label);
  }
  EXPECT_EQ(labels.size(), 8u);  // every grid cell distinctly labelled
  EXPECT_EQ(plan.jobs.front().label, "steady_state/seed=1/default+ddqn+default");
}

TEST(ScenarioLoader, CatalogDriftRatesReachTheSchemeBase) {
  Config c = Config::parse(
      "[scenario]\n"
      "kind = catalog_drift\n"
      "drift_rate = 0.5\n"
      "drift_popularity_forgetting = 0.3\n");
  const cli::SimPlan plan = cli::load_plan(c);
  ASSERT_EQ(plan.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.jobs.front().scenario.base.affinity_drift_rate, 0.5);
  EXPECT_DOUBLE_EQ(plan.jobs.front().scenario.base.popularity_forgetting, 0.3);
}

TEST(ScenarioLoader, RejectsUnknownScenarioStageAndTypoKeys) {
  Config bad_kind = Config::parse("[scenario]\nkind = rush_hour\n");
  try {
    cli::load_plan(bad_kind);
    FAIL() << "expected RuntimeError";
  } catch (const util::RuntimeError& error) {
    // the error must teach the valid names
    EXPECT_NE(std::string(error.what()).find("steady_state"), std::string::npos);
  }

  Config bad_stage = Config::parse(
      "[scenario]\nkind = steady_state\n[stages]\ngrouping = kmedoids\n");
  try {
    cli::load_plan(bad_stage);
    FAIL() << "expected RuntimeError";
  } catch (const util::RuntimeError& error) {
    EXPECT_NE(std::string(error.what()).find("ddqn"), std::string::npos);
  }

  Config typo = Config::parse(
      "[scenario]\nkind = steady_state\nsurge_fracton = 0.5\n");
  try {
    cli::load_plan(typo);
    FAIL() << "expected RuntimeError";
  } catch (const util::RuntimeError& error) {
    EXPECT_NE(std::string(error.what()).find("surge_fracton"), std::string::npos);
  }

  Config missing_kind = Config::parse("[run]\nthreads = 1\n");
  EXPECT_THROW(cli::load_plan(missing_kind), util::RuntimeError);
}

TEST(ScenarioLoader, GridAndSingleValueFormsAreMutuallyExclusive) {
  // A single value silently shadowed by the grid list would defeat the
  // unknown-key guard for legitimate keys, so setting both is an error.
  Config both_seed = Config::parse(
      "[scenario]\nkind = steady_state\nseed = 7\n[grid]\nseed = 1, 2\n");
  try {
    cli::load_plan(both_seed);
    FAIL() << "expected RuntimeError";
  } catch (const util::RuntimeError& error) {
    EXPECT_NE(std::string(error.what()).find("grid.seed"), std::string::npos);
  }

  Config both_kind = Config::parse(
      "[scenario]\nkind = steady_state\n[grid]\nscenario = flash_crowd\n");
  EXPECT_THROW(cli::load_plan(both_kind), util::RuntimeError);

  Config both_stage = Config::parse(
      "[scenario]\nkind = steady_state\n[stages]\ngrouping = ddqn\n"
      "[grid]\ngrouping = ddqn, elbow\n");
  EXPECT_THROW(cli::load_plan(both_stage), util::RuntimeError);
}

}  // namespace
