// Tests for the pluggable interval pipeline (core/pipeline.hpp): the
// string-keyed StageRegistry, enum-alias/key equivalence, the streaming
// ReportSink contract, an out-of-tree stage registered from this binary,
// per-stage wall-time accounting, and the bit-identity regression locking
// the refactored pipeline to the pre-refactor report stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "core/fleet.hpp"
#include "core/pipeline.hpp"
#include "core/simulation.hpp"
#include "util/error.hpp"

namespace {

using namespace dtmsv;
using core::EpochReport;
using core::SchemeConfig;
using core::Simulation;
using core::StageRegistry;

/// The exact configuration the pre-refactor golden reports were captured
/// with (seed path: monolithic run_interval, enums, vector reports).
SchemeConfig golden_config(std::uint64_t seed = 42) {
  SchemeConfig cfg;
  cfg.seed = seed;
  cfg.user_count = 40;
  cfg.interval_s = 60.0;
  cfg.tick_s = 1.0;
  cfg.warmup_intervals = 1;
  cfg.feature_window_s = 120.0;
  cfg.feature_timesteps = 16;
  cfg.session.engagement.catalog.videos_per_category = 40;
  cfg.compressor.epochs_per_fit = 1;
  cfg.grouping.k_min = 2;
  cfg.grouping.k_max = 6;
  cfg.grouping.ddqn.hidden = {32};
  cfg.grouping.kmeans.restarts = 2;
  cfg.demand.interval_s = cfg.interval_s;
  cfg.recommender.playlist_size = 24;
  return cfg;
}

// ----------------------------------------------------------- registry keys

TEST(StageRegistry, BuiltinKeysRegistered) {
  const StageRegistry& reg = StageRegistry::instance();
  for (const char* key : {"cnn", "raw", "summary"}) {
    EXPECT_TRUE(reg.has_feature(key)) << key;
  }
  for (const char* key : {"ddqn", "fixed", "elbow", "random", "silhouette"}) {
    EXPECT_TRUE(reg.has_grouping(key)) << key;
  }
  for (const char* key : {"joint", "last_value", "ewma", "linear_trend", "mean"}) {
    EXPECT_TRUE(reg.has_demand(key)) << key;
  }
  // Sorted key listings include the builtins.
  const auto features = reg.feature_keys();
  EXPECT_TRUE(std::is_sorted(features.begin(), features.end()));
  EXPECT_GE(features.size(), 3u);
}

TEST(StageRegistry, UnknownKeyThrowsListingKnownKeys) {
  SchemeConfig cfg = golden_config();
  util::Rng rng(1);
  try {
    StageRegistry::instance().make_feature("no_such_stage", cfg, rng);
    FAIL() << "unknown key must throw";
  } catch (const util::RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no_such_stage"), std::string::npos);
    EXPECT_NE(what.find("cnn"), std::string::npos);  // known keys listed
  }
}

TEST(StageRegistry, UnknownKeyOnConfigThrowsAtConstruction) {
  SchemeConfig cfg = golden_config();
  cfg.grouping_stage = "definitely_not_registered";
  EXPECT_THROW(Simulation{cfg}, util::RuntimeError);
}

TEST(StageRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(StageRegistry::instance().register_grouping(
                   "ddqn",
                   [](const SchemeConfig&, util::Rng&)
                       -> std::unique_ptr<core::GroupingStage> { return nullptr; }),
               util::RuntimeError);
}

TEST(StageRegistry, DefaultKeysArePaperWiring) {
  SchemeConfig cfg;
  EXPECT_EQ(core::feature_stage_key(cfg), "cnn");
  EXPECT_EQ(core::grouping_stage_key(cfg), "ddqn");
  EXPECT_EQ(core::demand_stage_key(cfg), "joint");

  cfg.feature_stage = "raw";
  cfg.grouping_stage = "random";
  cfg.demand_stage = "mean";
  EXPECT_EQ(core::feature_stage_key(cfg), "raw");
  EXPECT_EQ(core::grouping_stage_key(cfg), "random");
  EXPECT_EQ(core::demand_stage_key(cfg), "mean");

  // Keys are registry-only now: an emptied key is a precondition error,
  // not a fallback to some implicit default.
  cfg.feature_stage.clear();
  EXPECT_THROW(core::feature_stage_key(cfg), util::PreconditionError);
}

// ------------------------------------------------ default/key bit-equivalence

void expect_reports_identical(const std::vector<EpochReport>& a,
                              const std::vector<EpochReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].k, b[i].k) << "interval " << i;
    EXPECT_DOUBLE_EQ(a[i].silhouette, b[i].silhouette);
    EXPECT_DOUBLE_EQ(a[i].predicted_radio_hz_total, b[i].predicted_radio_hz_total);
    EXPECT_DOUBLE_EQ(a[i].actual_radio_hz_total, b[i].actual_radio_hz_total);
    EXPECT_DOUBLE_EQ(a[i].predicted_compute_total, b[i].predicted_compute_total);
    EXPECT_DOUBLE_EQ(a[i].actual_compute_total, b[i].actual_compute_total);
    EXPECT_DOUBLE_EQ(a[i].unicast_radio_hz_total, b[i].unicast_radio_hz_total);
    EXPECT_DOUBLE_EQ(a[i].radio_error, b[i].radio_error);
    EXPECT_EQ(a[i].reconstruction_loss, b[i].reconstruction_loss);
  }
}

TEST(PipelineEquivalence, ExplicitKeysMatchDefaultsPaperCombo) {
  SchemeConfig via_defaults = golden_config();
  SchemeConfig via_keys = golden_config();
  via_keys.feature_stage = "cnn";
  via_keys.grouping_stage = "ddqn";
  via_keys.demand_stage = "joint";
  Simulation a(via_defaults);
  Simulation b(via_keys);
  expect_reports_identical(a.run(6), b.run(6));
}

// --------------------------------------------------- seed-path regression

/// Golden values captured from the pre-refactor monolithic
/// Simulation::run_interval (seed path) on this machine, max-precision.
/// {interval, k, silhouette, predicted_radio, actual_radio,
///  predicted_compute, actual_compute}. Note: exact doubles are sensitive
/// to the FP-contraction regime (-march=native); regenerate on a different
/// host with tools mirroring golden_config() if this ever moves machines.
struct GoldenInterval {
  std::size_t interval;
  std::size_t k;
  double silhouette;
  double predicted_radio;
  double actual_radio;
  double predicted_compute;
  double actual_compute;
};

/// The pinned doubles assume the optimized FP regime they were captured in
/// (-O3 with default -ffp-contract=fast FMA contraction; -march=native).
/// Unoptimized builds (the ASan Debug job) skip the pin — the FP stream
/// legitimately differs without contraction — and rely on the equivalence
/// tests above, which are regime-independent. A host whose codegen
/// diverges from the capture machine can export DTMSV_SKIP_GOLDEN=1 and
/// regenerate the values from a pre-refactor checkout.
bool golden_regime() {
#if defined(__OPTIMIZE__)
  return std::getenv("DTMSV_SKIP_GOLDEN") == nullptr;
#else
  return false;
#endif
}

void expect_matches_golden(const std::vector<EpochReport>& reports,
                           const std::vector<GoldenInterval>& golden) {
  ASSERT_EQ(reports.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const EpochReport& r = reports[i];
    const GoldenInterval& g = golden[i];
    EXPECT_EQ(static_cast<std::size_t>(r.interval), g.interval);
    EXPECT_EQ(r.k, g.k) << "interval " << i;
    EXPECT_DOUBLE_EQ(r.silhouette, g.silhouette) << "interval " << i;
    EXPECT_DOUBLE_EQ(r.predicted_radio_hz_total, g.predicted_radio) << i;
    EXPECT_DOUBLE_EQ(r.actual_radio_hz_total, g.actual_radio) << i;
    EXPECT_DOUBLE_EQ(r.predicted_compute_total, g.predicted_compute) << i;
    EXPECT_DOUBLE_EQ(r.actual_compute_total, g.actual_compute) << i;
  }
}

TEST(PipelineRegression, DefaultRegistryReproducesSeedPathPaperCombo) {
  if (!golden_regime()) {
    GTEST_SKIP() << "golden stream pinned for optimized FP regime only";
  }
  // cnn + ddqn + joint: the paper's default wiring, 6 intervals (1 warm-up
  // + 5 scored) pinned bit-identically against the pre-refactor stream.
  const std::vector<GoldenInterval> golden = {
      {0, 3, 0.37080589802837122, 0, 0, 0, 0},
      {1, 3, 0.19256612642326607, 1594090.458026814, 1700035.901583116,
       22011686607.656975, 25188434614.166496},
      {2, 5, 0.30618587903555577, 1716633.3420408536, 1425833.409892238,
       25451595099.140926, 22221543146.339092},
      {3, 2, 0.38163696254932417, 2627874.5094029177, 2568280.4024920207,
       39438638034.095139, 41560912018.7118},
      {4, 2, 0.40744677879951752, 1057306.3638144904, 928955.88916782988,
       15789201409.098848, 13824538593.702339},
      {5, 2, 0.36136139596033429, 1026124.4737402808, 929508.85017736536,
       14852859569.659935, 13824538593.702339},
  };
  Simulation sim(golden_config(42));
  expect_matches_golden(sim.run(6), golden);
}

TEST(PipelineRegression, DefaultRegistryReproducesSeedPathAblationCombo) {
  if (!golden_regime()) {
    GTEST_SKIP() << "golden stream pinned for optimized FP regime only";
  }
  // summary + elbow + per-member mean: one ablation combo pinned the same
  // way, proving the adapters (not just the default stages) are faithful.
  const std::vector<GoldenInterval> golden = {
      {0, 4, 0.3460434332345691, 0, 0, 0, 0},
      {1, 5, 0.26621299875884419, 2052185.3318163499, 2214175.2924183607,
       32424342411.474434, 33744256119.761284},
      {2, 3, 0.22361615606284085, 2822015.5846807538, 2525939.8427901408,
       39762633446.074394, 40525183915.09462},
      {3, 5, 0.16871232669554209, 1597762.1637580111, 1576759.9318373175,
       24088700854.388634, 25069046717.823257},
      {4, 3, 0.28572353806989603, 2589304.8389322357, 2491900.6929028025,
       41124386319.15889, 38925138338.472107},
      {5, 3, 0.32598902107170913, 1536007.4468557693, 1437918.3983723612,
       24228575455.32579, 22206937923.813404},
  };
  SchemeConfig cfg = golden_config(42);
  cfg.feature_stage = "summary";
  cfg.grouping_stage = "elbow";
  cfg.demand_stage = "mean";
  Simulation sim(cfg);
  expect_matches_golden(sim.run(6), golden);
}

// ------------------------------------------------------- streaming contract

TEST(ReportStreaming, SinkStreamMatchesVectorRun) {
  Simulation batch(golden_config(7));
  const std::vector<EpochReport> reports = batch.run(5);

  Simulation streamed(golden_config(7));
  core::CollectingSink sink;
  streamed.run(5, sink);

  ASSERT_EQ(sink.reports.size(), reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    // Streaming mode must not buffer groups inside the interval report...
    EXPECT_TRUE(sink.reports[i].groups.empty());
    EXPECT_EQ(sink.reports[i].k, reports[i].k);
    EXPECT_DOUBLE_EQ(sink.reports[i].predicted_radio_hz_total,
                     reports[i].predicted_radio_hz_total);
    EXPECT_DOUBLE_EQ(sink.reports[i].actual_radio_hz_total,
                     reports[i].actual_radio_hz_total);
    EXPECT_DOUBLE_EQ(sink.reports[i].silhouette, reports[i].silhouette);
  }
  // ...but every group flows through on_group, bit-identical to the
  // vector path's per-group reports.
  std::vector<core::GroupReport> batch_groups;
  for (const auto& r : reports) {
    batch_groups.insert(batch_groups.end(), r.groups.begin(), r.groups.end());
  }
  ASSERT_EQ(sink.groups.size(), batch_groups.size());
  for (std::size_t i = 0; i < batch_groups.size(); ++i) {
    EXPECT_EQ(sink.groups[i].size, batch_groups[i].size);
    EXPECT_DOUBLE_EQ(sink.groups[i].actual_radio_hz, batch_groups[i].actual_radio_hz);
    EXPECT_DOUBLE_EQ(sink.groups[i].predicted_radio_hz,
                     batch_groups[i].predicted_radio_hz);
  }
}

TEST(ReportStreaming, FleetSinkMatchesAggregates) {
  core::FleetConfig cfg;
  cfg.base = golden_config(11);
  cfg.base.interval_s = 30.0;
  cfg.base.demand.interval_s = 30.0;
  cfg.base.feature_window_s = 60.0;
  cfg.cell_count = 3;
  cfg.total_users = 36;
  cfg.seed = 11;
  core::SimulationFleet fleet(cfg);

  core::CollectingSink sink;
  for (int i = 0; i < 3; ++i) {
    const core::FleetReport report = fleet.run_interval(&sink);
    // One streamed interval report per shard, in fixed shard order, whose
    // totals reproduce the aggregate exactly.
    ASSERT_EQ(sink.reports.size(), report.shards.size());
    double streamed_pred = 0.0;
    double streamed_act = 0.0;
    for (std::size_t s = 0; s < sink.reports.size(); ++s) {
      streamed_pred += sink.reports[s].predicted_radio_hz_total;
      streamed_act += sink.reports[s].actual_radio_hz_total;
      EXPECT_EQ(sink.reports[s].k, report.shards[s].k);
    }
    EXPECT_DOUBLE_EQ(streamed_pred, report.predicted_radio_hz_total);
    EXPECT_DOUBLE_EQ(streamed_act, report.actual_radio_hz_total);
    sink.reports.clear();
    sink.groups.clear();
  }
}

// ------------------------------------------------- out-of-tree stage proof

/// A stub grouping stage defined in this test binary — outside src/core —
/// to prove the registry extension point: round-robin into a fixed number
/// of groups, no learning, no RNG.
class RoundRobinGroupingStage final : public core::GroupingStage {
 public:
  explicit RoundRobinGroupingStage(std::size_t k) : k_(k) {}

  core::GroupingOutcome group(const clustering::Points& features,
                              util::Rng&) override {
    core::GroupingOutcome out;
    out.k = std::min<std::size_t>(k_, features.size());
    out.assignment.resize(features.size());
    for (std::size_t u = 0; u < features.size(); ++u) {
      out.assignment[u] = u % out.k;
    }
    return out;
  }
  void report_outcome(double prediction_error) override {
    last_error = prediction_error;
    ++outcomes_reported;
  }
  std::string name() const override { return "test_round_robin"; }

  double last_error = -1.0;
  std::size_t outcomes_reported = 0;

 private:
  std::size_t k_;
};

/// The most recently constructed stub (the registry factory outlives any
/// one test body, so the handle must too — e.g. under --gtest_repeat).
RoundRobinGroupingStage*& live_round_robin_stage() {
  static RoundRobinGroupingStage* stage = nullptr;
  return stage;
}

TEST(CustomStage, OutOfTreeGroupingStageRunsFullInterval) {
  // Register from the test binary, exactly once per process; the factory
  // publishes the live stage so the feedback path is observable too.
  [[maybe_unused]] static const bool registered = [] {
    StageRegistry::instance().register_grouping(
        "test_round_robin", [](const SchemeConfig& config, util::Rng&) {
          auto stage = std::make_unique<RoundRobinGroupingStage>(config.fixed_k);
          live_round_robin_stage() = stage.get();
          return stage;
        });
    return true;
  }();
  RoundRobinGroupingStage*& live_stage = live_round_robin_stage();
  live_stage = nullptr;

  SchemeConfig cfg = golden_config(19);
  cfg.grouping_stage = "test_round_robin";
  cfg.fixed_k = 3;
  Simulation sim(cfg);
  EXPECT_EQ(sim.grouping_stage().name(), "test_round_robin");

  const std::vector<EpochReport> reports = sim.run(3);
  ASSERT_NE(live_stage, nullptr);

  // The stub's decisions drive the real pipeline end-to-end: K groups,
  // round-robin membership, demand predicted and scored.
  EXPECT_EQ(reports[1].k, 3u);
  EXPECT_TRUE(reports[1].grouped);
  EXPECT_TRUE(reports[2].has_prediction);
  EXPECT_GT(reports[2].actual_radio_hz_total, 0.0);
  ASSERT_EQ(sim.group_count(), 3u);
  for (std::size_t g = 0; g < sim.group_count(); ++g) {
    for (const std::size_t u : sim.group_members(g)) {
      EXPECT_EQ(u % 3, g);  // round-robin membership preserved
    }
  }
  // The delayed-reward feedback reaches custom stages as well.
  EXPECT_GT(live_stage->outcomes_reported, 0u);
  EXPECT_GE(live_stage->last_error, 0.0);
}

// ----------------------------------------------------- per-stage timings

TEST(StageTimings, AccumulateAndReset) {
  Simulation sim(golden_config(23));
  sim.run(3);
  const core::StageTimings& t = sim.stage_timings();
  EXPECT_EQ(t.intervals, 3u);
  EXPECT_GT(t.simulate_s, 0.0);
  EXPECT_GT(t.feature_s, 0.0);   // CNN fit+embed every post-warmup interval
  EXPECT_GT(t.grouping_s, 0.0);  // DDQN + K-means
  EXPECT_GT(t.demand_s, 0.0);    // abstraction + demand model
  EXPECT_DOUBLE_EQ(t.total_s(), t.simulate_s + t.pipeline_s());

  sim.reset_stage_timings();
  EXPECT_EQ(sim.stage_timings().intervals, 0u);
  EXPECT_DOUBLE_EQ(sim.stage_timings().total_s(), 0.0);
}

// ------------------------------------------------------ model persistence

TEST(StagePersistence, SaveLoadRoundTripsThroughStageHooks) {
  // cnn+ddqn: both stages carry learned state through the stage hooks.
  SchemeConfig cfg = golden_config(29);
  Simulation trained(cfg);
  trained.run(2);
  std::stringstream models;
  trained.save_models(models);

  Simulation fresh(cfg);
  EXPECT_NO_THROW(fresh.load_models(models));

  // raw+fixed: no learned state anywhere -> save_models must refuse.
  SchemeConfig stateless = golden_config(29);
  stateless.feature_stage = "raw";
  stateless.grouping_stage = "fixed";
  Simulation plain(stateless);
  std::stringstream out;
  EXPECT_THROW(plain.save_models(out), util::PreconditionError);
}

}  // namespace
