// Parameterized sweeps over the nn substrate: gradient checks across layer
// geometries, pooling window grids, optimizer convergence across learning
// rates, and loss-function identities — the property-style coverage that
// protects the learning stack against geometry-specific regressions.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/gradient_check.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtmsv::nn;
using dtmsv::util::Rng;

Tensor random_tensor(Shape shape, Rng& rng, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (float& v : t.data()) {
    v = static_cast<float>(rng.normal(0.0, scale));
  }
  return t;
}

float half_sq_loss(const Tensor& y) {
  float total = 0.0f;
  for (const float v : y.data()) {
    total += 0.5f * v * v;
  }
  return total;
}
Tensor half_sq_grad(const Tensor& y) { return y; }

// --------------------------------------------- Conv1D geometry sweep

struct ConvGeom {
  std::size_t in_ch;
  std::size_t out_ch;
  std::size_t kernel;
  std::size_t stride;
  std::size_t padding;
  std::size_t length;
};

class ConvGeometrySweep : public ::testing::TestWithParam<ConvGeom> {};

TEST_P(ConvGeometrySweep, OutputLengthAndGradients) {
  const ConvGeom g = GetParam();
  Rng rng(42);
  Conv1D conv(g.in_ch, g.out_ch, g.kernel, rng, g.stride, g.padding);

  const std::size_t expected_len =
      (g.length + 2 * g.padding - g.kernel) / g.stride + 1;
  ASSERT_EQ(conv.output_length(g.length), expected_len);

  const Tensor x = random_tensor({2, g.in_ch, g.length}, rng, 0.5);
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.dim(0), 2u);
  ASSERT_EQ(y.dim(1), g.out_ch);
  ASSERT_EQ(y.dim(2), expected_len);

  const auto result = check_gradients(conv, x, half_sq_loss, half_sq_grad);
  EXPECT_TRUE(result.ok(3e-2)) << "geom (" << g.in_ch << "," << g.out_ch << ",k"
                               << g.kernel << ",s" << g.stride << ",p" << g.padding
                               << ",L" << g.length << "): param "
                               << result.max_param_error << " input "
                               << result.max_input_error;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometrySweep,
    ::testing::Values(ConvGeom{1, 1, 1, 1, 0, 4}, ConvGeom{1, 2, 3, 1, 0, 6},
                      ConvGeom{2, 3, 3, 1, 1, 8}, ConvGeom{3, 2, 5, 1, 2, 10},
                      ConvGeom{2, 2, 3, 2, 0, 9}, ConvGeom{2, 4, 3, 2, 1, 8},
                      ConvGeom{4, 1, 7, 1, 3, 12}, ConvGeom{1, 1, 4, 4, 0, 16}));

// --------------------------------------------- Linear shape sweep

struct LinearGeom {
  std::size_t in;
  std::size_t out;
  std::size_t batch;
};

class LinearSweep : public ::testing::TestWithParam<LinearGeom> {};

TEST_P(LinearSweep, ShapesAndGradients) {
  const LinearGeom g = GetParam();
  Rng rng(7);
  Linear layer(g.in, g.out, rng);
  const Tensor x = random_tensor({g.batch, g.in}, rng, 0.7);
  const Tensor y = layer.forward(x);
  ASSERT_EQ(y.dim(0), g.batch);
  ASSERT_EQ(y.dim(1), g.out);
  const auto result = check_gradients(layer, x, half_sq_loss, half_sq_grad);
  EXPECT_TRUE(result.ok(2e-2)) << result.max_param_error << " / "
                               << result.max_input_error;
}

INSTANTIATE_TEST_SUITE_P(Shapes, LinearSweep,
                         ::testing::Values(LinearGeom{1, 1, 1}, LinearGeom{1, 8, 4},
                                           LinearGeom{8, 1, 4}, LinearGeom{6, 6, 2},
                                           LinearGeom{16, 3, 7}));

// --------------------------------------------- MaxPool window sweep

class MaxPoolSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MaxPoolSweep, OutputLengthAndGradientRouting) {
  const std::size_t window = GetParam();
  MaxPool1D pool(window);
  Rng rng(8);
  const std::size_t length = 13;  // deliberately not divisible
  const Tensor x = random_tensor({2, 3, length}, rng);
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.dim(2), (length + window - 1) / window);

  // Backward conserves total gradient mass (each output routes to exactly
  // one input).
  Tensor g(y.shape());
  g.fill(1.0f);
  const Tensor gi = pool.backward(g);
  EXPECT_FLOAT_EQ(gi.sum(), g.sum());
}

INSTANTIATE_TEST_SUITE_P(Windows, MaxPoolSweep, ::testing::Values(1, 2, 3, 5, 13, 20));

// --------------------------------------------- optimizer convergence sweep

struct OptCase {
  bool adam;
  double lr;
};

class OptimizerSweep : public ::testing::TestWithParam<OptCase> {};

TEST_P(OptimizerSweep, FitsLinearRegression) {
  const OptCase c = GetParam();
  Rng rng(9);
  Linear layer(2, 1, rng);
  std::unique_ptr<Optimizer> opt;
  if (c.adam) {
    opt = std::make_unique<Adam>(layer.parameters(), c.lr);
  } else {
    opt = std::make_unique<Sgd>(layer.parameters(), c.lr, 0.9);
  }

  // Ground truth: y = 2 x0 - 3 x1 + 0.5.
  const auto target_fn = [](float x0, float x1) { return 2.0f * x0 - 3.0f * x1 + 0.5f; };
  Tensor x({16, 2});
  Tensor target({16, 1});
  for (std::size_t i = 0; i < 16; ++i) {
    x.at2(i, 0) = static_cast<float>(rng.uniform(-1.0, 1.0));
    x.at2(i, 1) = static_cast<float>(rng.uniform(-1.0, 1.0));
    target.at2(i, 0) = target_fn(x.at2(i, 0), x.at2(i, 1));
  }

  float loss_value = 0.0f;
  for (int epoch = 0; epoch < 2000; ++epoch) {
    const Tensor y = layer.forward(x);
    const auto loss = mse_loss(y, target);
    loss_value = loss.value;
    layer.zero_grad();
    layer.backward(loss.grad);
    opt->step();
  }
  EXPECT_LT(loss_value, 1e-3f) << (c.adam ? "adam" : "sgd") << " lr=" << c.lr;
  EXPECT_NEAR(layer.weights()[0], 2.0f, 0.05f);
  EXPECT_NEAR(layer.weights()[1], -3.0f, 0.05f);
  EXPECT_NEAR(layer.bias()[0], 0.5f, 0.05f);
}

INSTANTIATE_TEST_SUITE_P(Cases, OptimizerSweep,
                         ::testing::Values(OptCase{true, 1e-2}, OptCase{true, 3e-2},
                                           OptCase{false, 1e-2},
                                           OptCase{false, 3e-2}));

// --------------------------------------------- loss identities

class LossIdentitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossIdentitySweep, HuberEqualsMseInsideDelta) {
  Rng rng(GetParam());
  // Errors all within |e| <= delta: huber = 0.5 mse, grads equal mse/2.
  Tensor pred({16});
  Tensor target({16});
  for (std::size_t i = 0; i < 16; ++i) {
    target[i] = static_cast<float>(rng.normal(0.0, 1.0));
    pred[i] = target[i] + static_cast<float>(rng.uniform(-0.9, 0.9));
  }
  const auto mse = mse_loss(pred, target);
  const auto huber = huber_loss(pred, target, 1.0f);
  EXPECT_NEAR(huber.value, 0.5f * mse.value, 1e-5);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(huber.grad[i], 0.5f * mse.grad[i], 1e-6);
  }
}

TEST_P(LossIdentitySweep, MaskedLossMatchesSubsetLoss) {
  Rng rng(GetParam() + 17);
  Tensor pred({8});
  Tensor target({8});
  Tensor mask({8});
  std::vector<float> sub_pred;
  std::vector<float> sub_target;
  for (std::size_t i = 0; i < 8; ++i) {
    pred[i] = static_cast<float>(rng.normal(0.0, 1.0));
    target[i] = static_cast<float>(rng.normal(0.0, 1.0));
    if (i % 2 == 0) {
      mask[i] = 1.0f;
      sub_pred.push_back(pred[i]);
      sub_target.push_back(target[i]);
    }
  }
  const auto masked = masked_mse_loss(pred, target, mask);
  const auto subset =
      mse_loss(Tensor::from_vector(sub_pred), Tensor::from_vector(sub_target));
  EXPECT_NEAR(masked.value, subset.value, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossIdentitySweep, ::testing::Values(1, 2, 3, 4));

// --------------------------------------------- activation sweep

class ActivationRangeSweep : public ::testing::TestWithParam<double> {};

TEST_P(ActivationRangeSweep, OutputsInCanonicalRanges) {
  const double scale = GetParam();
  Rng rng(11);
  const Tensor x = random_tensor({4, 16}, rng, scale);

  // Bind results to named tensors: data() is a span into the tensor, so
  // iterating a temporary would dangle.
  ReLU relu;
  const Tensor yr = relu.forward(x);
  for (const float v : yr.data()) {
    EXPECT_GE(v, 0.0f);
  }
  Tanh tanh_layer;
  const Tensor yt = tanh_layer.forward(x);
  for (const float v : yt.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
  Sigmoid sigmoid;
  const Tensor ys = sigmoid.forward(x);
  for (const float v : ys.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, ActivationRangeSweep,
                         ::testing::Values(0.1, 1.0, 10.0, 100.0));

}  // namespace
