// Unit tests for dtmsv::nn — tensor algebra, every layer's forward values
// and gradient-checked backward pass, losses, optimisers (including a full
// training convergence test), and parameter serialisation.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/gradient_check.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "nn/tensor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtmsv::nn;
using dtmsv::util::PreconditionError;
using dtmsv::util::Rng;
using dtmsv::util::RuntimeError;

Tensor random_tensor(Shape shape, Rng& rng, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (float& v : t.data()) {
    v = static_cast<float>(rng.normal(0.0, scale));
  }
  return t;
}

// Loss used in gradient checks: 0.5 * sum(y^2) with gradient y.
float half_sq_loss(const Tensor& y) {
  float total = 0.0f;
  for (const float v : y.data()) {
    total += 0.5f * v * v;
  }
  return total;
}
Tensor half_sq_grad(const Tensor& y) { return y; }

// ------------------------------------------------------------------ Tensor

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.shape_string(), "[2, 3, 4]");
  for (const float v : t.data()) {
    EXPECT_EQ(v, 0.0f);
  }
}

TEST(Tensor, ZeroDimensionRejected) {
  EXPECT_THROW(Tensor({2, 0, 3}), PreconditionError);
}

TEST(Tensor, ValueCountMismatchRejected) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f, 3.0f}), PreconditionError);
}

TEST(Tensor, FromRows) {
  const Tensor t = Tensor::from_rows({{1.0f, 2.0f}, {3.0f, 4.0f}});
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 2u);
  EXPECT_EQ(t.at2(1, 0), 3.0f);
}

TEST(Tensor, RaggedRowsRejected) {
  EXPECT_THROW(Tensor::from_rows({{1.0f, 2.0f}, {3.0f}}), PreconditionError);
}

TEST(Tensor, ElementAccess3D) {
  Tensor t({2, 3, 4});
  t.at3(1, 2, 3) = 7.0f;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 7.0f);
  EXPECT_THROW(t.at3(2, 0, 0), PreconditionError);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at2(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), PreconditionError);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a({2}, {1.0f, 2.0f});
  const Tensor b({2}, {3.0f, 4.0f});
  a += b;
  EXPECT_EQ(a[0], 4.0f);
  a -= b;
  EXPECT_EQ(a[1], 2.0f);
  a *= 3.0f;
  EXPECT_EQ(a[0], 3.0f);
}

TEST(Tensor, ShapeMismatchInPlusRejected) {
  Tensor a({2});
  const Tensor b({3});
  EXPECT_THROW(a += b, PreconditionError);
}

TEST(Tensor, Reductions) {
  const Tensor t({4}, {1.0f, -5.0f, 2.0f, 2.0f});
  EXPECT_EQ(t.sum(), 0.0f);
  EXPECT_EQ(t.mean(), 0.0f);
  EXPECT_EQ(t.abs_max(), 5.0f);
}

TEST(Tensor, MatmulKnownValues) {
  const Tensor a = Tensor::from_rows({{1, 2}, {3, 4}});
  const Tensor b = Tensor::from_rows({{5, 6}, {7, 8}});
  const Tensor c = Tensor::matmul(a, b);
  EXPECT_EQ(c.at2(0, 0), 19.0f);
  EXPECT_EQ(c.at2(0, 1), 22.0f);
  EXPECT_EQ(c.at2(1, 0), 43.0f);
  EXPECT_EQ(c.at2(1, 1), 50.0f);
}

TEST(Tensor, MatmulTransposedVariantsAgree) {
  Rng rng(1);
  const Tensor a = random_tensor({3, 4}, rng);
  const Tensor b = random_tensor({4, 5}, rng);
  const Tensor expected = Tensor::matmul(a, b);

  // matmul_bt(a, bT) == a·b
  Tensor bt({5, 4});
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      bt.at2(j, i) = b.at2(i, j);
    }
  }
  const Tensor via_bt = Tensor::matmul_bt(a, bt);
  ASSERT_TRUE(same_shape(via_bt, expected));
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(via_bt[i], expected[i], 1e-4);
  }

  // matmul_at(aT, b) == a·b
  Tensor at({4, 3});
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      at.at2(j, i) = a.at2(i, j);
    }
  }
  const Tensor via_at = Tensor::matmul_at(at, b);
  ASSERT_TRUE(same_shape(via_at, expected));
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(via_at[i], expected[i], 1e-4);
  }
}

TEST(Tensor, MatmulInnerDimMismatchRejected) {
  const Tensor a({2, 3});
  const Tensor b({4, 2});
  EXPECT_THROW(Tensor::matmul(a, b), PreconditionError);
}

// -------------------------------------------------------------------- Init

TEST(Init, XavierWithinBound) {
  Rng rng(2);
  Tensor w({64, 32});
  xavier_uniform(w, 32, 64, rng);
  const double bound = std::sqrt(6.0 / (32 + 64));
  for (const float v : w.data()) {
    EXPECT_LE(std::abs(v), bound + 1e-6);
  }
  EXPECT_GT(w.abs_max(), 0.0f);
}

TEST(Init, KaimingVarianceApprox) {
  Rng rng(3);
  Tensor w({200, 100});
  kaiming_normal(w, 100, rng);
  double sq = 0.0;
  for (const float v : w.data()) {
    sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sq / static_cast<double>(w.size()), 2.0 / 100.0, 0.002);
}

// ------------------------------------------------------------------ Linear

TEST(Linear, ForwardKnownValues) {
  Rng rng(4);
  Linear layer(2, 2, rng);
  layer.weights() = Tensor::from_rows({{1, 2}, {3, 4}});
  layer.bias() = Tensor({2}, {0.5f, -0.5f});
  const Tensor x = Tensor::from_rows({{1, 1}});
  const Tensor y = layer.forward(x);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 3.5f);   // 1+2+0.5
  EXPECT_FLOAT_EQ(y.at2(0, 1), 6.5f);   // 3+4-0.5
}

TEST(Linear, GradientCheck) {
  Rng rng(5);
  Linear layer(4, 3, rng);
  const Tensor x = random_tensor({5, 4}, rng);
  const auto result = check_gradients(layer, x, half_sq_loss, half_sq_grad);
  EXPECT_TRUE(result.ok()) << "param err " << result.max_param_error << " input err "
                           << result.max_input_error;
}

TEST(Linear, BackwardBeforeForwardRejected) {
  Rng rng(6);
  Linear layer(2, 2, rng);
  EXPECT_THROW(layer.backward(Tensor({1, 2})), PreconditionError);
}

TEST(Linear, GradAccumulatesAcrossBackward) {
  Rng rng(7);
  Linear layer(2, 2, rng);
  const Tensor x = random_tensor({3, 2}, rng);
  const Tensor g = random_tensor({3, 2}, rng);
  layer.forward(x);
  layer.backward(g);
  const auto params = layer.parameters();
  const float first = (*params[0].grad)[0];
  layer.forward(x);
  layer.backward(g);
  EXPECT_NEAR((*params[0].grad)[0], 2.0f * first, 1e-4);
  layer.zero_grad();
  EXPECT_EQ((*params[0].grad)[0], 0.0f);
}

// ------------------------------------------------------------------ Conv1D

TEST(Conv1D, OutputLengthFormula) {
  Rng rng(8);
  Conv1D conv(1, 1, 3, rng, /*stride=*/1, /*padding=*/1);
  EXPECT_EQ(conv.output_length(8), 8u);
  Conv1D strided(1, 1, 3, rng, /*stride=*/2, /*padding=*/0);
  EXPECT_EQ(strided.output_length(9), 4u);
  EXPECT_THROW(strided.output_length(2), PreconditionError);
}

TEST(Conv1D, ForwardIdentityKernel) {
  Rng rng(9);
  Conv1D conv(1, 1, 1, rng);
  conv.weights().fill(1.0f);
  conv.bias().fill(0.0f);
  const Tensor x({1, 1, 4}, {1, 2, 3, 4});
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.dim(2), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(y.at3(0, 0, i), x.at3(0, 0, i));
  }
}

TEST(Conv1D, ForwardMovingSum) {
  Rng rng(10);
  Conv1D conv(1, 1, 3, rng, 1, 0);
  conv.weights().fill(1.0f);
  conv.bias().fill(0.0f);
  const Tensor x({1, 1, 5}, {1, 2, 3, 4, 5});
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.dim(2), 3u);
  EXPECT_FLOAT_EQ(y.at3(0, 0, 0), 6.0f);
  EXPECT_FLOAT_EQ(y.at3(0, 0, 1), 9.0f);
  EXPECT_FLOAT_EQ(y.at3(0, 0, 2), 12.0f);
}

TEST(Conv1D, PaddingZeros) {
  Rng rng(11);
  Conv1D conv(1, 1, 3, rng, 1, 1);
  conv.weights().fill(1.0f);
  conv.bias().fill(0.0f);
  const Tensor x({1, 1, 3}, {1, 2, 3});
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.dim(2), 3u);
  EXPECT_FLOAT_EQ(y.at3(0, 0, 0), 3.0f);  // 0+1+2
  EXPECT_FLOAT_EQ(y.at3(0, 0, 2), 5.0f);  // 2+3+0
}

TEST(Conv1D, GradientCheckNoPadding) {
  Rng rng(12);
  Conv1D conv(2, 3, 3, rng, 1, 0);
  const Tensor x = random_tensor({2, 2, 8}, rng);
  const auto result = check_gradients(conv, x, half_sq_loss, half_sq_grad);
  EXPECT_TRUE(result.ok()) << result.max_param_error << " / " << result.max_input_error;
}

TEST(Conv1D, GradientCheckStridedPadded) {
  Rng rng(13);
  Conv1D conv(2, 2, 3, rng, 2, 1);
  const Tensor x = random_tensor({2, 2, 7}, rng);
  // Slightly looser tolerance: float32 central differences on a strided,
  // padded conv accumulate more rounding error than the dense case.
  const auto result = check_gradients(conv, x, half_sq_loss, half_sq_grad);
  EXPECT_TRUE(result.ok(2e-2)) << result.max_param_error << " / "
                               << result.max_input_error;
}

// ------------------------------------------------------------- Activations

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  const Tensor x({4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  const Tensor y = relu.forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  EXPECT_EQ(y[3], 0.0f);
}

TEST(ReLU, BackwardMasksGradient) {
  ReLU relu;
  const Tensor x({3}, {-1.0f, 1.0f, 2.0f});
  relu.forward(x);
  const Tensor g({3}, {5.0f, 5.0f, 5.0f});
  const Tensor gi = relu.backward(g);
  EXPECT_EQ(gi[0], 0.0f);
  EXPECT_EQ(gi[1], 5.0f);
  EXPECT_EQ(gi[2], 5.0f);
}

TEST(Tanh, GradientCheck) {
  Rng rng(14);
  Tanh layer;
  const Tensor x = random_tensor({3, 5}, rng, 0.5);
  const auto result = check_gradients(layer, x, half_sq_loss, half_sq_grad, 1e-3f);
  EXPECT_TRUE(result.ok(2e-2)) << result.max_input_error;
}

TEST(Sigmoid, ForwardRangeAndMidpoint) {
  Sigmoid s;
  const Tensor x({3}, {-100.0f, 0.0f, 100.0f});
  const Tensor y = s.forward(x);
  EXPECT_NEAR(y[0], 0.0f, 1e-6);
  EXPECT_FLOAT_EQ(y[1], 0.5f);
  EXPECT_NEAR(y[2], 1.0f, 1e-6);
}

TEST(Sigmoid, GradientCheck) {
  Rng rng(15);
  Sigmoid layer;
  const Tensor x = random_tensor({2, 6}, rng, 0.5);
  const auto result = check_gradients(layer, x, half_sq_loss, half_sq_grad, 1e-3f);
  EXPECT_TRUE(result.ok(2e-2)) << result.max_input_error;
}

// ----------------------------------------------------------------- Pooling

TEST(MaxPool1D, ForwardPicksMaxima) {
  MaxPool1D pool(2);
  const Tensor x({1, 1, 6}, {1, 5, 2, 2, 9, 0});
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.dim(2), 3u);
  EXPECT_FLOAT_EQ(y.at3(0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at3(0, 0, 1), 2.0f);
  EXPECT_FLOAT_EQ(y.at3(0, 0, 2), 9.0f);
}

TEST(MaxPool1D, PartialTrailingWindow) {
  MaxPool1D pool(4);
  const Tensor x({1, 1, 6}, {1, 2, 3, 4, 9, 5});
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.dim(2), 2u);
  EXPECT_FLOAT_EQ(y.at3(0, 0, 1), 9.0f);
}

TEST(MaxPool1D, BackwardRoutesToArgmax) {
  MaxPool1D pool(2);
  const Tensor x({1, 1, 4}, {1, 5, 7, 2});
  pool.forward(x);
  const Tensor g({1, 1, 2}, {10.0f, 20.0f});
  const Tensor gi = pool.backward(g);
  EXPECT_FLOAT_EQ(gi.at3(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(gi.at3(0, 0, 1), 10.0f);
  EXPECT_FLOAT_EQ(gi.at3(0, 0, 2), 20.0f);
  EXPECT_FLOAT_EQ(gi.at3(0, 0, 3), 0.0f);
}

TEST(GlobalAvgPool1D, ForwardAndGradientCheck) {
  GlobalAvgPool1D pool;
  const Tensor x({1, 2, 4}, {1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor y = pool.forward(x);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 25.0f);

  Rng rng(16);
  GlobalAvgPool1D pool2;
  const Tensor xr = random_tensor({2, 3, 5}, rng);
  const auto result = check_gradients(pool2, xr, half_sq_loss, half_sq_grad);
  EXPECT_TRUE(result.ok()) << result.max_input_error;
}

TEST(Flatten, RoundTripShapes) {
  Flatten f;
  const Tensor x({2, 3, 4});
  const Tensor y = f.forward(x);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 12u);
  const Tensor gi = f.backward(Tensor({2, 12}));
  EXPECT_EQ(gi.shape(), x.shape());
}

// -------------------------------------------------------------- Sequential

TEST(Sequential, ChainsForwardBackward) {
  Rng rng(17);
  Sequential net;
  net.emplace<Linear>(4, 8, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(8, 2, rng);
  EXPECT_EQ(net.layer_count(), 3u);
  EXPECT_EQ(net.parameter_count(), 4u * 8 + 8 + 8 * 2 + 2);

  const Tensor x = random_tensor({5, 4}, rng);
  const Tensor y = net.forward(x);
  EXPECT_EQ(y.dim(1), 2u);
  const Tensor gi = net.backward(Tensor::full({5, 2}, 1.0f));
  EXPECT_EQ(gi.shape(), x.shape());
}

TEST(Sequential, GradientCheckWholeStack) {
  // Smooth layers only: finite differences are unreliable at ReLU/max-pool
  // kinks (the perturbation flips the active branch), so the stack check
  // uses Tanh and average pooling; the kinked layers have dedicated
  // behavioural tests above.
  Rng rng(18);
  Sequential net;
  net.emplace<Conv1D>(2, 3, 3, rng, 1, 1);
  net.emplace<Tanh>();
  net.emplace<Conv1D>(3, 2, 3, rng, 2, 0);
  net.emplace<GlobalAvgPool1D>();
  net.emplace<Linear>(2, 2, rng);
  const Tensor x = random_tensor({2, 2, 8}, rng, 0.7);
  const auto result = check_gradients(net, x, half_sq_loss, half_sq_grad, 5e-3f);
  EXPECT_TRUE(result.ok(3e-2)) << result.max_param_error << " / "
                               << result.max_input_error;
}

TEST(Sequential, EmptyStackRejected) {
  Sequential net;
  EXPECT_THROW(net.forward(Tensor({1, 1})), PreconditionError);
}

// ------------------------------------------------------------------ Losses

TEST(Loss, MseValueAndGradient) {
  const Tensor pred({2}, {1.0f, 3.0f});
  const Tensor target({2}, {0.0f, 1.0f});
  const auto loss = mse_loss(pred, target);
  EXPECT_NEAR(loss.value, (1.0f + 4.0f) / 2.0f, 1e-6);
  EXPECT_NEAR(loss.grad[0], 2.0f * 1.0f / 2.0f, 1e-6);
  EXPECT_NEAR(loss.grad[1], 2.0f * 2.0f / 2.0f, 1e-6);
}

TEST(Loss, HuberQuadraticInside) {
  const Tensor pred({1}, {0.5f});
  const Tensor target({1}, {0.0f});
  const auto loss = huber_loss(pred, target, 1.0f);
  EXPECT_NEAR(loss.value, 0.125f, 1e-6);
  EXPECT_NEAR(loss.grad[0], 0.5f, 1e-6);
}

TEST(Loss, HuberLinearOutside) {
  const Tensor pred({1}, {3.0f});
  const Tensor target({1}, {0.0f});
  const auto loss = huber_loss(pred, target, 1.0f);
  EXPECT_NEAR(loss.value, 1.0f * (3.0f - 0.5f), 1e-6);
  EXPECT_NEAR(loss.grad[0], 1.0f, 1e-6);
}

TEST(Loss, MaskedMseIgnoresUnmasked) {
  const Tensor pred({4}, {1.0f, 100.0f, 2.0f, -50.0f});
  const Tensor target({4}, {0.0f, 0.0f, 0.0f, 0.0f});
  const Tensor mask({4}, {1.0f, 0.0f, 1.0f, 0.0f});
  const auto loss = masked_mse_loss(pred, target, mask);
  EXPECT_NEAR(loss.value, (1.0f + 4.0f) / 2.0f, 1e-6);
  EXPECT_EQ(loss.grad[1], 0.0f);
  EXPECT_EQ(loss.grad[3], 0.0f);
}

TEST(Loss, MaskedEmptyMaskRejected) {
  const Tensor pred({2});
  const Tensor target({2});
  const Tensor mask({2});
  EXPECT_THROW(masked_mse_loss(pred, target, mask), PreconditionError);
  EXPECT_THROW(masked_huber_loss(pred, target, mask), PreconditionError);
}

TEST(Loss, ShapeMismatchRejected) {
  EXPECT_THROW(mse_loss(Tensor({2}), Tensor({3})), PreconditionError);
}

// -------------------------------------------------------------- Optimisers

TEST(Sgd, SingleStepDescendsGradient) {
  Rng rng(19);
  Linear layer(1, 1, rng);
  layer.weights().fill(1.0f);
  layer.bias().fill(0.0f);
  Sgd opt(layer.parameters(), 0.1);

  // y = w·x; loss = 0.5 y² with x=2 → dL/dw = y·x = 4w
  const Tensor x = Tensor::from_rows({{2.0f}});
  const Tensor y = layer.forward(x);
  layer.backward(y);
  opt.step();
  EXPECT_NEAR(layer.weights()[0], 1.0f - 0.1f * 4.0f, 1e-5);
}

TEST(Sgd, MomentumAccumulates) {
  Rng rng(20);
  Linear layer(1, 1, rng);
  layer.weights().fill(0.0f);
  layer.bias().fill(0.0f);
  Sgd opt(layer.parameters(), 0.1, 0.9);
  // Constant gradient 1 on the weight.
  auto params = layer.parameters();
  for (int i = 0; i < 3; ++i) {
    params[0].grad->fill(1.0f);
    params[1].grad->fill(0.0f);
    opt.step();
  }
  // velocities: -0.1, -0.19, -0.271 → weight = -0.561
  EXPECT_NEAR(layer.weights()[0], -0.561f, 1e-4);
}

TEST(Adam, ConvergesOnQuadratic) {
  Rng rng(21);
  Linear layer(1, 1, rng);
  Adam opt(layer.parameters(), 0.05);
  // Minimise (w·1 + b - 3)²; optimum w + b = 3.
  const Tensor x = Tensor::from_rows({{1.0f}});
  const Tensor target = Tensor::from_rows({{3.0f}});
  for (int i = 0; i < 500; ++i) {
    const Tensor y = layer.forward(x);
    const auto loss = mse_loss(y, target);
    layer.zero_grad();
    layer.backward(loss.grad);
    opt.step();
  }
  const Tensor y = layer.forward(x);
  EXPECT_NEAR(y[0], 3.0f, 1e-2);
  EXPECT_EQ(opt.step_count(), 500u);
}

TEST(Adam, GradClipBoundsNorm) {
  Rng rng(22);
  Linear layer(4, 4, rng);
  Adam opt(layer.parameters(), 0.01);
  auto params = layer.parameters();
  params[0].grad->fill(100.0f);
  const double pre = opt.clip_grad_norm(1.0);
  EXPECT_GT(pre, 1.0);
  double sq = 0.0;
  for (const auto& p : layer.parameters()) {
    for (const float g : p.grad->data()) {
      sq += static_cast<double>(g) * g;
    }
  }
  EXPECT_NEAR(std::sqrt(sq), 1.0, 1e-4);
}

TEST(Optimizer, RejectsBadHyperparameters) {
  Rng rng(23);
  Linear layer(1, 1, rng);
  EXPECT_THROW(Sgd(layer.parameters(), 0.0), PreconditionError);
  EXPECT_THROW(Sgd(layer.parameters(), 0.1, 1.0), PreconditionError);
  EXPECT_THROW(Adam(layer.parameters(), -1.0), PreconditionError);
}

// ----------------------------------------------------------- Serialisation

TEST(Serialize, SaveLoadRoundTrip) {
  Rng rng(24);
  Sequential net;
  net.emplace<Linear>(3, 4, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(4, 2, rng);

  std::stringstream stream;
  save_parameters(net, stream);

  Rng rng2(999);
  Sequential other;
  other.emplace<Linear>(3, 4, rng2);
  other.emplace<ReLU>();
  other.emplace<Linear>(4, 2, rng2);
  load_parameters(other, stream);

  const Tensor x = random_tensor({2, 3}, rng);
  const Tensor y1 = net.forward(x);
  const Tensor y2 = other.forward(x);
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_NEAR(y1[i], y2[i], 1e-5);
  }
}

TEST(Serialize, ShapeMismatchThrows) {
  Rng rng(25);
  Sequential net;
  net.emplace<Linear>(3, 4, rng);
  std::stringstream stream;
  save_parameters(net, stream);

  Sequential wrong;
  wrong.emplace<Linear>(3, 5, rng);
  EXPECT_THROW(load_parameters(wrong, stream), RuntimeError);
}

TEST(Serialize, BadMagicThrows) {
  Rng rng(26);
  Sequential net;
  net.emplace<Linear>(2, 2, rng);
  std::stringstream stream("garbage 1");
  EXPECT_THROW(load_parameters(net, stream), RuntimeError);
}

TEST(Serialize, CopyParametersMakesNetworksIdentical) {
  Rng rng(27);
  Sequential a;
  a.emplace<Linear>(3, 3, rng);
  Sequential b;
  b.emplace<Linear>(3, 3, rng);
  copy_parameters(a, b);
  const Tensor x = random_tensor({1, 3}, rng);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
  }
}

TEST(Serialize, SoftUpdateInterpolates) {
  Rng rng(28);
  Sequential a;
  a.emplace<Linear>(1, 1, rng);
  Sequential b;
  b.emplace<Linear>(1, 1, rng);
  a.parameters()[0].value->fill(1.0f);
  b.parameters()[0].value->fill(0.0f);
  soft_update(a, b, 0.25);
  EXPECT_NEAR((*b.parameters()[0].value)[0], 0.25f, 1e-6);
  soft_update(a, b, 1.0);
  EXPECT_NEAR((*b.parameters()[0].value)[0], 1.0f, 1e-6);
}

// ---------------------------------------------- End-to-end training sanity

TEST(Training, CnnAutoencoderReducesLoss) {
  Rng rng(29);
  Sequential encoder;
  encoder.emplace<Conv1D>(2, 4, 3, rng, 1, 1);
  encoder.emplace<ReLU>();
  encoder.emplace<GlobalAvgPool1D>();
  encoder.emplace<Linear>(4, 3, rng);
  Sequential decoder;
  decoder.emplace<Linear>(3, 16, rng);
  decoder.emplace<ReLU>();
  decoder.emplace<Linear>(16, 2 * 8, rng);

  auto params = encoder.parameters();
  for (auto& p : decoder.parameters()) {
    params.push_back(p);
  }
  Adam opt(std::move(params), 3e-3);

  // Structured (compressible) input: per-sample phase-shifted sinusoids.
  Tensor x({16, 2, 8});
  for (std::size_t n = 0; n < 16; ++n) {
    const double phase = 2.0 * M_PI * static_cast<double>(n) / 16.0;
    const double amp = 0.5 + 0.05 * static_cast<double>(n);
    for (std::size_t t = 0; t < 8; ++t) {
      const double arg = 2.0 * M_PI * static_cast<double>(t) / 8.0 + phase;
      x.at3(n, 0, t) = static_cast<float>(amp * std::sin(arg));
      x.at3(n, 1, t) = static_cast<float>(amp * std::cos(arg));
    }
  }
  const Tensor target = x.reshaped({16, 16});

  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int epoch = 0; epoch < 150; ++epoch) {
    const Tensor recon = decoder.forward(encoder.forward(x));
    const auto loss = mse_loss(recon, target);
    if (epoch == 0) {
      first_loss = loss.value;
    }
    last_loss = loss.value;
    encoder.zero_grad();
    decoder.zero_grad();
    encoder.backward(decoder.backward(loss.grad));
    opt.step();
  }
  EXPECT_LT(last_loss, 0.6f * first_loss)
      << "autoencoder failed to learn: " << first_loss << " -> " << last_loss;
}

}  // namespace
