// Unit tests for dtmsv::twin — attribute-series semantics (ordering,
// eviction, windows, staleness), UDT feature extraction, the twin store,
// and the per-attribute collector including loss/latency failure injection.
#include <gtest/gtest.h>

#include <cmath>

#include "behavior/session.hpp"
#include "mobility/random_waypoint.hpp"
#include "twin/collector.hpp"
#include "twin/series.hpp"
#include "twin/store.hpp"
#include "twin/udt.hpp"
#include "util/error.hpp"
#include "wireless/channel.hpp"

namespace {

using namespace dtmsv::twin;
using dtmsv::util::PreconditionError;
using dtmsv::util::Rng;

// ---------------------------------------------------------- AttributeSeries

TEST(AttributeSeries, RecordAndLatest) {
  AttributeSeries<double> series(8);
  EXPECT_TRUE(series.empty());
  series.record(1.0, 10.0);
  series.record(2.0, 20.0);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.latest().value, 20.0);
  EXPECT_DOUBLE_EQ(series.oldest().value, 10.0);
}

TEST(AttributeSeries, RejectsTimeTravel) {
  AttributeSeries<int> series(4);
  series.record(5.0, 1);
  EXPECT_THROW(series.record(4.0, 2), PreconditionError);
  series.record(5.0, 3);  // equal timestamps allowed
}

TEST(AttributeSeries, EvictsOldestAtCapacity) {
  AttributeSeries<int> series(3);
  for (int i = 0; i < 5; ++i) {
    series.record(static_cast<double>(i), i);
  }
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.oldest().value, 2);
  EXPECT_EQ(series.latest().value, 4);
}

TEST(AttributeSeries, WindowQueryHalfOpen) {
  AttributeSeries<int> series(16);
  for (int i = 0; i < 10; ++i) {
    series.record(static_cast<double>(i), i);
  }
  const auto window = series.window(3.0, 7.0);
  ASSERT_EQ(window.size(), 4u);  // t = 3,4,5,6
  EXPECT_EQ(window.front().value, 3);
  EXPECT_EQ(window.back().value, 6);
}

TEST(AttributeSeries, EmptyWindow) {
  AttributeSeries<int> series(4);
  series.record(10.0, 1);
  EXPECT_TRUE(series.window(0.0, 5.0).empty());
  EXPECT_TRUE(series.window(11.0, 20.0).empty());
}

TEST(AttributeSeries, Staleness) {
  AttributeSeries<int> series(4);
  EXPECT_TRUE(std::isinf(series.staleness(0.0)));
  series.record(10.0, 1);
  EXPECT_DOUBLE_EQ(series.staleness(15.0), 5.0);
  EXPECT_DOUBLE_EQ(series.staleness(5.0), 0.0);  // clamped
}

TEST(AttributeSeries, EmptyAccessRejected) {
  AttributeSeries<int> series(4);
  EXPECT_THROW(series.latest(), PreconditionError);
  EXPECT_THROW(series.oldest(), PreconditionError);
}

TEST(AttributeSeries, ZeroCapacityRejected) {
  EXPECT_THROW(AttributeSeries<int>(0), PreconditionError);
}

// -------------------------------------------------------------------- UDT

TEST(UserDigitalTwin, RecordsAllFourAttributes) {
  UserDigitalTwin twin(3);
  EXPECT_EQ(twin.user_id(), 3u);
  twin.record_channel(1.0, {12.0, 2.5, 0});
  twin.record_location(1.0, {100.0, 200.0});
  WatchObservation w;
  w.category = dtmsv::video::Category::kNews;
  w.watch_seconds = 10.0;
  w.watch_fraction = 0.5;
  w.duration_s = 20.0;
  twin.record_watch(2.0, w);
  twin.record_preference(3.0, twin.preference_estimator().estimate());

  EXPECT_EQ(twin.channel().size(), 1u);
  EXPECT_EQ(twin.location().size(), 1u);
  EXPECT_EQ(twin.watch().size(), 1u);
  EXPECT_EQ(twin.preference().size(), 1u);
}

TEST(UserDigitalTwin, WatchIngestionFeedsPreferenceEstimator) {
  UserDigitalTwin twin(0);
  WatchObservation w;
  w.category = dtmsv::video::Category::kMusic;
  w.watch_seconds = 42.0;
  twin.record_watch(1.0, w);
  const auto est = twin.preference_estimator().estimate();
  EXPECT_GT(est[static_cast<std::size_t>(dtmsv::video::Category::kMusic)], 0.5);
  EXPECT_DOUBLE_EQ(twin.preference_estimator().evidence_seconds(), 42.0);
}

TEST(UserDigitalTwin, FeatureWindowShapeAndRange) {
  UserDigitalTwin twin(0);
  const FeatureScaling scaling{1200.0, 1000.0, 10.0, 40.0};
  for (int t = 0; t < 60; ++t) {
    twin.record_channel(static_cast<double>(t), {15.0, 3.0, 0});
    twin.record_location(static_cast<double>(t), {600.0, 500.0});
  }
  const auto window = twin.feature_window(60.0, 60.0, 16, scaling);
  ASSERT_EQ(window.size(), UserDigitalTwin::kFeatureChannels * 16);
  for (const float v : window) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, -0.01f);
    EXPECT_LE(v, 1.5f);
  }
  // Channel 0 (normalised SNR) should be (15+10)/40 = 0.625 in every bin.
  for (std::size_t b = 0; b < 16; ++b) {
    EXPECT_NEAR(window[b], 0.625f, 1e-5);
  }
  // Channel 2 (x/width) = 0.5.
  for (std::size_t b = 0; b < 16; ++b) {
    EXPECT_NEAR(window[2 * 16 + b], 0.5f, 1e-5);
  }
}

TEST(UserDigitalTwin, FeatureWindowZeroOrderHold) {
  UserDigitalTwin twin(0);
  const FeatureScaling scaling{100.0, 100.0, 10.0, 40.0};
  // One sample early in the window; later bins must hold its value.
  twin.record_channel(1.0, {10.0, 2.0, 0});
  const auto window = twin.feature_window(32.0, 32.0, 8, scaling);
  const float expected = (10.0f + 10.0f) / 40.0f;
  EXPECT_NEAR(window[0], expected, 1e-5);
  EXPECT_NEAR(window[7], expected, 1e-5);  // held forward
}

TEST(UserDigitalTwin, FeatureWindowEmptyTwinAllZero) {
  UserDigitalTwin twin(0);
  const FeatureScaling scaling{100.0, 100.0, 10.0, 40.0};
  const auto window = twin.feature_window(100.0, 50.0, 8, scaling);
  // Preference channels hold zeros too (no snapshots yet).
  for (const float v : window) {
    EXPECT_EQ(v, 0.0f);
  }
}

TEST(UserDigitalTwin, SummaryFeaturesContent) {
  UserDigitalTwin twin(0);
  const FeatureScaling scaling{1000.0, 1000.0, 10.0, 40.0};
  for (int t = 0; t < 10; ++t) {
    twin.record_channel(static_cast<double>(t), {10.0, 2.0, 0});
    twin.record_location(static_cast<double>(t), {500.0, 250.0});
  }
  const auto features = twin.summary_features(10.0, 10.0, scaling);
  ASSERT_EQ(features.size(), 6u + dtmsv::video::kCategoryCount);
  EXPECT_NEAR(features[0], 0.5, 1e-9);   // mean snr normalised
  EXPECT_NEAR(features[1], 0.0, 1e-9);   // snr stddev
  EXPECT_NEAR(features[2], 0.5, 1e-9);   // x
  EXPECT_NEAR(features[3], 0.25, 1e-9);  // y
}

// ------------------------------------------------------------------- Store

TEST(TwinStore, OwnsOneTwinPerUser) {
  TwinStore store(5);
  EXPECT_EQ(store.user_count(), 5u);
  for (std::uint64_t u = 0; u < 5; ++u) {
    EXPECT_EQ(store.twin(u).user_id(), u);
  }
  EXPECT_THROW(store.twin(5), PreconditionError);
}

TEST(TwinStore, BulkFeatureExtraction) {
  TwinStore store(3);
  const FeatureScaling scaling{100.0, 100.0, 10.0, 40.0};
  store.twin(0).record_channel(1.0, {20.0, 4.0, 0});
  const auto windows = store.all_feature_windows(10.0, 10.0, 8, scaling);
  ASSERT_EQ(windows.size(), 3u);
  for (const auto& w : windows) {
    EXPECT_EQ(w.size(), UserDigitalTwin::kFeatureChannels * 8);
  }
  const auto summaries = store.all_summary_features(10.0, 10.0, scaling);
  ASSERT_EQ(summaries.size(), 3u);
}

TEST(TwinStore, DecayPreferencesAcrossAllTwins) {
  TwinStore store(2);
  WatchObservation w;
  w.category = dtmsv::video::Category::kGame;
  w.watch_seconds = 100.0;
  store.twin(0).record_watch(1.0, w);
  store.twin(1).record_watch(1.0, w);
  const double before = store.twin(0).preference_estimator().evidence_seconds();
  store.decay_preferences();
  EXPECT_LT(store.twin(0).preference_estimator().evidence_seconds(), before);
  EXPECT_LT(store.twin(1).preference_estimator().evidence_seconds(), before);
}

// --------------------------------------------------------------- Collector

struct CollectorFixture {
  dtmsv::mobility::CampusMap map = dtmsv::mobility::CampusMap::waterloo_campus();
  dtmsv::mobility::MobilityConfig mob_cfg{};
  Rng rng{99};
  std::size_t users = 4;
  dtmsv::mobility::MobilityField field{map, mob_cfg, users, rng};
  dtmsv::wireless::RadioConfig radio{};
  Rng channel_rng{100};
  dtmsv::wireless::ChannelModel channel{map, radio, users, channel_rng};
  TwinStore store{users};

  void run(StatusCollector& collector, int seconds) {
    for (int t = 0; t < seconds; ++t) {
      field.advance(1.0);
      channel.step(field.snapshot());
      collector.tick(static_cast<double>(t + 1), 1.0, store, channel, field, {});
    }
  }
};

TEST(StatusCollector, RespectsPerAttributePeriods) {
  CollectorFixture fx;
  CollectionPolicy policy;
  policy.channel_period_s = 1.0;
  policy.location_period_s = 5.0;
  policy.preference_period_s = 20.0;
  StatusCollector collector(policy, fx.users, Rng(1));
  fx.run(collector, 20);

  const auto& stats = collector.stats();
  EXPECT_EQ(stats.channel_reports, 20u * fx.users);
  // Location fires at t=1 (first due) then every 5 s: t=1,5,10,15,20 → 5.
  EXPECT_EQ(stats.location_reports, 5u * fx.users);
  EXPECT_EQ(stats.dropped_reports, 0u);
  EXPECT_EQ(fx.store.twin(0).channel().size(), 20u);
}

TEST(StatusCollector, ReportLossDropsShare) {
  CollectorFixture fx;
  CollectionPolicy policy;
  policy.report_loss_prob = 0.5;
  StatusCollector collector(policy, fx.users, Rng(2));
  fx.run(collector, 100);

  const auto& stats = collector.stats();
  const std::size_t delivered = stats.channel_reports + stats.location_reports +
                                stats.preference_reports;
  const double loss_rate =
      static_cast<double>(stats.dropped_reports) /
      static_cast<double>(delivered + stats.dropped_reports);
  EXPECT_NEAR(loss_rate, 0.5, 0.1);
  // Twins still usable, just sparser.
  EXPECT_GT(fx.store.twin(0).channel().size(), 20u);
  EXPECT_LT(fx.store.twin(0).channel().size(), 80u);
}

TEST(StatusCollector, LatencyShiftsVisibility) {
  CollectorFixture fx;
  CollectionPolicy policy;
  policy.latency_s = 10.0;
  StatusCollector collector(policy, fx.users, Rng(3));
  fx.run(collector, 5);
  // Measurements at t=1..5 are stamped 11..15: not visible in [0, 6).
  EXPECT_TRUE(fx.store.twin(0).channel().window(0.0, 6.0).empty());
  EXPECT_EQ(fx.store.twin(0).channel().window(0.0, 16.0).size(), 5u);
}

TEST(StatusCollector, WatchEventsAreEventDriven) {
  CollectorFixture fx;
  CollectionPolicy policy;
  StatusCollector collector(policy, fx.users, Rng(4));

  fx.field.advance(1.0);
  fx.channel.step(fx.field.snapshot());
  dtmsv::behavior::ViewEvent ev;
  ev.user_id = 2;
  ev.video_id = 17;
  ev.category = dtmsv::video::Category::kComedy;
  ev.start_time = 0.2;
  ev.duration_s = 12.0;
  ev.watch_seconds = 6.0;
  ev.watch_fraction = 0.5;
  collector.tick(1.0, 1.0, fx.store, fx.channel, fx.field, {ev});

  EXPECT_EQ(collector.stats().watch_reports, 1u);
  ASSERT_EQ(fx.store.twin(2).watch().size(), 1u);
  const auto& obs = fx.store.twin(2).watch().latest().value;
  EXPECT_EQ(obs.video_id, 17u);
  EXPECT_DOUBLE_EQ(obs.watch_fraction, 0.5);
  // Other twins untouched.
  EXPECT_EQ(fx.store.twin(0).watch().size(), 0u);
}

TEST(StatusCollector, InvalidPolicyRejected) {
  CollectionPolicy policy;
  policy.channel_period_s = 0.0;
  EXPECT_THROW(StatusCollector(policy, 2, Rng(5)), PreconditionError);
  CollectionPolicy p2;
  p2.report_loss_prob = 1.5;
  EXPECT_THROW(StatusCollector(p2, 2, Rng(6)), PreconditionError);
}

}  // namespace
