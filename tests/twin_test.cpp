// Unit tests for dtmsv::twin — attribute-series semantics (ordering,
// eviction, windows, staleness, truncation reporting), the columnar
// ring-buffer store (SoA layout, slot recycling, incremental arena
// extraction and its thread-count invariance), UDT feature extraction,
// the twin store, and the per-attribute collector including loss/latency
// failure injection.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "behavior/session.hpp"
#include "mobility/random_waypoint.hpp"
#include "twin/collector.hpp"
#include "twin/column_store.hpp"
#include "twin/series.hpp"
#include "twin/store.hpp"
#include "twin/udt.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "wireless/channel.hpp"

namespace {

using namespace dtmsv::twin;
using dtmsv::util::PreconditionError;
using dtmsv::util::Rng;

// ---------------------------------------------------------- AttributeSeries

TEST(AttributeSeries, RecordAndLatest) {
  AttributeSeries<double> series(8);
  EXPECT_TRUE(series.empty());
  series.record(1.0, 10.0);
  series.record(2.0, 20.0);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.latest().value, 20.0);
  EXPECT_DOUBLE_EQ(series.oldest().value, 10.0);
}

TEST(AttributeSeries, RejectsTimeTravel) {
  AttributeSeries<int> series(4);
  series.record(5.0, 1);
  EXPECT_THROW(series.record(4.0, 2), PreconditionError);
  series.record(5.0, 3);  // equal timestamps allowed
}

TEST(AttributeSeries, EvictsOldestAtCapacity) {
  AttributeSeries<int> series(3);
  for (int i = 0; i < 5; ++i) {
    series.record(static_cast<double>(i), i);
  }
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.oldest().value, 2);
  EXPECT_EQ(series.latest().value, 4);
}

TEST(AttributeSeries, WindowQueryHalfOpen) {
  AttributeSeries<int> series(16);
  for (int i = 0; i < 10; ++i) {
    series.record(static_cast<double>(i), i);
  }
  const auto window = series.window(3.0, 7.0);
  ASSERT_EQ(window.size(), 4u);  // t = 3,4,5,6
  EXPECT_EQ(window.front().value, 3);
  EXPECT_EQ(window.back().value, 6);
}

TEST(AttributeSeries, EmptyWindow) {
  AttributeSeries<int> series(4);
  series.record(10.0, 1);
  EXPECT_TRUE(series.window(0.0, 5.0).empty());
  EXPECT_TRUE(series.window(11.0, 20.0).empty());
}

TEST(AttributeSeries, Staleness) {
  AttributeSeries<int> series(4);
  EXPECT_TRUE(std::isinf(series.staleness(0.0)));
  series.record(10.0, 1);
  EXPECT_DOUBLE_EQ(series.staleness(15.0), 5.0);
  EXPECT_DOUBLE_EQ(series.staleness(5.0), 0.0);  // clamped
}

TEST(AttributeSeries, EmptyAccessRejected) {
  AttributeSeries<int> series(4);
  EXPECT_THROW(series.latest(), PreconditionError);
  EXPECT_THROW(series.oldest(), PreconditionError);
}

TEST(AttributeSeries, ZeroCapacityRejected) {
  EXPECT_THROW(AttributeSeries<int>(0), PreconditionError);
}

TEST(AttributeSeries, WindowQueryReportsCapacityTruncation) {
  AttributeSeries<int> series(3);
  for (int i = 0; i < 6; ++i) {
    series.record(static_cast<double>(i), i);  // retained: t=3,4,5; evicted: 0,1,2
  }
  // A query starting inside the evicted range must say so instead of
  // silently returning the shorter retained window.
  EXPECT_TRUE(series.truncated_before(0.0));
  EXPECT_TRUE(series.truncated_before(2.0));   // t=2 was evicted
  EXPECT_FALSE(series.truncated_before(2.5));  // everything >= 2.5 retained
  const auto truncated = series.window_query(0.0, 10.0);
  EXPECT_TRUE(truncated.truncated);
  ASSERT_EQ(truncated.samples.size(), 3u);
  EXPECT_EQ(truncated.samples.front().value, 3);
  const auto covered = series.window_query(3.0, 10.0);
  EXPECT_FALSE(covered.truncated);
  EXPECT_EQ(covered.samples.size(), 3u);
  // Before any eviction, nothing is truncated.
  AttributeSeries<int> fresh(8);
  fresh.record(1.0, 1);
  EXPECT_FALSE(fresh.truncated_before(0.0));
  EXPECT_FALSE(fresh.window_query(0.0, 2.0).truncated);
  // clear() forgets the eviction history along with the samples.
  series.clear();
  EXPECT_FALSE(series.truncated_before(0.0));
}

// ------------------------------------------------------- columnar rings

TEST(TwinColumnStore, RingEvictsOldestAndReportsTruncation) {
  TwinColumnStore store(2, /*history_capacity=*/3);
  for (int i = 0; i < 6; ++i) {
    store.record_channel(0, static_cast<double>(i), {static_cast<double>(i), 2.0, 0});
  }
  const ChannelSeries series = store.channel(0);
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.capacity(), 3u);
  EXPECT_DOUBLE_EQ(series.oldest().time, 3.0);
  EXPECT_DOUBLE_EQ(series.latest().value.snr_db, 5.0);
  // Same truncation contract as AttributeSeries.
  EXPECT_TRUE(series.truncated_before(2.0));
  EXPECT_FALSE(series.truncated_before(3.0));
  const auto query = series.window_query(0.0, 10.0);
  EXPECT_TRUE(query.truncated);
  ASSERT_EQ(query.samples.size(), 3u);
  EXPECT_DOUBLE_EQ(query.samples.front().value.snr_db, 3.0);
  EXPECT_FALSE(series.window_query(3.0, 10.0).truncated);
  // The neighbouring user's ring is untouched (fixed-stride slots).
  EXPECT_TRUE(store.channel(1).empty());
  EXPECT_FALSE(store.channel(1).truncated_before(0.0));
}

TEST(TwinColumnStore, RingRejectsTimeTravelPerUser) {
  TwinColumnStore store(2, 4);
  store.record_channel(0, 5.0, {1.0, 1.0, 0});
  EXPECT_THROW(store.record_channel(0, 4.0, {1.0, 1.0, 0}), PreconditionError);
  store.record_channel(0, 5.0, {2.0, 1.0, 0});  // equal timestamps allowed
  store.record_channel(1, 1.0, {3.0, 1.0, 0});  // other users independent
}

TEST(TwinColumnStore, BatchRowsMatchPerTwinExtraction) {
  TwinStore store(3);
  const FeatureScaling scaling{100.0, 100.0, 10.0, 40.0};
  for (int t = 0; t < 30; ++t) {
    store.twin(0).record_channel(t, {10.0 + t, 2.0, 0});
    if (t % 3 == 0) {
      store.twin(1).record_location(t, {50.0, 25.0});
    }
  }
  WatchObservation w;
  w.category = dtmsv::video::Category::kMusic;
  w.watch_seconds = 12.0;
  w.watch_fraction = 0.6;
  store.twin(2).record_watch(5.0, w);

  FeatureArena arena;
  const WindowSpec spec{30.0, 30.0, 8, scaling};
  const WindowBatch windows = store.columns().feature_windows(spec, arena);
  const SummaryBatch summaries =
      store.columns().summary_features({30.0, 30.0, scaling}, arena);
  ASSERT_EQ(windows.size(), 3u);
  ASSERT_EQ(summaries.size(), 3u);
  for (std::size_t u = 0; u < 3; ++u) {
    const auto row = windows.row(u);
    const auto single = store.twin(u).feature_window(30.0, 30.0, 8, scaling);
    ASSERT_EQ(row.size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(row[i], single[i]) << "user " << u << " element " << i;
    }
    const auto srow = summaries.row(u);
    const auto ssingle = store.twin(u).summary_features(30.0, 30.0, scaling);
    ASSERT_EQ(srow.size(), ssingle.size());
    for (std::size_t i = 0; i < ssingle.size(); ++i) {
      EXPECT_EQ(srow[i], ssingle[i]) << "user " << u << " element " << i;
    }
  }
}

TEST(TwinColumnStore, IncrementalExtractionRefreshesOnlyDirtyUsers) {
  TwinStore store(6);
  const FeatureScaling scaling{100.0, 100.0, 10.0, 40.0};
  for (std::size_t u = 0; u < 6; ++u) {
    for (int t = 0; t < 50; ++t) {
      store.twin(u).record_channel(t, {5.0 + static_cast<double>(u), 2.0, 0});
    }
  }
  FeatureArena arena;
  const WindowSpec spec{50.0, 50.0, 16, scaling};
  store.columns().feature_windows(spec, arena);
  EXPECT_EQ(arena.window_stats().refreshed, 6u);
  EXPECT_EQ(arena.window_stats().reused, 0u);

  // Unchanged store + unchanged geometry: every row is served from cache.
  store.columns().feature_windows(spec, arena);
  EXPECT_EQ(arena.window_stats().refreshed, 0u);
  EXPECT_EQ(arena.window_stats().reused, 6u);

  // Touch one user: only that row is re-extracted, and the batch is
  // bit-identical to a from-scratch full extraction.
  store.columns().record_channel(2, 49.5, {20.0, 3.0, 0});
  const WindowBatch incremental = store.columns().feature_windows(spec, arena);
  EXPECT_EQ(arena.window_stats().refreshed, 1u);
  EXPECT_EQ(arena.window_stats().reused, 5u);
  FeatureArena fresh;
  const WindowBatch full =
      store.columns().feature_windows(spec, fresh, /*force_full=*/true);
  ASSERT_EQ(incremental.size(), full.size());
  ASSERT_EQ(incremental.window_size(), full.window_size());
  EXPECT_EQ(std::memcmp(incremental.data(), full.data(),
                        full.size() * full.window_size() * sizeof(float)),
            0);

  // Moving the window geometry (a new `now`) invalidates every row.
  const WindowSpec moved{51.0, 50.0, 16, scaling};
  store.columns().feature_windows(moved, arena);
  EXPECT_EQ(arena.window_stats().refreshed, 6u);
}

TEST(TwinColumnStore, HandoverSlotRecyclingLeavesNoHistoryBehind) {
  TwinStore store(3);
  const FeatureScaling scaling{100.0, 100.0, 10.0, 40.0};
  for (int t = 0; t < 40; ++t) {
    store.twin(1).record_channel(t, {25.0, 4.0, 0});
  }
  WatchObservation w;
  w.category = dtmsv::video::Category::kGame;
  w.watch_seconds = 30.0;
  w.watch_fraction = 0.9;
  store.twin(1).record_watch(10.0, w);
  store.twin(1).record_preference(20.0, store.twin(1).preference_estimator().estimate());

  FeatureArena arena;
  const WindowSpec spec{40.0, 40.0, 8, scaling};
  const WindowBatch before = store.columns().feature_windows(spec, arena);
  bool any_nonzero = false;
  for (const float v : before.row(1)) {
    any_nonzero |= v != 0.0f;
  }
  ASSERT_TRUE(any_nonzero);

  // Handover: the slot is recycled in place — no history, no estimator
  // evidence, no stale truncation flag, and the dirty watermark advances.
  const std::uint64_t rev_before = store.columns().revision(1);
  store.reset_user(1);
  EXPECT_GT(store.columns().revision(1), rev_before);
  EXPECT_TRUE(store.twin(1).channel().empty());
  EXPECT_TRUE(store.twin(1).watch().empty());
  EXPECT_TRUE(store.twin(1).preference().empty());
  EXPECT_DOUBLE_EQ(store.twin(1).preference_estimator().evidence_seconds(), 0.0);
  EXPECT_FALSE(store.twin(1).channel().truncated_before(0.0));

  // The next incremental snapshot must not leak the previous user's rows:
  // only the recycled slot refreshes, and it refreshes to all-zero.
  const WindowBatch after = store.columns().feature_windows(spec, arena);
  EXPECT_EQ(arena.window_stats().refreshed, 1u);
  for (const float v : after.row(1)) {
    EXPECT_EQ(v, 0.0f);
  }
  // Recording for the newcomer restarts cleanly from an empty ring.
  store.twin(1).record_channel(41.0, {12.0, 2.0, 0});
  EXPECT_EQ(store.twin(1).channel().size(), 1u);
}

TEST(TwinColumnStore, IncrementalExtractionThreadCountInvariant) {
  const FeatureScaling scaling{100.0, 100.0, 10.0, 40.0};
  const WindowSpec spec{60.0, 60.0, 16, scaling};
  const auto run_with_threads = [&](std::size_t threads) {
    dtmsv::util::set_thread_count(threads);
    TwinStore store(64);
    for (std::size_t u = 0; u < 64; ++u) {
      for (int t = 0; t < 60; ++t) {
        store.twin(u).record_channel(
            t, {5.0 + 0.1 * static_cast<double>(u * 60 + t), 2.0, 0});
      }
    }
    FeatureArena arena;
    store.columns().feature_windows(spec, arena);
    for (std::size_t u = 0; u < 64; u += 7) {
      store.columns().record_channel(u, 59.5, {30.0, 5.0, 0});
    }
    const WindowBatch batch = store.columns().feature_windows(spec, arena);
    std::vector<float> bytes(batch.data(),
                             batch.data() + batch.size() * batch.window_size());
    dtmsv::util::set_thread_count(0);  // restore env/hardware default
    return bytes;
  };
  const auto single = run_with_threads(1);
  const auto pooled = run_with_threads(5);
  ASSERT_EQ(single.size(), pooled.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    ASSERT_EQ(single[i], pooled[i]) << "element " << i;
  }
}

// -------------------------------------------------------------------- UDT

TEST(UserDigitalTwin, RecordsAllFourAttributes) {
  UserDigitalTwin twin(3);
  EXPECT_EQ(twin.user_id(), 3u);
  twin.record_channel(1.0, {12.0, 2.5, 0});
  twin.record_location(1.0, {100.0, 200.0});
  WatchObservation w;
  w.category = dtmsv::video::Category::kNews;
  w.watch_seconds = 10.0;
  w.watch_fraction = 0.5;
  w.duration_s = 20.0;
  twin.record_watch(2.0, w);
  twin.record_preference(3.0, twin.preference_estimator().estimate());

  EXPECT_EQ(twin.channel().size(), 1u);
  EXPECT_EQ(twin.location().size(), 1u);
  EXPECT_EQ(twin.watch().size(), 1u);
  EXPECT_EQ(twin.preference().size(), 1u);
}

TEST(UserDigitalTwin, WatchIngestionFeedsPreferenceEstimator) {
  UserDigitalTwin twin(0);
  WatchObservation w;
  w.category = dtmsv::video::Category::kMusic;
  w.watch_seconds = 42.0;
  twin.record_watch(1.0, w);
  const auto est = twin.preference_estimator().estimate();
  EXPECT_GT(est[static_cast<std::size_t>(dtmsv::video::Category::kMusic)], 0.5);
  EXPECT_DOUBLE_EQ(twin.preference_estimator().evidence_seconds(), 42.0);
}

TEST(UserDigitalTwin, FeatureWindowShapeAndRange) {
  UserDigitalTwin twin(0);
  const FeatureScaling scaling{1200.0, 1000.0, 10.0, 40.0};
  for (int t = 0; t < 60; ++t) {
    twin.record_channel(static_cast<double>(t), {15.0, 3.0, 0});
    twin.record_location(static_cast<double>(t), {600.0, 500.0});
  }
  const auto window = twin.feature_window(60.0, 60.0, 16, scaling);
  ASSERT_EQ(window.size(), UserDigitalTwin::kFeatureChannels * 16);
  for (const float v : window) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, -0.01f);
    EXPECT_LE(v, 1.5f);
  }
  // Channel 0 (normalised SNR) should be (15+10)/40 = 0.625 in every bin.
  for (std::size_t b = 0; b < 16; ++b) {
    EXPECT_NEAR(window[b], 0.625f, 1e-5);
  }
  // Channel 2 (x/width) = 0.5.
  for (std::size_t b = 0; b < 16; ++b) {
    EXPECT_NEAR(window[2 * 16 + b], 0.5f, 1e-5);
  }
}

TEST(UserDigitalTwin, FeatureWindowZeroOrderHold) {
  UserDigitalTwin twin(0);
  const FeatureScaling scaling{100.0, 100.0, 10.0, 40.0};
  // One sample early in the window; later bins must hold its value.
  twin.record_channel(1.0, {10.0, 2.0, 0});
  const auto window = twin.feature_window(32.0, 32.0, 8, scaling);
  const float expected = (10.0f + 10.0f) / 40.0f;
  EXPECT_NEAR(window[0], expected, 1e-5);
  EXPECT_NEAR(window[7], expected, 1e-5);  // held forward
}

TEST(UserDigitalTwin, FeatureWindowEmptyTwinAllZero) {
  UserDigitalTwin twin(0);
  const FeatureScaling scaling{100.0, 100.0, 10.0, 40.0};
  const auto window = twin.feature_window(100.0, 50.0, 8, scaling);
  // Preference channels hold zeros too (no snapshots yet).
  for (const float v : window) {
    EXPECT_EQ(v, 0.0f);
  }
}

TEST(UserDigitalTwin, SummaryFeaturesContent) {
  UserDigitalTwin twin(0);
  const FeatureScaling scaling{1000.0, 1000.0, 10.0, 40.0};
  for (int t = 0; t < 10; ++t) {
    twin.record_channel(static_cast<double>(t), {10.0, 2.0, 0});
    twin.record_location(static_cast<double>(t), {500.0, 250.0});
  }
  const auto features = twin.summary_features(10.0, 10.0, scaling);
  ASSERT_EQ(features.size(), 6u + dtmsv::video::kCategoryCount);
  EXPECT_NEAR(features[0], 0.5, 1e-9);   // mean snr normalised
  EXPECT_NEAR(features[1], 0.0, 1e-9);   // snr stddev
  EXPECT_NEAR(features[2], 0.5, 1e-9);   // x
  EXPECT_NEAR(features[3], 0.25, 1e-9);  // y
}

// ------------------------------------------------------------------- Store

TEST(TwinStore, OwnsOneTwinPerUser) {
  TwinStore store(5);
  EXPECT_EQ(store.user_count(), 5u);
  for (std::uint64_t u = 0; u < 5; ++u) {
    EXPECT_EQ(store.twin(u).user_id(), u);
  }
  EXPECT_THROW(store.twin(5), PreconditionError);
}

TEST(TwinStore, BulkFeatureExtraction) {
  TwinStore store(3);
  const FeatureScaling scaling{100.0, 100.0, 10.0, 40.0};
  store.twin(0).record_channel(1.0, {20.0, 4.0, 0});
  // The WindowBatch/SummaryBatch views are the only bulk surface; their
  // rows must be bit-identical to the per-twin single-row extraction.
  FeatureArena arena;
  const WindowBatch batch =
      store.columns().feature_windows({10.0, 10.0, 8, scaling}, arena);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t u = 0; u < 3; ++u) {
    const auto row = batch.row(u);
    ASSERT_EQ(row.size(), UserDigitalTwin::kFeatureChannels * 8);
    const std::vector<float> single = store.twin(u).feature_window(10.0, 10.0, 8, scaling);
    ASSERT_EQ(single.size(), row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(single[i], row[i]);
    }
  }
  const SummaryBatch summaries =
      store.columns().summary_features({10.0, 10.0, scaling}, arena);
  ASSERT_EQ(summaries.size(), 3u);
  for (std::size_t u = 0; u < 3; ++u) {
    const auto row = summaries.row(u);
    const std::vector<double> single = store.twin(u).summary_features(10.0, 10.0, scaling);
    ASSERT_EQ(single.size(), row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(single[i], row[i]);
    }
  }
}

TEST(TwinStore, DecayPreferencesAcrossAllTwins) {
  TwinStore store(2);
  WatchObservation w;
  w.category = dtmsv::video::Category::kGame;
  w.watch_seconds = 100.0;
  store.twin(0).record_watch(1.0, w);
  store.twin(1).record_watch(1.0, w);
  const double before = store.twin(0).preference_estimator().evidence_seconds();
  store.decay_preferences();
  EXPECT_LT(store.twin(0).preference_estimator().evidence_seconds(), before);
  EXPECT_LT(store.twin(1).preference_estimator().evidence_seconds(), before);
}

// --------------------------------------------------------------- Collector

struct CollectorFixture {
  dtmsv::mobility::CampusMap map = dtmsv::mobility::CampusMap::waterloo_campus();
  dtmsv::mobility::MobilityConfig mob_cfg{};
  Rng rng{99};
  std::size_t users = 4;
  dtmsv::mobility::MobilityField field{map, mob_cfg, users, rng};
  dtmsv::wireless::RadioConfig radio{};
  Rng channel_rng{100};
  dtmsv::wireless::ChannelModel channel{map, radio, users, channel_rng};
  TwinStore store{users};

  void run(StatusCollector& collector, int seconds) {
    for (int t = 0; t < seconds; ++t) {
      field.advance(1.0);
      channel.step(field.snapshot());
      collector.tick(static_cast<double>(t + 1), 1.0, store, channel, field, {});
    }
  }
};

TEST(StatusCollector, RespectsPerAttributePeriods) {
  CollectorFixture fx;
  CollectionPolicy policy;
  policy.channel_period_s = 1.0;
  policy.location_period_s = 5.0;
  policy.preference_period_s = 20.0;
  StatusCollector collector(policy, fx.users, Rng(1));
  fx.run(collector, 20);

  const auto& stats = collector.stats();
  EXPECT_EQ(stats.channel_reports, 20u * fx.users);
  // Location fires at t=1 (first due) then every 5 s: t=1,5,10,15,20 → 5.
  EXPECT_EQ(stats.location_reports, 5u * fx.users);
  EXPECT_EQ(stats.dropped_reports, 0u);
  EXPECT_EQ(fx.store.twin(0).channel().size(), 20u);
}

TEST(StatusCollector, ReportLossDropsShare) {
  CollectorFixture fx;
  CollectionPolicy policy;
  policy.report_loss_prob = 0.5;
  StatusCollector collector(policy, fx.users, Rng(2));
  fx.run(collector, 100);

  const auto& stats = collector.stats();
  const std::size_t delivered = stats.channel_reports + stats.location_reports +
                                stats.preference_reports;
  const double loss_rate =
      static_cast<double>(stats.dropped_reports) /
      static_cast<double>(delivered + stats.dropped_reports);
  EXPECT_NEAR(loss_rate, 0.5, 0.1);
  // Twins still usable, just sparser.
  EXPECT_GT(fx.store.twin(0).channel().size(), 20u);
  EXPECT_LT(fx.store.twin(0).channel().size(), 80u);
}

TEST(StatusCollector, LatencyShiftsVisibility) {
  CollectorFixture fx;
  CollectionPolicy policy;
  policy.latency_s = 10.0;
  StatusCollector collector(policy, fx.users, Rng(3));
  fx.run(collector, 5);
  // Measurements at t=1..5 are stamped 11..15: not visible in [0, 6).
  EXPECT_TRUE(fx.store.twin(0).channel().window(0.0, 6.0).empty());
  EXPECT_EQ(fx.store.twin(0).channel().window(0.0, 16.0).size(), 5u);
}

TEST(StatusCollector, WatchEventsAreEventDriven) {
  CollectorFixture fx;
  CollectionPolicy policy;
  StatusCollector collector(policy, fx.users, Rng(4));

  fx.field.advance(1.0);
  fx.channel.step(fx.field.snapshot());
  dtmsv::behavior::ViewEvent ev;
  ev.user_id = 2;
  ev.video_id = 17;
  ev.category = dtmsv::video::Category::kComedy;
  ev.start_time = 0.2;
  ev.duration_s = 12.0;
  ev.watch_seconds = 6.0;
  ev.watch_fraction = 0.5;
  collector.tick(1.0, 1.0, fx.store, fx.channel, fx.field, {ev});

  EXPECT_EQ(collector.stats().watch_reports, 1u);
  ASSERT_EQ(fx.store.twin(2).watch().size(), 1u);
  const auto& obs = fx.store.twin(2).watch().latest().value;
  EXPECT_EQ(obs.video_id, 17u);
  EXPECT_DOUBLE_EQ(obs.watch_fraction, 0.5);
  // Other twins untouched.
  EXPECT_EQ(fx.store.twin(0).watch().size(), 0u);
}

TEST(StatusCollector, InvalidPolicyRejected) {
  CollectionPolicy policy;
  policy.channel_period_s = 0.0;
  EXPECT_THROW(StatusCollector(policy, 2, Rng(5)), PreconditionError);
  CollectionPolicy p2;
  p2.report_loss_prob = 1.5;
  EXPECT_THROW(StatusCollector(p2, 2, Rng(6)), PreconditionError);
}

}  // namespace
