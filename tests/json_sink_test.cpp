// JsonReportSink validation: the NDJSON stream must carry exactly the
// records a CollectingSink observes on the same run, with numeric fields
// that parse back to the in-process doubles bit-for-bit (full round-trip
// precision) — the property the CLI/CI path relies on when aggregate stats
// from dtmsv_sim artifacts are compared against in-process runs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/json_sink.hpp"
#include "core/scenarios.hpp"

namespace {

using namespace dtmsv;

/// Splits NDJSON text into lines and keeps those of the given type.
std::vector<std::string> records_of_type(const std::string& ndjson,
                                         const std::string& type) {
  std::vector<std::string> out;
  std::istringstream in(ndjson);
  std::string line;
  const std::string tag = "\"type\":\"" + type + "\"";
  while (std::getline(in, line)) {
    if (line.find(tag) != std::string::npos) {
      out.push_back(line);
    }
  }
  return out;
}

/// Extracts the numeric field `key` from a single-line JSON record.
double number_field(const std::string& record, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = record.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << record;
  if (pos == std::string::npos) {
    return 0.0;
  }
  return std::strtod(record.c_str() + pos + needle.size(), nullptr);
}

bool bool_field(const std::string& record, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = record.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << record;
  return record.compare(pos + needle.size(), 4, "true") == 0;
}

core::ScenarioConfig small_churn_scenario() {
  // Mobility churn exercises all three record types (handovers included).
  core::ScenarioConfig cfg = core::make_scenario(
      core::ScenarioKind::kMobilityChurn, /*total_users=*/36,
      /*cell_count=*/2, /*seed=*/11);
  cfg.intervals = 4;
  cfg.churn_fraction = 0.2;
  return cfg;
}

TEST(JsonReportSink, StreamMatchesCollectingSinkBitForBit) {
  const core::ScenarioConfig cfg = small_churn_scenario();

  core::CollectingSink collected;
  core::run_scenario(cfg, &collected);

  std::ostringstream ndjson;
  core::JsonReportSink json(ndjson);
  core::run_scenario(cfg, &json);

  // Identical record counts, and the sink's own counters agree.
  const auto groups = records_of_type(ndjson.str(), "group");
  const auto intervals = records_of_type(ndjson.str(), "interval");
  const auto handovers = records_of_type(ndjson.str(), "handover");
  ASSERT_EQ(groups.size(), collected.groups.size());
  ASSERT_EQ(intervals.size(), collected.reports.size());
  ASSERT_EQ(handovers.size(), collected.handovers.size());
  EXPECT_GT(handovers.size(), 0u);  // churn must actually hand users over
  EXPECT_EQ(json.group_records(), groups.size());
  EXPECT_EQ(json.interval_records(), intervals.size());
  EXPECT_EQ(json.handover_records(), handovers.size());

  // Every interval record's numbers reparse to the in-process doubles
  // exactly (full round-trip precision, same stream order).
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const core::EpochReport& r = collected.reports[i];
    const std::string& line = intervals[i];
    EXPECT_EQ(number_field(line, "interval"), static_cast<double>(r.interval));
    EXPECT_EQ(bool_field(line, "grouped"), r.grouped);
    EXPECT_EQ(bool_field(line, "has_prediction"), r.has_prediction);
    EXPECT_EQ(number_field(line, "k"), static_cast<double>(r.k));
    EXPECT_EQ(number_field(line, "silhouette"), r.silhouette);
    EXPECT_EQ(number_field(line, "predicted_radio_hz_total"),
              r.predicted_radio_hz_total);
    EXPECT_EQ(number_field(line, "actual_radio_hz_total"),
              r.actual_radio_hz_total);
    EXPECT_EQ(number_field(line, "predicted_compute_total"),
              r.predicted_compute_total);
    EXPECT_EQ(number_field(line, "actual_compute_total"),
              r.actual_compute_total);
    EXPECT_EQ(number_field(line, "unicast_radio_hz_total"),
              r.unicast_radio_hz_total);
    EXPECT_EQ(number_field(line, "radio_error"), r.radio_error);
    EXPECT_EQ(number_field(line, "compute_error"), r.compute_error);
  }
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const core::GroupReport& g = collected.groups[i];
    const std::string& line = groups[i];
    EXPECT_EQ(number_field(line, "interval"),
              static_cast<double>(collected.group_intervals[i]));
    EXPECT_EQ(number_field(line, "group_id"), static_cast<double>(g.group_id));
    EXPECT_EQ(number_field(line, "size"), static_cast<double>(g.size));
    EXPECT_EQ(number_field(line, "predicted_radio_hz"), g.predicted_radio_hz);
    EXPECT_EQ(number_field(line, "actual_radio_hz"), g.actual_radio_hz);
    EXPECT_EQ(number_field(line, "predicted_compute_cycles"),
              g.predicted_compute_cycles);
    EXPECT_EQ(number_field(line, "actual_compute_cycles"),
              g.actual_compute_cycles);
    EXPECT_EQ(number_field(line, "unicast_radio_hz"), g.unicast_radio_hz);
  }
  for (std::size_t i = 0; i < handovers.size(); ++i) {
    const core::HandoverEvent& e = collected.handovers[i];
    const std::string& line = handovers[i];
    EXPECT_EQ(number_field(line, "interval"), static_cast<double>(e.interval));
    EXPECT_EQ(number_field(line, "shard_a"), static_cast<double>(e.shard_a));
    EXPECT_EQ(number_field(line, "shard_b"), static_cast<double>(e.shard_b));
    EXPECT_EQ(number_field(line, "slot_a"), static_cast<double>(e.slot_a));
    EXPECT_EQ(number_field(line, "slot_b"), static_cast<double>(e.slot_b));
  }
}

TEST(JsonReportSink, EveryLineIsASingleJsonObject) {
  std::ostringstream ndjson;
  core::JsonReportSink json(ndjson);
  core::run_scenario(small_churn_scenario(), &json);

  std::istringstream in(ndjson.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    // Balanced quotes and no unescaped interior braces: a cheap structural
    // check that each record is one flat object.
    std::size_t quotes = 0;
    for (const char c : line) {
      quotes += c == '"' ? 1 : 0;
    }
    EXPECT_EQ(quotes % 2, 0u) << line;
  }
  EXPECT_EQ(lines, json.record_count());
}

TEST(JsonReportSink, DegradationAndDropRecords) {
  std::ostringstream out;
  core::JsonReportSink sink(out);

  core::DegradationEvent degradation;
  degradation.interval = 4;
  degradation.from_level = 0;
  degradation.to_level = 1;
  degradation.from_name = "cnn_full";
  degradation.to_name = "cnn_incremental";
  degradation.latency_ms = 72.5;
  degradation.deadline_ms = 50.0;
  degradation.recovering = false;
  sink.on_degradation(degradation);

  core::DropEvent drop;
  drop.interval = 5;
  drop.dropped = 1234;
  drop.queue_capacity = 2048;
  drop.queue_size = 2048;
  sink.on_drop(drop);

  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "{\"type\":\"degradation\",\"interval\":4,\"from_level\":0,"
            "\"to_level\":1,\"from_name\":\"cnn_full\","
            "\"to_name\":\"cnn_incremental\",\"latency_ms\":72.5,"
            "\"deadline_ms\":50,\"recovering\":false}");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "{\"type\":\"drop\",\"interval\":5,\"dropped\":1234,"
            "\"queue_capacity\":2048,\"queue_size\":2048}");
  EXPECT_FALSE(std::getline(in, line));
  EXPECT_EQ(sink.degradation_records(), 1u);
  EXPECT_EQ(sink.drop_records(), 1u);
  EXPECT_EQ(sink.record_count(), 2u);
}

TEST(JsonReportSink, MetaRecordsAndEscaping) {
  std::ostringstream out;
  core::JsonReportSink sink(out);
  sink.meta("run", {{"label", core::json_string("a \"quoted\"\nlabel")},
                    {"seed", "7"}});
  EXPECT_EQ(out.str(),
            "{\"type\":\"run\",\"label\":\"a \\\"quoted\\\"\\nlabel\","
            "\"seed\":7}\n");
  EXPECT_EQ(sink.record_count(), 1u);

  EXPECT_EQ(core::json_number(1.5), "1.5");
  EXPECT_EQ(core::json_number(std::strtod("inf", nullptr)), "null");
}

}  // namespace
