// Tests for the scenario library: all four named workloads run end-to-end
// at smoke size under ctest, with the kind-specific dynamics observable in
// the results.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/scenarios.hpp"

namespace {

using namespace dtmsv;
using core::ScenarioConfig;
using core::ScenarioKind;
using core::ScenarioResult;

/// Shrinks a canonical scenario to ctest smoke size.
ScenarioConfig smoke(ScenarioKind kind, std::uint64_t seed = 42) {
  ScenarioConfig cfg = core::make_scenario(kind, /*total_users=*/36,
                                           /*cell_count=*/2, seed);
  cfg.intervals = 4;
  cfg.base.interval_s = 30.0;
  cfg.base.demand.interval_s = cfg.base.interval_s;
  cfg.base.feature_window_s = 60.0;
  cfg.base.session.engagement.catalog.videos_per_category = 30;
  cfg.base.grouping.k_max = 4;
  cfg.base.grouping.ddqn.hidden = {16};
  cfg.surge_interval = 2;
  return cfg;
}

TEST(Scenarios, NamesAreDistinct) {
  std::set<std::string> names;
  for (const ScenarioKind kind : core::all_scenarios()) {
    names.insert(core::to_string(kind));
  }
  EXPECT_EQ(names.size(), core::kScenarioKindCount);
}

TEST(Scenarios, AllKindsRunAtSmokeSize) {
  for (const ScenarioKind kind : core::all_scenarios()) {
    const ScenarioResult result = run_scenario(smoke(kind));
    ASSERT_EQ(result.reports.size(), 4u) << core::to_string(kind);
    // Warm-up over, every interval afterwards predicts and plays.
    const auto& last = result.reports.back();
    EXPECT_GT(last.grouped_shards, 0u) << core::to_string(kind);
    EXPECT_GT(last.actual_radio_hz_total, 0.0) << core::to_string(kind);
    EXPECT_TRUE(std::isfinite(last.predicted_radio_hz_total));
    EXPECT_GE(result.radio_accuracy, 0.0);
    EXPECT_LE(result.radio_accuracy, 1.0);
    EXPECT_GE(result.compute_accuracy, 0.0);
    EXPECT_LE(result.compute_accuracy, 1.0);
  }
}

TEST(Scenarios, FlashCrowdGrowsThePopulation) {
  const ScenarioConfig cfg = smoke(ScenarioKind::kFlashCrowd);
  const ScenarioResult result = run_scenario(cfg);
  const std::size_t surge = static_cast<std::size_t>(
      std::llround(cfg.surge_fraction * static_cast<double>(cfg.total_users)));
  EXPECT_EQ(result.peak_users, cfg.total_users + surge);
  // Before the surge: the base population only.
  EXPECT_EQ(result.reports[cfg.surge_interval - 1].user_count, cfg.total_users);
  // From the surge interval on: the crowd is present, attached to its cell.
  const auto& surged = result.reports[cfg.surge_interval];
  EXPECT_EQ(surged.user_count, cfg.total_users + surge);
  EXPECT_EQ(surged.shards.back().cell, cfg.surge_cell);
  // The surge demand becomes visible once the new shard finishes warm-up.
  EXPECT_GT(result.reports.back().grouped_shards,
            result.reports[cfg.surge_interval].grouped_shards);
}

TEST(Scenarios, MobilityChurnHandsUsersOver) {
  const ScenarioResult result = run_scenario(smoke(ScenarioKind::kMobilityChurn));
  EXPECT_GT(result.handovers, 0u);
  EXPECT_EQ(result.peak_users, 36u);  // churn moves users, never adds them
}

TEST(Scenarios, CatalogDriftConfiguresNonStationarity) {
  const ScenarioConfig cfg = smoke(ScenarioKind::kCatalogDrift);
  EXPECT_GT(cfg.base.affinity_drift_rate, 0.0);
  EXPECT_LT(cfg.base.popularity_forgetting, 0.8);
  const ScenarioResult result = run_scenario(cfg);
  EXPECT_GT(result.reports.back().actual_radio_hz_total, 0.0);
}

TEST(Scenarios, StreamsToReportSink) {
  // The scenario runner forwards the full report stream: one on_interval
  // per shard per interval (empty `groups`, per the streaming contract),
  // on_group for every scored group, and on_handover for every churn swap.
  const ScenarioConfig cfg = smoke(ScenarioKind::kMobilityChurn);
  core::CollectingSink sink;
  const ScenarioResult result = core::run_scenario(cfg, &sink);

  std::size_t shard_intervals = 0;
  for (const auto& r : result.reports) {
    shard_intervals += r.shards.size();
  }
  EXPECT_EQ(sink.reports.size(), shard_intervals);
  for (const auto& r : sink.reports) {
    EXPECT_TRUE(r.groups.empty()) << "streaming reports must not buffer groups";
  }
  EXPECT_GT(sink.groups.size(), 0u);
  EXPECT_EQ(sink.handovers.size(), result.handovers / 2);  // one event per swap

  // The streamed per-shard totals reproduce the aggregated fleet totals.
  double streamed_actual = 0.0;
  for (const auto& r : sink.reports) {
    streamed_actual += r.actual_radio_hz_total;
  }
  double fleet_actual = 0.0;
  for (const auto& r : result.reports) {
    fleet_actual += r.actual_radio_hz_total;
  }
  EXPECT_DOUBLE_EQ(streamed_actual, fleet_actual);
}

TEST(Scenarios, DeterministicPerSeed) {
  for (const ScenarioKind kind :
       {ScenarioKind::kFlashCrowd, ScenarioKind::kMobilityChurn}) {
    const ScenarioResult a = run_scenario(smoke(kind, 9));
    const ScenarioResult b = run_scenario(smoke(kind, 9));
    ASSERT_EQ(a.reports.size(), b.reports.size());
    for (std::size_t i = 0; i < a.reports.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.reports[i].actual_radio_hz_total,
                       b.reports[i].actual_radio_hz_total);
      EXPECT_DOUBLE_EQ(a.reports[i].predicted_radio_hz_total,
                       b.reports[i].predicted_radio_hz_total);
    }
    EXPECT_EQ(a.handovers, b.handovers);
  }
}

}  // namespace
