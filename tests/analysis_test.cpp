// Unit tests for dtmsv::analysis — swiping distribution CDF/expectation
// semantics (the paper's Fig. 3(a) machinery), popularity tracking with
// forgetting, and the group recommender.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "analysis/popularity.hpp"
#include "analysis/recommend.hpp"
#include "analysis/swiping.hpp"
#include "util/error.hpp"

namespace {

using namespace dtmsv::analysis;
using dtmsv::behavior::PreferenceVector;
using dtmsv::util::PreconditionError;
using dtmsv::util::Rng;
using dtmsv::video::Category;
using dtmsv::video::kCategoryCount;

// ------------------------------------------------------ SwipingDistribution

TEST(SwipingDistribution, UninformedPriorIsUniform) {
  SwipingDistribution dist;
  // With no observations, CDF(t) = t.
  EXPECT_NEAR(dist.cumulative_swipe_probability(Category::kNews, 0.3), 0.3, 1e-9);
  EXPECT_NEAR(dist.expected_watch_fraction(Category::kNews), 0.5, 1e-9);
}

TEST(SwipingDistribution, CdfMonotoneAndBounded) {
  SwipingDistribution dist;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    dist.observe(Category::kGame, rng.uniform());
  }
  double prev = -1.0;
  for (double t = 0.0; t <= 1.0; t += 0.05) {
    const double cdf = dist.cumulative_swipe_probability(Category::kGame, t);
    EXPECT_GE(cdf, prev - 1e-12);
    EXPECT_GE(cdf, 0.0);
    EXPECT_LE(cdf, 1.0);
    prev = cdf;
  }
  EXPECT_NEAR(dist.cumulative_swipe_probability(Category::kGame, 1.0), 1.0, 1e-9);
}

TEST(SwipingDistribution, EarlySwipersShiftCdfUp) {
  SwipingDistribution early;
  SwipingDistribution late;
  for (int i = 0; i < 200; ++i) {
    early.observe(Category::kGame, 0.1);
    late.observe(Category::kNews, 0.9);
  }
  EXPECT_GT(early.cumulative_swipe_probability(Category::kGame, 0.5),
            late.cumulative_swipe_probability(Category::kNews, 0.5) + 0.5);
  EXPECT_LT(early.expected_watch_fraction(Category::kGame),
            late.expected_watch_fraction(Category::kNews));
}

TEST(SwipingDistribution, ExpectedWatchFractionMatchesMass) {
  SwipingDistribution dist(20, 1.0);
  for (int i = 0; i < 100; ++i) {
    dist.observe(Category::kMusic, 0.25);
  }
  // 0.25 lands on the boundary of bin 5 ([0.25, 0.30)) → midpoint 0.275.
  EXPECT_NEAR(dist.expected_watch_fraction(Category::kMusic), 0.275, 0.01);
}

TEST(SwipingDistribution, ExpectedMaxIncreasesWithGroupSize) {
  SwipingDistribution dist;
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    dist.observe(Category::kSports, rng.beta(2.0, 4.0));
  }
  const double e1 = dist.expected_max_watch_fraction(Category::kSports, 1);
  const double e4 = dist.expected_max_watch_fraction(Category::kSports, 4);
  const double e32 = dist.expected_max_watch_fraction(Category::kSports, 32);
  EXPECT_LT(e1, e4);
  EXPECT_LT(e4, e32);
  EXPECT_LE(e32, 1.0);
  // E[max of 1] == E[X].
  EXPECT_NEAR(e1, dist.expected_watch_fraction(Category::kSports), 0.03);
}

TEST(SwipingDistribution, CategoryFallbackToAll) {
  SwipingDistribution dist;
  for (int i = 0; i < 100; ++i) {
    dist.observe(Category::kNews, 0.8);
  }
  // Game never observed → falls back to the all-category distribution.
  EXPECT_NEAR(dist.expected_watch_fraction(Category::kGame),
              dist.expected_watch_fraction(Category::kNews), 1e-9);
}

TEST(SwipingDistribution, DecayForgetsHistory) {
  SwipingDistribution dist(20, 0.5);
  for (int i = 0; i < 64; ++i) {
    dist.observe(Category::kComedy, 0.9);
  }
  const double mass_before = dist.mass(Category::kComedy);
  dist.decay();
  EXPECT_NEAR(dist.mass(Category::kComedy), mass_before * 0.5, 1e-9);
}

TEST(SwipingDistribution, ObservationValidation) {
  SwipingDistribution dist;
  EXPECT_THROW(dist.observe(Category::kNews, -0.1), PreconditionError);
  EXPECT_THROW(dist.observe(Category::kNews, 1.2), PreconditionError);
  dist.observe(Category::kNews, 1.0);  // boundary ok
  dist.observe(Category::kNews, 0.0);
}

TEST(BuildGroupSwiping, AggregatesMemberHistories) {
  dtmsv::twin::UserDigitalTwin a(0);
  dtmsv::twin::UserDigitalTwin b(1);
  dtmsv::twin::WatchObservation w;
  w.category = Category::kNews;
  w.watch_fraction = 0.9;
  a.record_watch(10.0, w);
  w.watch_fraction = 0.1;
  b.record_watch(20.0, w);

  const auto dist = build_group_swiping({&a, &b}, 30.0, 30.0);
  EXPECT_NEAR(dist.expected_watch_fraction(Category::kNews), 0.5, 0.06);
  EXPECT_DOUBLE_EQ(dist.mass(Category::kNews), 2.0);
}

TEST(BuildGroupSwiping, WindowExcludesOldEvents) {
  dtmsv::twin::UserDigitalTwin a(0);
  dtmsv::twin::WatchObservation w;
  w.category = Category::kNews;
  w.watch_fraction = 0.9;
  a.record_watch(10.0, w);   // old
  w.watch_fraction = 0.2;
  a.record_watch(100.0, w);  // recent

  const auto dist = build_group_swiping({&a}, 110.0, 30.0);
  EXPECT_DOUBLE_EQ(dist.mass(Category::kNews), 1.0);
  EXPECT_LT(dist.expected_watch_fraction(Category::kNews), 0.4);
}

// --------------------------------------------------------------- Popularity

TEST(Popularity, ScoresAccumulateEngagement) {
  PopularityAnalyzer pop;
  pop.observe(7, 10.0);
  pop.observe(7, 5.0);
  pop.observe(9, 3.0);
  EXPECT_DOUBLE_EQ(pop.score(7), 15.0);
  EXPECT_DOUBLE_EQ(pop.score(9), 3.0);
  EXPECT_DOUBLE_EQ(pop.score(1000), 0.0);
}

TEST(Popularity, TopVideosOrdered) {
  PopularityAnalyzer pop;
  pop.observe(1, 5.0);
  pop.observe(2, 20.0);
  pop.observe(3, 10.0);
  const auto top = pop.top_videos(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 2u);
  EXPECT_EQ(top[1], 3u);
}

TEST(Popularity, TiesBrokenByIdForDeterminism) {
  PopularityAnalyzer pop;
  pop.observe(9, 5.0);
  pop.observe(3, 5.0);
  const auto top = pop.top_videos(2);
  EXPECT_EQ(top[0], 3u);
  EXPECT_EQ(top[1], 9u);
}

TEST(Popularity, DecayPrunesDeadEntries) {
  PopularityAnalyzer pop(0.1);
  pop.observe(5, 5e-6);
  pop.observe(6, 100.0);
  pop.decay();  // 5 → 5e-7 < 1e-6 threshold → pruned
  EXPECT_EQ(pop.tracked_count(), 1u);
  EXPECT_DOUBLE_EQ(pop.score(5), 0.0);
  EXPECT_NEAR(pop.score(6), 10.0, 1e-9);
}

TEST(Popularity, TopVideosInCategoryFilters) {
  Rng rng(3);
  dtmsv::video::CatalogConfig cfg;
  cfg.videos_per_category = 10;
  const auto catalog = dtmsv::video::Catalog::generate(cfg, rng);

  PopularityAnalyzer pop;
  const auto& news = catalog.category_videos(Category::kNews);
  const auto& game = catalog.category_videos(Category::kGame);
  pop.observe(news[0], 50.0);
  pop.observe(game[0], 100.0);

  const auto top_news = pop.top_videos_in_category(5, Category::kNews, catalog);
  ASSERT_EQ(top_news.size(), 1u);
  EXPECT_EQ(top_news[0], news[0]);
}

// -------------------------------------------------------------- Recommender

PreferenceVector news_heavy() {
  PreferenceVector p{};
  p[static_cast<std::size_t>(Category::kNews)] = 0.6;
  p[static_cast<std::size_t>(Category::kSports)] = 0.2;
  p[static_cast<std::size_t>(Category::kMusic)] = 0.2;
  return p;
}

TEST(Recommender, PlaylistSizeAndQuotas) {
  Rng rng(4);
  dtmsv::video::CatalogConfig ccfg;
  ccfg.videos_per_category = 50;
  const auto catalog = dtmsv::video::Catalog::generate(ccfg, rng);
  PopularityAnalyzer pop;
  RecommenderConfig rcfg;
  rcfg.playlist_size = 20;

  const Recommendation rec = recommend(catalog, pop, news_heavy(), rcfg);
  EXPECT_EQ(rec.playlist.size(), 20u);
  std::size_t total = 0;
  for (const std::size_t c : rec.per_category_counts) {
    total += c;
  }
  EXPECT_EQ(total, 20u);
  // News gets the largest quota (12 of 20).
  EXPECT_EQ(rec.per_category_counts[static_cast<std::size_t>(Category::kNews)], 12u);
  EXPECT_EQ(rec.per_category_counts[static_cast<std::size_t>(Category::kGame)], 0u);
}

TEST(Recommender, PlaylistRespectsCategories) {
  Rng rng(5);
  dtmsv::video::CatalogConfig ccfg;
  ccfg.videos_per_category = 30;
  const auto catalog = dtmsv::video::Catalog::generate(ccfg, rng);
  PopularityAnalyzer pop;
  RecommenderConfig rcfg;
  rcfg.playlist_size = 10;

  const Recommendation rec = recommend(catalog, pop, news_heavy(), rcfg);
  std::array<std::size_t, kCategoryCount> seen{};
  for (const std::uint64_t id : rec.playlist) {
    ++seen[static_cast<std::size_t>(catalog.video(id).category)];
  }
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    EXPECT_EQ(seen[c], rec.per_category_counts[c]);
  }
}

TEST(Recommender, ObservedPopularityLeadsPlaylist) {
  Rng rng(6);
  dtmsv::video::CatalogConfig ccfg;
  ccfg.videos_per_category = 30;
  const auto catalog = dtmsv::video::Catalog::generate(ccfg, rng);

  // Make an otherwise unpopular News video the most-watched.
  const auto& news_ids = catalog.category_videos(Category::kNews);
  const std::uint64_t hot = news_ids.back();  // worst catalog rank
  PopularityAnalyzer pop;
  pop.observe(hot, 1000.0);

  PreferenceVector pure_news{};
  pure_news[static_cast<std::size_t>(Category::kNews)] = 1.0;
  RecommenderConfig rcfg;
  rcfg.playlist_size = 10;
  const Recommendation rec = recommend(catalog, pop, pure_news, rcfg);
  ASSERT_FALSE(rec.playlist.empty());
  EXPECT_EQ(rec.playlist.front(), hot);
}

TEST(Recommender, NoDuplicateVideos) {
  Rng rng(7);
  dtmsv::video::CatalogConfig ccfg;
  ccfg.videos_per_category = 40;
  const auto catalog = dtmsv::video::Catalog::generate(ccfg, rng);
  PopularityAnalyzer pop;
  PreferenceVector uniform{};
  uniform.fill(1.0 / kCategoryCount);
  RecommenderConfig rcfg;
  rcfg.playlist_size = 36;
  const Recommendation rec = recommend(catalog, pop, uniform, rcfg);
  std::set<std::uint64_t> unique(rec.playlist.begin(), rec.playlist.end());
  EXPECT_EQ(unique.size(), rec.playlist.size());
}

TEST(AggregateGroupPreference, EvidenceWeighted) {
  dtmsv::twin::UserDigitalTwin heavy(0);
  dtmsv::twin::UserDigitalTwin light(1);
  dtmsv::twin::WatchObservation w;
  w.category = Category::kNews;
  w.watch_seconds = 1000.0;
  heavy.record_watch(1.0, w);
  heavy.record_preference(2.0, heavy.preference_estimator().estimate());

  w.category = Category::kGame;
  w.watch_seconds = 10.0;
  light.record_watch(1.0, w);
  light.record_preference(2.0, light.preference_estimator().estimate());

  const PreferenceVector pref = aggregate_group_preference({&heavy, &light});
  // Heavy user's News taste dominates the group profile.
  EXPECT_GT(pref[static_cast<std::size_t>(Category::kNews)], 0.8);
}

TEST(AggregateGroupPreference, EmptyGroupUniform) {
  const PreferenceVector pref = aggregate_group_preference({});
  for (const double p : pref) {
    EXPECT_DOUBLE_EQ(p, 1.0 / kCategoryCount);
  }
}

}  // namespace
