// Parameterized sweeps over the radio substrate: analytic path-loss grid,
// per-entry CQI table verification against 3GPP efficiencies, noise-floor
// arithmetic across bandwidths, and multicast resource-block accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "wireless/channel.hpp"
#include "wireless/cqi.hpp"
#include "wireless/multicast.hpp"
#include "wireless/pathloss.hpp"

namespace {

using namespace dtmsv::wireless;
using dtmsv::util::Rng;

// --------------------------------------------- path loss analytic grid

struct PathLossCase {
  double distance_m;
  double exponent;
};

class PathLossGrid : public ::testing::TestWithParam<PathLossCase> {};

TEST_P(PathLossGrid, MatchesClosedForm) {
  const auto c = GetParam();
  PathLossModel model;
  model.pl_ref_db = 38.0;
  model.reference_m = 1.0;
  model.exponent = c.exponent;
  const double expected = 38.0 + 10.0 * c.exponent * std::log10(c.distance_m);
  EXPECT_NEAR(model.loss_db(c.distance_m), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PathLossGrid,
    ::testing::Values(PathLossCase{10.0, 2.0}, PathLossCase{10.0, 3.5},
                      PathLossCase{100.0, 2.0}, PathLossCase{100.0, 3.2},
                      PathLossCase{550.0, 3.2}, PathLossCase{1000.0, 4.0}));

// --------------------------------------------- CQI table per entry

struct CqiEntryCase {
  std::size_t cqi;
  double efficiency;  // 3GPP 36.213 Table 7.2.3-1
};

class CqiEntrySweep : public ::testing::TestWithParam<CqiEntryCase> {};

TEST_P(CqiEntrySweep, EfficiencyMatches3gppTable) {
  const auto c = GetParam();
  CqiTable table;
  EXPECT_NEAR(table.entry(c.cqi).efficiency, c.efficiency, 1e-4);
  // Evaluating exactly at the threshold returns at least this CQI.
  const double snr = table.entry(c.cqi).min_snr_db;
  EXPECT_GE(table.cqi_for_snr(snr), c.cqi);
}

INSTANTIATE_TEST_SUITE_P(Entries, CqiEntrySweep,
                         ::testing::Values(CqiEntryCase{1, 0.1523},
                                           CqiEntryCase{4, 0.6016},
                                           CqiEntryCase{7, 1.4766},
                                           CqiEntryCase{10, 2.7305},
                                           CqiEntryCase{13, 4.5234},
                                           CqiEntryCase{15, 5.5547}));

// --------------------------------------------- noise floor sweep

class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, ScalesWithLogBandwidth) {
  const double bw = GetParam();
  const double nf = 7.0;
  EXPECT_NEAR(noise_power_dbm(bw, nf), -174.0 + 10.0 * std::log10(bw) + nf, 1e-9);
  // Doubling the bandwidth adds exactly 3.0103 dB.
  EXPECT_NEAR(noise_power_dbm(2.0 * bw, nf) - noise_power_dbm(bw, nf),
              10.0 * std::log10(2.0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, NoiseSweep,
                         ::testing::Values(180e3, 1.4e6, 5e6, 10e6, 20e6));

// --------------------------------------------- RB accounting sweep

struct RbCase {
  double bitrate_kbps;
  double efficiency;
};

class ResourceBlockSweep : public ::testing::TestWithParam<RbCase> {};

TEST_P(ResourceBlockSweep, CeilingAndConsistency) {
  const auto c = GetParam();
  MulticastPhy phy;
  const double hz = phy.required_bandwidth_hz(c.bitrate_kbps, c.efficiency);
  const std::size_t rbs = phy.required_resource_blocks(c.bitrate_kbps, c.efficiency);
  EXPECT_NEAR(hz, c.bitrate_kbps * 1e3 / c.efficiency, 1e-6 * hz);
  // RB count is the exact ceiling.
  EXPECT_EQ(rbs, static_cast<std::size_t>(std::ceil(hz / kResourceBlockHz)));
  // RBs always cover the requirement, never by more than one block.
  EXPECT_GE(static_cast<double>(rbs) * kResourceBlockHz, hz - 1e-6);
  EXPECT_LT(static_cast<double>(rbs) * kResourceBlockHz, hz + kResourceBlockHz);
}

INSTANTIATE_TEST_SUITE_P(Cases, ResourceBlockSweep,
                         ::testing::Values(RbCase{750.0, 0.5}, RbCase{1200.0, 1.0},
                                           RbCase{1850.0, 2.4}, RbCase{2850.0, 3.3},
                                           RbCase{4300.0, 5.55},
                                           RbCase{180.0, 1.0}));

// --------------------------------------------- end-to-end SNR plausibility

struct SnrCase {
  double distance_m;
  double min_snr_db;
  double max_snr_db;
};

class SnrPlausibility : public ::testing::TestWithParam<SnrCase> {};

TEST_P(SnrPlausibility, MedianSnrInPlausibleBand) {
  // Deterministic large-scale check: no shadowing, frozen fading; the SNR
  // at a given distance must sit in the engineering-plausible band for a
  // 43 dBm macro cell.
  const auto c = GetParam();
  const auto map = dtmsv::mobility::CampusMap::grid(40, 2, 100.0);
  RadioConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  cfg.doppler_hz = 0.0;
  Rng rng(13);
  ChannelModel channel(map, cfg, 1, rng);
  const auto bs = map.base_stations()[0];
  // Average the frozen fading out by sampling several independent channels.
  double total = 0.0;
  const int trials = 32;
  for (int i = 0; i < trials; ++i) {
    Rng trial_rng(static_cast<std::uint64_t>(i) + 100);
    ChannelModel trial(map, cfg, 1, trial_rng);
    trial.step({{bs.x + c.distance_m, bs.y}});
    total += trial.sample_of(0).snr_db;
  }
  const double mean_snr = total / trials;
  EXPECT_GE(mean_snr, c.min_snr_db) << "at " << c.distance_m << " m";
  EXPECT_LE(mean_snr, c.max_snr_db) << "at " << c.distance_m << " m";
}

INSTANTIATE_TEST_SUITE_P(Distances, SnrPlausibility,
                         ::testing::Values(SnrCase{30.0, 25.0, 75.0},
                                           SnrCase{150.0, 10.0, 55.0},
                                           SnrCase{600.0, -10.0, 35.0}));

}  // namespace
