// Tests for core::SimulationFleet: user sharding, aggregate consistency
// against per-shard reports, thread-count bit-identity of the fleet report,
// flash-crowd surge shards, and inter-cell handover churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "core/fleet.hpp"
#include "twin/column_store.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace {

using namespace dtmsv;
using core::FleetConfig;
using core::FleetReport;
using core::SimulationFleet;

/// Reduced fleet so the suite stays fast.
FleetConfig fast_fleet(std::size_t users = 48, std::size_t cells = 3,
                       std::uint64_t seed = 42) {
  FleetConfig cfg;
  cfg.cell_count = cells;
  cfg.total_users = users;
  cfg.seed = seed;
  core::SchemeConfig& base = cfg.base;
  base.interval_s = 30.0;
  base.tick_s = 1.0;
  base.warmup_intervals = 1;
  base.feature_window_s = 60.0;
  base.feature_timesteps = 16;
  base.session.engagement.catalog.videos_per_category = 30;
  base.compressor.epochs_per_fit = 1;
  base.grouping.k_min = 2;
  base.grouping.k_max = 4;
  base.grouping.ddqn.hidden = {16};
  base.grouping.kmeans.restarts = 2;
  base.demand.interval_s = base.interval_s;
  base.recommender.playlist_size = 16;
  return cfg;
}

TEST(SimulationFleet, ShardsUsersNearEvenly) {
  SimulationFleet fleet(fast_fleet(10, 3));
  ASSERT_EQ(fleet.shard_count(), 3u);
  EXPECT_EQ(fleet.shard(0).config().user_count, 4u);
  EXPECT_EQ(fleet.shard(1).config().user_count, 3u);
  EXPECT_EQ(fleet.shard(2).config().user_count, 3u);
  EXPECT_EQ(fleet.user_count(), 10u);
  for (std::size_t s = 0; s < fleet.shard_count(); ++s) {
    EXPECT_EQ(fleet.shard_cell(s), s);
  }
}

TEST(SimulationFleet, ShardSeedsDiffer) {
  SimulationFleet fleet(fast_fleet(30, 3));
  EXPECT_NE(fleet.shard(0).config().seed, fleet.shard(1).config().seed);
  EXPECT_NE(fleet.shard(1).config().seed, fleet.shard(2).config().seed);
}

TEST(SimulationFleet, AggregatesMatchShardReports) {
  SimulationFleet fleet(fast_fleet());
  const std::vector<FleetReport> reports = fleet.run(3);
  for (const FleetReport& r : reports) {
    ASSERT_EQ(r.shards.size(), fleet.shard_count());
    double pred = 0.0;
    double act = 0.0;
    std::size_t grouped = 0;
    for (const auto& shard : r.shards) {
      pred += shard.predicted_radio_hz_total;
      act += shard.actual_radio_hz_total;
      if (shard.grouped) {
        ++grouped;
      }
    }
    EXPECT_DOUBLE_EQ(r.predicted_radio_hz_total, pred);
    EXPECT_DOUBLE_EQ(r.actual_radio_hz_total, act);
    EXPECT_EQ(r.grouped_shards, grouped);
    EXPECT_EQ(r.user_count, fleet.config().total_users);
  }
  // After warm-up every shard has predictions and the error distribution
  // covers all of them.
  const FleetReport& last = reports.back();
  EXPECT_EQ(last.grouped_shards, fleet.shard_count());
  EXPECT_EQ(last.shard_radio_error.count(), fleet.shard_count());
  EXPECT_GT(last.group_radio_error.count(), 0u);
  EXPECT_GT(last.actual_radio_hz_total, 0.0);
  if (last.actual_radio_hz_total > 0.0) {
    const double err =
        std::abs(last.predicted_radio_hz_total - last.actual_radio_hz_total) /
        last.actual_radio_hz_total;
    EXPECT_NEAR(last.radio_error, err, 1e-12);
  }
}

/// The scale-out acceptance criterion: the fleet report is bit-identical
/// for any thread-pool size (same seed -> same aggregate report).
TEST(SimulationFleet, BitIdenticalAcrossThreadCounts) {
  std::vector<std::vector<FleetReport>> runs;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    util::set_thread_count(threads);
    SimulationFleet fleet(fast_fleet(36, 3, 7));
    runs.push_back(fleet.run(3));
  }
  util::set_thread_count(0);  // restore env/hardware default

  const auto& ref = runs.front();
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const FleetReport& a = ref[i];
      const FleetReport& b = runs[run][i];
      EXPECT_DOUBLE_EQ(a.predicted_radio_hz_total, b.predicted_radio_hz_total);
      EXPECT_DOUBLE_EQ(a.actual_radio_hz_total, b.actual_radio_hz_total);
      EXPECT_DOUBLE_EQ(a.predicted_compute_total, b.predicted_compute_total);
      EXPECT_DOUBLE_EQ(a.actual_compute_total, b.actual_compute_total);
      EXPECT_DOUBLE_EQ(a.radio_error, b.radio_error);
      ASSERT_EQ(a.shards.size(), b.shards.size());
      for (std::size_t s = 0; s < a.shards.size(); ++s) {
        EXPECT_EQ(a.shards[s].k, b.shards[s].k);
        EXPECT_DOUBLE_EQ(a.shards[s].silhouette, b.shards[s].silhouette);
        EXPECT_DOUBLE_EQ(a.shards[s].actual_radio_hz_total,
                         b.shards[s].actual_radio_hz_total);
        EXPECT_DOUBLE_EQ(a.shards[s].predicted_radio_hz_total,
                         b.shards[s].predicted_radio_hz_total);
      }
      if (!a.shard_radio_error.empty()) {
        EXPECT_DOUBLE_EQ(a.shard_radio_error.mean(), b.shard_radio_error.mean());
        EXPECT_DOUBLE_EQ(a.group_radio_error.mean(), b.group_radio_error.mean());
      }
    }
  }
}

TEST(SimulationFleet, SurgeShardJoinsItsCell) {
  SimulationFleet fleet(fast_fleet(30, 3));
  fleet.run(2);
  const std::size_t before = fleet.user_count();
  fleet.add_surge_shard(/*cell=*/1, /*users=*/15);
  EXPECT_EQ(fleet.shard_count(), 4u);
  EXPECT_EQ(fleet.shard_cell(3), 1u);
  EXPECT_EQ(fleet.user_count(), before + 15);

  // The surge shard starts cold: it warms up while the veterans keep
  // predicting, then joins the grouped population.
  const FleetReport first = fleet.run_interval();
  EXPECT_FALSE(first.shards.back().grouped);
  EXPECT_EQ(first.grouped_shards, 3u);
  EXPECT_EQ(first.user_count, before + 15);
  const FleetReport second = fleet.run_interval();
  EXPECT_TRUE(second.shards.back().grouped);
  EXPECT_EQ(second.grouped_shards, 4u);
}

TEST(SimulationFleet, ChurnSwapsAffinitiesAndResetsTwins) {
  SimulationFleet fleet(fast_fleet(24, 2, 11));
  fleet.run(2);  // build twin history first

  // Collect the multiset of affinity vectors before the handovers.
  std::vector<double> before;
  for (std::size_t s = 0; s < fleet.shard_count(); ++s) {
    for (const auto& aff : fleet.shard(s).true_affinities()) {
      before.insert(before.end(), aff.begin(), aff.end());
    }
  }

  const std::size_t handed = fleet.churn(0.5);
  EXPECT_GT(handed, 0u);
  EXPECT_EQ(handed % 2, 0u);  // handovers are pairwise swaps
  EXPECT_EQ(fleet.user_count(), 24u);

  // Handover permutes users across cells but conserves the population:
  // the sorted concatenation of all affinity components is unchanged.
  std::vector<double> after;
  std::size_t reset_twins = 0;
  for (std::size_t s = 0; s < fleet.shard_count(); ++s) {
    const auto& sim = fleet.shard(s);
    for (const auto& aff : sim.true_affinities()) {
      after.insert(after.end(), aff.begin(), aff.end());
    }
    for (std::size_t u = 0; u < sim.config().user_count; ++u) {
      if (sim.twins().twin(u).channel().empty()) {
        ++reset_twins;  // newcomer: twin history wiped by the handover
      }
    }
  }
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(before[i], after[i]);
  }
  EXPECT_GT(reset_twins, 0u);
  EXPECT_LE(reset_twins, handed);  // a slot can be handed over twice
}

TEST(SimulationFleet, ChurnRecyclingNeverLeaksHistoryIntoSnapshots) {
  // A mobility_churn handover recycles the twin slot in place (columnar
  // ring reset + dirty-watermark bump). The next incremental snapshot of
  // each shard must refresh exactly the recycled slots — to all-zero
  // windows — and serve every untouched user from the cached rows,
  // bit-identically.
  SimulationFleet fleet(fast_fleet(24, 2, 11));
  fleet.run(2);  // build twin history first

  const dtmsv::twin::FeatureScaling scaling{1200.0, 1000.0, 10.0, 40.0};
  std::vector<dtmsv::twin::FeatureArena> arenas(fleet.shard_count());
  std::vector<std::vector<float>> before(fleet.shard_count());
  for (std::size_t s = 0; s < fleet.shard_count(); ++s) {
    const dtmsv::twin::WindowSpec spec{fleet.shard(s).now(), 60.0, 16, scaling};
    const auto batch =
        fleet.shard(s).twins().columns().feature_windows(spec, arenas[s]);
    before[s].assign(batch.data(),
                     batch.data() + batch.size() * batch.window_size());
  }

  core::CollectingSink sink;
  const std::size_t handed = fleet.churn(0.5, &sink);
  ASSERT_GT(handed, 0u);
  ASSERT_EQ(sink.handovers.size() * 2, handed);

  std::vector<std::set<std::size_t>> recycled(fleet.shard_count());
  for (const core::HandoverEvent& ev : sink.handovers) {
    recycled[ev.shard_a].insert(ev.slot_a);
    recycled[ev.shard_b].insert(ev.slot_b);
  }
  for (std::size_t s = 0; s < fleet.shard_count(); ++s) {
    const auto& sim = fleet.shard(s);
    const dtmsv::twin::WindowSpec spec{sim.now(), 60.0, 16, scaling};
    const auto batch = sim.twins().columns().feature_windows(spec, arenas[s]);
    // Exactly the recycled slots were dirty.
    EXPECT_EQ(arenas[s].window_stats().refreshed, recycled[s].size());
    for (std::size_t u = 0; u < batch.size(); ++u) {
      const auto row = batch.row(u);
      if (recycled[s].count(u) > 0) {
        for (const float v : row) {
          EXPECT_EQ(v, 0.0f) << "shard " << s << " slot " << u
                             << " leaked history through a handover";
        }
        EXPECT_TRUE(sim.twins().twin(u).channel().empty());
      } else {
        for (std::size_t i = 0; i < row.size(); ++i) {
          EXPECT_EQ(row[i], before[s][u * batch.window_size() + i]);
        }
      }
    }
  }
}

TEST(SimulationFleet, ChurnIsStrictlyInterCell) {
  // A surge shard shares its cell with the base shard it joined: churn
  // must never pair them (a same-cell "handover" would wipe twin state
  // for users that never left the cell). With one cell there is nowhere
  // to hand over to at all, surge shards or not.
  SimulationFleet fleet(fast_fleet(12, 1, 17));
  fleet.add_surge_shard(0, 6);
  ASSERT_EQ(fleet.shard_count(), 2u);
  EXPECT_EQ(fleet.churn(1.0), 0u);
}

TEST(SimulationFleet, ChurnDeterministicPerSeed) {
  const auto run_churned = [] {
    SimulationFleet fleet(fast_fleet(24, 3, 13));
    std::vector<FleetReport> reports;
    for (int i = 0; i < 3; ++i) {
      if (i > 0) {
        fleet.churn(0.2);
      }
      reports.push_back(fleet.run_interval());
    }
    return reports;
  };
  const auto a = run_churned();
  const auto b = run_churned();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].actual_radio_hz_total, b[i].actual_radio_hz_total);
    EXPECT_DOUBLE_EQ(a[i].predicted_radio_hz_total, b[i].predicted_radio_hz_total);
  }
}

TEST(SimulationFleet, InvalidConfigRejected) {
  FleetConfig cfg = fast_fleet();
  cfg.cell_count = 0;
  EXPECT_THROW(SimulationFleet{cfg}, util::PreconditionError);
  cfg = fast_fleet();
  cfg.total_users = cfg.cell_count - 1;
  EXPECT_THROW(SimulationFleet{cfg}, util::PreconditionError);
}

}  // namespace
