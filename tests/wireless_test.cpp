// Unit tests for dtmsv::wireless — path-loss analytics, shadowing/fading
// statistics, CQI table monotonicity, channel-model behaviour with distance,
// and multicast PHY accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "mobility/campus_map.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "wireless/channel.hpp"
#include "wireless/cqi.hpp"
#include "wireless/fading.hpp"
#include "wireless/multicast.hpp"
#include "wireless/pathloss.hpp"

namespace {

using namespace dtmsv::wireless;
using dtmsv::util::PreconditionError;
using dtmsv::util::Rng;
using dtmsv::util::RunningStats;

// ---------------------------------------------------------------- path loss

TEST(PathLoss, ReferenceValue) {
  PathLossModel model;
  EXPECT_DOUBLE_EQ(model.loss_db(model.reference_m), model.pl_ref_db);
}

TEST(PathLoss, TenXDistanceAddsTenNdB) {
  PathLossModel model;
  const double at_10 = model.loss_db(10.0);
  const double at_100 = model.loss_db(100.0);
  EXPECT_NEAR(at_100 - at_10, 10.0 * model.exponent, 1e-9);
}

TEST(PathLoss, ClampsBelowReference) {
  PathLossModel model;
  EXPECT_DOUBLE_EQ(model.loss_db(0.1), model.pl_ref_db);
  EXPECT_DOUBLE_EQ(model.loss_db(0.0), model.pl_ref_db);
}

TEST(PathLoss, MonotoneInDistance) {
  PathLossModel model;
  double prev = model.loss_db(1.0);
  for (double d = 2.0; d < 1000.0; d *= 1.5) {
    const double loss = model.loss_db(d);
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

TEST(PathLoss, NegativeDistanceRejected) {
  PathLossModel model;
  EXPECT_THROW(model.loss_db(-1.0), PreconditionError);
}

// ---------------------------------------------------------------- shadowing

TEST(Shadowing, StationaryVariance) {
  ShadowingProcess proc(6.0, 50.0, Rng(1));
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(proc.step(5.0));
  }
  // Samples are strongly autocorrelated (rho ≈ 0.9), so the effective
  // sample count is ~1000 → generous mean tolerance.
  EXPECT_NEAR(stats.mean(), 0.0, 0.6);
  EXPECT_NEAR(stats.stddev(), 6.0, 0.5);
}

TEST(Shadowing, ZeroMovementFreezesValue) {
  ShadowingProcess proc(6.0, 50.0, Rng(2));
  const double v0 = proc.current_db();
  const double v1 = proc.step(0.0);
  // rho = exp(0) = 1: no innovation.
  EXPECT_DOUBLE_EQ(v0, v1);
}

TEST(Shadowing, LargeMovementDecorrelates) {
  // Correlation between consecutive values for tiny steps >> for huge steps.
  const auto correlation_for_step = [](double step_m) {
    ShadowingProcess proc(6.0, 50.0, Rng(3));
    std::vector<double> xs;
    std::vector<double> ys;
    double prev = proc.current_db();
    for (int i = 0; i < 5000; ++i) {
      const double next = proc.step(step_m);
      xs.push_back(prev);
      ys.push_back(next);
      prev = next;
    }
    return dtmsv::util::pearson(xs, ys);
  };
  EXPECT_GT(correlation_for_step(1.0), 0.9);
  EXPECT_LT(correlation_for_step(500.0), 0.1);
}

// ------------------------------------------------------------------- fading

TEST(Fading, UnitMeanPower) {
  RayleighFading fading(10.0, 1.0, Rng(4));
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(fading.step());
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.05);
}

TEST(Fading, PowerNonNegative) {
  RayleighFading fading(10.0, 1.0, Rng(5));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(fading.step(), 0.0);
  }
}

TEST(Fading, ExponentialPowerDistribution) {
  // |h|² ~ Exp(1): P(X > 1) = e^-1 ≈ 0.3679.
  RayleighFading fading(100.0, 1.0, Rng(6));  // fast fading → near-iid samples
  int above = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (fading.step() > 1.0) {
      ++above;
    }
  }
  EXPECT_NEAR(above / static_cast<double>(n), std::exp(-1.0), 0.02);
}

TEST(Fading, DbConversionConsistent) {
  RayleighFading fading(10.0, 1.0, Rng(7));
  fading.step();
  EXPECT_NEAR(fading.current_db(),
              10.0 * std::log10(fading.current_power()), 1e-9);
}

// ---------------------------------------------------------------------- CQI

TEST(Cqi, FifteenLevels) {
  CqiTable table;
  EXPECT_EQ(table.level_count(), 15u);
}

TEST(Cqi, OutOfRangeGivesZero) {
  CqiTable table;
  EXPECT_EQ(table.cqi_for_snr(-30.0), 0u);
  EXPECT_DOUBLE_EQ(table.efficiency(-30.0), 0.0);
}

TEST(Cqi, HighSnrGivesTopLevel) {
  CqiTable table;
  EXPECT_EQ(table.cqi_for_snr(40.0), 15u);
  EXPECT_NEAR(table.efficiency(40.0), 5.5547, 1e-4);
}

TEST(Cqi, EfficiencyMonotoneInSnr) {
  CqiTable table;
  double prev = -1.0;
  for (double snr = -10.0; snr <= 30.0; snr += 0.5) {
    const double eff = table.efficiency(snr);
    EXPECT_GE(eff, prev);
    prev = eff;
  }
}

TEST(Cqi, ThresholdBoundaries) {
  CqiTable table;
  // Just below CQI-1 threshold: nothing; just above: CQI 1.
  EXPECT_EQ(table.cqi_for_snr(-6.71), 0u);
  EXPECT_EQ(table.cqi_for_snr(-6.69), 1u);
  EXPECT_NEAR(table.entry(1).efficiency, 0.1523, 1e-4);
}

TEST(Cqi, EntryRangeChecked) {
  CqiTable table;
  EXPECT_THROW(table.entry(0), PreconditionError);
  EXPECT_THROW(table.entry(16), PreconditionError);
}

TEST(TruncatedShannon, CapsAtMax) {
  EXPECT_NEAR(truncated_shannon(100.0), 5.55, 0.01);
  EXPECT_NEAR(truncated_shannon(0.0, 0.75, 5.55), 0.75 * std::log2(2.0), 1e-9);
  EXPECT_LT(truncated_shannon(-10.0), 0.2);
}

TEST(DbLinear, RoundTrip) {
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_linear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(linear_to_db(100.0), 20.0, 1e-12);
  EXPECT_NEAR(linear_to_db(db_to_linear(-7.3)), -7.3, 1e-9);
}

TEST(Noise, ThermalFloor) {
  // -174 dBm/Hz + 10log10(20 MHz) + 7 dB ≈ -94 dBm.
  EXPECT_NEAR(noise_power_dbm(20e6, 7.0), -93.99, 0.05);
}

// ------------------------------------------------------------ channel model

RadioConfig quiet_radio() {
  RadioConfig cfg;
  cfg.shadowing_sigma_db = 0.0;  // deterministic large-scale for assertions
  cfg.doppler_hz = 0.0;          // frozen fading
  return cfg;
}

TEST(ChannelModel, SnrDecreasesWithDistance) {
  const auto map = dtmsv::mobility::CampusMap::grid(10, 2, 100.0);
  // grid() puts one BS at the centre.
  Rng rng(8);
  ChannelModel channel(map, quiet_radio(), 2, rng);
  const dtmsv::mobility::Position bs = map.base_stations()[0];
  channel.step({{bs.x + 10.0, bs.y}, {bs.x + 400.0, bs.y}});
  EXPECT_GT(channel.sample_of(0).snr_db, channel.sample_of(1).snr_db);
}

TEST(ChannelModel, AttachesToNearestBsWithoutShadowing) {
  const auto map = dtmsv::mobility::CampusMap::waterloo_campus();
  Rng rng(9);
  ChannelModel channel(map, quiet_radio(), 1, rng);
  const auto& sites = map.base_stations();
  // Stand right next to BS 2.
  channel.step({{sites[2].x + 5.0, sites[2].y}});
  EXPECT_EQ(channel.sample_of(0).serving_bs, 2u);
}

TEST(ChannelModel, EfficiencyConsistentWithCqi) {
  const auto map = dtmsv::mobility::CampusMap::waterloo_campus();
  Rng rng(10);
  RadioConfig cfg = quiet_radio();
  cfg.use_cqi_table = true;
  ChannelModel channel(map, cfg, 1, rng);
  channel.step({{600.0, 500.0}});
  const auto& s = channel.sample_of(0);
  CqiTable table;
  EXPECT_DOUBLE_EQ(s.efficiency_bps_hz, table.efficiency(s.snr_db));
}

TEST(ChannelModel, SampleBeforeStepRejected) {
  const auto map = dtmsv::mobility::CampusMap::waterloo_campus();
  Rng rng(11);
  ChannelModel channel(map, quiet_radio(), 1, rng);
  EXPECT_THROW(channel.sample_of(0), PreconditionError);
}

TEST(ChannelModel, PositionCountMismatchRejected) {
  const auto map = dtmsv::mobility::CampusMap::waterloo_campus();
  Rng rng(12);
  ChannelModel channel(map, quiet_radio(), 2, rng);
  std::vector<dtmsv::mobility::Position> wrong = {{0.0, 0.0}};
  EXPECT_THROW(channel.step(wrong), PreconditionError);
}

TEST(ChannelModel, FadingVariesOverTime) {
  const auto map = dtmsv::mobility::CampusMap::waterloo_campus();
  Rng rng(13);
  RadioConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  cfg.doppler_hz = 10.0;
  ChannelModel channel(map, cfg, 1, rng);
  const std::vector<dtmsv::mobility::Position> pos = {{600.0, 500.0}};
  RunningStats snr;
  for (int i = 0; i < 200; ++i) {
    channel.step(pos);
    snr.add(channel.sample_of(0).snr_db);
  }
  EXPECT_GT(snr.stddev(), 0.5) << "fading should move the SNR";
}

// ---------------------------------------------------------------- multicast

TEST(MulticastPhy, GroupEfficiencyIsWorstMember) {
  MulticastPhy phy;
  const std::vector<double> effs = {2.0, 0.5, 3.0};
  EXPECT_DOUBLE_EQ(phy.group_efficiency(effs), 0.5);
}

TEST(MulticastPhy, FloorGuardsOutage) {
  MulticastPhy phy(0.1);
  const std::vector<double> effs = {2.0, 0.0};
  EXPECT_DOUBLE_EQ(phy.group_efficiency(effs), 0.1);
}

TEST(MulticastPhy, EmptyGroupRejected) {
  MulticastPhy phy;
  EXPECT_THROW(phy.group_efficiency({}), PreconditionError);
}

TEST(MulticastPhy, BandwidthFormula) {
  MulticastPhy phy;
  // 2 Mbps at 2 b/s/Hz → 1 MHz.
  EXPECT_DOUBLE_EQ(phy.required_bandwidth_hz(2000.0, 2.0), 1e6);
}

TEST(MulticastPhy, ResourceBlockCeiling) {
  MulticastPhy phy;
  // 1 MHz / 180 kHz = 5.55… → 6 RBs.
  EXPECT_EQ(phy.required_resource_blocks(2000.0, 2.0), 6u);
  // Exactly one RB.
  EXPECT_EQ(phy.required_resource_blocks(180.0, 1.0), 1u);
}

TEST(MulticastPhy, SustainableRungSelection) {
  MulticastPhy phy;
  const std::vector<double> ladder = {750.0, 1200.0, 1850.0, 2850.0, 4300.0};
  // 2 b/s/Hz on 1 MHz → 2000 kbps budget → rung 2 (1850).
  EXPECT_EQ(phy.sustainable_rung(ladder, 2.0, 1e6), 2u);
  // Tiny budget → lowest rung.
  EXPECT_EQ(phy.sustainable_rung(ladder, 0.1, 1e5), 0u);
  // Huge budget → top rung.
  EXPECT_EQ(phy.sustainable_rung(ladder, 5.0, 10e6), 4u);
}

// -------------------------------------------- parameterized CQI properties

class CqiSweep : public ::testing::TestWithParam<double> {};

TEST_P(CqiSweep, EfficiencyBelowShannonBound) {
  const double snr_db = GetParam();
  CqiTable table;
  const double eff = table.efficiency(snr_db);
  // Real MCS efficiency can never exceed the Shannon capacity.
  const double shannon = std::log2(1.0 + db_to_linear(snr_db));
  EXPECT_LE(eff, shannon + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SnrGrid, CqiSweep,
                         ::testing::Values(-6.0, -3.0, 0.0, 3.0, 6.0, 9.0, 12.0,
                                           15.0, 18.0, 21.0, 24.0));

}  // namespace
