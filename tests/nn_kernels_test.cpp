// Tests for the tiled/parallel matmul kernels against untiled references.
//
// The kernels promise bit-identical results to the canonical triple loop
// (per-output-element accumulation through nn::fused_madd in ascending
// inner-dimension order), for any matrix shape and any thread count —
// tiling and row-block parallelism must never change what is computed,
// only how fast. The references below accumulate through the same
// fused_madd primitive so compiler FP-contraction choices cannot make
// the two sides disagree.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "nn/tensor.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using dtmsv::nn::Tensor;
using dtmsv::util::Rng;

Tensor random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Tensor t({rows, cols});
  for (float& v : t.data()) {
    v = static_cast<float>(rng.uniform(-2.0, 2.0));
  }
  return t;
}

/// Canonical (m×k)·(k×n): ascending-kk accumulation per output element.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc = dtmsv::nn::fused_madd(a.at2(i, kk), b.at2(kk, j), acc);
      }
      out.at2(i, j) = acc;
    }
  }
  return out;
}

Tensor naive_matmul_bt(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc = dtmsv::nn::fused_madd(a.at2(i, kk), b.at2(j, kk), acc);
      }
      out.at2(i, j) = acc;
    }
  }
  return out;
}

Tensor naive_matmul_at(const Tensor& a, const Tensor& b) {
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc = dtmsv::nn::fused_madd(a.at2(kk, i), b.at2(kk, j), acc);
      }
      out.at2(i, j) = acc;
    }
  }
  return out;
}

void expect_bit_identical(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.shape(), want.shape());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "element " << i << " diverges";
  }
}

// Shapes chosen to exercise every tiling edge: smaller than one tile,
// exact tile multiples, one-past-a-tile remainders, and skinny matrices
// in each dimension.
struct Shape3 {
  std::size_t m, k, n;
};

const Shape3 kShapes[] = {
    {1, 1, 1},  {3, 5, 2},   {7, 1, 9},   {32, 64, 128}, {33, 65, 129},
    {31, 63, 127}, {64, 64, 64}, {5, 200, 3}, {130, 70, 40}, {1, 300, 1},
};

TEST(MatmulKernels, MatchesNaiveReference) {
  Rng rng(1);
  for (const auto& s : kShapes) {
    const Tensor a = random_matrix(s.m, s.k, rng);
    const Tensor b = random_matrix(s.k, s.n, rng);
    expect_bit_identical(Tensor::matmul(a, b), naive_matmul(a, b));
  }
}

TEST(MatmulKernels, BtMatchesNaiveReference) {
  Rng rng(2);
  for (const auto& s : kShapes) {
    const Tensor a = random_matrix(s.m, s.k, rng);
    const Tensor b = random_matrix(s.n, s.k, rng);
    expect_bit_identical(Tensor::matmul_bt(a, b), naive_matmul_bt(a, b));
  }
}

TEST(MatmulKernels, AtMatchesNaiveReference) {
  Rng rng(3);
  for (const auto& s : kShapes) {
    const Tensor a = random_matrix(s.k, s.m, rng);
    const Tensor b = random_matrix(s.k, s.n, rng);
    expect_bit_identical(Tensor::matmul_at(a, b), naive_matmul_at(a, b));
  }
}

TEST(MatmulKernels, ThreadCountDoesNotChangeResults) {
  Rng rng(4);
  // Big enough to clear the parallel dispatch threshold.
  const Tensor a = random_matrix(97, 150, rng);
  const Tensor b = random_matrix(150, 83, rng);
  const Tensor bt = random_matrix(83, 150, rng);

  dtmsv::util::set_thread_count(1);
  const Tensor serial = Tensor::matmul(a, b);
  const Tensor serial_bt = Tensor::matmul_bt(a, bt);
  const Tensor serial_at = Tensor::matmul_at(b, b);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    dtmsv::util::set_thread_count(threads);
    expect_bit_identical(Tensor::matmul(a, b), serial);
    expect_bit_identical(Tensor::matmul_bt(a, bt), serial_bt);
    expect_bit_identical(Tensor::matmul_at(b, b), serial_at);
  }
  dtmsv::util::set_thread_count(0);
}

TEST(MatmulKernels, ShapePreconditionsStillEnforced) {
  Rng rng(5);
  const Tensor a = random_matrix(4, 5, rng);
  const Tensor b = random_matrix(4, 5, rng);
  EXPECT_THROW(Tensor::matmul(a, b), dtmsv::util::PreconditionError);
  const Tensor c = random_matrix(6, 4, rng);
  EXPECT_THROW(Tensor::matmul_bt(a, c), dtmsv::util::PreconditionError);
  EXPECT_THROW(Tensor::matmul_at(a, c), dtmsv::util::PreconditionError);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 5u}) {
    dtmsv::util::set_thread_count(threads);
    std::vector<std::atomic<int>> hits(1000);
    dtmsv::util::parallel_for(0, hits.size(), 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        hits[i].fetch_add(1);
      }
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
    }
  }
  dtmsv::util::set_thread_count(0);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  dtmsv::util::set_thread_count(4);
  int calls = 0;
  dtmsv::util::parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Below min_grain the loop runs inline as one chunk.
  dtmsv::util::parallel_for(0, 3, 100, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 3u);
  });
  EXPECT_EQ(calls, 1);
  dtmsv::util::set_thread_count(0);
}

}  // namespace
