// Tests for the tiled/parallel matmul kernels against untiled references.
//
// The kernels promise bit-identical results to the canonical triple loop
// (per-output-element accumulation through nn::fused_madd in ascending
// inner-dimension order), for any matrix shape and any thread count —
// tiling and row-block parallelism must never change what is computed,
// only how fast. The references below accumulate through the same
// fused_madd primitive so compiler FP-contraction choices cannot make
// the two sides disagree.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "nn/kernels.hpp"
#include "nn/tensor.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using dtmsv::nn::Tensor;
using dtmsv::util::Rng;

Tensor random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Tensor t({rows, cols});
  for (float& v : t.data()) {
    v = static_cast<float>(rng.uniform(-2.0, 2.0));
  }
  return t;
}

/// Canonical (m×k)·(k×n): ascending-kk accumulation per output element.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc = dtmsv::nn::fused_madd(a.at2(i, kk), b.at2(kk, j), acc);
      }
      out.at2(i, j) = acc;
    }
  }
  return out;
}

Tensor naive_matmul_bt(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc = dtmsv::nn::fused_madd(a.at2(i, kk), b.at2(j, kk), acc);
      }
      out.at2(i, j) = acc;
    }
  }
  return out;
}

Tensor naive_matmul_at(const Tensor& a, const Tensor& b) {
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc = dtmsv::nn::fused_madd(a.at2(kk, i), b.at2(kk, j), acc);
      }
      out.at2(i, j) = acc;
    }
  }
  return out;
}

void expect_bit_identical(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.shape(), want.shape());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "element " << i << " diverges";
  }
}

// Shapes chosen to exercise every tiling edge: smaller than one tile,
// exact tile multiples, one-past-a-tile remainders, and skinny matrices
// in each dimension.
struct Shape3 {
  std::size_t m, k, n;
};

const Shape3 kShapes[] = {
    {1, 1, 1},  {3, 5, 2},   {7, 1, 9},   {32, 64, 128}, {33, 65, 129},
    {31, 63, 127}, {64, 64, 64}, {5, 200, 3}, {130, 70, 40}, {1, 300, 1},
};

TEST(MatmulKernels, MatchesNaiveReference) {
  Rng rng(1);
  for (const auto& s : kShapes) {
    const Tensor a = random_matrix(s.m, s.k, rng);
    const Tensor b = random_matrix(s.k, s.n, rng);
    expect_bit_identical(Tensor::matmul(a, b), naive_matmul(a, b));
  }
}

TEST(MatmulKernels, BtMatchesNaiveReference) {
  Rng rng(2);
  for (const auto& s : kShapes) {
    const Tensor a = random_matrix(s.m, s.k, rng);
    const Tensor b = random_matrix(s.n, s.k, rng);
    expect_bit_identical(Tensor::matmul_bt(a, b), naive_matmul_bt(a, b));
  }
}

TEST(MatmulKernels, AtMatchesNaiveReference) {
  Rng rng(3);
  for (const auto& s : kShapes) {
    const Tensor a = random_matrix(s.k, s.m, rng);
    const Tensor b = random_matrix(s.k, s.n, rng);
    expect_bit_identical(Tensor::matmul_at(a, b), naive_matmul_at(a, b));
  }
}

TEST(MatmulKernels, ThreadCountDoesNotChangeResults) {
  Rng rng(4);
  // Big enough to clear the parallel dispatch threshold.
  const Tensor a = random_matrix(97, 150, rng);
  const Tensor b = random_matrix(150, 83, rng);
  const Tensor bt = random_matrix(83, 150, rng);

  dtmsv::util::set_thread_count(1);
  const Tensor serial = Tensor::matmul(a, b);
  const Tensor serial_bt = Tensor::matmul_bt(a, bt);
  const Tensor serial_at = Tensor::matmul_at(b, b);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    dtmsv::util::set_thread_count(threads);
    expect_bit_identical(Tensor::matmul(a, b), serial);
    expect_bit_identical(Tensor::matmul_bt(a, bt), serial_bt);
    expect_bit_identical(Tensor::matmul_at(b, b), serial_at);
  }
  dtmsv::util::set_thread_count(0);
}

TEST(MatmulKernels, ShapePreconditionsStillEnforced) {
  Rng rng(5);
  const Tensor a = random_matrix(4, 5, rng);
  const Tensor b = random_matrix(4, 5, rng);
  EXPECT_THROW(Tensor::matmul(a, b), dtmsv::util::PreconditionError);
  const Tensor c = random_matrix(6, 4, rng);
  EXPECT_THROW(Tensor::matmul_bt(a, c), dtmsv::util::PreconditionError);
  EXPECT_THROW(Tensor::matmul_at(a, c), dtmsv::util::PreconditionError);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 5u}) {
    dtmsv::util::set_thread_count(threads);
    std::vector<std::atomic<int>> hits(1000);
    dtmsv::util::parallel_for(0, hits.size(), 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        hits[i].fetch_add(1);
      }
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
    }
  }
  dtmsv::util::set_thread_count(0);
}

// ---------------------------------------------------------------------------
// Backend equivalence: every SIMD backend compiled into this binary must
// produce bit-identical outputs to the scalar backend on the raw row
// kernels, including ragged sizes (non-multiples of any lane width),
// single rows, and empty extents. The suite instantiates the kernel
// templates directly so the vector paths are compared against scalar even
// though the library entry points only ever use the default backend.

namespace simd = dtmsv::util::simd;

std::vector<float> random_values(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) {
    x = static_cast<float>(rng.uniform(-2.0, 2.0));
  }
  return v;
}

struct RaggedShape {
  std::size_t m, k, n;
};

// Lane widths in play are 4/8 (AVX2) and 8/16 (AVX-512); every extent
// below is chosen to leave a ragged vector tail or to be degenerate.
const RaggedShape kRaggedShapes[] = {
    {1, 1, 1}, {1, 7, 13}, {2, 3, 17}, {5, 9, 33},  {8, 16, 31},
    {3, 5, 1}, {0, 4, 5},  {4, 0, 5},  {3, 4, 0},   {9, 21, 19},
};

template <typename Backend>
std::vector<float> matmul_via(const std::vector<float>& a,
                              const std::vector<float>& b, std::size_t m,
                              std::size_t k, std::size_t n) {
  std::vector<float> out(m * n, 0.0f);
  dtmsv::nn::kernels::matmul_rows<Backend>(a.data(), b.data(), out.data(), 0, m,
                                           k, n);
  return out;
}

template <typename Backend>
std::vector<float> matmul_at_via(const std::vector<float>& a,
                                 const std::vector<float>& b, std::size_t m,
                                 std::size_t k, std::size_t n) {
  std::vector<float> out(m * n, 0.0f);
  dtmsv::nn::kernels::matmul_at_rows<Backend>(a.data(), b.data(), out.data(), 0,
                                              m, k, m, n);
  return out;
}

void expect_bits_equal(const std::vector<float>& got,
                       const std::vector<float>& want, const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << label << ": element " << i << " diverges";
  }
}

template <typename Backend>
void check_matmul_backend_matches_scalar(const char* name) {
  Rng rng(11);
  for (const auto& s : kRaggedShapes) {
    const auto a = random_values(s.m * s.k, rng);
    const auto b = random_values(s.k * s.n, rng);
    expect_bits_equal(matmul_via<Backend>(a, b, s.m, s.k, s.n),
                      matmul_via<simd::scalar_backend>(a, b, s.m, s.k, s.n),
                      name);
    const auto at = random_values(s.k * s.m, rng);
    expect_bits_equal(
        matmul_at_via<Backend>(at, b, s.m, s.k, s.n),
        matmul_at_via<simd::scalar_backend>(at, b, s.m, s.k, s.n), name);
  }
}

template <typename Backend>
void check_span_helpers_match_scalar(const char* name) {
  Rng rng(12);
  // Lengths straddling every lane width: empty, single, tails on both
  // sides of 4/8/16, and a multi-vector run with a ragged tail.
  for (const std::size_t len : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u,
                                17u, 67u}) {
    const auto src = random_values(len, rng);
    const auto base = random_values(len, rng);

    std::vector<float> want = base;
    simd::add_rows<simd::scalar_backend>(want.data(), src.data(), len);
    std::vector<float> got = base;
    simd::add_rows<Backend>(got.data(), src.data(), len);
    expect_bits_equal(got, want, name);

    std::vector<float> copied(len, -1.0f);
    simd::copy_row<Backend>(copied.data(), src.data(), len);
    expect_bits_equal(copied, src, name);
  }
}

TEST(SimdBackends, ScalarBackendReportsAndComputes) {
  // The scalar backend is the always-available reference; sanity-check its
  // primitive ops and that the build records a known backend name.
  using P = simd::pack<float, simd::scalar_backend>;
  static_assert(P::width == 1);
  float out = 0.0f;
  P::madd(P::broadcast(3.0f), P::broadcast(2.0f), P::broadcast(1.0f)).store(&out);
  EXPECT_EQ(out, dtmsv::nn::fused_madd(3.0f, 2.0f, 1.0f));

  const std::string backend = simd::active_backend_name();
  EXPECT_TRUE(backend == "scalar" || backend == "avx2" || backend == "avx512");
}

TEST(SimdBackends, MatmulKernelsBitIdenticalAcrossBackends) {
  check_matmul_backend_matches_scalar<simd::scalar_backend>("scalar");
#if defined(__AVX2__)
  check_matmul_backend_matches_scalar<simd::avx2_backend>("avx2");
#endif
#if defined(__AVX512F__)
  check_matmul_backend_matches_scalar<simd::avx512_backend>("avx512");
#endif
}

TEST(SimdBackends, SpanHelpersBitIdenticalAcrossBackends) {
  check_span_helpers_match_scalar<simd::scalar_backend>("scalar");
#if defined(__AVX2__)
  check_span_helpers_match_scalar<simd::avx2_backend>("avx2");
#endif
#if defined(__AVX512F__)
  check_span_helpers_match_scalar<simd::avx512_backend>("avx512");
#endif
}

TEST(SimdBackends, BtTransposePathMatchesDotPath) {
  // matmul_bt dispatches on row count: >= 8 rows transposes b and runs the
  // vector axpy kernel, below that it runs the dot-product form. Both are
  // ascending-kk chains per element, so slicing the same product at
  // different row counts must agree bit-for-bit.
  Rng rng(13);
  const std::size_t k = 37, n = 11;
  const Tensor big_a = random_matrix(24, k, rng);
  const Tensor b = random_matrix(n, k, rng);
  const Tensor whole = Tensor::matmul_bt(big_a, b);  // transpose path
  for (const std::size_t i : {0u, 5u, 23u}) {
    Tensor row({1, k});
    for (std::size_t kk = 0; kk < k; ++kk) {
      row.at2(0, kk) = big_a.at2(i, kk);
    }
    const Tensor single = Tensor::matmul_bt(row, b);  // dot path
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(single.at2(0, j), whole.at2(i, j))
          << "row " << i << " col " << j;
    }
  }
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  dtmsv::util::set_thread_count(4);
  int calls = 0;
  dtmsv::util::parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Below min_grain the loop runs inline as one chunk.
  dtmsv::util::parallel_for(0, 3, 100, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 3u);
  });
  EXPECT_EQ(calls, 1);
  dtmsv::util::set_thread_count(0);
}

}  // namespace
