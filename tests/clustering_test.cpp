// Unit tests for dtmsv::clustering — K-means++ seeding invariants, Lloyd
// convergence on separable data, quality metrics against hand-computed
// values, and the K-selection baselines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <span>
#include <vector>

#include "clustering/kmeans.hpp"
#include "clustering/kmeans_kernels.hpp"
#include "clustering/metrics.hpp"
#include "clustering/selectors.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace {

using namespace dtmsv::clustering;
using dtmsv::util::PreconditionError;
using dtmsv::util::Rng;

/// Generates `per_cluster` points around each of `centers`.
Points gaussian_blobs(const Points& centers, std::size_t per_cluster, double sigma,
                      Rng& rng) {
  Points points;
  for (const auto& c : centers) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      std::vector<double> p(c.size());
      for (std::size_t d = 0; d < c.size(); ++d) {
        p[d] = c[d] + rng.normal(0.0, sigma);
      }
      points.push_back(std::move(p));
    }
  }
  return points;
}

const Points kFarCenters = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}, {10.0, 10.0}};

// ---------------------------------------------------------------- distance

TEST(Distance, KnownValues) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
}

TEST(Distance, DimensionMismatchRejected) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(squared_distance(a, b), PreconditionError);
}

// ----------------------------------------------------------- k-means++ init

TEST(KMeansPlusPlus, ProducesKDistinctCentroidsOnSeparatedData) {
  Rng rng(1);
  const Points points = gaussian_blobs(kFarCenters, 20, 0.3, rng);
  const Points centroids = kmeans_plus_plus_init(points, 4, rng);
  ASSERT_EQ(centroids.size(), 4u);
  // With well separated blobs, D² weighting lands one seed per blob with
  // overwhelming probability.
  std::set<int> blobs_hit;
  for (const auto& c : centroids) {
    for (std::size_t b = 0; b < kFarCenters.size(); ++b) {
      if (distance(c, kFarCenters[b]) < 3.0) {
        blobs_hit.insert(static_cast<int>(b));
      }
    }
  }
  EXPECT_EQ(blobs_hit.size(), 4u);
}

TEST(KMeansPlusPlus, CentroidsAreInputPoints) {
  Rng rng(2);
  const Points points = gaussian_blobs({{0.0, 0.0}, {5.0, 5.0}}, 10, 0.5, rng);
  const Points centroids = kmeans_plus_plus_init(points, 3, rng);
  for (const auto& c : centroids) {
    EXPECT_TRUE(points.contains(c));
  }
}

TEST(KMeansPlusPlus, HandlesDuplicatePoints) {
  Rng rng(3);
  Points points(10, std::vector<double>{1.0, 1.0});  // all identical
  const Points centroids = kmeans_plus_plus_init(points, 3, rng);
  EXPECT_EQ(centroids.size(), 3u);
}

TEST(KMeansPlusPlus, KOutOfRangeRejected) {
  Rng rng(4);
  Points points = {{1.0}, {2.0}};
  EXPECT_THROW(kmeans_plus_plus_init(points, 0, rng), PreconditionError);
  EXPECT_THROW(kmeans_plus_plus_init(points, 3, rng), PreconditionError);
}

// ------------------------------------------------------------------ k-means

TEST(KMeans, RecoversWellSeparatedBlobs) {
  Rng rng(5);
  const Points points = gaussian_blobs(kFarCenters, 25, 0.4, rng);
  const KMeansResult result = k_means(points, 4, rng);

  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.cluster_count(), 4u);
  // Every centroid sits near a true center.
  for (const auto& c : result.centroids) {
    double best = 1e9;
    for (const auto& t : kFarCenters) {
      best = std::min(best, distance(c, t));
    }
    EXPECT_LT(best, 1.0);
  }
  // All 100 points partitioned into 4 clusters of 25.
  const auto sizes = result.cluster_sizes();
  for (const std::size_t s : sizes) {
    EXPECT_EQ(s, 25u);
  }
}

TEST(KMeans, AssignmentIsNearestCentroidFixedPoint) {
  Rng rng(6);
  const Points points = gaussian_blobs(kFarCenters, 15, 1.0, rng);
  const KMeansResult result = k_means(points, 4, rng);
  const auto reassigned = assign_to_nearest(points, result.centroids);
  EXPECT_EQ(reassigned, result.assignment);
}

TEST(KMeans, InertiaDecreasesWithK) {
  Rng rng(7);
  const Points points = gaussian_blobs(kFarCenters, 20, 1.5, rng);
  double prev = std::numeric_limits<double>::infinity();
  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    KMeansOptions opts;
    opts.restarts = 4;
    const double inertia_k = k_means(points, k, rng, opts).inertia;
    EXPECT_LE(inertia_k, prev * 1.001);
    prev = inertia_k;
  }
}

TEST(KMeans, KEqualsOneGivesCentroidMean) {
  Rng rng(8);
  const Points points = {{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}, {2.0, 2.0}};
  const KMeansResult result = k_means(points, 1, rng);
  ASSERT_EQ(result.centroids.size(), 1u);
  EXPECT_NEAR(result.centroids[0][0], 1.0, 1e-9);
  EXPECT_NEAR(result.centroids[0][1], 1.0, 1e-9);
  EXPECT_NEAR(result.inertia, 8.0, 1e-9);
}

TEST(KMeans, KEqualsNPerfectFit) {
  Rng rng(9);
  const Points points = {{0.0}, {5.0}, {10.0}};
  const KMeansResult result = k_means(points, 3, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
  std::set<std::size_t> clusters(result.assignment.begin(), result.assignment.end());
  EXPECT_EQ(clusters.size(), 3u);
}

TEST(KMeans, MembersOfPartitionsAllPoints) {
  Rng rng(10);
  const Points points = gaussian_blobs(kFarCenters, 10, 0.5, rng);
  const KMeansResult result = k_means(points, 4, rng);
  std::size_t total = 0;
  for (std::size_t c = 0; c < result.cluster_count(); ++c) {
    total += result.members_of(c).size();
  }
  EXPECT_EQ(total, points.size());
}

TEST(KMeans, DeterministicGivenSeed) {
  Rng rng_a(11);
  Rng rng_b(11);
  const Points points = gaussian_blobs(kFarCenters, 10, 1.0, rng_a);
  Rng points_rng(11);
  const Points points_b = gaussian_blobs(kFarCenters, 10, 1.0, points_rng);
  Rng ka(99);
  Rng kb(99);
  const auto ra = k_means(points, 3, ka);
  const auto rb = k_means(points, 3, kb);
  EXPECT_EQ(ra.assignment, rb.assignment);
  EXPECT_DOUBLE_EQ(ra.inertia, rb.inertia);
  (void)rng_b;
  (void)points_b;
}

TEST(KMeans, EmptyInputRejected) {
  Rng rng(12);
  Points empty;
  EXPECT_THROW(k_means(empty, 1, rng), PreconditionError);
}

TEST(KMeans, InconsistentDimensionsRejected) {
  // Flat storage enforces a single dimensionality at construction time.
  EXPECT_THROW(Points({{1.0, 2.0}, {3.0}}), PreconditionError);
  Points points = {{1.0, 2.0}};
  EXPECT_THROW(points.push_back({3.0}), PreconditionError);
}

// ------------------------------------------------------------------ metrics

TEST(Silhouette, PerfectSeparationNearOne) {
  Rng rng(14);
  const Points points = gaussian_blobs({{0.0, 0.0}, {100.0, 0.0}}, 10, 0.1, rng);
  std::vector<std::size_t> assignment(20, 0);
  std::fill(assignment.begin() + 10, assignment.end(), 1);
  EXPECT_GT(silhouette(points, assignment), 0.95);
}

TEST(Silhouette, RandomAssignmentNearZeroOrNegative) {
  Rng rng(15);
  const Points points = gaussian_blobs({{0.0, 0.0}, {100.0, 0.0}}, 10, 0.1, rng);
  std::vector<std::size_t> assignment;
  for (std::size_t i = 0; i < 20; ++i) {
    assignment.push_back(i % 2);  // alternating: mixes both blobs
  }
  EXPECT_LT(silhouette(points, assignment), 0.1);
}

TEST(Silhouette, SingleClusterIsZero) {
  const Points points = {{0.0}, {1.0}, {2.0}};
  const std::vector<std::size_t> assignment = {0, 0, 0};
  EXPECT_DOUBLE_EQ(silhouette(points, assignment), 0.0);
}

TEST(Silhouette, BoundedInMinusOneOne) {
  Rng rng(16);
  const Points points = gaussian_blobs(kFarCenters, 8, 5.0, rng);
  for (const std::size_t k : {2u, 3u, 4u}) {
    const auto result = k_means(points, k, rng);
    const double s = silhouette(points, result.assignment);
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(DaviesBouldin, LowerForBetterSeparation) {
  Rng rng(17);
  const Points tight = gaussian_blobs({{0.0, 0.0}, {50.0, 0.0}}, 15, 0.5, rng);
  const Points loose = gaussian_blobs({{0.0, 0.0}, {3.0, 0.0}}, 15, 2.0, rng);
  std::vector<std::size_t> assignment(30, 0);
  std::fill(assignment.begin() + 15, assignment.end(), 1);
  EXPECT_LT(davies_bouldin(tight, assignment), davies_bouldin(loose, assignment));
}

TEST(DaviesBouldin, DegenerateSingleCluster) {
  const Points points = {{0.0}, {1.0}};
  const std::vector<std::size_t> assignment = {0, 0};
  EXPECT_DOUBLE_EQ(davies_bouldin(points, assignment), 0.0);
}

TEST(Inertia, MatchesHandComputation) {
  const Points points = {{0.0}, {2.0}, {10.0}};
  const Points centroids = {{1.0}, {10.0}};
  const std::vector<std::size_t> assignment = {0, 0, 1};
  EXPECT_DOUBLE_EQ(inertia(points, centroids, assignment), 1.0 + 1.0 + 0.0);
}

TEST(SilhouetteSampled, ExactWhenSampleCoversAllPoints) {
  Rng rng(40);
  const Points points = gaussian_blobs(kFarCenters, 10, 0.8, rng);
  const auto result = k_means(points, 4, rng);
  Rng sample_rng(41);
  // max_samples >= n: must match the exact metric bit-for-bit and leave
  // the rng untouched.
  EXPECT_DOUBLE_EQ(
      silhouette_sampled(points, result.assignment, points.size(), sample_rng),
      silhouette(points, result.assignment));
  EXPECT_DOUBLE_EQ(
      silhouette_sampled(points, result.assignment, 10000, sample_rng),
      silhouette(points, result.assignment));
}

TEST(SilhouetteSampled, CloseToExactOnSubsample) {
  Rng rng(42);
  const Points points = gaussian_blobs(kFarCenters, 50, 0.8, rng);  // n = 200
  const auto result = k_means(points, 4, rng);
  const double exact = silhouette(points, result.assignment);
  Rng sample_rng(43);
  const double sampled =
      silhouette_sampled(points, result.assignment, 80, sample_rng);
  EXPECT_NEAR(sampled, exact, 0.1);
  EXPECT_GE(sampled, -1.0);
  EXPECT_LE(sampled, 1.0);
}

TEST(SilhouetteSampled, DegenerateSingleClusterIsZero) {
  const Points points = {{0.0}, {1.0}, {2.0}, {3.0}};
  const std::vector<std::size_t> assignment = {0, 0, 0, 0};
  Rng sample_rng(44);
  EXPECT_DOUBLE_EQ(silhouette_sampled(points, assignment, 2, sample_rng), 0.0);
}

TEST(CalinskiHarabasz, HigherForSeparatedData) {
  Rng rng(18);
  const Points good = gaussian_blobs({{0.0, 0.0}, {50.0, 0.0}}, 20, 0.5, rng);
  const Points bad = gaussian_blobs({{0.0, 0.0}, {1.0, 0.0}}, 20, 3.0, rng);
  std::vector<std::size_t> assignment(40, 0);
  std::fill(assignment.begin() + 20, assignment.end(), 1);
  EXPECT_GT(calinski_harabasz(good, assignment), calinski_harabasz(bad, assignment));
}

// ---------------------------------------------------------------- selectors

TEST(FixedKSelector, ClampsToPointCount) {
  FixedKSelector sel(10);
  Rng rng(19);
  Points points = {{0.0}, {1.0}, {2.0}};
  EXPECT_EQ(sel.select_k(points, rng), 3u);
  EXPECT_EQ(sel.name(), "fixed-10");
}

TEST(ElbowKSelector, FindsKneeOnSeparatedBlobs) {
  Rng rng(20);
  const Points points = gaussian_blobs(kFarCenters, 20, 0.4, rng);
  ElbowKSelector sel(2, 8);
  const std::size_t k = sel.select_k(points, rng);
  // The knee of 4 well-separated blobs is at or adjacent to 4.
  EXPECT_GE(k, 3u);
  EXPECT_LE(k, 5u);
}

TEST(SilhouetteSweepSelector, FindsTrueKOnSeparatedBlobs) {
  Rng rng(21);
  const Points points = gaussian_blobs(kFarCenters, 15, 0.4, rng);
  SilhouetteSweepSelector sel(2, 8);
  EXPECT_EQ(sel.select_k(points, rng), 4u);
}

TEST(RandomKSelector, StaysWithinRange) {
  Rng rng(22);
  const Points points = gaussian_blobs(kFarCenters, 10, 1.0, rng);
  RandomKSelector sel(3, 7);
  for (int i = 0; i < 50; ++i) {
    const std::size_t k = sel.select_k(points, rng);
    EXPECT_GE(k, 3u);
    EXPECT_LE(k, 7u);
  }
}

TEST(Selectors, InvalidRangesRejected) {
  EXPECT_THROW(FixedKSelector(0), PreconditionError);
  EXPECT_THROW(ElbowKSelector(5, 2), PreconditionError);
  EXPECT_THROW(RandomKSelector(0, 3), PreconditionError);
}

// ------------------------------------------------- parameterized properties

struct KMeansParam {
  std::size_t n_points;
  std::size_t k;
  std::uint64_t seed;
};

class KMeansProperty : public ::testing::TestWithParam<KMeansParam> {};

TEST_P(KMeansProperty, InvariantsHoldOnRandomData) {
  const auto param = GetParam();
  Rng rng(param.seed);
  Points points;
  points.reserve(param.n_points);
  for (std::size_t i = 0; i < param.n_points; ++i) {
    points.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0),
                      rng.uniform(0.0, 10.0)});
  }
  const KMeansResult result = k_means(points, param.k, rng);

  // Assignment indices valid; all clusters non-empty; inertia matches.
  ASSERT_EQ(result.assignment.size(), points.size());
  std::vector<std::size_t> counts(param.k, 0);
  for (const std::size_t a : result.assignment) {
    ASSERT_LT(a, param.k);
    ++counts[a];
  }
  for (const std::size_t c : counts) {
    EXPECT_GT(c, 0u);
  }
  EXPECT_NEAR(result.inertia, inertia(points, result.centroids, result.assignment),
              1e-6);
  // Assignment is a nearest-centroid fixed point.
  EXPECT_EQ(assign_to_nearest(points, result.centroids), result.assignment);
  // Silhouette bounded.
  const double s = silhouette(points, result.assignment);
  EXPECT_GE(s, -1.0);
  EXPECT_LE(s, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KMeansProperty,
    ::testing::Values(KMeansParam{10, 2, 1}, KMeansParam{50, 3, 2},
                      KMeansParam{100, 5, 3}, KMeansParam{100, 10, 4},
                      KMeansParam{30, 1, 5}, KMeansParam{64, 8, 6},
                      KMeansParam{200, 6, 7}, KMeansParam{25, 25, 8}));

// ------------------------------------------------- SIMD backend equivalence
// The fused assign+accumulate kernel must produce bit-identical
// assignments, sums, counts, and changed-flags on every backend compiled
// into this binary, for any point/centroid geometry — including dims and
// cluster counts that leave ragged vector tails, a single point, and an
// empty point set.

namespace simd = dtmsv::util::simd;

struct AssignOutput {
  std::vector<std::size_t> assignment;
  std::vector<double> sums;
  std::vector<std::size_t> counts;
  bool changed = false;
};

template <typename Backend>
AssignOutput assign_via(const std::vector<double>& pts, std::size_t n,
                        std::size_t dim, const std::vector<double>& cents,
                        std::size_t k) {
  AssignOutput out;
  out.assignment.assign(n, 0);
  out.sums.assign(k * dim, 0.0);
  out.counts.assign(k, 0);
  out.changed = kernels::assign_accumulate<Backend>(
      pts.data(), n, dim, cents.data(), k, out.assignment.data(),
      out.sums.data(), out.counts.data());
  return out;
}

struct AssignGeometry {
  std::size_t n, dim, k;
};

// Lane widths in play are 4 (AVX2 doubles) and 8 (AVX-512 doubles); the
// cluster counts straddle both, and the dims cover the paper's 8-d
// embeddings plus ragged widths on either side.
const AssignGeometry kAssignGeometries[] = {
    {0, 3, 2},  {1, 3, 1},   {7, 1, 3},   {37, 3, 5},  {40, 8, 8},
    {40, 8, 9}, {25, 9, 17}, {12, 5, 12}, {64, 8, 25},
};

template <typename Backend>
void check_assign_backend_matches_scalar(const char* name) {
  Rng rng(77);
  for (const auto& g : kAssignGeometries) {
    std::vector<double> pts(g.n * g.dim);
    for (double& v : pts) {
      v = rng.uniform(-5.0, 5.0);
    }
    std::vector<double> cents(g.k * g.dim);
    for (double& v : cents) {
      v = rng.uniform(-5.0, 5.0);
    }
    const AssignOutput want =
        assign_via<simd::scalar_backend>(pts, g.n, g.dim, cents, g.k);
    const AssignOutput got = assign_via<Backend>(pts, g.n, g.dim, cents, g.k);
    ASSERT_EQ(got.assignment, want.assignment)
        << name << ": n=" << g.n << " dim=" << g.dim << " k=" << g.k;
    ASSERT_EQ(got.counts, want.counts) << name;
    ASSERT_EQ(got.changed, want.changed) << name;
    ASSERT_EQ(got.sums.size(), want.sums.size()) << name;
    for (std::size_t i = 0; i < got.sums.size(); ++i) {
      ASSERT_EQ(got.sums[i], want.sums[i]) << name << ": sum " << i;
    }
  }
}

TEST(KMeansSimdBackends, AssignAccumulateBitIdenticalAcrossBackends) {
  check_assign_backend_matches_scalar<simd::scalar_backend>("scalar");
#if defined(__AVX2__)
  check_assign_backend_matches_scalar<simd::avx2_backend>("avx2");
#endif
#if defined(__AVX512F__)
  check_assign_backend_matches_scalar<simd::avx512_backend>("avx512");
#endif
}

template <typename Backend>
void check_nan_points_assign_to_zero() {
  // A NaN coordinate poisons every distance; the strict-< argmin then
  // keeps index 0, on every backend (NaN lanes never compare less).
  const std::size_t dim = 3, k = 5;
  std::vector<double> pts = {0.5, std::numeric_limits<double>::quiet_NaN(), 1.0};
  std::vector<double> cents(k * dim, 0.25);
  const AssignOutput out = assign_via<Backend>(pts, 1, dim, cents, k);
  EXPECT_EQ(out.assignment[0], 0u);
  EXPECT_EQ(out.counts[0], 1u);
}

TEST(KMeansSimdBackends, NanPointsFallBackToIndexZeroOnEveryBackend) {
  check_nan_points_assign_to_zero<simd::scalar_backend>();
#if defined(__AVX2__)
  check_nan_points_assign_to_zero<simd::avx2_backend>();
#endif
#if defined(__AVX512F__)
  check_nan_points_assign_to_zero<simd::avx512_backend>();
#endif
}

TEST(KMeansSimdBackends, KernelAgreesWithPublicSquaredDistance) {
  // The kernel's per-lane distance chain must rank centroids the same way
  // the public span API does (the metrics layer uses the latter), so a
  // k_means assignment remains a nearest-centroid fixed point under
  // metrics-side distance checks.
  Rng rng(78);
  const std::size_t n = 50, dim = 8, k = 6;
  std::vector<double> pts(n * dim);
  for (double& v : pts) {
    v = rng.uniform(-3.0, 3.0);
  }
  std::vector<double> cents(k * dim);
  for (double& v : cents) {
    v = rng.uniform(-3.0, 3.0);
  }
  const AssignOutput out =
      assign_via<simd::default_backend>(pts, n, dim, cents, k);
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const double> p(pts.data() + i * dim, dim);
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      const double d =
          squared_distance(p, {cents.data() + c * dim, dim});
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    EXPECT_EQ(out.assignment[i], best) << "point " << i;
  }
}

}  // namespace
