// Cross-module accounting tests: the multicast bookkeeping identities that
// tie the simulator's ground truth to the demand model's predictions —
// bits/bandwidth/cycles relationships, report aggregation, and counter-
// factual (unicast) consistency, swept over seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.hpp"
#include "util/stats.hpp"

namespace {

using namespace dtmsv;

core::SchemeConfig tiny_config(std::uint64_t seed) {
  core::SchemeConfig cfg;
  cfg.seed = seed;
  cfg.user_count = 30;
  cfg.interval_s = 60.0;
  cfg.demand.interval_s = cfg.interval_s;
  cfg.warmup_intervals = 1;
  cfg.feature_window_s = 120.0;
  cfg.feature_timesteps = 16;
  cfg.session.engagement.catalog.videos_per_category = 30;
  cfg.compressor.epochs_per_fit = 1;
  cfg.grouping.k_min = 2;
  cfg.grouping.k_max = 5;
  cfg.grouping.ddqn.hidden = {16};
  cfg.grouping.kmeans.restarts = 1;
  cfg.recommender.playlist_size = 18;
  return cfg;
}

class AccountingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AccountingSweep, GroupTotalsEqualSumOfGroups) {
  core::Simulation sim(tiny_config(GetParam()));
  const auto reports = sim.run(4);
  for (const auto& r : reports) {
    if (!r.has_prediction) {
      continue;
    }
    double pred_radio = 0.0;
    double act_radio = 0.0;
    double pred_compute = 0.0;
    double act_compute = 0.0;
    double unicast = 0.0;
    for (const auto& g : r.groups) {
      pred_radio += g.predicted_radio_hz;
      act_radio += g.actual_radio_hz;
      pred_compute += g.predicted_compute_cycles;
      act_compute += g.actual_compute_cycles;
      unicast += g.unicast_radio_hz;
    }
    EXPECT_NEAR(pred_radio, r.predicted_radio_hz_total,
                1e-9 * std::max(1.0, pred_radio));
    EXPECT_NEAR(act_radio, r.actual_radio_hz_total,
                1e-9 * std::max(1.0, act_radio));
    EXPECT_NEAR(pred_compute, r.predicted_compute_total,
                1e-6 * std::max(1.0, pred_compute));
    EXPECT_NEAR(act_compute, r.actual_compute_total,
                1e-6 * std::max(1.0, act_compute));
    EXPECT_NEAR(unicast, r.unicast_radio_hz_total,
                1e-9 * std::max(1.0, unicast));
  }
}

TEST_P(AccountingSweep, DemandQuantitiesNonNegativeAndFinite) {
  core::Simulation sim(tiny_config(GetParam() + 100));
  const auto reports = sim.run(4);
  for (const auto& r : reports) {
    for (const auto& g : r.groups) {
      EXPECT_TRUE(std::isfinite(g.predicted_radio_hz));
      EXPECT_TRUE(std::isfinite(g.actual_radio_hz));
      EXPECT_GE(g.predicted_radio_hz, 0.0);
      EXPECT_GE(g.actual_radio_hz, 0.0);
      EXPECT_GE(g.predicted_compute_cycles, 0.0);
      EXPECT_GE(g.actual_compute_cycles, 0.0);
      EXPECT_GE(g.unicast_radio_hz, 0.0);
      EXPECT_LT(g.rung, 5u);
    }
  }
}

TEST_P(AccountingSweep, RealizedEfficiencyWithinPhysicalBounds) {
  core::Simulation sim(tiny_config(GetParam() + 200));
  const auto reports = sim.run(4);
  for (const auto& r : reports) {
    for (const auto& g : r.groups) {
      if (g.videos_played == 0) {
        continue;
      }
      // Realized efficiency averages the multicast operating points: floored
      // below and bounded by the top CQI efficiency above.
      EXPECT_GE(g.realized_efficiency,
                sim.config().demand.efficiency_floor - 1e-9);
      EXPECT_LE(g.realized_efficiency, 5.5547 + 1e-6);
      EXPECT_GE(g.predicted_efficiency,
                sim.config().demand.efficiency_floor - 1e-9);
      EXPECT_LE(g.predicted_efficiency, 5.5547 + 1e-6);
    }
  }
}

TEST_P(AccountingSweep, MulticastNeverCostsMoreThanUnicastForSharedViewing) {
  core::Simulation sim(tiny_config(GetParam() + 300));
  const auto reports = sim.run(4);
  for (const auto& r : reports) {
    if (!r.has_prediction || r.actual_radio_hz_total <= 0.0) {
      continue;
    }
    // The unicast counterfactual serves each member individually; with
    // multi-member groups it must cost at least as much in aggregate.
    // (Single-member groups are identical by construction up to rung
    // selection granularity, hence the small tolerance.)
    EXPECT_GE(r.unicast_radio_hz_total, r.actual_radio_hz_total * 0.95);
  }
}

TEST_P(AccountingSweep, WatchEventsRespectOnAirCap) {
  core::Simulation sim(tiny_config(GetParam() + 400));
  sim.run(3);
  const auto& twins = sim.twins();
  for (std::size_t u = 0; u < twins.user_count(); ++u) {
    for (const auto& s : twins.twin(u).watch()) {
      EXPECT_GE(s.value.watch_seconds, 0.0);
      EXPECT_LE(s.value.watch_seconds, s.value.duration_s + 1e-6);
      EXPECT_GE(s.value.watch_fraction, 0.0);
      EXPECT_LE(s.value.watch_fraction, 1.0 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccountingSweep, ::testing::Values(1, 2, 3));

}  // namespace
