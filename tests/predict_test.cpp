// Unit tests for dtmsv::predict — per-user efficiency predictors, group
// minimum composition, the structural demand model (monotonicity and
// closed-form checks), and the series baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "predict/baselines.hpp"
#include "predict/channel_predictor.hpp"
#include "predict/demand.hpp"
#include "util/error.hpp"

namespace {

using namespace dtmsv::predict;
using dtmsv::behavior::PreferenceVector;
using dtmsv::util::PreconditionError;
using dtmsv::util::Rng;
using dtmsv::video::Category;
using dtmsv::video::kCategoryCount;

dtmsv::twin::UserDigitalTwin twin_with_efficiency_ramp(double start, double step,
                                                       int samples) {
  dtmsv::twin::UserDigitalTwin twin(0);
  for (int t = 0; t < samples; ++t) {
    dtmsv::twin::ChannelObservation obs;
    obs.efficiency_bps_hz = start + step * t;
    obs.snr_db = 10.0;
    twin.record_channel(static_cast<double>(t), obs);
  }
  return twin;
}

// -------------------------------------------------------- channel predictors

TEST(LastValuePredictor, ReturnsNewestSample) {
  const auto twin = twin_with_efficiency_ramp(1.0, 0.1, 10);
  LastValuePredictor pred;
  EXPECT_NEAR(pred.predict(twin.channel(), 10.0, 10.0, 0.5), 1.9, 1e-9);
}

TEST(LastValuePredictor, FallbackWhenEmpty) {
  dtmsv::twin::UserDigitalTwin twin(0);
  LastValuePredictor pred;
  EXPECT_DOUBLE_EQ(pred.predict(twin.channel(), 10.0, 10.0, 0.7), 0.7);
}

TEST(EwmaPredictor, WeighsRecentMore) {
  const auto twin = twin_with_efficiency_ramp(1.0, 0.1, 10);
  EwmaPredictor pred(0.5);
  const double p = pred.predict(twin.channel(), 10.0, 10.0, 0.5);
  // Between the window mean (1.45) and the last value (1.9), nearer the last.
  EXPECT_GT(p, 1.45);
  EXPECT_LT(p, 1.9);
}

TEST(EwmaPredictor, ConstantSeriesExact) {
  const auto twin = twin_with_efficiency_ramp(2.5, 0.0, 20);
  EwmaPredictor pred(0.3);
  EXPECT_NEAR(pred.predict(twin.channel(), 20.0, 20.0, 0.5), 2.5, 1e-9);
}

TEST(LinearTrendPredictor, ExtrapolatesRamp) {
  // efficiency(t) = 1 + 0.1 t; horizon is measured from `now` = 10, so the
  // forecast lands at t = 15 → 1 + 0.1·15 = 2.5.
  const auto twin = twin_with_efficiency_ramp(1.0, 0.1, 10);
  LinearTrendPredictor pred(5.0);
  EXPECT_NEAR(pred.predict(twin.channel(), 10.0, 10.0, 0.5), 2.5, 0.05);
}

TEST(LinearTrendPredictor, ClampsNegativeForecast) {
  const auto twin = twin_with_efficiency_ramp(1.0, -0.2, 10);
  LinearTrendPredictor pred(100.0);
  EXPECT_GE(pred.predict(twin.channel(), 10.0, 10.0, 0.5), 0.0);
}

TEST(MeanPredictor, WindowAverage) {
  const auto twin = twin_with_efficiency_ramp(1.0, 0.1, 10);
  MeanPredictor pred;
  EXPECT_NEAR(pred.predict(twin.channel(), 10.0, 10.0, 0.5), 1.45, 1e-9);
}

TEST(MeanPredictor, WindowRestriction) {
  const auto twin = twin_with_efficiency_ramp(1.0, 0.1, 10);
  MeanPredictor pred;
  // Only samples t in [7, 10): 1.7, 1.8, 1.9.
  EXPECT_NEAR(pred.predict(twin.channel(), 10.0, 3.0, 0.5), 1.8, 1e-9);
}

TEST(GroupEfficiency, TakesWorstMember) {
  const auto strong = twin_with_efficiency_ramp(4.0, 0.0, 5);
  const auto weak = twin_with_efficiency_ramp(0.8, 0.0, 5);
  MeanPredictor pred;
  const double eff =
      predict_group_efficiency({&strong, &weak}, pred, 5.0, 5.0, 0.05);
  EXPECT_NEAR(eff, 0.8, 1e-9);
}

TEST(GroupEfficiency, FloorApplied) {
  const auto outage = twin_with_efficiency_ramp(0.0, 0.0, 5);
  MeanPredictor pred;
  const double eff = predict_group_efficiency({&outage}, pred, 5.0, 5.0, 0.05);
  EXPECT_DOUBLE_EQ(eff, 0.05);
}

TEST(GroupEfficiency, EmptyGroupRejected) {
  MeanPredictor pred;
  EXPECT_THROW(predict_group_efficiency({}, pred, 5.0, 5.0, 0.05),
               PreconditionError);
}

TEST(GroupEfficiencyJoint, ConstantMembersGiveMin) {
  const auto a = twin_with_efficiency_ramp(3.0, 0.0, 10);
  const auto b = twin_with_efficiency_ramp(1.5, 0.0, 10);
  const double eff = predict_group_efficiency_joint({&a, &b}, 10.0, 10.0, 0.05);
  EXPECT_NEAR(eff, 1.5, 1e-9);
}

TEST(GroupEfficiencyJoint, HarmonicMeanOfAlternatingSeries) {
  // One member alternates 1 and 3 each second: harmonic mean = 2/(1+1/3) = 1.5.
  dtmsv::twin::UserDigitalTwin twin(0);
  for (int t = 0; t < 10; ++t) {
    dtmsv::twin::ChannelObservation obs;
    obs.efficiency_bps_hz = (t % 2 == 0) ? 1.0 : 3.0;
    twin.record_channel(static_cast<double>(t), obs);
  }
  const double eff = predict_group_efficiency_joint({&twin}, 10.0, 10.0, 0.05);
  EXPECT_NEAR(eff, 1.5, 1e-9);
}

TEST(GroupEfficiencyJoint, BelowMinOfMeansForFluctuatingMembers) {
  // Two members fade out of phase: min-series is 1 everywhere, while each
  // member's own mean is 2 — the joint estimate must catch the min bias.
  dtmsv::twin::UserDigitalTwin a(0);
  dtmsv::twin::UserDigitalTwin b(1);
  for (int t = 0; t < 10; ++t) {
    dtmsv::twin::ChannelObservation oa;
    dtmsv::twin::ChannelObservation ob;
    oa.efficiency_bps_hz = (t % 2 == 0) ? 1.0 : 3.0;
    ob.efficiency_bps_hz = (t % 2 == 0) ? 3.0 : 1.0;
    a.record_channel(static_cast<double>(t), oa);
    b.record_channel(static_cast<double>(t), ob);
  }
  const double joint = predict_group_efficiency_joint({&a, &b}, 10.0, 10.0, 0.05);
  EXPECT_NEAR(joint, 1.0, 1e-9);
  MeanPredictor pred;
  const double naive = predict_group_efficiency({&a, &b}, pred, 10.0, 10.0, 0.05);
  EXPECT_NEAR(naive, 2.0, 1e-9);
  EXPECT_LT(joint, naive);
}

TEST(GroupEfficiencyJoint, HoldsThroughMissingSamples) {
  // Sparse reports (loss): gaps are held from the last sample.
  dtmsv::twin::UserDigitalTwin twin(0);
  dtmsv::twin::ChannelObservation obs;
  obs.efficiency_bps_hz = 2.0;
  twin.record_channel(1.0, obs);  // only one report in a 10-s window
  const double eff = predict_group_efficiency_joint({&twin}, 10.0, 10.0, 0.05);
  EXPECT_NEAR(eff, 2.0, 1e-9);
}

TEST(GroupEfficiencyJoint, EmptyHistoryFallsToFloor) {
  dtmsv::twin::UserDigitalTwin twin(0);
  const double eff = predict_group_efficiency_joint({&twin}, 10.0, 10.0, 0.05);
  EXPECT_DOUBLE_EQ(eff, 0.05);
}

// ------------------------------------------------------------- ContentStats

TEST(ContentStats, FromCatalogMeans) {
  Rng rng(1);
  dtmsv::video::CatalogConfig cfg;
  cfg.videos_per_category = 100;
  cfg.min_duration_s = 10.0;
  cfg.max_duration_s = 10.0;  // degenerate: every clip exactly 10 s
  const auto catalog = dtmsv::video::Catalog::generate(cfg, rng);
  const ContentStats stats = ContentStats::from_catalog(catalog);
  for (const double d : stats.mean_duration_s) {
    EXPECT_NEAR(d, 10.0, 1e-9);
  }
  EXPECT_EQ(stats.ladder_kbps.size(), 5u);
}

// --------------------------------------------------------- expected_distinct

TEST(ExpectedDistinct, Extremes) {
  EXPECT_DOUBLE_EQ(expected_distinct(0.0, 10.0), 0.0);
  EXPECT_NEAR(expected_distinct(1.0, 10.0), 1.0, 1e-9);
  // Far more views than items → all items hit.
  EXPECT_NEAR(expected_distinct(10000.0, 10.0), 10.0, 1e-6);
}

TEST(ExpectedDistinct, BirthdayFormula) {
  // E[distinct] = R(1-(1-1/R)^N), R=20, N=20 → 20(1-0.95^20) ≈ 12.83.
  EXPECT_NEAR(expected_distinct(20.0, 20.0), 20.0 * (1.0 - std::pow(0.95, 20.0)),
              1e-9);
}

// ------------------------------------------------------ predict_group_demand

struct DemandFixture {
  dtmsv::analysis::SwipingDistribution swiping;
  ContentStats content;
  DemandModelConfig config;
  PreferenceVector mix{};
  std::array<std::size_t, kCategoryCount> playlist{};

  DemandFixture() {
    // Uniform mid-watch behaviour.
    Rng rng(2);
    for (int i = 0; i < 2000; ++i) {
      for (const Category c : dtmsv::video::all_categories()) {
        swiping.observe(c, rng.beta(2.0, 2.0));
      }
    }
    content.mean_duration_s.fill(15.0);
    content.ladder_kbps = {750.0, 1200.0, 1850.0, 2850.0, 4300.0};
    mix.fill(1.0 / kCategoryCount);
    playlist.fill(5);
  }
};

TEST(PredictGroupDemand, PositiveAndFinite) {
  DemandFixture fx;
  const ResourceDemand d = predict_group_demand(10, fx.mix, fx.swiping, 2.0,
                                                fx.playlist, fx.content, fx.config);
  EXPECT_GT(d.radio_hz, 0.0);
  EXPECT_TRUE(std::isfinite(d.radio_hz));
  EXPECT_GT(d.transmitted_bits, 0.0);
  EXPECT_GT(d.distinct_videos, 0.0);
  EXPECT_GT(d.expected_views, d.distinct_videos);  // views = videos × members
}

TEST(PredictGroupDemand, RadioDemandDecreasesWithEfficiency) {
  DemandFixture fx;
  const ResourceDemand lo = predict_group_demand(10, fx.mix, fx.swiping, 0.5,
                                                 fx.playlist, fx.content, fx.config);
  const ResourceDemand hi = predict_group_demand(10, fx.mix, fx.swiping, 4.0,
                                                 fx.playlist, fx.content, fx.config);
  // Higher efficiency → either same bits over more capacity, or a higher
  // rung; per-Hz demand must not increase.
  EXPECT_LT(hi.radio_hz, lo.radio_hz * 1.5);
  EXPECT_GE(hi.rung, lo.rung);
}

TEST(PredictGroupDemand, RungSelectionFollowsBudget) {
  DemandFixture fx;
  fx.config.group_bandwidth_budget_hz = 1e6;
  // 0.5 b/s/Hz on 1 MHz → 500 kbps budget → rung 0.
  const ResourceDemand low = predict_group_demand(5, fx.mix, fx.swiping, 0.5,
                                                  fx.playlist, fx.content, fx.config);
  EXPECT_EQ(low.rung, 0u);
  // 5 b/s/Hz on 1 MHz → 5000 kbps → top rung.
  const ResourceDemand high = predict_group_demand(5, fx.mix, fx.swiping, 5.0,
                                                   fx.playlist, fx.content, fx.config);
  EXPECT_EQ(high.rung, 4u);
}

TEST(PredictGroupDemand, TopRungNeedsNoTranscode) {
  DemandFixture fx;
  fx.config.group_bandwidth_budget_hz = 100e6;
  const ResourceDemand d = predict_group_demand(5, fx.mix, fx.swiping, 5.0,
                                                fx.playlist, fx.content, fx.config);
  EXPECT_EQ(d.rung, 4u);
  EXPECT_DOUBLE_EQ(d.compute_cycles, 0.0);

  fx.config.group_bandwidth_budget_hz = 1e6;
  const ResourceDemand low = predict_group_demand(5, fx.mix, fx.swiping, 0.5,
                                                  fx.playlist, fx.content, fx.config);
  EXPECT_GT(low.compute_cycles, 0.0);
}

TEST(PredictGroupDemand, OnAirTimeGrowsWithGroupSize) {
  DemandFixture fx;
  const ResourceDemand small = predict_group_demand(2, fx.mix, fx.swiping, 2.0,
                                                    fx.playlist, fx.content, fx.config);
  const ResourceDemand large = predict_group_demand(50, fx.mix, fx.swiping, 2.0,
                                                    fx.playlist, fx.content, fx.config);
  // Larger groups keep clips on air longer (E[max watch] grows), so fewer
  // clips play but each transmits longer; total bits must grow.
  EXPECT_GT(large.transmitted_bits, small.transmitted_bits * 0.99);
  EXPECT_LE(large.distinct_videos, small.distinct_videos + 1e-9);
}

TEST(PredictGroupDemand, MixFallsBackToPreferenceWhenPlaylistEmpty) {
  DemandFixture fx;
  fx.playlist.fill(0);
  PreferenceVector news{};
  news[static_cast<std::size_t>(Category::kNews)] = 1.0;
  const ResourceDemand d = predict_group_demand(5, news, fx.swiping, 2.0,
                                                fx.playlist, fx.content, fx.config);
  EXPECT_GT(d.radio_hz, 0.0);
}

TEST(PredictGroupDemand, InvalidInputsRejected) {
  DemandFixture fx;
  EXPECT_THROW(predict_group_demand(0, fx.mix, fx.swiping, 2.0, fx.playlist,
                                    fx.content, fx.config),
               PreconditionError);
}

TEST(PredictGroupDemand, ForecastOverloadMatchesScalarForSingleBin) {
  DemandFixture fx;
  GroupChannelForecast forecast;
  forecast.efficiency = 2.0;
  forecast.min_series = {2.0};
  const ResourceDemand via_forecast = predict_group_demand(
      10, fx.mix, fx.swiping, forecast, fx.playlist, fx.content, fx.config);
  const ResourceDemand via_scalar = predict_group_demand(
      10, fx.mix, fx.swiping, 2.0, fx.playlist, fx.content, fx.config);
  EXPECT_DOUBLE_EQ(via_forecast.radio_hz, via_scalar.radio_hz);
  EXPECT_DOUBLE_EQ(via_forecast.compute_cycles, via_scalar.compute_cycles);
  EXPECT_EQ(via_forecast.rung, via_scalar.rung);
}

TEST(PredictGroupDemand, RungMixturePredictsPartialTranscode) {
  DemandFixture fx;
  fx.content.ladder_scale_quantiles = {1.0};
  fx.config.group_bandwidth_budget_hz = 1e6;
  // Half the bins at the top rung (eff 5 → 5000 kbps budget), half at a
  // lower rung (eff 2 → 2000 kbps): compute demand is the lower-rung share.
  GroupChannelForecast mixed;
  mixed.min_series = {5.0, 5.0, 2.0, 2.0};
  mixed.efficiency = 4.0 / (1.0 / 5.0 + 1.0 / 5.0 + 1.0 / 2.0 + 1.0 / 2.0);
  const ResourceDemand d = predict_group_demand(10, fx.mix, fx.swiping, mixed,
                                                fx.playlist, fx.content, fx.config);
  EXPECT_GT(d.compute_cycles, 0.0);
  // Pure top-rung forecast has zero compute; pure low has full. Mixed sits
  // strictly between.
  GroupChannelForecast top;
  top.min_series = {5.0, 5.0};
  top.efficiency = 5.0;
  GroupChannelForecast low;
  low.min_series = {2.0, 2.0};
  low.efficiency = 2.0;
  const ResourceDemand d_top = predict_group_demand(10, fx.mix, fx.swiping, top,
                                                    fx.playlist, fx.content, fx.config);
  const ResourceDemand d_low = predict_group_demand(10, fx.mix, fx.swiping, low,
                                                    fx.playlist, fx.content, fx.config);
  EXPECT_DOUBLE_EQ(d_top.compute_cycles, 0.0);
  EXPECT_GT(d_low.compute_cycles, d.compute_cycles);
}

TEST(PredictGroupDemand, LadderScaleQuantilesSoftenRungBoundaries) {
  DemandFixture fx;
  fx.config.group_bandwidth_budget_hz = 1e6;
  GroupChannelForecast forecast;
  // Budget sits exactly at the top rung (4300 kbps at eff 4.3): without
  // jitter everything lands on the top rung; with the catalog's scale
  // spread some videos need transcoding.
  forecast.min_series = {4.3};
  forecast.efficiency = 4.3;
  fx.content.ladder_scale_quantiles = {1.0};
  const ResourceDemand sharp = predict_group_demand(10, fx.mix, fx.swiping, forecast,
                                                    fx.playlist, fx.content, fx.config);
  fx.content.ladder_scale_quantiles = {0.9, 1.0, 1.1};
  const ResourceDemand soft = predict_group_demand(10, fx.mix, fx.swiping, forecast,
                                                   fx.playlist, fx.content, fx.config);
  EXPECT_DOUBLE_EQ(sharp.compute_cycles, 0.0);
  EXPECT_GT(soft.compute_cycles, 0.0);
}

TEST(PredictGroupDemand, EmptyForecastRejected) {
  DemandFixture fx;
  GroupChannelForecast empty;
  empty.min_series.clear();
  EXPECT_THROW(predict_group_demand(10, fx.mix, fx.swiping, empty, fx.playlist,
                                    fx.content, fx.config),
               PreconditionError);
}

TEST(ResourceDemand, AccumulationOperator) {
  ResourceDemand a;
  a.radio_hz = 1.0;
  a.compute_cycles = 10.0;
  a.rung = 2;
  ResourceDemand b;
  b.radio_hz = 2.0;
  b.compute_cycles = 5.0;
  b.rung = 1;
  a += b;
  EXPECT_DOUBLE_EQ(a.radio_hz, 3.0);
  EXPECT_DOUBLE_EQ(a.compute_cycles, 15.0);
  EXPECT_EQ(a.rung, 2u);
}

// ----------------------------------------------------------- series baselines

TEST(LastValueSeries, ForecastsPrevious) {
  LastValueSeries s;
  EXPECT_DOUBLE_EQ(s.forecast(3.0), 3.0);
  s.observe(10.0);
  EXPECT_DOUBLE_EQ(s.forecast(0.0), 10.0);
  s.observe(20.0);
  EXPECT_DOUBLE_EQ(s.forecast(0.0), 20.0);
}

TEST(EwmaSeries, Smooths) {
  EwmaSeries s(0.5);
  s.observe(0.0);
  s.observe(10.0);
  EXPECT_DOUBLE_EQ(s.forecast(0.0), 5.0);
}

TEST(MovingAverageSeries, SlidingWindow) {
  MovingAverageSeries s(3);
  s.observe(1.0);
  s.observe(2.0);
  s.observe(3.0);
  EXPECT_DOUBLE_EQ(s.forecast(0.0), 2.0);
  s.observe(7.0);  // window now {2,3,7}
  EXPECT_DOUBLE_EQ(s.forecast(0.0), 4.0);
}

TEST(Ar1Series, LearnsLinearRecursion) {
  // x_{t+1} = 0.8 x_t + 2; fixed point 10.
  Ar1Series s(12);
  double x = 0.0;
  for (int i = 0; i < 12; ++i) {
    s.observe(x);
    x = 0.8 * x + 2.0;
  }
  const double forecast = s.forecast(0.0);
  EXPECT_NEAR(forecast, x, 0.2);
}

TEST(Ar1Series, ShortHistoryFallsBackToLast) {
  Ar1Series s(10);
  s.observe(5.0);
  EXPECT_DOUBLE_EQ(s.forecast(0.0), 5.0);
  s.observe(6.0);
  EXPECT_DOUBLE_EQ(s.forecast(0.0), 6.0);
}

TEST(SeriesBaselines, NamesDistinct) {
  LastValueSeries a;
  EwmaSeries b;
  MovingAverageSeries c;
  Ar1Series d;
  EXPECT_NE(a.name(), b.name());
  EXPECT_NE(b.name(), c.name());
  EXPECT_NE(c.name(), d.name());
}

}  // namespace
