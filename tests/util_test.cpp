// Unit tests for dtmsv::util — RNG determinism and distribution moments,
// streaming statistics, histograms, CSV round-trips, table rendering,
// clock arithmetic, and error-check macros.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/clock.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace dtmsv::util;

// ---------------------------------------------------------------- RNG basics

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() != b.next()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, ForkIsDeterministicAndDecorrelated) {
  Rng parent1(7);
  Rng parent2(7);
  Rng childA = parent1.fork(0);
  Rng childA2 = parent2.fork(0);
  EXPECT_EQ(childA.next(), childA2.next());

  Rng parent3(7);
  Rng c0 = parent3.fork(0);
  Rng parent4(7);
  Rng c1 = parent4.fork(1);
  EXPECT_NE(c0.next(), c1.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(9);
  std::array<int, 5> counts{};
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(0, 4);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 4);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 800);  // ~1000 expected each
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(7, 7), 7);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(2024);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(rng.normal());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(rng.normal(10.0, 3.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(77);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(rng.exponential(2.0));
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.exponential(-1.0), PreconditionError);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, GammaMoments) {
  Rng rng(13);
  RunningStats stats;
  const double shape = 3.0;
  const double scale = 2.0;
  for (int i = 0; i < 50000; ++i) {
    stats.add(rng.gamma(shape, scale));
  }
  EXPECT_NEAR(stats.mean(), shape * scale, 0.15);
  EXPECT_NEAR(stats.variance(), shape * scale * scale, 0.8);
}

TEST(Rng, GammaSmallShape) {
  Rng rng(14);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    const double g = rng.gamma(0.5, 1.0);
    ASSERT_GE(g, 0.0);
    stats.add(g);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.05);
}

TEST(Rng, BetaMeanAndRange) {
  Rng rng(15);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double b = rng.beta(2.0, 6.0);
    ASSERT_GE(b, 0.0);
    ASSERT_LE(b, 1.0);
    stats.add(b);
  }
  EXPECT_NEAR(stats.mean(), 0.25, 0.02);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(16);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.categorical(weights)];
  }
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.6, 0.02);
}

TEST(Rng, CategoricalZeroWeightNeverChosen) {
  Rng rng(17);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.categorical(weights), 1u);
  }
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(1);
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(rng.categorical(negative), PreconditionError);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(zeros), PreconditionError);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(18);
  const std::vector<double> alpha = {0.5, 1.0, 2.0, 4.0};
  for (int i = 0; i < 100; ++i) {
    const auto p = rng.dirichlet(alpha);
    ASSERT_EQ(p.size(), alpha.size());
    const double total = std::accumulate(p.begin(), p.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (const double v : p) {
      EXPECT_GE(v, 0.0);
    }
  }
}

TEST(Rng, DirichletMeansTrackAlpha) {
  Rng rng(19);
  const std::vector<double> alpha = {1.0, 3.0};
  double mean0 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    mean0 += rng.dirichlet(alpha)[0];
  }
  EXPECT_NEAR(mean0 / n, 0.25, 0.01);
}

TEST(Rng, ZipfRankZeroMostLikely) {
  Rng rng(20);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.zipf(10, 1.0)];
  }
  for (std::size_t k = 1; k < counts.size(); ++k) {
    EXPECT_GE(counts[0], counts[k]);
  }
}

TEST(Rng, ZipfExponentZeroIsUniform) {
  Rng rng(21);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.zipf(4, 0.0)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c / 40000.0, 0.25, 0.02);
  }
}

TEST(Rng, SampleWithoutReplacementUnique) {
  Rng rng(22);
  const auto sample = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::vector<bool> seen(100, false);
  for (const std::size_t s : sample) {
    ASSERT_LT(s, 100u);
    EXPECT_FALSE(seen[s]);
    seen[s] = true;
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(23);
  const auto sample = rng.sample_without_replacement(5, 5);
  auto sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sorted[i], i);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(24);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(ZipfDistribution, PmfSumsToOne) {
  ZipfDistribution dist(20, 0.9);
  double total = 0.0;
  for (std::size_t k = 0; k < dist.size(); ++k) {
    total += dist.pmf(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfDistribution, PmfDecreasing) {
  ZipfDistribution dist(15, 1.1);
  for (std::size_t k = 1; k < dist.size(); ++k) {
    EXPECT_LE(dist.pmf(k), dist.pmf(k - 1) + 1e-12);
  }
}

TEST(ZipfDistribution, SampleMatchesPmf) {
  ZipfDistribution dist(5, 1.0);
  Rng rng(25);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[dist.sample(rng)];
  }
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), dist.pmf(k), 0.01);
  }
}

// ------------------------------------------------------------------- Stats

TEST(RunningStats, MeanVarianceAgainstClosedForm) {
  RunningStats stats;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double x : xs) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EmptyThrowsOnMean) {
  RunningStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_THROW(stats.mean(), PreconditionError);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  Rng rng(31);
  RunningStats combined;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    combined.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), combined.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps into bin 0
  h.add(0.5);    // bin 0
  h.add(5.0);    // bin 2
  h.add(9.99);   // bin 4
  h.add(10.0);   // clamps into bin 4
  h.add(99.0);   // clamps into bin 4
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.count_at(0), 2u);
  EXPECT_EQ(h.count_at(2), 1u);
  EXPECT_EQ(h.count_at(4), 3u);
  EXPECT_NEAR(h.density(4), 0.5, 1e-12);
}

TEST(Histogram, DensitiesSumToOne) {
  Histogram h(0.0, 1.0, 8);
  Rng rng(32);
  for (int i = 0; i < 1000; ++i) {
    h.add(rng.uniform());
  }
  const auto d = h.densities();
  EXPECT_NEAR(std::accumulate(d.begin(), d.end(), 0.0), 1.0, 1e-9);
}

TEST(Histogram, EmptyDensitiesUniform) {
  Histogram h(0.0, 1.0, 4);
  const auto d = h.densities();
  for (const double v : d) {
    EXPECT_DOUBLE_EQ(v, 0.25);
  }
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Ewma, FirstValueInitialises) {
  Ewma e(0.5);
  EXPECT_FALSE(e.has_value());
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, SmoothingFollowsFormula) {
  Ewma e(0.25);
  e.add(0.0);
  e.add(4.0);
  EXPECT_DOUBLE_EQ(e.value(), 1.0);
  e.add(1.0);
  EXPECT_DOUBLE_EQ(e.value(), 1.0);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), PreconditionError);
  EXPECT_THROW(Ewma(1.5), PreconditionError);
}

TEST(FreeStats, MeanVarianceStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(FreeStats, PercentileInterpolates) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(FreeStats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(FreeStats, PearsonZeroVariance) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(FreeStats, MapeBasic) {
  const std::vector<double> actual = {100.0, 200.0};
  const std::vector<double> predicted = {90.0, 220.0};
  const auto err = mape(actual, predicted);
  ASSERT_TRUE(err.has_value());
  EXPECT_NEAR(*err, 0.1, 1e-12);
}

TEST(FreeStats, MapeSkipsZeroActuals) {
  const std::vector<double> actual = {0.0, 100.0};
  const std::vector<double> predicted = {5.0, 110.0};
  const auto err = mape(actual, predicted);
  ASSERT_TRUE(err.has_value());
  EXPECT_NEAR(*err, 0.1, 1e-12);
}

TEST(FreeStats, MapeAllZeroActualsIsNullopt) {
  const std::vector<double> actual = {0.0, 0.0};
  const std::vector<double> predicted = {1.0, 2.0};
  EXPECT_FALSE(mape(actual, predicted).has_value());
}

TEST(FreeStats, PredictionAccuracyClampsAtZero) {
  const std::vector<double> actual = {10.0};
  const std::vector<double> predicted = {100.0};
  const auto acc = prediction_accuracy(actual, predicted);
  ASSERT_TRUE(acc.has_value());
  EXPECT_DOUBLE_EQ(*acc, 0.0);
}

TEST(FreeStats, PredictionAccuracyPerfect) {
  const std::vector<double> actual = {10.0, 20.0};
  const auto acc = prediction_accuracy(actual, actual);
  ASSERT_TRUE(acc.has_value());
  EXPECT_DOUBLE_EQ(*acc, 1.0);
}

TEST(FreeStats, VolumeWeightedAccuracyBasic) {
  const std::vector<double> actual = {100.0, 0.0, 50.0};
  const std::vector<double> predicted = {90.0, 10.0, 55.0};
  // Σ|err| = 25, Σactual = 150 → accuracy = 1 - 1/6.
  const auto acc = volume_weighted_accuracy(actual, predicted);
  ASSERT_TRUE(acc.has_value());
  EXPECT_NEAR(*acc, 1.0 - 25.0 / 150.0, 1e-12);
}

TEST(FreeStats, VolumeWeightedAccuracyToleratesZeroActuals) {
  // MAPE is undefined here; the volume-weighted form is not.
  const std::vector<double> actual = {0.0, 0.0, 100.0};
  const std::vector<double> predicted = {5.0, 5.0, 100.0};
  const auto acc = volume_weighted_accuracy(actual, predicted);
  ASSERT_TRUE(acc.has_value());
  EXPECT_NEAR(*acc, 0.9, 1e-12);
}

TEST(FreeStats, VolumeWeightedAccuracyAllZeroIsNullopt) {
  const std::vector<double> actual = {0.0, 0.0};
  const std::vector<double> predicted = {1.0, 1.0};
  EXPECT_FALSE(volume_weighted_accuracy(actual, predicted).has_value());
}

TEST(FreeStats, VolumeWeightedAccuracyClampsAtZero) {
  const std::vector<double> actual = {10.0};
  const std::vector<double> predicted = {100.0};
  const auto acc = volume_weighted_accuracy(actual, predicted);
  ASSERT_TRUE(acc.has_value());
  EXPECT_DOUBLE_EQ(*acc, 0.0);
}

TEST(FreeStats, RmseKnownValue) {
  const std::vector<double> actual = {1.0, 2.0, 3.0};
  const std::vector<double> predicted = {2.0, 2.0, 5.0};
  EXPECT_NEAR(rmse(actual, predicted), std::sqrt(5.0 / 3.0), 1e-12);
}

// --------------------------------------------------------------------- CSV

TEST(Csv, WriteReadRoundTrip) {
  CsvWriter writer;
  writer.set_header({"a", "b", "c"});
  writer.add_row({"1", "hello", "2.5"});
  writer.add_row({"2", "with,comma", "3.5"});
  writer.add_row({"3", "with \"quotes\"", "4.5"});

  const auto reader = CsvReader::parse(writer.to_string());
  ASSERT_EQ(reader.row_count(), 3u);
  EXPECT_EQ(reader.header().at(1), "b");
  EXPECT_EQ(reader.cell(1, 1), "with,comma");
  EXPECT_EQ(reader.cell(2, 1), "with \"quotes\"");
  EXPECT_DOUBLE_EQ(reader.cell_double(0, 2), 2.5);
}

TEST(Csv, DoubleRowsRoundTripPrecision) {
  CsvWriter writer;
  writer.set_header({"x", "y"});
  writer.add_row(std::vector<double>{1.0 / 3.0, 2.718281828459045});
  const auto reader = CsvReader::parse(writer.to_string());
  EXPECT_DOUBLE_EQ(reader.cell_double(0, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(reader.cell_double(0, 1), 2.718281828459045);
}

TEST(Csv, ColumnLookup) {
  CsvWriter writer;
  writer.set_header({"alpha", "beta"});
  writer.add_row({"1", "2"});
  const auto reader = CsvReader::parse(writer.to_string());
  EXPECT_EQ(reader.column("beta"), 1u);
  EXPECT_THROW(reader.column("gamma"), RuntimeError);
}

TEST(Csv, QuotedNewlinesSurvive) {
  const std::string text = "h1,h2\n\"line1\nline2\",x\n";
  const auto reader = CsvReader::parse(text);
  ASSERT_EQ(reader.row_count(), 1u);
  EXPECT_EQ(reader.cell(0, 0), "line1\nline2");
}

TEST(Csv, CrlfTolerated) {
  const std::string text = "a,b\r\n1,2\r\n";
  const auto reader = CsvReader::parse(text);
  ASSERT_EQ(reader.row_count(), 1u);
  EXPECT_EQ(reader.cell(0, 1), "2");
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(CsvReader::parse("a\n\"broken"), RuntimeError);
}

TEST(Csv, NonNumericCellThrows) {
  const auto reader = CsvReader::parse("a\nxyz\n");
  EXPECT_THROW(reader.cell_double(0, 0), RuntimeError);
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvWriter writer;
  writer.set_header({"a", "b"});
  EXPECT_THROW(writer.add_row({"only-one"}), PreconditionError);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(CsvReader::read_file("/nonexistent/definitely/missing.csv"),
               RuntimeError);
}

// -------------------------------------------------------------------- Table

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| longer-name "), std::string::npos);
  // All lines share the same width.
  std::size_t first_len = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    if (next == std::string::npos) {
      break;
    }
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Table, RejectsWrongRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), PreconditionError);
}

TEST(Table, FixedAndPercentFormatting) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(percent(0.9504, 2), "95.04%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

// -------------------------------------------------------------------- Clock

TEST(Clock, IntervalArithmetic) {
  EXPECT_EQ(interval_of(0.0, 300.0), 0);
  EXPECT_EQ(interval_of(299.9, 300.0), 0);
  EXPECT_EQ(interval_of(300.0, 300.0), 1);
  EXPECT_DOUBLE_EQ(interval_start(2, 300.0), 600.0);
}

// -------------------------------------------------------------------- Error

TEST(Error, ExpectsMacroThrowsWithContext) {
  try {
    DTMSV_EXPECTS_MSG(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
  }
}

TEST(Error, EnsuresMacroThrowsInvariant) {
  EXPECT_THROW(DTMSV_ENSURES(false), InvariantError);
}

}  // namespace
