// Integration tests: the full DT-assisted pipeline (mobility -> channel ->
// group viewing -> UDT collection -> CNN compression -> DDQN+K-means++ ->
// abstraction -> demand prediction) run end-to-end on a reduced scenario.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "core/simulation.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace {

using namespace dtmsv;
using core::EpochReport;
using core::SchemeConfig;
using core::Simulation;

/// Reduced-size configuration so the integration suite stays fast.
SchemeConfig fast_config(std::uint64_t seed = 42) {
  SchemeConfig cfg;
  cfg.seed = seed;
  cfg.user_count = 40;
  cfg.interval_s = 60.0;
  cfg.tick_s = 1.0;
  cfg.warmup_intervals = 1;
  cfg.feature_window_s = 120.0;
  cfg.feature_timesteps = 16;
  cfg.session.engagement.catalog.videos_per_category = 40;
  cfg.compressor.epochs_per_fit = 1;
  cfg.grouping.k_min = 2;
  cfg.grouping.k_max = 6;
  cfg.grouping.ddqn.hidden = {32};
  cfg.grouping.kmeans.restarts = 2;
  cfg.demand.interval_s = cfg.interval_s;
  cfg.recommender.playlist_size = 24;
  return cfg;
}

TEST(Simulation, WarmupThenGroups) {
  Simulation sim(fast_config());
  const EpochReport r0 = sim.run_interval();
  EXPECT_EQ(r0.interval, 0);
  EXPECT_FALSE(r0.grouped);          // warm-up interval: individual sessions
  EXPECT_FALSE(r0.has_prediction);
  EXPECT_GT(r0.k, 0u);               // grouping decided at interval end
  EXPECT_GT(sim.group_count(), 0u);

  const EpochReport r1 = sim.run_interval();
  EXPECT_TRUE(r1.grouped);
  EXPECT_TRUE(r1.has_prediction);
  EXPECT_GT(r1.actual_radio_hz_total, 0.0);
  EXPECT_GT(r1.predicted_radio_hz_total, 0.0);
}

TEST(Simulation, GroupsPartitionUsers) {
  Simulation sim(fast_config(7));
  sim.run(3);
  std::set<std::size_t> seen;
  for (std::size_t g = 0; g < sim.group_count(); ++g) {
    for (const std::size_t u : sim.group_members(g)) {
      EXPECT_TRUE(seen.insert(u).second) << "user " << u << " in two groups";
    }
  }
  EXPECT_EQ(seen.size(), sim.config().user_count);
}

TEST(Simulation, DeterministicPerSeed) {
  Simulation a(fast_config(123));
  Simulation b(fast_config(123));
  const auto ra = a.run(3);
  const auto rb = b.run(3);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].k, rb[i].k);
    EXPECT_DOUBLE_EQ(ra[i].actual_radio_hz_total, rb[i].actual_radio_hz_total);
    EXPECT_DOUBLE_EQ(ra[i].predicted_radio_hz_total, rb[i].predicted_radio_hz_total);
    EXPECT_DOUBLE_EQ(ra[i].silhouette, rb[i].silhouette);
  }
}

TEST(Simulation, DifferentSeedsDiverge) {
  Simulation a(fast_config(1));
  Simulation b(fast_config(2));
  const auto ra = a.run(2);
  const auto rb = b.run(2);
  EXPECT_NE(ra[1].actual_radio_hz_total, rb[1].actual_radio_hz_total);
}

TEST(Simulation, ReportInternalConsistency) {
  Simulation sim(fast_config(9));
  const auto reports = sim.run(4);
  for (const auto& r : reports) {
    if (!r.grouped) {
      continue;
    }
    double pred_sum = 0.0;
    double act_sum = 0.0;
    std::size_t members = 0;
    for (const auto& g : r.groups) {
      EXPECT_GT(g.size, 0u);
      EXPECT_GE(g.predicted_radio_hz, 0.0);
      EXPECT_GE(g.actual_radio_hz, 0.0);
      EXPECT_GE(g.predicted_efficiency, sim.config().demand.efficiency_floor - 1e-9);
      EXPECT_GT(g.videos_played, 0u);
      pred_sum += g.predicted_radio_hz;
      act_sum += g.actual_radio_hz;
      members += g.size;
    }
    EXPECT_EQ(members, sim.config().user_count);
    EXPECT_NEAR(pred_sum, r.predicted_radio_hz_total, 1e-9);
    EXPECT_NEAR(act_sum, r.actual_radio_hz_total, 1e-9);
    if (r.actual_radio_hz_total > 0.0) {
      const double err = std::abs(r.predicted_radio_hz_total - r.actual_radio_hz_total) /
                         r.actual_radio_hz_total;
      EXPECT_NEAR(r.radio_error, err, 1e-9);
    }
  }
}

TEST(Simulation, PredictionTracksActualAfterLearning) {
  SchemeConfig cfg = fast_config(11);
  Simulation sim(cfg);
  const auto reports = sim.run(8);
  // Average radio accuracy over the last 5 grouped intervals must beat a
  // loose floor (full calibration is validated in the bench harness).
  std::vector<double> pred;
  std::vector<double> act;
  for (std::size_t i = 3; i < reports.size(); ++i) {
    if (reports[i].has_prediction) {
      pred.push_back(reports[i].predicted_radio_hz_total);
      act.push_back(reports[i].actual_radio_hz_total);
    }
  }
  ASSERT_GE(pred.size(), 3u);
  const auto acc = util::prediction_accuracy(act, pred);
  ASSERT_TRUE(acc.has_value());
  EXPECT_GT(*acc, 0.5) << "end-to-end prediction grossly off";
}

TEST(Simulation, CollectorReceivesAllAttributeKinds) {
  Simulation sim(fast_config(13));
  sim.run(2);
  const auto& stats = sim.collector_stats();
  EXPECT_GT(stats.channel_reports, 0u);
  EXPECT_GT(stats.location_reports, 0u);
  EXPECT_GT(stats.watch_reports, 0u);
  EXPECT_GT(stats.preference_reports, 0u);
}

TEST(Simulation, TwinsHoldFreshData) {
  Simulation sim(fast_config(15));
  sim.run(2);
  const auto& twins = sim.twins();
  std::size_t with_channel = 0;
  std::size_t with_watch = 0;
  for (std::size_t u = 0; u < twins.user_count(); ++u) {
    if (twins.twin(u).channel().staleness(sim.now()) < 5.0) {
      ++with_channel;
    }
    if (!twins.twin(u).watch().empty()) {
      ++with_watch;
    }
  }
  EXPECT_EQ(with_channel, twins.user_count());
  EXPECT_GT(with_watch, twins.user_count() / 2);
}

TEST(Simulation, SwipingDistributionsAreProper) {
  Simulation sim(fast_config(17));
  sim.run(3);
  ASSERT_GT(sim.group_count(), 0u);
  for (std::size_t g = 0; g < sim.group_count(); ++g) {
    const auto& dist = sim.group_swiping(g);
    double prev = -1.0;
    for (double t = 0.0; t <= 1.0; t += 0.1) {
      const double cdf =
          dist.cumulative_swipe_probability(video::Category::kNews, t);
      EXPECT_GE(cdf, prev - 1e-12);
      EXPECT_GE(cdf, 0.0);
      EXPECT_LE(cdf, 1.0);
      prev = cdf;
    }
  }
}

TEST(Simulation, GroupPreferencesNormalised) {
  Simulation sim(fast_config(19));
  sim.run(3);
  for (std::size_t g = 0; g < sim.group_count(); ++g) {
    const auto& pref = sim.group_preference(g);
    double total = 0.0;
    for (const double p : pref) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST(Simulation, MostPreferringGroupIsArgmax) {
  Simulation sim(fast_config(21));
  sim.run(3);
  const std::size_t g = sim.most_preferring_group(video::Category::kNews);
  const double w =
      sim.group_preference(g)[static_cast<std::size_t>(video::Category::kNews)];
  for (std::size_t other = 0; other < sim.group_count(); ++other) {
    EXPECT_GE(w + 1e-12,
              sim.group_preference(other)[static_cast<std::size_t>(
                  video::Category::kNews)]);
  }
}

TEST(Simulation, RecommendationsServeGroupTaste) {
  Simulation sim(fast_config(23));
  sim.run(4);
  for (std::size_t g = 0; g < sim.group_count(); ++g) {
    const auto& rec = sim.group_recommendation(g);
    EXPECT_EQ(rec.playlist.size(), sim.config().recommender.playlist_size);
    // Top preferred category gets the largest quota.
    const auto& pref = sim.group_preference(g);
    const std::size_t top = behavior::top_category(pref);
    for (std::size_t c = 0; c < video::kCategoryCount; ++c) {
      EXPECT_GE(rec.per_category_counts[top], rec.per_category_counts[c]);
    }
  }
}

// -------------------------------------------- alternative pipeline variants

TEST(SimulationVariants, RawWindowFeatureStage) {
  SchemeConfig cfg = fast_config(25);
  cfg.feature_stage = "raw";
  Simulation sim(cfg);
  const auto reports = sim.run(3);
  EXPECT_TRUE(reports[2].grouped);
  EXPECT_EQ(reports[2].reconstruction_loss, 0.0f);  // no CNN in this mode
}

TEST(SimulationVariants, SummaryStatsFeatureStage) {
  SchemeConfig cfg = fast_config(27);
  cfg.feature_stage = "summary";
  Simulation sim(cfg);
  const auto reports = sim.run(3);
  EXPECT_TRUE(reports[2].grouped);
}

TEST(SimulationVariants, FixedKMode) {
  SchemeConfig cfg = fast_config(29);
  cfg.grouping_stage = "fixed";
  cfg.fixed_k = 3;
  Simulation sim(cfg);
  const auto reports = sim.run(3);
  EXPECT_EQ(reports[2].k, 3u);
  EXPECT_EQ(sim.group_count(), 3u);
}

TEST(SimulationVariants, RandomKStage) {
  SchemeConfig cfg = fast_config(31);
  cfg.grouping_stage = "random";
  Simulation sim(cfg);
  const auto reports = sim.run(3);
  EXPECT_GE(reports[2].k, cfg.grouping.k_min);
  EXPECT_LE(reports[2].k, cfg.grouping.k_max);
}

TEST(SimulationVariants, ElbowKStage) {
  SchemeConfig cfg = fast_config(33);
  cfg.grouping_stage = "elbow";
  cfg.user_count = 24;  // keep the elbow sweep cheap
  Simulation sim(cfg);
  const auto reports = sim.run(3);
  EXPECT_TRUE(reports[2].grouped);
}

TEST(SimulationVariants, PerMemberDemandStages) {
  for (const std::string key : {"last_value", "ewma", "linear_trend", "mean"}) {
    SchemeConfig cfg = fast_config(35);
    cfg.user_count = 20;
    cfg.demand_stage = key;
    Simulation sim(cfg);
    const auto reports = sim.run(2);
    EXPECT_TRUE(reports[1].grouped);
    EXPECT_GT(reports[1].predicted_radio_hz_total, 0.0);
  }
}

// -------------------------------------------------------- failure injection

TEST(Simulation, ModelSaveLoadRoundTrip) {
  // Train one scheme, transplant its models into a fresh one: both must
  // produce identical grouping decisions on the same twin state.
  SchemeConfig cfg = fast_config(51);
  Simulation trained(cfg);
  trained.run(3);

  std::stringstream models;
  trained.save_models(models);

  Simulation fresh(cfg);
  fresh.load_models(models);
  // Run both one more interval; identical seeds + identical models keep the
  // trajectories in lock-step.
  const EpochReport a = trained.run_interval();
  // The fresh sim lags three intervals of environment state, so we cannot
  // compare report values — instead verify the loaded models are usable and
  // the pipeline runs.
  const EpochReport b = fresh.run_interval();
  EXPECT_GE(a.k, cfg.grouping.k_min);
  EXPECT_GE(b.k, 0u);
}

TEST(Simulation, ModelLoadRejectsWrongConfiguration) {
  SchemeConfig cnn_cfg = fast_config(53);
  Simulation with_cnn(cnn_cfg);
  std::stringstream models;
  with_cnn.save_models(models);

  SchemeConfig raw_cfg = fast_config(53);
  raw_cfg.feature_stage = "raw";  // no CNN
  Simulation without_cnn(raw_cfg);
  EXPECT_THROW(without_cnn.load_models(models), util::RuntimeError);
}

TEST(Simulation, ModelLoadRejectsGarbage) {
  Simulation sim(fast_config(55));
  std::stringstream garbage("not a model file");
  EXPECT_THROW(sim.load_models(garbage), util::RuntimeError);
}

TEST(FailureInjection, CollectionLossStillRuns) {
  SchemeConfig cfg = fast_config(37);
  cfg.collection.report_loss_prob = 0.5;
  Simulation sim(cfg);
  const auto reports = sim.run(3);
  EXPECT_TRUE(reports[2].grouped);
  EXPECT_GT(sim.collector_stats().dropped_reports, 0u);
  EXPECT_GT(reports[2].actual_radio_hz_total, 0.0);
}

TEST(FailureInjection, CollectionLatencyStillRuns) {
  SchemeConfig cfg = fast_config(39);
  cfg.collection.latency_s = 10.0;
  Simulation sim(cfg);
  const auto reports = sim.run(3);
  EXPECT_TRUE(reports[2].grouped);
}

TEST(FailureInjection, SingleUserPopulation) {
  SchemeConfig cfg = fast_config(41);
  cfg.user_count = 1;
  cfg.grouping.k_min = 1;
  cfg.grouping.k_max = 2;
  Simulation sim(cfg);
  const auto reports = sim.run(3);
  EXPECT_TRUE(reports[2].grouped);
  EXPECT_EQ(sim.group_count(), 1u);
  ASSERT_EQ(sim.group_members(0).size(), 1u);
}

TEST(Simulation, UnicastCounterfactualExceedsMulticast) {
  Simulation sim(fast_config(43));
  const auto reports = sim.run(4);
  for (const auto& r : reports) {
    if (!r.has_prediction) {
      continue;
    }
    EXPECT_GT(r.unicast_radio_hz_total, 0.0);
    // Serving every member a private stream can never be cheaper than one
    // shared multicast stream of the same content.
    EXPECT_GE(r.unicast_radio_hz_total, r.actual_radio_hz_total * 0.99);
    for (const auto& g : r.groups) {
      if (g.size > 1) {
        EXPECT_GE(g.unicast_radio_hz, 0.0);
      }
    }
  }
}

TEST(Simulation, AffinityDriftChangesGroundTruth) {
  SchemeConfig cfg = fast_config(45);
  cfg.affinity_drift_rate = 0.5;
  Simulation sim(cfg);
  const auto before = sim.true_affinities();
  sim.run(3);
  const auto& after = sim.true_affinities();
  double moved = 0.0;
  for (std::size_t u = 0; u < before.size(); ++u) {
    for (std::size_t c = 0; c < before[u].size(); ++c) {
      moved += std::abs(before[u][c] - after[u][c]);
    }
  }
  EXPECT_GT(moved, 1.0) << "drift rate 0.5 over 3 intervals must move tastes";
  // Affinities remain probability vectors.
  for (const auto& a : after) {
    double total = 0.0;
    for (const double v : a) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Simulation, ZeroDriftKeepsAffinitiesFixed) {
  SchemeConfig cfg = fast_config(47);
  cfg.affinity_drift_rate = 0.0;
  Simulation sim(cfg);
  const auto before = sim.true_affinities();
  sim.run(3);
  const auto& after = sim.true_affinities();
  for (std::size_t u = 0; u < before.size(); ++u) {
    for (std::size_t c = 0; c < before[u].size(); ++c) {
      EXPECT_DOUBLE_EQ(before[u][c], after[u][c]);
    }
  }
}

TEST(Simulation, PipelineSurvivesTasteDrift) {
  SchemeConfig cfg = fast_config(49);
  cfg.affinity_drift_rate = 0.2;
  Simulation sim(cfg);
  const auto reports = sim.run(6);
  std::vector<double> pred;
  std::vector<double> act;
  for (const auto& r : reports) {
    if (r.has_prediction) {
      pred.push_back(r.predicted_radio_hz_total);
      act.push_back(r.actual_radio_hz_total);
    }
  }
  ASSERT_GE(pred.size(), 3u);
  const auto acc = util::prediction_accuracy(act, pred);
  ASSERT_TRUE(acc.has_value());
  EXPECT_GT(*acc, 0.4) << "drifting tastes should degrade gracefully, not break";
}

TEST(Simulation, TickCountsExactOverLongHorizon) {
  // Regression: ticks used to be scheduled by accumulating now_ += tick_s
  // in floating point against an epsilon-guarded boundary, so tick counts
  // drifted after thousands of intervals at sub-second tick_s. Ticks are
  // now indexed within the interval and boundaries are exact.
  SchemeConfig cfg = fast_config(61);
  cfg.user_count = 2;
  cfg.interval_s = 5.0;
  cfg.tick_s = 0.1;
  cfg.warmup_intervals = 1000000;  // stay in warm-up: no clustering cost
  cfg.session.engagement.catalog.videos_per_category = 8;
  Simulation sim(cfg);
  const std::size_t intervals = 200;
  sim.run(intervals);
  EXPECT_EQ(sim.tick_count(), intervals * 50u);
  // Interval boundaries land exactly on their nominal times — bitwise.
  EXPECT_EQ(sim.now(), static_cast<double>(intervals) * cfg.interval_s);
}

TEST(Simulation, DriftToggleLeavesOtherStreamsUntouched) {
  // Regression: drift targets used to be drawn from the playback stream,
  // so merely enabling affinity_drift_rate perturbed group playback and
  // broke A/B comparability across scenarios. With a vanishing drift rate
  // (every nudge is absorbed by double rounding) the trajectories must now
  // be bit-identical to drift disabled — through grouping and playback.
  SchemeConfig off = fast_config(63);
  SchemeConfig on = off;
  on.affinity_drift_rate = 1e-300;  // draws drift targets, moves nothing
  Simulation a(off);
  Simulation b(on);
  const auto ra = a.run(4);
  const auto rb = b.run(4);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].k, rb[i].k);
    EXPECT_DOUBLE_EQ(ra[i].silhouette, rb[i].silhouette);
    EXPECT_DOUBLE_EQ(ra[i].actual_radio_hz_total, rb[i].actual_radio_hz_total);
    EXPECT_DOUBLE_EQ(ra[i].predicted_radio_hz_total,
                     rb[i].predicted_radio_hz_total);
    EXPECT_DOUBLE_EQ(ra[i].actual_compute_total, rb[i].actual_compute_total);
  }
}

TEST(FailureInjection, DegradedCollectionHurtsAccuracy) {
  // The DT premise: fresher twins → better predictions. Compare mean radio
  // error with pristine vs. heavily degraded collection over several seeds
  // (aggregated to damp variance).
  double err_good = 0.0;
  double err_bad = 0.0;
  for (const std::uint64_t seed : {101ULL, 202ULL, 303ULL}) {
    SchemeConfig good = fast_config(seed);
    good.user_count = 24;
    SchemeConfig bad = good;
    bad.collection.report_loss_prob = 0.9;
    bad.collection.channel_period_s = 20.0;
    bad.collection.latency_s = 30.0;

    Simulation sg(good);
    Simulation sb(bad);
    for (const auto& r : sg.run(6)) {
      if (r.has_prediction) {
        err_good += r.radio_error;
      }
    }
    for (const auto& r : sb.run(6)) {
      if (r.has_prediction) {
        err_bad += r.radio_error;
      }
    }
  }
  EXPECT_LT(err_good, err_bad)
      << "degrading twin freshness should not improve prediction";
}

}  // namespace
