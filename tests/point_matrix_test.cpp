// Tests for the flat PointMatrix storage: construction round-trips, row
// views, dimension enforcement, and k-means behavioural equivalence on a
// fixed seed (the flat port must preserve the seed's exact rng-draw
// sequence and arithmetic, so results are reproducible across the
// storage change).
#include <gtest/gtest.h>

#include <vector>

#include "clustering/kmeans.hpp"
#include "clustering/metrics.hpp"
#include "clustering/point_matrix.hpp"
#include "util/error.hpp"

namespace {

using dtmsv::clustering::PointMatrix;
using dtmsv::clustering::Points;
using dtmsv::util::PreconditionError;
using dtmsv::util::Rng;

TEST(PointMatrix, NestedVectorRoundTrip) {
  const std::vector<std::vector<double>> nested = {
      {1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  const PointMatrix m(nested);
  ASSERT_EQ(m.size(), 3u);
  ASSERT_EQ(m.dim(), 3u);
  for (std::size_t i = 0; i < nested.size(); ++i) {
    ASSERT_EQ(m[i].size(), nested[i].size());
    for (std::size_t d = 0; d < nested[i].size(); ++d) {
      EXPECT_DOUBLE_EQ(m[i][d], nested[i][d]);
    }
  }
  // Storage is genuinely flat and row-major.
  const auto flat = m.values();
  ASSERT_EQ(flat.size(), 9u);
  EXPECT_DOUBLE_EQ(flat[0], 1.0);
  EXPECT_DOUBLE_EQ(flat[5], 6.0);
  EXPECT_DOUBLE_EQ(flat[8], 9.0);
}

TEST(PointMatrix, PushBackAndIteration) {
  PointMatrix m;
  EXPECT_TRUE(m.empty());
  m.reserve(3);  // before the dimensionality is known
  m.push_back({1.0, 2.0});
  m.push_back({3.0, 4.0});
  m.push_back({5.0, 6.0});
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.dim(), 2u);

  double sum = 0.0;
  std::size_t rows = 0;
  for (const auto& row : m) {
    EXPECT_EQ(row.size(), 2u);
    for (const double v : row) {
      sum += v;
    }
    ++rows;
  }
  EXPECT_EQ(rows, 3u);
  EXPECT_DOUBLE_EQ(sum, 21.0);
}

TEST(PointMatrix, ReplicateConstructor) {
  const PointMatrix m(4, std::vector<double>{0.5, -1.5});
  ASSERT_EQ(m.size(), 4u);
  for (const auto& row : m) {
    EXPECT_DOUBLE_EQ(row[0], 0.5);
    EXPECT_DOUBLE_EQ(row[1], -1.5);
  }
}

TEST(PointMatrix, MutableRowsWriteThrough) {
  PointMatrix m(2, 3);
  m[1][2] = 42.0;
  auto row = m.append_row();
  row[0] = 7.0;
  EXPECT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m[1][2], 42.0);
  EXPECT_DOUBLE_EQ(m[2][0], 7.0);
  EXPECT_DOUBLE_EQ(m[2][1], 0.0);
}

TEST(PointMatrix, ContainsFindsRows) {
  const PointMatrix m = {{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> hit = {3.0, 4.0};
  const std::vector<double> miss = {3.0, 5.0};
  const std::vector<double> wrong_dim = {3.0};
  EXPECT_TRUE(m.contains(hit));
  EXPECT_FALSE(m.contains(miss));
  EXPECT_FALSE(m.contains(wrong_dim));
}

TEST(PointMatrix, DimensionEnforced) {
  PointMatrix m = {{1.0, 2.0}};
  EXPECT_THROW(m.push_back({1.0}), PreconditionError);
  EXPECT_THROW(m.push_back({1.0, 2.0, 3.0}), PreconditionError);
  EXPECT_THROW(PointMatrix(3, 0), PreconditionError);
  EXPECT_THROW(PointMatrix(2, 2, std::vector<double>{1.0}), PreconditionError);
  PointMatrix empty;
  EXPECT_THROW(empty.push_back(std::vector<double>{}), PreconditionError);
}

TEST(PointMatrix, EqualityComparesContents) {
  const PointMatrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const PointMatrix b = {{1.0, 2.0}, {3.0, 4.0}};
  const PointMatrix c = {{1.0, 2.0}, {3.0, 5.0}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(PointMatrix, OutOfRangeRowRejected) {
  const PointMatrix m(2, 2);
  EXPECT_THROW(m[2], PreconditionError);
}

// ------------------------------------------------ k-means on flat storage

Points fixed_seed_cloud(std::uint64_t seed, std::size_t n, std::size_t dim) {
  Rng rng(seed);
  Points points(n, dim);
  double* rows = points.data();
  for (std::size_t i = 0; i < n * dim; ++i) {
    rows[i] = rng.uniform(0.0, 10.0);
  }
  return points;
}

TEST(PointMatrixKMeans, FixedSeedResultIsStable) {
  // Two identical runs from the same seed: bitwise-equal centroids,
  // assignments, and inertia — the flat port keeps k-means fully
  // deterministic.
  const Points points = fixed_seed_cloud(2023, 150, 8);
  Rng ka(99);
  Rng kb(99);
  const auto ra = dtmsv::clustering::k_means(points, 6, ka);
  const auto rb = dtmsv::clustering::k_means(points, 6, kb);
  EXPECT_EQ(ra.assignment, rb.assignment);
  EXPECT_TRUE(ra.centroids == rb.centroids);
  EXPECT_DOUBLE_EQ(ra.inertia, rb.inertia);
  EXPECT_EQ(ra.iterations, rb.iterations);
}

TEST(PointMatrixKMeans, MatchesNestedVectorConstructionPath) {
  // Building the same cloud via the nested-vector bridge must produce the
  // same clustering as building it flat.
  const Points flat = fixed_seed_cloud(7, 80, 4);
  std::vector<std::vector<double>> nested;
  for (const auto& row : flat) {
    nested.emplace_back(row.begin(), row.end());
  }
  const Points bridged(nested);
  EXPECT_TRUE(flat == bridged);

  Rng ka(5);
  Rng kb(5);
  const auto ra = dtmsv::clustering::k_means(flat, 5, ka);
  const auto rb = dtmsv::clustering::k_means(bridged, 5, kb);
  EXPECT_EQ(ra.assignment, rb.assignment);
  EXPECT_DOUBLE_EQ(ra.inertia, rb.inertia);
}

TEST(PointMatrixKMeans, InertiaConsistentWithMetric) {
  const Points points = fixed_seed_cloud(11, 120, 6);
  Rng rng(1);
  const auto result = dtmsv::clustering::k_means(points, 4, rng);
  EXPECT_NEAR(result.inertia,
              dtmsv::clustering::inertia(points, result.centroids, result.assignment),
              1e-9);
}

}  // namespace
