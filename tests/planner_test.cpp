// Unit tests for predict::CapacityPlanner and the reservation outcome
// accounting (the paper's future-work stage, provided as a library module).
#include <gtest/gtest.h>

#include "predict/planner.hpp"
#include "util/error.hpp"

namespace {

using namespace dtmsv::predict;
using dtmsv::util::PreconditionError;

TEST(CapacityPlanner, ReserveAppliesHeadroom) {
  ReservationPolicy policy;
  policy.headroom = 0.25;
  CapacityPlanner planner(policy);
  EXPECT_DOUBLE_EQ(planner.reserve(100.0), 125.0);
  EXPECT_DOUBLE_EQ(planner.reserve(0.0), 0.0);
}

TEST(CapacityPlanner, MinimumFloorApplies) {
  ReservationPolicy policy;
  policy.headroom = 0.10;
  policy.min_reserved = 50.0;
  CapacityPlanner planner(policy);
  EXPECT_DOUBLE_EQ(planner.reserve(10.0), 50.0);
  EXPECT_DOUBLE_EQ(planner.reserve(100.0), 110.0);
}

TEST(CapacityPlanner, CapacityCapApplies) {
  ReservationPolicy policy;
  policy.headroom = 0.10;
  policy.max_reserved = 100.0;
  CapacityPlanner planner(policy);
  EXPECT_DOUBLE_EQ(planner.reserve(200.0), 100.0);
}

TEST(CapacityPlanner, ZeroCapMeansUncapped) {
  ReservationPolicy policy;
  policy.max_reserved = 0.0;
  CapacityPlanner planner(policy);
  EXPECT_DOUBLE_EQ(planner.reserve(1e9), 1.1e9);
}

TEST(CapacityPlanner, SettleAccountsOverProvisioning) {
  CapacityPlanner planner(ReservationPolicy{});
  planner.settle(120.0, 100.0);
  const auto& o = planner.outcome();
  EXPECT_EQ(o.intervals, 1u);
  EXPECT_EQ(o.violations, 0u);
  EXPECT_DOUBLE_EQ(o.over_total, 20.0);
  EXPECT_DOUBLE_EQ(o.unmet_total, 0.0);
  EXPECT_DOUBLE_EQ(o.waste_fraction(), 0.2);
}

TEST(CapacityPlanner, SettleAccountsViolations) {
  CapacityPlanner planner(ReservationPolicy{});
  planner.settle(80.0, 100.0);
  planner.settle(120.0, 100.0);
  const auto& o = planner.outcome();
  EXPECT_EQ(o.intervals, 2u);
  EXPECT_EQ(o.violations, 1u);
  EXPECT_DOUBLE_EQ(o.unmet_total, 20.0);
  EXPECT_DOUBLE_EQ(o.violation_rate(), 0.5);
  EXPECT_DOUBLE_EQ(o.unmet_fraction(), 0.1);
}

TEST(CapacityPlanner, StepCombinesReserveAndSettle) {
  ReservationPolicy policy;
  policy.headroom = 0.10;
  CapacityPlanner planner(policy);
  const double reserved = planner.step(100.0, 105.0);
  EXPECT_NEAR(reserved, 110.0, 1e-9);
  EXPECT_EQ(planner.outcome().intervals, 1u);
  EXPECT_NEAR(planner.outcome().over_total, 5.0, 1e-9);
}

TEST(CapacityPlanner, ResetClearsOutcome) {
  CapacityPlanner planner(ReservationPolicy{});
  planner.step(100.0, 90.0);
  planner.reset();
  EXPECT_EQ(planner.outcome().intervals, 0u);
  EXPECT_DOUBLE_EQ(planner.outcome().reserved_total, 0.0);
}

TEST(CapacityPlanner, HigherHeadroomTradesWasteForViolations) {
  ReservationPolicy tight;
  tight.headroom = 0.0;
  ReservationPolicy loose;
  loose.headroom = 0.5;
  CapacityPlanner planner_tight(tight);
  CapacityPlanner planner_loose(loose);
  // Realized demand oscillates ±20 % around the prediction.
  const double actuals[] = {80.0, 120.0, 90.0, 110.0};
  for (const double a : actuals) {
    planner_tight.step(100.0, a);
    planner_loose.step(100.0, a);
  }
  EXPECT_GT(planner_tight.outcome().violations, planner_loose.outcome().violations);
  EXPECT_LT(planner_tight.outcome().over_total, planner_loose.outcome().over_total);
}

TEST(CapacityPlanner, EmptyOutcomeFractionsAreZero) {
  const ReservationOutcome empty{};
  EXPECT_DOUBLE_EQ(empty.waste_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(empty.unmet_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(empty.violation_rate(), 0.0);
}

TEST(CapacityPlanner, InvalidInputsRejected) {
  ReservationPolicy bad;
  bad.headroom = -0.1;
  EXPECT_THROW(CapacityPlanner{bad}, PreconditionError);

  ReservationPolicy inverted;
  inverted.min_reserved = 100.0;
  inverted.max_reserved = 50.0;
  EXPECT_THROW(CapacityPlanner{inverted}, PreconditionError);

  CapacityPlanner planner(ReservationPolicy{});
  EXPECT_THROW(planner.reserve(-1.0), PreconditionError);
  EXPECT_THROW(planner.settle(-1.0, 0.0), PreconditionError);
  EXPECT_THROW(planner.settle(0.0, -1.0), PreconditionError);
}

}  // namespace
