// Serving-mode tests: EventQueue backpressure, DegradationPolicy ladder
// bookkeeping, ServeLoop deadline/degradation behaviour under a scripted
// ManualServeClock (bit-deterministic for any DTMSV_THREADS — the wall
// clock only decides fidelity, never arithmetic), ServeWorkload
// reproducibility, and the [serve] config loader.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cli/serve_loader.hpp"
#include "core/event_queue.hpp"
#include "core/pipeline.hpp"
#include "core/serve.hpp"
#include "core/serve_workload.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace {

using namespace dtmsv;

core::TwinEvent channel_at(std::uint32_t user, double time, double snr_db = 15.0) {
  twin::ChannelObservation obs;
  obs.snr_db = snr_db;
  obs.efficiency_bps_hz = 3.0;
  return core::TwinEvent::channel_report(user, time, obs);
}

// ------------------------------------------------------------- EventQueue

TEST(EventQueue, DrainsInArrivalOrderUpToHorizon) {
  core::EventQueue queue(8);
  for (int i = 0; i < 5; ++i) {
    queue.push(channel_at(static_cast<std::uint32_t>(i), 1.0 * i));
  }
  std::vector<std::uint32_t> drained_users;
  const std::size_t drained = queue.drain_until(
      2.5, [&](const core::TwinEvent& e) { drained_users.push_back(e.user); });
  EXPECT_EQ(drained, 3u);
  EXPECT_EQ(drained_users, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(queue.size(), 2u);
  // Remaining events (t=3, t=4) drain on the next horizon.
  EXPECT_EQ(queue.drain_until(10.0, [](const core::TwinEvent&) {}), 2u);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.stats().offered, 5u);
  EXPECT_EQ(queue.stats().drained, 5u);
  EXPECT_EQ(queue.stats().dropped, 0u);
}

TEST(EventQueue, ShedsOldestWithExactCounts) {
  core::EventQueue queue(4);
  for (int i = 0; i < 7; ++i) {
    queue.push(channel_at(static_cast<std::uint32_t>(i), 1.0 * i));
  }
  // Capacity 4, 7 offered: users 0..2 shed, 3..6 retained.
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_EQ(queue.stats().offered, 7u);
  EXPECT_EQ(queue.stats().dropped, 3u);
  std::vector<std::uint32_t> survivors;
  queue.drain_until(100.0,
                    [&](const core::TwinEvent& e) { survivors.push_back(e.user); });
  EXPECT_EQ(survivors, (std::vector<std::uint32_t>{3, 4, 5, 6}));
}

TEST(EventQueue, RejectsOutOfOrderPushAndZeroCapacity) {
  EXPECT_THROW(core::EventQueue(0), util::PreconditionError);
  core::EventQueue queue(4);
  queue.push(channel_at(0, 5.0));
  EXPECT_THROW(queue.push(channel_at(1, 4.0)), util::PreconditionError);
  queue.push(channel_at(1, 5.0));  // ties are fine
}

// ------------------------------------------------------ DegradationPolicy

TEST(DegradationPolicy, StepsDownOneRungPerMissStreak) {
  core::DegradationPolicyConfig cfg;  // default 3-rung ladder
  cfg.step_down_after = 2;
  core::DegradationPolicy policy(cfg);
  EXPECT_EQ(policy.level(), 0u);
  EXPECT_EQ(policy.record(false), std::nullopt);  // 1 miss: below threshold
  EXPECT_EQ(policy.record(false), std::optional<std::size_t>(1));
  EXPECT_EQ(policy.current().name, "cnn_incremental");
  // The counter resets after a transition: two more misses for the next rung.
  EXPECT_EQ(policy.record(false), std::nullopt);
  EXPECT_EQ(policy.record(false), std::optional<std::size_t>(2));
  EXPECT_EQ(policy.current().name, "summary");
  // Clamped at the bottom rung.
  EXPECT_EQ(policy.record(false), std::nullopt);
  EXPECT_EQ(policy.record(false), std::nullopt);
  EXPECT_EQ(policy.level(), 2u);
}

TEST(DegradationPolicy, RecoversAfterSustainedHitsAndClampsAtTop) {
  core::DegradationPolicyConfig cfg;
  cfg.step_down_after = 1;
  cfg.step_up_after = 3;
  core::DegradationPolicy policy(cfg);
  policy.record(false);
  policy.record(false);
  ASSERT_EQ(policy.level(), 2u);
  EXPECT_EQ(policy.record(true), std::nullopt);
  EXPECT_EQ(policy.record(true), std::nullopt);
  EXPECT_EQ(policy.record(true), std::optional<std::size_t>(1));
  // A miss resets the hit streak (and immediately steps back down here).
  EXPECT_EQ(policy.record(false), std::optional<std::size_t>(2));
  for (int i = 0; i < 6; ++i) {
    policy.record(true);
  }
  ASSERT_EQ(policy.level(), 0u);
  // Clamped at full fidelity.
  EXPECT_EQ(policy.record(true), std::nullopt);
  EXPECT_EQ(policy.record(true), std::nullopt);
  EXPECT_EQ(policy.record(true), std::nullopt);
  EXPECT_EQ(policy.level(), 0u);
}

TEST(DegradationPolicy, RejectsEmptyLadderAndZeroHysteresis) {
  core::DegradationPolicyConfig empty;
  empty.ladder.clear();
  EXPECT_THROW(core::DegradationPolicy{empty}, util::PreconditionError);
  core::DegradationPolicyConfig zero;
  zero.step_down_after = 0;
  EXPECT_THROW(core::DegradationPolicy{zero}, util::PreconditionError);
}

// -------------------------------------------------------------- utilities

TEST(LatencyPercentile, NearestRank) {
  const std::vector<double> values = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(core::latency_percentile(values, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(core::latency_percentile(values, 95.0), 5.0);
  EXPECT_DOUBLE_EQ(core::latency_percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(core::latency_percentile(values, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(core::latency_percentile({}, 50.0), 0.0);
}

TEST(ManualServeClock, ScriptsPipelineCosts) {
  core::ManualServeClock clock;
  clock.queue_pipeline_cost(0.2);
  const double t0 = clock.now_s();
  const double t1 = clock.now_s();
  EXPECT_DOUBLE_EQ(t1 - t0, 0.2);
  // Queue exhausted: default_step applies.
  clock.default_step = 0.001;
  const double t2 = clock.now_s();
  EXPECT_DOUBLE_EQ(t2 - t1, 0.001);
}

// --------------------------------------------------------------- ServeLoop

core::ServeConfig small_serve(std::size_t users = 12) {
  core::ServeConfig cfg;
  cfg.scheme.seed = 11;
  cfg.scheme.user_count = users;
  cfg.scheme.interval_s = 10.0;
  cfg.scheme.demand.interval_s = 10.0;
  cfg.scheme.warmup_intervals = 0;
  cfg.scheme.feature_window_s = 30.0;
  cfg.scheme.feature_timesteps = 8;
  cfg.scheme.session.engagement.catalog.videos_per_category = 3;
  // Cheap deterministic non-feature stages: the ladder under test swaps
  // feature stages only.
  cfg.scheme.grouping_stage = "fixed";
  cfg.scheme.fixed_k = 2;
  cfg.scheme.demand_stage = "mean";
  cfg.deadline_ms = 50.0;
  return cfg;
}

/// Feeds `count` channel reports (one per user, round-robin) at time `t`.
void offer_reports(core::ServeLoop& loop, double t, std::size_t count) {
  const std::size_t users = loop.config().scheme.user_count;
  for (std::size_t i = 0; i < count; ++i) {
    loop.offer(channel_at(static_cast<std::uint32_t>(i % users), t));
  }
}

TEST(ServeLoop, DegradesDownTheLadderInOrderUnderOverload) {
  core::ServeConfig cfg = small_serve();
  core::ManualServeClock clock;
  core::CollectingSink sink;
  core::ServeLoop loop(cfg, clock, &sink);

  // Script 3 expensive predictions (200 ms against a 50 ms budget), then let
  // default_step = 0 make everything after look instantaneous.
  for (int i = 0; i < 3; ++i) {
    clock.queue_pipeline_cost(0.2);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    offer_reports(loop, 10.0 * static_cast<double>(i), 6);
    loop.advance_to(10.0 * static_cast<double>(i + 1));
  }

  // step_down_after = 1: each miss steps exactly one rung, in ladder order
  // cnn_full -> cnn_incremental -> summary.
  ASSERT_EQ(sink.degradations.size(), 2u);
  EXPECT_EQ(sink.degradations[0].from_name, "cnn_full");
  EXPECT_EQ(sink.degradations[0].to_name, "cnn_incremental");
  EXPECT_EQ(sink.degradations[0].interval, 0u);
  EXPECT_FALSE(sink.degradations[0].recovering);
  EXPECT_DOUBLE_EQ(sink.degradations[0].latency_ms, 200.0);
  EXPECT_DOUBLE_EQ(sink.degradations[0].deadline_ms, 50.0);
  EXPECT_EQ(sink.degradations[1].from_name, "cnn_incremental");
  EXPECT_EQ(sink.degradations[1].to_name, "summary");
  EXPECT_EQ(loop.degradation().level(), 2u);
  EXPECT_EQ(loop.stats().deadline_misses, 3u);
  EXPECT_EQ(loop.stats().steps_down, 2u);

  // The cnn intervals carry a real autoencoder reconstruction loss; the
  // summary rung has none — observable proof the feature stage swapped.
  ASSERT_EQ(sink.reports.size(), 3u);
  EXPECT_GT(sink.reports[0].reconstruction_loss, 0.0f);
  EXPECT_GT(sink.reports[1].reconstruction_loss, 0.0f);

  // One more interval fires on the summary rung (clock now instantaneous).
  offer_reports(loop, 30.0, 6);
  loop.advance_to(40.0);
  ASSERT_EQ(sink.reports.size(), 4u);
  EXPECT_FLOAT_EQ(sink.reports[3].reconstruction_loss, 0.0f);
}

TEST(ServeLoop, RecoversUpTheLadderAfterSustainedHits) {
  core::ServeConfig cfg = small_serve();
  cfg.degradation.step_up_after = 2;
  core::ManualServeClock clock;
  core::CollectingSink sink;
  core::ServeLoop loop(cfg, clock, &sink);

  // Two misses push the loop to the bottom rung; everything after hits.
  clock.queue_pipeline_cost(0.2);
  clock.queue_pipeline_cost(0.2);
  for (std::size_t i = 0; i < 7; ++i) {
    offer_reports(loop, 10.0 * static_cast<double>(i), 4);
    loop.advance_to(10.0 * static_cast<double>(i + 1));
  }

  // Intervals 0,1 miss (down to summary); 2..3 hit -> up to cnn_incremental
  // after interval 3; 4..5 hit -> up to cnn_full after interval 5.
  ASSERT_EQ(sink.degradations.size(), 4u);
  EXPECT_FALSE(sink.degradations[0].recovering);
  EXPECT_FALSE(sink.degradations[1].recovering);
  EXPECT_TRUE(sink.degradations[2].recovering);
  EXPECT_EQ(sink.degradations[2].from_name, "summary");
  EXPECT_EQ(sink.degradations[2].to_name, "cnn_incremental");
  EXPECT_EQ(sink.degradations[2].interval, 3u);
  EXPECT_TRUE(sink.degradations[3].recovering);
  EXPECT_EQ(sink.degradations[3].to_name, "cnn_full");
  EXPECT_EQ(loop.degradation().level(), 0u);
  EXPECT_EQ(loop.stats().steps_down, 2u);
  EXPECT_EQ(loop.stats().steps_up, 2u);
}

TEST(ServeLoop, QueueOverflowShedsOldestWithExactDropCounts) {
  core::ServeConfig cfg = small_serve();
  cfg.queue_capacity = 8;
  core::ManualServeClock clock;
  core::CollectingSink sink;
  core::ServeLoop loop(cfg, clock, &sink);

  offer_reports(loop, 1.0, 12);  // 12 offered into capacity 8
  loop.advance_to(10.0);

  EXPECT_EQ(loop.stats().events_ingested, 8u);
  EXPECT_EQ(loop.stats().events_dropped, 4u);
  ASSERT_EQ(sink.drops.size(), 1u);
  EXPECT_EQ(sink.drops[0].interval, 0u);
  EXPECT_EQ(sink.drops[0].dropped, 4u);
  EXPECT_EQ(sink.drops[0].queue_capacity, 8u);
  // All admitted events drained before the prediction fired.
  EXPECT_EQ(sink.drops[0].queue_size, 0u);
  EXPECT_EQ(loop.queue_size(), 0u);

  // No further sheds: no second DropEvent.
  offer_reports(loop, 11.0, 4);
  loop.advance_to(20.0);
  EXPECT_EQ(sink.drops.size(), 1u);
  EXPECT_EQ(loop.stats().events_ingested, 12u);
}

TEST(ServeLoop, RejectsBadConfigAndBadEvents) {
  core::ServeConfig cfg = small_serve();
  cfg.deadline_ms = 0.0;
  core::ManualServeClock clock;
  EXPECT_THROW(core::ServeLoop(cfg, clock), util::PreconditionError);

  cfg = small_serve();
  cfg.degradation.ladder[1].feature_stage = "no-such-stage";
  EXPECT_THROW(core::ServeLoop(cfg, clock), util::PreconditionError);

  cfg = small_serve();
  core::ServeLoop loop(cfg, clock);
  EXPECT_THROW(loop.offer(channel_at(99, 1.0)), util::PreconditionError);
  loop.advance_to(5.0);
  EXPECT_THROW(loop.advance_to(4.0), util::PreconditionError);
}

/// Runs the scripted overload scenario end to end and returns the sink.
core::CollectingSink run_serve_scenario(std::size_t threads) {
  util::set_thread_count(threads);
  core::ServeConfig cfg = small_serve(24);
  core::ManualServeClock clock;
  clock.queue_pipeline_cost(0.2);
  clock.queue_pipeline_cost(0.2);
  core::CollectingSink sink;
  core::ServeLoop loop(cfg, clock, &sink);
  core::ServeWorkloadConfig wl_cfg;
  wl_cfg.seed = 5;
  wl_cfg.user_count = cfg.scheme.user_count;
  wl_cfg.engagement = cfg.scheme.session.engagement;
  core::ServeWorkload workload(wl_cfg, loop.catalog());
  std::vector<core::TwinEvent> events;
  for (std::size_t i = 0; i < 5; ++i) {
    events.clear();
    workload.generate(10.0 * static_cast<double>(i),
                      10.0 * static_cast<double>(i + 1), events);
    for (const core::TwinEvent& e : events) {
      loop.offer(e);
    }
    loop.advance_to(10.0 * static_cast<double>(i + 1));
  }
  util::set_thread_count(0);
  return sink;
}

TEST(ServeLoop, ResultsAreBitIdenticalForAnyThreadCount) {
  const core::CollectingSink one = run_serve_scenario(1);
  const core::CollectingSink four = run_serve_scenario(4);

  ASSERT_EQ(one.reports.size(), four.reports.size());
  for (std::size_t i = 0; i < one.reports.size(); ++i) {
    EXPECT_EQ(one.reports[i].k, four.reports[i].k);
    EXPECT_EQ(one.reports[i].reconstruction_loss,
              four.reports[i].reconstruction_loss);
    EXPECT_EQ(one.reports[i].predicted_radio_hz_total,
              four.reports[i].predicted_radio_hz_total);
    EXPECT_EQ(one.reports[i].predicted_compute_total,
              four.reports[i].predicted_compute_total);
  }
  ASSERT_EQ(one.groups.size(), four.groups.size());
  for (std::size_t i = 0; i < one.groups.size(); ++i) {
    EXPECT_EQ(one.groups[i].predicted_efficiency,
              four.groups[i].predicted_efficiency);
    EXPECT_EQ(one.groups[i].predicted_radio_hz, four.groups[i].predicted_radio_hz);
  }
  // The fidelity trajectory is part of the deterministic contract too.
  ASSERT_EQ(one.degradations.size(), four.degradations.size());
  for (std::size_t i = 0; i < one.degradations.size(); ++i) {
    EXPECT_EQ(one.degradations[i].to_name, four.degradations[i].to_name);
    EXPECT_EQ(one.degradations[i].interval, four.degradations[i].interval);
  }
}

// ------------------------------------------------------------ ServeWorkload

video::Catalog test_catalog(std::uint64_t seed = 3) {
  util::Rng rng(seed);
  video::CatalogConfig cfg;
  cfg.videos_per_category = 3;
  return video::Catalog::generate(cfg, rng);
}

TEST(ServeWorkload, StreamIsReproducibleAndTimeOrdered) {
  const video::Catalog catalog = test_catalog();
  core::ServeWorkloadConfig cfg;
  cfg.user_count = 10;
  core::ServeWorkload a(cfg, catalog);
  core::ServeWorkload b(cfg, catalog);
  std::vector<core::TwinEvent> ea;
  std::vector<core::TwinEvent> eb;
  a.generate(0.0, 30.0, ea);
  b.generate(0.0, 30.0, eb);

  ASSERT_FALSE(ea.empty());
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].kind, eb[i].kind);
    EXPECT_EQ(ea[i].user, eb[i].user);
    EXPECT_EQ(ea[i].time, eb[i].time);
    EXPECT_EQ(ea[i].channel.snr_db, eb[i].channel.snr_db);
    EXPECT_EQ(ea[i].watch.video_id, eb[i].watch.video_id);
  }
  for (std::size_t i = 1; i < ea.size(); ++i) {
    EXPECT_LE(ea[i - 1].time, ea[i].time);
  }
}

TEST(ServeWorkload, WindowSlicingDoesNotChangeTheStream) {
  const video::Catalog catalog = test_catalog();
  core::ServeWorkloadConfig cfg;
  cfg.user_count = 8;
  core::ServeWorkload whole(cfg, catalog);
  core::ServeWorkload sliced(cfg, catalog);
  std::vector<core::TwinEvent> ew;
  std::vector<core::TwinEvent> es;
  whole.generate(0.0, 40.0, ew);
  for (int i = 0; i < 4; ++i) {
    sliced.generate(10.0 * i, 10.0 * (i + 1), es);
  }
  ASSERT_EQ(ew.size(), es.size());
  for (std::size_t i = 0; i < ew.size(); ++i) {
    EXPECT_EQ(ew[i].user, es[i].user);
    EXPECT_EQ(ew[i].time, es[i].time);
    EXPECT_EQ(ew[i].kind, es[i].kind);
  }
}

TEST(ServeWorkload, RateMultiplierScalesEventVolume) {
  const video::Catalog catalog = test_catalog();
  core::ServeWorkloadConfig cfg;
  cfg.user_count = 12;
  core::ServeWorkload steady(cfg, catalog);
  core::ServeWorkload surging(cfg, catalog);
  surging.set_rate_multiplier(4.0);
  std::vector<core::TwinEvent> e_steady;
  std::vector<core::TwinEvent> e_surge;
  steady.generate(0.0, 60.0, e_steady);
  surging.generate(0.0, 60.0, e_surge);
  EXPECT_GT(e_surge.size(), 2 * e_steady.size());
  EXPECT_THROW(surging.set_rate_multiplier(0.0), util::PreconditionError);
}

// -------------------------------------------------------------- serve_loader

constexpr const char* kServeIni = R"(
[serve]
user_count = 24
interval_s = 10
intervals = 6
deadline_ms = 25
queue_capacity = 512
ladder = cnn:full, cnn, summary
grouping = fixed
fixed_k = 2
demand = mean
videos_per_category = 3

[workload]
channel_period_s = 2
overload_start = 2
overload_intervals = 2
overload_multiplier = 6

[run]
threads = 1
)";

TEST(ServeLoader, ParsesFullPlan) {
  util::Config config = util::Config::parse(kServeIni);
  const cli::ServePlan plan = cli::load_serve_plan(config);
  EXPECT_EQ(plan.serve.scheme.user_count, 24u);
  EXPECT_DOUBLE_EQ(plan.serve.scheme.interval_s, 10.0);
  EXPECT_DOUBLE_EQ(plan.serve.scheme.demand.interval_s, 10.0);
  EXPECT_EQ(plan.intervals, 6u);
  EXPECT_DOUBLE_EQ(plan.serve.deadline_ms, 25.0);
  EXPECT_EQ(plan.serve.queue_capacity, 512u);
  ASSERT_EQ(plan.serve.degradation.ladder.size(), 3u);
  EXPECT_EQ(plan.serve.degradation.ladder[0].feature_stage, "cnn");
  EXPECT_TRUE(plan.serve.degradation.ladder[0].full_extraction);
  EXPECT_EQ(plan.serve.degradation.ladder[1].feature_stage, "cnn");
  EXPECT_FALSE(plan.serve.degradation.ladder[1].full_extraction);
  EXPECT_EQ(plan.serve.degradation.ladder[2].feature_stage, "summary");
  EXPECT_EQ(plan.serve.scheme.grouping_stage, "fixed");
  EXPECT_EQ(plan.serve.scheme.demand_stage, "mean");
  EXPECT_DOUBLE_EQ(plan.workload.channel_period_s, 2.0);
  EXPECT_EQ(plan.workload.user_count, 24u);
  EXPECT_EQ(plan.overload_start, 2u);
  EXPECT_EQ(plan.overload_intervals, 2u);
  EXPECT_DOUBLE_EQ(plan.overload_multiplier, 6.0);
  EXPECT_EQ(plan.threads, 1u);
}

TEST(ServeLoader, ParsesLadderLevelSyntax) {
  const core::DegradationLevel full = cli::parse_ladder_level("cnn:full");
  EXPECT_EQ(full.feature_stage, "cnn");
  EXPECT_TRUE(full.full_extraction);
  const core::DegradationLevel inc = cli::parse_ladder_level("cnn:incremental");
  EXPECT_FALSE(inc.full_extraction);
  const core::DegradationLevel bare = cli::parse_ladder_level("summary");
  EXPECT_EQ(bare.feature_stage, "summary");
  EXPECT_FALSE(bare.full_extraction);
  EXPECT_THROW(cli::parse_ladder_level("cnn:sometimes"), util::RuntimeError);
  EXPECT_THROW(cli::parse_ladder_level(":full"), util::RuntimeError);
}

TEST(ServeLoader, RejectsUnknownKeysAndStages) {
  util::Config typo = util::Config::parse("[serve]\ndeadline_msec = 10\n");
  EXPECT_THROW(cli::load_serve_plan(typo), util::RuntimeError);

  util::Config bad_stage =
      util::Config::parse("[serve]\ngrouping = kmeanz\n");
  EXPECT_THROW(cli::load_serve_plan(bad_stage), util::RuntimeError);

  util::Config bad_ladder =
      util::Config::parse("[serve]\nladder = cnn, warp-drive\n");
  EXPECT_THROW(cli::load_serve_plan(bad_ladder), util::RuntimeError);
}

}  // namespace
