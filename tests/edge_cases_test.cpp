// Second-wave edge-case tests across modules: boundary geometries, extreme
// configurations, serialisation to disk, and behaviours the first-wave unit
// tests did not pin down.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "analysis/recommend.hpp"
#include "analysis/swiping.hpp"
#include "behavior/session.hpp"
#include "clustering/kmeans.hpp"
#include "core/feature_compressor.hpp"
#include "core/fleet.hpp"
#include "core/group_constructor.hpp"
#include "core/simulation.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "twin/udt.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "video/catalog.hpp"
#include "wireless/channel.hpp"
#include "wireless/fading.hpp"
#include "wireless/multicast.hpp"

namespace {

using namespace dtmsv;
using util::PreconditionError;
using util::Rng;

// ------------------------------------------------------------ nn to disk

TEST(SerializeFile, RoundTripThroughFilesystem) {
  Rng rng(1);
  nn::Sequential net;
  net.emplace<nn::Linear>(4, 4, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Linear>(4, 2, rng);

  const std::string path =
      (std::filesystem::temp_directory_path() / "dtmsv_params_test.txt").string();
  nn::save_parameters(net, path);

  Rng rng2(2);
  nn::Sequential other;
  other.emplace<nn::Linear>(4, 4, rng2);
  other.emplace<nn::ReLU>();
  other.emplace<nn::Linear>(4, 2, rng2);
  nn::load_parameters(other, path);

  nn::Tensor x({1, 4}, {0.1f, -0.2f, 0.3f, -0.4f});
  const nn::Tensor ya = net.forward(x);
  const nn::Tensor yb = other.forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_NEAR(ya[i], yb[i], 1e-5);
  }
  std::remove(path.c_str());
}

TEST(SerializeFile, MissingFileThrows) {
  Rng rng(3);
  nn::Sequential net;
  net.emplace<nn::Linear>(2, 2, rng);
  EXPECT_THROW(nn::load_parameters(net, "/nonexistent/params.txt"),
               util::RuntimeError);
}

// ------------------------------------------------------- fading dynamics

TEST(FadingDynamics, HighDopplerDecorrelatesFaster) {
  const auto lag1_corr = [](double doppler) {
    wireless::RayleighFading fading(doppler, 1.0, Rng(4));
    std::vector<double> xs;
    std::vector<double> ys;
    double prev = fading.step();
    for (int i = 0; i < 20000; ++i) {
      const double next = fading.step();
      xs.push_back(prev);
      ys.push_back(next);
      prev = next;
    }
    return util::pearson(xs, ys);
  };
  EXPECT_GT(lag1_corr(0.5), lag1_corr(50.0) + 0.2);
}

TEST(FadingDynamics, ZeroDopplerFreezesChannel) {
  wireless::RayleighFading fading(0.0, 1.0, Rng(5));
  const double first = fading.step();
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(fading.step(), first, 1e-12);
  }
}

// ----------------------------------------------- multicast rung boundaries

TEST(MulticastBoundary, ExactBudgetSelectsRung) {
  wireless::MulticastPhy phy;
  const std::vector<double> ladder = {750.0, 1200.0, 1850.0};
  // Budget exactly equals a rung: that rung is sustainable.
  EXPECT_EQ(phy.sustainable_rung(ladder, 1.0, 1200e3), 1u);
  // One hertz less: drops to the rung below.
  EXPECT_EQ(phy.sustainable_rung(ladder, 1.0, 1200e3 - 1.0), 0u);
}

// ------------------------------------------------------ clustering corners

TEST(ClusteringCorners, TwoIdenticalPointsTwoClusters) {
  Rng rng(6);
  clustering::Points points = {{1.0, 1.0}, {1.0, 1.0}};
  const auto result = clustering::k_means(points, 2, rng);
  EXPECT_EQ(result.assignment.size(), 2u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(ClusteringCorners, OneDimensionalData) {
  Rng rng(7);
  clustering::Points points;
  for (int i = 0; i < 10; ++i) {
    points.push_back({static_cast<double>(i)});
  }
  for (int i = 0; i < 10; ++i) {
    points.push_back({100.0 + static_cast<double>(i)});
  }
  const auto result = clustering::k_means(points, 2, rng);
  // The two runs of consecutive integers are split exactly at the gap.
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(result.assignment[i], result.assignment[0]);
    EXPECT_EQ(result.assignment[10 + i], result.assignment[10]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[10]);
}

TEST(ClusteringCorners, HighDimensionalSparseData) {
  Rng rng(8);
  clustering::Points points;
  for (int i = 0; i < 12; ++i) {
    std::vector<double> p(64, 0.0);
    p[static_cast<std::size_t>(i % 4) * 16] = 1.0;  // 4 orthogonal directions
    points.push_back(std::move(p));
  }
  const auto result = clustering::k_means(points, 4, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

// ----------------------------------------------------- compressor corners

TEST(CompressorCorners, SingleWindowBatch) {
  core::CompressorConfig cfg;
  cfg.channels = 2;
  cfg.timesteps = 8;
  cfg.embedding_dim = 3;
  core::FeatureCompressor comp(cfg, 9);
  const std::vector<std::vector<float>> one = {
      std::vector<float>(cfg.channels * cfg.timesteps, 0.5f)};
  const auto points = comp.embed(one);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].size(), 3u);
  EXPECT_NO_THROW(comp.fit(one));
}

TEST(CompressorCorners, ConstantWindowsEmbedIdentically) {
  core::CompressorConfig cfg;
  cfg.channels = 2;
  cfg.timesteps = 8;
  core::FeatureCompressor comp(cfg, 10);
  const std::vector<float> w(cfg.channels * cfg.timesteps, 0.25f);
  const auto points = comp.embed({w, w, w});
  for (std::size_t d = 0; d < points[0].size(); ++d) {
    EXPECT_DOUBLE_EQ(points[0][d], points[1][d]);
    EXPECT_DOUBLE_EQ(points[1][d], points[2][d]);
  }
}

// ------------------------------------------------- group constructor edge

TEST(GroupConstructorEdge, IdenticalEmbeddingsStillCluster) {
  core::GroupConstructorConfig cfg;
  cfg.k_min = 2;
  cfg.k_max = 4;
  cfg.ddqn.hidden = {8};
  core::GroupConstructor ctor(cfg, 11);
  Rng rng(11);
  const clustering::Points identical(10, std::vector<double>{0.5, 0.5});
  const auto decision = ctor.construct(identical, rng);
  EXPECT_GE(decision.k, 2u);
  EXPECT_EQ(decision.assignment.size(), 10u);
  // Degenerate geometry: silhouette defined as 0.
  EXPECT_GE(decision.silhouette, -1.0);
  EXPECT_LE(decision.silhouette, 1.0);
}

TEST(GroupConstructorEdge, TwoPointCloud) {
  core::GroupConstructorConfig cfg;
  cfg.k_min = 2;
  cfg.k_max = 8;
  cfg.ddqn.hidden = {8};
  core::GroupConstructor ctor(cfg, 12);
  Rng rng(12);
  const clustering::Points two = {{0.0}, {1.0}};
  const auto decision = ctor.construct(two, rng);
  EXPECT_EQ(decision.k, 2u);
}

// ----------------------------------------------------- recommender corners

TEST(RecommenderCorners, SingleVideoCatalogStillFillsQuota) {
  Rng rng(13);
  video::CatalogConfig ccfg;
  ccfg.videos_per_category = 1;
  const auto catalog = video::Catalog::generate(ccfg, rng);
  analysis::PopularityAnalyzer pop;
  behavior::PreferenceVector uniform{};
  uniform.fill(1.0 / video::kCategoryCount);
  analysis::RecommenderConfig rcfg;
  rcfg.playlist_size = 12;
  const auto rec = analysis::recommend(catalog, pop, uniform, rcfg);
  // Only 6 distinct videos exist (one per category); the playlist cannot
  // exceed them but must include each chosen category's video exactly once.
  EXPECT_LE(rec.playlist.size(), 6u);
  std::set<std::uint64_t> unique(rec.playlist.begin(), rec.playlist.end());
  EXPECT_EQ(unique.size(), rec.playlist.size());
}

TEST(RecommenderCorners, ExtremePreferenceConcentratesPlaylist) {
  Rng rng(14);
  video::CatalogConfig ccfg;
  ccfg.videos_per_category = 50;
  const auto catalog = video::Catalog::generate(ccfg, rng);
  analysis::PopularityAnalyzer pop;
  behavior::PreferenceVector extreme{};
  extreme[static_cast<std::size_t>(video::Category::kMusic)] = 1.0;
  analysis::RecommenderConfig rcfg;
  rcfg.playlist_size = 20;
  const auto rec = analysis::recommend(catalog, pop, extreme, rcfg);
  ASSERT_EQ(rec.playlist.size(), 20u);
  for (const auto id : rec.playlist) {
    EXPECT_EQ(catalog.video(id).category, video::Category::kMusic);
  }
}

// ----------------------------------------------------- UDT window corners

TEST(UdtCorners, WindowLargerThanHistory) {
  twin::UserDigitalTwin twin(0);
  const twin::FeatureScaling scaling{100.0, 100.0, 10.0, 40.0};
  twin.record_channel(5.0, {10.0, 2.0, 0});
  // Ask for a 1000-second window at t=10: only one sample exists.
  const auto window = twin.feature_window(10.0, 1000.0, 8, scaling);
  EXPECT_EQ(window.size(), twin::UserDigitalTwin::kFeatureChannels * 8);
  // The sample lands in the last bin region and holds forward; bins before
  // it are zero.
  EXPECT_EQ(window[0], 0.0f);
  EXPECT_GT(window[7], 0.0f);
}

TEST(UdtCorners, SummaryWithOnlyWatchData) {
  twin::UserDigitalTwin twin(0);
  const twin::FeatureScaling scaling{100.0, 100.0, 10.0, 40.0};
  twin::WatchObservation w;
  w.category = video::Category::kComedy;
  w.watch_fraction = 0.4;
  w.watch_seconds = 4.0;
  w.duration_s = 10.0;
  twin.record_watch(1.0, w);
  const auto features = twin.summary_features(2.0, 2.0, scaling);
  EXPECT_EQ(features.size(), 6u + video::kCategoryCount);
  EXPECT_DOUBLE_EQ(features[0], 0.0);  // no channel data
  EXPECT_DOUBLE_EQ(features[4], 0.4);  // mean watch fraction
}

// -------------------------------------------------- swiping distributions

TEST(SwipingCorners, SingleObservationCdfStep) {
  analysis::SwipingDistribution dist(10, 1.0);
  dist.observe(video::Category::kNews, 0.55);
  // All mass in bin 5 ([0.5, 0.6)): CDF 0 before, 1 after.
  EXPECT_NEAR(dist.cumulative_swipe_probability(video::Category::kNews, 0.5), 0.0,
              1e-9);
  EXPECT_NEAR(dist.cumulative_swipe_probability(video::Category::kNews, 0.6), 1.0,
              1e-9);
}

TEST(SwipingCorners, ExpectedMaxHugeGroupSaturates) {
  analysis::SwipingDistribution dist;
  Rng rng(15);
  for (int i = 0; i < 500; ++i) {
    dist.observe(video::Category::kGame, rng.beta(2.0, 2.0));
  }
  const double e = dist.expected_max_watch_fraction(video::Category::kGame, 100000);
  EXPECT_GT(e, 0.9);
  EXPECT_LE(e, 1.0);
}

// -------------------------------------------------- sub-second clip corner

TEST(GroupPlaybackCorners, SubPointTwoSecondClipsPlayCleanly) {
  // Regression: the group on-air window was clamped into [0.2, duration],
  // which is UB (clamp with lo > hi) whenever a clip runs shorter than
  // 0.2 s. A catalog made entirely of such clips must play through the
  // grouped pipeline with every window bounded by its clip length.
  core::SchemeConfig cfg;
  cfg.seed = 77;
  cfg.user_count = 12;
  cfg.interval_s = 30.0;
  cfg.warmup_intervals = 1;
  cfg.feature_window_s = 60.0;
  cfg.feature_timesteps = 16;
  cfg.session.engagement.catalog.videos_per_category = 12;
  cfg.session.engagement.catalog.min_duration_s = 0.05;
  cfg.session.engagement.catalog.max_duration_s = 0.15;
  cfg.compressor.epochs_per_fit = 1;
  cfg.grouping.k_min = 2;
  cfg.grouping.k_max = 4;
  cfg.grouping.ddqn.hidden = {16};
  cfg.grouping.kmeans.restarts = 2;
  cfg.demand.interval_s = cfg.interval_s;
  cfg.recommender.playlist_size = 16;

  core::Simulation sim(cfg);
  const auto reports = sim.run(3);
  for (const auto& r : reports) {
    EXPECT_TRUE(std::isfinite(r.actual_radio_hz_total));
    EXPECT_TRUE(std::isfinite(r.predicted_radio_hz_total));
    if (!r.grouped) {
      continue;
    }
    EXPECT_GT(r.actual_radio_hz_total, 0.0);
    for (const auto& g : r.groups) {
      // Sub-0.2 s clips + swipe gaps: a 30 s interval burns through many.
      EXPECT_GT(g.videos_played, 10u);
    }
  }
}

// ------------------------------------------- group accessor bounds guards

/// Shared fixture state: one tiny simulation before grouping (no groups
/// yet) and one after (some groups active).
core::SchemeConfig tiny_sim_config(std::uint64_t seed) {
  core::SchemeConfig cfg;
  cfg.seed = seed;
  cfg.user_count = 10;
  cfg.interval_s = 20.0;
  cfg.warmup_intervals = 1;
  cfg.feature_window_s = 40.0;
  cfg.feature_timesteps = 8;
  cfg.session.engagement.catalog.videos_per_category = 10;
  cfg.compressor.epochs_per_fit = 1;
  cfg.grouping.k_min = 2;
  cfg.grouping.k_max = 3;
  cfg.grouping.ddqn.hidden = {8};
  cfg.grouping.kmeans.restarts = 1;
  cfg.demand.interval_s = cfg.interval_s;
  cfg.recommender.playlist_size = 8;
  return cfg;
}

TEST(GroupAccessorBounds, GroupMembersOutOfRangeThrows) {
  core::Simulation fresh(tiny_sim_config(71));
  EXPECT_THROW(fresh.group_members(0), util::RuntimeError);  // no groups yet
  core::Simulation sim(tiny_sim_config(71));
  sim.run(2);
  ASSERT_GT(sim.group_count(), 0u);
  EXPECT_NO_THROW(sim.group_members(sim.group_count() - 1));
  EXPECT_THROW(sim.group_members(sim.group_count()), util::RuntimeError);
}

TEST(GroupAccessorBounds, GroupSwipingOutOfRangeThrows) {
  core::Simulation sim(tiny_sim_config(72));
  EXPECT_THROW(sim.group_swiping(0), util::RuntimeError);
  sim.run(2);
  EXPECT_THROW(sim.group_swiping(sim.group_count()), util::RuntimeError);
}

TEST(GroupAccessorBounds, GroupPreferenceOutOfRangeThrows) {
  core::Simulation sim(tiny_sim_config(73));
  EXPECT_THROW(sim.group_preference(0), util::RuntimeError);
  sim.run(2);
  EXPECT_THROW(sim.group_preference(sim.group_count()), util::RuntimeError);
}

TEST(GroupAccessorBounds, GroupRecommendationOutOfRangeThrows) {
  core::Simulation sim(tiny_sim_config(74));
  EXPECT_THROW(sim.group_recommendation(0), util::RuntimeError);
  sim.run(2);
  EXPECT_THROW(sim.group_recommendation(sim.group_count()), util::RuntimeError);
}

TEST(GroupAccessorBounds, MostPreferringGroupWithoutGroupsThrows) {
  core::Simulation sim(tiny_sim_config(75));
  EXPECT_THROW(sim.most_preferring_group(video::Category::kNews),
               util::RuntimeError);
  sim.run(2);
  EXPECT_NO_THROW(sim.most_preferring_group(video::Category::kNews));
}

// --------------------------------------------- configuration validation

TEST(ConfigValidation, SchemeConfigRejectsDegenerateValues) {
  const core::SchemeConfig good = tiny_sim_config(76);
  EXPECT_NO_THROW(core::validate(good));

  core::SchemeConfig cfg = good;
  cfg.user_count = 0;
  EXPECT_THROW(core::Simulation{cfg}, PreconditionError);

  cfg = good;
  cfg.tick_s = 0.0;  // would otherwise divide by zero in the tick schedule
  EXPECT_THROW(core::Simulation{cfg}, PreconditionError);

  cfg = good;
  cfg.tick_s = -1.0;
  EXPECT_THROW(core::Simulation{cfg}, PreconditionError);

  cfg = good;
  cfg.interval_s = 0.5 * cfg.tick_s;  // interval shorter than one tick
  EXPECT_THROW(core::Simulation{cfg}, PreconditionError);

  cfg = good;
  cfg.interval_s = 0.0;
  EXPECT_THROW(core::Simulation{cfg}, PreconditionError);

  cfg = good;
  cfg.feature_window_s = 0.0;
  EXPECT_THROW(core::Simulation{cfg}, PreconditionError);

  cfg = good;
  cfg.grouping.k_min = 5;
  cfg.grouping.k_max = 3;
  EXPECT_THROW(core::Simulation{cfg}, PreconditionError);

  cfg = good;
  cfg.popularity_forgetting = 0.0;
  EXPECT_THROW(core::Simulation{cfg}, PreconditionError);
}

TEST(ConfigValidation, FleetConfigRejectsDegenerateValues) {
  core::FleetConfig good;
  good.base = tiny_sim_config(77);
  good.cell_count = 2;
  good.total_users = 8;
  EXPECT_NO_THROW(core::validate(good));

  core::FleetConfig cfg = good;
  cfg.cell_count = 0;
  EXPECT_THROW(core::SimulationFleet{cfg}, PreconditionError);

  cfg = good;
  cfg.total_users = cfg.cell_count - 1;  // a cell would get zero users
  EXPECT_THROW(core::SimulationFleet{cfg}, PreconditionError);

  // The per-cell base scheme is validated up front too — a zero tick_s
  // must throw at fleet construction, not hang inside the first interval.
  cfg = good;
  cfg.base.tick_s = 0.0;
  EXPECT_THROW(core::SimulationFleet{cfg}, PreconditionError);
}

// --------------------------------------------------------- session corners

TEST(SessionCorners, TinyTickGranularity) {
  Rng rng(16);
  video::CatalogConfig ccfg;
  ccfg.videos_per_category = 10;
  const auto catalog = video::Catalog::generate(ccfg, rng);
  behavior::PreferenceVector aff{};
  aff.fill(1.0);
  behavior::SessionConfig scfg;
  behavior::ViewingSession session(0, catalog, scfg, aff, Rng(17));
  std::vector<behavior::ViewEvent> events;
  // 0.1-second ticks for 2 simulated minutes.
  for (int t = 0; t < 1200; ++t) {
    session.advance(0.1 * t, 0.1, events);
  }
  EXPECT_GT(events.size(), 0u);
  for (const auto& ev : events) {
    EXPECT_LE(ev.watch_seconds, ev.duration_s + 1e-9);
  }
}

}  // namespace
