// Unit tests for dtmsv::video — bitrate ladders, catalog generation with
// Zipf popularity, the synthetic dataset generator's statistical shape, CSV
// round-trips, and the transcoding cost model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/stats.hpp"
#include "video/catalog.hpp"
#include "video/dataset.hpp"
#include "video/transcode.hpp"

namespace {

using namespace dtmsv::video;
using dtmsv::util::PreconditionError;
using dtmsv::util::Rng;

// ----------------------------------------------------------------- category

TEST(Category, SixCategoriesWithNames) {
  EXPECT_EQ(all_categories().size(), kCategoryCount);
  std::set<std::string> names;
  for (const Category c : all_categories()) {
    names.insert(to_string(c));
  }
  EXPECT_EQ(names.size(), kCategoryCount);
  EXPECT_EQ(to_string(Category::kNews), "News");
  EXPECT_EQ(to_string(Category::kGame), "Game");
}

// ------------------------------------------------------------ BitrateLadder

TEST(BitrateLadder, StandardFiveRungs) {
  const BitrateLadder ladder = BitrateLadder::standard();
  EXPECT_EQ(ladder.rung_count(), 5u);
  EXPECT_DOUBLE_EQ(ladder.bottom_kbps(), 750.0);
  EXPECT_DOUBLE_EQ(ladder.top_kbps(), 4300.0);
}

TEST(BitrateLadder, RejectsNonAscending) {
  EXPECT_THROW(BitrateLadder({100.0, 100.0}), PreconditionError);
  EXPECT_THROW(BitrateLadder({200.0, 100.0}), PreconditionError);
  EXPECT_THROW(BitrateLadder({-1.0, 100.0}), PreconditionError);
  EXPECT_THROW(BitrateLadder({}), PreconditionError);
}

TEST(BitrateLadder, BestRungWithinBudget) {
  const BitrateLadder ladder = BitrateLadder::standard();
  EXPECT_EQ(ladder.best_rung_within(100.0), 0u);    // below lowest → rung 0
  EXPECT_EQ(ladder.best_rung_within(750.0), 0u);
  EXPECT_EQ(ladder.best_rung_within(1850.0), 2u);
  EXPECT_EQ(ladder.best_rung_within(2000.0), 2u);
  EXPECT_EQ(ladder.best_rung_within(99999.0), 4u);
}

// ----------------------------------------------------------------- Catalog

CatalogConfig small_catalog() {
  CatalogConfig cfg;
  cfg.videos_per_category = 50;
  return cfg;
}

TEST(Catalog, GeneratesRequestedSize) {
  Rng rng(1);
  const Catalog cat = Catalog::generate(small_catalog(), rng);
  EXPECT_EQ(cat.size(), 50u * kCategoryCount);
  for (const Category c : all_categories()) {
    EXPECT_EQ(cat.category_videos(c).size(), 50u);
  }
}

TEST(Catalog, VideoIdsAreDense) {
  Rng rng(2);
  const Catalog cat = Catalog::generate(small_catalog(), rng);
  for (std::uint64_t id = 0; id < cat.size(); ++id) {
    EXPECT_EQ(cat.video(id).id, id);
  }
  EXPECT_THROW(cat.video(cat.size()), PreconditionError);
}

TEST(Catalog, DurationsWithinConfiguredRange) {
  Rng rng(3);
  CatalogConfig cfg = small_catalog();
  cfg.min_duration_s = 5.0;
  cfg.max_duration_s = 60.0;
  const Catalog cat = Catalog::generate(cfg, rng);
  for (const auto& v : cat.videos()) {
    EXPECT_GE(v.duration_s, 5.0 - 1e-9);
    EXPECT_LE(v.duration_s, 60.0 + 1e-9);
  }
}

TEST(Catalog, DurationsSkewShort) {
  // Log-uniform durations: median ≈ sqrt(5·60) ≈ 17.3 < arithmetic mid 32.5.
  Rng rng(4);
  CatalogConfig cfg = small_catalog();
  cfg.videos_per_category = 500;
  const Catalog cat = Catalog::generate(cfg, rng);
  std::vector<double> durations;
  for (const auto& v : cat.videos()) {
    durations.push_back(v.duration_s);
  }
  EXPECT_LT(dtmsv::util::percentile(durations, 50.0), 22.0);
}

TEST(Catalog, LadderJitterPreservesShape) {
  Rng rng(5);
  const Catalog cat = Catalog::generate(small_catalog(), rng);
  for (const auto& v : cat.videos()) {
    ASSERT_EQ(v.ladder.rung_count(), 5u);
    // Jitter is a common scale: rung ratios match the standard ladder.
    const double ratio = v.ladder.top_kbps() / v.ladder.bottom_kbps();
    EXPECT_NEAR(ratio, 4300.0 / 750.0, 1e-9);
  }
}

TEST(Catalog, ZipfSamplingPrefersLowRanks) {
  Rng rng(6);
  const Catalog cat = Catalog::generate(small_catalog(), rng);
  std::size_t rank_sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const Video& v = cat.sample_from_category(Category::kNews, rng);
    rank_sum += cat.popularity_rank(v.id);
  }
  const double mean_rank = static_cast<double>(rank_sum) / n;
  // Uniform sampling would give mean rank 24.5; Zipf(0.9) over 50 gives ~11.
  EXPECT_LT(mean_rank, 18.0);
}

TEST(Catalog, PopularityProbabilitiesSumToOne) {
  Rng rng(7);
  const Catalog cat = Catalog::generate(small_catalog(), rng);
  double total = 0.0;
  for (const std::uint64_t id : cat.category_videos(Category::kMusic)) {
    total += cat.popularity_probability(id);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Catalog, DeterministicGivenSeed) {
  Rng a(8);
  Rng b(8);
  const Catalog ca = Catalog::generate(small_catalog(), a);
  const Catalog cb = Catalog::generate(small_catalog(), b);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::uint64_t id = 0; id < ca.size(); ++id) {
    EXPECT_DOUBLE_EQ(ca.video(id).duration_s, cb.video(id).duration_s);
  }
}

// ----------------------------------------------------------------- Dataset

DatasetConfig small_dataset() {
  DatasetConfig cfg;
  cfg.catalog.videos_per_category = 40;
  cfg.user_count = 30;
  cfg.sessions_per_user = 40;
  return cfg;
}

TEST(Dataset, GeneratesExpectedTraceSize) {
  Rng rng(9);
  const Dataset ds = Dataset::generate(small_dataset(), rng);
  EXPECT_EQ(ds.records().size(), 30u * 40u);
  EXPECT_EQ(ds.user_count(), 30u);
  EXPECT_EQ(ds.affinities().size(), 30u);
}

TEST(Dataset, WatchFractionsInUnitInterval) {
  Rng rng(10);
  const Dataset ds = Dataset::generate(small_dataset(), rng);
  for (const auto& rec : ds.records()) {
    EXPECT_GE(rec.watch_fraction, 0.0);
    EXPECT_LE(rec.watch_fraction, 1.0);
    EXPECT_NEAR(rec.watch_seconds, rec.watch_fraction * rec.duration_s, 1e-9);
  }
}

TEST(Dataset, AffinityDrivesEngagement) {
  // A user's favourite category must show a higher mean watch fraction than
  // their least favourite, across the population.
  Rng rng(11);
  DatasetConfig cfg = small_dataset();
  cfg.user_count = 60;
  cfg.sessions_per_user = 120;
  const Dataset ds = Dataset::generate(cfg, rng);

  double fav_sum = 0.0;
  std::size_t fav_n = 0;
  double least_sum = 0.0;
  std::size_t least_n = 0;
  for (std::uint64_t u = 0; u < ds.user_count(); ++u) {
    const auto& aff = ds.affinities()[u];
    const auto fav = static_cast<Category>(
        std::distance(aff.begin(), std::max_element(aff.begin(), aff.end())));
    const auto least = static_cast<Category>(
        std::distance(aff.begin(), std::min_element(aff.begin(), aff.end())));
    for (const auto* rec : ds.records_of(u)) {
      if (rec->category == fav) {
        fav_sum += rec->watch_fraction;
        ++fav_n;
      } else if (rec->category == least) {
        least_sum += rec->watch_fraction;
        ++least_n;
      }
    }
  }
  ASSERT_GT(fav_n, 0u);
  ASSERT_GT(least_n, 0u);
  EXPECT_GT(fav_sum / fav_n, least_sum / least_n + 0.15);
}

TEST(Dataset, InstantSwipeSpikeExists) {
  Rng rng(12);
  DatasetConfig cfg = small_dataset();
  cfg.instant_swipe_prob = 0.3;
  cfg.user_count = 50;
  cfg.sessions_per_user = 100;
  const Dataset ds = Dataset::generate(cfg, rng);
  std::size_t early = 0;
  for (const auto& rec : ds.records()) {
    if (rec.watch_fraction < 0.08) {
      ++early;
    }
  }
  const double early_rate = static_cast<double>(early) / ds.records().size();
  EXPECT_GT(early_rate, 0.2);
}

TEST(Dataset, CsvRoundTrip) {
  Rng rng(13);
  const Dataset ds = Dataset::generate(small_dataset(), rng);
  const std::string csv = ds.trace_to_csv();
  const auto parsed = Dataset::trace_from_csv(csv);
  ASSERT_EQ(parsed.size(), ds.records().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].user_id, ds.records()[i].user_id);
    EXPECT_EQ(parsed[i].video_id, ds.records()[i].video_id);
    EXPECT_EQ(parsed[i].category, ds.records()[i].category);
    EXPECT_DOUBLE_EQ(parsed[i].watch_fraction, ds.records()[i].watch_fraction);
  }
}

TEST(Dataset, CsvUnknownCategoryRejected) {
  const std::string bad =
      "user_id,video_id,category,duration_s,watch_fraction,watch_seconds\n"
      "0,0,Nonsense,10,0.5,5\n";
  EXPECT_THROW(Dataset::trace_from_csv(bad), dtmsv::util::RuntimeError);
}

TEST(SampleWatchFraction, MeanIncreasesWithAffinity) {
  DatasetConfig cfg;
  cfg.instant_swipe_prob = 0.1;
  Rng rng(14);
  const auto mean_for = [&](double affinity) {
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      total += sample_watch_fraction(affinity, cfg, rng);
    }
    return total / n;
  };
  const double low = mean_for(0.05);
  const double mid = mean_for(0.3);
  const double high = mean_for(0.8);
  EXPECT_LT(low, mid);
  EXPECT_LT(mid, high);
}

TEST(SampleWatchFraction, RejectsOutOfRangeAffinity) {
  DatasetConfig cfg;
  Rng rng(15);
  EXPECT_THROW(sample_watch_fraction(-0.1, cfg, rng), PreconditionError);
  EXPECT_THROW(sample_watch_fraction(1.1, cfg, rng), PreconditionError);
}

// --------------------------------------------------------------- Transcode

TEST(Transcode, TopRungIsFree) {
  TranscodeModel model;
  Video v;
  v.duration_s = 30.0;
  EXPECT_DOUBLE_EQ(model.transcode_cycles(v, v.ladder.rung_count() - 1, 30.0), 0.0);
}

TEST(Transcode, CyclesScaleWithBitrateAndTime) {
  TranscodeModel model;
  model.cycles_per_bit = 10.0;
  Video v;
  v.duration_s = 30.0;
  const double c0 = model.transcode_cycles(v, 0, 10.0);
  // rung 0 = 750 kbps → 10 s → 7.5e6 bits → 7.5e7 cycles.
  EXPECT_DOUBLE_EQ(c0, 10.0 * 750.0 * 1e3 * 10.0);
  // Twice the time, twice the cycles.
  EXPECT_DOUBLE_EQ(model.transcode_cycles(v, 0, 20.0), 2.0 * c0);
  // Higher rung costs more per second.
  EXPECT_GT(model.transcode_cycles(v, 1, 10.0), c0);
}

TEST(Transcode, WatchTimeCappedAtDuration) {
  TranscodeModel model;
  Video v;
  v.duration_s = 10.0;
  EXPECT_DOUBLE_EQ(model.transcode_cycles(v, 0, 100.0),
                   model.transcode_cycles(v, 0, 10.0));
}

TEST(Transcode, UtilisationFraction) {
  TranscodeModel model;
  model.capacity_cycles_per_s = 1e9;
  EXPECT_DOUBLE_EQ(model.utilisation(5e8, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(model.utilisation(2e9, 4.0), 0.5);
}

TEST(Transcode, InvalidInputsRejected) {
  TranscodeModel model;
  Video v;
  EXPECT_THROW(model.transcode_cycles(v, 99, 1.0), PreconditionError);
  EXPECT_THROW(model.transcode_cycles(v, 0, -1.0), PreconditionError);
  EXPECT_THROW(model.utilisation(-1.0, 1.0), PreconditionError);
  EXPECT_THROW(model.utilisation(1.0, 0.0), PreconditionError);
}

}  // namespace
