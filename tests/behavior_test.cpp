// Unit tests for dtmsv::behavior — preference normalisation/entropy, the
// engagement-driven preference estimator, affinity sampling, and viewing-
// session event generation.
#include <gtest/gtest.h>

#include <cmath>

#include "behavior/preference.hpp"
#include "behavior/session.hpp"
#include "util/error.hpp"
#include "video/catalog.hpp"

namespace {

using namespace dtmsv::behavior;
using dtmsv::util::PreconditionError;
using dtmsv::util::Rng;
using dtmsv::video::Category;
using dtmsv::video::kCategoryCount;

// --------------------------------------------------------------- preference

TEST(Preference, NormalizedSumsToOne) {
  PreferenceVector v{};
  v[0] = 2.0;
  v[1] = 6.0;
  const PreferenceVector p = normalized(v);
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
  for (std::size_t i = 2; i < p.size(); ++i) {
    EXPECT_DOUBLE_EQ(p[i], 0.0);
  }
}

TEST(Preference, NormalizedZeroVectorIsUniform) {
  const PreferenceVector zero{};
  const PreferenceVector p = normalized(zero);
  for (const double x : p) {
    EXPECT_DOUBLE_EQ(x, 1.0 / kCategoryCount);
  }
}

TEST(Preference, EntropyExtremes) {
  PreferenceVector uniform{};
  uniform.fill(1.0);
  EXPECT_NEAR(entropy(uniform), std::log(static_cast<double>(kCategoryCount)), 1e-9);

  PreferenceVector point{};
  point[2] = 5.0;
  EXPECT_NEAR(entropy(point), 0.0, 1e-12);
}

TEST(Preference, TopCategory) {
  PreferenceVector v{};
  v[3] = 0.9;
  v[1] = 0.1;
  EXPECT_EQ(top_category(v), 3u);
}

// ------------------------------------------------------ PreferenceEstimator

TEST(PreferenceEstimator, UniformBeforeEvidence) {
  PreferenceEstimator est;
  const PreferenceVector p = est.estimate();
  for (const double x : p) {
    EXPECT_DOUBLE_EQ(x, 1.0 / kCategoryCount);
  }
  EXPECT_DOUBLE_EQ(est.evidence_seconds(), 0.0);
}

TEST(PreferenceEstimator, TracksEngagement) {
  PreferenceEstimator est;
  est.observe(Category::kNews, 30.0);
  est.observe(Category::kNews, 30.0);
  est.observe(Category::kGame, 20.0);
  const PreferenceVector p = est.estimate();
  EXPECT_NEAR(p[static_cast<std::size_t>(Category::kNews)], 0.75, 1e-12);
  EXPECT_NEAR(p[static_cast<std::size_t>(Category::kGame)], 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(est.evidence_seconds(), 80.0);
}

TEST(PreferenceEstimator, DecayForgetsOldTaste) {
  PreferenceEstimator est(0.5);
  est.observe(Category::kNews, 100.0);
  for (int i = 0; i < 10; ++i) {
    est.decay();
  }
  est.observe(Category::kMusic, 10.0);
  // Old News evidence decayed to ~0.1 s, new Music dominates.
  EXPECT_EQ(top_category(est.estimate()), static_cast<std::size_t>(Category::kMusic));
}

TEST(PreferenceEstimator, RejectsNegativeEngagement) {
  PreferenceEstimator est;
  EXPECT_THROW(est.observe(Category::kNews, -1.0), PreconditionError);
}

TEST(PreferenceEstimator, RejectsBadForgetting) {
  EXPECT_THROW(PreferenceEstimator(0.0), PreconditionError);
  EXPECT_THROW(PreferenceEstimator(1.5), PreconditionError);
}

TEST(SampleAffinity, ValidDistribution) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const PreferenceVector a = sample_affinity(0.35, rng);
    double total = 0.0;
    for (const double x : a) {
      EXPECT_GE(x, 0.0);
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(SampleAffinity, LowConcentrationPolarises) {
  Rng rng(2);
  double top_mass_low = 0.0;
  double top_mass_high = 0.0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    const PreferenceVector lo = sample_affinity(0.1, rng);
    const PreferenceVector hi = sample_affinity(10.0, rng);
    top_mass_low += *std::max_element(lo.begin(), lo.end());
    top_mass_high += *std::max_element(hi.begin(), hi.end());
  }
  EXPECT_GT(top_mass_low / n, top_mass_high / n + 0.2);
}

// ------------------------------------------------------------ ViewingSession

SessionConfig session_config() {
  SessionConfig cfg;
  cfg.engagement.catalog.videos_per_category = 30;
  return cfg;
}

dtmsv::video::Catalog make_catalog(Rng& rng) {
  return dtmsv::video::Catalog::generate(session_config().engagement.catalog, rng);
}

TEST(ViewingSession, EmitsEventsOverTime) {
  Rng rng(3);
  const auto catalog = make_catalog(rng);
  PreferenceVector aff{};
  aff.fill(1.0 / kCategoryCount);
  ViewingSession session(7, catalog, session_config(), aff, Rng(4));

  std::vector<ViewEvent> events;
  for (int t = 0; t < 600; ++t) {
    session.advance(static_cast<double>(t), 1.0, events);
  }
  EXPECT_GT(events.size(), 5u) << "10 minutes of viewing must produce events";
  for (const auto& ev : events) {
    EXPECT_EQ(ev.user_id, 7u);
    EXPECT_GE(ev.watch_fraction, 0.0);
    EXPECT_LE(ev.watch_fraction, 1.0);
    EXPECT_GE(ev.watch_seconds, 0.0);
    EXPECT_LE(ev.watch_seconds, ev.duration_s + 1e-9);
  }
}

TEST(ViewingSession, EventTimesNonDecreasing) {
  Rng rng(5);
  const auto catalog = make_catalog(rng);
  PreferenceVector aff{};
  aff[0] = 1.0;
  ViewingSession session(0, catalog, session_config(), aff, Rng(6));
  std::vector<ViewEvent> events;
  for (int t = 0; t < 1200; ++t) {
    session.advance(static_cast<double>(t), 1.0, events);
  }
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_time, events[i - 1].start_time);
  }
}

TEST(ViewingSession, StrongAffinityShapesCategoryMix) {
  Rng rng(7);
  const auto catalog = make_catalog(rng);
  PreferenceVector aff{};
  aff[static_cast<std::size_t>(Category::kSports)] = 1.0;
  SessionConfig cfg = session_config();
  cfg.feed_affinity_bias = 0.9;
  ViewingSession session(0, catalog, cfg, aff, Rng(8));
  std::vector<ViewEvent> events;
  for (int t = 0; t < 3000; ++t) {
    session.advance(static_cast<double>(t), 1.0, events);
  }
  ASSERT_GT(events.size(), 20u);
  std::size_t sports = 0;
  for (const auto& ev : events) {
    if (ev.category == Category::kSports) {
      ++sports;
    }
  }
  // 90% served from taste + 10% uniform explore → ~91–92% Sports.
  EXPECT_GT(static_cast<double>(sports) / events.size(), 0.75);
}

TEST(ViewingSession, CompletedFlagConsistent) {
  Rng rng(9);
  const auto catalog = make_catalog(rng);
  PreferenceVector aff{};
  aff.fill(1.0);
  ViewingSession session(0, catalog, session_config(), aff, Rng(10));
  std::vector<ViewEvent> events;
  for (int t = 0; t < 2000; ++t) {
    session.advance(static_cast<double>(t), 1.0, events);
  }
  for (const auto& ev : events) {
    if (ev.completed) {
      EXPECT_NEAR(ev.watch_seconds, ev.duration_s, 1e-6);
    } else {
      EXPECT_LT(ev.watch_seconds, ev.duration_s);
    }
  }
}

TEST(ViewingSession, AdvanceRejectsNonPositiveDt) {
  Rng rng(11);
  const auto catalog = make_catalog(rng);
  PreferenceVector aff{};
  aff.fill(1.0);
  ViewingSession session(0, catalog, session_config(), aff, Rng(12));
  std::vector<ViewEvent> events;
  EXPECT_THROW(session.advance(0.0, 0.0, events), PreconditionError);
}

TEST(ViewingSession, SetAffinityRedirectsFeed) {
  Rng rng(13);
  const auto catalog = make_catalog(rng);
  PreferenceVector news{};
  news[static_cast<std::size_t>(Category::kNews)] = 1.0;
  SessionConfig cfg = session_config();
  cfg.feed_affinity_bias = 1.0;
  ViewingSession session(0, catalog, cfg, news, Rng(14));

  PreferenceVector game{};
  game[static_cast<std::size_t>(Category::kGame)] = 1.0;
  session.set_affinity(game);

  std::vector<ViewEvent> events;
  for (int t = 0; t < 2000; ++t) {
    session.advance(static_cast<double>(t), 1.0, events);
  }
  ASSERT_GT(events.size(), 10u);
  // Events after the switch (skip the first in-flight video) are Game.
  std::size_t game_count = 0;
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i].category == Category::kGame) {
      ++game_count;
    }
  }
  EXPECT_GT(static_cast<double>(game_count) / (events.size() - 1), 0.95);
}

TEST(ViewingSession, DeterministicGivenSeed) {
  Rng rng(15);
  const auto catalog = make_catalog(rng);
  PreferenceVector aff{};
  aff.fill(1.0);
  ViewingSession a(0, catalog, session_config(), aff, Rng(16));
  ViewingSession b(0, catalog, session_config(), aff, Rng(16));
  std::vector<ViewEvent> ea;
  std::vector<ViewEvent> eb;
  for (int t = 0; t < 500; ++t) {
    a.advance(static_cast<double>(t), 1.0, ea);
    b.advance(static_cast<double>(t), 1.0, eb);
  }
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].video_id, eb[i].video_id);
    EXPECT_DOUBLE_EQ(ea[i].watch_seconds, eb[i].watch_seconds);
  }
}

}  // namespace
