// ABL-INT — ablation of design choice 5 (DESIGN.md §4): the resource
// reservation interval. The paper fixes it at 5 minutes; this bench sweeps
// it and reports prediction accuracy plus the provisioning consequences
// (how much spectrum a planner reserving prediction + 10% headroom wastes
// or misses), and the per-stage wall-time breakdown of the interval loop
// (compression vs. grouping vs. demand prediction vs. environment
// simulation), emitted into BENCH_micro_perf.json so the perf trajectory
// can attribute interval cost per stage.
//
// Shape to reproduce: short intervals track the system closely but are
// noisy (few videos per interval); very long intervals average nicely but
// react slowly; a knee sits around the paper's choice.
#include <iostream>

#include "bench_common.hpp"
#include "bench_to_json.hpp"

namespace {

using namespace dtmsv;

struct IntervalResult {
  double interval_s = 0.0;
  bench::RunSeries series;
  double waste_frac = 0.0;  // over-reserved fraction of actual demand
  double unmet_frac = 0.0;  // unmet fraction of actual demand
  core::StageTimings timings;  // measured over the reported intervals only
};

IntervalResult run_interval_config(double interval_s, double total_sim_s) {
  core::SchemeConfig config = bench::sweep_config(/*seed=*/5);
  config.interval_s = interval_s;
  config.demand.interval_s = interval_s;
  config.feature_window_s = 2.0 * interval_s;
  const auto intervals = static_cast<std::size_t>(total_sim_s / interval_s);

  core::Simulation sim(config);
  IntervalResult result;
  result.interval_s = interval_s;
  // Warm up one third, report the rest.
  const std::size_t warmup = intervals / 3;
  bench::run_series(sim, warmup);
  sim.reset_stage_timings();  // attribute stage cost to the scored slice only
  result.series = bench::run_series(sim, intervals - warmup);
  result.timings = sim.stage_timings();

  // Provisioning outcome for a planner reserving prediction x 1.1.
  double reserved_hz_s = 0.0;
  double actual_hz_s = 0.0;
  double waste = 0.0;
  double unmet = 0.0;
  for (std::size_t i = 0; i < result.series.size(); ++i) {
    const double reserved = result.series.predicted_radio[i] * 1.1;
    const double actual = result.series.actual_radio[i];
    reserved_hz_s += reserved * interval_s;
    actual_hz_s += actual * interval_s;
    if (reserved >= actual) {
      waste += (reserved - actual) * interval_s;
    } else {
      unmet += (actual - reserved) * interval_s;
    }
  }
  if (actual_hz_s > 0.0) {
    result.waste_frac = waste / actual_hz_s;
    result.unmet_frac = unmet / actual_hz_s;
  }
  return result;
}

}  // namespace

int main() {
  // Equal simulated wall-clock per configuration so comparisons are fair.
  constexpr double kTotalSimS = 9000.0;  // 2.5 simulated hours

  const std::vector<double> intervals_s = {60.0, 120.0, 300.0, 600.0, 900.0};
  std::vector<IntervalResult> results;
  for (const double interval : intervals_s) {
    std::cout << "reservation interval " << interval << " s..." << std::endl;
    results.push_back(run_interval_config(interval, kTotalSimS));
  }

  util::Table table({"interval", "scored intervals", "radio accuracy",
                     "compute accuracy", "waste (10% headroom)", "unmet demand"});
  for (const auto& r : results) {
    table.add_row({util::fixed(r.interval_s, 0) + " s",
                   std::to_string(r.series.size()),
                   util::percent(r.series.radio_accuracy(), 2),
                   util::percent(r.series.compute_accuracy(), 2),
                   util::percent(r.waste_frac, 1), util::percent(r.unmet_frac, 1)});
  }
  table.print("ABL-INT: reservation interval sweep (paper uses 300 s)");

  // Per-stage wall-time breakdown: where each configuration's interval loop
  // actually spends its time (per simulated interval, milliseconds).
  util::Table stages({"interval", "simulate ms", "feature ms", "grouping ms",
                      "demand ms", "pipeline share"});
  std::vector<bench::ManualBenchResult> json;
  for (const auto& r : results) {
    const auto n = static_cast<double>(std::max<std::size_t>(r.timings.intervals, 1));
    const double total = r.timings.total_s();
    stages.add_row({util::fixed(r.interval_s, 0) + " s",
                    util::fixed(1e3 * r.timings.simulate_s / n, 2),
                    util::fixed(1e3 * r.timings.feature_s / n, 2),
                    util::fixed(1e3 * r.timings.grouping_s / n, 2),
                    util::fixed(1e3 * r.timings.demand_s / n, 2),
                    total > 0.0 ? util::percent(r.timings.pipeline_s() / total, 1)
                                : "-"});
    bench::ManualBenchResult entry;
    entry.name = "ABL_INT/StageBreakdown/interval_" +
                 std::to_string(static_cast<int>(r.interval_s)) + "s";
    entry.real_time_s = total / n;
    entry.counters = {
        {"simulate_s_per_interval", r.timings.simulate_s / n},
        {"feature_s_per_interval", r.timings.feature_s / n},
        {"grouping_s_per_interval", r.timings.grouping_s / n},
        {"demand_s_per_interval", r.timings.demand_s / n},
        {"scored_intervals", static_cast<double>(r.timings.intervals)},
    };
    json.push_back(std::move(entry));
  }
  stages.print("ABL-INT: per-stage wall time per interval");
  bench::write_manual_benchmarks_json("BENCH_micro_perf.json", json);
  return 0;
}
