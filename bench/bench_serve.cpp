// Serving-mode latency/throughput benchmark: drives a core::ServeLoop with
// ServeWorkload traffic under the production SteadyServeClock and reports
// per-prediction latency percentiles (p50/p95/p99) plus sustained ingestion
// throughput (events/sec). Two scenarios land in BENCH_serve.json (gated by
// tools/bench_diff.py in CI):
//
//   SERVE_steady    nominal traffic, paper pipeline at full fidelity
//   SERVE_overload  flash-crowd phase (8x rates into a small queue) that
//                   forces sheds and degradation-ladder activity
//
// Manual harness (no google-benchmark state loop): one serve run is the
// natural measurement unit, and the interesting numbers are the loop's own
// latency record, not an averaged wall time.
#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "bench_to_json.hpp"
#include "core/serve.hpp"
#include "core/serve_workload.hpp"
#include "util/table.hpp"

namespace {

using namespace dtmsv;

struct ScenarioResult {
  std::string name;
  double wall_s = 0.0;
  core::ServeStats stats;
};

core::ServeConfig bench_config() {
  core::ServeConfig cfg;
  cfg.scheme.seed = 42;
  cfg.scheme.user_count = 120;
  cfg.scheme.interval_s = 10.0;
  cfg.scheme.demand.interval_s = 10.0;
  cfg.scheme.warmup_intervals = 0;
  cfg.scheme.feature_window_s = 60.0;
  cfg.scheme.feature_timesteps = 16;
  cfg.deadline_ms = 50.0;
  return cfg;
}

ScenarioResult run_scenario(const std::string& name, core::ServeConfig cfg,
                            std::size_t intervals, std::size_t overload_start,
                            std::size_t overload_intervals,
                            double overload_multiplier) {
  core::SteadyServeClock clock;
  core::ServeLoop loop(cfg, clock);

  core::ServeWorkloadConfig wl_cfg;
  wl_cfg.seed = 7;
  wl_cfg.user_count = cfg.scheme.user_count;
  wl_cfg.engagement = cfg.scheme.session.engagement;
  core::ServeWorkload workload(wl_cfg, loop.catalog());

  const double interval_s = cfg.scheme.interval_s;
  std::vector<core::TwinEvent> events;
  const auto started = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < intervals; ++i) {
    const bool overload = overload_intervals > 0 && i >= overload_start &&
                          i < overload_start + overload_intervals;
    workload.set_rate_multiplier(overload ? overload_multiplier : 1.0);
    events.clear();
    workload.generate(static_cast<double>(i) * interval_s,
                      static_cast<double>(i + 1) * interval_s, events);
    for (const core::TwinEvent& event : events) {
      loop.offer(event);
    }
    loop.advance_to(static_cast<double>(i + 1) * interval_s);
  }

  ScenarioResult result;
  result.name = name;
  result.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                started)
                      .count();
  result.stats = loop.stats();
  return result;
}

}  // namespace

int main() {
  std::vector<ScenarioResult> results;
  results.push_back(
      run_scenario("SERVE_steady", bench_config(), /*intervals=*/12,
                   /*overload_start=*/0, /*overload_intervals=*/0,
                   /*overload_multiplier=*/1.0));

  core::ServeConfig overload_cfg = bench_config();
  overload_cfg.queue_capacity = 2048;  // small enough for the surge to shed
  results.push_back(run_scenario("SERVE_overload", overload_cfg,
                                 /*intervals=*/12, /*overload_start=*/4,
                                 /*overload_intervals=*/4,
                                 /*overload_multiplier=*/8.0));

  util::Table table({"scenario", "p50 ms", "p95 ms", "p99 ms", "events/s",
                     "miss rate", "dropped", "down", "up"});
  std::vector<bench::ManualBenchResult> json;
  for (const ScenarioResult& r : results) {
    const double p50 = core::latency_percentile(r.stats.latencies_ms, 50.0);
    const double p95 = core::latency_percentile(r.stats.latencies_ms, 95.0);
    const double p99 = core::latency_percentile(r.stats.latencies_ms, 99.0);
    const double events_per_s =
        r.wall_s > 0.0 ? static_cast<double>(r.stats.events_ingested) / r.wall_s
                       : 0.0;
    const double miss_rate =
        r.stats.intervals > 0
            ? static_cast<double>(r.stats.deadline_misses) /
                  static_cast<double>(r.stats.intervals)
            : 0.0;
    table.add_row({r.name, util::fixed(p50, 2), util::fixed(p95, 2),
                   util::fixed(p99, 2), util::fixed(events_per_s, 0),
                   util::fixed(miss_rate, 3),
                   std::to_string(r.stats.events_dropped),
                   std::to_string(r.stats.steps_down),
                   std::to_string(r.stats.steps_up)});
    json.push_back(
        {r.name,
         r.wall_s,
         {{"p50_ms", p50},
          {"p95_ms", p95},
          {"p99_ms", p99},
          {"events_per_s", events_per_s},
          {"miss_rate", miss_rate},
          {"events_ingested", static_cast<double>(r.stats.events_ingested)},
          {"events_dropped", static_cast<double>(r.stats.events_dropped)},
          {"steps_down", static_cast<double>(r.stats.steps_down)},
          {"steps_up", static_cast<double>(r.stats.steps_up)}}});
  }
  table.print("serving-mode latency and throughput");
  bench::write_manual_benchmarks_json("BENCH_serve.json", json);
  return 0;
}
