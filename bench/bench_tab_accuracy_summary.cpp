// TAB-ACC — the paper's headline accuracy as a table, extended with the
// baselines a reviewer would ask for:
//   * proposed: full DT-assisted structural prediction,
//   * last-value / EWMA / moving-average / AR(1): time-series forecasts of
//     the realized total demand (no digital twin, no group abstraction),
//   * degraded DT: the proposed scheme with lossy, slow, laggy collection
//     (what "no fresh twin" costs).
//
// Shape to reproduce: the proposed scheme attains ≈95 % radio accuracy and
// beats every series baseline; degrading twin freshness hurts.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "predict/baselines.hpp"

namespace {

using namespace dtmsv;

struct SeriesScore {
  std::vector<double> predicted;
  std::vector<double> actual;
};

/// Feeds a series predictor with the realized totals, forecasting one
/// interval ahead (same information timing as the proposed scheme).
SeriesScore score_series_baseline(predict::SeriesPredictor& predictor,
                                  const std::vector<double>& realized) {
  SeriesScore score;
  for (std::size_t i = 0; i < realized.size(); ++i) {
    if (i > 0) {  // first interval has no forecast history
      score.predicted.push_back(predictor.forecast(realized[i]));
      score.actual.push_back(realized[i]);
    }
    predictor.observe(realized[i]);
  }
  return score;
}

}  // namespace

int main() {
  using namespace dtmsv;
  constexpr std::size_t kWarmup = 46;
  constexpr std::size_t kReport = 24;

  std::cout << "running proposed scheme (" << kWarmup + kReport
            << " intervals)...\n";
  core::SchemeConfig config = bench::paper_config(/*seed=*/2023);
  core::Simulation sim(config);
  bench::run_series(sim, kWarmup);
  const bench::RunSeries proposed = bench::run_series(sim, kReport);

  std::cout << "running degraded-DT variant (stale, lossy collection)...\n";
  core::SchemeConfig degraded = config;
  degraded.collection.report_loss_prob = 0.7;
  degraded.collection.channel_period_s = 30.0;
  degraded.collection.location_period_s = 60.0;
  degraded.collection.latency_s = 60.0;
  core::Simulation sim_degraded(degraded);
  bench::run_series(sim_degraded, kWarmup);
  const bench::RunSeries degraded_series = bench::run_series(sim_degraded, kReport);

  util::Table table({"predictor", "radio accuracy", "radio RMSE (MHz)",
                     "compute accuracy (vw)"});

  const auto add_series_row = [&](const std::string& name,
                                  const SeriesScore& radio,
                                  const SeriesScore& compute) {
    const auto acc = util::prediction_accuracy(radio.actual, radio.predicted);
    const auto cacc =
        util::volume_weighted_accuracy(compute.actual, compute.predicted);
    table.add_row({name, acc ? util::percent(*acc, 2) : "n/a",
                   util::fixed(util::rmse(radio.actual, radio.predicted) / 1e6, 3),
                   cacc ? util::percent(*cacc, 2) : "n/a"});
  };

  // Proposed scheme.
  table.add_row(
      {"proposed (DT-assisted)", util::percent(proposed.radio_accuracy(), 2),
       util::fixed(util::rmse(proposed.actual_radio, proposed.predicted_radio) / 1e6, 3),
       util::percent(proposed.compute_accuracy(), 2)});

  // Series baselines on the same realized series.
  predict::LastValueSeries lv_r;
  predict::LastValueSeries lv_c;
  add_series_row("last-value", score_series_baseline(lv_r, proposed.actual_radio),
                 score_series_baseline(lv_c, proposed.actual_compute));
  predict::EwmaSeries ew_r(0.4);
  predict::EwmaSeries ew_c(0.4);
  add_series_row("ewma(0.4)", score_series_baseline(ew_r, proposed.actual_radio),
                 score_series_baseline(ew_c, proposed.actual_compute));
  predict::MovingAverageSeries ma_r(4);
  predict::MovingAverageSeries ma_c(4);
  add_series_row("moving-average(4)",
                 score_series_baseline(ma_r, proposed.actual_radio),
                 score_series_baseline(ma_c, proposed.actual_compute));
  predict::Ar1Series ar_r(12);
  predict::Ar1Series ar_c(12);
  add_series_row("ar1(12)", score_series_baseline(ar_r, proposed.actual_radio),
                 score_series_baseline(ar_c, proposed.actual_compute));

  // Degraded-DT variant.
  table.add_row(
      {"degraded DT (70% loss, 60 s lag)",
       util::percent(degraded_series.radio_accuracy(), 2),
       util::fixed(util::rmse(degraded_series.actual_radio,
                              degraded_series.predicted_radio) / 1e6, 3),
       util::percent(degraded_series.compute_accuracy(), 2)});

  table.print("accuracy summary (steady state, " + std::to_string(kReport) +
              " intervals)");
  std::cout << "\npaper headline: 95.04% radio demand prediction accuracy\n"
            << "note: series baselines forecast network totals from realized\n"
            << "history only; the proposed scheme predicts per-group demand\n"
            << "from UDT abstractions before the interval starts.\n";
  return 0;
}
