// ABL-PRED — ablation of the channel-forecast composition feeding the
// demand model: the joint min-over-members forecast (harmonic mean over the
// reconstructed group min-series) against min-of-per-member forecasts
// (last-value / EWMA / linear-trend / mean), and the effect of online
// residual calibration.
//
// Shape to reproduce: the joint forecast beats every min-of-means variant
// (which are optimistically biased — min(E[X_i]) >= E[min X_i]); bias
// correction recovers part of the gap but not the per-interval tracking.
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace dtmsv;

struct VariantResult {
  std::string name;
  bench::RunSeries series;
};

VariantResult run_variant(const std::string& name, const std::string& stage_key,
                          bool bias_correction, std::size_t warmup,
                          std::size_t report) {
  core::SchemeConfig config = bench::sweep_config(/*seed=*/13);
  config.demand_stage = stage_key;  // StageRegistry key (ABL-PRED arm)
  config.online_bias_correction = bias_correction;
  core::Simulation sim(config);
  bench::run_series(sim, warmup);
  return {name, bench::run_series(sim, report)};
}

}  // namespace

int main() {
  constexpr std::size_t kWarmup = 30;
  constexpr std::size_t kReport = 16;

  std::cout << "running 7 forecast variants x " << kWarmup + kReport
            << " intervals...\n";
  std::vector<VariantResult> results;
  results.push_back(run_variant("joint min-series + calibration (paper)",
                                "joint", true, kWarmup, kReport));
  results.push_back(run_variant("joint min-series, no calibration", "joint",
                                false, kWarmup, kReport));
  results.push_back(run_variant("min of per-member ewma", "ewma", true, kWarmup,
                                kReport));
  results.push_back(run_variant("min of per-member last-value", "last_value",
                                true, kWarmup, kReport));
  results.push_back(run_variant("min of per-member linear-trend", "linear_trend",
                                true, kWarmup, kReport));
  results.push_back(run_variant("min of per-member mean", "mean", true, kWarmup,
                                kReport));
  results.push_back(run_variant("min of per-member mean, no calibration", "mean",
                                false, kWarmup, kReport));

  util::Table table({"group channel forecast", "radio accuracy",
                     "radio RMSE (MHz)", "compute accuracy"});
  for (const auto& r : results) {
    table.add_row(
        {r.name, util::percent(r.series.radio_accuracy(), 2),
         util::fixed(util::rmse(r.series.actual_radio, r.series.predicted_radio) / 1e6, 3),
         util::percent(r.series.compute_accuracy(), 2)});
  }
  table.print("ABL-PRED: group channel forecast composition");
  return 0;
}
