// Shared scenario configuration and measurement helpers for the bench
// harnesses. Every harness derives from paper_config() so results are
// comparable across benches; see DESIGN.md §5 for the experiment index.
#pragma once

#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dtmsv::bench {

/// The paper's evaluation setup: UWaterloo-like campus, 120 mobile users,
/// 5-minute reservation intervals, DDQN-empowered K-means++ over 1D-CNN
/// compressed UDT windows.
inline core::SchemeConfig paper_config(std::uint64_t seed = 2023) {
  core::SchemeConfig config;
  config.seed = seed;
  config.user_count = 120;
  config.interval_s = 300.0;
  config.demand.interval_s = config.interval_s;
  return config;
}

/// A reduced setup for the parameter-sweep ablations (same structure,
/// ~3x faster per simulated interval).
inline core::SchemeConfig sweep_config(std::uint64_t seed = 2023) {
  core::SchemeConfig config = paper_config(seed);
  config.user_count = 80;
  config.interval_s = 180.0;
  config.demand.interval_s = config.interval_s;
  config.feature_window_s = 360.0;
  return config;
}

/// Accumulated series of one simulation run. A streaming core::ReportSink:
/// feed it to Simulation::run_interval(sink) (as run_series does) and it
/// accumulates the per-interval totals without any EpochReport vector in
/// between.
struct RunSeries : public core::ReportSink {
  std::vector<double> predicted_radio;
  std::vector<double> actual_radio;
  std::vector<double> predicted_compute;
  std::vector<double> actual_compute;
  std::vector<std::size_t> k_chosen;
  std::vector<double> silhouette;

  void add(const core::EpochReport& report) {
    if (!report.has_prediction) {
      return;
    }
    predicted_radio.push_back(report.predicted_radio_hz_total);
    actual_radio.push_back(report.actual_radio_hz_total);
    predicted_compute.push_back(report.predicted_compute_total);
    actual_compute.push_back(report.actual_compute_total);
    k_chosen.push_back(report.k);
    silhouette.push_back(report.silhouette);
  }

  void on_interval(const core::EpochReport& report) override { add(report); }

  std::size_t size() const { return actual_radio.size(); }

  /// 1 − MAPE on the radio series (the paper's metric); 0 when undefined.
  double radio_accuracy() const {
    const auto acc = util::prediction_accuracy(actual_radio, predicted_radio);
    return acc.value_or(0.0);
  }

  /// Volume-weighted accuracy on the compute series.
  double compute_accuracy() const {
    const auto acc =
        util::volume_weighted_accuracy(actual_compute, predicted_compute);
    return acc.value_or(0.0);
  }

  double mean_silhouette() const {
    if (silhouette.empty()) {
      return 0.0;
    }
    return util::mean(silhouette);
  }

  double mean_k() const {
    if (k_chosen.empty()) {
      return 0.0;
    }
    double total = 0.0;
    for (const std::size_t k : k_chosen) {
      total += static_cast<double>(k);
    }
    return total / static_cast<double>(k_chosen.size());
  }

  /// Keeps only the last `n` entries (steady-state slice after the DDQN's
  /// exploration has decayed).
  RunSeries tail(std::size_t n) const {
    RunSeries out;
    const std::size_t start = size() > n ? size() - n : 0;
    for (std::size_t i = start; i < size(); ++i) {
      out.predicted_radio.push_back(predicted_radio[i]);
      out.actual_radio.push_back(actual_radio[i]);
      out.predicted_compute.push_back(predicted_compute[i]);
      out.actual_compute.push_back(actual_compute[i]);
      out.k_chosen.push_back(k_chosen[i]);
      out.silhouette.push_back(silhouette[i]);
    }
    return out;
  }
};

/// Runs `intervals` reservation intervals, streaming into the series sink.
inline RunSeries run_series(core::Simulation& sim, std::size_t intervals) {
  RunSeries series;
  sim.run(intervals, series);
  return series;
}

}  // namespace dtmsv::bench
