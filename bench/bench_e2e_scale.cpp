// E2E-SCALE — macro-benchmark of the multi-cell fleet: full scenarios
// (construction, per-interval DT pipelines across all cells, aggregation)
// timed end-to-end. This is the scale artifact tracking the perf
// trajectory beyond the micro-kernels: the headline case runs 10k users
// across 16 cells; the Smoke cases size the same workloads for CI.
//
// Writes BENCH_e2e_scale.json (override with DTMSV_BENCH_JSON).
#include <benchmark/benchmark.h>

#include "bench_to_json.hpp"
#include "core/scenarios.hpp"

namespace {

using namespace dtmsv;

void run_scenario_bench(benchmark::State& state, core::ScenarioKind kind,
                        std::size_t users, std::size_t cells,
                        std::size_t intervals) {
  const core::ScenarioConfig base = core::make_scenario(kind, users, cells, 42);
  core::ScenarioResult last;
  for (auto _ : state) {
    core::ScenarioConfig cfg = base;
    cfg.intervals = intervals;
    last = core::run_scenario(cfg);
    benchmark::DoNotOptimize(last.reports.data());
  }
  state.counters["peak_users"] = static_cast<double>(last.peak_users);
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["intervals"] = static_cast<double>(intervals);
  state.counters["radio_accuracy"] = last.radio_accuracy;
  state.counters["sim_seconds/s"] = benchmark::Counter(
      static_cast<double>(intervals) * base.base.interval_s,
      benchmark::Counter::kIsIterationInvariantRate);
}

// CI smoke tier: every named scenario at a few hundred users so the whole
// binary finishes in seconds (ci runs --benchmark_filter=Smoke).
void BM_E2ESmokeSteadyState(benchmark::State& state) {
  run_scenario_bench(state, core::ScenarioKind::kSteadyState, 240, 4, 3);
}
BENCHMARK(BM_E2ESmokeSteadyState)->Unit(benchmark::kMillisecond);

void BM_E2ESmokeFlashCrowd(benchmark::State& state) {
  run_scenario_bench(state, core::ScenarioKind::kFlashCrowd, 240, 4, 4);
}
BENCHMARK(BM_E2ESmokeFlashCrowd)->Unit(benchmark::kMillisecond);

void BM_E2ESmokeMobilityChurn(benchmark::State& state) {
  run_scenario_bench(state, core::ScenarioKind::kMobilityChurn, 240, 4, 4);
}
BENCHMARK(BM_E2ESmokeMobilityChurn)->Unit(benchmark::kMillisecond);

void BM_E2ESmokeCatalogDrift(benchmark::State& state) {
  run_scenario_bench(state, core::ScenarioKind::kCatalogDrift, 240, 4, 4);
}
BENCHMARK(BM_E2ESmokeCatalogDrift)->Unit(benchmark::kMillisecond);

// The headline scale artifact: a 10k-user population sharded across 16
// cells, run end-to-end (warm-up, grouping, prediction, scoring). One
// iteration — this is a macro measurement, not a steady-state kernel.
void BM_E2EScale10kUsers16Cells(benchmark::State& state) {
  run_scenario_bench(state, core::ScenarioKind::kSteadyState, 10000, 16, 3);
}
BENCHMARK(BM_E2EScale10kUsers16Cells)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

DTMSV_BENCHMARK_MAIN_JSON("BENCH_e2e_scale.json");
