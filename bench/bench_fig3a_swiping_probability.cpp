// FIG3A — reproduces Fig. 3(a) of the paper: the cumulative swiping
// probability per video category for "multicast group 1" (the group that
// watches News most and Game least).
//
// The paper's claim to reproduce: the category the group prefers most
// (News) shows the lowest cumulative swiping probability at every watch
// fraction (members stay with the clip), while the least-preferred (Game)
// swipes away earliest.
//
// Output: one row per watch-fraction grid point, one column per category —
// the series Fig. 3(a) plots.
#include <iostream>

#include "bench_common.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace dtmsv;
  const std::string csv_path = argc > 1 ? argv[1] : "";

  core::SchemeConfig config = bench::paper_config(/*seed=*/2023);
  core::Simulation sim(config);

  // Warm up long enough for twins to accumulate watch history and groups to
  // stabilise (the paper reports after its scheme has observed the users).
  std::cout << "warming up 12 reservation intervals (simulated 60 min)...\n";
  sim.run(12);

  // "Multicast group 1": the group most attached to News content.
  const std::size_t group = sim.most_preferring_group(video::Category::kNews);
  const auto& pref = sim.group_preference(group);
  std::cout << "group " << group << " of " << sim.group_count() << " ("
            << sim.group_members(group).size() << " members) — preference:";
  for (std::size_t c = 0; c < video::kCategoryCount; ++c) {
    std::cout << ' ' << video::to_string(video::all_categories()[c]) << '='
              << util::fixed(pref[c], 2);
  }
  std::cout << '\n';

  const auto& swiping = sim.group_swiping(group);

  std::vector<std::string> header = {"watch fraction"};
  for (const auto c : video::all_categories()) {
    header.push_back(video::to_string(c));
  }
  util::Table table(header);
  util::CsvWriter csv;
  csv.set_header(header);
  for (double t = 0.1; t <= 1.0 + 1e-9; t += 0.1) {
    std::vector<std::string> row = {util::fixed(t, 1)};
    std::vector<double> csv_row = {t};
    for (const auto c : video::all_categories()) {
      const double cdf = swiping.cumulative_swipe_probability(c, t);
      row.push_back(util::fixed(cdf, 3));
      csv_row.push_back(cdf);
    }
    table.add_row(std::move(row));
    csv.add_row(csv_row);
  }
  table.print("Fig. 3(a): cumulative swiping probability, multicast group 1");
  if (!csv_path.empty()) {
    csv.write_file(csv_path);
    std::cout << "series exported to " << csv_path << '\n';
  }

  // Shape check vs the paper: News (most watched) swipes latest, Game
  // (least watched) earliest — compare the curves at mid-watch.
  const double news =
      swiping.cumulative_swipe_probability(video::Category::kNews, 0.5);
  const double game =
      swiping.cumulative_swipe_probability(video::Category::kGame, 0.5);
  std::cout << "\nat watch fraction 0.5: News CDF = " << util::fixed(news, 3)
            << ", Game CDF = " << util::fixed(game, 3) << " — "
            << (news < game ? "matches the paper (News watched most, Game least)"
                            : "SHAPE MISMATCH vs paper")
            << '\n';

  // Expected engagement per category (drives the traffic prediction).
  util::Table engagement({"category", "E[watch fraction]", "E[max watch | group]"});
  for (const auto c : video::all_categories()) {
    engagement.add_row(
        {video::to_string(c), util::fixed(swiping.expected_watch_fraction(c), 3),
         util::fixed(swiping.expected_max_watch_fraction(
                         c, sim.group_members(group).size()),
                     3)});
  }
  engagement.print("group engagement abstraction");
  return 0;
}
