// MICRO — google-benchmark timings of every pipeline stage, sized to the
// paper scenario (120 users). Answers "can this run at the edge every
// 5-minute interval?" — the whole per-interval pipeline must be orders of
// magnitude faster than the interval itself.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "analysis/swiping.hpp"
#include "bench_to_json.hpp"
#include "clustering/kmeans.hpp"
#include "clustering/metrics.hpp"
#include "core/feature_compressor.hpp"
#include "core/group_constructor.hpp"
#include "mobility/random_waypoint.hpp"
#include "nn/conv1d.hpp"
#include "nn/tensor.hpp"
#include "predict/channel_predictor.hpp"
#include "predict/demand.hpp"
#include "rl/ddqn.hpp"
#include "twin/column_store.hpp"
#include "twin/store.hpp"
#include "twin/udt.hpp"
#include "util/parallel.hpp"
#include "wireless/channel.hpp"

// ------------------------------------------------------------ alloc probe
// Global operator new/delete replacements that count heap allocations, so
// benches can report allocs/iteration (e.g. to pin the zero-copy embed
// path at a constant allocation count independent of user count).
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dtmsv;

clustering::Points random_points(std::size_t n, std::size_t dim, util::Rng& rng) {
  clustering::Points points(n, dim);
  double* rows = points.data();
  for (std::size_t i = 0; i < n * dim; ++i) {
    rows[i] = rng.uniform();
  }
  return points;
}

nn::Tensor random_tensor(nn::Shape shape, util::Rng& rng) {
  nn::Tensor t(std::move(shape));
  for (float& v : t.data()) {
    v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

/// Flat random window batch (the interval path's layout: one float matrix).
std::vector<float> random_window_data(std::size_t n, std::size_t size,
                                      util::Rng& rng) {
  std::vector<float> data(n * size);
  for (float& v : data) {
    v = static_cast<float>(rng.uniform());
  }
  return data;
}

/// Populates a twin store with a paper-shaped 600 s history per user:
/// 1 Hz channel reports, 0.2 Hz location, sparse watch/preference samples.
void populate_store(twin::TwinStore& store, util::Rng& rng) {
  twin::TwinColumnStore& columns = store.columns();
  for (std::size_t u = 0; u < store.user_count(); ++u) {
    for (int t = 0; t < 600; ++t) {
      columns.record_channel(u, t, {rng.uniform(0.0, 25.0), rng.uniform(0.1, 5.0), 0});
      if (t % 5 == 0) {
        columns.record_location(u, t,
                                {rng.uniform(0.0, 1200.0), rng.uniform(0.0, 1000.0)});
      }
      if (t % 20 == 0) {
        twin::WatchObservation w;
        w.category = video::all_categories()[static_cast<std::size_t>(t / 20) %
                                             video::kCategoryCount];
        w.watch_seconds = rng.uniform(1.0, 15.0);
        w.watch_fraction = rng.uniform();
        w.duration_s = 15.0;
        columns.record_watch(u, t, w);
      }
      if (t % 60 == 0) {
        columns.record_preference(u, t, columns.estimator(u).estimate());
      }
    }
  }
}

void BM_KMeansPlusPlusInit(benchmark::State& state) {
  util::Rng rng(1);
  const auto points = random_points(static_cast<std::size_t>(state.range(0)), 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustering::kmeans_plus_plus_init(points, 8, rng));
  }
}
BENCHMARK(BM_KMeansPlusPlusInit)->Arg(120)->Arg(500);

void BM_KMeansFull(benchmark::State& state) {
  util::Rng rng(2);
  const auto points = random_points(static_cast<std::size_t>(state.range(0)), 8, rng);
  clustering::KMeansOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustering::k_means(points, 8, rng, opts));
  }
}
BENCHMARK(BM_KMeansFull)->Arg(120)->Arg(500);

void BM_Silhouette(benchmark::State& state) {
  util::Rng rng(3);
  const auto points = random_points(static_cast<std::size_t>(state.range(0)), 8, rng);
  const auto result = clustering::k_means(points, 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustering::silhouette(points, result.assignment));
  }
}
BENCHMARK(BM_Silhouette)->Arg(120)->Arg(500);

void BM_SilhouetteSampled(benchmark::State& state) {
  util::Rng rng(3);
  const auto points = random_points(static_cast<std::size_t>(state.range(0)), 8, rng);
  const auto result = clustering::k_means(points, 8, rng);
  util::Rng sample_rng(33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        clustering::silhouette_sampled(points, result.assignment, 256, sample_rng));
  }
}
BENCHMARK(BM_SilhouetteSampled)->Arg(500)->Arg(2000);

void BM_CnnEmbed120Users(benchmark::State& state) {
  core::CompressorConfig cfg;  // 11 channels x 32 steps -> 8-d
  core::FeatureCompressor comp(cfg, 4);
  util::Rng rng(5);
  const auto data = random_window_data(120, comp.input_size(), rng);
  const twin::WindowBatch windows(data.data(), 120, comp.input_size());
  benchmark::DoNotOptimize(comp.embed(windows));  // warm the batch buffer
  const std::uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(comp.embed(windows));
  }
  const std::uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs/iter"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_CnnEmbed120Users);

void BM_CnnEmbedBatched(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  core::CompressorConfig cfg;
  core::FeatureCompressor comp(cfg, 4);
  util::Rng rng(6);
  const auto data = random_window_data(users, comp.input_size(), rng);
  const twin::WindowBatch windows(data.data(), users, comp.input_size());
  benchmark::DoNotOptimize(comp.embed(windows));  // warm the batch buffer
  const std::uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(comp.embed(windows));
  }
  const std::uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs/iter"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
  state.counters["users/iter"] = static_cast<double>(users);
}
BENCHMARK(BM_CnnEmbedBatched)->Arg(120)->Arg(1000);

void BM_CnnFitEpoch120Users(benchmark::State& state) {
  core::CompressorConfig cfg;
  cfg.epochs_per_fit = 1;
  core::FeatureCompressor comp(cfg, 6);
  util::Rng rng(7);
  const auto data = random_window_data(120, comp.input_size(), rng);
  const twin::WindowBatch windows(data.data(), 120, comp.input_size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(comp.fit(windows));
  }
}
BENCHMARK(BM_CnnFitEpoch120Users);

// --------------------------------------------------- twin snapshot plane
// Columnar feature extraction at paper scale (120 users) and fleet scale
// (10k users). Full = every row re-extracted from the SoA rings;
// Incremental = the churn workload, where between consecutive snapshots of
// the same window geometry only ~1% of users report fresh samples and the
// arena serves everyone else from cached rows.

void BM_TwinSnapshotFull(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  twin::TwinStore store(users);
  util::Rng rng(31);
  populate_store(store, rng);
  twin::FeatureArena arena;
  const twin::WindowSpec spec{600.0, 600.0, 32, {1200.0, 1000.0, 10.0, 40.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.columns().feature_windows(spec, arena, /*force_full=*/true));
  }
  state.counters["rows/iter"] = static_cast<double>(users);
}
BENCHMARK(BM_TwinSnapshotFull)->Arg(120)->Arg(10000);

void BM_TwinSnapshotIncremental(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  twin::TwinStore store(users);
  util::Rng rng(32);
  populate_store(store, rng);
  twin::FeatureArena arena;
  const twin::WindowSpec spec{600.0, 600.0, 32, {1200.0, 1000.0, 10.0, 40.0}};
  benchmark::DoNotOptimize(store.columns().feature_windows(spec, arena));  // warm
  const std::size_t churned = std::max<std::size_t>(1, users / 100);
  std::size_t next = 0;
  for (auto _ : state) {
    // Churn workload: a handful of users report inside the window, the
    // rest are untouched since the previous snapshot.
    for (std::size_t i = 0; i < churned; ++i) {
      store.columns().record_channel((next++) % users, 599.5,
                                     {rng.uniform(0.0, 25.0), rng.uniform(0.1, 5.0), 0});
    }
    benchmark::DoNotOptimize(store.columns().feature_windows(spec, arena));
  }
  state.counters["rows/iter"] = static_cast<double>(churned);
}
BENCHMARK(BM_TwinSnapshotIncremental)->Arg(120)->Arg(10000);

void BM_DdqnAct(benchmark::State& state) {
  rl::DdqnConfig cfg;
  cfg.state_dim = 20;
  cfg.action_count = 11;
  rl::DdqnAgent agent(cfg, 8);
  std::vector<float> s(20, 0.5f);
  benchmark::DoNotOptimize(agent.act(s));  // warm the single-state scratch
  const std::uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.act(s));
  }
  const std::uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs/iter"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DdqnAct);

void BM_DdqnActBatched(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  rl::DdqnConfig cfg;
  cfg.state_dim = 20;
  cfg.action_count = 11;
  rl::DdqnAgent agent(cfg, 8);
  util::Rng rng(26);
  std::vector<float> states(users * 20);
  for (float& v : states) {
    v = static_cast<float>(rng.uniform());
  }
  benchmark::DoNotOptimize(agent.greedy_actions(states, users));  // warm
  const std::uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.greedy_actions(states, users));
  }
  const std::uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs/iter"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
  state.counters["users/iter"] = static_cast<double>(users);
}
BENCHMARK(BM_DdqnActBatched)->Arg(120)->Arg(1000);

void BM_DdqnTrainStep(benchmark::State& state) {
  rl::DdqnConfig cfg;
  cfg.state_dim = 20;
  cfg.action_count = 11;
  cfg.min_replay_before_train = 32;
  rl::DdqnAgent agent(cfg, 9);
  util::Rng rng(10);
  for (int i = 0; i < 256; ++i) {
    rl::Transition t;
    t.state.assign(20, static_cast<float>(rng.uniform()));
    t.next_state.assign(20, static_cast<float>(rng.uniform()));
    t.action = static_cast<std::size_t>(rng.uniform_int(0, 10));
    t.reward = static_cast<float>(rng.uniform());
    agent.observe(std::move(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.train_step());
  }
}
BENCHMARK(BM_DdqnTrainStep);

void BM_UdtIngestChannelSample(benchmark::State& state) {
  twin::UserDigitalTwin udt(0);
  double t = 0.0;
  for (auto _ : state) {
    udt.record_channel(t, {12.0, 2.5, 0});
    t += 1.0;
  }
}
BENCHMARK(BM_UdtIngestChannelSample);

void BM_FeatureWindowExtract(benchmark::State& state) {
  twin::UserDigitalTwin udt(0);
  util::Rng rng(11);
  for (int t = 0; t < 600; ++t) {
    udt.record_channel(t, {rng.uniform(0.0, 25.0), rng.uniform(0.0, 5.0), 0});
    if (t % 5 == 0) {
      udt.record_location(t, {rng.uniform(0.0, 1200.0), rng.uniform(0.0, 1000.0)});
    }
  }
  const twin::FeatureScaling scaling{1200.0, 1000.0, 10.0, 40.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(udt.feature_window(600.0, 600.0, 32, scaling));
  }
}
BENCHMARK(BM_FeatureWindowExtract);

void BM_ChannelStep120Users(benchmark::State& state) {
  const auto map = mobility::CampusMap::waterloo_campus();
  util::Rng rng(12);
  wireless::RadioConfig cfg;
  wireless::ChannelModel channel(map, cfg, 120, rng);
  mobility::MobilityConfig mob_cfg;
  util::Rng mob_rng(13);
  mobility::MobilityField field(map, mob_cfg, 120, mob_rng);
  for (auto _ : state) {
    field.advance(1.0);
    channel.step(field.snapshot());
  }
}
BENCHMARK(BM_ChannelStep120Users);

void BM_GroupChannelForecast(benchmark::State& state) {
  util::Rng rng(14);
  std::vector<twin::UserDigitalTwin> twins;
  std::vector<const twin::UserDigitalTwin*> ptrs;
  const auto members = static_cast<std::size_t>(state.range(0));
  twins.reserve(members);
  for (std::size_t u = 0; u < members; ++u) {
    twins.emplace_back(u);
  }
  for (auto& t : twins) {
    for (int s = 0; s < 600; ++s) {
      t.record_channel(s, {rng.uniform(0.0, 25.0), rng.uniform(0.1, 5.0), 0});
    }
    ptrs.push_back(&t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        predict::forecast_group_channel(ptrs, 600.0, 600.0));
  }
}
BENCHMARK(BM_GroupChannelForecast)->Arg(15)->Arg(60);

void BM_SwipingExpectedMax(benchmark::State& state) {
  analysis::SwipingDistribution dist;
  util::Rng rng(15);
  for (int i = 0; i < 2000; ++i) {
    dist.observe(video::Category::kNews, rng.beta(2.0, 3.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist.expected_max_watch_fraction(video::Category::kNews, 20));
  }
}
BENCHMARK(BM_SwipingExpectedMax);

void BM_PredictGroupDemand(benchmark::State& state) {
  analysis::SwipingDistribution dist;
  util::Rng rng(16);
  for (int i = 0; i < 2000; ++i) {
    for (const auto c : video::all_categories()) {
      dist.observe(c, rng.beta(2.0, 3.0));
    }
  }
  behavior::PreferenceVector mix{};
  mix.fill(1.0 / video::kCategoryCount);
  std::array<std::size_t, video::kCategoryCount> playlist{};
  playlist.fill(6);
  predict::ContentStats content;
  content.mean_duration_s.fill(15.0);
  content.ladder_kbps = video::BitrateLadder::standard().rungs();
  content.ladder_scale_quantiles = {0.9, 0.95, 1.0, 1.05, 1.1};
  predict::DemandModelConfig config;
  predict::GroupChannelForecast forecast;
  forecast.efficiency = 2.0;
  forecast.min_series.assign(600, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predict::predict_group_demand(
        15, mix, dist, forecast, playlist, content, config));
  }
}
BENCHMARK(BM_PredictGroupDemand);

// ------------------------------------------------------- numeric kernels
// Matmul / conv micro-kernels with a thread-scaling axis: range(0) is the
// square matrix size, range(1) the pool thread count (restored to the
// env/hardware default after each run).

void BM_MatmulTiled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::set_thread_count(static_cast<std::size_t>(state.range(1)));
  util::Rng rng(21);
  const auto a = random_tensor({n, n}, rng);
  const auto b = random_tensor({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::Tensor::matmul(a, b));
  }
  util::set_thread_count(0);
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * static_cast<double>(n) * static_cast<double>(n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_MatmulTiled)->ArgsProduct({{128, 256}, {1, 2, 4}});

void BM_MatmulBt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::set_thread_count(static_cast<std::size_t>(state.range(1)));
  util::Rng rng(22);
  const auto a = random_tensor({n, n}, rng);
  const auto b = random_tensor({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::Tensor::matmul_bt(a, b));
  }
  util::set_thread_count(0);
}
BENCHMARK(BM_MatmulBt)->ArgsProduct({{256}, {1, 2, 4}});

void BM_MatmulAt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::set_thread_count(static_cast<std::size_t>(state.range(1)));
  util::Rng rng(23);
  const auto a = random_tensor({n, n}, rng);
  const auto b = random_tensor({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::Tensor::matmul_at(a, b));
  }
  util::set_thread_count(0);
}
BENCHMARK(BM_MatmulAt)->ArgsProduct({{256}, {1, 2, 4}});

void BM_Conv1DForward(benchmark::State& state) {
  util::set_thread_count(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(24);
  // The compressor's first stage at paper scale: 120 users, 11 channels,
  // 32 timesteps, 16 filters of width 5.
  nn::Conv1D conv(11, 16, 5, rng, /*stride=*/1, /*padding=*/2);
  const auto input = random_tensor({120, 11, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(input));
  }
  util::set_thread_count(0);
}
BENCHMARK(BM_Conv1DForward)->Arg(1)->Arg(2)->Arg(4);

void BM_Conv1DBackward(benchmark::State& state) {
  util::set_thread_count(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(25);
  nn::Conv1D conv(11, 16, 5, rng, /*stride=*/1, /*padding=*/2);
  const auto input = random_tensor({120, 11, 32}, rng);
  const auto upstream = random_tensor({120, 16, 32}, rng);
  benchmark::DoNotOptimize(conv.forward(input));
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.backward(upstream));
  }
  util::set_thread_count(0);
}
BENCHMARK(BM_Conv1DBackward)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

DTMSV_BENCHMARK_MAIN_JSON("BENCH_micro_perf.json");
