// ABL-CMP — ablation of design choice 1 (DESIGN.md §4): how the UDT
// time-series windows are turned into clustering features. Compares the
// paper's 1D-CNN autoencoder embedding against clustering the raw flattened
// windows and hand-rolled summary statistics.
//
// Shape to reproduce: the CNN embedding clusters as well as (or better
// than) the raw window at a fraction of the feature dimensionality, and
// demand accuracy is preserved; summary stats lose taste detail.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "twin/udt.hpp"

namespace {

using namespace dtmsv;

struct ModeResult {
  std::string name;
  std::size_t feature_dim = 0;
  bench::RunSeries series;
  double wall_ms_per_interval = 0.0;
};

ModeResult run_mode(const std::string& name, const std::string& stage_key,
                    std::size_t warmup, std::size_t report) {
  core::SchemeConfig config = bench::sweep_config(/*seed=*/11);
  config.feature_stage = stage_key;  // StageRegistry key (ABL-CMP arm)
  core::Simulation sim(config);
  bench::run_series(sim, warmup);
  const auto start = std::chrono::steady_clock::now();
  ModeResult result{name, 0, bench::run_series(sim, report), 0.0};
  const auto stop = std::chrono::steady_clock::now();
  result.wall_ms_per_interval =
      std::chrono::duration<double, std::milli>(stop - start).count() /
      static_cast<double>(report);
  if (stage_key == "cnn") {
    result.feature_dim = config.compressor.embedding_dim;
  } else if (stage_key == "raw") {
    result.feature_dim =
        twin::UserDigitalTwin::kFeatureChannels * config.feature_timesteps;
  } else {
    result.feature_dim = 6 + video::kCategoryCount;
  }
  return result;
}

}  // namespace

int main() {
  constexpr std::size_t kWarmup = 30;
  constexpr std::size_t kReport = 16;

  std::cout << "running 3 feature modes x " << kWarmup + kReport
            << " intervals...\n";
  std::vector<ModeResult> results;
  results.push_back(run_mode("1D-CNN embedding (paper)", "cnn", kWarmup, kReport));
  results.push_back(run_mode("raw window", "raw", kWarmup, kReport));
  results.push_back(run_mode("summary statistics", "summary", kWarmup, kReport));

  util::Table table({"feature source", "dim", "mean K", "mean silhouette",
                     "radio accuracy", "compute accuracy", "ms/interval"});
  for (const auto& r : results) {
    table.add_row({r.name, std::to_string(r.feature_dim),
                   util::fixed(r.series.mean_k(), 1),
                   util::fixed(r.series.mean_silhouette(), 3),
                   util::percent(r.series.radio_accuracy(), 2),
                   util::percent(r.series.compute_accuracy(), 2),
                   util::fixed(r.wall_ms_per_interval, 1)});
  }
  table.print("ABL-CMP: UDT time-series compression for clustering");

  std::cout << "\nNote: silhouette values are computed in each mode's own\n"
               "feature space — compare within a row's accuracy, and across\n"
               "rows on dimensionality vs accuracy retained.\n";
  return 0;
}
