// Drop-in replacement for BENCHMARK_MAIN() that tees every run to a JSON
// file, so the perf trajectory of each bench binary is machine-readable
// without remembering google-benchmark's --benchmark_out flags.
//
// Usage (instead of BENCHMARK_MAIN()):
//   DTMSV_BENCHMARK_MAIN_JSON("BENCH_micro_perf.json");
//
// The output path can be overridden at run time with the
// DTMSV_BENCH_JSON environment variable; console output is unchanged.
//
// Several emitters may share one trajectory file (bench_micro_perf's BM_*
// entries and bench_ablation_interval's manual stage-breakdown entries
// both land in BENCH_micro_perf.json): both directions MERGE rather than
// truncate. Manual entries are written one per line, which is what makes
// them recognisable and preservable across google-benchmark rewrites.
#pragma once

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "util/simd.hpp"

namespace dtmsv::bench {

namespace detail {

inline std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return {};
  }
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Complete single-line `{"name": ...}` benchmark objects inside the
/// document's benchmarks array — the manual emitter's format. Returns the
/// objects without indentation or trailing commas. google-benchmark's own
/// entries span multiple lines and are never matched.
inline std::vector<std::string> manual_entry_lines(const std::string& content) {
  std::vector<std::string> entries;
  const std::size_t array_pos = content.find("\"benchmarks\":");
  if (array_pos == std::string::npos) {
    return entries;
  }
  std::size_t start = content.find('\n', array_pos);
  while (start != std::string::npos && start + 1 < content.size()) {
    ++start;
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) {
      end = content.size();
    }
    std::string line = content.substr(start, end - start);
    while (!line.empty() && (line.back() == ',' ||
                             std::isspace(static_cast<unsigned char>(line.back())))) {
      line.pop_back();
    }
    const std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos) {
      line.erase(0, first);
    }
    if (line.size() > 1 && line.front() == '{' && line.back() == '}' &&
        line.find("\"name\":") != std::string::npos) {
      entries.push_back(line);
    }
    start = end == content.size() ? std::string::npos : end;
  }
  return entries;
}

/// Splices `entries` (complete objects, no trailing commas) into the
/// document's benchmarks array, dropping any existing single-line entry
/// with the same "name". Returns empty when `content` holds no array.
inline std::string splice_into_benchmarks_array(
    const std::string& content, const std::vector<std::string>& entries) {
  const std::size_t array_pos = content.find("\"benchmarks\":");
  const std::size_t close_pos = content.rfind(']');
  if (array_pos == std::string::npos || close_pos == std::string::npos ||
      close_pos < array_pos || entries.empty()) {
    return {};
  }
  std::vector<std::string> names;
  names.reserve(entries.size());
  for (const std::string& e : entries) {
    const std::size_t name_pos = e.find("\"name\":");
    const std::size_t name_end = name_pos == std::string::npos
                                     ? std::string::npos
                                     : e.find(',', name_pos);
    names.push_back(e.substr(0, name_end));  // `{"name": "..."` prefix
  }
  // Keep every existing line except same-name single-line entries.
  std::string head;
  head.reserve(content.size());
  std::size_t line_start = 0;
  while (line_start < close_pos) {
    std::size_t line_end = content.find('\n', line_start);
    if (line_end == std::string::npos || line_end > close_pos) {
      line_end = close_pos;
    }
    const std::string line = content.substr(line_start, line_end - line_start);
    bool replaced = false;
    for (const std::string& name : names) {
      if (line.find(name) != std::string::npos) {
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      head += line;
      head += '\n';
    }
    line_start = line_end + 1;
  }
  // Trim trailing whitespace and a dangling comma before splicing.
  while (!head.empty() && (std::isspace(static_cast<unsigned char>(head.back())) ||
                           head.back() == ',')) {
    head.pop_back();
  }
  const std::size_t array_open = head.rfind('[');
  const std::size_t last_entry = head.rfind('}');
  const bool array_nonempty = array_open != std::string::npos &&
                              last_entry != std::string::npos &&
                              last_entry > array_open;
  std::string merged = head;
  merged += array_nonempty ? ",\n" : "\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    merged += "    " + entries[i];
    merged += i + 1 < entries.size() ? ",\n" : "\n";
  }
  merged += "  ]\n}\n";
  return merged;
}

}  // namespace detail

inline int run_benchmarks_with_json(int argc, char** argv,
                                    const std::string& default_json_path) {
  std::string json_path = default_json_path;
  if (const char* env = std::getenv("DTMSV_BENCH_JSON")) {
    json_path = env;
  }

  // Inject --benchmark_out flags unless the caller passed their own;
  // google-benchmark then tees console output and a JSON file itself.
  std::vector<std::string> args(argv, argv + argc);
  bool has_out_flag = false;
  for (const auto& a : args) {
    if (a.rfind("--benchmark_out=", 0) == 0) {
      has_out_flag = true;
    }
  }
  // google-benchmark rewrites the out file from scratch, so snapshot any
  // manual (single-line) entries a table harness merged in earlier and
  // splice them back afterwards.
  std::vector<std::string> preserved;
  if (!has_out_flag && !json_path.empty()) {
    preserved = detail::manual_entry_lines(detail::read_file(json_path));
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> raw;
  raw.reserve(args.size());
  for (auto& a : args) {
    raw.push_back(a.data());
  }
  int raw_argc = static_cast<int>(raw.size());

  // Baselines are only comparable within one ISA regime: record which SIMD
  // backend the library was compiled to use and whether the build targeted
  // the host CPU. Lands in the JSON "context" block (and the console
  // header) next to num_cpus / build type.
  benchmark::AddCustomContext("dtmsv_simd_backend",
                              util::simd::active_backend_name());
  benchmark::AddCustomContext("dtmsv_native_arch",
                              util::simd::native_arch_build() ? "on" : "off");

  benchmark::Initialize(&raw_argc, raw.data());
  if (benchmark::ReportUnrecognizedArguments(raw_argc, raw.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  if (!has_out_flag && !json_path.empty()) {
    std::cout << "\nJSON results written to " << json_path << "\n";
  }
  benchmark::Shutdown();
  if (!preserved.empty()) {
    const std::string merged = detail::splice_into_benchmarks_array(
        detail::read_file(json_path), preserved);
    if (!merged.empty()) {
      std::ofstream out(json_path);
      out << merged;
    }
  }
  return 0;
}

// ---------------------------------------------------------- manual results
//
// For table-style harnesses that measure by hand (no google-benchmark state
// loop) but should still land in the same machine-readable JSON stream as
// the BM_* benches. Emits the google-benchmark JSON schema (a "benchmarks"
// array of named entries with counters), so downstream tooling parses both
// identically.

/// One hand-measured result: a name, the measured wall time, and named
/// counters (e.g. per-stage time shares).
struct ManualBenchResult {
  std::string name;
  double real_time_s = 0.0;
  std::vector<std::pair<std::string, double>> counters;
};

/// Writes manual results to `default_json_path` (overridable with the
/// DTMSV_BENCH_JSON environment variable), google-benchmark JSON schema.
/// An existing well-formed document is merged into (same-name entries from
/// a previous run replaced, everything else preserved); a missing or
/// unparseable file is rewritten from scratch.
inline void write_manual_benchmarks_json(
    const std::string& default_json_path,
    const std::vector<ManualBenchResult>& results) {
  std::string json_path = default_json_path;
  if (const char* env = std::getenv("DTMSV_BENCH_JSON")) {
    json_path = env;
  }
  if (json_path.empty()) {
    return;
  }
  const auto number = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  // One complete object per line — the format the merge machinery relies on.
  std::vector<std::string> entries;
  entries.reserve(results.size());
  for (const ManualBenchResult& r : results) {
    std::string e = "{\"name\": \"" + r.name +
                    "\", \"run_type\": \"iteration\", \"iterations\": 1, "
                    "\"real_time\": " + number(r.real_time_s * 1e9) +
                    ", \"cpu_time\": " + number(r.real_time_s * 1e9) +
                    ", \"time_unit\": \"ns\"";
    for (const auto& [key, value] : r.counters) {
      e += ", \"" + key + "\": " + number(value);
    }
    e += '}';
    entries.push_back(std::move(e));
  }

  std::string merged =
      detail::splice_into_benchmarks_array(detail::read_file(json_path), entries);
  if (merged.empty()) {
    merged = std::string("{\n  \"context\": {\"library_build_type\": \"manual\", ") +
             "\"dtmsv_simd_backend\": \"" + util::simd::active_backend_name() +
             "\", \"dtmsv_native_arch\": \"" +
             (util::simd::native_arch_build() ? "on" : "off") + "\"},\n" +
             "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      merged += "    " + entries[i];
      merged += i + 1 < entries.size() ? ",\n" : "\n";
    }
    merged += "  ]\n}\n";
  }

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "warning: cannot write bench JSON to " << json_path << "\n";
    return;
  }
  out << merged;
  std::cout << "\nJSON results written to " << json_path << "\n";
}

}  // namespace dtmsv::bench

#define DTMSV_BENCHMARK_MAIN_JSON(default_json_path)                          \
  int main(int argc, char** argv) {                                           \
    return ::dtmsv::bench::run_benchmarks_with_json(argc, argv,               \
                                                    (default_json_path));     \
  }
