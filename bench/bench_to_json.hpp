// Drop-in replacement for BENCHMARK_MAIN() that tees every run to a JSON
// file, so the perf trajectory of each bench binary is machine-readable
// without remembering google-benchmark's --benchmark_out flags.
//
// Usage (instead of BENCHMARK_MAIN()):
//   DTMSV_BENCHMARK_MAIN_JSON("BENCH_micro_perf.json");
//
// The output path can be overridden at run time with the
// DTMSV_BENCH_JSON environment variable; console output is unchanged.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

namespace dtmsv::bench {

inline int run_benchmarks_with_json(int argc, char** argv,
                                    const std::string& default_json_path) {
  std::string json_path = default_json_path;
  if (const char* env = std::getenv("DTMSV_BENCH_JSON")) {
    json_path = env;
  }

  // Inject --benchmark_out flags unless the caller passed their own;
  // google-benchmark then tees console output and a JSON file itself.
  std::vector<std::string> args(argv, argv + argc);
  bool has_out_flag = false;
  for (const auto& a : args) {
    if (a.rfind("--benchmark_out=", 0) == 0) {
      has_out_flag = true;
    }
  }
  if (!has_out_flag && !json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> raw;
  raw.reserve(args.size());
  for (auto& a : args) {
    raw.push_back(a.data());
  }
  int raw_argc = static_cast<int>(raw.size());

  benchmark::Initialize(&raw_argc, raw.data());
  if (benchmark::ReportUnrecognizedArguments(raw_argc, raw.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  if (!has_out_flag && !json_path.empty()) {
    std::cout << "\nJSON results written to " << json_path << "\n";
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace dtmsv::bench

#define DTMSV_BENCHMARK_MAIN_JSON(default_json_path)                          \
  int main(int argc, char** argv) {                                           \
    return ::dtmsv::bench::run_benchmarks_with_json(argc, argv,               \
                                                    (default_json_path));     \
  }
