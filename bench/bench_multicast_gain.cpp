// EXT-MG — the paper's motivating premise, quantified: "Multicast
// technology can effectively enhance the radio resource utilization by
// utilizing multicast channels to transmit short videos."
//
// For every interval the simulator also accounts the unicast counterfactual
// (each member receiving a private, individually link-adapted stream of the
// same content). This bench sweeps the user population and reports the
// multicast bandwidth saving.
//
// Shape to reproduce: multicast costs grow with the number of *groups*
// while unicast grows with the number of *users*, so the saving widens as
// the population (and therefore per-group membership) grows.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace dtmsv;

  constexpr std::size_t kWarmup = 8;
  constexpr std::size_t kReport = 8;
  const std::vector<std::size_t> populations = {40, 80, 120, 200};

  util::Table table({"users", "mean groups", "multicast MHz", "unicast MHz",
                     "saving", "unicast/multicast"});
  for (const std::size_t users : populations) {
    std::cout << "population " << users << "..." << std::endl;
    core::SchemeConfig config = bench::sweep_config(/*seed=*/17);
    config.user_count = users;
    core::Simulation sim(config);
    sim.run(kWarmup);

    double multicast_hz = 0.0;
    double unicast_hz = 0.0;
    double groups = 0.0;
    std::size_t scored = 0;
    for (std::size_t i = 0; i < kReport; ++i) {
      const core::EpochReport r = sim.run_interval();
      if (!r.has_prediction) {
        continue;
      }
      multicast_hz += r.actual_radio_hz_total;
      unicast_hz += r.unicast_radio_hz_total;
      groups += static_cast<double>(r.groups.size());
      ++scored;
    }
    if (scored == 0 || multicast_hz <= 0.0) {
      continue;
    }
    multicast_hz /= static_cast<double>(scored);
    unicast_hz /= static_cast<double>(scored);
    table.add_row({std::to_string(users),
                   util::fixed(groups / static_cast<double>(scored), 1),
                   util::fixed(multicast_hz / 1e6, 3),
                   util::fixed(unicast_hz / 1e6, 3),
                   util::percent(1.0 - multicast_hz / unicast_hz, 1),
                   util::fixed(unicast_hz / multicast_hz, 2) + "x"});
  }
  table.print("EXT-MG: multicast vs unicast radio resource consumption");
  std::cout << "\nUnicast counterfactual: every group member receives a private\n"
               "stream of the same clips, link-adapted to their own channel.\n";
  return 0;
}
