// ABL-CLU — ablation of design choice 2 (DESIGN.md §4): how the grouping
// number K is chosen. Compares the paper's DDQN-empowered selection against
// fixed K, the elbow heuristic, a uniform-random K, and the slow
// silhouette-sweep oracle, all running the identical end-to-end pipeline.
//
// Shape to reproduce: DDQN approaches the sweep oracle's clustering quality
// and demand accuracy at a fraction of the oracle's clustering cost, and
// beats fixed/random selection.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace dtmsv;

struct ModeResult {
  std::string name;
  bench::RunSeries series;
  double wall_ms_per_interval = 0.0;
};

ModeResult run_mode(const std::string& name, const std::string& stage_key,
                    std::size_t fixed_k, std::size_t warmup, std::size_t report) {
  core::SchemeConfig config = bench::sweep_config(/*seed=*/7);
  config.grouping_stage = stage_key;  // StageRegistry key (ABL-CLU arm)
  config.fixed_k = fixed_k;
  core::Simulation sim(config);
  bench::run_series(sim, warmup);
  const auto start = std::chrono::steady_clock::now();
  ModeResult result{name, bench::run_series(sim, report), 0.0};
  const auto stop = std::chrono::steady_clock::now();
  result.wall_ms_per_interval =
      std::chrono::duration<double, std::milli>(stop - start).count() /
      static_cast<double>(report);
  return result;
}

}  // namespace

int main() {
  // The DDQN explores for ~60 decisions (its epsilon schedule); every
  // variant gets the same horizon so the comparison is fair in both data
  // and wall-clock.
  constexpr std::size_t kWarmup = 60;
  constexpr std::size_t kReport = 20;

  std::vector<ModeResult> results;
  std::cout << "running 7 K-selection variants x " << kWarmup + kReport
            << " intervals...\n";
  results.push_back(run_mode("ddqn (paper)", "ddqn", 0, kWarmup, kReport));
  results.push_back(run_mode("fixed-2", "fixed", 2, kWarmup, kReport));
  results.push_back(run_mode("fixed-4", "fixed", 4, kWarmup, kReport));
  results.push_back(run_mode("fixed-8", "fixed", 8, kWarmup, kReport));
  results.push_back(run_mode("elbow", "elbow", 0, kWarmup, kReport));
  results.push_back(run_mode("random", "random", 0, kWarmup, kReport));
  results.push_back(run_mode("silhouette-sweep (oracle)", "silhouette", 0,
                             kWarmup, kReport));

  util::Table table({"K selection", "mean K", "mean silhouette", "radio accuracy",
                     "compute accuracy", "ms/interval (report phase)"});
  for (const auto& r : results) {
    table.add_row({r.name, util::fixed(r.series.mean_k(), 1),
                   util::fixed(r.series.mean_silhouette(), 3),
                   util::percent(r.series.radio_accuracy(), 2),
                   util::percent(r.series.compute_accuracy(), 2),
                   util::fixed(r.wall_ms_per_interval, 1)});
  }
  table.print("ABL-CLU: grouping-number selection strategies");

  std::cout << "\nNote: ms/interval covers the whole pipeline including the\n"
               "selector; the sweep oracle reruns K-means for every candidate\n"
               "K each interval, which is the cost the DDQN amortises.\n";
  return 0;
}
