// FIG3B — reproduces Fig. 3(b) of the paper: radio resource demand,
// predicted vs. actual, plus the headline claim of 95.04 % prediction
// accuracy.
//
// The paper plots group 1's radio resource demand over time. Groups are
// re-clustered every interval, so "group 1" is tracked as the most
// News-preferring group of each interval; the network-wide total is also
// reported (it is what an operator reserves against).
//
// Shape to reproduce: predictions track actuals within a few percent;
// steady-state accuracy ≈ 95 %.
#include <iostream>

#include "bench_common.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace dtmsv;
  const std::string csv_path = argc > 1 ? argv[1] : "";

  core::SchemeConfig config = bench::paper_config(/*seed=*/2023);
  core::Simulation sim(config);

  // Let the DDQN's exploration decay before the reported window, as the
  // paper's scheme is evaluated after training.
  constexpr std::size_t kWarmupIntervals = 46;
  constexpr std::size_t kReportIntervals = 24;  // 2 simulated hours
  std::cout << "training/warm-up: " << kWarmupIntervals
            << " intervals (simulated " << kWarmupIntervals * 5 << " min)...\n";
  sim.run(kWarmupIntervals);

  util::Table table({"interval", "group-1 size", "g1 pred MHz", "g1 act MHz",
                     "total pred MHz", "total act MHz", "total err"});
  std::vector<double> g1_pred;
  std::vector<double> g1_act;
  std::vector<double> total_pred;
  std::vector<double> total_act;

  for (std::size_t i = 0; i < kReportIntervals; ++i) {
    // Identify "group 1" for the upcoming interval before running it.
    const std::size_t g1 = sim.most_preferring_group(video::Category::kNews);
    const std::size_t g1_size = sim.group_members(g1).size();
    const core::EpochReport r = sim.run_interval();
    if (!r.has_prediction || g1 >= r.groups.size()) {
      continue;
    }
    const auto& gr = r.groups[g1];
    g1_pred.push_back(gr.predicted_radio_hz);
    g1_act.push_back(gr.actual_radio_hz);
    total_pred.push_back(r.predicted_radio_hz_total);
    total_act.push_back(r.actual_radio_hz_total);
    table.add_row({std::to_string(r.interval), std::to_string(g1_size),
                   util::fixed(gr.predicted_radio_hz / 1e6, 3),
                   util::fixed(gr.actual_radio_hz / 1e6, 3),
                   util::fixed(r.predicted_radio_hz_total / 1e6, 3),
                   util::fixed(r.actual_radio_hz_total / 1e6, 3),
                   util::percent(r.radio_error, 1)});
  }
  table.print("Fig. 3(b): radio resource demand, predicted vs actual");

  if (!csv_path.empty()) {
    util::CsvWriter csv;
    csv.set_header({"index", "g1_predicted_hz", "g1_actual_hz",
                    "total_predicted_hz", "total_actual_hz"});
    for (std::size_t i = 0; i < g1_pred.size(); ++i) {
      csv.add_row(std::vector<double>{static_cast<double>(i), g1_pred[i],
                                      g1_act[i], total_pred[i], total_act[i]});
    }
    csv.write_file(csv_path);
    std::cout << "series exported to " << csv_path << '\n';
  }

  const auto g1_acc = util::prediction_accuracy(g1_act, g1_pred);
  const auto total_acc = util::prediction_accuracy(total_act, total_pred);
  std::cout << "\nradio demand prediction accuracy (group 1): "
            << (g1_acc ? util::percent(*g1_acc, 2) : "n/a") << '\n'
            << "radio demand prediction accuracy (total):   "
            << (total_acc ? util::percent(*total_acc, 2) : "n/a") << '\n'
            << "paper reports: 95.04%\n";
  return 0;
}
