#include "cli/scenario_loader.hpp"

#include <utility>

#include "core/pipeline.hpp"
#include "util/error.hpp"

namespace dtmsv::cli {

namespace {

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) {
      out += ", ";
    }
    out += item;
  }
  return out;
}

/// Non-empty stage keys must resolve in the registry *before* the run, so a
/// config typo fails with the key list instead of N intervals in.
void check_stage_keys(const core::SchemeConfig& base) {
  const core::StageRegistry& registry = core::StageRegistry::instance();
  if (!base.feature_stage.empty() && !registry.has_feature(base.feature_stage)) {
    throw util::RuntimeError("unknown feature stage '" + base.feature_stage +
                             "' (known: " + join(registry.feature_keys()) + ")");
  }
  if (!base.grouping_stage.empty() &&
      !registry.has_grouping(base.grouping_stage)) {
    throw util::RuntimeError("unknown grouping stage '" + base.grouping_stage +
                             "' (known: " + join(registry.grouping_keys()) + ")");
  }
  if (!base.demand_stage.empty() && !registry.has_demand(base.demand_stage)) {
    throw util::RuntimeError("unknown demand stage '" + base.demand_stage +
                             "' (known: " + join(registry.demand_keys()) + ")");
  }
}

}  // namespace

core::ScenarioKind parse_scenario_kind(const std::string& name) {
  for (const core::ScenarioKind kind : core::all_scenarios()) {
    if (core::to_string(kind) == name) {
      return kind;
    }
  }
  std::vector<std::string> known;
  for (const core::ScenarioKind kind : core::all_scenarios()) {
    known.push_back(core::to_string(kind));
  }
  throw util::RuntimeError("unknown scenario kind '" + name +
                           "' (known: " + join(known) + ")");
}

SimPlan load_plan(util::Config& config) {
  SimPlan plan;
  plan.threads = config.get_size_or("run.threads", 0);
  plan.report_path = config.get_or("run.report", "");

  // Grid dimensions: a [grid] list when present, otherwise the single value
  // from [scenario]/[stages] (empty stage key = the paper default wiring).
  // Setting both forms is an error — a single value silently shadowed by
  // the grid would defeat the "typos must not silently alter nothing"
  // contract for legitimate keys.
  const auto dimension = [&config](const std::string& grid_key,
                                   const std::string& single_key,
                                   const std::string& fallback) {
    std::vector<std::string> values = config.get_list(grid_key);
    if (!values.empty()) {
      if (config.has(single_key)) {
        throw util::RuntimeError("'" + grid_key + "' and '" + single_key +
                                 "' are both set; keep one");
      }
      return values;
    }
    values.push_back(config.get_or(single_key, fallback));
    return values;
  };

  std::vector<std::string> kinds = config.get_list("grid.scenario");
  if (kinds.empty()) {
    kinds.push_back(config.get("scenario.kind"));  // throws when absent
  } else if (config.has("scenario.kind")) {
    throw util::RuntimeError(
        "'grid.scenario' and 'scenario.kind' are both set; keep one");
  }
  const std::vector<std::string> seeds = dimension("grid.seed", "scenario.seed", "42");
  const std::vector<std::string> features =
      dimension("grid.feature", "stages.feature", "");
  const std::vector<std::string> groupings =
      dimension("grid.grouping", "stages.grouping", "");
  const std::vector<std::string> demands =
      dimension("grid.demand", "stages.demand", "");

  const std::size_t total_users = config.get_size_or("scenario.total_users", 240);
  const std::size_t cell_count = config.get_size_or("scenario.cell_count", 4);

  const bool stage_grid =
      features.size() > 1 || groupings.size() > 1 || demands.size() > 1;

  for (const std::string& kind_name : kinds) {
    const core::ScenarioKind kind = parse_scenario_kind(kind_name);
    for (const std::string& seed_text : seeds) {
      const std::uint64_t seed = util::parse_uint64(seed_text, "seed");
      for (const std::string& feature : features) {
        for (const std::string& grouping : groupings) {
          for (const std::string& demand : demands) {
            core::ScenarioConfig cfg =
                core::make_scenario(kind, total_users, cell_count, seed);
            cfg.intervals = config.get_size_or("scenario.intervals", cfg.intervals);
            cfg.surge_interval =
                config.get_size_or("scenario.surge_interval", cfg.surge_interval);
            cfg.surge_cell =
                config.get_size_or("scenario.surge_cell", cfg.surge_cell);
            cfg.surge_fraction =
                config.get_double_or("scenario.surge_fraction", cfg.surge_fraction);
            cfg.churn_fraction =
                config.get_double_or("scenario.churn_fraction", cfg.churn_fraction);
            cfg.drift_rate =
                config.get_double_or("scenario.drift_rate", cfg.drift_rate);
            cfg.drift_popularity_forgetting = config.get_double_or(
                "scenario.drift_popularity_forgetting",
                cfg.drift_popularity_forgetting);
            if (kind == core::ScenarioKind::kCatalogDrift) {
              // make_scenario folded its own defaults into the base; the
              // config-supplied rates must land there too.
              cfg.base.affinity_drift_rate = cfg.drift_rate;
              cfg.base.popularity_forgetting = cfg.drift_popularity_forgetting;
            }

            core::SchemeConfig& base = cfg.base;
            base.interval_s = config.get_double_or("scheme.interval_s", base.interval_s);
            base.demand.interval_s = base.interval_s;
            base.tick_s = config.get_double_or("scheme.tick_s", base.tick_s);
            base.warmup_intervals =
                config.get_size_or("scheme.warmup_intervals", base.warmup_intervals);
            base.feature_window_s = config.get_double_or("scheme.feature_window_s",
                                                         base.feature_window_s);
            base.feature_timesteps = config.get_size_or("scheme.feature_timesteps",
                                                        base.feature_timesteps);
            base.affinity_concentration = config.get_double_or(
                "scheme.affinity_concentration", base.affinity_concentration);
            base.affinity_drift_rate = config.get_double_or(
                "scheme.affinity_drift_rate", base.affinity_drift_rate);
            base.swiping_bins =
                config.get_size_or("scheme.swiping_bins", base.swiping_bins);
            base.swiping_forgetting = config.get_double_or(
                "scheme.swiping_forgetting", base.swiping_forgetting);
            base.popularity_forgetting = config.get_double_or(
                "scheme.popularity_forgetting", base.popularity_forgetting);
            base.online_bias_correction = config.get_bool_or(
                "scheme.online_bias_correction", base.online_bias_correction);
            base.session.engagement.catalog.videos_per_category =
                config.get_size_or("scheme.videos_per_category",
                                   base.session.engagement.catalog.videos_per_category);
            base.recommender.playlist_size = config.get_size_or(
                "scheme.playlist_size", base.recommender.playlist_size);

            base.grouping.k_min =
                config.get_size_or("grouping.k_min", base.grouping.k_min);
            base.grouping.k_max =
                config.get_size_or("grouping.k_max", base.grouping.k_max);
            base.grouping.kmeans.restarts = config.get_size_or(
                "grouping.kmeans_restarts", base.grouping.kmeans.restarts);

            // Empty grid/stage values keep the SchemeConfig defaults (the
            // paper wiring) — there is no empty-key fallback downstream.
            if (!feature.empty()) {
              base.feature_stage = feature;
            }
            if (!grouping.empty()) {
              base.grouping_stage = grouping;
            }
            if (!demand.empty()) {
              base.demand_stage = demand;
            }
            base.fixed_k = config.get_size_or("stages.fixed_k", base.fixed_k);
            check_stage_keys(base);

            SimJob job;
            job.label = kind_name;
            if (seeds.size() > 1) {
              job.label += "/seed=" + seed_text;
            }
            if (stage_grid) {
              const auto name = [](const std::string& key) {
                return key.empty() ? std::string("default") : key;
              };
              job.label += "/";
              job.label += name(feature);
              job.label += "+";
              job.label += name(grouping);
              job.label += "+";
              job.label += name(demand);
            }
            job.scenario = std::move(cfg);
            plan.jobs.push_back(std::move(job));
          }
        }
      }
    }
  }

  const std::vector<std::string> unread = config.unread_keys();
  if (!unread.empty()) {
    std::string message = "unknown config keys: ";
    message += join(unread);
    throw util::RuntimeError(message);
  }
  return plan;
}

}  // namespace dtmsv::cli
