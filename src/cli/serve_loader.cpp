#include "cli/serve_loader.hpp"

#include <algorithm>

#include "core/pipeline.hpp"
#include "util/error.hpp"

namespace dtmsv::cli {

namespace {

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) {
      out += ", ";
    }
    out += item;
  }
  return out;
}

}  // namespace

core::DegradationLevel parse_ladder_level(const std::string& item) {
  core::DegradationLevel level;
  level.name = item;
  const std::size_t colon = item.find(':');
  if (colon == std::string::npos) {
    level.feature_stage = item;
    level.full_extraction = false;
  } else {
    level.feature_stage = item.substr(0, colon);
    const std::string mode = item.substr(colon + 1);
    if (mode == "full") {
      level.full_extraction = true;
    } else if (mode == "incremental") {
      level.full_extraction = false;
    } else {
      throw util::RuntimeError("serve.ladder item '" + item +
                               "': expected 'key', 'key:full' or "
                               "'key:incremental'");
    }
  }
  if (level.feature_stage.empty()) {
    throw util::RuntimeError("serve.ladder item '" + item +
                             "' has an empty stage key");
  }
  return level;
}

ServePlan load_serve_plan(util::Config& config) {
  ServePlan plan;
  plan.threads = config.get_size_or("run.threads", 0);
  plan.report_path = config.get_or("run.report", "");

  core::SchemeConfig& scheme = plan.serve.scheme;
  scheme.seed = config.get_uint64_or("serve.seed", scheme.seed);
  scheme.user_count = config.get_size_or("serve.user_count", 240);
  scheme.interval_s = config.get_double_or("serve.interval_s", 10.0);
  scheme.demand.interval_s = scheme.interval_s;
  // The serve loop never runs the tick simulator, but scheme validation
  // requires tick_s <= interval_s; keep it consistent for short intervals.
  scheme.tick_s = std::min(scheme.tick_s, scheme.interval_s);
  scheme.warmup_intervals = 0;
  scheme.feature_window_s =
      config.get_double_or("serve.feature_window_s", scheme.feature_window_s);
  scheme.feature_timesteps =
      config.get_size_or("serve.feature_timesteps", scheme.feature_timesteps);
  scheme.grouping_stage = config.get_or("serve.grouping", scheme.grouping_stage);
  scheme.demand_stage = config.get_or("serve.demand", scheme.demand_stage);
  scheme.fixed_k = config.get_size_or("serve.fixed_k", scheme.fixed_k);
  scheme.session.engagement.catalog.videos_per_category = config.get_size_or(
      "serve.videos_per_category",
      scheme.session.engagement.catalog.videos_per_category);

  const auto& registry = core::StageRegistry::instance();
  if (!registry.has_grouping(scheme.grouping_stage)) {
    throw util::RuntimeError("unknown grouping stage '" + scheme.grouping_stage +
                             "' (known: " + join(registry.grouping_keys()) + ")");
  }
  if (!registry.has_demand(scheme.demand_stage)) {
    throw util::RuntimeError("unknown demand stage '" + scheme.demand_stage +
                             "' (known: " + join(registry.demand_keys()) + ")");
  }

  plan.intervals = config.get_size_or("serve.intervals", plan.intervals);
  if (plan.intervals == 0) {
    throw util::RuntimeError("serve.intervals must be positive");
  }
  plan.serve.deadline_ms = config.get_double_or("serve.deadline_ms", 50.0);
  plan.serve.queue_capacity = config.get_size_or("serve.queue_capacity", 4096);

  const std::vector<std::string> ladder = config.get_list("serve.ladder");
  if (!ladder.empty()) {
    plan.serve.degradation.ladder.clear();
    for (const std::string& item : ladder) {
      plan.serve.degradation.ladder.push_back(parse_ladder_level(item));
    }
  }
  for (const core::DegradationLevel& level : plan.serve.degradation.ladder) {
    if (!registry.has_feature(level.feature_stage)) {
      throw util::RuntimeError("serve.ladder: unknown feature stage '" +
                               level.feature_stage +
                               "' (known: " + join(registry.feature_keys()) + ")");
    }
  }
  plan.serve.degradation.step_down_after = config.get_size_or(
      "serve.step_down_after", plan.serve.degradation.step_down_after);
  plan.serve.degradation.step_up_after = config.get_size_or(
      "serve.step_up_after", plan.serve.degradation.step_up_after);

  core::ServeWorkloadConfig& workload = plan.workload;
  workload.seed = config.get_uint64_or("workload.seed", workload.seed);
  workload.user_count = scheme.user_count;
  workload.channel_period_s =
      config.get_double_or("workload.channel_period_s", workload.channel_period_s);
  workload.location_period_s = config.get_double_or("workload.location_period_s",
                                                    workload.location_period_s);
  workload.watch_period_s =
      config.get_double_or("workload.watch_period_s", workload.watch_period_s);
  workload.affinity_concentration = config.get_double_or(
      "workload.affinity_concentration", workload.affinity_concentration);
  // The workload samples videos from the loop's catalog, so share its
  // generation parameters; the walk extent matches the feature scaling.
  workload.engagement = scheme.session.engagement;
  workload.extent_x = plan.serve.scaling.pos_x_scale;
  workload.extent_y = plan.serve.scaling.pos_y_scale;

  plan.overload_start = config.get_size_or("workload.overload_start", 0);
  plan.overload_intervals = config.get_size_or("workload.overload_intervals", 0);
  plan.overload_multiplier =
      config.get_double_or("workload.overload_multiplier", 1.0);
  if (plan.overload_intervals > 0 && plan.overload_multiplier <= 0.0) {
    throw util::RuntimeError("workload.overload_multiplier must be positive");
  }

  core::validate(plan.serve);

  const std::vector<std::string> unread = config.unread_keys();
  if (!unread.empty()) {
    throw util::RuntimeError("unknown config key(s): " + join(unread));
  }
  return plan;
}

}  // namespace dtmsv::cli
