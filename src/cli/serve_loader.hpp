// Maps a declarative INI config ([serve]/[workload]/[run] sections) to a
// ServePlan for tools/dtmsv_serve.cpp. Same contract as scenario_loader:
// typed getters with named errors, stage/ladder keys validated against the
// StageRegistry up front, and unknown keys rejected so typos cannot
// silently alter nothing. See configs/serve_steady.ini for the reference
// config and README.md ("Serving mode") for the key reference.
#pragma once

#include <cstddef>
#include <string>

#include "core/serve.hpp"
#include "core/serve_workload.hpp"
#include "util/config.hpp"

namespace dtmsv::cli {

/// One serve run: the loop config, the synthetic workload driving it, and
/// the overload phase (rate multiplier applied to a window of intervals).
struct ServePlan {
  std::size_t threads = 0;          // [run] threads (0 = hardware default)
  std::string report_path;          // [run] report ("" = no NDJSON)
  std::size_t intervals = 12;       // [serve] intervals to fire
  core::ServeConfig serve{};
  core::ServeWorkloadConfig workload{};
  /// Overload phase: workload rate multiplied by `overload_multiplier`
  /// for intervals [overload_start, overload_start + overload_intervals).
  std::size_t overload_start = 0;
  std::size_t overload_intervals = 0;
  double overload_multiplier = 1.0;
};

/// Parses the ladder item syntax "key" or "key:full" (e.g. "cnn:full, cnn,
/// summary"); the rung name is the item text itself.
core::DegradationLevel parse_ladder_level(const std::string& item);

/// Builds the plan, validating everything (registry keys, ladder syntax,
/// positive budgets) and throwing util::RuntimeError on unknown keys.
ServePlan load_serve_plan(util::Config& config);

}  // namespace dtmsv::cli
