// Declarative scenario configs -> runnable scenario jobs.
//
// This is the mapping layer behind the `dtmsv_sim` CLI (tools/dtmsv_sim.cpp)
// and the config-driven examples: a util::Config parsed from an INI file is
// turned into one or more fully validated core::ScenarioConfig jobs, so a
// new workload variation is a 15-line config instead of a recompiled .cpp.
//
// Recognised keys (all optional unless stated; defaults come from
// core::make_scenario's smoke-friendly base):
//
//   [scenario] kind (required unless [grid] scenario is set) |
//              total_users | cell_count | intervals | seed |
//              surge_interval | surge_cell | surge_fraction |
//              churn_fraction | drift_rate | drift_popularity_forgetting
//   [run]      threads (0 = hardware default) | report (NDJSON output path)
//   [stages]   feature | grouping | demand  (StageRegistry keys; validated
//              against the registry, unknown keys list the known ones) |
//              fixed_k
//   [scheme]   interval_s | tick_s | warmup_intervals | feature_window_s |
//              feature_timesteps | affinity_concentration |
//              affinity_drift_rate | swiping_bins | swiping_forgetting |
//              popularity_forgetting | online_bias_correction |
//              videos_per_category | playlist_size
//   [grouping] k_min | k_max | kmeans_restarts
//   [grid]     scenario | seed | feature | grouping | demand — comma lists;
//              the plan is the cross product (the ablation-grid config).
//              A grid list and its single-value form (grid.seed vs
//              scenario.seed, grid.feature vs stages.feature, ...) are
//              mutually exclusive — the single value would be silently
//              shadowed, so setting both is an error
//
// Any key the loader does not recognise is an error (util::RuntimeError
// listing the offenders) — typos in declarative configs must not silently
// alter nothing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/scenarios.hpp"
#include "util/config.hpp"

namespace dtmsv::cli {

/// One scenario run of the plan. `label` is unique within the plan
/// ("flash_crowd", or "flash_crowd/seed=7/summary+elbow+mean" for grid
/// cells).
struct SimJob {
  std::string label;
  core::ScenarioConfig scenario;
};

/// Everything a driver needs to execute a config file.
struct SimPlan {
  std::size_t threads = 0;   // [run] threads; 0 = library default
  std::string report_path;   // [run] report; empty = no NDJSON stream
  std::vector<SimJob> jobs;  // 1 for plain configs, the cross product for grids
};

/// "steady_state" -> ScenarioKind::kSteadyState etc.; throws
/// util::RuntimeError listing the valid names on anything else.
core::ScenarioKind parse_scenario_kind(const std::string& name);

/// Builds the run plan. Reads every recognised key from `config` and then
/// rejects the file if any key was left unread. Stage keys are validated
/// against core::StageRegistry; numeric values are range-checked by
/// core::validate at Simulation construction.
SimPlan load_plan(util::Config& config);

}  // namespace dtmsv::cli
