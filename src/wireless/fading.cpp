#include "wireless/fading.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dtmsv::wireless {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
}

RayleighFading::RayleighFading(double doppler_hz, double sample_interval_s,
                               util::Rng rng)
    : rng_(std::move(rng)) {
  DTMSV_EXPECTS(doppler_hz >= 0.0);
  DTMSV_EXPECTS(sample_interval_s > 0.0);
  // Clarke's model autocorrelation J0(2π·fd·τ) approximated by a Gauss–Markov
  // coefficient; exact J0 is unnecessary for the demand statistics we need.
  rho_ = std::exp(-2.0 * M_PI * doppler_hz * sample_interval_s * 0.1);
  re_ = rng_.normal(0.0, kInvSqrt2);
  im_ = rng_.normal(0.0, kInvSqrt2);
}

double RayleighFading::step() {
  const double innov = std::sqrt(std::max(0.0, 1.0 - rho_ * rho_));
  re_ = rho_ * re_ + innov * rng_.normal(0.0, kInvSqrt2);
  im_ = rho_ * im_ + innov * rng_.normal(0.0, kInvSqrt2);
  return current_power();
}

double RayleighFading::current_power() const { return re_ * re_ + im_ * im_; }

double RayleighFading::current_db() const {
  return 10.0 * std::log10(std::max(current_power(), 1e-12));
}

}  // namespace dtmsv::wireless
