// Per-user downlink channel: combines path loss to the serving BS (strongest
// link), correlated shadowing, Rayleigh fading, and link adaptation into the
// per-user SNR / spectral-efficiency stream that feeds the UDTs.
#pragma once

#include <cstddef>
#include <vector>

#include "mobility/campus_map.hpp"
#include "wireless/cqi.hpp"
#include "wireless/fading.hpp"
#include "wireless/pathloss.hpp"

namespace dtmsv::wireless {

/// Radio parameters of the BS fleet.
struct RadioConfig {
  PathLossModel path_loss{};
  double tx_power_dbm = 43.0;        // macro BS
  double antenna_gain_db = 15.0;     // combined Tx+Rx gains
  double noise_figure_db = 7.0;
  double bandwidth_hz = 20e6;        // system bandwidth per BS
  double shadowing_sigma_db = 6.0;
  double shadowing_decorrelation_m = 50.0;
  double doppler_hz = 10.0;          // pedestrian at 2.6 GHz ≈ 10 Hz
  double sample_interval_s = 1.0;    // channel sampling period
  /// Spectral efficiency model: true -> CQI table, false -> truncated Shannon.
  bool use_cqi_table = true;
};

/// Thermal noise power in dBm over `bandwidth_hz` with the given noise figure.
double noise_power_dbm(double bandwidth_hz, double noise_figure_db);

/// One user's channel state at a sample instant.
struct ChannelSample {
  std::size_t serving_bs = 0;
  double snr_db = 0.0;
  double efficiency_bps_hz = 0.0;  // after link adaptation
};

/// Evolves every user's channel against the BS fleet.
class ChannelModel {
 public:
  ChannelModel(const mobility::CampusMap& map, const RadioConfig& config,
               std::size_t user_count, util::Rng& rng);

  /// Advances all users one sample interval given their current positions
  /// (positions.size() must equal user_count()).
  void step(const std::vector<mobility::Position>& positions);

  /// Re-draws one user's shadowing and fading processes from `rng` (a user
  /// handed over into this cell sees statistically fresh links; the old
  /// occupant's correlated state must not leak into the newcomer). The
  /// user's sample refreshes on the next step().
  void reset_user(std::size_t user, util::Rng& rng);

  std::size_t user_count() const { return last_samples_.size(); }
  std::size_t bs_count() const { return bs_positions_.size(); }

  /// Most recent sample of a user (requires at least one step()).
  const ChannelSample& sample_of(std::size_t user) const;

  const RadioConfig& config() const { return config_; }

 private:
  RadioConfig config_;
  std::vector<mobility::Position> bs_positions_;
  CqiTable cqi_;
  double noise_dbm_;
  // Per (user, bs) shadowing processes; per-user fading.
  std::vector<std::vector<ShadowingProcess>> shadowing_;
  std::vector<RayleighFading> fading_;
  std::vector<mobility::Position> last_positions_;
  std::vector<ChannelSample> last_samples_;
  bool stepped_ = false;
};

}  // namespace dtmsv::wireless
