#include "wireless/channel.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace dtmsv::wireless {

double noise_power_dbm(double bandwidth_hz, double noise_figure_db) {
  DTMSV_EXPECTS(bandwidth_hz > 0.0);
  // Thermal floor: -174 dBm/Hz at 290 K.
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

ChannelModel::ChannelModel(const mobility::CampusMap& map, const RadioConfig& config,
                           std::size_t user_count, util::Rng& rng)
    : config_(config),
      bs_positions_(map.base_stations()),
      noise_dbm_(noise_power_dbm(config.bandwidth_hz, config.noise_figure_db)) {
  DTMSV_EXPECTS(user_count > 0);
  DTMSV_EXPECTS(!bs_positions_.empty());
  DTMSV_EXPECTS(config.sample_interval_s > 0.0);

  shadowing_.reserve(user_count);
  fading_.reserve(user_count);
  for (std::size_t u = 0; u < user_count; ++u) {
    std::vector<ShadowingProcess> links;
    links.reserve(bs_positions_.size());
    for (std::size_t b = 0; b < bs_positions_.size(); ++b) {
      links.emplace_back(config.shadowing_sigma_db, config.shadowing_decorrelation_m,
                         rng.fork(u * 131 + b));
    }
    shadowing_.push_back(std::move(links));
    fading_.emplace_back(config.doppler_hz, config.sample_interval_s,
                         rng.fork(0xFAD0 + u));
  }
  last_positions_.assign(user_count, {});
  last_samples_.assign(user_count, {});
}

void ChannelModel::step(const std::vector<mobility::Position>& positions) {
  DTMSV_EXPECTS_MSG(positions.size() == last_samples_.size(),
                    "ChannelModel::step: position count mismatch");

  for (std::size_t u = 0; u < positions.size(); ++u) {
    const double moved =
        stepped_ ? mobility::distance(positions[u], last_positions_[u]) : 0.0;

    // Strongest-BS attachment on large-scale signal (path loss + shadowing).
    double best_rx_dbm = -std::numeric_limits<double>::infinity();
    std::size_t best_bs = 0;
    for (std::size_t b = 0; b < bs_positions_.size(); ++b) {
      const double d = mobility::distance(positions[u], bs_positions_[b]);
      const double shadow_db = shadowing_[u][b].step(moved);
      const double rx_dbm = config_.tx_power_dbm + config_.antenna_gain_db -
                            config_.path_loss.loss_db(d) - shadow_db;
      if (rx_dbm > best_rx_dbm) {
        best_rx_dbm = rx_dbm;
        best_bs = b;
      }
    }

    const double fading_db = linear_to_db(fading_[u].step());
    const double snr_db = best_rx_dbm + fading_db - noise_dbm_;

    ChannelSample sample;
    sample.serving_bs = best_bs;
    sample.snr_db = snr_db;
    sample.efficiency_bps_hz = config_.use_cqi_table
                                   ? cqi_.efficiency(snr_db)
                                   : truncated_shannon(snr_db);
    last_samples_[u] = sample;
    last_positions_[u] = positions[u];
  }
  stepped_ = true;
}

void ChannelModel::reset_user(std::size_t user, util::Rng& rng) {
  DTMSV_EXPECTS(user < last_samples_.size());
  auto& links = shadowing_[user];
  for (std::size_t b = 0; b < bs_positions_.size(); ++b) {
    links[b] = ShadowingProcess(config_.shadowing_sigma_db,
                                config_.shadowing_decorrelation_m,
                                rng.fork(user * 131 + b));
  }
  fading_[user] = RayleighFading(config_.doppler_hz, config_.sample_interval_s,
                                 rng.fork(0xFAD0 + user));
}

const ChannelSample& ChannelModel::sample_of(std::size_t user) const {
  DTMSV_EXPECTS(user < last_samples_.size());
  DTMSV_EXPECTS_MSG(stepped_, "ChannelModel: no samples yet; call step() first");
  return last_samples_[user];
}

}  // namespace dtmsv::wireless
