#include "wireless/multicast.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dtmsv::wireless {

MulticastPhy::MulticastPhy(double min_efficiency_floor) : floor_(min_efficiency_floor) {
  DTMSV_EXPECTS(min_efficiency_floor > 0.0);
}

double MulticastPhy::group_efficiency(std::span<const double> member_efficiencies) const {
  DTMSV_EXPECTS_MSG(!member_efficiencies.empty(),
                    "group_efficiency: empty multicast group");
  double worst = member_efficiencies[0];
  for (const double e : member_efficiencies) {
    DTMSV_EXPECTS(e >= 0.0);
    worst = std::min(worst, e);
  }
  return std::max(worst, floor_);
}

double MulticastPhy::required_bandwidth_hz(double bitrate_kbps, double efficiency) const {
  DTMSV_EXPECTS(bitrate_kbps >= 0.0);
  DTMSV_EXPECTS(efficiency > 0.0);
  return bitrate_kbps * 1e3 / efficiency;
}

std::size_t MulticastPhy::required_resource_blocks(double bitrate_kbps,
                                                   double efficiency) const {
  const double hz = required_bandwidth_hz(bitrate_kbps, efficiency);
  return static_cast<std::size_t>(std::ceil(hz / kResourceBlockHz));
}

std::size_t MulticastPhy::sustainable_rung(std::span<const double> ladder_kbps,
                                           double efficiency,
                                           double bandwidth_budget_hz) const {
  DTMSV_EXPECTS(!ladder_kbps.empty());
  DTMSV_EXPECTS(efficiency > 0.0);
  DTMSV_EXPECTS(bandwidth_budget_hz > 0.0);
  const double budget_kbps = bandwidth_budget_hz * efficiency / 1e3;
  std::size_t best = 0;
  for (std::size_t i = 0; i < ladder_kbps.size(); ++i) {
    DTMSV_EXPECTS(i == 0 || ladder_kbps[i] > ladder_kbps[i - 1]);
    if (ladder_kbps[i] <= budget_kbps) {
      best = i;
    }
  }
  return best;
}

}  // namespace dtmsv::wireless
