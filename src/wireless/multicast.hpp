// Multicast PHY accounting: a multicast stream must be decodable by every
// group member, so the group's spectral efficiency is the worst member's.
// Radio resource demand is the bandwidth (or resource blocks) needed to
// carry the group's video bitrate at that efficiency.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "wireless/channel.hpp"

namespace dtmsv::wireless {

/// LTE-style resource block: 180 kHz of bandwidth.
inline constexpr double kResourceBlockHz = 180e3;

/// Multicast rate/resource calculator.
class MulticastPhy {
 public:
  /// `min_efficiency_floor` guards division for members in outage; a group
  /// containing an out-of-range member falls back to this efficiency
  /// (retransmissions/raptor coding in practice).
  explicit MulticastPhy(double min_efficiency_floor = 0.05);

  /// Group spectral efficiency: the minimum member efficiency, floored.
  /// Requires a non-empty member list.
  double group_efficiency(std::span<const double> member_efficiencies) const;

  /// Bandwidth in Hz needed to multicast `bitrate_kbps` at `efficiency`.
  double required_bandwidth_hz(double bitrate_kbps, double efficiency) const;

  /// Same, in resource blocks (ceiling).
  std::size_t required_resource_blocks(double bitrate_kbps, double efficiency) const;

  /// Highest ladder rung sustainable within `bandwidth_budget_hz` for a
  /// group at `efficiency`; returns the rung index (0 = lowest).
  std::size_t sustainable_rung(std::span<const double> ladder_kbps,
                               double efficiency, double bandwidth_budget_hz) const;

  double min_efficiency_floor() const { return floor_; }

 private:
  double floor_;
};

}  // namespace dtmsv::wireless
