// Large-scale propagation: log-distance path loss with log-normal shadowing,
// the standard 3GPP-style urban model (see DESIGN.md §2 for why this stands
// in for the authors' campus measurements).
#pragma once

#include "mobility/campus_map.hpp"
#include "util/rng.hpp"

namespace dtmsv::wireless {

/// Log-distance path loss: PL(d) = pl_ref_db + 10·n·log10(max(d, d_ref)/d_ref).
struct PathLossModel {
  double pl_ref_db = 38.0;     // loss at the reference distance (2.6 GHz urban)
  double reference_m = 1.0;    // reference distance
  double exponent = 3.2;       // urban campus with buildings

  /// Path loss in dB at distance `d_m` metres (>= 0; clamped to d_ref).
  double loss_db(double d_m) const;
};

/// Temporally correlated log-normal shadowing per (user, BS) link.
///
/// Gudmundson-style: the shadowing process decorrelates over distance; with
/// pedestrian speeds we model it as an AR(1) process in time whose
/// correlation over one step is exp(-v·dt/d_corr).
class ShadowingProcess {
 public:
  /// `sigma_db`: shadowing standard deviation; `decorrelation_m`: distance
  /// over which correlation falls to 1/e.
  ShadowingProcess(double sigma_db, double decorrelation_m, util::Rng rng);

  /// Advances the process given metres moved since the last step and
  /// returns the new shadowing value in dB.
  double step(double moved_m);

  double current_db() const { return value_db_; }
  double sigma_db() const { return sigma_db_; }

 private:
  double sigma_db_;
  double decorrelation_m_;
  util::Rng rng_;
  double value_db_;
};

}  // namespace dtmsv::wireless
