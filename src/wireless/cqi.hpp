// Link adaptation: SNR -> spectral efficiency, via the 15-level LTE CQI/MCS
// table or truncated Shannon capacity.
#pragma once

#include <cstddef>
#include <vector>

namespace dtmsv::wireless {

/// One CQI table entry.
struct CqiEntry {
  double min_snr_db;   // lowest SNR at which this CQI is decodable
  double efficiency;   // bits/s/Hz delivered by its modulation+code rate
};

/// 15-level LTE CQI table (QPSK 78/1024 .. 64QAM 948/1024).
class CqiTable {
 public:
  CqiTable();

  /// CQI index in [0, 15]; 0 means out of range (no transmission).
  std::size_t cqi_for_snr(double snr_db) const;

  /// Spectral efficiency (bits/s/Hz) at the given SNR; 0 when below CQI 1.
  double efficiency(double snr_db) const;

  std::size_t level_count() const { return entries_.size(); }
  const CqiEntry& entry(std::size_t cqi) const;  // cqi in [1, 15]

 private:
  std::vector<CqiEntry> entries_;  // index 0 <-> CQI 1
};

/// Truncated Shannon bound: eff = min(eff_max, alpha·log2(1 + snr)), with
/// snr linear. alpha models implementation loss.
double truncated_shannon(double snr_db, double alpha = 0.75, double eff_max = 5.55);

/// dB <-> linear helpers.
double db_to_linear(double db);
double linear_to_db(double linear);

}  // namespace dtmsv::wireless
