#include "wireless/cqi.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dtmsv::wireless {

CqiTable::CqiTable() {
  // 3GPP 36.213 Table 7.2.3-1 efficiencies with commonly used BLER-10%
  // SNR switching thresholds.
  entries_ = {
      {-6.7, 0.1523},  // CQI 1  QPSK 78/1024
      {-4.7, 0.2344},  // CQI 2
      {-2.3, 0.3770},  // CQI 3
      {0.2, 0.6016},   // CQI 4
      {2.4, 0.8770},   // CQI 5
      {4.3, 1.1758},   // CQI 6
      {5.9, 1.4766},   // CQI 7  16QAM
      {8.1, 1.9141},   // CQI 8
      {10.3, 2.4063},  // CQI 9
      {11.7, 2.7305},  // CQI 10 64QAM
      {14.1, 3.3223},  // CQI 11
      {16.3, 3.9023},  // CQI 12
      {18.7, 4.5234},  // CQI 13
      {21.0, 5.1152},  // CQI 14
      {22.7, 5.5547},  // CQI 15
  };
}

std::size_t CqiTable::cqi_for_snr(double snr_db) const {
  std::size_t cqi = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (snr_db >= entries_[i].min_snr_db) {
      cqi = i + 1;
    } else {
      break;
    }
  }
  return cqi;
}

double CqiTable::efficiency(double snr_db) const {
  const std::size_t cqi = cqi_for_snr(snr_db);
  return cqi == 0 ? 0.0 : entries_[cqi - 1].efficiency;
}

const CqiEntry& CqiTable::entry(std::size_t cqi) const {
  DTMSV_EXPECTS(cqi >= 1 && cqi <= entries_.size());
  return entries_[cqi - 1];
}

double truncated_shannon(double snr_db, double alpha, double eff_max) {
  DTMSV_EXPECTS(alpha > 0.0);
  DTMSV_EXPECTS(eff_max > 0.0);
  const double snr = db_to_linear(snr_db);
  return std::min(eff_max, alpha * std::log2(1.0 + snr));
}

double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

double linear_to_db(double linear) {
  return 10.0 * std::log10(std::max(linear, 1e-30));
}

}  // namespace dtmsv::wireless
