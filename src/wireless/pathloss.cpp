#include "wireless/pathloss.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dtmsv::wireless {

double PathLossModel::loss_db(double d_m) const {
  DTMSV_EXPECTS(d_m >= 0.0);
  DTMSV_EXPECTS(reference_m > 0.0);
  const double d = std::max(d_m, reference_m);
  return pl_ref_db + 10.0 * exponent * std::log10(d / reference_m);
}

ShadowingProcess::ShadowingProcess(double sigma_db, double decorrelation_m,
                                   util::Rng rng)
    : sigma_db_(sigma_db), decorrelation_m_(decorrelation_m), rng_(std::move(rng)) {
  DTMSV_EXPECTS(sigma_db >= 0.0);
  DTMSV_EXPECTS(decorrelation_m > 0.0);
  value_db_ = rng_.normal(0.0, sigma_db_);
}

double ShadowingProcess::step(double moved_m) {
  DTMSV_EXPECTS(moved_m >= 0.0);
  // AR(1): rho = exp(-Δd / d_corr); innovation keeps stationary variance.
  const double rho = std::exp(-moved_m / decorrelation_m_);
  const double innovation_sigma = sigma_db_ * std::sqrt(std::max(0.0, 1.0 - rho * rho));
  value_db_ = rho * value_db_ + rng_.normal(0.0, innovation_sigma);
  return value_db_;
}

}  // namespace dtmsv::wireless
