// Small-scale fading: Rayleigh (NLOS) power fading with optional temporal
// correlation (first-order Gauss–Markov on the complex taps).
#pragma once

#include "util/rng.hpp"

namespace dtmsv::wireless {

/// Correlated Rayleigh fading. The complex channel tap h follows
/// h' = rho·h + sqrt(1-rho²)·w with w ~ CN(0,1), so |h|² is exponential
/// with unit mean in steady state; rho derives from the Doppler rate.
class RayleighFading {
 public:
  /// `doppler_hz`: maximum Doppler shift (speed/λ); `sample_interval_s`:
  /// spacing of successive step() calls.
  RayleighFading(double doppler_hz, double sample_interval_s, util::Rng rng);

  /// Advances one sample interval and returns the linear power gain |h|²
  /// (unit mean).
  double step();

  /// Current power gain without advancing.
  double current_power() const;

  /// Current gain in dB.
  double current_db() const;

 private:
  double rho_;
  util::Rng rng_;
  double re_;
  double im_;
};

}  // namespace dtmsv::wireless
