// Timestamped attribute series: the storage primitive inside a UDT. Each
// collected attribute (channel, location, watch events, preference) keeps a
// bounded history with window queries; different attributes are sampled at
// different frequencies, as the paper requires ("Different data attributes
// are collected with different frequencies").
#pragma once

#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

#include "util/clock.hpp"
#include "util/error.hpp"

namespace dtmsv::twin {

/// A timestamped observation.
template <typename T>
struct Stamped {
  util::SimTime time = 0.0;
  T value{};
};

/// Bounded, time-ordered attribute history.
template <typename T>
class AttributeSeries {
 public:
  /// `capacity`: maximum retained samples (oldest evicted first).
  explicit AttributeSeries(std::size_t capacity = 1024) : capacity_(capacity) {
    DTMSV_EXPECTS(capacity > 0);
  }

  /// Appends a sample; time must be non-decreasing.
  void record(util::SimTime time, T value) {
    DTMSV_EXPECTS_MSG(samples_.empty() || time >= samples_.back().time,
                      "AttributeSeries: timestamps must be non-decreasing");
    samples_.push_back({time, std::move(value)});
    if (samples_.size() > capacity_) {
      samples_.pop_front();
    }
  }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  std::size_t capacity() const { return capacity_; }

  /// Latest sample; requires non-empty.
  const Stamped<T>& latest() const {
    DTMSV_EXPECTS(!samples_.empty());
    return samples_.back();
  }

  /// Oldest retained sample; requires non-empty.
  const Stamped<T>& oldest() const {
    DTMSV_EXPECTS(!samples_.empty());
    return samples_.front();
  }

  /// Samples with time in [from, to), oldest first.
  std::vector<Stamped<T>> window(util::SimTime from, util::SimTime to) const {
    DTMSV_EXPECTS(from <= to);
    std::vector<Stamped<T>> out;
    for (const auto& s : samples_) {
      if (s.time >= from && s.time < to) {
        out.push_back(s);
      }
    }
    return out;
  }

  /// Age of the newest sample relative to `now`; +inf when empty.
  double staleness(util::SimTime now) const {
    if (samples_.empty()) {
      return std::numeric_limits<double>::infinity();
    }
    return std::max(0.0, now - samples_.back().time);
  }

  /// Iteration support (oldest -> newest).
  auto begin() const { return samples_.begin(); }
  auto end() const { return samples_.end(); }

  void clear() { samples_.clear(); }

 private:
  std::size_t capacity_;
  std::deque<Stamped<T>> samples_;
};

}  // namespace dtmsv::twin
