// Timestamped attribute series: the storage primitive inside a standalone
// UDT. Each collected attribute (channel, location, watch events,
// preference) keeps a bounded history with window queries; different
// attributes are sampled at different frequencies, as the paper requires
// ("Different data attributes are collected with different frequencies").
//
// The fleet data plane stores histories columnarly (twin/columns.hpp); this
// deque-backed template remains the single-user container and the reference
// for the series contract, including the eviction-truncation rule both
// implementations share: a window query whose `from` predates the evicted
// range must say so instead of silently returning a shorter window.
#pragma once

#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

#include "util/clock.hpp"
#include "util/error.hpp"

namespace dtmsv::twin {

/// A timestamped observation.
template <typename T>
struct Stamped {
  util::SimTime time = 0.0;
  T value{};
};

/// Window query result that reports capacity truncation: `truncated` is
/// true when samples with time >= `from` were already evicted, i.e. the
/// returned window is missing history the caller asked for.
template <typename T>
struct WindowQuery {
  std::vector<Stamped<T>> samples;
  bool truncated = false;
};

/// Bounded, time-ordered attribute history.
template <typename T>
class AttributeSeries {
 public:
  /// `capacity`: maximum retained samples (oldest evicted first).
  explicit AttributeSeries(std::size_t capacity = 1024) : capacity_(capacity) {
    DTMSV_EXPECTS(capacity > 0);
  }

  /// Appends a sample; time must be non-decreasing.
  void record(util::SimTime time, T value) {
    DTMSV_EXPECTS_MSG(samples_.empty() || time >= samples_.back().time,
                      "AttributeSeries: timestamps must be non-decreasing");
    samples_.push_back({time, std::move(value)});
    if (samples_.size() > capacity_) {
      last_evicted_time_ = samples_.front().time;
      evicted_ = true;
      samples_.pop_front();
    }
  }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  std::size_t capacity() const { return capacity_; }

  /// Latest sample; requires non-empty.
  const Stamped<T>& latest() const {
    DTMSV_EXPECTS(!samples_.empty());
    return samples_.back();
  }

  /// Oldest retained sample; requires non-empty.
  const Stamped<T>& oldest() const {
    DTMSV_EXPECTS(!samples_.empty());
    return samples_.front();
  }

  /// True when a query starting at `from` would be missing evicted samples:
  /// capacity eviction has dropped at least one sample with time >= from.
  bool truncated_before(util::SimTime from) const {
    return evicted_ && last_evicted_time_ >= from;
  }

  /// Samples with time in [from, to), oldest first.
  std::vector<Stamped<T>> window(util::SimTime from, util::SimTime to) const {
    DTMSV_EXPECTS(from <= to);
    std::vector<Stamped<T>> out;
    for (const auto& s : samples_) {
      if (s.time >= from && s.time < to) {
        out.push_back(s);
      }
    }
    return out;
  }

  /// Window query that also reports whether `from` predates the evicted
  /// range (the retained samples cannot cover the full request).
  WindowQuery<T> window_query(util::SimTime from, util::SimTime to) const {
    return {window(from, to), truncated_before(from)};
  }

  /// Age of the newest sample relative to `now`; +inf when empty.
  double staleness(util::SimTime now) const {
    if (samples_.empty()) {
      return std::numeric_limits<double>::infinity();
    }
    return std::max(0.0, now - samples_.back().time);
  }

  /// Iteration support (oldest -> newest).
  auto begin() const { return samples_.begin(); }
  auto end() const { return samples_.end(); }

  void clear() {
    samples_.clear();
    evicted_ = false;
    last_evicted_time_ = 0.0;
  }

 private:
  std::size_t capacity_;
  std::deque<Stamped<T>> samples_;
  util::SimTime last_evicted_time_ = 0.0;
  bool evicted_ = false;
};

}  // namespace dtmsv::twin
