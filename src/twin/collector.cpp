#include "twin/collector.hpp"

#include "util/error.hpp"

namespace dtmsv::twin {

StatusCollector::StatusCollector(CollectionPolicy policy, std::size_t user_count,
                                 util::Rng rng)
    : policy_(policy), rng_(std::move(rng)) {
  DTMSV_EXPECTS(user_count > 0);
  DTMSV_EXPECTS(policy.channel_period_s > 0.0);
  DTMSV_EXPECTS(policy.location_period_s > 0.0);
  DTMSV_EXPECTS(policy.preference_period_s > 0.0);
  DTMSV_EXPECTS(policy.report_loss_prob >= 0.0 && policy.report_loss_prob <= 1.0);
  DTMSV_EXPECTS(policy.latency_s >= 0.0);
}

bool StatusCollector::due(double& next_due, util::SimTime now, double period) const {
  if (now + 1e-9 < next_due) {
    return false;
  }
  // Schedule strictly from the previous due time so long ticks cannot drift
  // the sampling grid.
  while (next_due <= now + 1e-9) {
    next_due += period;
  }
  return true;
}

bool StatusCollector::deliver() {
  if (policy_.report_loss_prob <= 0.0) {
    return true;
  }
  return !rng_.bernoulli(policy_.report_loss_prob);
}

void StatusCollector::tick(util::SimTime now, double dt, TwinStore& store,
                           const wireless::ChannelModel& channel,
                           const mobility::MobilityField& mobility,
                           const std::vector<behavior::ViewEvent>& events) {
  DTMSV_EXPECTS(dt > 0.0);
  DTMSV_EXPECTS(store.user_count() == channel.user_count());
  DTMSV_EXPECTS(store.user_count() == mobility.user_count());

  // The twin records a report at measurement time + reporting latency; the
  // window queries therefore see slightly delayed state, as in a real DT.
  const util::SimTime visible = now + policy_.latency_s;

  // Bulk reports write straight into the columnar store: one contiguous
  // (time, value) column per attribute, no per-twin indirection.
  TwinColumnStore& columns = store.columns();
  if (due(next_channel_, now, policy_.channel_period_s)) {
    for (std::size_t u = 0; u < store.user_count(); ++u) {
      if (!deliver()) {
        ++stats_.dropped_reports;
        continue;
      }
      const auto& s = channel.sample_of(u);
      columns.record_channel(u, visible,
                             {s.snr_db, s.efficiency_bps_hz, s.serving_bs});
      ++stats_.channel_reports;
    }
  }

  if (due(next_location_, now, policy_.location_period_s)) {
    for (std::size_t u = 0; u < store.user_count(); ++u) {
      if (!deliver()) {
        ++stats_.dropped_reports;
        continue;
      }
      columns.record_location(u, visible, mobility.position_of(u));
      ++stats_.location_reports;
    }
  }

  // Watch events are event-driven: reported as they complete.
  for (const auto& ev : events) {
    if (!deliver()) {
      ++stats_.dropped_reports;
      continue;
    }
    WatchObservation obs;
    obs.video_id = ev.video_id;
    obs.category = ev.category;
    obs.duration_s = ev.duration_s;
    obs.watch_seconds = ev.watch_seconds;
    obs.watch_fraction = ev.watch_fraction;
    obs.completed = ev.completed;
    columns.record_watch(ev.user_id,
                         ev.start_time + ev.watch_seconds + policy_.latency_s, obs);
    ++stats_.watch_reports;
  }

  if (due(next_preference_, now, policy_.preference_period_s)) {
    for (std::size_t u = 0; u < store.user_count(); ++u) {
      if (!deliver()) {
        ++stats_.dropped_reports;
        continue;
      }
      columns.record_preference(u, visible, columns.estimator(u).estimate());
      ++stats_.preference_reports;
    }
  }
}

}  // namespace dtmsv::twin
