// User digital twin (UDT): the edge-hosted mirror of one user's real-time
// status — channel condition, location, watching duration, and preference —
// exactly the four attributes the paper's UDTs collect.
//
// Since the columnar refactor a UserDigitalTwin is a handle: the histories
// live in a TwinColumnStore (SoA ring buffers shared by the whole cell,
// twin/column_store.hpp) and the accessors return SeriesView adapters with
// the familiar series surface. A standalone twin (tests, single-user
// tooling) owns a private one-user store, so the ingestion/query API is
// unchanged from the AttributeSeries era. Retention is not: the dense
// lanes size per attribute (ColumnCapacities::scaled — location/watch/
// preference keep 1/4-1/16 of the channel capacity, matching the
// collector's report rates), where the deque era gave every attribute the
// full capacity.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "behavior/preference.hpp"
#include "twin/column_store.hpp"
#include "util/clock.hpp"

namespace dtmsv::twin {

/// Per-user digital twin handle.
class UserDigitalTwin {
 public:
  /// Standalone twin owning its own single-user columnar store.
  /// `history_capacity`: retained channel-lane samples; the sparser
  /// attributes keep ColumnCapacities::scaled shares of it.
  explicit UserDigitalTwin(std::uint64_t user_id, std::size_t history_capacity = 2048);

  /// View of slot `slot` inside a shared store (TwinStore's twins).
  UserDigitalTwin(TwinColumnStore* store, std::uint64_t user_id, std::size_t slot);

  UserDigitalTwin(UserDigitalTwin&&) = default;
  UserDigitalTwin& operator=(UserDigitalTwin&&) = default;
  UserDigitalTwin(const UserDigitalTwin&) = delete;
  UserDigitalTwin& operator=(const UserDigitalTwin&) = delete;

  std::uint64_t user_id() const { return user_id_; }

  /// Ingestion (called by the BS-side collector).
  void record_channel(util::SimTime t, ChannelObservation obs);
  void record_location(util::SimTime t, mobility::Position pos);
  void record_watch(util::SimTime t, WatchObservation obs);
  void record_preference(util::SimTime t, behavior::PreferenceVector estimate);

  ChannelSeries channel() const { return store_->channel(slot_); }
  LocationSeries location() const { return store_->location(slot_); }
  WatchSeries watch() const { return store_->watch(slot_); }
  PreferenceSeries preference() const { return store_->preference(slot_); }

  /// Running preference estimator fed by watch ingestion (the twin-side
  /// "preference label + engagement time" update).
  const behavior::PreferenceEstimator& preference_estimator() const {
    return store_->estimator(slot_);
  }
  /// Applies interval forgetting to the preference estimator.
  void decay_preference();

  /// Number of feature channels produced by feature_window().
  static constexpr std::size_t kFeatureChannels = TwinColumnStore::kFeatureChannels;

  /// Builds the [kFeatureChannels × timesteps] time-series feature window
  /// ending at `now` and spanning `window_s` seconds, resampled to
  /// `timesteps` uniform bins (row-major: channel-major order, the layout
  /// the 1D-CNN consumes). Channels:
  ///   0: normalised SNR            1: spectral efficiency / 6
  ///   2: normalised x              3: normalised y
  ///   4: mean watch fraction       5..: preference weight per category
  /// Empty bins carry the previous bin's value (zero-order hold; zeros
  /// before the first sample). Batch consumers should prefer
  /// TwinColumnStore::feature_windows (pooled, incremental); this per-twin
  /// call extracts one fresh row.
  std::vector<float> feature_window(util::SimTime now, double window_s,
                                    std::size_t timesteps,
                                    const FeatureScaling& scaling) const;

  /// Compact per-user summary used by baselines that skip the CNN:
  /// mean/std SNR, mean position, mean watch fraction, preference vector.
  std::vector<double> summary_features(util::SimTime now, double window_s,
                                       const FeatureScaling& scaling) const;

  /// The columnar store backing this twin and the slot inside it.
  const TwinColumnStore& columns() const { return *store_; }
  std::size_t slot() const { return slot_; }

 private:
  std::uint64_t user_id_;
  std::size_t slot_;
  TwinColumnStore* store_;
  std::unique_ptr<TwinColumnStore> owned_;  // standalone twins only
};

}  // namespace dtmsv::twin
