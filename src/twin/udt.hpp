// User digital twin (UDT): the edge-hosted mirror of one user's real-time
// status — channel condition, location, watching duration, and preference —
// exactly the four attributes the paper's UDTs collect.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "behavior/preference.hpp"
#include "behavior/session.hpp"
#include "mobility/campus_map.hpp"
#include "twin/series.hpp"
#include "util/clock.hpp"

namespace dtmsv::twin {

/// Channel observation stored in the twin.
struct ChannelObservation {
  double snr_db = 0.0;
  double efficiency_bps_hz = 0.0;
  std::size_t serving_bs = 0;
};

/// Watch observation: one finished view.
struct WatchObservation {
  std::uint64_t video_id = 0;
  video::Category category = video::Category::kNews;
  double duration_s = 0.0;
  double watch_seconds = 0.0;
  double watch_fraction = 0.0;
  bool completed = false;
};

/// Normalisation constants for feature extraction (so embeddings are
/// scale-free regardless of campus size or SNR range).
struct FeatureScaling {
  double pos_x_scale = 1200.0;  // campus width in metres
  double pos_y_scale = 1000.0;  // campus height
  double snr_offset_db = 10.0;  // maps snr -10 dB -> 0
  double snr_scale_db = 40.0;   // maps snr  30 dB -> 1
};

/// Per-user digital twin.
class UserDigitalTwin {
 public:
  /// `history_capacity`: retained samples per attribute series.
  explicit UserDigitalTwin(std::uint64_t user_id, std::size_t history_capacity = 2048);

  std::uint64_t user_id() const { return user_id_; }

  /// Ingestion (called by the BS-side collector).
  void record_channel(util::SimTime t, ChannelObservation obs);
  void record_location(util::SimTime t, mobility::Position pos);
  void record_watch(util::SimTime t, WatchObservation obs);
  void record_preference(util::SimTime t, behavior::PreferenceVector estimate);

  const AttributeSeries<ChannelObservation>& channel() const { return channel_; }
  const AttributeSeries<mobility::Position>& location() const { return location_; }
  const AttributeSeries<WatchObservation>& watch() const { return watch_; }
  const AttributeSeries<behavior::PreferenceVector>& preference() const {
    return preference_;
  }

  /// Running preference estimator fed by watch ingestion (the twin-side
  /// "preference label + engagement time" update).
  const behavior::PreferenceEstimator& preference_estimator() const {
    return pref_estimator_;
  }
  /// Applies interval forgetting to the preference estimator.
  void decay_preference();

  /// Number of feature channels produced by feature_window().
  static constexpr std::size_t kFeatureChannels = 5 + video::kCategoryCount;

  /// Builds the [kFeatureChannels × timesteps] time-series feature window
  /// ending at `now` and spanning `window_s` seconds, resampled to
  /// `timesteps` uniform bins (row-major: channel-major order, the layout
  /// the 1D-CNN consumes). Channels:
  ///   0: normalised SNR            1: spectral efficiency / 6
  ///   2: normalised x              3: normalised y
  ///   4: mean watch fraction       5..: preference weight per category
  /// Empty bins carry the previous bin's value (zero-order hold; zeros
  /// before the first sample).
  std::vector<float> feature_window(util::SimTime now, double window_s,
                                    std::size_t timesteps,
                                    const FeatureScaling& scaling) const;

  /// Compact per-user summary used by baselines that skip the CNN:
  /// mean/std SNR, mean position, mean watch fraction, preference vector.
  std::vector<double> summary_features(util::SimTime now, double window_s,
                                       const FeatureScaling& scaling) const;

 private:
  std::uint64_t user_id_;
  AttributeSeries<ChannelObservation> channel_;
  AttributeSeries<mobility::Position> location_;
  AttributeSeries<WatchObservation> watch_;
  AttributeSeries<behavior::PreferenceVector> preference_;
  behavior::PreferenceEstimator pref_estimator_;
};

}  // namespace dtmsv::twin
