// Pooled extraction buffers and zero-copy batch views for the twin data
// plane. A FeatureArena (one per Simulation) owns the flat feature-window
// and summary-feature matrices the per-interval pipeline reads; the
// TwinColumnStore materialises rows into it incrementally — only users
// whose histories changed since the arena's last extraction with the same
// window geometry are re-extracted (see column_store.hpp).
//
// Aliasing rules for stage authors: WindowBatch / SummaryBatch are
// non-owning views into the arena, valid until the next extraction call
// that uses the same arena (in the built-in pipeline: until the next
// interval's FeatureStage::extract). Copy rows out if you keep them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "twin/observations.hpp"
#include "util/clock.hpp"

namespace dtmsv::twin {

class TwinColumnStore;

/// Geometry of a feature-window extraction: the cache key deciding whether
/// an arena row can be reused for an unchanged user.
struct WindowSpec {
  util::SimTime now = 0.0;
  double window_s = 0.0;
  std::size_t timesteps = 0;
  FeatureScaling scaling{};

  friend bool operator==(const WindowSpec&, const WindowSpec&) = default;
};

/// Geometry of a summary-feature extraction.
struct SummarySpec {
  util::SimTime now = 0.0;
  double window_s = 0.0;
  FeatureScaling scaling{};

  friend bool operator==(const SummarySpec&, const SummarySpec&) = default;
};

/// What the last extraction actually did (observability for tests/benches:
/// the incremental path must only refresh dirty users).
struct ExtractStats {
  std::size_t refreshed = 0;  // rows re-extracted this call
  std::size_t reused = 0;     // rows served from the arena cache
};

/// Flat [users x channels*timesteps] float view over the arena.
class WindowBatch {
 public:
  explicit WindowBatch() = default;
  explicit WindowBatch(const float* data, std::size_t count, std::size_t window_size)
      : data_(data), count_(count), window_(window_size) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Elements per row (channels * timesteps).
  std::size_t window_size() const { return window_; }
  std::span<const float> row(std::size_t i) const {
    return {data_ + i * window_, window_};
  }
  const float* data() const { return data_; }

 private:
  const float* data_ = nullptr;
  std::size_t count_ = 0;
  std::size_t window_ = 0;
};

/// Flat [users x dim] double view over the arena.
class SummaryBatch {
 public:
  explicit SummaryBatch() = default;
  explicit SummaryBatch(const double* data, std::size_t count, std::size_t dim)
      : data_(data), count_(count), dim_(dim) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::size_t dim() const { return dim_; }
  std::span<const double> row(std::size_t i) const {
    return {data_ + i * dim_, dim_};
  }
  const double* data() const { return data_; }

 private:
  const double* data_ = nullptr;
  std::size_t count_ = 0;
  std::size_t dim_ = 0;
};

/// Reusable extraction buffers plus the cache metadata (spec + per-user
/// revision watermarks) that makes extraction incremental. Owned by the
/// consumer (core::Simulation owns one per cell); an arena is bound to
/// whichever store extracted into it last and revalidates automatically
/// when the store, geometry, or population changes.
class FeatureArena {
 public:
  FeatureArena() = default;

  /// Drops cache validity; the next extraction re-extracts every user.
  void invalidate() {
    windows_valid_ = false;
    summaries_valid_ = false;
  }

  const ExtractStats& window_stats() const { return window_stats_; }
  const ExtractStats& summary_stats() const { return summary_stats_; }

 private:
  friend class TwinColumnStore;

  std::vector<float> windows_;
  std::vector<double> summaries_;
  std::vector<std::uint64_t> window_revisions_;
  std::vector<std::uint64_t> summary_revisions_;
  WindowSpec window_spec_{};
  SummarySpec summary_spec_{};
  // Stores are identified by their process-unique id, not their address —
  // a successor store can reuse a freed store's address (ABA) but never
  // its id, so a long-lived arena can never serve a dead store's rows.
  std::uint64_t window_store_id_ = 0;
  std::uint64_t summary_store_id_ = 0;
  bool windows_valid_ = false;
  bool summaries_valid_ = false;
  ExtractStats window_stats_{};
  ExtractStats summary_stats_{};
};

}  // namespace dtmsv::twin
