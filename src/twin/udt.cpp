#include "twin/udt.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace dtmsv::twin {

UserDigitalTwin::UserDigitalTwin(std::uint64_t user_id, std::size_t history_capacity)
    : user_id_(user_id),
      channel_(history_capacity),
      location_(history_capacity),
      watch_(history_capacity),
      preference_(history_capacity) {}

void UserDigitalTwin::record_channel(util::SimTime t, ChannelObservation obs) {
  channel_.record(t, obs);
}

void UserDigitalTwin::record_location(util::SimTime t, mobility::Position pos) {
  location_.record(t, pos);
}

void UserDigitalTwin::record_watch(util::SimTime t, WatchObservation obs) {
  pref_estimator_.observe(obs.category, obs.watch_seconds);
  watch_.record(t, std::move(obs));
}

void UserDigitalTwin::record_preference(util::SimTime t,
                                        behavior::PreferenceVector estimate) {
  preference_.record(t, estimate);
}

void UserDigitalTwin::decay_preference() { pref_estimator_.decay(); }

namespace {

/// Resamples a timestamped scalar series into `bins` uniform bins over
/// [from, to) with zero-order hold for empty bins.
template <typename Series, typename Extract>
void fill_channel(std::vector<float>& out, std::size_t channel, std::size_t bins,
                  const Series& series, util::SimTime from, util::SimTime to,
                  Extract&& extract) {
  const double bin_width = (to - from) / static_cast<double>(bins);
  std::vector<double> sums(bins, 0.0);
  std::vector<std::size_t> counts(bins, 0);
  for (const auto& s : series) {
    if (s.time < from || s.time >= to) {
      continue;
    }
    auto b = static_cast<std::size_t>((s.time - from) / bin_width);
    b = std::min(b, bins - 1);
    sums[b] += extract(s.value);
    ++counts[b];
  }
  float hold = 0.0f;
  for (std::size_t b = 0; b < bins; ++b) {
    if (counts[b] > 0) {
      hold = static_cast<float>(sums[b] / static_cast<double>(counts[b]));
    }
    out[channel * bins + b] = hold;
  }
}

}  // namespace

std::vector<float> UserDigitalTwin::feature_window(util::SimTime now, double window_s,
                                                   std::size_t timesteps,
                                                   const FeatureScaling& scaling) const {
  DTMSV_EXPECTS(window_s > 0.0);
  DTMSV_EXPECTS(timesteps > 0);
  DTMSV_EXPECTS(scaling.pos_x_scale > 0.0 && scaling.pos_y_scale > 0.0);
  DTMSV_EXPECTS(scaling.snr_scale_db > 0.0);

  const util::SimTime from = now - window_s;
  std::vector<float> out(kFeatureChannels * timesteps, 0.0f);

  fill_channel(out, 0, timesteps, channel_, from, now, [&](const ChannelObservation& c) {
    return std::clamp((c.snr_db + scaling.snr_offset_db) / scaling.snr_scale_db, 0.0, 1.5);
  });
  fill_channel(out, 1, timesteps, channel_, from, now, [](const ChannelObservation& c) {
    return std::clamp(c.efficiency_bps_hz / 6.0, 0.0, 1.0);
  });
  fill_channel(out, 2, timesteps, location_, from, now, [&](const mobility::Position& p) {
    return std::clamp(p.x / scaling.pos_x_scale, 0.0, 1.0);
  });
  fill_channel(out, 3, timesteps, location_, from, now, [&](const mobility::Position& p) {
    return std::clamp(p.y / scaling.pos_y_scale, 0.0, 1.0);
  });
  fill_channel(out, 4, timesteps, watch_, from, now, [](const WatchObservation& w) {
    return std::clamp(w.watch_fraction, 0.0, 1.0);
  });
  for (std::size_t c = 0; c < video::kCategoryCount; ++c) {
    fill_channel(out, 5 + c, timesteps, preference_, from, now,
                 [c](const behavior::PreferenceVector& p) { return p[c]; });
  }
  return out;
}

std::vector<double> UserDigitalTwin::summary_features(util::SimTime now, double window_s,
                                                      const FeatureScaling& scaling) const {
  DTMSV_EXPECTS(window_s > 0.0);
  const util::SimTime from = now - window_s;

  util::RunningStats snr;
  for (const auto& s : channel_) {
    if (s.time >= from && s.time < now) {
      snr.add(s.value.snr_db);
    }
  }
  util::RunningStats x;
  util::RunningStats y;
  for (const auto& s : location_) {
    if (s.time >= from && s.time < now) {
      x.add(s.value.x);
      y.add(s.value.y);
    }
  }
  util::RunningStats frac;
  for (const auto& s : watch_) {
    if (s.time >= from && s.time < now) {
      frac.add(s.value.watch_fraction);
    }
  }

  std::vector<double> out;
  out.reserve(6 + video::kCategoryCount);
  out.push_back(snr.empty()
                    ? 0.0
                    : std::clamp((snr.mean() + scaling.snr_offset_db) / scaling.snr_scale_db,
                                 0.0, 1.5));
  out.push_back(snr.empty() ? 0.0 : snr.stddev() / scaling.snr_scale_db);
  out.push_back(x.empty() ? 0.0 : x.mean() / scaling.pos_x_scale);
  out.push_back(y.empty() ? 0.0 : y.mean() / scaling.pos_y_scale);
  out.push_back(frac.empty() ? 0.0 : frac.mean());
  out.push_back(frac.empty() ? 0.0 : frac.stddev());
  const behavior::PreferenceVector pref =
      preference_.empty() ? pref_estimator_.estimate() : preference_.latest().value;
  for (const double p : pref) {
    out.push_back(p);
  }
  return out;
}

}  // namespace dtmsv::twin
