#include "twin/udt.hpp"

#include "util/error.hpp"

namespace dtmsv::twin {

UserDigitalTwin::UserDigitalTwin(std::uint64_t user_id, std::size_t history_capacity)
    : user_id_(user_id),
      slot_(0),
      store_(nullptr),
      owned_(std::make_unique<TwinColumnStore>(1, history_capacity)) {
  store_ = owned_.get();
}

UserDigitalTwin::UserDigitalTwin(TwinColumnStore* store, std::uint64_t user_id,
                                 std::size_t slot)
    : user_id_(user_id), slot_(slot), store_(store) {
  DTMSV_EXPECTS(store != nullptr);
  DTMSV_EXPECTS(slot < store->user_count());
}

void UserDigitalTwin::record_channel(util::SimTime t, ChannelObservation obs) {
  store_->record_channel(slot_, t, obs);
}

void UserDigitalTwin::record_location(util::SimTime t, mobility::Position pos) {
  store_->record_location(slot_, t, pos);
}

void UserDigitalTwin::record_watch(util::SimTime t, WatchObservation obs) {
  store_->record_watch(slot_, t, obs);
}

void UserDigitalTwin::record_preference(util::SimTime t,
                                        behavior::PreferenceVector estimate) {
  store_->record_preference(slot_, t, estimate);
}

void UserDigitalTwin::decay_preference() { store_->decay_preference(slot_); }

std::vector<float> UserDigitalTwin::feature_window(util::SimTime now, double window_s,
                                                   std::size_t timesteps,
                                                   const FeatureScaling& scaling) const {
  std::vector<float> out(kFeatureChannels * timesteps, 0.0f);
  store_->extract_window_row(slot_, {now, window_s, timesteps, scaling}, out.data());
  return out;
}

std::vector<double> UserDigitalTwin::summary_features(util::SimTime now, double window_s,
                                                      const FeatureScaling& scaling) const {
  std::vector<double> out(TwinColumnStore::kSummaryDim, 0.0);
  store_->extract_summary_row(slot_, {now, window_s, scaling}, out.data());
  return out;
}

}  // namespace dtmsv::twin
