// BS-side status collection: samples ground truth (channel, location, watch
// events, preference) into the UDTs, each attribute at its own period, with
// optional report loss and latency — the imperfect uplink between the
// physical user and its twin.
#pragma once

#include <cstddef>
#include <vector>

#include "behavior/session.hpp"
#include "mobility/random_waypoint.hpp"
#include "twin/store.hpp"
#include "util/rng.hpp"
#include "wireless/channel.hpp"

namespace dtmsv::twin {

/// Per-attribute collection policy.
struct CollectionPolicy {
  double channel_period_s = 1.0;     // fast: link adaptation feedback
  double location_period_s = 5.0;    // medium: positioning reports
  double preference_period_s = 60.0; // slow: derived preference snapshot
  /// Probability an individual report is lost (uplink erasure).
  double report_loss_prob = 0.0;
  /// Fixed reporting latency applied to each report's timestamp visibility;
  /// reports become queryable only latency_s after measurement.
  double latency_s = 0.0;
};

/// Collection statistics (observability for failure-injection tests).
struct CollectorStats {
  std::size_t channel_reports = 0;
  std::size_t location_reports = 0;
  std::size_t watch_reports = 0;
  std::size_t preference_reports = 0;
  std::size_t dropped_reports = 0;
};

/// Drives per-attribute sampling into a TwinStore.
class StatusCollector {
 public:
  StatusCollector(CollectionPolicy policy, std::size_t user_count, util::Rng rng);

  /// Called once per simulation tick (`dt` seconds at time `now`, *after*
  /// the channel/mobility/session models advanced to `now`). Watch events
  /// that finished inside the tick are passed in `events`.
  void tick(util::SimTime now, double dt, TwinStore& store,
            const wireless::ChannelModel& channel,
            const mobility::MobilityField& mobility,
            const std::vector<behavior::ViewEvent>& events);

  const CollectorStats& stats() const { return stats_; }
  const CollectionPolicy& policy() const { return policy_; }

 private:
  bool due(double& next_due, util::SimTime now, double period) const;
  bool deliver();  // applies loss probability

  CollectionPolicy policy_;
  util::Rng rng_;
  CollectorStats stats_;
  double next_channel_ = 0.0;
  double next_location_ = 0.0;
  double next_preference_ = 0.0;
};

}  // namespace dtmsv::twin
