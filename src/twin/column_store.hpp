// TwinColumnStore: the columnar twin engine behind TwinStore.
//
// One SoA ring-buffer column per attribute across ALL users (twin/
// columns.hpp), one PreferenceEstimator and one revision watermark per
// user. Every ingestion and reset bumps the user's revision; feature
// extraction into a FeatureArena compares watermarks against the arena's
// last extraction and re-extracts only users whose histories changed while
// the window geometry stayed put — the steady-state interval loop (moving
// `now`) extracts everyone, churn-style consumers re-reading the same
// snapshot touch only the dirty slots. Rows are extracted independently
// (deterministic for any DTMSV_THREADS) with arithmetic bit-identical to
// the seed's per-twin AttributeSeries path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "behavior/preference.hpp"
#include "twin/arena.hpp"
#include "twin/columns.hpp"
#include "util/clock.hpp"

namespace dtmsv::twin {

/// Per-attribute ring capacities. The lanes are dense (capacity stride per
/// user), so paying channel-rate capacity for every attribute would
/// multiply fleet memory ~4x for nothing: the collector samples location /
/// watch / preference 5-60x sparser than the 1 Hz channel feedback.
/// scaled() derives proportional lanes from one channel-rate capacity.
struct ColumnCapacities {
  std::size_t channel = 2048;
  std::size_t location = 512;
  std::size_t watch = 256;
  std::size_t preference = 128;

  /// channel = `history_capacity`; sparser lanes at 1/4, 1/8 and 1/16 of
  /// it, floored at min(history_capacity, 64) so tiny test capacities
  /// keep uniform ring semantics.
  static ColumnCapacities scaled(std::size_t history_capacity);
};

/// Columnar storage + incremental extraction for a population of twins.
class TwinColumnStore {
 public:
  /// Number of feature channels per extracted window row.
  static constexpr std::size_t kFeatureChannels = 5 + video::kCategoryCount;
  /// Dimension of a summary-feature row.
  static constexpr std::size_t kSummaryDim = 6 + video::kCategoryCount;

  /// `history_capacity`: channel-lane slots per user; the sparser
  /// attributes get ColumnCapacities::scaled() shares of it.
  TwinColumnStore(std::size_t user_count, std::size_t history_capacity);
  TwinColumnStore(std::size_t user_count, const ColumnCapacities& capacities);

  std::size_t user_count() const { return estimators_.size(); }
  std::size_t history_capacity() const { return channel_.capacity(); }
  /// Process-unique id of this store instance — the FeatureArena cache key
  /// (a raw pointer could be reused by a successor store; the id cannot).
  std::uint64_t store_id() const { return store_id_; }

  // --- ingestion (each call bumps the user's revision watermark) ---
  void record_channel(std::size_t u, util::SimTime t, const ChannelObservation& obs);
  void record_location(std::size_t u, util::SimTime t, const mobility::Position& pos);
  /// Feeds the preference estimator (category + engagement seconds), then
  /// appends the watch sample — the twin-side preference update.
  void record_watch(std::size_t u, util::SimTime t, const WatchObservation& obs);
  void record_preference(std::size_t u, util::SimTime t,
                         const behavior::PreferenceVector& estimate);

  /// Applies preference forgetting to one user / every user (once per
  /// interval). Dirties the watermark: summary rows read the estimator.
  void decay_preference(std::size_t u);
  void decay_preferences();

  /// Slot recycling for handover: the user's rings empty (O(1), nothing
  /// reallocated), the estimator resets, and the revision bump marks the
  /// slot dirty so no cached feature row of the departed user survives.
  void reset_user(std::size_t u);

  /// Monotonic per-user change counter (the dirty watermark).
  std::uint64_t revision(std::size_t u) const { return revisions_[u]; }

  // --- per-user reads ---
  ChannelSeries channel(std::size_t u) const { return {&channel_, u}; }
  LocationSeries location(std::size_t u) const { return {&location_, u}; }
  WatchSeries watch(std::size_t u) const { return {&watch_, u}; }
  PreferenceSeries preference(std::size_t u) const { return {&preference_, u}; }
  const behavior::PreferenceEstimator& estimator(std::size_t u) const {
    return estimators_[u];
  }

  // --- raw column access for scan-heavy consumers (channel forecasting,
  // out-of-tree kernels): for_each_slot + the flat value lanes avoid
  // materialising a Stamped<T> per sample ---
  const ChannelColumn& channel_column() const { return channel_; }
  const LocationColumn& location_column() const { return location_; }
  const WatchColumn& watch_column() const { return watch_; }
  const PreferenceColumn& preference_column() const { return preference_; }

  // --- batch extraction into a pooled arena ---

  /// Materialises every user's [kFeatureChannels x timesteps] window
  /// (channel-major, zero-order hold — see UserDigitalTwin::feature_window)
  /// into `arena` and returns a view over it. Incremental: when the arena
  /// already holds this store's rows for the same spec, only users whose
  /// revision moved are re-extracted (`force_full` disables the cache; the
  /// result is bit-identical either way). arena.window_stats() reports the
  /// refreshed/reused split.
  WindowBatch feature_windows(const WindowSpec& spec, FeatureArena& arena,
                              bool force_full = false) const;

  /// Summary-feature counterpart ([kSummaryDim] per user, see
  /// UserDigitalTwin::summary_features), same incremental contract.
  SummaryBatch summary_features(const SummarySpec& spec, FeatureArena& arena,
                                bool force_full = false) const;

  /// Single-row extraction (standalone twins, spot checks). `out` must
  /// hold kFeatureChannels * spec.timesteps floats / kSummaryDim doubles.
  void extract_window_row(std::size_t u, const WindowSpec& spec, float* out) const;
  void extract_summary_row(std::size_t u, const SummarySpec& spec, double* out) const;

 private:
  struct RowScratch;
  void extract_window_row(std::size_t u, const WindowSpec& spec, float* out,
                          RowScratch& scratch) const;

  std::uint64_t store_id_;
  ChannelColumn channel_;
  LocationColumn location_;
  WatchColumn watch_;
  PreferenceColumn preference_;
  std::vector<behavior::PreferenceEstimator> estimators_;
  std::vector<std::uint64_t> revisions_;
};

}  // namespace dtmsv::twin
