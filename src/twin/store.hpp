// TwinStore: the edge server's collection of UDTs ("UDTs are deployed on the
// edge server to store user status for individual user").
//
// Storage is columnar: one TwinColumnStore holds every user's histories as
// SoA ring buffers, and the UserDigitalTwin objects handed out by twin()
// are stable handles into it. reset_user is slot recycling (O(1), no
// allocation); batch feature extraction goes through the column store's
// pooled, incremental path (TwinColumnStore::feature_windows /
// summary_features via core::TwinSnapshot).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "twin/udt.hpp"

namespace dtmsv::twin {

/// Owns the columnar histories plus one UserDigitalTwin handle per user.
class TwinStore {
 public:
  /// Creates `user_count` twins with ids 0..user_count-1.
  /// `history_capacity` sizes the 1 Hz channel lane; the sparser attribute
  /// lanes keep ColumnCapacities::scaled shares of it.
  explicit TwinStore(std::size_t user_count, std::size_t history_capacity = 2048);

  std::size_t user_count() const { return twins_.size(); }

  UserDigitalTwin& twin(std::uint64_t user_id);
  const UserDigitalTwin& twin(std::uint64_t user_id) const;

  /// Recycles one twin slot (the slot's user was handed over; the edge
  /// server holds no history for the newcomer): rings empty in place, the
  /// preference estimator resets, and the slot's dirty watermark advances
  /// so incremental extraction drops any cached row of the departed user.
  void reset_user(std::uint64_t user_id);

  /// Applies preference forgetting on every twin (once per interval).
  void decay_preferences();

  /// The columnar engine: batch ingestion and pooled zero-copy extraction.
  /// Batch feature extraction goes exclusively through this surface —
  /// TwinColumnStore::feature_windows / summary_features into a
  /// FeatureArena (or core::TwinSnapshot, which wraps them). The copying
  /// all_feature_windows / all_summary_features bridges were removed after
  /// one deprecation cycle; WindowBatch / SummaryBatch views are the only
  /// supported bulk path.
  TwinColumnStore& columns() { return *columns_; }
  const TwinColumnStore& columns() const { return *columns_; }

 private:
  std::unique_ptr<TwinColumnStore> columns_;
  std::vector<UserDigitalTwin> twins_;
};

}  // namespace dtmsv::twin
