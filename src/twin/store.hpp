// TwinStore: the edge server's collection of UDTs ("UDTs are deployed on the
// edge server to store user status for individual user").
#pragma once

#include <cstdint>
#include <vector>

#include "twin/udt.hpp"

namespace dtmsv::twin {

/// Owns one UserDigitalTwin per user.
class TwinStore {
 public:
  /// Creates `user_count` twins with ids 0..user_count-1.
  explicit TwinStore(std::size_t user_count, std::size_t history_capacity = 2048);

  std::size_t user_count() const { return twins_.size(); }

  UserDigitalTwin& twin(std::uint64_t user_id);
  const UserDigitalTwin& twin(std::uint64_t user_id) const;

  /// Replaces one twin with an empty one (the slot's user was handed over;
  /// the edge server holds no history for the newcomer).
  void reset_user(std::uint64_t user_id);

  /// Applies preference forgetting on every twin (once per interval).
  void decay_preferences();

  /// Extracts the CNN feature windows of all users, stacked row-major as
  /// [user][channel*timesteps]; see UserDigitalTwin::feature_window.
  std::vector<std::vector<float>> all_feature_windows(
      util::SimTime now, double window_s, std::size_t timesteps,
      const FeatureScaling& scaling) const;

  /// Extracts summary features of all users.
  std::vector<std::vector<double>> all_summary_features(
      util::SimTime now, double window_s, const FeatureScaling& scaling) const;

 private:
  std::size_t history_capacity_;
  std::vector<UserDigitalTwin> twins_;
};

}  // namespace dtmsv::twin
