#include "twin/column_store.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace dtmsv::twin {

namespace {

/// Extraction rows shorter than this run inline; longer dirty lists split
/// across the pool (each row is written by exactly one worker, so the
/// bytes are identical for any DTMSV_THREADS).
constexpr std::size_t kExtractGrain = 8;

void validate_window_spec(const WindowSpec& spec) {
  DTMSV_EXPECTS(spec.window_s > 0.0);
  DTMSV_EXPECTS(spec.timesteps > 0);
  DTMSV_EXPECTS(spec.scaling.pos_x_scale > 0.0 && spec.scaling.pos_y_scale > 0.0);
  DTMSV_EXPECTS(spec.scaling.snr_scale_db > 0.0);
}

/// The seed's per-channel resample: bin means over [from, now) with
/// zero-order hold through empty bins (zeros before the first sample).
/// Sums were accumulated oldest-first, so the division and hold chain
/// reproduce the AttributeSeries-era floats bit for bit.
void hold_write(float* out, std::size_t channel, std::size_t bins,
                const double* sums, const std::size_t* counts) {
  float hold = 0.0f;
  for (std::size_t b = 0; b < bins; ++b) {
    if (counts[b] > 0) {
      hold = static_cast<float>(sums[b] / static_cast<double>(counts[b]));
    }
    out[channel * bins + b] = hold;
  }
}

}  // namespace

struct TwinColumnStore::RowScratch {
  std::vector<double> sums;         // up to kCategoryCount lanes x bins
  std::vector<std::size_t> counts;  // one count lane (shared per attribute)

  void reset(std::size_t lanes, std::size_t bins) {
    sums.assign(lanes * bins, 0.0);
    counts.assign(bins, 0);
  }
};

namespace {

std::uint64_t next_store_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

ColumnCapacities ColumnCapacities::scaled(std::size_t history_capacity) {
  const auto lane = [history_capacity](std::size_t divisor) {
    return std::min(history_capacity,
                    std::max<std::size_t>(64, history_capacity / divisor));
  };
  return {history_capacity, lane(4), lane(8), lane(16)};
}

TwinColumnStore::TwinColumnStore(std::size_t user_count, std::size_t history_capacity)
    : TwinColumnStore(user_count, ColumnCapacities::scaled(history_capacity)) {}

TwinColumnStore::TwinColumnStore(std::size_t user_count,
                                 const ColumnCapacities& capacities)
    : store_id_(next_store_id()),
      channel_(user_count, capacities.channel),
      location_(user_count, capacities.location),
      watch_(user_count, capacities.watch),
      preference_(user_count, capacities.preference),
      estimators_(user_count),
      revisions_(user_count, 0) {
  DTMSV_EXPECTS(user_count > 0);
}

void TwinColumnStore::record_channel(std::size_t u, util::SimTime t,
                                     const ChannelObservation& obs) {
  DTMSV_EXPECTS(u < user_count());
  channel_.record(u, t, obs);
  ++revisions_[u];
}

void TwinColumnStore::record_location(std::size_t u, util::SimTime t,
                                      const mobility::Position& pos) {
  DTMSV_EXPECTS(u < user_count());
  location_.record(u, t, pos);
  ++revisions_[u];
}

void TwinColumnStore::record_watch(std::size_t u, util::SimTime t,
                                   const WatchObservation& obs) {
  DTMSV_EXPECTS(u < user_count());
  estimators_[u].observe(obs.category, obs.watch_seconds);
  watch_.record(u, t, obs);
  ++revisions_[u];
}

void TwinColumnStore::record_preference(std::size_t u, util::SimTime t,
                                        const behavior::PreferenceVector& estimate) {
  DTMSV_EXPECTS(u < user_count());
  preference_.record(u, t, estimate);
  ++revisions_[u];
}

void TwinColumnStore::decay_preference(std::size_t u) {
  DTMSV_EXPECTS(u < user_count());
  estimators_[u].decay();
  ++revisions_[u];
}

void TwinColumnStore::decay_preferences() {
  for (std::size_t u = 0; u < user_count(); ++u) {
    estimators_[u].decay();
    ++revisions_[u];
  }
}

void TwinColumnStore::reset_user(std::size_t u) {
  DTMSV_EXPECTS(u < user_count());
  channel_.clear_user(u);
  location_.clear_user(u);
  watch_.clear_user(u);
  preference_.clear_user(u);
  estimators_[u] = behavior::PreferenceEstimator{};
  ++revisions_[u];
}

void TwinColumnStore::extract_window_row(std::size_t u, const WindowSpec& spec,
                                         float* out, RowScratch& scratch) const {
  const std::size_t bins = spec.timesteps;
  const util::SimTime from = spec.now - spec.window_s;
  const double bin_width = (spec.now - from) / static_cast<double>(bins);
  const FeatureScaling& scaling = spec.scaling;

  const auto bin_of = [&](double t) {
    auto b = static_cast<std::size_t>((t - from) / bin_width);
    return std::min(b, bins - 1);
  };

  // Channels 0 (normalised SNR) and 1 (efficiency/6) from the channel
  // column, one fused pass over the time lane.
  scratch.reset(2, bins);
  {
    double* sums_snr = scratch.sums.data();
    double* sums_eff = scratch.sums.data() + bins;
    const std::vector<double>& times = channel_.times();
    const std::vector<double>& snr = channel_.snr();
    const std::vector<double>& eff = channel_.efficiency();
    channel_.for_each_slot(u, [&](std::size_t at) {
      const double t = times[at];
      if (t < from || t >= spec.now) {
        return;
      }
      const std::size_t b = bin_of(t);
      sums_snr[b] +=
          std::clamp((snr[at] + scaling.snr_offset_db) / scaling.snr_scale_db, 0.0, 1.5);
      sums_eff[b] += std::clamp(eff[at] / 6.0, 0.0, 1.0);
      ++scratch.counts[b];
    });
    hold_write(out, 0, bins, sums_snr, scratch.counts.data());
    hold_write(out, 1, bins, sums_eff, scratch.counts.data());
  }

  // Channels 2/3: normalised position.
  scratch.reset(2, bins);
  {
    double* sums_x = scratch.sums.data();
    double* sums_y = scratch.sums.data() + bins;
    const std::vector<double>& times = location_.times();
    const std::vector<double>& xs = location_.x();
    const std::vector<double>& ys = location_.y();
    location_.for_each_slot(u, [&](std::size_t at) {
      const double t = times[at];
      if (t < from || t >= spec.now) {
        return;
      }
      const std::size_t b = bin_of(t);
      sums_x[b] += std::clamp(xs[at] / scaling.pos_x_scale, 0.0, 1.0);
      sums_y[b] += std::clamp(ys[at] / scaling.pos_y_scale, 0.0, 1.0);
      ++scratch.counts[b];
    });
    hold_write(out, 2, bins, sums_x, scratch.counts.data());
    hold_write(out, 3, bins, sums_y, scratch.counts.data());
  }

  // Channel 4: mean watch fraction.
  scratch.reset(1, bins);
  {
    const std::vector<double>& times = watch_.times();
    const std::vector<double>& frac = watch_.watch_fraction();
    watch_.for_each_slot(u, [&](std::size_t at) {
      const double t = times[at];
      if (t < from || t >= spec.now) {
        return;
      }
      const std::size_t b = bin_of(t);
      scratch.sums[b] += std::clamp(frac[at], 0.0, 1.0);
      ++scratch.counts[b];
    });
    hold_write(out, 4, bins, scratch.sums.data(), scratch.counts.data());
  }

  // Channels 5..: preference weight per category (the per-category lanes
  // are contiguous, so this is kCategoryCount strided sums in one pass).
  scratch.reset(video::kCategoryCount, bins);
  {
    const std::vector<double>& times = preference_.times();
    preference_.for_each_slot(u, [&](std::size_t at) {
      const double t = times[at];
      if (t < from || t >= spec.now) {
        return;
      }
      const std::size_t b = bin_of(t);
      for (std::size_t c = 0; c < video::kCategoryCount; ++c) {
        scratch.sums[c * bins + b] += preference_.lane(c)[at];
      }
      ++scratch.counts[b];
    });
    for (std::size_t c = 0; c < video::kCategoryCount; ++c) {
      hold_write(out, 5 + c, bins, scratch.sums.data() + c * bins,
                 scratch.counts.data());
    }
  }
}

void TwinColumnStore::extract_window_row(std::size_t u, const WindowSpec& spec,
                                         float* out) const {
  DTMSV_EXPECTS(u < user_count());
  validate_window_spec(spec);
  RowScratch scratch;
  extract_window_row(u, spec, out, scratch);
}

void TwinColumnStore::extract_summary_row(std::size_t u, const SummarySpec& spec,
                                          double* out) const {
  DTMSV_EXPECTS(u < user_count());
  DTMSV_EXPECTS(spec.window_s > 0.0);
  const util::SimTime from = spec.now - spec.window_s;

  util::RunningStats snr;
  {
    const std::vector<double>& times = channel_.times();
    const std::vector<double>& vals = channel_.snr();
    channel_.for_each_slot(u, [&](std::size_t at) {
      if (times[at] >= from && times[at] < spec.now) {
        snr.add(vals[at]);
      }
    });
  }
  util::RunningStats x;
  util::RunningStats y;
  {
    const std::vector<double>& times = location_.times();
    const std::vector<double>& xs = location_.x();
    const std::vector<double>& ys = location_.y();
    location_.for_each_slot(u, [&](std::size_t at) {
      if (times[at] >= from && times[at] < spec.now) {
        x.add(xs[at]);
        y.add(ys[at]);
      }
    });
  }
  util::RunningStats frac;
  {
    const std::vector<double>& times = watch_.times();
    const std::vector<double>& vals = watch_.watch_fraction();
    watch_.for_each_slot(u, [&](std::size_t at) {
      if (times[at] >= from && times[at] < spec.now) {
        frac.add(vals[at]);
      }
    });
  }

  const FeatureScaling& scaling = spec.scaling;
  out[0] = snr.empty()
               ? 0.0
               : std::clamp((snr.mean() + scaling.snr_offset_db) / scaling.snr_scale_db,
                            0.0, 1.5);
  out[1] = snr.empty() ? 0.0 : snr.stddev() / scaling.snr_scale_db;
  out[2] = x.empty() ? 0.0 : x.mean() / scaling.pos_x_scale;
  out[3] = y.empty() ? 0.0 : y.mean() / scaling.pos_y_scale;
  out[4] = frac.empty() ? 0.0 : frac.mean();
  out[5] = frac.empty() ? 0.0 : frac.stddev();
  const behavior::PreferenceVector pref =
      preference_.empty(u) ? estimators_[u].estimate()
                           : preference_.get(u, preference_.size(u) - 1);
  for (std::size_t c = 0; c < pref.size(); ++c) {
    out[6 + c] = pref[c];
  }
}

namespace {

/// The shared incremental-refresh machinery behind both batch extractions:
/// validate the arena cache (same store generation, same geometry, same
/// population), build the dirty-user list, re-extract dirty rows on the
/// pool (disjoint rows — bit-identical for any thread count), and rebind
/// the cache metadata. `make_row_fn()` is invoked once per worker chunk so
/// row extractors can carry per-chunk scratch.
template <typename Value, typename MakeRowFn>
void refresh_rows(const std::vector<std::uint64_t>& store_revisions,
                  std::uint64_t store_id, std::size_t width, bool force_full,
                  bool same_geometry, std::vector<Value>& buffer,
                  std::vector<std::uint64_t>& cached_revisions, bool& valid,
                  std::uint64_t& bound_store_id, ExtractStats& stats,
                  const MakeRowFn& make_row_fn) {
  const std::size_t users = store_revisions.size();
  const bool cache_usable = !force_full && valid && bound_store_id == store_id &&
                            same_geometry && buffer.size() == users * width &&
                            cached_revisions.size() == users;
  buffer.resize(users * width);
  cached_revisions.resize(users);

  std::vector<std::size_t> dirty;
  if (cache_usable) {
    for (std::size_t u = 0; u < users; ++u) {
      if (cached_revisions[u] != store_revisions[u]) {
        dirty.push_back(u);
      }
    }
  } else {
    dirty.resize(users);
    for (std::size_t u = 0; u < users; ++u) {
      dirty[u] = u;
    }
  }

  Value* data = buffer.data();
  util::parallel_for(0, dirty.size(), kExtractGrain,
                     [&](std::size_t begin, std::size_t end) {
                       auto extract_row = make_row_fn();
                       for (std::size_t i = begin; i < end; ++i) {
                         const std::size_t u = dirty[i];
                         extract_row(u, data + u * width);
                         cached_revisions[u] = store_revisions[u];
                       }
                     });

  bound_store_id = store_id;
  valid = true;
  stats = {dirty.size(), users - dirty.size()};
}

}  // namespace

WindowBatch TwinColumnStore::feature_windows(const WindowSpec& spec,
                                             FeatureArena& arena,
                                             bool force_full) const {
  validate_window_spec(spec);
  const std::size_t width = kFeatureChannels * spec.timesteps;
  refresh_rows(revisions_, store_id_, width, force_full,
               arena.window_spec_ == spec, arena.windows_,
               arena.window_revisions_, arena.windows_valid_,
               arena.window_store_id_, arena.window_stats_, [&] {
                 return [this, &spec, scratch = RowScratch{}](
                            std::size_t u, float* out) mutable {
                   extract_window_row(u, spec, out, scratch);
                 };
               });
  arena.window_spec_ = spec;
  return WindowBatch(arena.windows_.data(), user_count(), width);
}

SummaryBatch TwinColumnStore::summary_features(const SummarySpec& spec,
                                               FeatureArena& arena,
                                               bool force_full) const {
  DTMSV_EXPECTS(spec.window_s > 0.0);
  refresh_rows(revisions_, store_id_, kSummaryDim, force_full,
               arena.summary_spec_ == spec, arena.summaries_,
               arena.summary_revisions_, arena.summaries_valid_,
               arena.summary_store_id_, arena.summary_stats_, [&] {
                 return [this, &spec](std::size_t u, double* out) {
                   extract_summary_row(u, spec, out);
                 };
               });
  arena.summary_spec_ = spec;
  return SummaryBatch(arena.summaries_.data(), user_count(), kSummaryDim);
}

}  // namespace dtmsv::twin
