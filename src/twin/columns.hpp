// Columnar twin storage: per-attribute SoA ring buffers.
//
// The seed kept one std::deque<Stamped<T>> per attribute per user — every
// window scan chased deque blocks and every handover reallocated a whole
// UserDigitalTwin. Here each attribute holds ONE contiguous time column and
// one contiguous column per value field, spanning all users with a fixed
// `capacity` stride: user u's slots live at [u*capacity, (u+1)*capacity),
// managed as a ring (head + size, oldest evicted first). Extraction kernels
// scan plain double arrays; reset_user is slot recycling (ring emptied, no
// allocation, nothing freed) instead of object replacement.
//
// SeriesView<Column> adapts one user's ring back to the AttributeSeries
// surface (size/latest/window/staleness/iteration, values materialised as
// Stamped<T> on access), so twin consumers — channel predictors, swiping
// aggregation, tests — read either storage through the same idioms,
// including the eviction-truncation contract (truncated_before /
// window_query, see twin/series.hpp).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "behavior/preference.hpp"
#include "mobility/campus_map.hpp"
#include "twin/observations.hpp"
#include "twin/series.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace dtmsv::twin {

/// Ring bookkeeping shared by every attribute column: the time column, the
/// per-user {head, size} ring state, and the eviction metadata backing the
/// truncation contract. Value columns live in the derived classes.
class RingColumnBase {
 public:
  RingColumnBase(std::size_t user_count, std::size_t capacity)
      : capacity_(capacity),
        rings_(user_count),
        times_(user_count * capacity, 0.0),
        last_evicted_(user_count, 0.0),
        evicted_(user_count, 0) {
    DTMSV_EXPECTS(capacity > 0);
  }

  std::size_t user_count() const { return rings_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t size(std::size_t u) const { return rings_[u].size; }
  bool empty(std::size_t u) const { return rings_[u].size == 0; }

  /// Timestamp of user `u`'s i-th retained sample (0 = oldest).
  util::SimTime time(std::size_t u, std::size_t i) const {
    return times_[slot(u, i)];
  }

  /// Physical slot of user `u`'s i-th retained sample.
  std::size_t slot(std::size_t u, std::size_t i) const {
    const Ring& r = rings_[u];
    return u * capacity_ + (r.head + i) % capacity_;
  }

  /// True when capacity eviction dropped a sample of `u` with time >= from.
  bool truncated_before(std::size_t u, util::SimTime from) const {
    return evicted_[u] != 0 && last_evicted_[u] >= from;
  }

  /// Calls fn(physical_slot) over user `u`'s retained samples, oldest
  /// first, as two contiguous segments (no per-sample modulo).
  template <typename Fn>
  void for_each_slot(std::size_t u, Fn&& fn) const {
    const Ring& r = rings_[u];
    const std::size_t base = u * capacity_;
    const std::size_t first = std::min<std::size_t>(r.size, capacity_ - r.head);
    for (std::size_t i = 0; i < first; ++i) {
      fn(base + r.head + i);
    }
    for (std::size_t i = 0; i < r.size - first; ++i) {
      fn(base + i);
    }
  }

  /// Recycles user `u`'s slots: empty ring, truncation metadata cleared.
  /// O(1) — nothing is deallocated or overwritten.
  void clear_user(std::size_t u) {
    rings_[u] = Ring{};
    last_evicted_[u] = 0.0;
    evicted_[u] = 0;
  }

  const std::vector<double>& times() const { return times_; }

 protected:
  /// Claims the write slot for a new sample of `u` at `t` (non-decreasing
  /// within the user), evicting the oldest sample when the ring is full.
  std::size_t push_slot(std::size_t u, util::SimTime t) {
    Ring& r = rings_[u];
    DTMSV_EXPECTS_MSG(
        r.size == 0 || t >= times_[u * capacity_ + (r.head + r.size - 1) % capacity_],
        "twin column: timestamps must be non-decreasing");
    std::size_t at;
    if (r.size == capacity_) {
      at = u * capacity_ + r.head;
      last_evicted_[u] = times_[at];
      evicted_[u] = 1;
      r.head = static_cast<std::uint32_t>((r.head + 1) % capacity_);
    } else {
      at = u * capacity_ + (r.head + r.size) % capacity_;
      ++r.size;
    }
    times_[at] = t;
    return at;
  }

 private:
  struct Ring {
    std::uint32_t head = 0;
    std::uint32_t size = 0;
  };

  std::size_t capacity_;
  std::vector<Ring> rings_;
  std::vector<double> times_;
  std::vector<double> last_evicted_;
  std::vector<std::uint8_t> evicted_;
};

/// Channel condition column: snr / spectral efficiency / serving BS.
class ChannelColumn : public RingColumnBase {
 public:
  using value_type = ChannelObservation;

  ChannelColumn(std::size_t user_count, std::size_t capacity)
      : RingColumnBase(user_count, capacity),
        snr_(user_count * capacity, 0.0),
        efficiency_(user_count * capacity, 0.0),
        serving_bs_(user_count * capacity, 0) {}

  void record(std::size_t u, util::SimTime t, const ChannelObservation& obs) {
    const std::size_t at = push_slot(u, t);
    snr_[at] = obs.snr_db;
    efficiency_[at] = obs.efficiency_bps_hz;
    serving_bs_[at] = static_cast<std::uint32_t>(obs.serving_bs);
  }

  value_type get(std::size_t u, std::size_t i) const {
    const std::size_t at = slot(u, i);
    return {snr_[at], efficiency_[at], serving_bs_[at]};
  }

  const std::vector<double>& snr() const { return snr_; }
  const std::vector<double>& efficiency() const { return efficiency_; }

 private:
  std::vector<double> snr_;
  std::vector<double> efficiency_;
  std::vector<std::uint32_t> serving_bs_;
};

/// Location column: campus position reports.
class LocationColumn : public RingColumnBase {
 public:
  using value_type = mobility::Position;

  LocationColumn(std::size_t user_count, std::size_t capacity)
      : RingColumnBase(user_count, capacity),
        x_(user_count * capacity, 0.0),
        y_(user_count * capacity, 0.0) {}

  void record(std::size_t u, util::SimTime t, const mobility::Position& pos) {
    const std::size_t at = push_slot(u, t);
    x_[at] = pos.x;
    y_[at] = pos.y;
  }

  value_type get(std::size_t u, std::size_t i) const {
    const std::size_t at = slot(u, i);
    return {x_[at], y_[at]};
  }

  const std::vector<double>& x() const { return x_; }
  const std::vector<double>& y() const { return y_; }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

/// Watch-event column: one finished view per sample.
class WatchColumn : public RingColumnBase {
 public:
  using value_type = WatchObservation;

  WatchColumn(std::size_t user_count, std::size_t capacity)
      : RingColumnBase(user_count, capacity),
        video_id_(user_count * capacity, 0),
        category_(user_count * capacity, 0),
        duration_(user_count * capacity, 0.0),
        watch_seconds_(user_count * capacity, 0.0),
        watch_fraction_(user_count * capacity, 0.0),
        completed_(user_count * capacity, 0) {}

  void record(std::size_t u, util::SimTime t, const WatchObservation& obs) {
    const std::size_t at = push_slot(u, t);
    video_id_[at] = obs.video_id;
    category_[at] = static_cast<std::uint8_t>(obs.category);
    duration_[at] = obs.duration_s;
    watch_seconds_[at] = obs.watch_seconds;
    watch_fraction_[at] = obs.watch_fraction;
    completed_[at] = obs.completed ? 1 : 0;
  }

  value_type get(std::size_t u, std::size_t i) const {
    const std::size_t at = slot(u, i);
    WatchObservation obs;
    obs.video_id = video_id_[at];
    obs.category = static_cast<video::Category>(category_[at]);
    obs.duration_s = duration_[at];
    obs.watch_seconds = watch_seconds_[at];
    obs.watch_fraction = watch_fraction_[at];
    obs.completed = completed_[at] != 0;
    return obs;
  }

  const std::vector<double>& watch_fraction() const { return watch_fraction_; }

 private:
  std::vector<std::uint64_t> video_id_;
  std::vector<std::uint8_t> category_;
  std::vector<double> duration_;
  std::vector<double> watch_seconds_;
  std::vector<double> watch_fraction_;
  std::vector<std::uint8_t> completed_;
};

/// Preference-snapshot column: one contiguous lane per category, so the
/// per-category feature channels stream straight through a double array.
class PreferenceColumn : public RingColumnBase {
 public:
  using value_type = behavior::PreferenceVector;

  PreferenceColumn(std::size_t user_count, std::size_t capacity)
      : RingColumnBase(user_count, capacity) {
    for (auto& lane : weights_) {
      lane.assign(user_count * capacity, 0.0);
    }
  }

  void record(std::size_t u, util::SimTime t, const behavior::PreferenceVector& v) {
    const std::size_t at = push_slot(u, t);
    for (std::size_t c = 0; c < v.size(); ++c) {
      weights_[c][at] = v[c];
    }
  }

  value_type get(std::size_t u, std::size_t i) const {
    const std::size_t at = slot(u, i);
    behavior::PreferenceVector v{};
    for (std::size_t c = 0; c < v.size(); ++c) {
      v[c] = weights_[c][at];
    }
    return v;
  }

  const std::vector<double>& lane(std::size_t category) const {
    return weights_[category];
  }

 private:
  std::array<std::vector<double>, video::kCategoryCount> weights_;
};

/// Read view of one user's ring inside a column, with the AttributeSeries
/// query surface. Values are materialised Stamped<T> copies — the view
/// never exposes interior pointers, so it stays valid across appends (it
/// re-reads the ring on every call) and costs nothing to copy.
template <typename Column>
class SeriesView {
 public:
  using value_type = Stamped<typename Column::value_type>;

  SeriesView(const Column* column, std::size_t user)
      : column_(column), user_(user) {}

  std::size_t size() const { return column_->size(user_); }
  bool empty() const { return column_->empty(user_); }
  std::size_t capacity() const { return column_->capacity(); }

  value_type operator[](std::size_t i) const {
    return {column_->time(user_, i), column_->get(user_, i)};
  }

  value_type latest() const {
    DTMSV_EXPECTS(!empty());
    return (*this)[size() - 1];
  }

  value_type oldest() const {
    DTMSV_EXPECTS(!empty());
    return (*this)[0];
  }

  bool truncated_before(util::SimTime from) const {
    return column_->truncated_before(user_, from);
  }

  /// Samples with time in [from, to), oldest first.
  std::vector<value_type> window(util::SimTime from, util::SimTime to) const {
    DTMSV_EXPECTS(from <= to);
    std::vector<value_type> out;
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      const util::SimTime t = column_->time(user_, i);
      if (t >= from && t < to) {
        out.push_back((*this)[i]);
      }
    }
    return out;
  }

  /// Window query reporting eviction truncation (twin/series.hpp contract).
  WindowQuery<typename Column::value_type> window_query(util::SimTime from,
                                                        util::SimTime to) const {
    return {window(from, to), truncated_before(from)};
  }

  /// Age of the newest sample relative to `now`; +inf when empty.
  double staleness(util::SimTime now) const {
    if (empty()) {
      return std::numeric_limits<double>::infinity();
    }
    return std::max(0.0, now - column_->time(user_, size() - 1));
  }

  /// Forward iterator yielding Stamped<T> by value (oldest -> newest).
  class const_iterator {
   public:
    using value_type = SeriesView::value_type;
    using difference_type = std::ptrdiff_t;

    const_iterator() = default;
    const_iterator(const SeriesView* view, std::size_t i) : view_(view), i_(i) {}

    value_type operator*() const { return (*view_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++*this;
      return old;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.i_ == b.i_;
    }

   private:
    const SeriesView* view_ = nullptr;
    std::size_t i_ = 0;
  };

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

 private:
  const Column* column_;
  std::size_t user_;
};

using ChannelSeries = SeriesView<ChannelColumn>;
using LocationSeries = SeriesView<LocationColumn>;
using WatchSeries = SeriesView<WatchColumn>;
using PreferenceSeries = SeriesView<PreferenceColumn>;

}  // namespace dtmsv::twin
