#include "twin/store.hpp"

#include "util/error.hpp"

namespace dtmsv::twin {

TwinStore::TwinStore(std::size_t user_count, std::size_t history_capacity)
    : history_capacity_(history_capacity) {
  DTMSV_EXPECTS(user_count > 0);
  twins_.reserve(user_count);
  for (std::size_t u = 0; u < user_count; ++u) {
    twins_.emplace_back(u, history_capacity);
  }
}

void TwinStore::reset_user(std::uint64_t user_id) {
  DTMSV_EXPECTS(user_id < twins_.size());
  twins_[static_cast<std::size_t>(user_id)] =
      UserDigitalTwin(user_id, history_capacity_);
}

UserDigitalTwin& TwinStore::twin(std::uint64_t user_id) {
  DTMSV_EXPECTS(user_id < twins_.size());
  return twins_[static_cast<std::size_t>(user_id)];
}

const UserDigitalTwin& TwinStore::twin(std::uint64_t user_id) const {
  DTMSV_EXPECTS(user_id < twins_.size());
  return twins_[static_cast<std::size_t>(user_id)];
}

void TwinStore::decay_preferences() {
  for (auto& t : twins_) {
    t.decay_preference();
  }
}

std::vector<std::vector<float>> TwinStore::all_feature_windows(
    util::SimTime now, double window_s, std::size_t timesteps,
    const FeatureScaling& scaling) const {
  std::vector<std::vector<float>> out;
  out.reserve(twins_.size());
  for (const auto& t : twins_) {
    out.push_back(t.feature_window(now, window_s, timesteps, scaling));
  }
  return out;
}

std::vector<std::vector<double>> TwinStore::all_summary_features(
    util::SimTime now, double window_s, const FeatureScaling& scaling) const {
  std::vector<std::vector<double>> out;
  out.reserve(twins_.size());
  for (const auto& t : twins_) {
    out.push_back(t.summary_features(now, window_s, scaling));
  }
  return out;
}

}  // namespace dtmsv::twin
