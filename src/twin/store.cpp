#include "twin/store.hpp"

#include "util/error.hpp"

namespace dtmsv::twin {

TwinStore::TwinStore(std::size_t user_count, std::size_t history_capacity)
    : columns_(std::make_unique<TwinColumnStore>(user_count, history_capacity)) {
  DTMSV_EXPECTS(user_count > 0);
  twins_.reserve(user_count);
  for (std::size_t u = 0; u < user_count; ++u) {
    twins_.emplace_back(UserDigitalTwin(columns_.get(), u, u));
  }
}

void TwinStore::reset_user(std::uint64_t user_id) {
  DTMSV_EXPECTS(user_id < twins_.size());
  columns_->reset_user(static_cast<std::size_t>(user_id));
}

UserDigitalTwin& TwinStore::twin(std::uint64_t user_id) {
  DTMSV_EXPECTS(user_id < twins_.size());
  return twins_[static_cast<std::size_t>(user_id)];
}

const UserDigitalTwin& TwinStore::twin(std::uint64_t user_id) const {
  DTMSV_EXPECTS(user_id < twins_.size());
  return twins_[static_cast<std::size_t>(user_id)];
}

void TwinStore::decay_preferences() { columns_->decay_preferences(); }

std::vector<std::vector<float>> TwinStore::all_feature_windows(
    util::SimTime now, double window_s, std::size_t timesteps,
    const FeatureScaling& scaling) const {
  // Deprecated copying bridge: extract on the columnar path (a private
  // arena, full extraction) and fan the flat matrix out into the legacy
  // one-vector-per-user shape.
  FeatureArena arena;
  const WindowBatch batch = columns_->feature_windows(
      {now, window_s, timesteps, scaling}, arena, /*force_full=*/true);
  std::vector<std::vector<float>> out;
  out.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto row = batch.row(i);
    out.emplace_back(row.begin(), row.end());
  }
  return out;
}

std::vector<std::vector<double>> TwinStore::all_summary_features(
    util::SimTime now, double window_s, const FeatureScaling& scaling) const {
  FeatureArena arena;
  const SummaryBatch batch = columns_->summary_features({now, window_s, scaling},
                                                        arena, /*force_full=*/true);
  std::vector<std::vector<double>> out;
  out.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto row = batch.row(i);
    out.emplace_back(row.begin(), row.end());
  }
  return out;
}

}  // namespace dtmsv::twin
