#include "twin/store.hpp"

#include "util/error.hpp"

namespace dtmsv::twin {

TwinStore::TwinStore(std::size_t user_count, std::size_t history_capacity)
    : columns_(std::make_unique<TwinColumnStore>(user_count, history_capacity)) {
  DTMSV_EXPECTS(user_count > 0);
  twins_.reserve(user_count);
  for (std::size_t u = 0; u < user_count; ++u) {
    twins_.emplace_back(UserDigitalTwin(columns_.get(), u, u));
  }
}

void TwinStore::reset_user(std::uint64_t user_id) {
  DTMSV_EXPECTS(user_id < twins_.size());
  columns_->reset_user(static_cast<std::size_t>(user_id));
}

UserDigitalTwin& TwinStore::twin(std::uint64_t user_id) {
  DTMSV_EXPECTS(user_id < twins_.size());
  return twins_[static_cast<std::size_t>(user_id)];
}

const UserDigitalTwin& TwinStore::twin(std::uint64_t user_id) const {
  DTMSV_EXPECTS(user_id < twins_.size());
  return twins_[static_cast<std::size_t>(user_id)];
}

void TwinStore::decay_preferences() { columns_->decay_preferences(); }

}  // namespace dtmsv::twin
