// Observation records stored in a user digital twin, shared between the
// per-user AttributeSeries (standalone twins) and the columnar
// TwinColumnStore (the fleet data plane): channel condition, finished
// views, and the normalisation constants feature extraction applies.
#pragma once

#include <cstddef>
#include <cstdint>

#include "video/catalog.hpp"

namespace dtmsv::twin {

/// Channel observation stored in the twin.
struct ChannelObservation {
  double snr_db = 0.0;
  double efficiency_bps_hz = 0.0;
  std::size_t serving_bs = 0;
};

/// Watch observation: one finished view.
struct WatchObservation {
  std::uint64_t video_id = 0;
  video::Category category = video::Category::kNews;
  double duration_s = 0.0;
  double watch_seconds = 0.0;
  double watch_fraction = 0.0;
  bool completed = false;
};

/// Normalisation constants for feature extraction (so embeddings are
/// scale-free regardless of campus size or SNR range).
struct FeatureScaling {
  double pos_x_scale = 1200.0;  // campus width in metres
  double pos_y_scale = 1000.0;  // campus height
  double snr_offset_db = 10.0;  // maps snr -10 dB -> 0
  double snr_scale_db = 40.0;   // maps snr  30 dB -> 1

  friend bool operator==(const FeatureScaling&, const FeatureScaling&) = default;
};

}  // namespace dtmsv::twin
