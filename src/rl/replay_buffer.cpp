#include "rl/replay_buffer.hpp"

#include "util/error.hpp"

namespace dtmsv::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : storage_(capacity) {
  DTMSV_EXPECTS(capacity > 0);
}

void ReplayBuffer::push(Transition t) {
  storage_[head_] = std::move(t);
  head_ = (head_ + 1) % storage_.size();
  if (size_ < storage_.size()) {
    ++size_;
  }
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t batch,
                                                    util::Rng& rng) const {
  DTMSV_EXPECTS_MSG(size_ > 0, "ReplayBuffer::sample on empty buffer");
  std::vector<const Transition*> out;
  out.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(size_) - 1));
    out.push_back(&at(idx));
  }
  return out;
}

const Transition& ReplayBuffer::at(std::size_t i) const {
  DTMSV_EXPECTS(i < size_);
  // Oldest element sits at head_ when full, else at 0.
  const std::size_t base = (size_ == storage_.size()) ? head_ : 0;
  return storage_[(base + i) % storage_.size()];
}

void ReplayBuffer::clear() {
  head_ = 0;
  size_ = 0;
}

}  // namespace dtmsv::rl
