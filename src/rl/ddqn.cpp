#include "rl/ddqn.hpp"

#include <algorithm>
#include <optional>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "util/error.hpp"

namespace dtmsv::rl {

EpsilonSchedule::EpsilonSchedule(double start, double end, std::size_t decay_steps)
    : start_(start), end_(end), decay_steps_(decay_steps) {
  DTMSV_EXPECTS(start >= 0.0 && start <= 1.0);
  DTMSV_EXPECTS(end >= 0.0 && end <= 1.0);
  DTMSV_EXPECTS(end <= start);
  DTMSV_EXPECTS(decay_steps > 0);
}

double EpsilonSchedule::value(std::size_t step) const {
  if (step >= decay_steps_) {
    return end_;
  }
  const double frac = static_cast<double>(step) / static_cast<double>(decay_steps_);
  return start_ + (end_ - start_) * frac;
}

namespace {

std::unique_ptr<nn::Sequential> build_mlp(const DdqnConfig& config, util::Rng& rng) {
  auto net = std::make_unique<nn::Sequential>();
  std::size_t in = config.state_dim;
  for (const std::size_t h : config.hidden) {
    net->emplace<nn::Linear>(in, h, rng);
    net->emplace<nn::ReLU>();
    in = h;
  }
  net->emplace<nn::Linear>(in, config.action_count, rng);
  return net;
}

}  // namespace

DdqnAgent::DdqnAgent(const DdqnConfig& config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      replay_(config.replay_capacity),
      epsilon_(config.epsilon_start, config.epsilon_end, config.epsilon_decay_steps) {
  DTMSV_EXPECTS_MSG(config.state_dim > 0, "DdqnConfig.state_dim must be set");
  DTMSV_EXPECTS_MSG(config.action_count > 0, "DdqnConfig.action_count must be set");
  DTMSV_EXPECTS(config.gamma >= 0.0 && config.gamma < 1.0);
  DTMSV_EXPECTS(config.batch_size > 0);
  DTMSV_EXPECTS(!config.hidden.empty());

  online_ = build_mlp(config_, rng_);
  target_ = build_mlp(config_, rng_);
  nn::copy_parameters(*online_, *target_);
  optimizer_ = std::make_unique<nn::Adam>(online_->parameters(), config_.learning_rate);
  single_state_ = nn::Tensor({1, config_.state_dim});
}

double DdqnAgent::current_epsilon() const { return epsilon_.value(action_steps_); }

std::vector<float> DdqnAgent::q_values(std::span<const float> state) {
  DTMSV_EXPECTS(state.size() == config_.state_dim);
  std::copy(state.begin(), state.end(), single_state_.data().begin());
  const nn::Tensor out = online_->forward(single_state_);
  return {out.data().begin(), out.data().end()};
}

std::size_t DdqnAgent::greedy_action(std::span<const float> state) {
  DTMSV_EXPECTS(state.size() == config_.state_dim);
  // Scans the forward output in place (no q-vector materialised); first
  // maximum wins, like std::max_element over q_values would.
  std::copy(state.begin(), state.end(), single_state_.data().begin());
  const nn::Tensor out = online_->forward(single_state_);
  const std::span<const float> q = out.data();
  std::size_t best = 0;
  for (std::size_t a = 1; a < config_.action_count; ++a) {
    if (q[a] > q[best]) {
      best = a;
    }
  }
  return best;
}

nn::Tensor DdqnAgent::q_values_batch(std::span<const float> states, std::size_t n) {
  DTMSV_EXPECTS(n > 0);
  DTMSV_EXPECTS(states.size() == n * config_.state_dim);
  if (batch_state_.rank() != 2 || batch_state_.dim(0) != n) {
    batch_state_ = nn::Tensor({n, config_.state_dim});
  }
  std::copy(states.begin(), states.end(), batch_state_.data().begin());
  return online_->forward(batch_state_);
}

std::vector<std::size_t> DdqnAgent::greedy_actions(std::span<const float> states,
                                                   std::size_t n) {
  const nn::Tensor q = q_values_batch(states, n);
  const float* rows = q.data().data();
  std::vector<std::size_t> actions(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = rows + i * config_.action_count;
    std::size_t best = 0;
    for (std::size_t a = 1; a < config_.action_count; ++a) {
      if (row[a] > row[best]) {
        best = a;
      }
    }
    actions[i] = best;
  }
  return actions;
}

std::size_t DdqnAgent::act(std::span<const float> state, bool explore) {
  // Only exploring calls consume the exploration budget: evaluation
  // rollouts (explore=false) must not decay the epsilon schedule.
  if (explore) {
    const double eps = epsilon_.value(action_steps_);
    ++action_steps_;
    if (rng_.bernoulli(eps)) {
      return static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(config_.action_count) - 1));
    }
  }
  return greedy_action(state);
}

void DdqnAgent::observe(Transition t) {
  DTMSV_EXPECTS(t.state.size() == config_.state_dim);
  DTMSV_EXPECTS(t.next_state.size() == config_.state_dim);
  DTMSV_EXPECTS(t.action < config_.action_count);
  replay_.push(std::move(t));
}

nn::Tensor DdqnAgent::batch_states(const std::vector<const Transition*>& batch,
                                   bool next) const {
  nn::Tensor out({batch.size(), config_.state_dim});
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& src = next ? batch[i]->next_state : batch[i]->state;
    for (std::size_t j = 0; j < config_.state_dim; ++j) {
      out.at2(i, j) = src[j];
    }
  }
  return out;
}

std::optional<float> DdqnAgent::train_step() {
  if (replay_.size() < std::max(config_.min_replay_before_train, config_.batch_size)) {
    return std::nullopt;
  }
  const auto batch = replay_.sample(config_.batch_size, rng_);
  const std::size_t n = batch.size();

  // Double-Q target: a* from the online net, value from the target net.
  const nn::Tensor next_states = batch_states(batch, /*next=*/true);
  const nn::Tensor q_next_online = online_->forward(next_states);
  const nn::Tensor q_next_target = target_->forward(next_states);

  std::vector<float> targets(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = 0;
    float best_q = q_next_online.at2(i, 0);
    for (std::size_t a = 1; a < config_.action_count; ++a) {
      if (q_next_online.at2(i, a) > best_q) {
        best_q = q_next_online.at2(i, a);
        best = a;
      }
    }
    float y = batch[i]->reward;
    if (!batch[i]->done) {
      y += static_cast<float>(config_.gamma) * q_next_target.at2(i, best);
    }
    targets[i] = y;
  }

  // Current Q-values; train only the taken action via masking.
  const nn::Tensor states = batch_states(batch, /*next=*/false);
  const nn::Tensor q = online_->forward(states);

  nn::Tensor target_tensor = q;
  nn::Tensor mask({n, config_.action_count});
  for (std::size_t i = 0; i < n; ++i) {
    target_tensor.at2(i, batch[i]->action) = targets[i];
    mask.at2(i, batch[i]->action) = 1.0f;
  }

  const auto loss = nn::masked_huber_loss(q, target_tensor, mask);
  online_->zero_grad();
  online_->backward(loss.grad);
  optimizer_->clip_grad_norm(config_.grad_clip_norm);
  optimizer_->step();

  ++train_steps_;
  if (train_steps_ % config_.target_sync_every == 0) {
    nn::copy_parameters(*online_, *target_);
  }
  return loss.value;
}

}  // namespace dtmsv::rl
