// Uniform experience replay for the DDQN grouping-number policy.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace dtmsv::rl {

/// One (s, a, r, s', done) experience.
struct Transition {
  std::vector<float> state;
  std::size_t action = 0;
  float reward = 0.0f;
  std::vector<float> next_state;
  bool done = false;
};

/// Fixed-capacity ring buffer with uniform sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  /// Inserts a transition, evicting the oldest when full.
  void push(Transition t);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return storage_.size(); }
  bool empty() const { return size_ == 0; }

  /// Uniform sample with replacement of `batch` transitions.
  /// Requires non-empty buffer.
  std::vector<const Transition*> sample(std::size_t batch, util::Rng& rng) const;

  /// Access by age: 0 = oldest retained transition.
  const Transition& at(std::size_t i) const;

  void clear();

 private:
  std::vector<Transition> storage_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;
};

}  // namespace dtmsv::rl
