// Double deep Q-network (van Hasselt et al.) — the learning component the
// paper uses to "determine the grouping number by mining users' similarities".
//
// The agent is domain-agnostic: states are float vectors, actions are a
// discrete range. The grouping-specific state/action/reward encoding lives
// in core/group_constructor.*.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "rl/replay_buffer.hpp"
#include "util/rng.hpp"

namespace dtmsv::rl {

/// Linear epsilon decay schedule for epsilon-greedy exploration.
class EpsilonSchedule {
 public:
  /// Decays from `start` to `end` over `decay_steps` calls to value().
  EpsilonSchedule(double start, double end, std::size_t decay_steps);

  /// Epsilon at `step`.
  double value(std::size_t step) const;

 private:
  double start_;
  double end_;
  std::size_t decay_steps_;
};

/// DDQN hyperparameters.
struct DdqnConfig {
  std::size_t state_dim = 0;
  std::size_t action_count = 0;
  std::vector<std::size_t> hidden = {64, 64};
  double gamma = 0.9;                  // discount
  double learning_rate = 1e-3;
  std::size_t batch_size = 32;
  std::size_t replay_capacity = 4096;
  std::size_t min_replay_before_train = 64;
  std::size_t target_sync_every = 100;  // hard sync period (train steps)
  double grad_clip_norm = 10.0;
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  std::size_t epsilon_decay_steps = 2000;
};

/// Double DQN agent with uniform replay and a hard-synced target network.
class DdqnAgent {
 public:
  /// Builds online and target MLPs (ReLU hidden layers) from `seed`.
  DdqnAgent(const DdqnConfig& config, std::uint64_t seed);

  /// Epsilon-greedy action selection; `explore=false` gives the greedy arm
  /// and leaves the epsilon schedule untouched (evaluation rollouts do not
  /// consume the exploration budget).
  std::size_t act(std::span<const float> state, bool explore = true);

  /// Greedy action without advancing the exploration step counter.
  std::size_t greedy_action(std::span<const float> state);

  /// Q-values for a single state.
  std::vector<float> q_values(std::span<const float> state);

  /// Q-values for `n` states packed row-major (n × state_dim floats) —
  /// one forward pass for the whole fleet batch instead of n single-row
  /// forwards, rows staged into a reused scratch tensor. Row i of the
  /// returned [n, action_count] tensor is bit-identical to
  /// q_values(states[i]) (the batch and single-row matmul paths share the
  /// same per-element accumulation chain).
  nn::Tensor q_values_batch(std::span<const float> states, std::size_t n);

  /// Greedy actions for a packed batch via one forward; ties resolve to
  /// the lowest action index, matching greedy_action. Does not touch the
  /// epsilon schedule.
  std::vector<std::size_t> greedy_actions(std::span<const float> states,
                                          std::size_t n);

  /// Stores a transition in the replay buffer.
  void observe(Transition t);

  /// One gradient step on a replay minibatch. Returns the loss, or nullopt
  /// when the buffer has not reached min_replay_before_train yet.
  std::optional<float> train_step();

  const DdqnConfig& config() const { return config_; }
  std::size_t action_steps() const { return action_steps_; }
  std::size_t train_steps() const { return train_steps_; }
  double current_epsilon() const;
  std::size_t replay_size() const { return replay_.size(); }

  /// Access to the online network (serialisation, tests).
  nn::Sequential& online_network() { return *online_; }
  nn::Sequential& target_network() { return *target_; }

 private:
  nn::Tensor batch_states(const std::vector<const Transition*>& batch, bool next) const;

  DdqnConfig config_;
  util::Rng rng_;
  std::unique_ptr<nn::Sequential> online_;
  std::unique_ptr<nn::Sequential> target_;
  std::unique_ptr<nn::Adam> optimizer_;
  ReplayBuffer replay_;
  EpsilonSchedule epsilon_;
  std::size_t action_steps_ = 0;
  std::size_t train_steps_ = 0;
  nn::Tensor single_state_;  // reused [1, state_dim] staging for act/q_values
  nn::Tensor batch_state_;   // reused [n, state_dim] staging for batch calls
};

}  // namespace dtmsv::rl
