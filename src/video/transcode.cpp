#include "video/transcode.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dtmsv::video {

double TranscodeModel::transcode_cycles(const Video& video, std::size_t rung,
                                        double watched_seconds) const {
  DTMSV_EXPECTS(rung < video.ladder.rung_count());
  DTMSV_EXPECTS(watched_seconds >= 0.0);
  DTMSV_EXPECTS(cycles_per_bit > 0.0);
  if (rung + 1 == video.ladder.rung_count()) {
    return 0.0;  // cached top representation needs no transcode
  }
  const double seconds = std::min(watched_seconds, video.duration_s);
  const double output_bits = video.ladder.kbps(rung) * 1e3 * seconds;
  return cycles_per_bit * output_bits;
}

double TranscodeModel::utilisation(double cycles, double window_s) const {
  DTMSV_EXPECTS(cycles >= 0.0);
  DTMSV_EXPECTS(window_s > 0.0);
  DTMSV_EXPECTS(capacity_cycles_per_s > 0.0);
  return cycles / (capacity_cycles_per_s * window_s);
}

}  // namespace dtmsv::video
