#include "video/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace dtmsv::video {

double sample_watch_fraction(double affinity, const DatasetConfig& config,
                             util::Rng& rng) {
  DTMSV_EXPECTS(affinity >= 0.0 && affinity <= 1.0);
  // Instant-swipe spike.
  if (rng.bernoulli(config.instant_swipe_prob)) {
    return rng.uniform(0.0, 0.08);
  }
  // Beta-distributed engagement whose mean tracks affinity. Concentration
  // grows slightly with affinity: fans are more consistent than skimmers.
  const double mean = std::clamp(
      config.engagement_base + config.engagement_gain * affinity, 0.02, 0.98);
  const double concentration = 1.5 + 2.0 * affinity;
  const double a = mean * concentration;
  const double b = (1.0 - mean) * concentration;
  const double frac = rng.beta(a, b);
  // Viewers very close to the end almost always finish.
  return frac > 0.93 ? 1.0 : frac;
}

Dataset Dataset::generate(const DatasetConfig& config, util::Rng& rng) {
  DTMSV_EXPECTS(config.user_count > 0);
  DTMSV_EXPECTS(config.sessions_per_user > 0);
  DTMSV_EXPECTS(config.affinity_concentration > 0.0);
  DTMSV_EXPECTS(config.instant_swipe_prob >= 0.0 && config.instant_swipe_prob <= 1.0);

  Dataset ds;
  ds.user_count_ = config.user_count;
  ds.catalog_ = Catalog::generate(config.catalog, rng);

  // Per-user category affinity (ground truth of user taste).
  const std::vector<double> alpha(kCategoryCount, config.affinity_concentration);
  ds.affinities_.reserve(config.user_count);
  for (std::size_t u = 0; u < config.user_count; ++u) {
    const auto sample = rng.dirichlet(alpha);
    std::array<double, kCategoryCount> aff{};
    std::copy(sample.begin(), sample.end(), aff.begin());
    ds.affinities_.push_back(aff);
  }

  ds.records_.reserve(config.user_count * config.sessions_per_user);
  for (std::size_t u = 0; u < config.user_count; ++u) {
    const auto& aff = ds.affinities_[u];
    for (std::size_t s = 0; s < config.sessions_per_user; ++s) {
      // The feed mixes recommendation (affinity-weighted) with exploration.
      std::size_t cat_idx = 0;
      if (rng.bernoulli(0.8)) {
        cat_idx = rng.categorical(std::span<const double>(aff.data(), aff.size()));
      } else {
        cat_idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(kCategoryCount) - 1));
      }
      const Category cat = all_categories()[cat_idx];
      const Video& v = ds.catalog_.sample_from_category(cat, rng);

      SwipeRecord rec;
      rec.user_id = u;
      rec.video_id = v.id;
      rec.category = cat;
      rec.duration_s = v.duration_s;
      rec.watch_fraction = sample_watch_fraction(aff[cat_idx], config, rng);
      rec.watch_seconds = rec.watch_fraction * v.duration_s;
      ds.records_.push_back(rec);
    }
  }
  return ds;
}

std::array<double, kCategoryCount> Dataset::mean_watch_fraction_by_category() const {
  std::array<double, kCategoryCount> sum{};
  std::array<std::size_t, kCategoryCount> count{};
  for (const auto& rec : records_) {
    const auto c = static_cast<std::size_t>(rec.category);
    sum[c] += rec.watch_fraction;
    ++count[c];
  }
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    if (count[c] > 0) {
      sum[c] /= static_cast<double>(count[c]);
    }
  }
  return sum;
}

std::vector<const SwipeRecord*> Dataset::records_of(std::uint64_t user_id) const {
  std::vector<const SwipeRecord*> out;
  for (const auto& rec : records_) {
    if (rec.user_id == user_id) {
      out.push_back(&rec);
    }
  }
  return out;
}

std::string Dataset::trace_to_csv() const {
  util::CsvWriter writer;
  writer.set_header({"user_id", "video_id", "category", "duration_s",
                     "watch_fraction", "watch_seconds"});
  for (const auto& rec : records_) {
    writer.add_row({std::to_string(rec.user_id), std::to_string(rec.video_id),
                    to_string(rec.category), util::format_double(rec.duration_s),
                    util::format_double(rec.watch_fraction),
                    util::format_double(rec.watch_seconds)});
  }
  return writer.to_string();
}

std::vector<SwipeRecord> Dataset::trace_from_csv(const std::string& csv_text) {
  const auto reader = util::CsvReader::parse(csv_text);
  const std::size_t user_col = reader.column("user_id");
  const std::size_t video_col = reader.column("video_id");
  const std::size_t cat_col = reader.column("category");
  const std::size_t dur_col = reader.column("duration_s");
  const std::size_t frac_col = reader.column("watch_fraction");

  std::vector<SwipeRecord> records;
  records.reserve(reader.row_count());
  for (std::size_t i = 0; i < reader.row_count(); ++i) {
    SwipeRecord rec;
    rec.user_id = static_cast<std::uint64_t>(reader.cell_double(i, user_col));
    rec.video_id = static_cast<std::uint64_t>(reader.cell_double(i, video_col));
    const std::string& cat_name = reader.cell(i, cat_col);
    bool found = false;
    for (const Category c : all_categories()) {
      if (to_string(c) == cat_name) {
        rec.category = c;
        found = true;
        break;
      }
    }
    if (!found) {
      throw util::RuntimeError("dataset CSV: unknown category '" + cat_name + "'");
    }
    rec.duration_s = reader.cell_double(i, dur_col);
    rec.watch_fraction = reader.cell_double(i, frac_col);
    rec.watch_seconds = rec.watch_fraction * rec.duration_s;
    records.push_back(rec);
  }
  return records;
}

}  // namespace dtmsv::video
