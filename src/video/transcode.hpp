// Transcoding cost model. The ES "stores popular short videos with the
// highest representation" and transcodes downward on demand; computing
// resource demand is the CPU-cycle cost of those transcodes.
#pragma once

#include <cstddef>

#include "video/catalog.hpp"

namespace dtmsv::video {

/// Cycle-cost model: cycles = cycles_per_bit × output_bits, the standard
/// mobile-edge-computing transcode model (cost scales with the bits
/// produced; decode overhead folded into the coefficient).
struct TranscodeModel {
  /// CPU cycles needed per output bit produced by the transcoder.
  double cycles_per_bit = 50.0;
  /// ES capacity in cycles per second (e.g. 8 cores × 2.4 GHz).
  double capacity_cycles_per_s = 8 * 2.4e9;

  /// Cycles to transcode `video` from its top representation down to `rung`
  /// for `watched_seconds` of content. Zero when rung is the top rung
  /// (served straight from cache).
  double transcode_cycles(const Video& video, std::size_t rung,
                          double watched_seconds) const;

  /// Fraction of ES capacity consumed by `cycles` spread over `window_s`.
  double utilisation(double cycles, double window_s) const;
};

}  // namespace dtmsv::video
