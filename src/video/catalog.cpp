#include "video/catalog.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dtmsv::video {

const std::array<Category, kCategoryCount>& all_categories() {
  static const std::array<Category, kCategoryCount> cats = {
      Category::kNews,  Category::kSports, Category::kGame,
      Category::kMusic, Category::kComedy, Category::kEducation,
  };
  return cats;
}

std::string to_string(Category c) {
  switch (c) {
    case Category::kNews:
      return "News";
    case Category::kSports:
      return "Sports";
    case Category::kGame:
      return "Game";
    case Category::kMusic:
      return "Music";
    case Category::kComedy:
      return "Comedy";
    case Category::kEducation:
      return "Education";
  }
  return "Unknown";
}

BitrateLadder::BitrateLadder(std::vector<double> kbps) : kbps_(std::move(kbps)) {
  DTMSV_EXPECTS_MSG(!kbps_.empty(), "ladder: at least one rung required");
  for (std::size_t i = 0; i < kbps_.size(); ++i) {
    DTMSV_EXPECTS_MSG(kbps_[i] > 0.0, "ladder: rungs must be positive");
    if (i > 0) {
      DTMSV_EXPECTS_MSG(kbps_[i] > kbps_[i - 1], "ladder: rungs must ascend");
    }
  }
}

BitrateLadder BitrateLadder::standard() {
  // The 5-level ladder published with the short-video streaming grand
  // challenge dataset (approximately 240p..1080p).
  return BitrateLadder({750.0, 1200.0, 1850.0, 2850.0, 4300.0});
}

double BitrateLadder::kbps(std::size_t rung) const {
  DTMSV_EXPECTS(rung < kbps_.size());
  return kbps_[rung];
}

std::size_t BitrateLadder::best_rung_within(double budget_kbps) const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < kbps_.size(); ++i) {
    if (kbps_[i] <= budget_kbps) {
      best = i;
    }
  }
  return best;
}

Catalog Catalog::generate(const CatalogConfig& config, util::Rng& rng) {
  DTMSV_EXPECTS(config.videos_per_category > 0);
  DTMSV_EXPECTS(config.min_duration_s > 0.0);
  DTMSV_EXPECTS(config.max_duration_s >= config.min_duration_s);
  DTMSV_EXPECTS(config.popularity_zipf >= 0.0);
  DTMSV_EXPECTS(config.ladder_jitter_sigma >= 0.0);

  Catalog catalog;
  catalog.zipf_exponent_ = config.popularity_zipf;
  const BitrateLadder standard = BitrateLadder::standard();

  std::uint64_t next_id = 0;
  for (const Category c : all_categories()) {
    for (std::size_t i = 0; i < config.videos_per_category; ++i) {
      Video v;
      v.id = next_id++;
      v.category = c;
      // Durations skew short: log-uniform between min and max.
      const double log_lo = std::log(config.min_duration_s);
      const double log_hi = std::log(config.max_duration_s);
      v.duration_s = std::exp(rng.uniform(log_lo, log_hi));
      // Jitter the ladder per upload, preserving monotonicity by scaling all
      // rungs with one factor.
      const double scale =
          config.ladder_jitter_sigma > 0.0
              ? rng.lognormal(0.0, config.ladder_jitter_sigma)
              : 1.0;
      std::vector<double> rungs = standard.rungs();
      for (double& r : rungs) {
        r *= scale;
      }
      v.ladder = BitrateLadder(std::move(rungs));
      catalog.by_category_[static_cast<std::size_t>(c)].push_back(v.id);
      catalog.videos_.push_back(std::move(v));
    }
  }

  // Within-category popularity rank: the generation order is already a
  // uniform random permutation per category, so rank = position.
  catalog.rank_.resize(catalog.videos_.size());
  for (const Category c : all_categories()) {
    const auto& ids = catalog.by_category_[static_cast<std::size_t>(c)];
    for (std::size_t r = 0; r < ids.size(); ++r) {
      catalog.rank_[ids[r]] = r;
    }
  }
  return catalog;
}

const Video& Catalog::video(std::uint64_t id) const {
  DTMSV_EXPECTS(id < videos_.size());
  return videos_[static_cast<std::size_t>(id)];
}

const std::vector<std::uint64_t>& Catalog::category_videos(Category c) const {
  return by_category_[static_cast<std::size_t>(c)];
}

const Video& Catalog::sample_from_category(Category c, util::Rng& rng) const {
  const auto& ids = category_videos(c);
  DTMSV_EXPECTS_MSG(!ids.empty(), "catalog: empty category");
  const std::size_t rank = rng.zipf(ids.size(), zipf_exponent_);
  return video(ids[rank]);
}

std::size_t Catalog::popularity_rank(std::uint64_t id) const {
  DTMSV_EXPECTS(id < rank_.size());
  return rank_[static_cast<std::size_t>(id)];
}

double Catalog::popularity_probability(std::uint64_t id) const {
  DTMSV_EXPECTS(id < videos_.size());
  const auto& ids = category_videos(videos_[static_cast<std::size_t>(id)].category);
  const std::size_t rank = popularity_rank(id);
  double total = 0.0;
  for (std::size_t k = 0; k < ids.size(); ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), zipf_exponent_);
  }
  return (1.0 / std::pow(static_cast<double>(rank + 1), zipf_exponent_)) / total;
}

}  // namespace dtmsv::video
