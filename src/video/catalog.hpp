// Short-video content model: categories, bitrate ladders, and a popularity-
// weighted catalog. Mirrors the structure of the public short-video-
// streaming-challenge dataset (5-rung ladders, 5–60 s clips) that the paper
// evaluates on; see DESIGN.md §2 for the substitution rationale.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dtmsv::video {

/// Content categories used throughout the pipeline. Fig. 3(a) of the paper
/// plots News / Sports / Game / Music / Comedy-style categories.
enum class Category : std::uint8_t {
  kNews = 0,
  kSports,
  kGame,
  kMusic,
  kComedy,
  kEducation,
};

inline constexpr std::size_t kCategoryCount = 6;

/// All categories, in enum order.
const std::array<Category, kCategoryCount>& all_categories();

/// Human-readable category name.
std::string to_string(Category c);

/// Bitrate ladder: ascending representation bitrates in kbps.
class BitrateLadder {
 public:
  /// Requires at least one strictly ascending positive rung.
  explicit BitrateLadder(std::vector<double> kbps);

  /// The default ladder of the short-video-streaming-challenge dataset.
  static BitrateLadder standard();

  std::size_t rung_count() const { return kbps_.size(); }
  double kbps(std::size_t rung) const;
  double top_kbps() const { return kbps_.back(); }
  double bottom_kbps() const { return kbps_.front(); }
  const std::vector<double>& rungs() const { return kbps_; }

  /// Highest rung whose bitrate fits within `budget_kbps`; rung 0 when even
  /// the lowest rung exceeds the budget (lowest representation is always
  /// deliverable per the multicast policy).
  std::size_t best_rung_within(double budget_kbps) const;

 private:
  std::vector<double> kbps_;
};

/// One short video.
struct Video {
  std::uint64_t id = 0;
  Category category = Category::kNews;
  double duration_s = 15.0;
  BitrateLadder ladder = BitrateLadder::standard();
};

/// Catalog generation parameters.
struct CatalogConfig {
  std::size_t videos_per_category = 200;
  double min_duration_s = 5.0;
  double max_duration_s = 60.0;
  /// Zipf exponent of within-category video popularity.
  double popularity_zipf = 0.9;
  /// Per-video multiplicative jitter applied to the standard ladder (sigma of
  /// log-normal), modelling encoder variability across uploads.
  double ladder_jitter_sigma = 0.08;
};

/// Immutable set of videos with Zipf popularity inside each category.
class Catalog {
 public:
  /// Empty catalog; fill via generate(). Kept public so aggregates holding a
  /// Catalog (e.g. Dataset) can default-construct before generation.
  Catalog() = default;

  static Catalog generate(const CatalogConfig& config, util::Rng& rng);

  std::size_t size() const { return videos_.size(); }
  const Video& video(std::uint64_t id) const;
  const std::vector<Video>& videos() const { return videos_; }

  /// Videos of one category, most popular first.
  const std::vector<std::uint64_t>& category_videos(Category c) const;

  /// Popularity-weighted (Zipf) sample from a category.
  const Video& sample_from_category(Category c, util::Rng& rng) const;

  /// Popularity rank of a video within its category (0 = most popular).
  std::size_t popularity_rank(std::uint64_t id) const;

  /// P(video | its category) under the Zipf popularity model.
  double popularity_probability(std::uint64_t id) const;

 private:
  std::vector<Video> videos_;
  std::array<std::vector<std::uint64_t>, kCategoryCount> by_category_;
  std::vector<std::size_t> rank_;  // by video id
  double zipf_exponent_ = 0.9;
};

}  // namespace dtmsv::video
