// Synthetic stand-in for the "public short-video-streaming-challenge
// dataset" the paper evaluates on (video bitrates + users' swiping
// behaviours). The real dataset is not redistributable in this offline
// environment; this generator reproduces its published statistical shape:
//   * 5-rung bitrate ladders around 750/1200/1850/2850/4300 kbps,
//   * clip durations 5–60 s (log-uniform, skewing short),
//   * heavy-tailed watch fractions whose mean rises with the viewer's
//     affinity for the clip's category (early-swipe spike + finishers).
// See DESIGN.md §2 for the substitution argument.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "video/catalog.hpp"

namespace dtmsv::video {

/// One viewing event: a user watched `watch_fraction` of a video before
/// swiping (or watched it to completion when watch_fraction == 1).
struct SwipeRecord {
  std::uint64_t user_id = 0;
  std::uint64_t video_id = 0;
  Category category = Category::kNews;
  double duration_s = 0.0;
  double watch_fraction = 0.0;  // in [0, 1]
  double watch_seconds = 0.0;   // watch_fraction * duration_s
};

/// Generator parameters.
struct DatasetConfig {
  CatalogConfig catalog;
  std::size_t user_count = 100;
  std::size_t sessions_per_user = 50;
  /// Dirichlet concentration for per-user category affinity; smaller values
  /// produce more polarised users (clearer multicast group structure).
  double affinity_concentration = 0.35;
  /// Probability a viewer abandons within the first 2 s regardless of
  /// affinity (the "instant swipe" spike every short-video platform shows).
  double instant_swipe_prob = 0.18;
  /// Affinity-to-engagement shape: mean watch fraction for affinity a is
  /// roughly base + gain * a (clamped to [0, 1]).
  double engagement_base = 0.25;
  double engagement_gain = 2.2;
};

/// A generated dataset: catalog + swipe trace.
class Dataset {
 public:
  static Dataset generate(const DatasetConfig& config, util::Rng& rng);

  const Catalog& catalog() const { return catalog_; }
  const std::vector<SwipeRecord>& records() const { return records_; }
  std::size_t user_count() const { return user_count_; }

  /// Per-user category affinity vectors used during generation (ground
  /// truth for clustering experiments).
  const std::vector<std::array<double, kCategoryCount>>& affinities() const {
    return affinities_;
  }

  /// Mean watch fraction per category across the whole trace.
  std::array<double, kCategoryCount> mean_watch_fraction_by_category() const;

  /// Records of a single user.
  std::vector<const SwipeRecord*> records_of(std::uint64_t user_id) const;

  /// CSV round-trip of the swipe trace (catalog is regenerated from config,
  /// so only behavioural rows are persisted).
  std::string trace_to_csv() const;
  static std::vector<SwipeRecord> trace_from_csv(const std::string& csv_text);

 private:
  Catalog catalog_;
  std::vector<SwipeRecord> records_;
  std::vector<std::array<double, kCategoryCount>> affinities_;
  std::size_t user_count_ = 0;
};

/// Samples a single watch fraction for a viewer with the given affinity for
/// the video's category, using the dataset's engagement model. Exposed so
/// the live behaviour simulator (behavior::WatchDurationModel) and the
/// offline dataset share one code path.
double sample_watch_fraction(double affinity, const DatasetConfig& config,
                             util::Rng& rng);

}  // namespace dtmsv::video
