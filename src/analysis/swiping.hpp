// Group-level swiping probability abstraction — the paper's key analysis
// step: "users' watching duration on each kind of video is utilized to
// update multicast groups' swiping probability distributions."
//
// For each (group, category) we maintain an empirical distribution of watch
// fractions with exponential forgetting. Its CDF evaluated at fraction t is
// the probability a member swipes away by normalized position t — the curve
// Fig. 3(a) of the paper plots cumulatively per category.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "twin/udt.hpp"
#include "video/catalog.hpp"

namespace dtmsv::analysis {

/// Empirical watch-fraction distribution over a fixed fraction grid.
class SwipingDistribution {
 public:
  /// `bins`: resolution of the fraction grid on [0, 1];
  /// `forgetting`: multiplier applied to accumulated mass per decay() call.
  explicit SwipingDistribution(std::size_t bins = 20, double forgetting = 0.7);

  /// Accumulates one observed watch fraction for `category`.
  void observe(video::Category category, double watch_fraction);

  /// Applies exponential forgetting (call once per reservation interval).
  void decay();

  /// P(swipe by fraction <= t) for the category; linear interpolation on the
  /// grid. Falls back to the all-category distribution when the category has
  /// no mass, and to t (uniform) when nothing has been observed at all.
  double cumulative_swipe_probability(video::Category category, double t) const;

  /// Expected watch fraction E[X] for the category (same fallbacks).
  double expected_watch_fraction(video::Category category) const;

  /// Expected maximum watch fraction among `k` independent viewers,
  /// E[max(X1..Xk)] — the multicast stream must stay up until the last
  /// group member swipes. Computed as sum over the grid of (1 - F(t)^k)·dt.
  double expected_max_watch_fraction(video::Category category, std::size_t k) const;

  /// Total observation mass currently retained for a category.
  double mass(video::Category category) const;

  std::size_t bin_count() const { return bins_; }

 private:
  const std::vector<double>& weights_for(video::Category category) const;
  double cumulative_from(const std::vector<double>& weights, double t) const;

  std::size_t bins_;
  double forgetting_;
  std::array<std::vector<double>, video::kCategoryCount> per_category_;
  std::vector<double> all_;
};

/// Builds a group's swiping distribution from its members' UDT watch
/// histories over [now - window_s, now).
SwipingDistribution build_group_swiping(
    const std::vector<const twin::UserDigitalTwin*>& members, util::SimTime now,
    double window_s, std::size_t bins = 20, double forgetting = 0.7);

}  // namespace dtmsv::analysis
