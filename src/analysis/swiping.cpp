#include "analysis/swiping.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dtmsv::analysis {

SwipingDistribution::SwipingDistribution(std::size_t bins, double forgetting)
    : bins_(bins), forgetting_(forgetting), all_(bins, 0.0) {
  DTMSV_EXPECTS(bins >= 2);
  DTMSV_EXPECTS(forgetting > 0.0 && forgetting <= 1.0);
  for (auto& w : per_category_) {
    w.assign(bins, 0.0);
  }
}

void SwipingDistribution::observe(video::Category category, double watch_fraction) {
  DTMSV_EXPECTS(watch_fraction >= 0.0 && watch_fraction <= 1.0 + 1e-9);
  const double f = std::clamp(watch_fraction, 0.0, 1.0);
  auto bin = static_cast<std::size_t>(f * static_cast<double>(bins_));
  bin = std::min(bin, bins_ - 1);
  per_category_[static_cast<std::size_t>(category)][bin] += 1.0;
  all_[bin] += 1.0;
}

void SwipingDistribution::decay() {
  for (auto& weights : per_category_) {
    for (double& w : weights) {
      w *= forgetting_;
    }
  }
  for (double& w : all_) {
    w *= forgetting_;
  }
}

double SwipingDistribution::mass(video::Category category) const {
  const auto& w = per_category_[static_cast<std::size_t>(category)];
  double total = 0.0;
  for (const double x : w) {
    total += x;
  }
  return total;
}

const std::vector<double>& SwipingDistribution::weights_for(
    video::Category category) const {
  const auto& w = per_category_[static_cast<std::size_t>(category)];
  double total = 0.0;
  for (const double x : w) {
    total += x;
  }
  if (total > 0.0) {
    return w;
  }
  return all_;
}

double SwipingDistribution::cumulative_from(const std::vector<double>& weights,
                                            double t) const {
  const double tc = std::clamp(t, 0.0, 1.0);
  double total = 0.0;
  for (const double x : weights) {
    total += x;
  }
  if (total <= 0.0) {
    return tc;  // uninformed prior: uniform swiping
  }
  // Piecewise-linear CDF: mass of bin b spreads uniformly over its span.
  const double pos = tc * static_cast<double>(bins_);
  const auto full_bins = static_cast<std::size_t>(pos);
  double acc = 0.0;
  for (std::size_t b = 0; b < full_bins && b < bins_; ++b) {
    acc += weights[b];
  }
  if (full_bins < bins_) {
    acc += weights[full_bins] * (pos - static_cast<double>(full_bins));
  }
  return acc / total;
}

double SwipingDistribution::cumulative_swipe_probability(video::Category category,
                                                         double t) const {
  return cumulative_from(weights_for(category), t);
}

double SwipingDistribution::expected_watch_fraction(video::Category category) const {
  const auto& weights = weights_for(category);
  double total = 0.0;
  double acc = 0.0;
  for (std::size_t b = 0; b < bins_; ++b) {
    const double mid = (static_cast<double>(b) + 0.5) / static_cast<double>(bins_);
    acc += weights[b] * mid;
    total += weights[b];
  }
  if (total <= 0.0) {
    return 0.5;  // uniform prior
  }
  return acc / total;
}

double SwipingDistribution::expected_max_watch_fraction(video::Category category,
                                                        std::size_t k) const {
  DTMSV_EXPECTS(k >= 1);
  const auto& weights = weights_for(category);
  // E[max] = ∫ (1 - F(t)^k) dt over [0,1], midpoint rule on the grid.
  const double dt = 1.0 / static_cast<double>(bins_);
  double acc = 0.0;
  for (std::size_t b = 0; b < bins_; ++b) {
    const double mid = (static_cast<double>(b) + 0.5) * dt;
    const double cdf = cumulative_from(weights, mid);
    acc += (1.0 - std::pow(cdf, static_cast<double>(k))) * dt;
  }
  return std::min(acc, 1.0);
}

SwipingDistribution build_group_swiping(
    const std::vector<const twin::UserDigitalTwin*>& members, util::SimTime now,
    double window_s, std::size_t bins, double forgetting) {
  DTMSV_EXPECTS(window_s > 0.0);
  SwipingDistribution dist(bins, forgetting);
  for (const auto* member : members) {
    DTMSV_EXPECTS(member != nullptr);
    for (const auto& s : member->watch().window(now - window_s, now)) {
      dist.observe(s.value.category, s.value.watch_fraction);
    }
  }
  return dist;
}

}  // namespace dtmsv::analysis
