// Group recommendation: combines edge-wide video popularity with the
// group's aggregated preference to produce the videos the group's multicast
// stream will carry next interval.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/popularity.hpp"
#include "behavior/preference.hpp"
#include "twin/udt.hpp"
#include "video/catalog.hpp"

namespace dtmsv::analysis {

/// A recommended playlist for one multicast group.
struct Recommendation {
  /// Ordered video ids (category-interleaved by preference weight).
  std::vector<std::uint64_t> playlist;
  /// Group preference used to build it.
  behavior::PreferenceVector group_preference{};
  /// Videos drawn per category.
  std::array<std::size_t, video::kCategoryCount> per_category_counts{};
};

/// Recommender configuration.
struct RecommenderConfig {
  /// Playlist length per interval.
  std::size_t playlist_size = 40;
  /// Blend between popularity rank and catalog Zipf prior when popularity
  /// evidence is thin (0 = pure catalog prior, 1 = pure observed popularity).
  double popularity_weight = 0.7;
};

/// Aggregates member preference estimates into a group preference
/// (evidence-weighted mean of each member's twin estimate).
behavior::PreferenceVector aggregate_group_preference(
    const std::vector<const twin::UserDigitalTwin*>& members);

/// Builds the group playlist: category quota proportional to group
/// preference; within a category, observed-popularity top videos first,
/// padded by catalog-popular videos not yet seen.
Recommendation recommend(const video::Catalog& catalog,
                         const PopularityAnalyzer& popularity,
                         const behavior::PreferenceVector& group_preference,
                         const RecommenderConfig& config);

}  // namespace dtmsv::analysis
