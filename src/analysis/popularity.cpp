#include "analysis/popularity.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dtmsv::analysis {

PopularityAnalyzer::PopularityAnalyzer(double forgetting) : forgetting_(forgetting) {
  DTMSV_EXPECTS(forgetting > 0.0 && forgetting <= 1.0);
}

void PopularityAnalyzer::observe(std::uint64_t video_id, double watch_seconds) {
  DTMSV_EXPECTS(watch_seconds >= 0.0);
  scores_[video_id] += watch_seconds;
}

void PopularityAnalyzer::decay() {
  for (auto it = scores_.begin(); it != scores_.end();) {
    it->second *= forgetting_;
    if (it->second < 1e-6) {
      it = scores_.erase(it);  // prune dead entries to bound memory
    } else {
      ++it;
    }
  }
}

double PopularityAnalyzer::score(std::uint64_t video_id) const {
  const auto it = scores_.find(video_id);
  return it == scores_.end() ? 0.0 : it->second;
}

namespace {
std::vector<std::pair<std::uint64_t, double>> sorted_entries(
    const std::unordered_map<std::uint64_t, double>& scores) {
  std::vector<std::pair<std::uint64_t, double>> entries(scores.begin(), scores.end());
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;
  });
  return entries;
}
}  // namespace

std::vector<std::uint64_t> PopularityAnalyzer::top_videos(std::size_t n) const {
  std::vector<std::uint64_t> out;
  for (const auto& [id, score] : sorted_entries(scores_)) {
    if (out.size() >= n) {
      break;
    }
    out.push_back(id);
  }
  return out;
}

std::vector<std::uint64_t> PopularityAnalyzer::top_videos_in_category(
    std::size_t n, video::Category category, const video::Catalog& catalog) const {
  std::vector<std::uint64_t> out;
  for (const auto& [id, score] : sorted_entries(scores_)) {
    if (out.size() >= n) {
      break;
    }
    if (catalog.video(id).category == category) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace dtmsv::analysis
