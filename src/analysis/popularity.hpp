// Video popularity tracking at the edge server: windowed view counts with
// exponential forgetting, feeding the recommender ("The recommended videos
// are updated based on video popularity and users' preferences").
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "video/catalog.hpp"

namespace dtmsv::analysis {

/// Tracks per-video popularity scores.
class PopularityAnalyzer {
 public:
  /// `forgetting` in (0, 1]: score multiplier per decay() call.
  explicit PopularityAnalyzer(double forgetting = 0.8);

  /// Accumulates one view weighted by engagement (watched seconds).
  void observe(std::uint64_t video_id, double watch_seconds);

  /// Applies exponential forgetting (once per interval).
  void decay();

  /// Current score of a video (0 for never-seen).
  double score(std::uint64_t video_id) const;

  /// Top-n videos by score, descending; ties broken by id for determinism.
  std::vector<std::uint64_t> top_videos(std::size_t n) const;

  /// Top-n within one category (requires the catalog for category lookup).
  std::vector<std::uint64_t> top_videos_in_category(std::size_t n,
                                                    video::Category category,
                                                    const video::Catalog& catalog) const;

  std::size_t tracked_count() const { return scores_.size(); }

 private:
  double forgetting_;
  std::unordered_map<std::uint64_t, double> scores_;
};

}  // namespace dtmsv::analysis
