#include "analysis/recommend.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/error.hpp"

namespace dtmsv::analysis {

behavior::PreferenceVector aggregate_group_preference(
    const std::vector<const twin::UserDigitalTwin*>& members) {
  behavior::PreferenceVector acc{};
  double total_weight = 0.0;
  for (const auto* member : members) {
    DTMSV_EXPECTS(member != nullptr);
    // Weight each member by the evidence behind its estimate so fresh twins
    // with little history do not dilute the group profile.
    const double weight = std::max(1.0, member->preference_estimator().evidence_seconds());
    const behavior::PreferenceVector est =
        member->preference().empty() ? member->preference_estimator().estimate()
                                     : member->preference().latest().value;
    for (std::size_t c = 0; c < acc.size(); ++c) {
      acc[c] += weight * est[c];
    }
    total_weight += weight;
  }
  if (total_weight <= 0.0) {
    acc.fill(1.0 / static_cast<double>(video::kCategoryCount));
    return acc;
  }
  for (double& v : acc) {
    v /= total_weight;
  }
  return behavior::normalized(acc);
}

Recommendation recommend(const video::Catalog& catalog,
                         const PopularityAnalyzer& popularity,
                         const behavior::PreferenceVector& group_preference,
                         const RecommenderConfig& config) {
  DTMSV_EXPECTS(config.playlist_size > 0);
  DTMSV_EXPECTS(config.popularity_weight >= 0.0 && config.popularity_weight <= 1.0);

  Recommendation rec;
  rec.group_preference = behavior::normalized(group_preference);

  // Category quotas: largest-remainder apportionment of the playlist.
  std::array<double, video::kCategoryCount> exact{};
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < video::kCategoryCount; ++c) {
    exact[c] = rec.group_preference[c] * static_cast<double>(config.playlist_size);
    rec.per_category_counts[c] = static_cast<std::size_t>(exact[c]);
    assigned += rec.per_category_counts[c];
  }
  while (assigned < config.playlist_size) {
    std::size_t best = 0;
    double best_rem = -1.0;
    for (std::size_t c = 0; c < video::kCategoryCount; ++c) {
      const double rem = exact[c] - static_cast<double>(rec.per_category_counts[c]);
      if (rem > best_rem) {
        best_rem = rem;
        best = c;
      }
    }
    ++rec.per_category_counts[best];
    ++assigned;
  }

  // Per category: observed-popular first, then catalog-rank padding.
  std::array<std::vector<std::uint64_t>, video::kCategoryCount> per_cat;
  for (std::size_t c = 0; c < video::kCategoryCount; ++c) {
    const auto category = video::all_categories()[c];
    const std::size_t quota = rec.per_category_counts[c];
    if (quota == 0) {
      continue;
    }
    std::unordered_set<std::uint64_t> chosen;
    auto& list = per_cat[c];

    const std::size_t observed_quota = static_cast<std::size_t>(
        std::round(config.popularity_weight * static_cast<double>(quota)));
    for (const std::uint64_t id :
         popularity.top_videos_in_category(observed_quota, category, catalog)) {
      if (chosen.insert(id).second) {
        list.push_back(id);
      }
    }
    for (const std::uint64_t id : catalog.category_videos(category)) {
      if (list.size() >= quota) {
        break;
      }
      if (chosen.insert(id).second) {
        list.push_back(id);
      }
    }
  }

  // Interleave categories round-robin so the playlist mixes content the way
  // a feed does rather than blocking by category.
  bool remaining = true;
  std::size_t round = 0;
  while (remaining && rec.playlist.size() < config.playlist_size) {
    remaining = false;
    for (std::size_t c = 0; c < video::kCategoryCount; ++c) {
      if (round < per_cat[c].size()) {
        rec.playlist.push_back(per_cat[c][round]);
        remaining = true;
      }
    }
    ++round;
  }
  return rec;
}

}  // namespace dtmsv::analysis
