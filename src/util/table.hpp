// Console table renderer for bench harnesses: prints aligned, boxed tables
// matching the "rows/series the paper reports" requirement.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace dtmsv::util {

/// Builds and renders a fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Braced-list convenience (avoids vector<double> iterator-pair ambiguity
  /// for string-literal rows).
  void add_row(std::initializer_list<std::string> cells) {
    add_row(std::vector<std::string>(cells));
  }
  /// Doubles formatted with the given precision.
  void add_row(const std::vector<double>& cells, int precision = 3);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with column alignment and a header separator.
  std::string to_string() const;

  /// Renders to stdout with an optional title banner.
  void print(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string fixed(double v, int precision = 3);
/// Formats a ratio in [0,1] as a percentage string, e.g. "95.04%".
std::string percent(double ratio, int precision = 2);

}  // namespace dtmsv::util
