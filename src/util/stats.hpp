// Streaming statistics, histograms and smoothing used across the pipeline:
// UDT attribute summaries, reward normalisation, demand-accuracy metrics,
// and the distance histograms that form the DDQN state.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace dtmsv::util {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Mean of observed samples. Requires count() > 0.
  double mean() const;
  /// Unbiased sample variance (0 when count() < 2).
  double variance() const;
  /// sqrt(variance()).
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-range histogram with uniform bins; values outside the range are
/// clamped into the first/last bin so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void reset();

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  std::size_t count_at(std::size_t bin) const;
  /// Fraction of samples in `bin` (0 when empty).
  double density(std::size_t bin) const;
  /// All bin densities as a probability vector (uniform when empty).
  std::vector<double> densities() const;
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exponentially weighted moving average; the first observation initialises
/// the state directly.
class Ewma {
 public:
  /// `alpha` in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha);

  void add(double x);
  bool has_value() const { return has_value_; }
  /// Current smoothed value. Requires has_value().
  double value() const;
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool has_value_ = false;
};

/// Mean of a non-empty span.
double mean(std::span<const double> xs);
/// Unbiased sample variance (0 for fewer than 2 samples).
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double percentile(std::vector<double> xs, double p);
/// Pearson correlation of two equal-length, non-empty spans; 0 when either
/// side has no variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Mean absolute percentage error over pairs with non-zero actuals.
/// Returns nullopt when no pair has |actual| > eps.
std::optional<double> mape(std::span<const double> actual,
                           std::span<const double> predicted,
                           double eps = 1e-12);

/// The paper's "prediction accuracy": max(0, 1 - MAPE).
std::optional<double> prediction_accuracy(std::span<const double> actual,
                                          std::span<const double> predicted);

/// Volume-weighted accuracy: max(0, 1 - Σ|a-p| / Σa). Robust for bursty
/// series whose per-interval actuals can be near zero (e.g. transcode
/// cycles), where MAPE denominators explode. Returns nullopt when Σa <= 0.
std::optional<double> volume_weighted_accuracy(std::span<const double> actual,
                                               std::span<const double> predicted);

double rmse(std::span<const double> actual, std::span<const double> predicted);

}  // namespace dtmsv::util
