#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dtmsv::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const {
  DTMSV_EXPECTS(count_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  DTMSV_EXPECTS(count_ > 0);
  return min_;
}

double RunningStats::max() const {
  DTMSV_EXPECTS(count_ > 0);
  return max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  DTMSV_EXPECTS(hi > lo);
  DTMSV_EXPECTS(bins > 0);
}

void Histogram::add(double x) {
  std::size_t bin = 0;
  if (x >= hi_) {
    bin = counts_.size() - 1;
  } else if (x > lo_) {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), std::size_t{0});
  total_ = 0;
}

std::size_t Histogram::count_at(std::size_t bin) const {
  DTMSV_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::density(std::size_t bin) const {
  DTMSV_EXPECTS(bin < counts_.size());
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::vector<double> Histogram::densities() const {
  std::vector<double> out(counts_.size());
  if (total_ == 0) {
    std::fill(out.begin(), out.end(), 1.0 / static_cast<double>(counts_.size()));
    return out;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

double Histogram::bin_lo(std::size_t bin) const {
  DTMSV_EXPECTS(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  DTMSV_EXPECTS(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin + 1);
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  DTMSV_EXPECTS(alpha > 0.0 && alpha <= 1.0);
}

void Ewma::add(double x) {
  if (!has_value_) {
    value_ = x;
    has_value_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

double Ewma::value() const {
  DTMSV_EXPECTS(has_value_);
  return value_;
}

void Ewma::reset() {
  has_value_ = false;
  value_ = 0.0;
}

double mean(std::span<const double> xs) {
  DTMSV_EXPECTS(!xs.empty());
  double total = 0.0;
  for (const double x : xs) {
    total += x;
  }
  return total / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double m = mean(xs);
  double total = 0.0;
  for (const double x : xs) {
    total += (x - m) * (x - m);
  }
  return total / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::vector<double> xs, double p) {
  DTMSV_EXPECTS(!xs.empty());
  DTMSV_EXPECTS(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  DTMSV_EXPECTS(xs.size() == ys.size());
  DTMSV_EXPECTS(!xs.empty());
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

std::optional<double> mape(std::span<const double> actual,
                           std::span<const double> predicted, double eps) {
  DTMSV_EXPECTS(actual.size() == predicted.size());
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (std::abs(actual[i]) > eps) {
      total += std::abs((actual[i] - predicted[i]) / actual[i]);
      ++n;
    }
  }
  if (n == 0) {
    return std::nullopt;
  }
  return total / static_cast<double>(n);
}

std::optional<double> prediction_accuracy(std::span<const double> actual,
                                          std::span<const double> predicted) {
  const auto err = mape(actual, predicted);
  if (!err) {
    return std::nullopt;
  }
  return std::max(0.0, 1.0 - *err);
}

std::optional<double> volume_weighted_accuracy(std::span<const double> actual,
                                               std::span<const double> predicted) {
  DTMSV_EXPECTS(actual.size() == predicted.size());
  double abs_err = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    abs_err += std::abs(actual[i] - predicted[i]);
    total += actual[i];
  }
  if (total <= 0.0) {
    return std::nullopt;
  }
  return std::max(0.0, 1.0 - abs_err / total);
}

double rmse(std::span<const double> actual, std::span<const double> predicted) {
  DTMSV_EXPECTS(actual.size() == predicted.size());
  DTMSV_EXPECTS(!actual.empty());
  double total = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - predicted[i];
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(actual.size()));
}

}  // namespace dtmsv::util
