// Error handling primitives shared by all dtmsv modules.
//
// Follows C++ Core Guidelines I.5/I.7 (state pre/postconditions) and E.x:
// precondition violations are programming errors and throw
// dtmsv::util::PreconditionError; runtime failures (I/O, parse) throw the
// appropriate std exception or dtmsv::util::RuntimeError.
#pragma once

#include <stdexcept>
#include <string>

namespace dtmsv::util {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a documented postcondition or internal invariant fails.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown for recoverable runtime failures (I/O, parsing, missing data).
class RuntimeError : public std::runtime_error {
 public:
  explicit RuntimeError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file, int line,
                                     const std::string& msg);
[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& msg);
}  // namespace detail

}  // namespace dtmsv::util

/// Precondition check: active in all build types (cheap checks only).
#define DTMSV_EXPECTS(expr)                                                        \
  do {                                                                             \
    if (!(expr)) {                                                                 \
      ::dtmsv::util::detail::throw_precondition(#expr, __FILE__, __LINE__, "");    \
    }                                                                              \
  } while (false)

#define DTMSV_EXPECTS_MSG(expr, msg)                                               \
  do {                                                                             \
    if (!(expr)) {                                                                 \
      ::dtmsv::util::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                              \
  } while (false)

/// Postcondition / invariant check.
#define DTMSV_ENSURES(expr)                                                        \
  do {                                                                             \
    if (!(expr)) {                                                                 \
      ::dtmsv::util::detail::throw_invariant(#expr, __FILE__, __LINE__, "");       \
    }                                                                              \
  } while (false)
