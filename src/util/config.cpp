#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace dtmsv::util {

namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

[[noreturn]] void bad_line(std::size_t line, const std::string& why) {
  throw RuntimeError("config parse error at line " + std::to_string(line) +
                     ": " + why);
}

/// Strips an inline comment: whitespace followed by '#' or ';'. A marker
/// not preceded by whitespace — or one opening the string, as in
/// `color = #ff0000` after the value is isolated — is kept.
std::string strip_inline_comment(const std::string& s) {
  for (std::size_t i = 1; i < s.size(); ++i) {
    if ((s[i] == '#' || s[i] == ';') &&
        std::isspace(static_cast<unsigned char>(s[i - 1]))) {
      return s.substr(0, i);
    }
  }
  return s;
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string raw;
  std::string section;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(raw);
    if (line.empty() || line.front() == '#' || line.front() == ';') {
      continue;
    }
    if (line.front() == '[') {
      const std::string header = trim(strip_inline_comment(line));
      if (header.back() != ']') {
        bad_line(line_no, "unterminated section header '" + header + "'");
      }
      section = trim(header.substr(1, header.size() - 2));
      if (section.empty()) {
        bad_line(line_no, "empty section name");
      }
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      bad_line(line_no, "expected 'key = value', got '" +
                            trim(strip_inline_comment(line)) + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    if (key.empty()) {
      bad_line(line_no, "empty key");
    }
    const std::string full = section.empty() ? key : section + "." + key;
    if (config.values_.count(full) != 0) {
      bad_line(line_no, "duplicate key '" + full + "'");
    }
    // Comment stripping happens on the isolated value, so a value *opening*
    // with '#' ("color = #ff0000") survives.
    config.values_[full] = trim(strip_inline_comment(trim(line.substr(eq + 1))));
  }
  return config;
}

Config Config::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw RuntimeError("cannot open config file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

const std::string* Config::find(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return nullptr;
  }
  read_.insert(key);
  return &it->second;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

const std::string& Config::get(const std::string& key) const {
  const std::string* value = find(key);
  if (value == nullptr) {
    throw RuntimeError("missing config key '" + key + "'");
  }
  return *value;
}

std::string Config::get_or(const std::string& key,
                           const std::string& fallback) const {
  const std::string* value = find(key);
  return value == nullptr ? fallback : *value;
}

double Config::get_double(const std::string& key) const {
  const std::string& text = get(key);
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    throw RuntimeError("config key '" + key + "': '" + text +
                       "' is not a number");
  }
  return parsed;
}

double Config::get_double_or(const std::string& key, double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

std::uint64_t parse_uint64(const std::string& text, const std::string& what) {
  // strtoull would silently accept "-1" (wrapping) and leading whitespace,
  // so only strings opening with a digit ever reach it.
  const bool starts_with_digit =
      !text.empty() && std::isdigit(static_cast<unsigned char>(text.front()));
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed =
      starts_with_digit ? std::strtoull(text.c_str(), &end, 10) : 0;
  if (!starts_with_digit || *end != '\0' || errno == ERANGE) {
    throw RuntimeError(what + ": '" + text +
                       "' is not a non-negative integer");
  }
  return static_cast<std::uint64_t>(parsed);
}

std::uint64_t Config::get_uint64(const std::string& key) const {
  return parse_uint64(get(key), "config key '" + key + "'");
}

std::uint64_t Config::get_uint64_or(const std::string& key,
                                    std::uint64_t fallback) const {
  return has(key) ? get_uint64(key) : fallback;
}

std::size_t Config::get_size(const std::string& key) const {
  return static_cast<std::size_t>(get_uint64(key));
}

std::size_t Config::get_size_or(const std::string& key,
                                std::size_t fallback) const {
  return has(key) ? get_size(key) : fallback;
}

bool Config::get_bool(const std::string& key) const {
  const std::string text = lower(get(key));
  if (text == "true" || text == "yes" || text == "on" || text == "1") {
    return true;
  }
  if (text == "false" || text == "no" || text == "off" || text == "0") {
    return false;
  }
  throw RuntimeError("config key '" + key + "': '" + get(key) +
                     "' is not a boolean (true/false, yes/no, on/off, 1/0)");
}

bool Config::get_bool_or(const std::string& key, bool fallback) const {
  return has(key) ? get_bool(key) : fallback;
}

std::vector<std::string> Config::get_list(const std::string& key) const {
  std::vector<std::string> items;
  const std::string* value = find(key);
  if (value == nullptr) {
    return items;
  }
  std::size_t start = 0;
  while (start <= value->size()) {
    std::size_t comma = value->find(',', start);
    if (comma == std::string::npos) {
      comma = value->size();
    }
    const std::string item = trim(value->substr(start, comma - start));
    if (!item.empty()) {
      items.push_back(item);
    }
    start = comma + 1;
  }
  return items;
}

void Config::set(const std::string& key, const std::string& value) {
  DTMSV_EXPECTS(!trim(key).empty());
  values_[trim(key)] = trim(value);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) {
    (void)value;
    out.push_back(key);
  }
  return out;
}

std::vector<std::string> Config::keys_in(const std::string& section) const {
  const std::string prefix = section.empty() ? "" : section + ".";
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (key.rfind(prefix, 0) != 0) {
      continue;
    }
    const std::string rest = key.substr(prefix.size());
    if (!rest.empty() && rest.find('.') == std::string::npos) {
      out.push_back(rest);
    }
  }
  return out;
}

std::vector<std::string> Config::unread_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (read_.count(key) == 0) {
      out.push_back(key);
    }
  }
  return out;
}

std::string Config::to_string() const {
  // Root keys first (a root key emitted after any section header would
  // reparse into that section), then sectioned keys grouped by last-dot
  // prefix. A section whose sorted keys are interleaved by a nested
  // section's keys ("a.a", "a.b.c", "a.x") is simply reopened — INI
  // permits repeated headers, so the flat map still round-trips.
  std::ostringstream out;
  bool first = true;
  for (const auto& [key, value] : values_) {
    if (key.find('.') == std::string::npos) {
      out << key << " = " << value << "\n";
      first = false;
    }
  }
  std::string current_section;
  for (const auto& [key, value] : values_) {
    const std::size_t dot = key.rfind('.');
    if (dot == std::string::npos) {
      continue;
    }
    const std::string section = key.substr(0, dot);
    if (section != current_section || first) {
      if (!first) {
        out << "\n";
      }
      out << "[" << section << "]\n";
      current_section = section;
      first = false;
    }
    out << key.substr(dot + 1) << " = " << value << "\n";
  }
  return out.str();
}

void Config::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw RuntimeError("cannot write config file: " + path);
  }
  out << to_string();
  if (!out) {
    throw RuntimeError("I/O error writing config file: " + path);
  }
}

}  // namespace dtmsv::util
