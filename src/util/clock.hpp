// Simulation time primitives. The whole system runs on a discrete clock:
// fine-grained collection ticks (seconds) nested inside coarse reservation
// intervals (the paper uses 5-minute intervals).
#pragma once

#include <cstdint>

namespace dtmsv::util {

/// Simulation time in seconds since simulation start.
using SimTime = double;

/// Index of a resource reservation interval (0-based).
using IntervalId = std::int64_t;

/// Converts a time to the interval containing it.
constexpr IntervalId interval_of(SimTime t, double interval_seconds) {
  return static_cast<IntervalId>(t / interval_seconds);
}

/// Start time of an interval.
constexpr SimTime interval_start(IntervalId id, double interval_seconds) {
  return static_cast<SimTime>(id) * interval_seconds;
}

}  // namespace dtmsv::util
