// Deterministic, seedable random number generation for simulation and learning.
//
// All stochastic components in dtmsv draw from Rng so that every experiment
// is exactly reproducible from a single 64-bit seed. The generator is
// xoshiro256** (Blackman & Vigna), seeded through SplitMix64 as its authors
// recommend. Rng also provides the distributions the simulator needs
// (uniform, normal, exponential, log-normal, Zipf, Dirichlet, categorical)
// so modules never reach for unseeded global randomness.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace dtmsv::util {

/// SplitMix64: used to expand a single seed into xoshiro state, and as a
/// cheap standalone generator for hashing-style use cases.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** PRNG with a full distribution toolkit.
///
/// Satisfies UniformRandomBitGenerator so it can also be handed to <random>
/// distributions, though the built-in methods are preferred for portability
/// of exact streams across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose entire stream is determined by `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Raw 64 random bits.
  result_type operator()() { return next(); }
  result_type next();

  /// Derives an independent child generator; `stream` distinguishes children
  /// created from the same parent state (e.g. one per user).
  Rng fork(std::uint64_t stream);

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (cached second variate).
  double normal();
  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);
  /// Exponential with the given rate (> 0); mean is 1/rate.
  double exponential(double rate);
  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);
  /// Gamma(shape, scale) via Marsaglia–Tsang. shape > 0, scale > 0.
  double gamma(double shape, double scale);
  /// Beta(a, b) via two gammas. a > 0, b > 0.
  double beta(double a, double b);

  /// Samples an index from unnormalised non-negative weights (sum > 0).
  std::size_t categorical(std::span<const double> weights);

  /// Dirichlet sample with concentration `alpha` (all > 0); returns a
  /// probability vector of the same size.
  std::vector<double> dirichlet(std::span<const double> alpha);

  /// Zipf-distributed rank in [0, n) with exponent s >= 0: P(k) ∝ 1/(k+1)^s.
  std::size_t zipf(std::size_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Precomputed Zipf sampler for repeated draws over a fixed (n, s).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  std::size_t sample(Rng& rng) const;
  /// P(rank == k).
  double pmf(std::size_t k) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative probabilities, back() == 1.
};

}  // namespace dtmsv::util
