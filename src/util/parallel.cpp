#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dtmsv::util {

namespace {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("DTMSV_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::atomic<std::size_t> g_override{0};

/// Depth of parallel_for frames on this thread. Non-zero means we are
/// already inside a pool job (worker or participating caller); a nested
/// parallel_for then runs inline — the pool's job mutex is held for the
/// duration of the outer job, so handing nested work to the pool would
/// deadlock. Inline execution keeps results bit-identical: every kernel
/// built on parallel_for reduces each output row on exactly one thread
/// regardless of how the row range is partitioned.
thread_local std::size_t g_nesting = 0;

/// One parallel_for invocation. Workers snapshot a shared_ptr to the
/// current job under the pool mutex, so a worker that wakes late holds
/// its own (kept-alive) Job whose chunk counter is already exhausted —
/// it can never claim work from, or read torn state of, a newer job.
/// `fn` stays valid while any chunk is unclaimed: run() only returns
/// once done == chunks, and every successful claim happens before that.
struct Job {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunks = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
};

/// Lazily started pool of persistent workers. Work arrives as one
/// chunked loop at a time (parallel_for is not reentrant); workers grab
/// chunk indices from the job's counter and the caller participates too,
/// so a pool of N threads serves N+1-way parallelism.
class Pool {
 public:
  static Pool& instance() {
    // Intentionally leaked: workers block on the condition variable for
    // the life of the process, so running a destructor at static
    // teardown would have to terminate() the blocked threads.
    static Pool* pool = new Pool();
    return *pool;
  }

  void run(std::size_t begin, std::size_t end, std::size_t chunks,
           const std::function<void(std::size_t, std::size_t)>& fn) {
    std::unique_lock<std::mutex> job_lock(job_mutex_);
    auto job = std::make_shared<Job>();
    job->begin = begin;
    job->end = end;
    job->chunks = chunks;
    job->fn = &fn;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ensure_workers_locked(chunks - 1);
      job_ = job;
      ++generation_;
    }
    work_cv_.notify_all();
    work_chunks(*job);
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [&] { return job->done.load() == job->chunks; });
    job_.reset();
  }

 private:
  Pool() = default;

  void ensure_workers_locked(std::size_t needed) {
    while (workers_.size() < needed) {
      workers_.emplace_back([this] { worker_loop(); });
      workers_.back().detach();
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        job = job_;
      }
      if (job) {
        work_chunks(*job);
      }
    }
  }

  void work_chunks(Job& job) {
    const std::size_t span = job.end - job.begin;
    std::size_t finished = 0;
    while (true) {
      const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.chunks) {
        break;
      }
      const std::size_t lo = job.begin + span * c / job.chunks;
      const std::size_t hi = job.begin + span * (c + 1) / job.chunks;
      if (lo < hi) {
        ++g_nesting;
        (*job.fn)(lo, hi);
        --g_nesting;
      }
      ++finished;
    }
    if (finished > 0 &&
        job.done.fetch_add(finished, std::memory_order_acq_rel) + finished ==
            job.chunks) {
      std::lock_guard<std::mutex> lock(mutex_);
      idle_cv_.notify_all();
    }
  }

  std::mutex job_mutex_;  // serialises parallel_for callers
  std::mutex mutex_;      // guards job_, generation_, workers_
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::vector<std::thread> workers_;
  std::uint64_t generation_ = 0;
  std::shared_ptr<Job> job_;
};

}  // namespace

std::size_t thread_count() {
  const std::size_t o = g_override.load(std::memory_order_relaxed);
  if (o >= 1) {
    return o;
  }
  static const std::size_t resolved = default_thread_count();
  return resolved;
}

void set_thread_count(std::size_t n) {
  g_override.store(n, std::memory_order_relaxed);
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t min_grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  const std::size_t threads = thread_count();
  const std::size_t span = end - begin;
  if (threads <= 1 || span < min_grain || g_nesting > 0) {
    fn(begin, end);
    return;
  }
  // One chunk per thread: chunk boundaries are a pure function of the
  // range and thread count, keeping every run's work partition stable.
  const std::size_t chunks = std::min(threads, span);
  Pool::instance().run(begin, end, chunks, fn);
}

}  // namespace dtmsv::util
