#include "util/csv.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace dtmsv::util {

namespace {

bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& cell) {
  if (!needs_quoting(cell)) {
    return cell;
  }
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

void append_row(std::string& out, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += quote(cells[i]);
  }
  out += '\n';
}

}  // namespace

std::string format_double(double v) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf, static_cast<std::size_t>(n));
}

void CsvWriter::set_header(std::vector<std::string> columns) {
  DTMSV_EXPECTS_MSG(rows_.empty(), "set_header must precede rows");
  header_ = std::move(columns);
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (!header_.empty()) {
    DTMSV_EXPECTS_MSG(cells.size() == header_.size(), "row width != header width");
  }
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_row(const std::vector<double>& cells) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (const double v : cells) {
    out.push_back(format_double(v));
  }
  add_row(std::move(out));
}

std::string CsvWriter::to_string() const {
  std::string out;
  if (!header_.empty()) {
    append_row(out, header_);
  }
  for (const auto& row : rows_) {
    append_row(out, row);
  }
  return out;
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw RuntimeError("cannot open for write: " + path);
  }
  os << to_string();
  if (!os) {
    throw RuntimeError("write failed: " + path);
  }
}

CsvReader CsvReader::parse(const std::string& text, bool has_header) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> current;
  std::string cell;
  bool in_quotes = false;
  bool row_started = false;

  const auto end_cell = [&] {
    current.push_back(std::move(cell));
    cell.clear();
  };
  const auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(current));
    current.clear();
    row_started = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_started = true;
        break;
      case ',':
        end_cell();
        row_started = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_started || !cell.empty() || !current.empty()) {
          end_row();
        }
        break;
      default:
        cell += c;
        row_started = true;
        break;
    }
  }
  if (in_quotes) {
    throw RuntimeError("CSV parse error: unterminated quoted field");
  }
  if (row_started || !cell.empty() || !current.empty()) {
    end_row();
  }

  CsvReader reader;
  if (has_header) {
    if (rows.empty()) {
      throw RuntimeError("CSV parse error: expected header row");
    }
    reader.header_ = std::move(rows.front());
    rows.erase(rows.begin());
  }
  reader.rows_ = std::move(rows);
  return reader;
}

CsvReader CsvReader::read_file(const std::string& path, bool has_header) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw RuntimeError("cannot open for read: " + path);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse(buffer.str(), has_header);
}

const std::vector<std::string>& CsvReader::row(std::size_t i) const {
  DTMSV_EXPECTS(i < rows_.size());
  return rows_[i];
}

std::size_t CsvReader::column(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) {
      return i;
    }
  }
  throw RuntimeError("CSV: no such column: " + name);
}

const std::string& CsvReader::cell(std::size_t row_idx, std::size_t col) const {
  const auto& r = row(row_idx);
  DTMSV_EXPECTS(col < r.size());
  return r[col];
}

double CsvReader::cell_double(std::size_t row_idx, std::size_t col) const {
  const std::string& s = cell(row_idx, col);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw RuntimeError("CSV: not a number: '" + s + "'");
  }
  return value;
}

}  // namespace dtmsv::util
