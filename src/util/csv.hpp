// Minimal CSV writer/reader used by examples and bench harnesses to export
// experiment series. Values are quoted only when needed (comma, quote, or
// newline present); numbers are written with full round-trip precision.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace dtmsv::util {

/// Row-oriented CSV document builder.
class CsvWriter {
 public:
  /// Sets the header; must be called before any row is appended.
  void set_header(std::vector<std::string> columns);

  /// Appends a row; width must match the header when one is set.
  void add_row(std::vector<std::string> cells);

  /// Braced-list convenience (avoids vector<double> iterator-pair ambiguity
  /// for string-literal rows).
  void add_row(std::initializer_list<std::string> cells) {
    add_row(std::vector<std::string>(cells));
  }

  /// Convenience: formats doubles with round-trip precision.
  void add_row(const std::vector<double>& cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Serialises to CSV text.
  std::string to_string() const;

  /// Writes to a file; throws RuntimeError on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parsed CSV document with optional header.
class CsvReader {
 public:
  /// Parses CSV text. Handles quoted fields with embedded commas/quotes/newlines.
  static CsvReader parse(const std::string& text, bool has_header = true);
  /// Reads and parses a file; throws RuntimeError if it cannot be opened.
  static CsvReader read_file(const std::string& path, bool has_header = true);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const;

  /// Column index by name; throws RuntimeError when missing.
  std::size_t column(const std::string& name) const;

  /// Typed cell access.
  const std::string& cell(std::size_t row, std::size_t col) const;
  double cell_double(std::size_t row, std::size_t col) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with enough digits to round-trip.
std::string format_double(double v);

}  // namespace dtmsv::util
