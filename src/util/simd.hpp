// Portable SIMD layer: a fixed-width value type (`pack<T, Backend>`) with
// load/store/arithmetic/madd ops and scalar / AVX2 / AVX-512 backends
// selected at compile time. The scalar backend is always available and is
// the semantic reference; the vector backends exist purely to run the same
// arithmetic wider.
//
// Bit-identity contract. Kernels built on this layer vectorise across
// *independent outputs* (centroids of a k-means search, output columns of
// a matmul, dimensions of a sum), never across a reduction — every lane
// carries one output's full accumulation chain in its original order. All
// pack ops are lane-wise IEEE operations (add/sub/mul/div/fma), so a lane
// computes bit-for-bit what the scalar backend computes for that output,
// and results cannot depend on which backend was compiled in. The one
// regime knob is FMA fusion: `madd` fuses if and only if the libm fast-fma
// macros (FP_FAST_FMAF / FP_FAST_FMA) say the target has hardware FMA, in
// scalar and vector backends alike, so a mixed scalar-tail/vector-body
// kernel still agrees with itself.
//
// Backend selection: `default_backend` picks the widest ISA the
// translation unit is compiled for (__AVX512F__ > __AVX2__ > scalar).
// With the DTMSV_NATIVE_ARCH CMake option ON (the default), -march=native
// sets those macros to the host's best; with it OFF the scalar backend is
// the only one compiled, which is how the portable CI job exercises the
// fallback paths.
#pragma once

#include <cmath>
#include <cstddef>

#if defined(__AVX2__) || defined(__AVX512F__)
// GCC's _mm512_reduce_* expansions trip -Wmaybe-uninitialized inside
// avx512fintrin.h; the warning is in the compiler's own header, not here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#include <immintrin.h>
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#endif

namespace dtmsv::util::simd {

// ------------------------------------------------------------ scalar madd
// The single multiply-accumulate primitive every kernel (and every in-test
// reference implementation) must share: fused when the target has fast
// hardware FMA, plain mul-add otherwise. Gating scalar and vector code on
// the same macro is what keeps scalar tails bit-identical to vector bodies.

inline float madd(float a, float b, float acc) {
#ifdef FP_FAST_FMAF
  return std::fmaf(a, b, acc);
#else
  return acc + a * b;
#endif
}

inline double madd(double a, double b, double acc) {
#ifdef FP_FAST_FMA
  return std::fma(a, b, acc);
#else
  return acc + a * b;
#endif
}

// ------------------------------------------------------------ backend tags

/// Width-1 reference backend; always compiled, semantically canonical.
struct scalar_backend {};

#if defined(__AVX2__)
/// 256-bit backend: 8 floats / 4 doubles per pack.
struct avx2_backend {};
#endif

#if defined(__AVX512F__)
/// 512-bit backend: 16 floats / 8 doubles per pack.
struct avx512_backend {};
#endif

#if defined(__AVX512F__)
using default_backend = avx512_backend;
#elif defined(__AVX2__)
using default_backend = avx2_backend;
#else
using default_backend = scalar_backend;
#endif

/// Name of the backend the library was compiled to use ("scalar", "avx2",
/// "avx512") — recorded in bench JSON context and NDJSON meta records so
/// perf baselines are attributable to an ISA.
constexpr const char* active_backend_name() {
#if defined(__AVX512F__)
  return "avx512";
#elif defined(__AVX2__)
  return "avx2";
#else
  return "scalar";
#endif
}

/// True when the build was configured with -march=native (the
/// DTMSV_NATIVE_ARCH CMake option); recorded alongside the backend name.
constexpr bool native_arch_build() {
#if defined(DTMSV_NATIVE_ARCH_BUILD)
  return true;
#else
  return false;
#endif
}

// ------------------------------------------------------------- pack types

template <typename T, typename Backend>
struct pack;

template <typename T>
struct pack<T, scalar_backend> {
  static constexpr std::size_t width = 1;
  T v;

  static pack load(const T* p) { return {*p}; }
  static pack broadcast(T x) { return {x}; }
  static pack zero() { return {T{0}}; }
  void store(T* p) const { *p = v; }

  friend pack operator+(pack a, pack b) { return {a.v + b.v}; }
  friend pack operator-(pack a, pack b) { return {a.v - b.v}; }
  friend pack operator*(pack a, pack b) { return {a.v * b.v}; }
  friend pack operator/(pack a, pack b) { return {a.v / b.v}; }
  /// Lane-wise a*b+acc through the shared scalar madd (FMA iff fast).
  static pack madd(pack a, pack b, pack acc) {
    return {simd::madd(a.v, b.v, acc.v)};
  }

  // In-register argmin support (see the double vector packs): minimum
  // over lanes (exact — min returns one of its inputs), lanes ordered-
  // equal to a scalar, lanes that are NaN. Callers must route packs with
  // NaN lanes through a scalar fallback, since vector min propagation is
  // operand-order-dependent under NaN.
  T reduce_min() const { return v; }
  unsigned eq_mask(T x) const { return v == x ? 1u : 0u; }
  unsigned unord_mask() const { return v != v ? 1u : 0u; }
};

#if defined(__AVX2__)

template <>
struct pack<float, avx2_backend> {
  static constexpr std::size_t width = 8;
  __m256 v;

  static pack load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static pack broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static pack zero() { return {_mm256_setzero_ps()}; }
  void store(float* p) const { _mm256_storeu_ps(p, v); }

  friend pack operator+(pack a, pack b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend pack operator-(pack a, pack b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend pack operator*(pack a, pack b) { return {_mm256_mul_ps(a.v, b.v)}; }
  friend pack operator/(pack a, pack b) { return {_mm256_div_ps(a.v, b.v)}; }
  static pack madd(pack a, pack b, pack acc) {
#if defined(__FMA__) && defined(FP_FAST_FMAF)
    return {_mm256_fmadd_ps(a.v, b.v, acc.v)};
#else
    return {_mm256_add_ps(acc.v, _mm256_mul_ps(a.v, b.v))};
#endif
  }
};

template <>
struct pack<double, avx2_backend> {
  static constexpr std::size_t width = 4;
  __m256d v;

  static pack load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static pack broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static pack zero() { return {_mm256_setzero_pd()}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }

  friend pack operator+(pack a, pack b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend pack operator-(pack a, pack b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend pack operator*(pack a, pack b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend pack operator/(pack a, pack b) { return {_mm256_div_pd(a.v, b.v)}; }
  static pack madd(pack a, pack b, pack acc) {
#if defined(__FMA__) && defined(FP_FAST_FMA)
    return {_mm256_fmadd_pd(a.v, b.v, acc.v)};
#else
    return {_mm256_add_pd(acc.v, _mm256_mul_pd(a.v, b.v))};
#endif
  }

  double reduce_min() const {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    __m128d m = _mm_min_pd(lo, hi);
    m = _mm_min_sd(m, _mm_unpackhi_pd(m, m));
    return _mm_cvtsd_f64(m);
  }
  unsigned eq_mask(double x) const {
    return static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(v, _mm256_set1_pd(x), _CMP_EQ_OQ)));
  }
  unsigned unord_mask() const {
    return static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(v, v, _CMP_UNORD_Q)));
  }
};

#endif  // __AVX2__

#if defined(__AVX512F__)

template <>
struct pack<float, avx512_backend> {
  static constexpr std::size_t width = 16;
  __m512 v;

  static pack load(const float* p) { return {_mm512_loadu_ps(p)}; }
  static pack broadcast(float x) { return {_mm512_set1_ps(x)}; }
  static pack zero() { return {_mm512_setzero_ps()}; }
  void store(float* p) const { _mm512_storeu_ps(p, v); }

  friend pack operator+(pack a, pack b) { return {_mm512_add_ps(a.v, b.v)}; }
  friend pack operator-(pack a, pack b) { return {_mm512_sub_ps(a.v, b.v)}; }
  friend pack operator*(pack a, pack b) { return {_mm512_mul_ps(a.v, b.v)}; }
  friend pack operator/(pack a, pack b) { return {_mm512_div_ps(a.v, b.v)}; }
  static pack madd(pack a, pack b, pack acc) {
#ifdef FP_FAST_FMAF
    return {_mm512_fmadd_ps(a.v, b.v, acc.v)};
#else
    return {_mm512_add_ps(acc.v, _mm512_mul_ps(a.v, b.v))};
#endif
  }
};

template <>
struct pack<double, avx512_backend> {
  static constexpr std::size_t width = 8;
  __m512d v;

  static pack load(const double* p) { return {_mm512_loadu_pd(p)}; }
  static pack broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static pack zero() { return {_mm512_setzero_pd()}; }
  void store(double* p) const { _mm512_storeu_pd(p, v); }

  friend pack operator+(pack a, pack b) { return {_mm512_add_pd(a.v, b.v)}; }
  friend pack operator-(pack a, pack b) { return {_mm512_sub_pd(a.v, b.v)}; }
  friend pack operator*(pack a, pack b) { return {_mm512_mul_pd(a.v, b.v)}; }
  friend pack operator/(pack a, pack b) { return {_mm512_div_pd(a.v, b.v)}; }
  static pack madd(pack a, pack b, pack acc) {
#ifdef FP_FAST_FMA
    return {_mm512_fmadd_pd(a.v, b.v, acc.v)};
#else
    return {_mm512_add_pd(acc.v, _mm512_mul_pd(a.v, b.v))};
#endif
  }

  double reduce_min() const { return _mm512_reduce_min_pd(v); }
  unsigned eq_mask(double x) const {
    return static_cast<unsigned>(
        _mm512_cmp_pd_mask(v, _mm512_set1_pd(x), _CMP_EQ_OQ));
  }
  unsigned unord_mask() const {
    return static_cast<unsigned>(_mm512_cmp_pd_mask(v, v, _CMP_UNORD_Q));
  }
};

#endif  // __AVX512F__

// -------------------------------------------------------- span-level helpers
// Lane-wise whole-range operations with scalar tails. Because every lane is
// an independent output, these are bit-identical across backends by
// construction.

/// dst[i] += src[i] for i in [0, n).
template <typename Backend, typename T>
inline void add_rows(T* dst, const T* src, std::size_t n) {
  using P = pack<T, Backend>;
  std::size_t i = 0;
  if constexpr (P::width > 1) {
    for (; i + P::width <= n; i += P::width) {
      (P::load(dst + i) + P::load(src + i)).store(dst + i);
    }
  }
  for (; i < n; ++i) {
    dst[i] += src[i];
  }
}

/// dst[i] = src[i] for i in [0, n) (vector loads/stores; exact by nature).
template <typename Backend, typename T>
inline void copy_row(T* dst, const T* src, std::size_t n) {
  using P = pack<T, Backend>;
  std::size_t i = 0;
  if constexpr (P::width > 1) {
    for (; i + P::width <= n; i += P::width) {
      P::load(src + i).store(dst + i);
    }
  }
  for (; i < n; ++i) {
    dst[i] = src[i];
  }
}

}  // namespace dtmsv::util::simd
