// Shared thread pool and data-parallel loop for the numeric core.
//
// The per-interval DT pipeline (1D-CNN compression, k-means grouping,
// DDQN planning) is embarrassingly parallel over rows: output rows of a
// matmul, points of a clustering pass, windows of a feature batch. The
// pool hands each worker a contiguous, disjoint index block, so results
// are bit-identical for any thread count — each row is always reduced by
// exactly one thread, in the same order.
//
// Thread count resolution order:
//   1. explicit set_thread_count(n) (benches use this for scaling runs),
//   2. the DTMSV_THREADS environment variable,
//   3. std::thread::hardware_concurrency().
// A count of 1 (or a range below `grain`) runs inline with zero overhead.
#pragma once

#include <cstddef>
#include <functional>

namespace dtmsv::util {

/// Number of worker threads the pool will use (see resolution order above).
std::size_t thread_count();

/// Overrides the pool size; n == 0 restores the env/hardware default.
/// Takes effect on the next parallel_for call.
void set_thread_count(std::size_t n);

/// Runs fn(begin_i, end_i) over disjoint contiguous chunks covering
/// [begin, end). Chunk boundaries depend only on (begin, end, thread
/// count), never on scheduling, and a range shorter than min_grain (or a
/// 1-thread pool) executes fn(begin, end) inline on the caller's thread.
/// Reentrant: a parallel_for issued from inside a running job (e.g. a
/// matmul inside a fleet-level per-cell loop) executes inline on that
/// worker, so coarse outer parallelism wins and nesting cannot deadlock.
/// fn must not throw; exceptions escaping a worker terminate the process.
void parallel_for(std::size_t begin, std::size_t end, std::size_t min_grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace dtmsv::util
