// Minimal INI-style configuration parser for the declarative scenario
// configs under configs/ (and any other key=value file). No dependencies
// beyond the standard library, by design: the CLI layer must stay buildable
// in the leanest CI container.
//
// Grammar (line oriented):
//   [section]          -- section header; nested names like [a.b] are fine
//   key = value        -- pair; whitespace around key and value is trimmed,
//                         the value may itself contain '=' characters
//   # comment          -- comments ('#' or ';'): full-line, or inline when
//                         the marker follows whitespace; blank lines skipped
//
// Keys are addressed flat as "section.key" ("key" alone before any section
// header). Malformed input — a line with no '=', an unterminated or empty
// section header, a duplicate key — throws util::RuntimeError naming the
// line number. Typed getters throw util::RuntimeError naming the key on
// missing or unparseable values.
//
// The parser tracks which keys the consumer actually read, so loaders can
// reject typos ("surge_fracton") instead of silently ignoring them — see
// unread_keys(). to_string() serialises back to INI text grouped by
// section; Config::parse(c.to_string()) reproduces the flat key/value map
// exactly (round-trip, pinned by tests/config_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dtmsv::util {

/// Parses a non-negative decimal integer, rejecting signs, partial parses
/// and overflow; throws RuntimeError with `what` naming the value. The
/// primitive behind Config::get_uint64, exposed for command-line values.
std::uint64_t parse_uint64(const std::string& text, const std::string& what);

class Config {
 public:
  /// Parses INI text; throws RuntimeError with a line number on malformed
  /// input.
  static Config parse(const std::string& text);
  /// Reads and parses a file; throws RuntimeError if it cannot be opened.
  static Config read_file(const std::string& path);

  /// True when the key is present (does not mark it as read).
  bool has(const std::string& key) const;

  /// Raw string value; throws RuntimeError when missing.
  const std::string& get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;

  /// Typed getters; throw RuntimeError naming the key on a missing value
  /// (non-_or forms) or on text that does not fully parse as the type.
  double get_double(const std::string& key) const;
  double get_double_or(const std::string& key, double fallback) const;
  std::size_t get_size(const std::string& key) const;
  std::size_t get_size_or(const std::string& key, std::size_t fallback) const;
  std::uint64_t get_uint64(const std::string& key) const;
  std::uint64_t get_uint64_or(const std::string& key, std::uint64_t fallback) const;
  /// Accepts true/false, yes/no, on/off, 1/0 (case-insensitive).
  bool get_bool(const std::string& key) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  /// Comma-separated list value, items trimmed, empty items dropped.
  /// Missing key -> empty list.
  std::vector<std::string> get_list(const std::string& key) const;

  /// Inserts or overwrites a key (command-line --set overrides).
  void set(const std::string& key, const std::string& value);

  /// All keys, sorted.
  std::vector<std::string> keys() const;
  /// Keys of one section ("" = root), sorted, returned without the prefix.
  std::vector<std::string> keys_in(const std::string& section) const;
  /// Keys present in the file that no getter ever touched — the loader's
  /// typo guard.
  std::vector<std::string> unread_keys() const;

  std::size_t size() const { return values_.size(); }

  /// Serialises to INI text grouped by section (root keys first). The flat
  /// key/value map survives a parse() of the result unchanged.
  std::string to_string() const;
  /// Writes to_string() to a file; throws RuntimeError on I/O failure.
  void write_file(const std::string& path) const;

 private:
  const std::string* find(const std::string& key) const;

  std::map<std::string, std::string> values_;
  mutable std::set<std::string> read_;
};

}  // namespace dtmsv::util
