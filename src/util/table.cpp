#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "util/error.hpp"

namespace dtmsv::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DTMSV_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DTMSV_EXPECTS_MSG(cells.size() == header_.size(), "row width != header width");
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (const double v : cells) {
    out.push_back(fixed(v, precision));
  }
  add_row(std::move(out));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t i = 0; i < row.size(); ++i) {
      line += ' ';
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string sep = "+";
  for (const std::size_t w : widths) {
    sep.append(w + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out = sep + render_row(header_) + sep;
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  out += sep;
  return out;
}

void Table::print(const std::string& title) const {
  if (!title.empty()) {
    std::cout << "\n== " << title << " ==\n";
  }
  std::cout << to_string();
  std::cout.flush();
}

std::string fixed(double v, int precision) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf, static_cast<std::size_t>(n));
}

std::string percent(double ratio, int precision) {
  return fixed(ratio * 100.0, precision) + "%";
}

}  // namespace dtmsv::util
