#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dtmsv::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) {
    word = sm.next();
  }
  // All-zero state is the one invalid state for xoshiro; SplitMix64 cannot
  // produce four zero outputs in a row from any seed, but keep the guard
  // explicit for clarity.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    s_[0] = 0x1ULL;
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t stream) {
  // Mix the parent's next output with the stream id through SplitMix64 so
  // sibling forks are decorrelated even for adjacent stream ids.
  SplitMix64 sm(next() ^ (0xD1B54A32D192ED03ULL * (stream + 1)));
  return Rng(sm.next());
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DTMSV_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DTMSV_EXPECTS(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % range);
  std::uint64_t draw = 0;
  do {
    draw = next();
  } while (draw > limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
  DTMSV_EXPECTS(sigma >= 0.0);
  return mean + sigma * normal();
}

double Rng::exponential(double rate) {
  DTMSV_EXPECTS(rate > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) {
  DTMSV_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

double Rng::gamma(double shape, double scale) {
  DTMSV_EXPECTS(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct with u^(1/shape) (Marsaglia–Tsang note).
    const double u = std::max(uniform(), 1e-300);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return scale * d * v;
    }
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

double Rng::beta(double a, double b) {
  DTMSV_EXPECTS(a > 0.0 && b > 0.0);
  const double x = gamma(a, 1.0);
  const double y = gamma(b, 1.0);
  return x / (x + y);
}

std::size_t Rng::categorical(std::span<const double> weights) {
  DTMSV_EXPECTS(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    DTMSV_EXPECTS_MSG(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  DTMSV_EXPECTS_MSG(total > 0.0, "categorical weights must not all be zero");
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // numeric edge: landed exactly on total
}

std::vector<double> Rng::dirichlet(std::span<const double> alpha) {
  DTMSV_EXPECTS(!alpha.empty());
  std::vector<double> out(alpha.size());
  double total = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    DTMSV_EXPECTS(alpha[i] > 0.0);
    out[i] = gamma(alpha[i], 1.0);
    total += out[i];
  }
  if (total <= 0.0) {  // pathological underflow: fall back to uniform
    std::fill(out.begin(), out.end(), 1.0 / static_cast<double>(out.size()));
    return out;
  }
  for (double& v : out) {
    v /= total;
  }
  return out;
}

std::size_t Rng::zipf(std::size_t n, double s) {
  DTMSV_EXPECTS(n > 0);
  DTMSV_EXPECTS(s >= 0.0);
  // Direct inversion on the CDF; fine for the catalog sizes we simulate.
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
  }
  double draw = uniform() * total;
  for (std::size_t k = 0; k < n; ++k) {
    draw -= 1.0 / std::pow(static_cast<double>(k + 1), s);
    if (draw < 0.0) {
      return k;
    }
  }
  return n - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  DTMSV_EXPECTS(k <= n);
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  // Partial Fisher–Yates: first k entries are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent) {
  DTMSV_EXPECTS(n > 0);
  DTMSV_EXPECTS(exponent >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfDistribution::pmf(std::size_t k) const {
  DTMSV_EXPECTS(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace dtmsv::util
