// Cluster quality metrics used both as DDQN reward signal and for the
// clustering ablation bench.
#pragma once

#include <vector>

#include "clustering/kmeans.hpp"

namespace dtmsv::clustering {

/// Mean silhouette coefficient in [-1, 1]; higher is better. Points in
/// singleton clusters contribute 0 (scikit-learn convention). Requires at
/// least 2 clusters with members; returns 0 otherwise.
double silhouette(const Points& points, const std::vector<std::size_t>& assignment);

/// Davies–Bouldin index (>= 0; lower is better). Returns 0 for fewer than
/// 2 non-empty clusters.
double davies_bouldin(const Points& points, const std::vector<std::size_t>& assignment);

/// Within-cluster sum of squared distances to centroids.
double inertia(const Points& points, const Points& centroids,
               const std::vector<std::size_t>& assignment);

/// Calinski–Harabasz score (>= 0; higher is better). Returns 0 when not
/// defined (k < 2 or k >= n).
double calinski_harabasz(const Points& points, const std::vector<std::size_t>& assignment);

}  // namespace dtmsv::clustering
