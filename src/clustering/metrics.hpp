// Cluster quality metrics used both as DDQN reward signal and for the
// clustering ablation bench.
#pragma once

#include <vector>

#include "clustering/kmeans.hpp"
#include "util/rng.hpp"

namespace dtmsv::clustering {

/// Default sample cap for silhouette_sampled call sites (K selection,
/// DDQN reward): below this many points the metric is exact, above it
/// the cost is bounded at O(cap · n). One knob — the group constructor's
/// config and the sweep selector both default to it.
inline constexpr std::size_t kDefaultSilhouetteSampleCap = 2048;

/// Mean silhouette coefficient in [-1, 1]; higher is better. Points in
/// singleton clusters contribute 0 (scikit-learn convention). Requires at
/// least 2 clusters with members; returns 0 otherwise.
double silhouette(const Points& points, const std::vector<std::size_t>& assignment);

/// Silhouette estimated from at most `max_samples` points drawn without
/// replacement (each sample still measures distances to every point, so
/// the cost is O(max_samples · n) instead of O(n²)). When max_samples >=
/// points.size() this is exactly silhouette() and draws nothing from rng,
/// so small inputs stay deterministic across sampled/exact call sites.
double silhouette_sampled(const Points& points,
                          const std::vector<std::size_t>& assignment,
                          std::size_t max_samples, util::Rng& rng);

/// Davies–Bouldin index (>= 0; lower is better). Returns 0 for fewer than
/// 2 non-empty clusters.
double davies_bouldin(const Points& points, const std::vector<std::size_t>& assignment);

/// Within-cluster sum of squared distances to centroids.
double inertia(const Points& points, const Points& centroids,
               const std::vector<std::size_t>& assignment);

/// Calinski–Harabasz score (>= 0; higher is better). Returns 0 when not
/// defined (k < 2 or k >= n).
double calinski_harabasz(const Points& points, const std::vector<std::size_t>& assignment);

}  // namespace dtmsv::clustering
