#include "clustering/point_matrix.hpp"

#include <algorithm>

namespace dtmsv::clustering {

PointMatrix::PointMatrix(std::size_t rows, std::size_t dim)
    : rows_(rows), dim_(dim), data_(rows * dim, 0.0) {
  DTMSV_EXPECTS_MSG(dim > 0, "PointMatrix: zero-dimensional points");
}

PointMatrix::PointMatrix(std::size_t rows, std::size_t dim, std::vector<double> values)
    : rows_(rows), dim_(dim), data_(std::move(values)) {
  DTMSV_EXPECTS_MSG(dim > 0, "PointMatrix: zero-dimensional points");
  DTMSV_EXPECTS_MSG(data_.size() == rows * dim,
                    "PointMatrix: value count does not match rows*dim");
}

PointMatrix::PointMatrix(std::size_t rows, const std::vector<double>& point)
    : rows_(rows), dim_(point.size()), data_(rows * point.size()) {
  DTMSV_EXPECTS_MSG(dim_ > 0, "PointMatrix: zero-dimensional points");
  for (std::size_t i = 0; i < rows; ++i) {
    std::copy(point.begin(), point.end(), data_.begin() + static_cast<std::ptrdiff_t>(i * dim_));
  }
}

PointMatrix::PointMatrix(std::initializer_list<std::initializer_list<double>> rows) {
  data_.reserve(rows.size() * (rows.size() > 0 ? rows.begin()->size() : 0));
  for (const auto& r : rows) {
    push_back(std::span<const double>(r.begin(), r.size()));
  }
}

PointMatrix::PointMatrix(const std::vector<std::vector<double>>& rows) {
  if (!rows.empty()) {
    data_.reserve(rows.size() * rows.front().size());
  }
  for (const auto& r : rows) {
    push_back(r);
  }
}

void PointMatrix::reserve(std::size_t rows) {
  reserve_rows_ = rows;
  if (dim_ > 0) {
    data_.reserve(rows * dim_);
  }
}

void PointMatrix::clear() {
  rows_ = 0;
  data_.clear();
}

void PointMatrix::push_back(std::span<const double> point) {
  if (rows_ == 0 && dim_ == 0) {
    DTMSV_EXPECTS_MSG(!point.empty(), "PointMatrix: zero-dimensional points");
    dim_ = point.size();
    if (reserve_rows_ > 0) {
      data_.reserve(reserve_rows_ * dim_);
    }
  }
  DTMSV_EXPECTS_MSG(point.size() == dim_, "PointMatrix: inconsistent dimensionality");
  data_.insert(data_.end(), point.begin(), point.end());
  ++rows_;
}

std::span<double> PointMatrix::append_row() {
  DTMSV_EXPECTS_MSG(dim_ > 0, "PointMatrix: dimensionality not yet fixed");
  data_.resize(data_.size() + dim_, 0.0);
  ++rows_;
  return (*this)[rows_ - 1];
}

std::span<double> PointMatrix::operator[](std::size_t i) {
  DTMSV_EXPECTS(i < rows_);
  return {data_.data() + i * dim_, dim_};
}

std::span<const double> PointMatrix::operator[](std::size_t i) const {
  DTMSV_EXPECTS(i < rows_);
  return {data_.data() + i * dim_, dim_};
}

bool PointMatrix::contains(std::span<const double> point) const {
  if (point.size() != dim_) {
    return false;
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    if (std::equal(point.begin(), point.end(), data_.begin() + static_cast<std::ptrdiff_t>(i * dim_))) {
      return true;
    }
  }
  return false;
}

void PointMatrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

}  // namespace dtmsv::clustering
