// Backend-templated k-means kernels, shared by the Lloyd loop in
// kmeans.cpp (instantiated on the build's default SIMD backend) and by the
// backend-equivalence tests (which instantiate every backend the binary
// was compiled for and assert bit-identical results).
//
// Vectorisation layout: lanes are *centroids*. Centroids are transposed
// into dim-major lane rows (padded with +inf so dead lanes never win),
// and lane c accumulates point-to-centroid-c squared distance as the
// exact madd chain over dimensions the scalar backend would run — same
// order, same fusion regime. The argmin is a scalar strict-< scan over
// the stored per-centroid distances (lowest index wins, NaN distances
// never compare less so they are skipped), identical on every backend.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/simd.hpp"

namespace dtmsv::clustering::kernels {

/// Squared Euclidean distance between two contiguous rows, accumulated as
/// an ascending-dimension madd chain — the scalar reference every lane of
/// the assign kernel reproduces.
inline double row_sq_dist(const double* a, const double* b, std::size_t dim) {
  double total = 0.0;
  for (std::size_t d = 0; d < dim; ++d) {
    const double diff = a[d] - b[d];
    total = util::simd::madd(diff, diff, total);
  }
  return total;
}

/// Branchless strict-< argmin over the first k stored distances: lowest
/// index wins, NaN entries never compare less and are skipped. Written as
/// conditional selects rather than compare-and-branch — centroids move
/// every Lloyd iteration, so a branchy scan mispredicts its way through
/// the pass in situ even though it looks fine in steady-state microbenches.
inline std::size_t argmin_scan(const double* dist, std::size_t k) {
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const double dc = dist[c];
    const bool lt = dc < best;
    best = lt ? dc : best;
    best_idx = lt ? c : best_idx;
  }
  return best_idx;
}

/// Register-resident specialisation of the fused assign+accumulate pass
/// for the paper shape: 8-d CNN embeddings, k <= GROUPS lane groups. The
/// transposed centroid lanes live in GROUPS x 8 packs for the entire pass
/// and each point's search is 8 broadcast-sub-madd steps per group — no
/// centroid memory traffic inside the point loop. Chains and tie-breaking
/// are exactly the generic kernel's, so the two paths (and every backend)
/// agree bit-for-bit.
template <typename Backend, std::size_t GROUPS>
bool assign_accumulate_d8(const double* pts, std::size_t n,
                          const double* cents, std::size_t k,
                          std::size_t* assignment, double* sums,
                          std::size_t* counts) {
  using P = util::simd::pack<double, Backend>;
  constexpr std::size_t W = P::width;
  constexpr std::size_t DIM = 8;

  // Transpose + pad into lane rows (+inf beyond k so dead lanes never
  // win), then lift them into packs the compiler can keep in registers.
  double tr[DIM * GROUPS * W];
  std::fill(tr, tr + DIM * GROUPS * W,
            std::numeric_limits<double>::infinity());
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t d = 0; d < DIM; ++d) {
      tr[d * GROUPS * W + c] = cents[c * DIM + d];
    }
  }
  P trows[GROUPS][DIM];
  for (std::size_t g = 0; g < GROUPS; ++g) {
    for (std::size_t d = 0; d < DIM; ++d) {
      trows[g][d] = P::load(tr + d * GROUPS * W + g * W);
    }
  }

  std::size_t nchanged = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* p = pts + i * DIM;
    P acc[GROUPS];
    for (std::size_t g = 0; g < GROUPS; ++g) {
      acc[g] = P::zero();
    }
    for (std::size_t d = 0; d < DIM; ++d) {
      const P pv = P::broadcast(p[d]);
      for (std::size_t g = 0; g < GROUPS; ++g) {
        const P x = pv - trows[g][d];
        acc[g] = P::madd(x, x, acc[g]);
      }
    }
    // Resolve the argmin in registers: per-group min-reduce, then the
    // lowest lane attaining it via the EQ-mask ctz (group order is
    // ascending and later groups only win on strict <, so ties resolve to
    // the lowest index — exactly argmin_scan's semantics). Vector min
    // propagation is operand-order-dependent under NaN, so any NaN lane
    // routes the point through the stored-distance scalar scan instead,
    // which skips NaN like the pre-SIMD implementation did.
    unsigned nan_lanes = 0;
    for (std::size_t g = 0; g < GROUPS; ++g) {
      nan_lanes |= acc[g].unord_mask();
    }
    std::size_t best_idx;
    if (nan_lanes != 0) {
      double dist[GROUPS * W];
      for (std::size_t g = 0; g < GROUPS; ++g) {
        acc[g].store(dist + g * W);
      }
      best_idx = argmin_scan(dist, k);
    } else {
      double best = acc[0].reduce_min();
      best_idx = static_cast<std::size_t>(std::countr_zero(acc[0].eq_mask(best)));
      for (std::size_t g = 1; g < GROUPS; ++g) {
        const double m = acc[g].reduce_min();
        if (m < best) {
          best = m;
          best_idx =
              g * W + static_cast<std::size_t>(std::countr_zero(acc[g].eq_mask(m)));
        }
      }
    }

    nchanged += static_cast<std::size_t>(assignment[i] != best_idx);
    assignment[i] = best_idx;
    ++counts[best_idx];
    util::simd::add_rows<Backend>(sums + best_idx * DIM, p, DIM);
  }
  return nchanged != 0;
}

/// Fused assignment + accumulation pass of one Lloyd iteration over raw
/// rows: finds each point's nearest centroid and immediately folds the
/// point into its cluster's running sum and count while the row is still
/// hot. Returns true when any assignment changed. `sums` must hold k*dim
/// zeros-or-carried values, `counts` k entries; n == 0 is a no-op.
template <typename Backend>
bool assign_accumulate(const double* pts, std::size_t n, std::size_t dim,
                       const double* cents, std::size_t k,
                       std::size_t* assignment, double* sums,
                       std::size_t* counts) {
  {
    using P = util::simd::pack<double, Backend>;
    // The paper pipeline's shape (8-d embeddings, K in [2, 12]) gets the
    // register-resident kernel; unusual shapes take the generic loop
    // below. Both produce identical bits, so the cutoff is purely perf.
    if (dim == 8 && k <= P::width) {
      return assign_accumulate_d8<Backend, 1>(pts, n, cents, k, assignment,
                                              sums, counts);
    }
    if (dim == 8 && k <= 2 * P::width) {
      return assign_accumulate_d8<Backend, 2>(pts, n, cents, k, assignment,
                                              sums, counts);
    }
  }
  using P = util::simd::pack<double, Backend>;
  constexpr std::size_t W = P::width;
  const std::size_t groups = (k + W - 1) / W;
  const std::size_t padded_k = groups * W;

  // Transpose + pad: trows[d * padded_k + c] = component d of centroid c,
  // +inf beyond k so padded lanes never win the scan.
  std::vector<double> trows(dim * padded_k,
                            std::numeric_limits<double>::infinity());
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t d = 0; d < dim; ++d) {
      trows[d * padded_k + c] = cents[c * dim + d];
    }
  }

  std::vector<double> dist(padded_k);
  std::size_t nchanged = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* p = pts + i * dim;

    // Per-centroid squared distances, one madd chain per lane. Two lane
    // groups run interleaved so their fma chains overlap (the chain over
    // dimensions is latency-bound; centroid positions move every Lloyd
    // iteration, so a branchy argmin inside this loop mispredicts — all
    // comparisons are deferred to the scan below).
    std::size_t g = 0;
    for (; g + 2 <= groups; g += 2) {
      P acc0 = P::zero();
      P acc1 = P::zero();
      for (std::size_t d = 0; d < dim; ++d) {
        const P pv = P::broadcast(p[d]);
        const P x0 = pv - P::load(trows.data() + d * padded_k + g * W);
        const P x1 = pv - P::load(trows.data() + d * padded_k + (g + 1) * W);
        acc0 = P::madd(x0, x0, acc0);
        acc1 = P::madd(x1, x1, acc1);
      }
      acc0.store(dist.data() + g * W);
      acc1.store(dist.data() + (g + 1) * W);
    }
    for (; g < groups; ++g) {
      P acc = P::zero();
      for (std::size_t d = 0; d < dim; ++d) {
        const P pv = P::broadcast(p[d]);
        const P x = pv - P::load(trows.data() + d * padded_k + g * W);
        acc = P::madd(x, x, acc);
      }
      acc.store(dist.data() + g * W);
    }

    const std::size_t best_idx = argmin_scan(dist.data(), k);

    nchanged += static_cast<std::size_t>(assignment[i] != best_idx);
    assignment[i] = best_idx;
    ++counts[best_idx];
    util::simd::add_rows<Backend>(sums + best_idx * dim, p, dim);
  }
  return nchanged != 0;
}

}  // namespace dtmsv::clustering::kernels
