#include "clustering/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace dtmsv::clustering {

namespace {

std::size_t cluster_count_of(const std::vector<std::size_t>& assignment) {
  std::size_t k = 0;
  for (const std::size_t a : assignment) {
    k = std::max(k, a + 1);
  }
  return k;
}

Points centroids_of(const Points& points, const std::vector<std::size_t>& assignment,
                    std::size_t k, std::vector<std::size_t>& counts) {
  const std::size_t dim = points.front().size();
  Points centroids(k, std::vector<double>(dim, 0.0));
  counts.assign(k, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::size_t c = assignment[i];
    ++counts[c];
    for (std::size_t d = 0; d < dim; ++d) {
      centroids[c][d] += points[i][d];
    }
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] > 0) {
      for (double& v : centroids[c]) {
        v /= static_cast<double>(counts[c]);
      }
    }
  }
  return centroids;
}

}  // namespace

double silhouette(const Points& points, const std::vector<std::size_t>& assignment) {
  DTMSV_EXPECTS(points.size() == assignment.size());
  if (points.empty()) {
    return 0.0;
  }
  const std::size_t k = cluster_count_of(assignment);
  std::vector<std::size_t> sizes(k, 0);
  for (const std::size_t a : assignment) {
    ++sizes[a];
  }
  const auto non_empty =
      static_cast<std::size_t>(std::count_if(sizes.begin(), sizes.end(),
                                             [](std::size_t s) { return s > 0; }));
  if (non_empty < 2) {
    return 0.0;
  }

  double total = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::size_t own = assignment[i];
    if (sizes[own] <= 1) {
      continue;  // contributes 0
    }
    // Mean distance to own cluster (a) and nearest other cluster (b).
    std::vector<double> dist_sum(k, 0.0);
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == i) {
        continue;
      }
      dist_sum[assignment[j]] += distance(points[i], points[j]);
    }
    const double a = dist_sum[own] / static_cast<double>(sizes[own] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == own || sizes[c] == 0) {
        continue;
      }
      b = std::min(b, dist_sum[c] / static_cast<double>(sizes[c]));
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) {
      total += (b - a) / denom;
    }
  }
  return total / static_cast<double>(points.size());
}

double davies_bouldin(const Points& points, const std::vector<std::size_t>& assignment) {
  DTMSV_EXPECTS(points.size() == assignment.size());
  if (points.empty()) {
    return 0.0;
  }
  const std::size_t k = cluster_count_of(assignment);
  std::vector<std::size_t> counts;
  const Points centroids = centroids_of(points, assignment, k, counts);

  // Mean intra-cluster scatter per cluster.
  std::vector<double> scatter(k, 0.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    scatter[assignment[i]] += distance(points[i], centroids[assignment[i]]);
  }
  std::vector<std::size_t> live;
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] > 0) {
      scatter[c] /= static_cast<double>(counts[c]);
      live.push_back(c);
    }
  }
  if (live.size() < 2) {
    return 0.0;
  }

  double total = 0.0;
  for (const std::size_t ci : live) {
    double worst = 0.0;
    for (const std::size_t cj : live) {
      if (ci == cj) {
        continue;
      }
      const double sep = distance(centroids[ci], centroids[cj]);
      if (sep > 0.0) {
        worst = std::max(worst, (scatter[ci] + scatter[cj]) / sep);
      }
    }
    total += worst;
  }
  return total / static_cast<double>(live.size());
}

double inertia(const Points& points, const Points& centroids,
               const std::vector<std::size_t>& assignment) {
  DTMSV_EXPECTS(points.size() == assignment.size());
  double total = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    DTMSV_EXPECTS(assignment[i] < centroids.size());
    total += squared_distance(points[i], centroids[assignment[i]]);
  }
  return total;
}

double calinski_harabasz(const Points& points, const std::vector<std::size_t>& assignment) {
  DTMSV_EXPECTS(points.size() == assignment.size());
  const std::size_t n = points.size();
  if (n == 0) {
    return 0.0;
  }
  const std::size_t k = cluster_count_of(assignment);
  std::vector<std::size_t> counts;
  const Points centroids = centroids_of(points, assignment, k, counts);
  const auto live = static_cast<std::size_t>(
      std::count_if(counts.begin(), counts.end(), [](std::size_t c) { return c > 0; }));
  if (live < 2 || live >= n) {
    return 0.0;
  }

  const std::size_t dim = points.front().size();
  std::vector<double> global(dim, 0.0);
  for (const auto& p : points) {
    for (std::size_t d = 0; d < dim; ++d) {
      global[d] += p[d];
    }
  }
  for (double& v : global) {
    v /= static_cast<double>(n);
  }

  double between = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) {
      continue;
    }
    between += static_cast<double>(counts[c]) * squared_distance(centroids[c], global);
  }
  double within = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    within += squared_distance(points[i], centroids[assignment[i]]);
  }
  if (within <= 0.0) {
    return 0.0;
  }
  return (between / static_cast<double>(live - 1)) /
         (within / static_cast<double>(n - live));
}

}  // namespace dtmsv::clustering
