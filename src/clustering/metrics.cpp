#include "clustering/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace dtmsv::clustering {

namespace {

std::size_t cluster_count_of(const std::vector<std::size_t>& assignment) {
  std::size_t k = 0;
  for (const std::size_t a : assignment) {
    k = std::max(k, a + 1);
  }
  return k;
}

Points centroids_of(const Points& points, const std::vector<std::size_t>& assignment,
                    std::size_t k, std::vector<std::size_t>& counts) {
  const std::size_t dim = points.dim();
  const double* pts = points.data();
  Points centroids(k, dim);
  double* cents = centroids.data();
  counts.assign(k, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::size_t c = assignment[i];
    ++counts[c];
    const double* prow = pts + i * dim;
    double* crow = cents + c * dim;
    for (std::size_t d = 0; d < dim; ++d) {
      crow[d] += prow[d];
    }
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] > 0) {
      double* crow = cents + c * dim;
      for (std::size_t d = 0; d < dim; ++d) {
        crow[d] /= static_cast<double>(counts[c]);
      }
    }
  }
  return centroids;
}

inline double row_dist(const double* a, const double* b, std::size_t dim) {
  double total = 0.0;
  for (std::size_t d = 0; d < dim; ++d) {
    const double diff = a[d] - b[d];
    total += diff * diff;
  }
  return std::sqrt(total);
}

/// Silhouette contribution of point `i`, or 0 for singleton clusters.
/// dist_sum is a reusable k-sized scratch buffer.
double silhouette_of_point(const Points& points,
                           const std::vector<std::size_t>& assignment,
                           const std::vector<std::size_t>& sizes, std::size_t i,
                           std::vector<double>& dist_sum) {
  const std::size_t own = assignment[i];
  if (sizes[own] <= 1) {
    return 0.0;
  }
  const std::size_t dim = points.dim();
  const double* pts = points.data();
  const double* pi = pts + i * dim;
  std::fill(dist_sum.begin(), dist_sum.end(), 0.0);
  for (std::size_t j = 0; j < points.size(); ++j) {
    if (j == i) {
      continue;
    }
    dist_sum[assignment[j]] += row_dist(pi, pts + j * dim, dim);
  }
  const double a = dist_sum[own] / static_cast<double>(sizes[own] - 1);
  double b = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < dist_sum.size(); ++c) {
    if (c == own || sizes[c] == 0) {
      continue;
    }
    b = std::min(b, dist_sum[c] / static_cast<double>(sizes[c]));
  }
  const double denom = std::max(a, b);
  return denom > 0.0 ? (b - a) / denom : 0.0;
}

std::vector<std::size_t> cluster_sizes_of(const std::vector<std::size_t>& assignment,
                                          std::size_t k) {
  std::vector<std::size_t> sizes(k, 0);
  for (const std::size_t a : assignment) {
    ++sizes[a];
  }
  return sizes;
}

bool fewer_than_two_live(const std::vector<std::size_t>& sizes) {
  const auto non_empty = static_cast<std::size_t>(
      std::count_if(sizes.begin(), sizes.end(), [](std::size_t s) { return s > 0; }));
  return non_empty < 2;
}

}  // namespace

double silhouette(const Points& points, const std::vector<std::size_t>& assignment) {
  DTMSV_EXPECTS(points.size() == assignment.size());
  if (points.empty()) {
    return 0.0;
  }
  const std::size_t k = cluster_count_of(assignment);
  const std::vector<std::size_t> sizes = cluster_sizes_of(assignment, k);
  if (fewer_than_two_live(sizes)) {
    return 0.0;
  }

  double total = 0.0;
  std::vector<double> dist_sum(k);
  for (std::size_t i = 0; i < points.size(); ++i) {
    total += silhouette_of_point(points, assignment, sizes, i, dist_sum);
  }
  return total / static_cast<double>(points.size());
}

double silhouette_sampled(const Points& points,
                          const std::vector<std::size_t>& assignment,
                          std::size_t max_samples, util::Rng& rng) {
  DTMSV_EXPECTS(points.size() == assignment.size());
  DTMSV_EXPECTS_MSG(max_samples >= 1, "silhouette_sampled: need at least one sample");
  if (max_samples >= points.size()) {
    return silhouette(points, assignment);
  }
  const std::size_t k = cluster_count_of(assignment);
  const std::vector<std::size_t> sizes = cluster_sizes_of(assignment, k);
  if (fewer_than_two_live(sizes)) {
    return 0.0;
  }

  const std::vector<std::size_t> samples =
      rng.sample_without_replacement(points.size(), max_samples);
  double total = 0.0;
  std::vector<double> dist_sum(k);
  for (const std::size_t i : samples) {
    total += silhouette_of_point(points, assignment, sizes, i, dist_sum);
  }
  return total / static_cast<double>(samples.size());
}

double davies_bouldin(const Points& points, const std::vector<std::size_t>& assignment) {
  DTMSV_EXPECTS(points.size() == assignment.size());
  if (points.empty()) {
    return 0.0;
  }
  const std::size_t k = cluster_count_of(assignment);
  std::vector<std::size_t> counts;
  const Points centroids = centroids_of(points, assignment, k, counts);

  // Mean intra-cluster scatter per cluster.
  const std::size_t dim = points.dim();
  const double* pts = points.data();
  const double* cents = centroids.data();
  std::vector<double> scatter(k, 0.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    scatter[assignment[i]] += row_dist(pts + i * dim, cents + assignment[i] * dim, dim);
  }
  std::vector<std::size_t> live;
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] > 0) {
      scatter[c] /= static_cast<double>(counts[c]);
      live.push_back(c);
    }
  }
  if (live.size() < 2) {
    return 0.0;
  }

  double total = 0.0;
  for (const std::size_t ci : live) {
    double worst = 0.0;
    for (const std::size_t cj : live) {
      if (ci == cj) {
        continue;
      }
      const double sep = row_dist(cents + ci * dim, cents + cj * dim, dim);
      if (sep > 0.0) {
        worst = std::max(worst, (scatter[ci] + scatter[cj]) / sep);
      }
    }
    total += worst;
  }
  return total / static_cast<double>(live.size());
}

double inertia(const Points& points, const Points& centroids,
               const std::vector<std::size_t>& assignment) {
  DTMSV_EXPECTS(points.size() == assignment.size());
  double total = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    DTMSV_EXPECTS(assignment[i] < centroids.size());
    total += squared_distance(points[i], centroids[assignment[i]]);
  }
  return total;
}

double calinski_harabasz(const Points& points, const std::vector<std::size_t>& assignment) {
  DTMSV_EXPECTS(points.size() == assignment.size());
  const std::size_t n = points.size();
  if (n == 0) {
    return 0.0;
  }
  const std::size_t k = cluster_count_of(assignment);
  std::vector<std::size_t> counts;
  const Points centroids = centroids_of(points, assignment, k, counts);
  const auto live = static_cast<std::size_t>(
      std::count_if(counts.begin(), counts.end(), [](std::size_t c) { return c > 0; }));
  if (live < 2 || live >= n) {
    return 0.0;
  }

  const std::size_t dim = points.dim();
  const double* pts = points.data();
  std::vector<double> global(dim, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* prow = pts + i * dim;
    for (std::size_t d = 0; d < dim; ++d) {
      global[d] += prow[d];
    }
  }
  for (double& v : global) {
    v /= static_cast<double>(n);
  }

  double between = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) {
      continue;
    }
    between += static_cast<double>(counts[c]) *
               squared_distance(centroids[c], std::span<const double>(global));
  }
  double within = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    within += squared_distance(points[i], centroids[assignment[i]]);
  }
  if (within <= 0.0) {
    return 0.0;
  }
  return (between / static_cast<double>(live - 1)) /
         (within / static_cast<double>(n - live));
}

}  // namespace dtmsv::clustering
