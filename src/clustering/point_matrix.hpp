// Flat row-major point storage for the clustering layer.
//
// The seed stored point sets as vector<vector<double>> — one heap block
// per point, so every distance computation chased a pointer and k-means
// walked the allocator instead of the cache. PointMatrix keeps all points
// in one contiguous buffer and hands out std::span row views; rows of a
// matrix vectorise, and copying/building a point set is one allocation.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace dtmsv::clustering {

/// A set of equal-dimension points stored contiguously, row-major.
/// Dimensionality is fixed by the first row appended (or the constructor)
/// and enforced on every subsequent append.
class PointMatrix {
 public:
  /// Empty set; dimensionality set by the first push_back.
  PointMatrix() = default;

  /// `rows` zero-initialised points of dimension `dim` (> 0).
  PointMatrix(std::size_t rows, std::size_t dim);

  /// Takes ownership of a row-major buffer (values.size() == rows*dim).
  PointMatrix(std::size_t rows, std::size_t dim, std::vector<double> values);

  /// `rows` copies of one point (the seed's (count, row) vector idiom).
  PointMatrix(std::size_t rows, const std::vector<double>& point);

  /// Literal point set; rows must agree in dimension.
  PointMatrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Copies a nested-vector point set (bridge for legacy producers).
  explicit PointMatrix(const std::vector<std::vector<double>>& rows);

  std::size_t size() const { return rows_; }
  std::size_t dim() const { return dim_; }
  bool empty() const { return rows_ == 0; }

  /// Pre-allocates for `rows` points (applied once dimensionality is known).
  void reserve(std::size_t rows);
  void clear();

  /// Appends a point; fixes the dimensionality on the first call.
  void push_back(std::span<const double> point);
  void push_back(std::initializer_list<double> point) {
    push_back(std::span<const double>(point.begin(), point.size()));
  }
  /// Appends a zero point and returns a mutable view of it.
  std::span<double> append_row();

  std::span<double> operator[](std::size_t i);
  std::span<const double> operator[](std::size_t i) const;
  std::span<double> row(std::size_t i) { return (*this)[i]; }
  std::span<const double> row(std::size_t i) const { return (*this)[i]; }

  /// True when some row equals `point` elementwise.
  bool contains(std::span<const double> point) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  /// The whole buffer, row-major.
  std::span<const double> values() const { return data_; }

  void fill(double value);

  friend bool operator==(const PointMatrix& a, const PointMatrix& b) {
    return a.rows_ == b.rows_ && a.dim_ == b.dim_ && a.data_ == b.data_;
  }

  /// Forward iterator over const row views (enables range-for).
  class const_iterator {
   public:
    using value_type = std::span<const double>;
    using difference_type = std::ptrdiff_t;

    const_iterator() = default;
    const_iterator(const double* p, std::size_t dim) : p_(p), dim_(dim) {}

    value_type operator*() const { return {p_, dim_}; }
    const_iterator& operator++() {
      p_ += dim_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++*this;
      return old;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.p_ == b.p_;
    }

   private:
    const double* p_ = nullptr;
    std::size_t dim_ = 0;
  };

  const_iterator begin() const { return {data_.data(), dim_}; }
  const_iterator end() const { return {data_.data() + rows_ * dim_, dim_}; }

 private:
  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  std::size_t reserve_rows_ = 0;  // hint recorded before dim_ is known
  std::vector<double> data_;
};

}  // namespace dtmsv::clustering
