// Grouping-number (K) selection strategies. The paper's contribution uses a
// DDQN (see core/group_constructor.hpp); the strategies here are the
// baselines the ablation bench compares against, behind one interface.
#pragma once

#include <memory>
#include <string>

#include "clustering/kmeans.hpp"
#include "clustering/metrics.hpp"

namespace dtmsv::clustering {

/// Strategy interface: given the points to cluster, choose K.
class KSelector {
 public:
  virtual ~KSelector() = default;
  KSelector() = default;
  KSelector(const KSelector&) = delete;
  KSelector& operator=(const KSelector&) = delete;

  /// Chooses a grouping number in [1, points.size()].
  virtual std::size_t select_k(const Points& points, util::Rng& rng) = 0;
  virtual std::string name() const = 0;
};

/// Always returns the configured K (clamped to the point count).
class FixedKSelector final : public KSelector {
 public:
  explicit FixedKSelector(std::size_t k);
  std::size_t select_k(const Points& points, util::Rng& rng) override;
  std::string name() const override;

 private:
  std::size_t k_;
};

/// Classic elbow heuristic: runs K-means for each K in [k_min, k_max] and
/// picks the K with the largest second difference ("knee") of inertia.
class ElbowKSelector final : public KSelector {
 public:
  ElbowKSelector(std::size_t k_min, std::size_t k_max);
  std::size_t select_k(const Points& points, util::Rng& rng) override;
  std::string name() const override { return "elbow"; }

 private:
  std::size_t k_min_;
  std::size_t k_max_;
};

/// Silhouette sweep: picks the K in [k_min, k_max] with best silhouette.
/// The "slow oracle" the DDQN approximates; beyond `sample_cap` points
/// the silhouette is estimated from a sample so the sweep stays
/// O(range · cap · n) instead of O(range · n²).
class SilhouetteSweepSelector final : public KSelector {
 public:
  SilhouetteSweepSelector(std::size_t k_min, std::size_t k_max,
                          std::size_t sample_cap = kDefaultSilhouetteSampleCap);
  std::size_t select_k(const Points& points, util::Rng& rng) override;
  std::string name() const override { return "silhouette-sweep"; }

 private:
  std::size_t k_min_;
  std::size_t k_max_;
  std::size_t sample_cap_;
};

/// Uniform-random K in [k_min, k_max] (lower-bound baseline).
class RandomKSelector final : public KSelector {
 public:
  RandomKSelector(std::size_t k_min, std::size_t k_max);
  std::size_t select_k(const Points& points, util::Rng& rng) override;
  std::string name() const override { return "random"; }

 private:
  std::size_t k_min_;
  std::size_t k_max_;
};

}  // namespace dtmsv::clustering
