#include "clustering/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "clustering/kmeans_kernels.hpp"
#include "util/error.hpp"

namespace dtmsv::clustering {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  DTMSV_EXPECTS(a.size() == b.size());
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

double distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

std::vector<std::size_t> KMeansResult::members_of(std::size_t cluster) const {
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] == cluster) {
      members.push_back(i);
    }
  }
  return members;
}

std::vector<std::size_t> KMeansResult::cluster_sizes() const {
  std::vector<std::size_t> sizes(centroids.size(), 0);
  for (const std::size_t a : assignment) {
    ++sizes[a];
  }
  return sizes;
}

namespace {

// All k-means-internal distance users share the kernel-layer madd chain
// (kernels::row_sq_dist), which is what every lane of the vectorised
// assign pass reproduces — assignments, re-seeding, and inertia stay
// mutually consistent on every backend. The portable kernel replaced the
// old hand-rolled AVX-512 dim==8/k<=16 special case (and its tree
// reduction + GCC pragma workaround): it handles any dim/k, and its
// per-centroid distances follow the same ascending-dimension chain as the
// scalar scan, so results no longer depend on the point shape.
using kernels::row_sq_dist;

void validate_points(const Points& points) {
  DTMSV_EXPECTS_MSG(!points.empty(), "k-means: empty point set");
  DTMSV_EXPECTS_MSG(points.dim() > 0, "k-means: zero-dimensional points");
}

/// Fused assignment + accumulation pass of one Lloyd iteration on the
/// build's default SIMD backend (lanes = centroids; see kmeans_kernels.hpp
/// for the layout and the bit-identity argument).
bool assign_accumulate(const Points& points, const Points& centroids,
                       std::size_t* assignment, double* sums,
                       std::size_t* counts) {
  return kernels::assign_accumulate<util::simd::default_backend>(
      points.data(), points.size(), points.dim(), centroids.data(),
      centroids.size(), assignment, sums, counts);
}

KMeansResult run_single(const Points& points, std::size_t k, util::Rng& rng,
                        const KMeansOptions& options) {
  const std::size_t dim = points.dim();
  const std::size_t n = points.size();
  const double* pts = points.data();
  KMeansResult result;
  result.centroids = kmeans_plus_plus_init(points, k, rng);
  result.assignment.assign(n, 0);

  Points next(k, dim);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Fused assignment + cluster-sum accumulation.
    next.fill(0.0);
    counts.assign(k, 0);
    double* nx = next.data();
    bool changed = assign_accumulate(points, result.centroids,
                                     result.assignment.data(), nx, counts.data());

    // Finish the update step: means, and re-seeding of empty clusters.
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with the point farthest from its centroid.
        std::size_t farthest = 0;
        double farthest_d = -1.0;
        const double* cents = result.centroids.data();
        for (std::size_t i = 0; i < n; ++i) {
          const double d =
              row_sq_dist(pts + i * dim, cents + result.assignment[i] * dim, dim);
          if (d > farthest_d) {
            farthest_d = d;
            farthest = i;
          }
        }
        std::copy(pts + farthest * dim, pts + (farthest + 1) * dim, nx + c * dim);
        result.assignment[farthest] = c;
        changed = true;
        continue;
      }
      double* crow = nx + c * dim;
      for (std::size_t d = 0; d < dim; ++d) {
        crow[d] /= static_cast<double>(counts[c]);
      }
    }

    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      movement += distance(result.centroids[c], next[c]);
    }
    std::swap(result.centroids, next);

    if (!changed || movement < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.inertia = 0.0;
  const double* cents = result.centroids.data();
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia += row_sq_dist(pts + i * dim, cents + result.assignment[i] * dim, dim);
  }
  return result;
}

}  // namespace

Points kmeans_plus_plus_init(const Points& points, std::size_t k, util::Rng& rng) {
  validate_points(points);
  DTMSV_EXPECTS_MSG(k >= 1 && k <= points.size(), "k-means++: k out of range");
  const std::size_t n = points.size();
  const std::size_t dim = points.dim();
  const double* pts = points.data();

  Points centroids;
  centroids.reserve(k);
  centroids.push_back(
      points[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))]);

  // D² distances to the nearest chosen centroid, maintained incrementally:
  // each round only the newest centroid can lower a point's distance, which
  // turns the seed's O(k²·n) rescans into O(k·n) with identical values.
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    const double* newest = centroids[centroids.size() - 1].data();
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = row_sq_dist(pts + i * dim, newest, dim);
      if (d < d2[i]) {
        d2[i] = d;
      }
      total += d2[i];
    }
    std::size_t chosen = 0;
    if (total <= 0.0) {
      // All remaining points coincide with existing centroids; any point works.
      chosen = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    } else {
      chosen = rng.categorical(d2);
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

KMeansResult k_means(const Points& points, std::size_t k, util::Rng& rng,
                     const KMeansOptions& options) {
  validate_points(points);
  DTMSV_EXPECTS_MSG(k >= 1 && k <= points.size(), "k-means: k out of range");
  DTMSV_EXPECTS(options.restarts >= 1);

  KMeansResult best;
  double best_inertia = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < options.restarts; ++r) {
    KMeansResult run = run_single(points, k, rng, options);
    if (run.inertia < best_inertia) {
      best_inertia = run.inertia;
      best = std::move(run);
    }
  }
  return best;
}

std::vector<std::size_t> assign_to_nearest(const Points& points, const Points& centroids) {
  DTMSV_EXPECTS(!centroids.empty());
  DTMSV_EXPECTS_MSG(points.empty() || points.dim() == centroids.dim(),
                    "assign_to_nearest: dimensionality mismatch");
  const std::size_t dim = points.dim();
  std::vector<std::size_t> assignment(points.size(), 0);
  // Route through the fused pass (its sums/counts by-product is discarded)
  // so the argmin arithmetic is identical to what k_means used — a
  // k_means assignment re-checked here is a true fixed point.
  std::vector<double> sums(centroids.size() * std::max<std::size_t>(dim, 1), 0.0);
  std::vector<std::size_t> counts(centroids.size(), 0);
  assign_accumulate(points, centroids, assignment.data(), sums.data(), counts.data());
  return assignment;
}

}  // namespace dtmsv::clustering
