#include "clustering/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace dtmsv::clustering {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  DTMSV_EXPECTS(a.size() == b.size());
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

double distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

std::vector<std::size_t> KMeansResult::members_of(std::size_t cluster) const {
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] == cluster) {
      members.push_back(i);
    }
  }
  return members;
}

std::vector<std::size_t> KMeansResult::cluster_sizes() const {
  std::vector<std::size_t> sizes(centroids.size(), 0);
  for (const std::size_t a : assignment) {
    ++sizes[a];
  }
  return sizes;
}

namespace {

void validate_points(const Points& points) {
  DTMSV_EXPECTS_MSG(!points.empty(), "k-means: empty point set");
  const std::size_t dim = points.front().size();
  DTMSV_EXPECTS_MSG(dim > 0, "k-means: zero-dimensional points");
  for (const auto& p : points) {
    DTMSV_EXPECTS_MSG(p.size() == dim, "k-means: inconsistent dimensionality");
  }
}

double nearest_centroid_sq(const std::vector<double>& point, const Points& centroids,
                           std::size_t* index = nullptr) {
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const double d = squared_distance(point, centroids[c]);
    if (d < best) {
      best = d;
      best_idx = c;
    }
  }
  if (index != nullptr) {
    *index = best_idx;
  }
  return best;
}

KMeansResult run_single(const Points& points, std::size_t k, util::Rng& rng,
                        const KMeansOptions& options) {
  const std::size_t dim = points.front().size();
  KMeansResult result;
  result.centroids = kmeans_plus_plus_init(points, k, rng);
  result.assignment.assign(points.size(), 0);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment step.
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::size_t nearest = 0;
      nearest_centroid_sq(points[i], result.centroids, &nearest);
      if (result.assignment[i] != nearest) {
        result.assignment[i] = nearest;
        changed = true;
      }
    }

    // Update step.
    Points next(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t c = result.assignment[i];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) {
        next[c][d] += points[i][d];
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with the point farthest from its centroid.
        std::size_t farthest = 0;
        double farthest_d = -1.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          const double d =
              squared_distance(points[i], result.centroids[result.assignment[i]]);
          if (d > farthest_d) {
            farthest_d = d;
            farthest = i;
          }
        }
        next[c] = points[farthest];
        result.assignment[farthest] = c;
        changed = true;
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        next[c][d] /= static_cast<double>(counts[c]);
      }
    }

    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      movement += distance(result.centroids[c], next[c]);
    }
    result.centroids = std::move(next);

    if (!changed || movement < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.inertia += squared_distance(points[i], result.centroids[result.assignment[i]]);
  }
  return result;
}

}  // namespace

Points kmeans_plus_plus_init(const Points& points, std::size_t k, util::Rng& rng) {
  validate_points(points);
  DTMSV_EXPECTS_MSG(k >= 1 && k <= points.size(), "k-means++: k out of range");

  Points centroids;
  centroids.reserve(k);
  centroids.push_back(
      points[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(points.size()) - 1))]);

  std::vector<double> d2(points.size());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      d2[i] = nearest_centroid_sq(points[i], centroids);
      total += d2[i];
    }
    std::size_t chosen = 0;
    if (total <= 0.0) {
      // All remaining points coincide with existing centroids; any point works.
      chosen = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(points.size()) - 1));
    } else {
      chosen = rng.categorical(d2);
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

KMeansResult k_means(const Points& points, std::size_t k, util::Rng& rng,
                     const KMeansOptions& options) {
  validate_points(points);
  DTMSV_EXPECTS_MSG(k >= 1 && k <= points.size(), "k-means: k out of range");
  DTMSV_EXPECTS(options.restarts >= 1);

  KMeansResult best;
  double best_inertia = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < options.restarts; ++r) {
    KMeansResult run = run_single(points, k, rng, options);
    if (run.inertia < best_inertia) {
      best_inertia = run.inertia;
      best = std::move(run);
    }
  }
  return best;
}

std::vector<std::size_t> assign_to_nearest(const Points& points, const Points& centroids) {
  DTMSV_EXPECTS(!centroids.empty());
  std::vector<std::size_t> assignment(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    nearest_centroid_sq(points[i], centroids, &assignment[i]);
  }
  return assignment;
}

}  // namespace dtmsv::clustering
