#include "clustering/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

#if defined(__AVX512F__)
// GCC's _mm512_reduce_* expansions trip -Wmaybe-uninitialized inside
// avx512fintrin.h; the warning is in the compiler's own header, not here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#include <immintrin.h>
#endif

namespace dtmsv::clustering {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  DTMSV_EXPECTS(a.size() == b.size());
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

double distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

std::vector<std::size_t> KMeansResult::members_of(std::size_t cluster) const {
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] == cluster) {
      members.push_back(i);
    }
  }
  return members;
}

std::vector<std::size_t> KMeansResult::cluster_sizes() const {
  std::vector<std::size_t> sizes(centroids.size(), 0);
  for (const std::size_t a : assignment) {
    ++sizes[a];
  }
  return sizes;
}

namespace {

void validate_points(const Points& points) {
  DTMSV_EXPECTS_MSG(!points.empty(), "k-means: empty point set");
  DTMSV_EXPECTS_MSG(points.dim() > 0, "k-means: zero-dimensional points");
}

/// Squared distance between two contiguous rows. The paper pipeline
/// clusters 8-d CNN embeddings, so dim == 8 (exactly one 512-bit vector
/// of doubles) gets a SIMD fast path when the build targets AVX-512; the
/// scalar loop is the fallback and the only path on other ISAs. All
/// k-means-internal distance users go through here, so assignments and
/// inertia stay mutually consistent whichever path is taken.
inline double row_sq_dist(const double* a, const double* b, std::size_t dim) {
#if defined(__AVX512F__)
  if (dim == 8) {
    const __m512d d = _mm512_sub_pd(_mm512_loadu_pd(a), _mm512_loadu_pd(b));
    return _mm512_reduce_add_pd(_mm512_mul_pd(d, d));
  }
#endif
  double total = 0.0;
  for (std::size_t d = 0; d < dim; ++d) {
    const double diff = a[d] - b[d];
    total += diff * diff;
  }
  return total;
}

inline double nearest_centroid_sq(const double* point, const Points& centroids,
                                  std::size_t* index = nullptr) {
  const std::size_t dim = centroids.dim();
  const double* cents = centroids.data();
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const double d = row_sq_dist(point, cents + c * dim, dim);
    if (d < best) {
      best = d;
      best_idx = c;
    }
  }
  if (index != nullptr) {
    *index = best_idx;
  }
  return best;
}

#if defined(__AVX512F__)
/// Branchless nearest-centroid search for 8-d points and k <= 16, the
/// paper pipeline's shape (8-d CNN embeddings, K in [2, 12]).
///
/// Centroids are transposed into dim-major groups of 8 so that lane c of
/// a 512-bit accumulator carries the running squared distance to centroid
/// c; per point the whole search is 8 broadcast-sub-fma steps per group,
/// a masked min-reduce, and a ctz — no data-dependent branches at all.
/// That matters: centroid positions change every Lloyd iteration, so a
/// compare-and-branch argmin mispredicts its way through the pass (~2.5x
/// slower in situ even though it looks fine in steady-state microbenches).
/// Tie-breaking matches the scalar scan exactly: the EQ-mask ctz returns
/// the lowest lane attaining the minimum, and group order is ascending.
///
/// `changed` and the per-cluster sums/counts of the update step are
/// folded into the same pass while the point row sits in a register.
template <std::size_t GROUPS>
bool assign_accumulate_d8(const double* pts, std::size_t n, const double* cents,
                          std::size_t k, std::size_t* assignment, double* sums,
                          std::size_t* counts) {
  // Transpose + pad: lane c of trows[g][d] = component d of centroid
  // g*8+c, +inf beyond k so padded lanes never win the min.
  __m512d trows[GROUPS][8];
  for (std::size_t g = 0; g < GROUPS; ++g) {
    for (std::size_t d = 0; d < 8; ++d) {
      alignas(64) double lane[8];
      for (std::size_t c = 0; c < 8; ++c) {
        const std::size_t idx = g * 8 + c;
        lane[c] = idx < k ? cents[idx * 8 + d]
                          : std::numeric_limits<double>::infinity();
      }
      trows[g][d] = _mm512_load_pd(lane);
    }
  }

  std::size_t nchanged = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* p = pts + i * 8;
    __m512d acc[GROUPS];
    for (std::size_t g = 0; g < GROUPS; ++g) {
      acc[g] = _mm512_setzero_pd();
    }
    for (std::size_t d = 0; d < 8; ++d) {
      const __m512d pv = _mm512_set1_pd(p[d]);
      for (std::size_t g = 0; g < GROUPS; ++g) {
        const __m512d x = _mm512_sub_pd(pv, trows[g][d]);
        acc[g] = _mm512_fmadd_pd(x, x, acc[g]);
      }
    }
    double best = _mm512_reduce_min_pd(acc[0]);
    const __mmask8 eq0 = _mm512_cmp_pd_mask(acc[0], _mm512_set1_pd(best), _CMP_EQ_OQ);
    std::size_t best_idx =
        eq0 != 0 ? static_cast<std::size_t>(__builtin_ctz(eq0)) : 0;
    for (std::size_t g = 1; g < GROUPS; ++g) {
      const double m = _mm512_reduce_min_pd(acc[g]);
      if (m < best) {
        const __mmask8 eq = _mm512_cmp_pd_mask(acc[g], _mm512_set1_pd(m), _CMP_EQ_OQ);
        best = m;
        best_idx = g * 8 + (eq != 0 ? static_cast<std::size_t>(__builtin_ctz(eq)) : 0);
      }
    }
    if (best != best) {
      // NaN in the data poisons the vector reduction (ordered compares
      // are all-false, min propagation is order-dependent). Fall back to
      // the scalar strict-< scan, which skips NaN distances exactly like
      // the pre-SIMD implementation did.
      best = std::numeric_limits<double>::infinity();
      best_idx = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double t = row_sq_dist(p, cents + c * 8, 8);
        if (t < best) {
          best = t;
          best_idx = c;
        }
      }
    }
    nchanged += static_cast<std::size_t>(assignment[i] != best_idx);
    assignment[i] = best_idx;
    ++counts[best_idx];
    double* srow = sums + best_idx * 8;
    _mm512_storeu_pd(srow, _mm512_add_pd(_mm512_loadu_pd(srow), _mm512_loadu_pd(p)));
  }
  return nchanged != 0;
}
#endif  // __AVX512F__

/// Fused assignment + accumulation pass of one Lloyd iteration: finds each
/// point's nearest centroid (strict-< argmin, lowest index wins) and
/// immediately folds the point into its cluster's running sum while the
/// row is still hot — the separate O(n·dim) update sweep the seed
/// performed disappears. Returns true when any assignment changed.
bool assign_accumulate(const Points& points, const Points& centroids,
                       std::size_t* assignment, double* sums,
                       std::size_t* counts) {
  const std::size_t n = points.size();
  const std::size_t k = centroids.size();
  const std::size_t dim = points.dim();
  const double* pts = points.data();
  const double* cents = centroids.data();

#if defined(__AVX512F__)
  if (dim == 8 && k <= 8) {
    return assign_accumulate_d8<1>(pts, n, cents, k, assignment, sums, counts);
  }
  if (dim == 8 && k <= 16) {
    return assign_accumulate_d8<2>(pts, n, cents, k, assignment, sums, counts);
  }
#endif

  bool changed = false;
  for (std::size_t i = 0; i < n; ++i) {
    const double* p = pts + i * dim;
    std::size_t nearest = 0;
    nearest_centroid_sq(p, centroids, &nearest);
    if (assignment[i] != nearest) {
      assignment[i] = nearest;
      changed = true;
    }
    ++counts[nearest];
    double* srow = sums + nearest * dim;
    for (std::size_t d = 0; d < dim; ++d) {
      srow[d] += p[d];
    }
  }
  return changed;
}

KMeansResult run_single(const Points& points, std::size_t k, util::Rng& rng,
                        const KMeansOptions& options) {
  const std::size_t dim = points.dim();
  const std::size_t n = points.size();
  const double* pts = points.data();
  KMeansResult result;
  result.centroids = kmeans_plus_plus_init(points, k, rng);
  result.assignment.assign(n, 0);

  Points next(k, dim);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Fused assignment + cluster-sum accumulation.
    next.fill(0.0);
    counts.assign(k, 0);
    double* nx = next.data();
    bool changed = assign_accumulate(points, result.centroids,
                                     result.assignment.data(), nx, counts.data());

    // Finish the update step: means, and re-seeding of empty clusters.
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with the point farthest from its centroid.
        std::size_t farthest = 0;
        double farthest_d = -1.0;
        const double* cents = result.centroids.data();
        for (std::size_t i = 0; i < n; ++i) {
          const double d =
              row_sq_dist(pts + i * dim, cents + result.assignment[i] * dim, dim);
          if (d > farthest_d) {
            farthest_d = d;
            farthest = i;
          }
        }
        std::copy(pts + farthest * dim, pts + (farthest + 1) * dim, nx + c * dim);
        result.assignment[farthest] = c;
        changed = true;
        continue;
      }
      double* crow = nx + c * dim;
      for (std::size_t d = 0; d < dim; ++d) {
        crow[d] /= static_cast<double>(counts[c]);
      }
    }

    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      movement += distance(result.centroids[c], next[c]);
    }
    std::swap(result.centroids, next);

    if (!changed || movement < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.inertia = 0.0;
  const double* cents = result.centroids.data();
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia += row_sq_dist(pts + i * dim, cents + result.assignment[i] * dim, dim);
  }
  return result;
}

}  // namespace

Points kmeans_plus_plus_init(const Points& points, std::size_t k, util::Rng& rng) {
  validate_points(points);
  DTMSV_EXPECTS_MSG(k >= 1 && k <= points.size(), "k-means++: k out of range");
  const std::size_t n = points.size();
  const std::size_t dim = points.dim();
  const double* pts = points.data();

  Points centroids;
  centroids.reserve(k);
  centroids.push_back(
      points[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))]);

  // D² distances to the nearest chosen centroid, maintained incrementally:
  // each round only the newest centroid can lower a point's distance, which
  // turns the seed's O(k²·n) rescans into O(k·n) with identical values.
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    const double* newest = centroids[centroids.size() - 1].data();
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = row_sq_dist(pts + i * dim, newest, dim);
      if (d < d2[i]) {
        d2[i] = d;
      }
      total += d2[i];
    }
    std::size_t chosen = 0;
    if (total <= 0.0) {
      // All remaining points coincide with existing centroids; any point works.
      chosen = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    } else {
      chosen = rng.categorical(d2);
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

KMeansResult k_means(const Points& points, std::size_t k, util::Rng& rng,
                     const KMeansOptions& options) {
  validate_points(points);
  DTMSV_EXPECTS_MSG(k >= 1 && k <= points.size(), "k-means: k out of range");
  DTMSV_EXPECTS(options.restarts >= 1);

  KMeansResult best;
  double best_inertia = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < options.restarts; ++r) {
    KMeansResult run = run_single(points, k, rng, options);
    if (run.inertia < best_inertia) {
      best_inertia = run.inertia;
      best = std::move(run);
    }
  }
  return best;
}

std::vector<std::size_t> assign_to_nearest(const Points& points, const Points& centroids) {
  DTMSV_EXPECTS(!centroids.empty());
  DTMSV_EXPECTS_MSG(points.empty() || points.dim() == centroids.dim(),
                    "assign_to_nearest: dimensionality mismatch");
  const std::size_t dim = points.dim();
  std::vector<std::size_t> assignment(points.size(), 0);
  // Route through the fused pass (its sums/counts by-product is discarded)
  // so the argmin arithmetic is identical to what k_means used — a
  // k_means assignment re-checked here is a true fixed point.
  std::vector<double> sums(centroids.size() * std::max<std::size_t>(dim, 1), 0.0);
  std::vector<std::size_t> counts(centroids.size(), 0);
  assign_accumulate(points, centroids, assignment.data(), sums.data(), counts.data());
  return assignment;
}

}  // namespace dtmsv::clustering

#if defined(__AVX512F__)
#pragma GCC diagnostic pop
#endif
