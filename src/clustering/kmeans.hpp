// K-means++ seeding plus Lloyd iterations — the paper's fast user-clustering
// step ("the K-means++ algorithm is utilized to perform fast user clustering
// based on the determined grouping number").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "clustering/point_matrix.hpp"
#include "util/rng.hpp"

namespace dtmsv::clustering {

/// A point set: flat row-major storage, one row per point (see
/// clustering/point_matrix.hpp). All points share one dimensionality.
using Points = PointMatrix;

/// Squared Euclidean distance between two equal-length feature vectors.
double squared_distance(std::span<const double> a, std::span<const double> b);
/// Euclidean distance.
double distance(std::span<const double> a, std::span<const double> b);

/// Outcome of a K-means run.
struct KMeansResult {
  Points centroids;                    // k centroids
  std::vector<std::size_t> assignment;  // per-point cluster index in [0, k)
  double inertia = 0.0;                // sum of squared point-centroid distances
  std::size_t iterations = 0;          // Lloyd iterations executed
  bool converged = false;              // true when assignments stabilised

  std::size_t cluster_count() const { return centroids.size(); }
  /// Point indices of one cluster.
  std::vector<std::size_t> members_of(std::size_t cluster) const;
  /// Sizes of all clusters.
  std::vector<std::size_t> cluster_sizes() const;
};

/// Options for k_means().
struct KMeansOptions {
  std::size_t max_iterations = 100;
  /// Convergence threshold on total centroid movement (L2).
  double tolerance = 1e-6;
  /// Number of k-means++ restarts; the best-inertia run wins.
  std::size_t restarts = 3;
};

/// K-means++ seeding: D²-weighted centroid selection (Arthur & Vassilvitskii).
/// Requires 1 <= k <= points.size().
Points kmeans_plus_plus_init(const Points& points, std::size_t k, util::Rng& rng);

/// Full K-means++ clustering. Requires non-empty points with consistent
/// dimensionality and 1 <= k <= points.size(). Empty clusters that appear
/// during Lloyd iterations are re-seeded with the farthest point.
KMeansResult k_means(const Points& points, std::size_t k, util::Rng& rng,
                     const KMeansOptions& options = {});

/// Assigns each point to its nearest centroid (ties -> lowest index).
std::vector<std::size_t> assign_to_nearest(const Points& points, const Points& centroids);

}  // namespace dtmsv::clustering
