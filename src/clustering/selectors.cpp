#include "clustering/selectors.hpp"

#include <algorithm>
#include <limits>

#include "clustering/metrics.hpp"
#include "util/error.hpp"

namespace dtmsv::clustering {

FixedKSelector::FixedKSelector(std::size_t k) : k_(k) { DTMSV_EXPECTS(k >= 1); }

std::size_t FixedKSelector::select_k(const Points& points, util::Rng& /*rng*/) {
  DTMSV_EXPECTS(!points.empty());
  return std::min(k_, points.size());
}

std::string FixedKSelector::name() const { return "fixed-" + std::to_string(k_); }

ElbowKSelector::ElbowKSelector(std::size_t k_min, std::size_t k_max)
    : k_min_(k_min), k_max_(k_max) {
  DTMSV_EXPECTS(k_min >= 1 && k_min <= k_max);
}

std::size_t ElbowKSelector::select_k(const Points& points, util::Rng& rng) {
  DTMSV_EXPECTS(!points.empty());
  const std::size_t lo = std::min(k_min_, points.size());
  const std::size_t hi = std::min(k_max_, points.size());
  if (hi - lo < 2) {
    return lo;
  }
  std::vector<double> inertias;
  inertias.reserve(hi - lo + 1);
  KMeansOptions opts;
  opts.restarts = 2;
  for (std::size_t k = lo; k <= hi; ++k) {
    inertias.push_back(k_means(points, k, rng, opts).inertia);
  }
  // Largest positive second difference marks the knee.
  std::size_t best_k = lo + 1;
  double best_knee = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i + 1 < inertias.size(); ++i) {
    const double knee = inertias[i - 1] - 2.0 * inertias[i] + inertias[i + 1];
    if (knee > best_knee) {
      best_knee = knee;
      best_k = lo + i;
    }
  }
  return best_k;
}

SilhouetteSweepSelector::SilhouetteSweepSelector(std::size_t k_min, std::size_t k_max,
                                                 std::size_t sample_cap)
    : k_min_(k_min), k_max_(k_max), sample_cap_(sample_cap) {
  DTMSV_EXPECTS(k_min >= 1 && k_min <= k_max);
  DTMSV_EXPECTS(sample_cap >= 1);
}

std::size_t SilhouetteSweepSelector::select_k(const Points& points, util::Rng& rng) {
  DTMSV_EXPECTS(!points.empty());
  const std::size_t lo = std::max<std::size_t>(2, std::min(k_min_, points.size()));
  const std::size_t hi = std::min(k_max_, points.size());
  if (lo >= hi) {
    return std::min(lo, points.size());
  }
  KMeansOptions opts;
  opts.restarts = 2;
  std::size_t best_k = lo;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t k = lo; k <= hi; ++k) {
    const auto result = k_means(points, k, rng, opts);
    // Sampled silhouette keeps the sweep sub-quadratic on large clouds;
    // below the cap it is the exact metric and draws nothing from rng.
    const double score =
        silhouette_sampled(points, result.assignment, sample_cap_, rng);
    if (score > best_score) {
      best_score = score;
      best_k = k;
    }
  }
  return best_k;
}

RandomKSelector::RandomKSelector(std::size_t k_min, std::size_t k_max)
    : k_min_(k_min), k_max_(k_max) {
  DTMSV_EXPECTS(k_min >= 1 && k_min <= k_max);
}

std::size_t RandomKSelector::select_k(const Points& points, util::Rng& rng) {
  DTMSV_EXPECTS(!points.empty());
  const std::size_t lo = std::min(k_min_, points.size());
  const std::size_t hi = std::min(k_max_, points.size());
  return static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
}

}  // namespace dtmsv::clustering
