// Live viewing sessions: each user continuously watches short videos,
// swiping to the next clip after a preference-dependent watch duration.
// Completed views are emitted as ViewEvents — the ground-truth behaviour
// stream that BS collectors push into the UDTs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "behavior/preference.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"
#include "video/dataset.hpp"

namespace dtmsv::behavior {

/// One finished view (the user swiped away or the clip ended).
struct ViewEvent {
  std::uint64_t user_id = 0;
  std::uint64_t video_id = 0;
  video::Category category = video::Category::kNews;
  util::SimTime start_time = 0.0;
  double duration_s = 0.0;        // full clip length
  double watch_seconds = 0.0;     // time actually watched
  double watch_fraction = 0.0;    // watch_seconds / duration_s
  bool completed = false;         // watched to the end (no swipe)
};

/// Feed/engagement parameters shared with the offline dataset generator so
/// live behaviour and trace statistics match by construction.
struct SessionConfig {
  /// Probability the feed serves the user's taste vs. uniform exploration.
  double feed_affinity_bias = 0.8;
  /// Engagement model (instant-swipe spike, affinity->watch mapping).
  video::DatasetConfig engagement;
};

/// One user's never-ending short-video session.
class ViewingSession {
 public:
  /// `affinity`: the user's ground-truth category taste driving behaviour.
  ViewingSession(std::uint64_t user_id, const video::Catalog& catalog,
                 const SessionConfig& config, PreferenceVector affinity,
                 util::Rng rng);

  /// Advances by `dt` seconds from `now`, appending any views that finished
  /// during the window to `out`. A view spanning the window boundary stays
  /// in progress.
  void advance(util::SimTime now, double dt, std::vector<ViewEvent>& out);

  /// Currently playing video id.
  std::uint64_t current_video() const { return current_video_id_; }
  video::Category current_category() const { return current_category_; }

  const PreferenceVector& affinity() const { return affinity_; }

  /// Replaces the taste vector (models interest drift mid-simulation).
  void set_affinity(PreferenceVector affinity);

 private:
  void start_next_video(util::SimTime now);

  std::uint64_t user_id_;
  const video::Catalog* catalog_;
  SessionConfig config_;
  PreferenceVector affinity_;
  util::Rng rng_;

  std::uint64_t current_video_id_ = 0;
  video::Category current_category_ = video::Category::kNews;
  double current_duration_s_ = 0.0;
  double planned_watch_s_ = 0.0;   // sampled at video start
  double watched_s_ = 0.0;         // accumulated so far
  util::SimTime view_start_ = 0.0;
};

}  // namespace dtmsv::behavior
