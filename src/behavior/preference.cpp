#include "behavior/preference.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dtmsv::behavior {

PreferenceVector normalized(const PreferenceVector& v) {
  double total = 0.0;
  for (const double x : v) {
    total += x;
  }
  PreferenceVector out{};
  if (total <= 0.0) {
    out.fill(1.0 / static_cast<double>(video::kCategoryCount));
    return out;
  }
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = v[i] / total;
  }
  return out;
}

double entropy(const PreferenceVector& v) {
  const PreferenceVector p = normalized(v);
  double h = 0.0;
  for (const double x : p) {
    if (x > 0.0) {
      h -= x * std::log(x);
    }
  }
  return h;
}

std::size_t top_category(const PreferenceVector& v) {
  return static_cast<std::size_t>(
      std::distance(v.begin(), std::max_element(v.begin(), v.end())));
}

PreferenceEstimator::PreferenceEstimator(double forgetting) : forgetting_(forgetting) {
  DTMSV_EXPECTS(forgetting > 0.0 && forgetting <= 1.0);
}

void PreferenceEstimator::observe(video::Category category, double engagement_seconds) {
  DTMSV_EXPECTS(engagement_seconds >= 0.0);
  weights_[static_cast<std::size_t>(category)] += engagement_seconds;
}

void PreferenceEstimator::decay() {
  for (double& w : weights_) {
    w *= forgetting_;
  }
}

PreferenceVector PreferenceEstimator::estimate() const { return normalized(weights_); }

double PreferenceEstimator::evidence_seconds() const {
  double total = 0.0;
  for (const double w : weights_) {
    total += w;
  }
  return total;
}

PreferenceVector sample_affinity(double concentration, util::Rng& rng) {
  DTMSV_EXPECTS(concentration > 0.0);
  const std::vector<double> alpha(video::kCategoryCount, concentration);
  const auto sample = rng.dirichlet(alpha);
  PreferenceVector out{};
  std::copy(sample.begin(), sample.end(), out.begin());
  return out;
}

}  // namespace dtmsv::behavior
