#include "behavior/session.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dtmsv::behavior {

ViewingSession::ViewingSession(std::uint64_t user_id, const video::Catalog& catalog,
                               const SessionConfig& config, PreferenceVector affinity,
                               util::Rng rng)
    : user_id_(user_id),
      catalog_(&catalog),
      config_(config),
      affinity_(affinity),
      rng_(std::move(rng)) {
  DTMSV_EXPECTS(config.feed_affinity_bias >= 0.0 && config.feed_affinity_bias <= 1.0);
  start_next_video(0.0);
}

void ViewingSession::set_affinity(PreferenceVector affinity) {
  affinity_ = affinity;
}

void ViewingSession::start_next_video(util::SimTime now) {
  // The feed serves taste-matched content most of the time, exploring
  // uniformly otherwise — the same mix the dataset generator uses.
  std::size_t cat_idx = 0;
  if (rng_.bernoulli(config_.feed_affinity_bias)) {
    const PreferenceVector p = normalized(affinity_);
    cat_idx = rng_.categorical(std::span<const double>(p.data(), p.size()));
  } else {
    cat_idx = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(video::kCategoryCount) - 1));
  }
  const video::Category cat = video::all_categories()[cat_idx];
  const video::Video& v = catalog_->sample_from_category(cat, rng_);

  current_video_id_ = v.id;
  current_category_ = cat;
  current_duration_s_ = v.duration_s;
  view_start_ = now;
  watched_s_ = 0.0;

  const PreferenceVector p = normalized(affinity_);
  const double frac = video::sample_watch_fraction(p[cat_idx], config_.engagement, rng_);
  planned_watch_s_ = std::min(frac, 1.0) * v.duration_s;
  // A zero-length planned watch still consumes a minimal dwell time, or the
  // session would emit unbounded events in one tick.
  planned_watch_s_ = std::max(planned_watch_s_, 0.2);
}

void ViewingSession::advance(util::SimTime now, double dt, std::vector<ViewEvent>& out) {
  DTMSV_EXPECTS(dt > 0.0);
  double remaining = dt;
  util::SimTime t = now;
  while (remaining > 0.0) {
    const double to_finish = planned_watch_s_ - watched_s_;
    if (to_finish > remaining) {
      watched_s_ += remaining;
      return;
    }
    // Finish the current view inside this window.
    watched_s_ = planned_watch_s_;
    t += to_finish;
    remaining -= to_finish;

    ViewEvent ev;
    ev.user_id = user_id_;
    ev.video_id = current_video_id_;
    ev.category = current_category_;
    ev.start_time = view_start_;
    ev.duration_s = current_duration_s_;
    ev.watch_seconds = watched_s_;
    ev.watch_fraction = current_duration_s_ > 0.0
                            ? std::min(1.0, watched_s_ / current_duration_s_)
                            : 0.0;
    ev.completed = watched_s_ >= current_duration_s_ - 1e-9;
    out.push_back(ev);

    start_next_video(t);
  }
}

}  // namespace dtmsv::behavior
