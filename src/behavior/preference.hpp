// User preference dynamics. Each user has a latent category-affinity vector
// (ground truth driving watch behaviour) and the system maintains an
// observed estimate updated from engagement, exactly as the paper states:
// "Users' preferences are updated based on preference labels and engagement
// time."
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "util/rng.hpp"
#include "video/catalog.hpp"

namespace dtmsv::behavior {

using PreferenceVector = std::array<double, video::kCategoryCount>;

/// Normalises a non-negative vector into a probability vector; uniform when
/// the sum is zero.
PreferenceVector normalized(const PreferenceVector& v);

/// Entropy (nats) of a preference vector — a dispersion feature for UDTs.
double entropy(const PreferenceVector& v);

/// Index of the strongest category.
std::size_t top_category(const PreferenceVector& v);

/// Engagement-driven preference estimator (exponential forgetting).
///
/// Each observed (category, engagement_seconds) pair adds weight to that
/// category; periodic decay keeps the estimate tracking drifting taste.
class PreferenceEstimator {
 public:
  /// `forgetting` in (0, 1]: multiplier applied by decay(); 1 = no decay.
  explicit PreferenceEstimator(double forgetting = 0.9);

  /// Accumulates watched seconds as evidence for `category`.
  void observe(video::Category category, double engagement_seconds);

  /// Applies one forgetting step (call once per reservation interval).
  void decay();

  /// Current normalised preference estimate (uniform before any evidence).
  PreferenceVector estimate() const;

  /// Total accumulated evidence in seconds.
  double evidence_seconds() const;

 private:
  double forgetting_;
  PreferenceVector weights_{};
};

/// Draws a ground-truth affinity vector for a new user.
PreferenceVector sample_affinity(double concentration, util::Rng& rng);

}  // namespace dtmsv::behavior
