#include "predict/demand.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dtmsv::predict {

ResourceDemand& ResourceDemand::operator+=(const ResourceDemand& other) {
  radio_hz += other.radio_hz;
  compute_cycles += other.compute_cycles;
  transmitted_bits += other.transmitted_bits;
  expected_views += other.expected_views;
  distinct_videos += other.distinct_videos;
  rung = std::max(rung, other.rung);
  return *this;
}

ContentStats ContentStats::from_catalog(const video::Catalog& catalog) {
  ContentStats stats;
  std::array<double, video::kCategoryCount> sums{};
  std::array<std::size_t, video::kCategoryCount> counts{};
  std::vector<double> scales;
  scales.reserve(catalog.size());
  const double reference_bottom = video::BitrateLadder::standard().bottom_kbps();
  for (const auto& v : catalog.videos()) {
    const auto c = static_cast<std::size_t>(v.category);
    sums[c] += v.duration_s;
    ++counts[c];
    scales.push_back(v.ladder.bottom_kbps() / reference_bottom);
  }
  for (std::size_t c = 0; c < video::kCategoryCount; ++c) {
    stats.mean_duration_s[c] =
        counts[c] > 0 ? sums[c] / static_cast<double>(counts[c]) : 15.0;
  }
  stats.ladder_kbps = video::BitrateLadder::standard().rungs();
  if (!scales.empty()) {
    std::sort(scales.begin(), scales.end());
    stats.ladder_scale_quantiles.clear();
    for (int q = 1; q <= 9; ++q) {
      const auto idx = static_cast<std::size_t>(
          static_cast<double>(q) / 10.0 * static_cast<double>(scales.size() - 1));
      stats.ladder_scale_quantiles.push_back(scales[idx]);
    }
  }
  return stats;
}

double expected_distinct(double views, double playlist) {
  DTMSV_EXPECTS(views >= 0.0);
  DTMSV_EXPECTS(playlist >= 0.0);
  if (playlist < 1.0 || views <= 0.0) {
    return std::min(views, playlist);
  }
  // E[distinct] = R (1 - (1 - 1/R)^N)
  return playlist * (1.0 - std::pow(1.0 - 1.0 / playlist, views));
}

ResourceDemand predict_group_demand(
    std::size_t member_count, const behavior::PreferenceVector& group_preference,
    const analysis::SwipingDistribution& swiping, double predicted_efficiency,
    const std::array<std::size_t, video::kCategoryCount>& playlist_per_category,
    const ContentStats& content, const DemandModelConfig& config) {
  GroupChannelForecast channel;
  channel.efficiency = std::max(predicted_efficiency, config.efficiency_floor);
  channel.min_series = {channel.efficiency};
  return predict_group_demand(member_count, group_preference, swiping, channel,
                              playlist_per_category, content, config);
}

ResourceDemand predict_group_demand(
    std::size_t member_count, const behavior::PreferenceVector& group_preference,
    const analysis::SwipingDistribution& swiping,
    const GroupChannelForecast& channel,
    const std::array<std::size_t, video::kCategoryCount>& playlist_per_category,
    const ContentStats& content, const DemandModelConfig& config) {
  DTMSV_EXPECTS(member_count > 0);
  DTMSV_EXPECTS(config.interval_s > 0.0);
  DTMSV_EXPECTS(!content.ladder_kbps.empty());
  DTMSV_EXPECTS_MSG(!channel.min_series.empty(),
                    "predict_group_demand: empty channel forecast");

  // Played category mix: the recommender quota, falling back to the group
  // preference when the playlist is empty.
  behavior::PreferenceVector mix{};
  double quota_total = 0.0;
  for (std::size_t c = 0; c < video::kCategoryCount; ++c) {
    quota_total += static_cast<double>(playlist_per_category[c]);
  }
  if (quota_total > 0.0) {
    for (std::size_t c = 0; c < video::kCategoryCount; ++c) {
      mix[c] = static_cast<double>(playlist_per_category[c]) / quota_total;
    }
  } else {
    mix = behavior::normalized(group_preference);
  }

  // Average the link-adaptation decision over (a) the forecast channel
  // operating points and (b) the catalog's ladder-scale quantiles: at each
  // combination the scheduler would pick the highest rung fitting the
  // bandwidth budget. Averaging predicts the rung mixture the live
  // multicast will use next interval, including rung-boundary effects from
  // encoder variability.
  const std::size_t top_rung = content.ladder_kbps.size() - 1;
  static const std::vector<double> kUnitScale = {1.0};
  const std::vector<double>& scales = content.ladder_scale_quantiles.empty()
                                          ? kUnitScale
                                          : content.ladder_scale_quantiles;
  double mean_bitrate_kbps = 0.0;          // E[bitrate(rung(eff, scale))]
  double mean_bitrate_over_eff = 0.0;      // E[bitrate/eff] (kbps per b/s/Hz)
  double mean_transcode_bitrate = 0.0;     // E[bitrate · 1{rung < top}]
  std::vector<std::size_t> rung_counts(content.ladder_kbps.size(), 0);
  for (const double eff_raw : channel.min_series) {
    const double eff = std::max(eff_raw, config.efficiency_floor);
    const double budget_kbps = config.group_bandwidth_budget_hz * eff / 1e3;
    for (const double scale : scales) {
      std::size_t rung = 0;
      for (std::size_t i = 0; i < content.ladder_kbps.size(); ++i) {
        if (content.ladder_kbps[i] * scale <= budget_kbps) {
          rung = i;
        }
      }
      ++rung_counts[rung];
      const double bitrate = content.ladder_kbps[rung] * scale;
      mean_bitrate_kbps += bitrate;
      mean_bitrate_over_eff += bitrate / eff;
      if (rung < top_rung) {
        mean_transcode_bitrate += bitrate;
      }
    }
  }
  const auto n_points =
      static_cast<double>(channel.min_series.size() * scales.size());
  mean_bitrate_kbps /= n_points;
  mean_bitrate_over_eff /= n_points;
  mean_transcode_bitrate /= n_points;

  // Per-category on-air time: the clip stays up until its last viewer
  // (of `member_count` concurrent viewers) swipes, plus prefetch run-ahead,
  // bounded by the clip length.
  std::array<double, video::kCategoryCount> on_air_s{};
  double mean_cycle_s = 0.0;
  for (std::size_t c = 0; c < video::kCategoryCount; ++c) {
    const auto category = video::all_categories()[c];
    const double max_frac = swiping.expected_max_watch_fraction(category, member_count);
    const double duration = content.mean_duration_s[c];
    on_air_s[c] = std::min(max_frac * duration + config.prefetch_s, duration);
    mean_cycle_s += mix[c] * (on_air_s[c] + config.swipe_gap_s);
  }
  mean_cycle_s = std::max(mean_cycle_s, 0.5);

  // Clips played back-to-back over the interval.
  const double videos_played = config.interval_s / mean_cycle_s;

  ResourceDemand demand;
  demand.rung = static_cast<std::size_t>(std::distance(
      rung_counts.begin(), std::max_element(rung_counts.begin(), rung_counts.end())));
  demand.distinct_videos = videos_played;
  demand.expected_views = videos_played * static_cast<double>(member_count);

  double on_air_total_s = 0.0;
  for (std::size_t c = 0; c < video::kCategoryCount; ++c) {
    const double videos_c = videos_played * mix[c];
    if (videos_c <= 0.0) {
      continue;
    }
    on_air_total_s += videos_c * on_air_s[c];
  }
  demand.transmitted_bits = on_air_total_s * mean_bitrate_kbps * 1e3;
  demand.compute_cycles = on_air_total_s * mean_transcode_bitrate * 1e3 *
                          config.transcode.cycles_per_bit;
  demand.radio_hz = on_air_total_s * mean_bitrate_over_eff * 1e3 / config.interval_s;
  return demand;
}

}  // namespace dtmsv::predict
