// The paper's output stage: group-level radio and computing resource demand
// prediction from the abstracted group information (swiping probability
// distribution, recommended videos, predicted channel efficiency).
//
// Structural model (see DESIGN.md §4/§5):
//   * every member watches the group's multicast feed continuously;
//   * each distinct video is multicast once, staying on air until its last
//     viewer swipes (expected max watch fraction from the swiping CDF);
//   * radio demand  = transmitted bits / group spectral efficiency,
//     expressed as mean occupied bandwidth over the interval;
//   * computing demand = transcoding cycles for every transmitted bit below
//     the cached top representation.
#pragma once

#include <array>
#include <cstddef>

#include "analysis/recommend.hpp"
#include "analysis/swiping.hpp"
#include "predict/channel_predictor.hpp"
#include "video/catalog.hpp"
#include "video/transcode.hpp"

namespace dtmsv::predict {

/// Joint radio + computing demand for one group over one interval.
struct ResourceDemand {
  double radio_hz = 0.0;         // mean occupied downlink bandwidth
  double compute_cycles = 0.0;   // total ES transcode cycles in the interval
  double transmitted_bits = 0.0; // total multicast payload
  double expected_views = 0.0;   // member view events
  double distinct_videos = 0.0;  // multicast streams started
  std::size_t rung = 0;          // ladder rung selected

  ResourceDemand& operator+=(const ResourceDemand& other);
};

/// Static inputs the demand model needs about the content.
struct ContentStats {
  /// Mean clip duration per category (seconds).
  std::array<double, video::kCategoryCount> mean_duration_s{};
  /// Representative ladder (kbps, ascending).
  std::vector<double> ladder_kbps;
  /// Quantiles (deciles) of the per-video ladder scale factor relative to
  /// `ladder_kbps` — encoder variability across uploads. The demand model
  /// integrates link adaptation over these so rung-boundary effects are
  /// predicted rather than averaged away. {1.0} when the catalog is uniform.
  std::vector<double> ladder_scale_quantiles = {1.0};

  static ContentStats from_catalog(const video::Catalog& catalog);
};

/// Tunables of the demand model.
struct DemandModelConfig {
  double interval_s = 300.0;         // paper: 5-minute reservation interval
  double prefetch_s = 2.0;           // segments buffered ahead of playback
  double swipe_gap_s = 0.6;          // dwell between consecutive clips
  /// Per-group multicast bandwidth cap driving rung selection. 0.7 MHz of
  /// a 20 MHz carrier per group keeps ~8 concurrent multicast groups within
  /// a third of the cell; at campus efficiencies it maps groups onto the
  /// 1200–2850 kbps rungs, so served representations sit below the cached
  /// top rung and the ES transcodes continuously (as the paper assumes).
  double group_bandwidth_budget_hz = 0.7e6;
  double efficiency_floor = 0.05;    // outage guard
  video::TranscodeModel transcode{};
};

/// Expected number of distinct items hit by `views` uniform draws over
/// `playlist` items (birthday-style collision count). Returns min(views,
/// playlist) at the extremes. Utility for unicast-baseline analysis.
double expected_distinct(double views, double playlist);

/// Predicts one group's next-interval demand from abstracted group state,
/// mirroring the group-feed multicast mechanics the simulator executes:
/// the group plays recommended videos back-to-back; every member watches
/// each clip (swiping individually); a clip stays on air until its last
/// viewer swipes (+ prefetch), bounded by the clip length.
///
/// `member_count`: group size; `group_preference`: normalised category mix
/// (fallback when the playlist quota is empty); `swiping`: the group's
/// swiping distribution; `predicted_efficiency`: worst-member spectral
/// efficiency forecast (bits/s/Hz); `playlist_per_category`: recommender
/// quota per category (defines the played category mix).
ResourceDemand predict_group_demand(
    std::size_t member_count, const behavior::PreferenceVector& group_preference,
    const analysis::SwipingDistribution& swiping, double predicted_efficiency,
    const std::array<std::size_t, video::kCategoryCount>& playlist_per_category,
    const ContentStats& content, const DemandModelConfig& config);

/// Channel-distribution-aware variant: instead of one scalar efficiency it
/// consumes the group's forecast min-series and averages the per-operating-
/// point link adaptation decisions (rung, bandwidth-per-bit, transcode
/// need) over it — predicting the *mixture* of rungs the live multicast
/// scheduler will use. The scalar overload above is this one with a
/// single-bin forecast.
ResourceDemand predict_group_demand(
    std::size_t member_count, const behavior::PreferenceVector& group_preference,
    const analysis::SwipingDistribution& swiping,
    const GroupChannelForecast& channel,
    const std::array<std::size_t, video::kCategoryCount>& playlist_per_category,
    const ContentStats& content, const DemandModelConfig& config);

}  // namespace dtmsv::predict
