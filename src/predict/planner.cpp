#include "predict/planner.hpp"

#include <algorithm>

namespace dtmsv::predict {

CapacityPlanner::CapacityPlanner(const ReservationPolicy& policy) : policy_(policy) {
  DTMSV_EXPECTS(policy.headroom >= 0.0);
  DTMSV_EXPECTS(policy.min_reserved >= 0.0);
  DTMSV_EXPECTS(policy.max_reserved == 0.0 ||
                policy.max_reserved >= policy.min_reserved);
}

double CapacityPlanner::reserve(double predicted) const {
  DTMSV_EXPECTS(predicted >= 0.0);
  double reserved = std::max(predicted * (1.0 + policy_.headroom),
                             policy_.min_reserved);
  if (policy_.max_reserved > 0.0) {
    reserved = std::min(reserved, policy_.max_reserved);
  }
  return reserved;
}

void CapacityPlanner::settle(double reserved, double actual) {
  DTMSV_EXPECTS(reserved >= 0.0);
  DTMSV_EXPECTS(actual >= 0.0);
  outcome_.reserved_total += reserved;
  outcome_.actual_total += actual;
  if (reserved >= actual) {
    outcome_.over_total += reserved - actual;
  } else {
    outcome_.unmet_total += actual - reserved;
    ++outcome_.violations;
  }
  ++outcome_.intervals;
}

double CapacityPlanner::step(double predicted, double actual) {
  const double reserved = reserve(predicted);
  settle(reserved, actual);
  return reserved;
}

void CapacityPlanner::reset() { outcome_ = ReservationOutcome{}; }

}  // namespace dtmsv::predict
