// Capacity reservation on top of demand prediction — the paper's stated
// future work ("how to effectively reserve radio and computing resources
// based on the predicted multicast groups' resource demand"). This module
// provides the straightforward headroom policy an operator would deploy
// first, with full outcome accounting so policies can be compared.
#pragma once

#include <cstddef>

#include "util/error.hpp"

namespace dtmsv::predict {

/// Reservation policy parameters.
struct ReservationPolicy {
  /// Multiplicative safety margin on the prediction (0.10 = +10 %).
  double headroom = 0.10;
  /// Lower bound on any reservation (control-plane minimum).
  double min_reserved = 0.0;
  /// Upper bound (cell capacity); 0 disables the cap.
  double max_reserved = 0.0;
};

/// Aggregated provisioning outcome over the settled intervals.
struct ReservationOutcome {
  double reserved_total = 0.0;   // Σ reserved
  double actual_total = 0.0;     // Σ realized demand
  double over_total = 0.0;       // Σ reserved-but-unused (waste)
  double unmet_total = 0.0;      // Σ demand beyond the reservation
  std::size_t intervals = 0;
  std::size_t violations = 0;    // intervals with any unmet demand

  /// Waste as a fraction of realized demand (0 when nothing realized).
  double waste_fraction() const {
    return actual_total > 0.0 ? over_total / actual_total : 0.0;
  }
  /// Unmet demand as a fraction of realized demand.
  double unmet_fraction() const {
    return actual_total > 0.0 ? unmet_total / actual_total : 0.0;
  }
  /// Fraction of intervals that violated the reservation.
  double violation_rate() const {
    return intervals > 0
               ? static_cast<double>(violations) / static_cast<double>(intervals)
               : 0.0;
  }
};

/// Applies a ReservationPolicy interval by interval and accounts outcomes.
/// Units are caller-defined (Hz, cycles/s, ...) but must be consistent.
class CapacityPlanner {
 public:
  explicit CapacityPlanner(const ReservationPolicy& policy);

  /// Reservation for a predicted demand (>= 0).
  double reserve(double predicted) const;

  /// Records one interval's outcome: what was reserved vs what realized.
  void settle(double reserved, double actual);

  /// Convenience: reserve-and-settle in one call; returns the reservation.
  double step(double predicted, double actual);

  const ReservationOutcome& outcome() const { return outcome_; }
  const ReservationPolicy& policy() const { return policy_; }
  void reset();

 private:
  ReservationPolicy policy_;
  ReservationOutcome outcome_;
};

}  // namespace dtmsv::predict
