#include "predict/baselines.hpp"

#include <cmath>

namespace dtmsv::predict {

void LastValueSeries::observe(double realized) {
  last_ = realized;
  has_ = true;
}

double LastValueSeries::forecast(double fallback) const {
  return has_ ? last_ : fallback;
}

EwmaSeries::EwmaSeries(double alpha) : alpha_(alpha) {
  DTMSV_EXPECTS(alpha > 0.0 && alpha <= 1.0);
}

void EwmaSeries::observe(double realized) {
  if (!has_) {
    value_ = realized;
    has_ = true;
  } else {
    value_ = alpha_ * realized + (1.0 - alpha_) * value_;
  }
}

double EwmaSeries::forecast(double fallback) const {
  return has_ ? value_ : fallback;
}

MovingAverageSeries::MovingAverageSeries(std::size_t window) : window_(window) {
  DTMSV_EXPECTS(window > 0);
}

void MovingAverageSeries::observe(double realized) {
  values_.push_back(realized);
  if (values_.size() > window_) {
    values_.pop_front();
  }
}

double MovingAverageSeries::forecast(double fallback) const {
  if (values_.empty()) {
    return fallback;
  }
  double total = 0.0;
  for (const double v : values_) {
    total += v;
  }
  return total / static_cast<double>(values_.size());
}

Ar1Series::Ar1Series(std::size_t window) : window_(window) {
  DTMSV_EXPECTS(window >= 3);
}

void Ar1Series::observe(double realized) {
  values_.push_back(realized);
  if (values_.size() > window_) {
    values_.pop_front();
  }
}

double Ar1Series::forecast(double fallback) const {
  if (values_.empty()) {
    return fallback;
  }
  if (values_.size() < 3) {
    return values_.back();
  }
  // OLS of x_{t+1} on x_t over the window.
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  const auto n = static_cast<double>(values_.size() - 1);
  for (std::size_t i = 0; i + 1 < values_.size(); ++i) {
    const double x = values_[i];
    const double y = values_[i + 1];
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    return values_.back();
  }
  const double phi = (n * sxy - sx * sy) / denom;
  const double c = (sy - phi * sx) / n;
  const double pred = c + phi * values_.back();
  return pred < 0.0 ? 0.0 : pred;
}

}  // namespace dtmsv::predict
