// Per-user spectral-efficiency prediction from UDT channel history: the
// radio-side input to group demand prediction. A multicast group's next-
// interval efficiency is the minimum of its members' predictions.
//
// Histories arrive as twin::ChannelSeries — the zero-copy per-user view
// over the columnar twin store (twin/columns.hpp); the query surface
// matches the old AttributeSeries exactly.
#pragma once

#include <memory>
#include <string>

#include "twin/udt.hpp"

namespace dtmsv::predict {

/// Predicts a user's mean spectral efficiency over the next interval from
/// the channel series stored in their twin.
class EfficiencyPredictor {
 public:
  virtual ~EfficiencyPredictor() = default;
  EfficiencyPredictor() = default;
  EfficiencyPredictor(const EfficiencyPredictor&) = delete;
  EfficiencyPredictor& operator=(const EfficiencyPredictor&) = delete;

  /// Prediction using samples in [now - window_s, now). Returns a
  /// non-negative efficiency; implementations fall back to `fallback`
  /// when the window is empty.
  virtual double predict(const twin::ChannelSeries& history,
                         util::SimTime now, double window_s,
                         double fallback = 0.5) const = 0;

  virtual std::string name() const = 0;
};

/// Uses the most recent sample only.
class LastValuePredictor final : public EfficiencyPredictor {
 public:
  double predict(const twin::ChannelSeries& history,
                 util::SimTime now, double window_s, double fallback) const override;
  std::string name() const override { return "last-value"; }
};

/// Exponentially weighted mean over the window (newest weighted most).
class EwmaPredictor final : public EfficiencyPredictor {
 public:
  explicit EwmaPredictor(double alpha = 0.3);
  double predict(const twin::ChannelSeries& history,
                 util::SimTime now, double window_s, double fallback) const override;
  std::string name() const override { return "ewma"; }

 private:
  double alpha_;
};

/// Ordinary-least-squares line over the window extrapolated to the middle
/// of the next interval (clamped to be non-negative).
class LinearTrendPredictor final : public EfficiencyPredictor {
 public:
  /// `horizon_s`: how far past `now` to extrapolate.
  explicit LinearTrendPredictor(double horizon_s = 150.0);
  double predict(const twin::ChannelSeries& history,
                 util::SimTime now, double window_s, double fallback) const override;
  std::string name() const override { return "linear-trend"; }

 private:
  double horizon_s_;
};

/// Window mean (the simplest robust predictor).
class MeanPredictor final : public EfficiencyPredictor {
 public:
  double predict(const twin::ChannelSeries& history,
                 util::SimTime now, double window_s, double fallback) const override;
  std::string name() const override { return "mean"; }
};

/// Group efficiency: the minimum over members' predictions, floored at
/// `floor` (multicast must serve the worst member). Simple composition —
/// biased optimistic for large groups because min(E[X_i]) ≥ E[min X_i].
double predict_group_efficiency(const std::vector<const twin::UserDigitalTwin*>& members,
                                const EfficiencyPredictor& predictor,
                                util::SimTime now, double window_s,
                                double floor = 0.05);

/// Joint forecast of a group's multicast channel: the reconstructed
/// per-second min-over-members efficiency series and its harmonic mean.
struct GroupChannelForecast {
  /// Harmonic mean of the floored min-series — matches the multicast
  /// accounting identity bandwidth = bits·mean(1/eff) exactly.
  double efficiency = 0.05;
  /// Floored min-over-members efficiency per filled 1-s history bin; the
  /// empirical distribution of the group's link-adaptation operating points.
  std::vector<double> min_series;
};

/// Reconstructs the per-bin min-over-members efficiency from the members'
/// aligned twin channel histories (zero-order hold per member through
/// report gaps). Bins no member has covered are omitted; with no samples at
/// all the forecast degenerates to a single `floor` bin.
GroupChannelForecast forecast_group_channel(
    const std::vector<const twin::UserDigitalTwin*>& members, util::SimTime now,
    double window_s, double floor = 0.05, double bin_s = 1.0);

/// Convenience: harmonic-mean group efficiency only (see
/// forecast_group_channel).
double predict_group_efficiency_joint(
    const std::vector<const twin::UserDigitalTwin*>& members, util::SimTime now,
    double window_s, double floor = 0.05, double bin_s = 1.0);

}  // namespace dtmsv::predict
