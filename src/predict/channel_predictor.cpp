#include "predict/channel_predictor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dtmsv::predict {

double LastValuePredictor::predict(
    const twin::ChannelSeries& history, util::SimTime now,
    double window_s, double fallback) const {
  const auto window = history.window(now - window_s, now);
  if (window.empty()) {
    return fallback;
  }
  return std::max(0.0, window.back().value.efficiency_bps_hz);
}

EwmaPredictor::EwmaPredictor(double alpha) : alpha_(alpha) {
  DTMSV_EXPECTS(alpha > 0.0 && alpha <= 1.0);
}

double EwmaPredictor::predict(
    const twin::ChannelSeries& history, util::SimTime now,
    double window_s, double fallback) const {
  const auto window = history.window(now - window_s, now);
  if (window.empty()) {
    return fallback;
  }
  double value = window.front().value.efficiency_bps_hz;
  for (std::size_t i = 1; i < window.size(); ++i) {
    value = alpha_ * window[i].value.efficiency_bps_hz + (1.0 - alpha_) * value;
  }
  return std::max(0.0, value);
}

LinearTrendPredictor::LinearTrendPredictor(double horizon_s) : horizon_s_(horizon_s) {
  DTMSV_EXPECTS(horizon_s >= 0.0);
}

double LinearTrendPredictor::predict(
    const twin::ChannelSeries& history, util::SimTime now,
    double window_s, double fallback) const {
  const auto window = history.window(now - window_s, now);
  if (window.empty()) {
    return fallback;
  }
  if (window.size() < 3) {
    return std::max(0.0, window.back().value.efficiency_bps_hz);
  }
  // OLS on (t, efficiency), times centred at `now` for conditioning.
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  const auto n = static_cast<double>(window.size());
  for (const auto& s : window) {
    const double x = s.time - now;
    const double y = s.value.efficiency_bps_hz;
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    return std::max(0.0, sy / n);
  }
  const double slope = (n * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / n;
  return std::max(0.0, intercept + slope * horizon_s_);
}

double MeanPredictor::predict(
    const twin::ChannelSeries& history, util::SimTime now,
    double window_s, double fallback) const {
  const auto window = history.window(now - window_s, now);
  if (window.empty()) {
    return fallback;
  }
  double total = 0.0;
  for (const auto& s : window) {
    total += s.value.efficiency_bps_hz;
  }
  return std::max(0.0, total / static_cast<double>(window.size()));
}

double predict_group_efficiency(const std::vector<const twin::UserDigitalTwin*>& members,
                                const EfficiencyPredictor& predictor,
                                util::SimTime now, double window_s, double floor) {
  DTMSV_EXPECTS_MSG(!members.empty(), "predict_group_efficiency: empty group");
  DTMSV_EXPECTS(floor > 0.0);
  double worst = std::numeric_limits<double>::infinity();
  for (const auto* member : members) {
    DTMSV_EXPECTS(member != nullptr);
    worst = std::min(worst, predictor.predict(member->channel(), now, window_s));
  }
  return std::max(worst, floor);
}

GroupChannelForecast forecast_group_channel(
    const std::vector<const twin::UserDigitalTwin*>& members, util::SimTime now,
    double window_s, double floor, double bin_s) {
  DTMSV_EXPECTS_MSG(!members.empty(), "forecast_group_channel: empty group");
  DTMSV_EXPECTS(floor > 0.0);
  DTMSV_EXPECTS(window_s > 0.0 && bin_s > 0.0);

  GroupChannelForecast forecast;
  forecast.efficiency = floor;

  const auto bins = static_cast<std::size_t>(window_s / bin_s);
  if (bins == 0) {
    forecast.min_series.push_back(floor);
    return forecast;
  }
  const util::SimTime from = now - window_s;
  constexpr double kUnset = std::numeric_limits<double>::infinity();

  // Per-bin minimum efficiency across members (zero-order hold per member).
  std::vector<double> min_series(bins, kUnset);
  std::vector<double> member_series(bins);
  for (const auto* member : members) {
    DTMSV_EXPECTS(member != nullptr);
    std::fill(member_series.begin(), member_series.end(), kUnset);
    // Scan the columnar history directly — the time and efficiency lanes
    // are flat arrays, so the per-bin pass streams instead of
    // materialising a Stamped observation per sample.
    const twin::ChannelColumn& column = member->columns().channel_column();
    const std::vector<double>& times = column.times();
    const std::vector<double>& efficiency = column.efficiency();
    column.for_each_slot(member->slot(), [&](std::size_t at) {
      const double t = times[at];
      if (t < from || t >= now) {
        return;
      }
      auto b = static_cast<std::size_t>((t - from) / bin_s);
      b = std::min(b, bins - 1);
      // Keep the last sample per bin (samples arrive time-ordered).
      member_series[b] = efficiency[at];
    });
    // Hold forward through empty bins (report loss / slow collection).
    double hold = kUnset;
    for (std::size_t b = 0; b < bins; ++b) {
      if (member_series[b] != kUnset) {
        hold = member_series[b];
      } else if (hold != kUnset) {
        member_series[b] = hold;
      }
    }
    for (std::size_t b = 0; b < bins; ++b) {
      if (member_series[b] != kUnset) {
        min_series[b] = std::min(min_series[b], member_series[b]);
      }
    }
  }

  // Floored, filled bins become the empirical operating-point distribution;
  // their harmonic mean matches the ∫ bits/eff accounting.
  double inv_sum = 0.0;
  for (const double v : min_series) {
    if (v == kUnset) {
      continue;
    }
    const double floored = std::max(v, floor);
    forecast.min_series.push_back(floored);
    inv_sum += 1.0 / floored;
  }
  if (forecast.min_series.empty()) {
    forecast.min_series.push_back(floor);
    return forecast;
  }
  forecast.efficiency = std::max(
      static_cast<double>(forecast.min_series.size()) / inv_sum, floor);
  return forecast;
}

double predict_group_efficiency_joint(
    const std::vector<const twin::UserDigitalTwin*>& members, util::SimTime now,
    double window_s, double floor, double bin_s) {
  return forecast_group_channel(members, now, window_s, floor, bin_s).efficiency;
}

}  // namespace dtmsv::predict
