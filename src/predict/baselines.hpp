// Baseline demand predictors that operate directly on the realized demand
// time series (no digital-twin state). These are the comparators for the
// accuracy table bench (TAB-ACC in DESIGN.md).
#pragma once

#include <deque>
#include <string>

#include "util/error.hpp"

namespace dtmsv::predict {

/// Interface: observe the realized demand of each interval, then forecast
/// the next one.
class SeriesPredictor {
 public:
  virtual ~SeriesPredictor() = default;
  SeriesPredictor() = default;
  SeriesPredictor(const SeriesPredictor&) = delete;
  SeriesPredictor& operator=(const SeriesPredictor&) = delete;

  virtual void observe(double realized) = 0;
  /// Forecast for the next interval; `fallback` before any observation.
  virtual double forecast(double fallback = 0.0) const = 0;
  virtual std::string name() const = 0;
};

/// Predicts the previous interval's value.
class LastValueSeries final : public SeriesPredictor {
 public:
  void observe(double realized) override;
  double forecast(double fallback) const override;
  std::string name() const override { return "last-value"; }

 private:
  double last_ = 0.0;
  bool has_ = false;
};

/// Exponentially weighted moving average.
class EwmaSeries final : public SeriesPredictor {
 public:
  explicit EwmaSeries(double alpha = 0.4);
  void observe(double realized) override;
  double forecast(double fallback) const override;
  std::string name() const override { return "ewma"; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool has_ = false;
};

/// Sliding-window mean.
class MovingAverageSeries final : public SeriesPredictor {
 public:
  explicit MovingAverageSeries(std::size_t window = 4);
  void observe(double realized) override;
  double forecast(double fallback) const override;
  std::string name() const override { return "moving-average"; }

 private:
  std::size_t window_;
  std::deque<double> values_;
};

/// AR(1) fitted online over a sliding window: x̂_{n+1} = c + φ·x_n.
class Ar1Series final : public SeriesPredictor {
 public:
  explicit Ar1Series(std::size_t window = 12);
  void observe(double realized) override;
  double forecast(double fallback) const override;
  std::string name() const override { return "ar1"; }

 private:
  std::size_t window_;
  std::deque<double> values_;
};

}  // namespace dtmsv::predict
