#include "nn/init.hpp"

#include <cmath>

namespace dtmsv::nn {

void xavier_uniform(Tensor& weights, std::size_t fan_in, std::size_t fan_out,
                    util::Rng& rng) {
  DTMSV_EXPECTS(fan_in > 0 && fan_out > 0);
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (float& w : weights.data()) {
    w = static_cast<float>(rng.uniform(-a, a));
  }
}

void kaiming_normal(Tensor& weights, std::size_t fan_in, util::Rng& rng) {
  DTMSV_EXPECTS(fan_in > 0);
  const double sigma = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (float& w : weights.data()) {
    w = static_cast<float>(rng.normal(0.0, sigma));
  }
}

}  // namespace dtmsv::nn
