#include "nn/activations.hpp"

#include <cmath>

namespace dtmsv::nn {

Tensor ReLU::forward(const Tensor& input) {
  mask_ = Tensor(input.shape());
  Tensor out = input;
  auto out_data = out.data();
  auto mask_data = mask_.data();
  for (std::size_t i = 0; i < out_data.size(); ++i) {
    if (out_data[i] > 0.0f) {
      mask_data[i] = 1.0f;
    } else {
      out_data[i] = 0.0f;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  DTMSV_EXPECTS_MSG(!mask_.empty(), "ReLU: backward before forward");
  DTMSV_EXPECTS(same_shape(grad_output, mask_));
  Tensor grad = grad_output;
  auto g = grad.data();
  auto m = mask_.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] *= m[i];
  }
  return grad;
}

Tensor Tanh::forward(const Tensor& input) {
  Tensor out = input;
  for (float& v : out.data()) {
    v = std::tanh(v);
  }
  output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  DTMSV_EXPECTS_MSG(!output_.empty(), "Tanh: backward before forward");
  DTMSV_EXPECTS(same_shape(grad_output, output_));
  Tensor grad = grad_output;
  auto g = grad.data();
  auto y = output_.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] *= 1.0f - y[i] * y[i];
  }
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input) {
  Tensor out = input;
  for (float& v : out.data()) {
    v = 1.0f / (1.0f + std::exp(-v));
  }
  output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  DTMSV_EXPECTS_MSG(!output_.empty(), "Sigmoid: backward before forward");
  DTMSV_EXPECTS(same_shape(grad_output, output_));
  Tensor grad = grad_output;
  auto g = grad.data();
  auto y = output_.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] *= y[i] * (1.0f - y[i]);
  }
  return grad;
}

}  // namespace dtmsv::nn
