#include "nn/sequential.hpp"

namespace dtmsv::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  DTMSV_EXPECTS(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input) {
  DTMSV_EXPECTS_MSG(!layers_.empty(), "Sequential: no layers");
  Tensor x = input;
  for (const auto& layer : layers_) {
    x = layer->forward(x);
  }
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  DTMSV_EXPECTS_MSG(!layers_.empty(), "Sequential: no layers");
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<ParamRef> Sequential::parameters() {
  std::vector<ParamRef> params;
  for (const auto& layer : layers_) {
    for (auto& p : layer->parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

Layer& Sequential::layer(std::size_t i) {
  DTMSV_EXPECTS(i < layers_.size());
  return *layers_[i];
}

std::size_t Sequential::parameter_count() {
  std::size_t n = 0;
  for (const auto& p : parameters()) {
    n += p.value->size();
  }
  return n;
}

}  // namespace dtmsv::nn
