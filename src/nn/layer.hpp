// Layer abstraction. Layers own their parameters and parameter gradients;
// forward() caches whatever backward() needs. No autograd graph — the
// caller (Sequential or a loss) drives the backward pass explicitly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace dtmsv::nn {

/// Non-owning view of a parameter tensor and its gradient accumulator.
/// Lifetime: valid while the owning layer is alive (Core Guidelines I.11 —
/// these are views, ownership stays with the layer).
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  std::string name;
};

/// Base class for differentiable layers.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes outputs; caches activations needed by backward().
  virtual Tensor forward(const Tensor& input) = 0;

  /// Propagates `grad_output` (dL/doutput) to dL/dinput, accumulating
  /// parameter gradients. Must be preceded by a matching forward().
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Parameter views for the optimiser. Default: no parameters.
  virtual std::vector<ParamRef> parameters() { return {}; }

  /// Zeroes all parameter gradients.
  void zero_grad();

  virtual std::string name() const = 0;
};

inline void Layer::zero_grad() {
  for (auto& p : parameters()) {
    p.grad->zero();
  }
}

}  // namespace dtmsv::nn
