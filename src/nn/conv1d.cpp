#include "nn/conv1d.hpp"

#include "nn/init.hpp"

namespace dtmsv::nn {

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               util::Rng& rng, std::size_t stride, std::size_t padding)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      w_({out_channels, in_channels, kernel}),
      b_({out_channels}),
      w_grad_({out_channels, in_channels, kernel}),
      b_grad_({out_channels}) {
  DTMSV_EXPECTS(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0);
  xavier_uniform(w_, in_channels * kernel, out_channels * kernel, rng);
}

std::size_t Conv1D::output_length(std::size_t input_length) const {
  const std::size_t padded = input_length + 2 * padding_;
  DTMSV_EXPECTS_MSG(padded >= kernel_, "Conv1D: input shorter than kernel");
  return (padded - kernel_) / stride_ + 1;
}

Tensor Conv1D::forward(const Tensor& input) {
  DTMSV_EXPECTS_MSG(input.rank() == 3 && input.dim(1) == in_channels_,
                    "Conv1D: input must be [N, in_channels, L]");
  input_ = input;
  const std::size_t n = input.dim(0);
  const std::size_t len = input.dim(2);
  const std::size_t out_len = output_length(len);

  Tensor out({n, out_channels_, out_len});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t f = 0; f < out_channels_; ++f) {
      for (std::size_t t = 0; t < out_len; ++t) {
        float acc = b_[f];
        for (std::size_t c = 0; c < in_channels_; ++c) {
          for (std::size_t k = 0; k < kernel_; ++k) {
            // Position in the zero-padded input.
            const std::size_t pos = t * stride_ + k;
            if (pos < padding_ || pos >= padding_ + len) {
              continue;
            }
            acc += w_.at3(f, c, k) * input.at3(b, c, pos - padding_);
          }
        }
        out.at3(b, f, t) = acc;
      }
    }
  }
  return out;
}

Tensor Conv1D::backward(const Tensor& grad_output) {
  DTMSV_EXPECTS_MSG(!input_.empty(), "Conv1D: backward before forward");
  const std::size_t n = input_.dim(0);
  const std::size_t len = input_.dim(2);
  const std::size_t out_len = output_length(len);
  DTMSV_EXPECTS(grad_output.rank() == 3 && grad_output.dim(0) == n &&
                grad_output.dim(1) == out_channels_ && grad_output.dim(2) == out_len);

  Tensor grad_input({n, in_channels_, len});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t f = 0; f < out_channels_; ++f) {
      for (std::size_t t = 0; t < out_len; ++t) {
        const float g = grad_output.at3(b, f, t);
        if (g == 0.0f) {
          continue;
        }
        b_grad_[f] += g;
        for (std::size_t c = 0; c < in_channels_; ++c) {
          for (std::size_t k = 0; k < kernel_; ++k) {
            const std::size_t pos = t * stride_ + k;
            if (pos < padding_ || pos >= padding_ + len) {
              continue;
            }
            const std::size_t x_pos = pos - padding_;
            w_grad_.at3(f, c, k) += g * input_.at3(b, c, x_pos);
            grad_input.at3(b, c, x_pos) += g * w_.at3(f, c, k);
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> Conv1D::parameters() {
  return {{&w_, &w_grad_, "weight"}, {&b_, &b_grad_, "bias"}};
}

}  // namespace dtmsv::nn
