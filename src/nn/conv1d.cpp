#include "nn/conv1d.hpp"

#include <algorithm>

#include "nn/init.hpp"
#include "util/simd.hpp"

namespace dtmsv::nn {

namespace {

using Backend = util::simd::default_backend;

/// Valid (non-padding) kernel-tap range [k_lo, k_hi) for an im2col window
/// starting at `pos0` in padded coordinates. Taps outside the range fall
/// in the zero padding; taps inside map to input position
/// pos0 + k - padding. Hoisting the bounds out of the tap loop turns the
/// per-element padding branch into straight-line copies the SIMD helpers
/// can run wide.
inline void tap_bounds(std::size_t pos0, std::size_t padding, std::size_t len,
                       std::size_t kernel, std::size_t& k_lo,
                       std::size_t& k_hi) {
  k_lo = pos0 < padding ? std::min(padding - pos0, kernel) : 0;
  const std::size_t limit = padding + len;
  k_hi = pos0 >= limit ? 0 : std::min(kernel, limit - pos0);
  k_hi = std::max(k_hi, k_lo);
}

}  // namespace

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               util::Rng& rng, std::size_t stride, std::size_t padding)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      w_({out_channels, in_channels, kernel}),
      b_({out_channels}),
      w_grad_({out_channels, in_channels, kernel}),
      b_grad_({out_channels}) {
  DTMSV_EXPECTS(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0);
  xavier_uniform(w_, in_channels * kernel, out_channels * kernel, rng);
}

std::size_t Conv1D::output_length(std::size_t input_length) const {
  const std::size_t padded = input_length + 2 * padding_;
  DTMSV_EXPECTS_MSG(padded >= kernel_, "Conv1D: input shorter than kernel");
  return (padded - kernel_) / stride_ + 1;
}

Tensor Conv1D::forward(const Tensor& input) {
  DTMSV_EXPECTS_MSG(input.rank() == 3 && input.dim(1) == in_channels_,
                    "Conv1D: input must be [N, in_channels, L]");
  input_shape_ = input.shape();
  const std::size_t n = input.dim(0);
  const std::size_t len = input.dim(2);
  const std::size_t out_len = output_length(len);
  const std::size_t patch = in_channels_ * kernel_;

  // im2col: patches_[b*out_len + t] holds the zero-padded receptive field
  // of output position (b, t), channel-major to match the weight layout.
  patches_ = Tensor({n * out_len, patch});
  const float* in = input.data().data();
  float* rows = patches_.data().data();
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t t = 0; t < out_len; ++t) {
      float* prow = rows + (b * out_len + t) * patch;
      const std::size_t pos0 = t * stride_;  // window start in padded coords
      std::size_t k_lo = 0, k_hi = 0;
      tap_bounds(pos0, padding_, len, kernel_, k_lo, k_hi);
      for (std::size_t c = 0; c < in_channels_; ++c) {
        const float* irow = in + (b * in_channels_ + c) * len;
        float* pseg = prow + c * kernel_;
        std::fill(pseg, pseg + k_lo, 0.0f);
        if (k_hi > k_lo) {
          util::simd::copy_row<Backend>(pseg + k_lo,
                                        irow + (pos0 + k_lo - padding_),
                                        k_hi - k_lo);
        }
        std::fill(pseg + k_hi, pseg + kernel_, 0.0f);
      }
    }
  }

  // [N*L_out, patch] · [F, patch]ᵀ -> [N*L_out, F], then fold the F axis
  // back inside while adding the bias.
  const Tensor out2d = Tensor::matmul_bt(patches_, w_.reshaped({out_channels_, patch}));
  Tensor out({n, out_channels_, out_len});
  const float* o2 = out2d.data().data();
  float* o3 = out.data().data();
  const float* bias = b_.data().data();
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t f = 0; f < out_channels_; ++f) {
      float* orow = o3 + (b * out_channels_ + f) * out_len;
      const float bf = bias[f];
      for (std::size_t t = 0; t < out_len; ++t) {
        orow[t] = o2[(b * out_len + t) * out_channels_ + f] + bf;
      }
    }
  }
  return out;
}

Tensor Conv1D::backward(const Tensor& grad_output) {
  DTMSV_EXPECTS_MSG(!patches_.empty(), "Conv1D: backward before forward");
  const std::size_t n = input_shape_[0];
  const std::size_t len = input_shape_[2];
  const std::size_t out_len = output_length(len);
  DTMSV_EXPECTS(grad_output.rank() == 3 && grad_output.dim(0) == n &&
                grad_output.dim(1) == out_channels_ && grad_output.dim(2) == out_len);
  const std::size_t patch = in_channels_ * kernel_;

  // Transpose grad to [N*L_out, F] (the im2col row layout) and reduce the
  // bias gradient on the way through.
  Tensor g2d({n * out_len, out_channels_});
  {
    const float* g3 = grad_output.data().data();
    float* g2 = g2d.data().data();
    float* bg = b_grad_.data().data();
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t f = 0; f < out_channels_; ++f) {
        const float* grow = g3 + (b * out_channels_ + f) * out_len;
        float acc = 0.0f;
        for (std::size_t t = 0; t < out_len; ++t) {
          g2[(b * out_len + t) * out_channels_ + f] = grow[t];
          acc += grow[t];
        }
        bg[f] += acc;
      }
    }
  }

  // dL/dW = g2dᵀ · patches ; dL/dpatches = g2d · W.
  const Tensor wg2d = Tensor::matmul_at(g2d, patches_);  // [F, patch]
  {
    const float* src = wg2d.data().data();
    float* dst = w_grad_.data().data();
    for (std::size_t i = 0; i < w_grad_.size(); ++i) {
      dst[i] += src[i];
    }
  }
  const Tensor grad_patches = Tensor::matmul(g2d, w_.reshaped({out_channels_, patch}));

  // col2im: scatter-add patch gradients back to input positions.
  Tensor grad_input(input_shape_);
  const float* gp = grad_patches.data().data();
  float* gi = grad_input.data().data();
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t t = 0; t < out_len; ++t) {
      const float* prow = gp + (b * out_len + t) * patch;
      const std::size_t pos0 = t * stride_;
      std::size_t k_lo = 0, k_hi = 0;
      tap_bounds(pos0, padding_, len, kernel_, k_lo, k_hi);
      if (k_hi == k_lo) {
        continue;
      }
      for (std::size_t c = 0; c < in_channels_; ++c) {
        float* irow = gi + (b * in_channels_ + c) * len;
        const float* pseg = prow + c * kernel_;
        util::simd::add_rows<Backend>(irow + (pos0 + k_lo - padding_),
                                      pseg + k_lo, k_hi - k_lo);
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> Conv1D::parameters() {
  return {{&w_, &w_grad_, "weight"}, {&b_, &b_grad_, "bias"}};
}

}  // namespace dtmsv::nn
