// Backend-templated matmul row kernels, shared by the Tensor entry points
// in tensor.cpp (instantiated on the build's default SIMD backend) and by
// the backend-equivalence tests (which instantiate every backend compiled
// into the binary and assert bit-identical outputs).
//
// Vectorisation layout: lanes are *output columns* (j). All kernels
// accumulate each output element (i, j) in ascending kk order whatever the
// lane width or register blocking, so a vector lane computes exactly the
// chain the scalar backend computes for that column. Multiply-accumulate
// goes through util::simd's madd (fused iff the target has fast hardware
// FMA, in scalar and vector code alike), so scalar tails agree with
// vector bodies and the scalar backend agrees with both.
#pragma once

#include <algorithm>
#include <cstddef>

#include "util/simd.hpp"

namespace dtmsv::nn::kernels {

// Cache tiles for the blocked kernels. The b-tile (kTileK x kTileJ floats,
// 32 KiB) stays L1/L2-resident while it is reused across a block of output
// rows. Accumulation order per output element is always ascending kk
// (the kb blocks advance monotonically), so tiled results are
// bit-identical to the untiled triple loop and to themselves for any tile
// size, lane width, or thread count.
constexpr std::size_t kTileI = 32;
constexpr std::size_t kTileJ = 128;
constexpr std::size_t kTileK = 64;

/// Register-blocked accumulate: orow[jb..je) += Σ_kk a(kk) · b[kk][jb..je)
/// for kk in [kb, ke), where a(kk) = abase[kk * astride]. Output columns
/// live in vector registers across the whole kk loop (4-vector blocks, then
/// single vectors, then a scalar tail), so the serial dependency per column
/// is the FMA chain itself rather than a store-to-load round trip. Every
/// column still accumulates in ascending kk order via util::simd's madd —
/// the same chain whatever the lane width, so blocking preserves
/// bit-identity with the scalar backend.
template <typename Backend>
inline void accum_cols(const float* abase, std::size_t astride, const float* b,
                       float* orow, std::size_t kb, std::size_t ke,
                       std::size_t jb, std::size_t je, std::size_t n) {
  using P = util::simd::pack<float, Backend>;
  std::size_t j = jb;
  if constexpr (P::width > 1) {
    constexpr std::size_t W = P::width;
    for (; j + 4 * W <= je; j += 4 * W) {
      P acc0 = P::load(orow + j);
      P acc1 = P::load(orow + j + W);
      P acc2 = P::load(orow + j + 2 * W);
      P acc3 = P::load(orow + j + 3 * W);
      for (std::size_t kk = kb; kk < ke; ++kk) {
        const P avv = P::broadcast(abase[kk * astride]);
        const float* brow = b + kk * n;
        acc0 = P::madd(avv, P::load(brow + j), acc0);
        acc1 = P::madd(avv, P::load(brow + j + W), acc1);
        acc2 = P::madd(avv, P::load(brow + j + 2 * W), acc2);
        acc3 = P::madd(avv, P::load(brow + j + 3 * W), acc3);
      }
      acc0.store(orow + j);
      acc1.store(orow + j + W);
      acc2.store(orow + j + 2 * W);
      acc3.store(orow + j + 3 * W);
    }
    for (; j + W <= je; j += W) {
      P acc = P::load(orow + j);
      for (std::size_t kk = kb; kk < ke; ++kk) {
        acc = P::madd(P::broadcast(abase[kk * astride]), P::load(b + kk * n + j),
                      acc);
      }
      acc.store(orow + j);
    }
  }
  for (; j < je; ++j) {
    float acc = orow[j];
    for (std::size_t kk = kb; kk < ke; ++kk) {
      acc = util::simd::madd(abase[kk * astride], b[kk * n + j], acc);
    }
    orow[j] = acc;
  }
}

/// out[i0..i1) += a · b for row-major a (m×k), b (k×n).
template <typename Backend>
void matmul_rows(const float* a, const float* b, float* out, std::size_t i0,
                 std::size_t i1, std::size_t k, std::size_t n) {
  for (std::size_t ib = i0; ib < i1; ib += kTileI) {
    const std::size_t ie = std::min(ib + kTileI, i1);
    for (std::size_t kb = 0; kb < k; kb += kTileK) {
      const std::size_t ke = std::min(kb + kTileK, k);
      for (std::size_t jb = 0; jb < n; jb += kTileJ) {
        const std::size_t je = std::min(jb + kTileJ, n);
        for (std::size_t i = ib; i < ie; ++i) {
          accum_cols<Backend>(a + i * k, 1, b, out + i * n, kb, ke, jb, je, n);
        }
      }
    }
  }
}

/// out[i0..i1) = a · bᵀ for row-major a (m×k), b (n×k), dot-product form.
/// Four independent chains per iteration break the serial FP dependency
/// while keeping every (i, j) accumulation in ascending kk order — the
/// same chain the axpy kernels produce, so the two forms are
/// interchangeable per element. Backend-independent (no useful contiguous
/// lane axis without transposing b); kept for short row counts where a
/// transpose would cost more than it saves.
inline void matmul_bt_rows(const float* a, const float* b, float* out,
                           std::size_t i0, std::size_t i1, std::size_t k,
                           std::size_t n) {
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + (j + 0) * k;
      const float* b1 = b + (j + 1) * k;
      const float* b2 = b + (j + 2) * k;
      const float* b3 = b + (j + 3) * k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        acc0 = util::simd::madd(av, b0[kk], acc0);
        acc1 = util::simd::madd(av, b1[kk], acc1);
        acc2 = util::simd::madd(av, b2[kk], acc2);
        acc3 = util::simd::madd(av, b3[kk], acc3);
      }
      orow[j + 0] = acc0;
      orow[j + 1] = acc1;
      orow[j + 2] = acc2;
      orow[j + 3] = acc3;
    }
    for (; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc = util::simd::madd(arow[kk], brow[kk], acc);
      }
      orow[j] = acc;
    }
  }
}

/// out[i0..i1) += aᵀ · b for row-major a (k×m), b (k×n).
template <typename Backend>
void matmul_at_rows(const float* a, const float* b, float* out, std::size_t i0,
                    std::size_t i1, std::size_t k, std::size_t m,
                    std::size_t n) {
  for (std::size_t ib = i0; ib < i1; ib += kTileI) {
    const std::size_t ie = std::min(ib + kTileI, i1);
    for (std::size_t kb = 0; kb < k; kb += kTileK) {
      const std::size_t ke = std::min(kb + kTileK, k);
      for (std::size_t i = ib; i < ie; ++i) {
        accum_cols<Backend>(a + i, m, b, out + i * n, kb, ke, 0, n, n);
      }
    }
  }
}

/// dst (k×n) = src (n×k) transposed. Pure data movement, exact.
inline void transpose(const float* src, float* dst, std::size_t n,
                      std::size_t k) {
  for (std::size_t r = 0; r < n; ++r) {
    const float* srow = src + r * k;
    for (std::size_t c = 0; c < k; ++c) {
      dst[c * n + r] = srow[c];
    }
  }
}

}  // namespace dtmsv::nn::kernels
