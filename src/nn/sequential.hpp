// Sequential layer container: owns layers, chains forward/backward, and
// aggregates parameters for the optimiser.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace dtmsv::nn {

/// A feed-forward stack of layers executed in order.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for fluent construction.
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Convenience: constructs the layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  std::string name() const override { return "Sequential"; }

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i);

  /// Total number of learnable scalars.
  std::size_t parameter_count();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace dtmsv::nn
