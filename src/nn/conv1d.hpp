// 1-D convolution over time-series data — the compressor the paper applies
// to UDT attribute histories ("we first utilize a one-dimensional
// convolution neural network to compress the time-series UDTs' data").
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace dtmsv::nn {

/// Conv1D mapping [N, in_channels, L] -> [N, out_channels, L_out]
/// with L_out = (L + 2*padding - kernel) / stride + 1 (zero padding).
class Conv1D final : public Layer {
 public:
  Conv1D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         util::Rng& rng, std::size_t stride = 1, std::size_t padding = 0);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  std::string name() const override { return "Conv1D"; }

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }
  std::size_t padding() const { return padding_; }

  /// Output length for a given input length; throws if the geometry is invalid.
  std::size_t output_length(std::size_t input_length) const;

  Tensor& weights() { return w_; }
  Tensor& bias() { return b_; }

 private:
  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;
  Tensor w_;        // [out_ch, in_ch, kernel]
  Tensor b_;        // [out_ch]
  Tensor w_grad_;
  Tensor b_grad_;
  // im2col scratch cached between forward and backward: each output
  // position becomes one row of [N*L_out, in_ch*kernel], so both passes
  // reduce to the tiled matmul kernels.
  Tensor patches_;
  Shape input_shape_;
};

}  // namespace dtmsv::nn
