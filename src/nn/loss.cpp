#include "nn/loss.hpp"

#include <cmath>

namespace dtmsv::nn {

LossResult mse_loss(const Tensor& prediction, const Tensor& target) {
  DTMSV_EXPECTS_MSG(same_shape(prediction, target), "mse_loss: shape mismatch");
  DTMSV_EXPECTS(!prediction.empty());
  const auto n = static_cast<float>(prediction.size());
  LossResult result;
  result.grad = Tensor(prediction.shape());
  auto g = result.grad.data();
  const auto p = prediction.data();
  const auto t = target.data();
  float total = 0.0f;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const float err = p[i] - t[i];
    total += err * err;
    g[i] = 2.0f * err / n;
  }
  result.value = total / n;
  return result;
}

LossResult huber_loss(const Tensor& prediction, const Tensor& target, float delta) {
  DTMSV_EXPECTS_MSG(same_shape(prediction, target), "huber_loss: shape mismatch");
  DTMSV_EXPECTS(!prediction.empty());
  DTMSV_EXPECTS(delta > 0.0f);
  const auto n = static_cast<float>(prediction.size());
  LossResult result;
  result.grad = Tensor(prediction.shape());
  auto g = result.grad.data();
  const auto p = prediction.data();
  const auto t = target.data();
  float total = 0.0f;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const float err = p[i] - t[i];
    const float abs_err = std::abs(err);
    if (abs_err <= delta) {
      total += 0.5f * err * err;
      g[i] = err / n;
    } else {
      total += delta * (abs_err - 0.5f * delta);
      g[i] = (err > 0.0f ? delta : -delta) / n;
    }
  }
  result.value = total / n;
  return result;
}

namespace {
std::size_t masked_count(const Tensor& mask) {
  std::size_t n = 0;
  for (const float m : mask.data()) {
    if (m != 0.0f) {
      ++n;
    }
  }
  return n;
}
}  // namespace

LossResult masked_mse_loss(const Tensor& prediction, const Tensor& target,
                           const Tensor& mask) {
  DTMSV_EXPECTS_MSG(same_shape(prediction, target) && same_shape(prediction, mask),
                    "masked_mse_loss: shape mismatch");
  const std::size_t count = masked_count(mask);
  DTMSV_EXPECTS_MSG(count > 0, "masked_mse_loss: empty mask");
  const auto n = static_cast<float>(count);
  LossResult result;
  result.grad = Tensor(prediction.shape());
  auto g = result.grad.data();
  const auto p = prediction.data();
  const auto t = target.data();
  const auto m = mask.data();
  float total = 0.0f;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (m[i] == 0.0f) {
      continue;
    }
    const float err = p[i] - t[i];
    total += err * err;
    g[i] = 2.0f * err / n;
  }
  result.value = total / n;
  return result;
}

LossResult masked_huber_loss(const Tensor& prediction, const Tensor& target,
                             const Tensor& mask, float delta) {
  DTMSV_EXPECTS_MSG(same_shape(prediction, target) && same_shape(prediction, mask),
                    "masked_huber_loss: shape mismatch");
  DTMSV_EXPECTS(delta > 0.0f);
  const std::size_t count = masked_count(mask);
  DTMSV_EXPECTS_MSG(count > 0, "masked_huber_loss: empty mask");
  const auto n = static_cast<float>(count);
  LossResult result;
  result.grad = Tensor(prediction.shape());
  auto g = result.grad.data();
  const auto p = prediction.data();
  const auto t = target.data();
  const auto m = mask.data();
  float total = 0.0f;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (m[i] == 0.0f) {
      continue;
    }
    const float err = p[i] - t[i];
    const float abs_err = std::abs(err);
    if (abs_err <= delta) {
      total += 0.5f * err * err;
      g[i] = err / n;
    } else {
      total += delta * (abs_err - 0.5f * delta);
      g[i] = (err > 0.0f ? delta : -delta) / n;
    }
  }
  result.value = total / n;
  return result;
}

}  // namespace dtmsv::nn
