// Pooling and reshaping layers for the 1D-CNN stack.
#pragma once

#include "nn/layer.hpp"

namespace dtmsv::nn {

/// Max pooling over the time axis: [N, C, L] -> [N, C, L/window] (floor;
/// a trailing partial window is pooled too when `L % window != 0`).
class MaxPool1D final : public Layer {
 public:
  explicit MaxPool1D(std::size_t window);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool1D"; }

  std::size_t window() const { return window_; }
  std::size_t output_length(std::size_t input_length) const;

 private:
  std::size_t window_;
  Shape input_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

/// Global average pooling over the time axis: [N, C, L] -> [N, C].
class GlobalAvgPool1D final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "GlobalAvgPool1D"; }

 private:
  Shape input_shape_;
};

/// Flattens all trailing axes: [N, ...] -> [N, prod(...)].
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  Shape input_shape_;
};

}  // namespace dtmsv::nn
