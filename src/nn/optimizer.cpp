#include "nn/optimizer.hpp"

#include <cmath>

namespace dtmsv::nn {

double Optimizer::clip_grad_norm(double max_norm) {
  DTMSV_EXPECTS(max_norm > 0.0);
  double sq = 0.0;
  for (const auto& p : params_) {
    for (const float g : p.grad->data()) {
      sq += static_cast<double>(g) * static_cast<double>(g);
    }
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const auto scale = static_cast<float>(max_norm / norm);
    for (auto& p : params_) {
      *p.grad *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<ParamRef> params, double learning_rate, double momentum)
    : Optimizer(std::move(params)), lr_(learning_rate), momentum_(momentum) {
  DTMSV_EXPECTS(learning_rate > 0.0);
  DTMSV_EXPECTS(momentum >= 0.0 && momentum < 1.0);
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.emplace_back(p.value->shape());
  }
}

void Sgd::set_learning_rate(double lr) {
  DTMSV_EXPECTS(lr > 0.0);
  lr_ = lr;
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto value = params_[i].value->data();
    const auto grad = params_[i].grad->data();
    auto vel = velocity_[i].data();
    for (std::size_t j = 0; j < value.size(); ++j) {
      vel[j] = static_cast<float>(momentum_) * vel[j] - static_cast<float>(lr_) * grad[j];
      value[j] += vel[j];
    }
  }
}

Adam::Adam(std::vector<ParamRef> params, double learning_rate, double beta1,
           double beta2, double epsilon)
    : Optimizer(std::move(params)),
      lr_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  DTMSV_EXPECTS(learning_rate > 0.0);
  DTMSV_EXPECTS(beta1 >= 0.0 && beta1 < 1.0);
  DTMSV_EXPECTS(beta2 >= 0.0 && beta2 < 1.0);
  DTMSV_EXPECTS(epsilon > 0.0);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->shape());
    v_.emplace_back(p.value->shape());
  }
}

void Adam::set_learning_rate(double lr) {
  DTMSV_EXPECTS(lr > 0.0);
  lr_ = lr;
}

void Adam::step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto value = params_[i].value->data();
    const auto grad = params_[i].grad->data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (std::size_t j = 0; j < value.size(); ++j) {
      const double g = grad[j];
      m[j] = static_cast<float>(beta1_ * m[j] + (1.0 - beta1_) * g);
      v[j] = static_cast<float>(beta2_ * v[j] + (1.0 - beta2_) * g * g);
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      value[j] -= static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + epsilon_));
    }
  }
}

}  // namespace dtmsv::nn
