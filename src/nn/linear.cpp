#include "nn/linear.hpp"

#include "nn/init.hpp"

namespace dtmsv::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      w_({out_features, in_features}),
      b_({out_features}),
      w_grad_({out_features, in_features}),
      b_grad_({out_features}) {
  DTMSV_EXPECTS(in_features > 0 && out_features > 0);
  xavier_uniform(w_, in_features, out_features, rng);
}

Tensor Linear::forward(const Tensor& input) {
  DTMSV_EXPECTS_MSG(input.rank() == 2 && input.dim(1) == in_features_,
                    "Linear: input must be [N, in_features]");
  input_ = input;
  Tensor out = Tensor::matmul_bt(input, w_);  // [N, out]
  const std::size_t n = out.dim(0);
  float* op = out.data().data();
  const float* bias = b_.data().data();
  for (std::size_t i = 0; i < n; ++i) {
    float* orow = op + i * out_features_;
    for (std::size_t j = 0; j < out_features_; ++j) {
      orow[j] += bias[j];
    }
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  DTMSV_EXPECTS_MSG(grad_output.rank() == 2 && grad_output.dim(1) == out_features_,
                    "Linear: grad_output must be [N, out_features]");
  DTMSV_EXPECTS_MSG(!input_.empty(), "Linear: backward before forward");
  DTMSV_EXPECTS(grad_output.dim(0) == input_.dim(0));

  // dL/dW = gradᵀ · input ; dL/db = column sums of grad ; dL/dx = grad · W
  w_grad_ += Tensor::matmul_at(grad_output, input_);
  const std::size_t n = grad_output.dim(0);
  const float* gp = grad_output.data().data();
  float* bg = b_grad_.data().data();
  for (std::size_t i = 0; i < n; ++i) {
    const float* grow = gp + i * out_features_;
    for (std::size_t j = 0; j < out_features_; ++j) {
      bg[j] += grow[j];
    }
  }
  return Tensor::matmul(grad_output, w_);
}

std::vector<ParamRef> Linear::parameters() {
  return {{&w_, &w_grad_, "weight"}, {&b_, &b_grad_, "bias"}};
}

}  // namespace dtmsv::nn
