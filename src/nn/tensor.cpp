#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "nn/kernels.hpp"
#include "util/parallel.hpp"

namespace dtmsv::nn {

namespace {
std::size_t element_count(const Shape& shape) {
  std::size_t n = 1;
  for (const std::size_t d : shape) {
    n *= d;
  }
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(element_count(shape_), 0.0f) {
  for (const std::size_t d : shape_) {
    DTMSV_EXPECTS_MSG(d > 0, "tensor dimensions must be positive");
  }
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  DTMSV_EXPECTS_MSG(data_.size() == element_count(shape_),
                    "value count does not match shape");
}

Tensor Tensor::from_vector(std::vector<float> values) {
  const std::size_t n = values.size();
  return Tensor({n}, std::move(values));
}

Tensor Tensor::from_rows(std::initializer_list<std::initializer_list<float>> rows) {
  DTMSV_EXPECTS(rows.size() > 0);
  const std::size_t cols = rows.begin()->size();
  std::vector<float> values;
  values.reserve(rows.size() * cols);
  for (const auto& row : rows) {
    DTMSV_EXPECTS_MSG(row.size() == cols, "ragged rows");
    values.insert(values.end(), row.begin(), row.end());
  }
  return Tensor({rows.size(), cols}, std::move(values));
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
  DTMSV_EXPECTS(axis < shape_.size());
  return shape_[axis];
}

float& Tensor::operator[](std::size_t i) {
  DTMSV_EXPECTS(i < data_.size());
  return data_[i];
}

float Tensor::operator[](std::size_t i) const {
  DTMSV_EXPECTS(i < data_.size());
  return data_[i];
}

float& Tensor::at2(std::size_t r, std::size_t c) {
  DTMSV_EXPECTS(rank() == 2);
  DTMSV_EXPECTS(r < shape_[0] && c < shape_[1]);
  return data_[r * shape_[1] + c];
}

float Tensor::at2(std::size_t r, std::size_t c) const {
  return const_cast<Tensor*>(this)->at2(r, c);
}

float& Tensor::at3(std::size_t n, std::size_t c, std::size_t l) {
  DTMSV_EXPECTS(rank() == 3);
  DTMSV_EXPECTS(n < shape_[0] && c < shape_[1] && l < shape_[2]);
  return data_[(n * shape_[1] + c) * shape_[2] + l];
}

float Tensor::at3(std::size_t n, std::size_t c, std::size_t l) const {
  return const_cast<Tensor*>(this)->at3(n, c, l);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  DTMSV_EXPECTS_MSG(element_count(new_shape) == data_.size(),
                    "reshape must preserve element count");
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor& Tensor::operator+=(const Tensor& other) {
  DTMSV_EXPECTS_MSG(same_shape(*this, other), "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  DTMSV_EXPECTS_MSG(same_shape(*this, other), "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= other.data_[i];
  }
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) {
    v *= scalar;
  }
  return *this;
}

float Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0f);
}

float Tensor::mean() const {
  DTMSV_EXPECTS(!data_.empty());
  return sum() / static_cast<float>(data_.size());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (const float v : data_) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

namespace {

// The row kernels live in nn/kernels.hpp, templated on the SIMD backend;
// the entry points here instantiate the build's default backend (lanes =
// output columns, per-element ascending-kk chains — bit-identical across
// backends, tile sizes, and thread counts).
using Backend = util::simd::default_backend;

// Row blocks below this many multiply-adds run on the calling thread;
// parallel dispatch overhead would dominate smaller products.
constexpr std::size_t kParallelFlops = 1u << 17;

std::size_t row_grain(std::size_t per_row_flops) {
  return std::max<std::size_t>(1, kParallelFlops / std::max<std::size_t>(1, per_row_flops));
}

// matmul_bt on this many output rows or more transposes b once and runs
// the vector axpy kernel over the transposed operand — same per-element
// ascending-kk chain as the dot-product form, so the two paths agree
// bit-for-bit and the cutoff is purely a performance choice. Below it
// (the 1-row DDQN act/q_values forwards) the transpose would cost more
// than the product.
constexpr std::size_t kBtTransposeMinRows = 8;

// Below this many output columns the direct batch path runs mostly in its
// scalar tail (an AVX-512 pack is 16 lanes); a wide-m narrow-n product is
// served better by the transposed-output form.
constexpr std::size_t kBtMinDirectCols = 16;

}  // namespace

Tensor Tensor::matmul(const Tensor& a, const Tensor& b) {
  DTMSV_EXPECTS(a.rank() == 2 && b.rank() == 2);
  DTMSV_EXPECTS_MSG(a.dim(1) == b.dim(0), "inner dimensions must agree");
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(1);
  Tensor out({m, n});
  const float* ap = a.data_.data();
  const float* bp = b.data_.data();
  float* op = out.data_.data();
  util::parallel_for(0, m, row_grain(k * n), [&](std::size_t i0, std::size_t i1) {
    kernels::matmul_rows<Backend>(ap, bp, op, i0, i1, k, n);
  });
  return out;
}

Tensor Tensor::matmul_bt(const Tensor& a, const Tensor& b) {
  DTMSV_EXPECTS(a.rank() == 2 && b.rank() == 2);
  DTMSV_EXPECTS_MSG(a.dim(1) == b.dim(1), "inner dimensions must agree (b transposed)");
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(0);
  Tensor out({m, n});
  const float* ap = a.data_.data();
  const float* bp = b.data_.data();
  float* op = out.data_.data();
  if (m >= kBtTransposeMinRows) {
    if (n < kBtMinDirectCols && m > n) {
      // Narrow output (e.g. a wide batch against a head with few units):
      // too few columns to fill vector lanes directly, so compute outᵀ =
      // b · aᵀ instead — lanes become output *rows*, of which there are
      // many. fma(x, y, acc) == fma(y, x, acc) exactly, so each (i, j)
      // still accumulates the scalar reference chain in ascending kk.
      std::vector<float> at(k * m);
      kernels::transpose(ap, at.data(), m, k);
      std::vector<float> ot(n * m, 0.0f);
      kernels::matmul_rows<Backend>(bp, at.data(), ot.data(), 0, n, k, m);
      kernels::transpose(ot.data(), op, n, m);
      return out;
    }
    // Batch path: transpose b once, then the product is a plain a · bᵗ
    // matmul on contiguous columns the vector kernel can eat.
    std::vector<float> bt(k * n);
    kernels::transpose(bp, bt.data(), n, k);
    const float* btp = bt.data();
    util::parallel_for(0, m, row_grain(k * n), [&](std::size_t i0, std::size_t i1) {
      kernels::matmul_rows<Backend>(ap, btp, op, i0, i1, k, n);
    });
    return out;
  }
  util::parallel_for(0, m, row_grain(k * n), [&](std::size_t i0, std::size_t i1) {
    kernels::matmul_bt_rows(ap, bp, op, i0, i1, k, n);
  });
  return out;
}

Tensor Tensor::matmul_at(const Tensor& a, const Tensor& b) {
  DTMSV_EXPECTS(a.rank() == 2 && b.rank() == 2);
  DTMSV_EXPECTS_MSG(a.dim(0) == b.dim(0), "inner dimensions must agree (a transposed)");
  const std::size_t k = a.dim(0);
  const std::size_t m = a.dim(1);
  const std::size_t n = b.dim(1);
  Tensor out({m, n});
  const float* ap = a.data_.data();
  const float* bp = b.data_.data();
  float* op = out.data_.data();
  util::parallel_for(0, m, row_grain(k * n), [&](std::size_t i0, std::size_t i1) {
    kernels::matmul_at_rows<Backend>(ap, bp, op, i0, i1, k, m, n);
  });
  return out;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

bool same_shape(const Tensor& a, const Tensor& b) { return a.shape() == b.shape(); }

}  // namespace dtmsv::nn
