#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/parallel.hpp"

namespace dtmsv::nn {

namespace {
std::size_t element_count(const Shape& shape) {
  std::size_t n = 1;
  for (const std::size_t d : shape) {
    n *= d;
  }
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(element_count(shape_), 0.0f) {
  for (const std::size_t d : shape_) {
    DTMSV_EXPECTS_MSG(d > 0, "tensor dimensions must be positive");
  }
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  DTMSV_EXPECTS_MSG(data_.size() == element_count(shape_),
                    "value count does not match shape");
}

Tensor Tensor::from_vector(std::vector<float> values) {
  const std::size_t n = values.size();
  return Tensor({n}, std::move(values));
}

Tensor Tensor::from_rows(std::initializer_list<std::initializer_list<float>> rows) {
  DTMSV_EXPECTS(rows.size() > 0);
  const std::size_t cols = rows.begin()->size();
  std::vector<float> values;
  values.reserve(rows.size() * cols);
  for (const auto& row : rows) {
    DTMSV_EXPECTS_MSG(row.size() == cols, "ragged rows");
    values.insert(values.end(), row.begin(), row.end());
  }
  return Tensor({rows.size(), cols}, std::move(values));
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
  DTMSV_EXPECTS(axis < shape_.size());
  return shape_[axis];
}

float& Tensor::operator[](std::size_t i) {
  DTMSV_EXPECTS(i < data_.size());
  return data_[i];
}

float Tensor::operator[](std::size_t i) const {
  DTMSV_EXPECTS(i < data_.size());
  return data_[i];
}

float& Tensor::at2(std::size_t r, std::size_t c) {
  DTMSV_EXPECTS(rank() == 2);
  DTMSV_EXPECTS(r < shape_[0] && c < shape_[1]);
  return data_[r * shape_[1] + c];
}

float Tensor::at2(std::size_t r, std::size_t c) const {
  return const_cast<Tensor*>(this)->at2(r, c);
}

float& Tensor::at3(std::size_t n, std::size_t c, std::size_t l) {
  DTMSV_EXPECTS(rank() == 3);
  DTMSV_EXPECTS(n < shape_[0] && c < shape_[1] && l < shape_[2]);
  return data_[(n * shape_[1] + c) * shape_[2] + l];
}

float Tensor::at3(std::size_t n, std::size_t c, std::size_t l) const {
  return const_cast<Tensor*>(this)->at3(n, c, l);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  DTMSV_EXPECTS_MSG(element_count(new_shape) == data_.size(),
                    "reshape must preserve element count");
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor& Tensor::operator+=(const Tensor& other) {
  DTMSV_EXPECTS_MSG(same_shape(*this, other), "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  DTMSV_EXPECTS_MSG(same_shape(*this, other), "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= other.data_[i];
  }
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) {
    v *= scalar;
  }
  return *this;
}

float Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0f);
}

float Tensor::mean() const {
  DTMSV_EXPECTS(!data_.empty());
  return sum() / static_cast<float>(data_.size());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (const float v : data_) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

namespace {

// Cache tiles for the blocked kernels. The b-tile (kTileK x kTileJ floats,
// 32 KiB) stays L1/L2-resident while it is reused across a block of output
// rows. Accumulation order per output element is always ascending kk, so
// tiled results are bit-identical to the untiled triple loop and to
// themselves for any tile size or thread count.
constexpr std::size_t kTileI = 32;
constexpr std::size_t kTileJ = 128;
constexpr std::size_t kTileK = 64;

// Row blocks below this many multiply-adds run on the calling thread;
// parallel dispatch overhead would dominate smaller products.
constexpr std::size_t kParallelFlops = 1u << 17;

std::size_t row_grain(std::size_t per_row_flops) {
  return std::max<std::size_t>(1, kParallelFlops / std::max<std::size_t>(1, per_row_flops));
}

/// out[i0..i1) += a · b for row-major a (m×k), b (k×n).
void matmul_rows(const float* a, const float* b, float* out, std::size_t i0,
                 std::size_t i1, std::size_t k, std::size_t n) {
  for (std::size_t ib = i0; ib < i1; ib += kTileI) {
    const std::size_t ie = std::min(ib + kTileI, i1);
    for (std::size_t kb = 0; kb < k; kb += kTileK) {
      const std::size_t ke = std::min(kb + kTileK, k);
      for (std::size_t jb = 0; jb < n; jb += kTileJ) {
        const std::size_t je = std::min(jb + kTileJ, n);
        for (std::size_t i = ib; i < ie; ++i) {
          const float* arow = a + i * k;
          float* orow = out + i * n;
          for (std::size_t kk = kb; kk < ke; ++kk) {
            const float av = arow[kk];
            const float* brow = b + kk * n;
            for (std::size_t j = jb; j < je; ++j) {
              orow[j] = fused_madd(av, brow[j], orow[j]);
            }
          }
        }
      }
    }
  }
}

/// out[i0..i1) = a · bᵀ for row-major a (m×k), b (n×k). Four independent
/// dot-product chains per iteration break the serial FP dependency while
/// keeping every (i, j) accumulation in ascending kk order.
void matmul_bt_rows(const float* a, const float* b, float* out, std::size_t i0,
                    std::size_t i1, std::size_t k, std::size_t n) {
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + (j + 0) * k;
      const float* b1 = b + (j + 1) * k;
      const float* b2 = b + (j + 2) * k;
      const float* b3 = b + (j + 3) * k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        acc0 = fused_madd(av, b0[kk], acc0);
        acc1 = fused_madd(av, b1[kk], acc1);
        acc2 = fused_madd(av, b2[kk], acc2);
        acc3 = fused_madd(av, b3[kk], acc3);
      }
      orow[j + 0] = acc0;
      orow[j + 1] = acc1;
      orow[j + 2] = acc2;
      orow[j + 3] = acc3;
    }
    for (; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc = fused_madd(arow[kk], brow[kk], acc);
      }
      orow[j] = acc;
    }
  }
}

/// out[i0..i1) += aᵀ · b for row-major a (k×m), b (k×n).
void matmul_at_rows(const float* a, const float* b, float* out, std::size_t i0,
                    std::size_t i1, std::size_t k, std::size_t m, std::size_t n) {
  for (std::size_t ib = i0; ib < i1; ib += kTileI) {
    const std::size_t ie = std::min(ib + kTileI, i1);
    for (std::size_t kb = 0; kb < k; kb += kTileK) {
      const std::size_t ke = std::min(kb + kTileK, k);
      for (std::size_t i = ib; i < ie; ++i) {
        float* orow = out + i * n;
        for (std::size_t kk = kb; kk < ke; ++kk) {
          const float av = a[kk * m + i];
          const float* brow = b + kk * n;
          for (std::size_t j = 0; j < n; ++j) {
            orow[j] = fused_madd(av, brow[j], orow[j]);
          }
        }
      }
    }
  }
}

}  // namespace

Tensor Tensor::matmul(const Tensor& a, const Tensor& b) {
  DTMSV_EXPECTS(a.rank() == 2 && b.rank() == 2);
  DTMSV_EXPECTS_MSG(a.dim(1) == b.dim(0), "inner dimensions must agree");
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(1);
  Tensor out({m, n});
  const float* ap = a.data_.data();
  const float* bp = b.data_.data();
  float* op = out.data_.data();
  util::parallel_for(0, m, row_grain(k * n), [&](std::size_t i0, std::size_t i1) {
    matmul_rows(ap, bp, op, i0, i1, k, n);
  });
  return out;
}

Tensor Tensor::matmul_bt(const Tensor& a, const Tensor& b) {
  DTMSV_EXPECTS(a.rank() == 2 && b.rank() == 2);
  DTMSV_EXPECTS_MSG(a.dim(1) == b.dim(1), "inner dimensions must agree (b transposed)");
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(0);
  Tensor out({m, n});
  const float* ap = a.data_.data();
  const float* bp = b.data_.data();
  float* op = out.data_.data();
  util::parallel_for(0, m, row_grain(k * n), [&](std::size_t i0, std::size_t i1) {
    matmul_bt_rows(ap, bp, op, i0, i1, k, n);
  });
  return out;
}

Tensor Tensor::matmul_at(const Tensor& a, const Tensor& b) {
  DTMSV_EXPECTS(a.rank() == 2 && b.rank() == 2);
  DTMSV_EXPECTS_MSG(a.dim(0) == b.dim(0), "inner dimensions must agree (a transposed)");
  const std::size_t k = a.dim(0);
  const std::size_t m = a.dim(1);
  const std::size_t n = b.dim(1);
  Tensor out({m, n});
  const float* ap = a.data_.data();
  const float* bp = b.data_.data();
  float* op = out.data_.data();
  util::parallel_for(0, m, row_grain(k * n), [&](std::size_t i0, std::size_t i1) {
    matmul_at_rows(ap, bp, op, i0, i1, k, m, n);
  });
  return out;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

bool same_shape(const Tensor& a, const Tensor& b) { return a.shape() == b.shape(); }

}  // namespace dtmsv::nn
