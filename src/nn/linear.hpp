// Fully connected layer: y = x·Wᵀ + b, batched over rows.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace dtmsv::nn {

/// Linear (dense) layer mapping [N, in_features] -> [N, out_features].
class Linear final : public Layer {
 public:
  /// Weights are Xavier-initialised from `rng`; biases start at zero.
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  std::string name() const override { return "Linear"; }

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

  /// Direct parameter access (used by serialisation and tests).
  Tensor& weights() { return w_; }
  Tensor& bias() { return b_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  Tensor w_;       // [out, in]
  Tensor b_;       // [out]
  Tensor w_grad_;  // [out, in]
  Tensor b_grad_;  // [out]
  Tensor input_;   // cached forward input [N, in]
};

}  // namespace dtmsv::nn
