// Elementwise activation layers (shape preserving).
#pragma once

#include "nn/layer.hpp"

namespace dtmsv::nn {

/// Rectified linear unit: max(0, x).
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor mask_;  // 1 where input > 0
};

/// Hyperbolic tangent.
class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor output_;
};

/// Logistic sigmoid.
class Sigmoid final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor output_;
};

}  // namespace dtmsv::nn
