// First-order optimisers operating on ParamRef views.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace dtmsv::nn {

/// Optimiser interface: step() applies accumulated gradients and the caller
/// is responsible for zeroing them afterwards (Layer::zero_grad).
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  virtual void step() = 0;

  /// Clips the global gradient L2 norm to `max_norm` (no-op when below).
  /// Returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

 protected:
  explicit Optimizer(std::vector<ParamRef> params) : params_(std::move(params)) {}
  std::vector<ParamRef> params_;
};

/// Stochastic gradient descent with optional momentum.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<ParamRef> params, double learning_rate, double momentum = 0.0);

  void step() override;

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr);

 private:
  double lr_;
  double momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<ParamRef> params, double learning_rate, double beta1 = 0.9,
       double beta2 = 0.999, double epsilon = 1e-8);

  void step() override;

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr);
  std::size_t step_count() const { return t_; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double epsilon_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace dtmsv::nn
