// Finite-difference gradient verification used by the nn test suite to
// prove every layer's backward pass against its forward pass.
#pragma once

#include <functional>

#include "nn/layer.hpp"

namespace dtmsv::nn {

/// Result of a gradient check: worst relative error across all checked
/// coordinates (parameters and inputs).
struct GradientCheckResult {
  double max_param_error = 0.0;
  double max_input_error = 0.0;
  bool ok(double tolerance = 1e-2) const {
    return max_param_error < tolerance && max_input_error < tolerance;
  }
};

/// Compares analytic gradients of `scalar_loss(forward(x))` against central
/// finite differences. `loss` must be deterministic. Perturbation size
/// `epsilon` trades truncation vs. float rounding error; 1e-2..1e-3 works
/// for float32.
GradientCheckResult check_gradients(Layer& layer, const Tensor& input,
                                    const std::function<float(const Tensor&)>& loss,
                                    const std::function<Tensor(const Tensor&)>& loss_grad,
                                    float epsilon = 1e-2f);

}  // namespace dtmsv::nn
