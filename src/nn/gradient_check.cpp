#include "nn/gradient_check.hpp"

#include <algorithm>
#include <cmath>

namespace dtmsv::nn {

namespace {
double relative_error(double analytic, double numeric) {
  const double denom = std::max({std::abs(analytic), std::abs(numeric), 1e-4});
  return std::abs(analytic - numeric) / denom;
}
}  // namespace

GradientCheckResult check_gradients(Layer& layer, const Tensor& input,
                                    const std::function<float(const Tensor&)>& loss,
                                    const std::function<Tensor(const Tensor&)>& loss_grad,
                                    float epsilon) {
  GradientCheckResult result;

  // Analytic pass.
  layer.zero_grad();
  const Tensor out = layer.forward(input);
  const Tensor grad_out = loss_grad(out);
  const Tensor grad_in = layer.backward(grad_out);

  // Parameter gradients vs central differences.
  for (auto& p : layer.parameters()) {
    auto values = p.value->data();
    const auto grads = p.grad->data();
    for (std::size_t i = 0; i < values.size(); ++i) {
      const float saved = values[i];
      values[i] = saved + epsilon;
      const float plus = loss(layer.forward(input));
      values[i] = saved - epsilon;
      const float minus = loss(layer.forward(input));
      values[i] = saved;
      const double numeric = (static_cast<double>(plus) - minus) / (2.0 * epsilon);
      result.max_param_error =
          std::max(result.max_param_error, relative_error(grads[i], numeric));
    }
  }

  // Input gradients vs central differences.
  Tensor x = input;
  auto xdata = x.data();
  const auto gi = grad_in.data();
  for (std::size_t i = 0; i < xdata.size(); ++i) {
    const float saved = xdata[i];
    xdata[i] = saved + epsilon;
    const float plus = loss(layer.forward(x));
    xdata[i] = saved - epsilon;
    const float minus = loss(layer.forward(x));
    xdata[i] = saved;
    const double numeric = (static_cast<double>(plus) - minus) / (2.0 * epsilon);
    result.max_input_error =
        std::max(result.max_input_error, relative_error(gi[i], numeric));
  }

  // Restore cached activations to the unperturbed input.
  (void)layer.forward(input);
  return result;
}

}  // namespace dtmsv::nn
