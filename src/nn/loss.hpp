// Loss functions returning (value, gradient-w.r.t.-prediction) pairs.
#pragma once

#include "nn/tensor.hpp"

namespace dtmsv::nn {

/// Loss value plus dL/dprediction, ready to feed into Layer::backward.
struct LossResult {
  float value = 0.0f;
  Tensor grad;
};

/// Mean squared error averaged over all elements.
LossResult mse_loss(const Tensor& prediction, const Tensor& target);

/// Huber (smooth-L1) loss averaged over all elements; quadratic within
/// |err| <= delta, linear outside. The standard DQN training loss.
LossResult huber_loss(const Tensor& prediction, const Tensor& target,
                      float delta = 1.0f);

/// MSE restricted to elements where mask != 0 (used by DDQN to train only
/// the Q-value of the action actually taken). The average is over the
/// masked element count.
LossResult masked_mse_loss(const Tensor& prediction, const Tensor& target,
                           const Tensor& mask);

/// Huber restricted to masked elements.
LossResult masked_huber_loss(const Tensor& prediction, const Tensor& target,
                             const Tensor& mask, float delta = 1.0f);

}  // namespace dtmsv::nn
