// Dense row-major float tensor: the numeric substrate for the paper's
// learning components (1D-CNN compressor, DDQN Q-networks).
//
// Deliberately minimal: shapes are dynamic, storage is contiguous
// std::vector<float>, and there is no autograd graph — layers implement
// explicit forward/backward. This keeps every gradient unit-testable
// against finite differences (see nn/gradient_check.hpp).
#pragma once

#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/simd.hpp"

namespace dtmsv::nn {

/// The single multiply-accumulate primitive of every matmul kernel:
/// fused (hardware FMA) when the target has fast fmaf, plain mul-add
/// otherwise. Reference implementations (tests, future kernels) must
/// accumulate through this same function, in the same order, to stay
/// bit-identical with the tiled kernels — compiler FP-contraction choices
/// then cannot make two "equivalent" loops disagree. Forwards to the
/// portable SIMD layer's scalar madd, whose vector packs gate FMA on the
/// same macro, so SIMD kernel lanes share these exact semantics.
inline float fused_madd(float a, float b, float acc) {
  return util::simd::madd(a, b, acc);
}

/// Shape of a tensor; empty shape denotes a scalar-like 1-element tensor.
using Shape = std::vector<std::size_t>;

/// Dense row-major float tensor.
class Tensor {
 public:
  /// Empty tensor (rank 0, zero elements). Distinct from a scalar.
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with explicit contents (size must match).
  Tensor(Shape shape, std::vector<float> values);

  /// 1-D tensor from values.
  static Tensor from_vector(std::vector<float> values);
  /// 2-D tensor from nested initialiser, row-major.
  static Tensor from_rows(std::initializer_list<std::initializer_list<float>> rows);
  /// Shape-matching tensor filled with a constant.
  static Tensor full(Shape shape, float value);
  static Tensor zeros_like(const Tensor& other) { return Tensor(other.shape()); }

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Dimension extent; requires axis < rank().
  std::size_t dim(std::size_t axis) const;

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  float& operator[](std::size_t i);
  float operator[](std::size_t i) const;

  /// 2-D element access (row, col). Requires rank() == 2.
  float& at2(std::size_t r, std::size_t c);
  float at2(std::size_t r, std::size_t c) const;

  /// 3-D element access (n, c, l). Requires rank() == 3.
  float& at3(std::size_t n, std::size_t c, std::size_t l);
  float at3(std::size_t n, std::size_t c, std::size_t l) const;

  /// Reinterprets the buffer with a new shape of identical element count.
  Tensor reshaped(Shape new_shape) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Elementwise in-place operations (shapes must match).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);

  /// Elementwise binary operations.
  friend Tensor operator+(Tensor lhs, const Tensor& rhs) { return lhs += rhs; }
  friend Tensor operator-(Tensor lhs, const Tensor& rhs) { return lhs -= rhs; }
  friend Tensor operator*(Tensor lhs, float scalar) { return lhs *= scalar; }

  /// Sum of all elements.
  float sum() const;
  /// Mean of all elements; requires non-empty.
  float mean() const;
  /// Maximum absolute element (0 for empty).
  float abs_max() const;

  /// Matrix product: (m×k) · (k×n) -> (m×n). Requires rank 2 operands.
  static Tensor matmul(const Tensor& a, const Tensor& b);
  /// Matrix product with b transposed: (m×k) · (n×k)ᵀ -> (m×n).
  static Tensor matmul_bt(const Tensor& a, const Tensor& b);
  /// Matrix product with a transposed: (k×m)ᵀ · (k×n) -> (m×n).
  static Tensor matmul_at(const Tensor& a, const Tensor& b);

  /// Human-readable shape, e.g. "[32, 4, 16]".
  std::string shape_string() const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// True when shapes are identical.
bool same_shape(const Tensor& a, const Tensor& b);

}  // namespace dtmsv::nn
