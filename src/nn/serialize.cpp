#include "nn/serialize.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace dtmsv::nn {

namespace {
constexpr const char* kMagic = "dtmsv-params-v1";
}

void save_parameters(Layer& model, std::ostream& os) {
  const auto params = model.parameters();
  os << kMagic << '\n' << params.size() << '\n';
  os.precision(9);
  for (const auto& p : params) {
    os << p.name << ' ' << p.value->rank();
    for (std::size_t i = 0; i < p.value->rank(); ++i) {
      os << ' ' << p.value->dim(i);
    }
    os << '\n';
    for (const float v : p.value->data()) {
      os << v << ' ';
    }
    os << '\n';
  }
  if (!os) {
    throw util::RuntimeError("save_parameters: stream write failed");
  }
}

void save_parameters(Layer& model, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw util::RuntimeError("save_parameters: cannot open " + path);
  }
  save_parameters(model, os);
}

void load_parameters(Layer& model, std::istream& is) {
  std::string magic;
  is >> magic;
  if (magic != kMagic) {
    throw util::RuntimeError("load_parameters: bad magic '" + magic + "'");
  }
  std::size_t count = 0;
  is >> count;
  auto params = model.parameters();
  if (count != params.size()) {
    std::ostringstream msg;
    msg << "load_parameters: parameter count mismatch (file " << count
        << ", model " << params.size() << ")";
    throw util::RuntimeError(msg.str());
  }
  for (auto& p : params) {
    std::string name;
    std::size_t rank = 0;
    is >> name >> rank;
    if (rank != p.value->rank()) {
      throw util::RuntimeError("load_parameters: rank mismatch for " + name);
    }
    for (std::size_t i = 0; i < rank; ++i) {
      std::size_t d = 0;
      is >> d;
      if (d != p.value->dim(i)) {
        throw util::RuntimeError("load_parameters: shape mismatch for " + name);
      }
    }
    for (float& v : p.value->data()) {
      is >> v;
    }
    if (!is) {
      throw util::RuntimeError("load_parameters: truncated stream at " + name);
    }
  }
}

void load_parameters(Layer& model, const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw util::RuntimeError("load_parameters: cannot open " + path);
  }
  load_parameters(model, is);
}

void copy_parameters(Layer& src, Layer& dst) {
  const auto from = src.parameters();
  auto to = dst.parameters();
  DTMSV_EXPECTS_MSG(from.size() == to.size(), "copy_parameters: layout mismatch");
  for (std::size_t i = 0; i < from.size(); ++i) {
    DTMSV_EXPECTS_MSG(same_shape(*from[i].value, *to[i].value),
                      "copy_parameters: shape mismatch");
    *to[i].value = *from[i].value;
  }
}

void soft_update(Layer& src, Layer& dst, double tau) {
  DTMSV_EXPECTS(tau >= 0.0 && tau <= 1.0);
  const auto from = src.parameters();
  auto to = dst.parameters();
  DTMSV_EXPECTS_MSG(from.size() == to.size(), "soft_update: layout mismatch");
  for (std::size_t i = 0; i < from.size(); ++i) {
    DTMSV_EXPECTS_MSG(same_shape(*from[i].value, *to[i].value),
                      "soft_update: shape mismatch");
    auto dst_data = to[i].value->data();
    const auto src_data = from[i].value->data();
    for (std::size_t j = 0; j < dst_data.size(); ++j) {
      dst_data[j] = static_cast<float>(tau * src_data[j] + (1.0 - tau) * dst_data[j]);
    }
  }
}

}  // namespace dtmsv::nn
