// Parameter (de)serialisation: a simple, versioned text format so trained
// compressors / Q-networks can be saved and reloaded between runs, and so
// target networks can be cloned from online networks.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/layer.hpp"

namespace dtmsv::nn {

/// Writes all parameters of `model` to the stream.
void save_parameters(Layer& model, std::ostream& os);
void save_parameters(Layer& model, const std::string& path);

/// Loads parameters into `model`; shapes must match exactly, otherwise
/// util::RuntimeError is thrown.
void load_parameters(Layer& model, std::istream& is);
void load_parameters(Layer& model, const std::string& path);

/// Copies parameter values from `src` into `dst` (shapes must match).
/// Used for target-network synchronisation in DDQN.
void copy_parameters(Layer& src, Layer& dst);

/// Polyak/soft update: dst = tau*src + (1-tau)*dst.
void soft_update(Layer& src, Layer& dst, double tau);

}  // namespace dtmsv::nn
