// Weight initialisation schemes.
#pragma once

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace dtmsv::nn {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& weights, std::size_t fan_in, std::size_t fan_out,
                    util::Rng& rng);

/// Kaiming/He normal for ReLU fan-in: N(0, sqrt(2 / fan_in)).
void kaiming_normal(Tensor& weights, std::size_t fan_in, util::Rng& rng);

}  // namespace dtmsv::nn
