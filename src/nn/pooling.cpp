#include "nn/pooling.hpp"

#include <algorithm>
#include <limits>

namespace dtmsv::nn {

MaxPool1D::MaxPool1D(std::size_t window) : window_(window) {
  DTMSV_EXPECTS(window > 0);
}

std::size_t MaxPool1D::output_length(std::size_t input_length) const {
  DTMSV_EXPECTS(input_length > 0);
  return (input_length + window_ - 1) / window_;
}

Tensor MaxPool1D::forward(const Tensor& input) {
  DTMSV_EXPECTS_MSG(input.rank() == 3, "MaxPool1D: input must be [N, C, L]");
  input_shape_ = input.shape();
  const std::size_t n = input.dim(0);
  const std::size_t c = input.dim(1);
  const std::size_t len = input.dim(2);
  const std::size_t out_len = output_length(len);

  Tensor out({n, c, out_len});
  argmax_.assign(n * c * out_len, 0);
  const float* in = input.data().data();
  float* op = out.data().data();
  for (std::size_t row = 0; row < n * c; ++row) {
    const float* irow = in + row * len;
    float* orow = op + row * out_len;
    for (std::size_t t = 0; t < out_len; ++t) {
      const std::size_t start = t * window_;
      const std::size_t stop = std::min(start + window_, len);
      float best = -std::numeric_limits<float>::infinity();
      std::size_t best_idx = start;
      for (std::size_t l = start; l < stop; ++l) {
        if (irow[l] > best) {
          best = irow[l];
          best_idx = l;
        }
      }
      orow[t] = best;
      argmax_[row * out_len + t] = row * len + best_idx;
    }
  }
  return out;
}

Tensor MaxPool1D::backward(const Tensor& grad_output) {
  DTMSV_EXPECTS_MSG(!input_shape_.empty(), "MaxPool1D: backward before forward");
  const std::size_t n = input_shape_[0];
  const std::size_t c = input_shape_[1];
  const std::size_t len = input_shape_[2];
  const std::size_t out_len = output_length(len);
  DTMSV_EXPECTS(grad_output.rank() == 3 && grad_output.dim(0) == n &&
                grad_output.dim(1) == c && grad_output.dim(2) == out_len);

  Tensor grad_input(input_shape_);
  auto gi = grad_input.data();
  const auto go = grad_output.data();
  for (std::size_t i = 0; i < go.size(); ++i) {
    gi[argmax_[i]] += go[i];
  }
  return grad_input;
}

Tensor GlobalAvgPool1D::forward(const Tensor& input) {
  DTMSV_EXPECTS_MSG(input.rank() == 3, "GlobalAvgPool1D: input must be [N, C, L]");
  input_shape_ = input.shape();
  const std::size_t n = input.dim(0);
  const std::size_t c = input.dim(1);
  const std::size_t len = input.dim(2);

  Tensor out({n, c});
  const float* in = input.data().data();
  float* op = out.data().data();
  for (std::size_t row = 0; row < n * c; ++row) {
    const float* irow = in + row * len;
    float acc = 0.0f;
    for (std::size_t l = 0; l < len; ++l) {
      acc += irow[l];
    }
    op[row] = acc / static_cast<float>(len);
  }
  return out;
}

Tensor GlobalAvgPool1D::backward(const Tensor& grad_output) {
  DTMSV_EXPECTS_MSG(!input_shape_.empty(), "GlobalAvgPool1D: backward before forward");
  const std::size_t n = input_shape_[0];
  const std::size_t c = input_shape_[1];
  const std::size_t len = input_shape_[2];
  DTMSV_EXPECTS(grad_output.rank() == 2 && grad_output.dim(0) == n &&
                grad_output.dim(1) == c);

  Tensor grad_input(input_shape_);
  const float scale = 1.0f / static_cast<float>(len);
  const float* go = grad_output.data().data();
  float* gi = grad_input.data().data();
  for (std::size_t row = 0; row < n * c; ++row) {
    const float g = go[row] * scale;
    float* grow = gi + row * len;
    for (std::size_t l = 0; l < len; ++l) {
      grow[l] = g;
    }
  }
  return grad_input;
}

Tensor Flatten::forward(const Tensor& input) {
  DTMSV_EXPECTS_MSG(input.rank() >= 2, "Flatten: input must be batched");
  input_shape_ = input.shape();
  std::size_t features = 1;
  for (std::size_t i = 1; i < input_shape_.size(); ++i) {
    features *= input_shape_[i];
  }
  return input.reshaped({input_shape_[0], features});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  DTMSV_EXPECTS_MSG(!input_shape_.empty(), "Flatten: backward before forward");
  return grad_output.reshaped(input_shape_);
}

}  // namespace dtmsv::nn
