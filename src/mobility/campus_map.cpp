#include "mobility/campus_map.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace dtmsv::mobility {

double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

CampusMap::CampusMap(std::vector<Waypoint> waypoints, std::vector<Position> base_stations,
                     double width, double height)
    : waypoints_(std::move(waypoints)),
      base_stations_(std::move(base_stations)),
      width_(width),
      height_(height) {
  validate();
}

namespace {
void connect(std::vector<Waypoint>& wps, std::size_t a, std::size_t b) {
  wps[a].neighbors.push_back(b);
  wps[b].neighbors.push_back(a);
}
}  // namespace

CampusMap CampusMap::waterloo_campus() {
  // Coordinates in metres, loosely following the relative layout of the
  // UWaterloo ring road area; origin at the southwest corner.
  std::vector<Waypoint> wps = {
      {"DC", {620, 620}, {}},    // 0 Davis Centre
      {"MC", {520, 600}, {}},    // 1 Math & Computer
      {"QNC", {600, 520}, {}},   // 2 Quantum Nano Centre
      {"SLC", {480, 500}, {}},   // 3 Student Life Centre
      {"PAC", {400, 540}, {}},   // 4 Physical Activities Complex
      {"E7", {760, 560}, {}},    // 5 Engineering 7
      {"E5", {740, 480}, {}},    // 6 Engineering 5
      {"RCH", {660, 400}, {}},   // 7 Rod Coutts Hall
      {"DP", {540, 420}, {}},    // 8 Dana Porter Library
      {"AL", {460, 380}, {}},    // 9 Arts Lecture Hall
      {"HH", {420, 300}, {}},    // 10 Hagey Hall
      {"SCH", {700, 300}, {}},   // 11 South Campus Hall
      {"V1", {240, 640}, {}},    // 12 Village 1 residence
      {"REV", {180, 520}, {}},   // 13 Ron Eydt Village
      {"CLV", {160, 340}, {}},   // 14 Columbia Lake Village
      {"UWP", {880, 660}, {}},   // 15 UW Place residence
      {"CIF", {560, 860}, {}},   // 16 Columbia Icefield
      {"OPT", {480, 760}, {}},   // 17 Optometry
      {"BMH", {360, 680}, {}},   // 18 B.C. Matthews Hall
      {"TC", {640, 720}, {}},    // 19 Tatham Centre
      {"GSC", {820, 780}, {}},   // 20 General Services
      {"LIB", {340, 440}, {}},   // 21 Porter green
      {"RING-N", {560, 700}, {}},  // 22 ring road north
      {"RING-S", {560, 260}, {}},  // 23 ring road south
  };

  connect(wps, 0, 1);
  connect(wps, 0, 2);
  connect(wps, 0, 5);
  connect(wps, 0, 19);
  connect(wps, 1, 3);
  connect(wps, 1, 4);
  connect(wps, 1, 22);
  connect(wps, 2, 6);
  connect(wps, 2, 8);
  connect(wps, 3, 4);
  connect(wps, 3, 8);
  connect(wps, 3, 9);
  connect(wps, 4, 21);
  connect(wps, 4, 18);
  connect(wps, 5, 6);
  connect(wps, 5, 15);
  connect(wps, 6, 7);
  connect(wps, 7, 11);
  connect(wps, 7, 8);
  connect(wps, 8, 9);
  connect(wps, 9, 10);
  connect(wps, 9, 21);
  connect(wps, 10, 23);
  connect(wps, 11, 23);
  connect(wps, 12, 13);
  connect(wps, 12, 18);
  connect(wps, 13, 14);
  connect(wps, 13, 21);
  connect(wps, 14, 10);
  connect(wps, 15, 20);
  connect(wps, 16, 17);
  connect(wps, 16, 22);
  connect(wps, 17, 18);
  connect(wps, 19, 20);
  connect(wps, 19, 22);
  connect(wps, 22, 0);
  connect(wps, 23, 8);

  // Three BS sites covering the campus core and residences.
  std::vector<Position> bs = {{560, 560}, {240, 480}, {800, 680}};
  return CampusMap(std::move(wps), std::move(bs), 1200.0, 1000.0);
}

CampusMap CampusMap::grid(std::size_t cols, std::size_t rows, double spacing) {
  DTMSV_EXPECTS(cols >= 2 && rows >= 2);
  DTMSV_EXPECTS(spacing > 0.0);
  std::vector<Waypoint> wps;
  wps.reserve(cols * rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      wps.push_back({"g" + std::to_string(r) + "_" + std::to_string(c),
                     {spacing * static_cast<double>(c) + spacing / 2.0,
                      spacing * static_cast<double>(r) + spacing / 2.0},
                     {}});
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t i = r * cols + c;
      if (c + 1 < cols) {
        connect(wps, i, i + 1);
      }
      if (r + 1 < rows) {
        connect(wps, i, i + cols);
      }
    }
  }
  const double w = spacing * static_cast<double>(cols);
  const double h = spacing * static_cast<double>(rows);
  std::vector<Position> bs = {{w / 2.0, h / 2.0}};
  return CampusMap(std::move(wps), std::move(bs), w, h);
}

const Waypoint& CampusMap::waypoint(std::size_t i) const {
  DTMSV_EXPECTS(i < waypoints_.size());
  return waypoints_[i];
}

Position CampusMap::random_position(util::Rng& rng) const {
  return {rng.uniform(0.0, width_), rng.uniform(0.0, height_)};
}

std::size_t CampusMap::nearest_waypoint(const Position& p) const {
  DTMSV_EXPECTS(!waypoints_.empty());
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < waypoints_.size(); ++i) {
    const double d = distance(p, waypoints_[i].position);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

std::vector<std::size_t> CampusMap::shortest_path(std::size_t from, std::size_t to) const {
  DTMSV_EXPECTS(from < waypoints_.size() && to < waypoints_.size());
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(waypoints_.size(), inf);
  std::vector<std::size_t> prev(waypoints_.size(), waypoints_.size());
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  dist[from] = 0.0;
  queue.push({0.0, from});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) {
      continue;
    }
    if (u == to) {
      break;
    }
    for (const std::size_t v : waypoints_[u].neighbors) {
      const double w = distance(waypoints_[u].position, waypoints_[v].position);
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        prev[v] = u;
        queue.push({dist[v], v});
      }
    }
  }
  if (dist[to] == inf) {
    return {};
  }
  std::vector<std::size_t> path;
  for (std::size_t v = to; v != from; v = prev[v]) {
    path.push_back(v);
  }
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

void CampusMap::validate() const {
  DTMSV_EXPECTS_MSG(!waypoints_.empty(), "campus: no waypoints");
  DTMSV_EXPECTS_MSG(!base_stations_.empty(), "campus: no base stations");
  DTMSV_EXPECTS(width_ > 0.0 && height_ > 0.0);

  // Symmetric adjacency.
  for (std::size_t i = 0; i < waypoints_.size(); ++i) {
    for (const std::size_t j : waypoints_[i].neighbors) {
      DTMSV_ENSURES(j < waypoints_.size());
      const auto& back = waypoints_[j].neighbors;
      if (std::find(back.begin(), back.end(), i) == back.end()) {
        throw util::InvariantError("campus: asymmetric edge " + std::to_string(i) +
                                   "->" + std::to_string(j));
      }
    }
  }

  // Connectivity via BFS.
  std::vector<bool> seen(waypoints_.size(), false);
  std::queue<std::size_t> queue;
  queue.push(0);
  seen[0] = true;
  std::size_t visited = 0;
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop();
    ++visited;
    for (const std::size_t v : waypoints_[u].neighbors) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push(v);
      }
    }
  }
  if (visited != waypoints_.size()) {
    throw util::InvariantError("campus: waypoint graph is disconnected");
  }
}

}  // namespace dtmsv::mobility
