// Campus geography: a waypoint graph approximating the University of
// Waterloo campus on which the paper initialises users ("Users are initially
// randomly generated in the University of Waterloo campus and then move
// along different trajectories").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dtmsv::mobility {

/// Planar position in metres.
struct Position {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance between two positions.
double distance(const Position& a, const Position& b);

/// Named waypoint (building / intersection) in the campus graph.
struct Waypoint {
  std::string name;
  Position position;
  /// Indices of connected waypoints (walkable paths).
  std::vector<std::size_t> neighbors;
};

/// Walkable campus model: a connected waypoint graph inside a bounding box.
class CampusMap {
 public:
  /// Builds the default UWaterloo-like campus: a 1200 m × 1000 m area with
  /// buildings (DC, MC, E7, SLC, PAC, QNC, ...) joined by paths, and base
  /// station sites at fixed coordinates.
  static CampusMap waterloo_campus();

  /// Builds a synthetic grid campus (for tests and scalability benches):
  /// `cols` × `rows` waypoints spaced `spacing` metres apart, 4-connected.
  static CampusMap grid(std::size_t cols, std::size_t rows, double spacing);

  std::size_t waypoint_count() const { return waypoints_.size(); }
  const Waypoint& waypoint(std::size_t i) const;
  const std::vector<Waypoint>& waypoints() const { return waypoints_; }

  double width() const { return width_; }
  double height() const { return height_; }

  /// Base station sites (positions with full campus coverage between them).
  const std::vector<Position>& base_stations() const { return base_stations_; }

  /// Uniformly random position within the bounding box.
  Position random_position(util::Rng& rng) const;

  /// Index of the waypoint nearest to `p`.
  std::size_t nearest_waypoint(const Position& p) const;

  /// Shortest path (by edge length) between waypoints, inclusive of both
  /// endpoints; empty when disconnected. Dijkstra over the waypoint graph.
  std::vector<std::size_t> shortest_path(std::size_t from, std::size_t to) const;

  /// Validates graph symmetry and connectivity; throws InvariantError if
  /// malformed. Called by the factory functions.
  void validate() const;

 private:
  CampusMap(std::vector<Waypoint> waypoints, std::vector<Position> base_stations,
            double width, double height);

  std::vector<Waypoint> waypoints_;
  std::vector<Position> base_stations_;
  double width_ = 0.0;
  double height_ = 0.0;
};

}  // namespace dtmsv::mobility
