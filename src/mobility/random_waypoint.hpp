// Per-user mobility: random-waypoint movement over the campus graph.
// Each user walks shortest paths between randomly chosen waypoints at a
// personal speed, pausing at destinations — producing the "different
// trajectories" the paper simulates.
#pragma once

#include <cstddef>
#include <vector>

#include "mobility/campus_map.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace dtmsv::mobility {

/// Mobility parameters.
struct MobilityConfig {
  double min_speed_mps = 0.8;   // slow stroll
  double max_speed_mps = 2.0;   // brisk walk
  double min_pause_s = 0.0;
  double max_pause_s = 120.0;   // lingering at a destination
};

/// One user's continuous trajectory over the campus graph.
class Walker {
 public:
  /// Starts at a random position snapped near a random waypoint.
  Walker(const CampusMap& map, const MobilityConfig& config, util::Rng rng);

  /// Advances the walker by `dt` seconds (> 0).
  void advance(double dt);

  const Position& position() const { return position_; }
  double speed_mps() const { return speed_; }
  /// True while paused at a destination.
  bool paused() const { return pause_remaining_ > 0.0; }

 private:
  void choose_new_destination();

  const CampusMap* map_;
  MobilityConfig config_;
  util::Rng rng_;
  Position position_;
  double speed_ = 1.0;
  double pause_remaining_ = 0.0;
  std::vector<std::size_t> path_;  // remaining waypoints, front = next
  std::size_t current_waypoint_ = 0;
};

/// Convenience: a population of walkers advanced in lock-step.
class MobilityField {
 public:
  MobilityField(const CampusMap& map, const MobilityConfig& config,
                std::size_t user_count, util::Rng& rng);

  void advance(double dt);

  /// Replaces one walker with a freshly spawned one (a user handed over
  /// into this cell enters at a new random waypoint).
  void reseat(std::size_t user, util::Rng rng);

  std::size_t user_count() const { return walkers_.size(); }
  const Position& position_of(std::size_t user) const;
  std::vector<Position> snapshot() const;

 private:
  const CampusMap* map_;
  MobilityConfig config_;
  std::vector<Walker> walkers_;
};

}  // namespace dtmsv::mobility
