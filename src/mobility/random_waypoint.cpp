#include "mobility/random_waypoint.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dtmsv::mobility {

Walker::Walker(const CampusMap& map, const MobilityConfig& config, util::Rng rng)
    : map_(&map), config_(config), rng_(std::move(rng)) {
  DTMSV_EXPECTS(config.min_speed_mps > 0.0);
  DTMSV_EXPECTS(config.max_speed_mps >= config.min_speed_mps);
  DTMSV_EXPECTS(config.min_pause_s >= 0.0);
  DTMSV_EXPECTS(config.max_pause_s >= config.min_pause_s);

  // Spawn near a random waypoint with a small offset so users do not stack.
  current_waypoint_ = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(map.waypoint_count()) - 1));
  const Position& wp = map.waypoint(current_waypoint_).position;
  position_ = {wp.x + rng_.normal(0.0, 15.0), wp.y + rng_.normal(0.0, 15.0)};
  choose_new_destination();
}

void Walker::choose_new_destination() {
  speed_ = rng_.uniform(config_.min_speed_mps, config_.max_speed_mps);
  const auto n = static_cast<std::int64_t>(map_->waypoint_count());
  for (int attempt = 0; attempt < 8; ++attempt) {
    const auto dest = static_cast<std::size_t>(rng_.uniform_int(0, n - 1));
    if (dest == current_waypoint_) {
      continue;
    }
    auto path = map_->shortest_path(current_waypoint_, dest);
    if (path.size() >= 2) {
      path_.assign(path.begin() + 1, path.end());  // skip the current node
      return;
    }
  }
  // Degenerate map (single node / disconnected): stay put and retry later.
  path_.clear();
  pause_remaining_ = 1.0;
}

void Walker::advance(double dt) {
  DTMSV_EXPECTS(dt > 0.0);
  double remaining = dt;
  while (remaining > 0.0) {
    if (pause_remaining_ > 0.0) {
      const double pause = std::min(pause_remaining_, remaining);
      pause_remaining_ -= pause;
      remaining -= pause;
      continue;
    }
    if (path_.empty()) {
      choose_new_destination();
      if (path_.empty()) {
        return;  // nowhere to go this tick
      }
      continue;
    }
    const Position target = map_->waypoint(path_.front()).position;
    const double dist_to_target = distance(position_, target);
    const double step = speed_ * remaining;
    if (step < dist_to_target) {
      const double frac = step / dist_to_target;
      position_.x += (target.x - position_.x) * frac;
      position_.y += (target.y - position_.y) * frac;
      return;
    }
    // Reached the waypoint; consume the travel time and continue.
    remaining -= dist_to_target / speed_;
    position_ = target;
    current_waypoint_ = path_.front();
    path_.erase(path_.begin());
    if (path_.empty()) {
      pause_remaining_ = rng_.uniform(config_.min_pause_s, config_.max_pause_s);
    }
  }
}

MobilityField::MobilityField(const CampusMap& map, const MobilityConfig& config,
                             std::size_t user_count, util::Rng& rng)
    : map_(&map), config_(config) {
  DTMSV_EXPECTS(user_count > 0);
  walkers_.reserve(user_count);
  for (std::size_t i = 0; i < user_count; ++i) {
    walkers_.emplace_back(map, config, rng.fork(i));
  }
}

void MobilityField::reseat(std::size_t user, util::Rng rng) {
  DTMSV_EXPECTS(user < walkers_.size());
  walkers_[user] = Walker(*map_, config_, std::move(rng));
}

void MobilityField::advance(double dt) {
  for (auto& w : walkers_) {
    w.advance(dt);
  }
}

const Position& MobilityField::position_of(std::size_t user) const {
  DTMSV_EXPECTS(user < walkers_.size());
  return walkers_[user].position();
}

std::vector<Position> MobilityField::snapshot() const {
  std::vector<Position> out;
  out.reserve(walkers_.size());
  for (const auto& w : walkers_) {
    out.push_back(w.position());
  }
  return out;
}

}  // namespace dtmsv::mobility
