// The paper's first pipeline stage: "we first utilize a one-dimensional
// convolution neural network (1D-CNN) to compress the time-series UDTs'
// data." Trained online as an autoencoder (reconstruction MSE) over the
// users' feature windows; the bottleneck embedding feeds clustering.
//
// The interval path feeds it twin::WindowBatch views straight out of the
// columnar extraction arena — one flat float matrix end to end, no
// per-user window vectors. The nested-vector overloads are convenience
// copies for out-of-tree callers and tests.
#pragma once

#include <memory>
#include <vector>

#include "clustering/kmeans.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "twin/arena.hpp"
#include "util/rng.hpp"

namespace dtmsv::core {

/// Compressor hyperparameters.
struct CompressorConfig {
  std::size_t channels = 11;      // twin::UserDigitalTwin::kFeatureChannels
  std::size_t timesteps = 32;     // resampled window length
  std::size_t embedding_dim = 8;  // bottleneck width
  std::size_t conv1_filters = 16;
  std::size_t conv2_filters = 32;
  std::size_t decoder_hidden = 64;
  double learning_rate = 1e-3;
  std::size_t epochs_per_fit = 2;
  std::size_t batch_size = 32;
};

/// 1D-CNN autoencoder with an encoder bottleneck used as user embedding.
class FeatureCompressor {
 public:
  FeatureCompressor(const CompressorConfig& config, std::uint64_t seed);

  /// One online training pass: `windows` holds one channels*timesteps row
  /// per user. Returns the mean reconstruction loss of the final epoch.
  /// Requires at least one window.
  float fit(const twin::WindowBatch& windows);

  /// Embeds feature windows into the bottleneck space (no training).
  clustering::Points embed(const twin::WindowBatch& windows);

  /// Mean reconstruction MSE of the given windows under the current model.
  float reconstruction_loss(const twin::WindowBatch& windows);

  /// Convenience copies of the batch entry points (flatten one vector per
  /// user into a staging buffer first; the interval path never does this).
  float fit(const std::vector<std::vector<float>>& windows);
  clustering::Points embed(const std::vector<std::vector<float>>& windows);
  float reconstruction_loss(const std::vector<std::vector<float>>& windows);

  const CompressorConfig& config() const { return config_; }
  std::size_t input_size() const { return config_.channels * config_.timesteps; }
  nn::Sequential& encoder() { return *encoder_; }
  nn::Sequential& decoder() { return *decoder_; }

 private:
  /// Gathers windows.row(indices[begin..end)) (or rows begin..end when
  /// indices is null) into the reused batch_ tensor — one copy, no
  /// per-window allocations.
  nn::Tensor& gather_batch(const twin::WindowBatch& windows,
                           const std::size_t* indices, std::size_t begin,
                           std::size_t end);
  /// Copies a nested-vector window set into the flat staging buffer and
  /// wraps it as a batch view (validating row sizes).
  twin::WindowBatch stage_windows(const std::vector<std::vector<float>>& windows);

  CompressorConfig config_;
  util::Rng rng_;
  std::unique_ptr<nn::Sequential> encoder_;  // [N,C,T] -> [N,emb]
  std::unique_ptr<nn::Sequential> decoder_;  // [N,emb] -> [N,C*T]
  std::unique_ptr<nn::Adam> optimizer_;
  nn::Tensor batch_;  // reused [N,C,T] staging buffer for fit/embed
  std::vector<float> staging_;  // legacy-overload flattening buffer
};

}  // namespace dtmsv::core
