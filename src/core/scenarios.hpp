// Scenario library: named multi-cell workloads over core::SimulationFleet.
// Each scenario is a deterministic schedule of fleet events layered on a
// shared smoke-friendly base configuration, so the same workload runs as a
// ctest smoke case (dozens of users) or a macro-bench (10k users/16 cells)
// purely by scaling total_users/cell_count.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/fleet.hpp"

namespace dtmsv::core {

/// The four canonical workloads.
enum class ScenarioKind {
  kSteadyState,    // stationary population, tastes and catalog
  kFlashCrowd,     // mid-run user surge into one cell
  kMobilityChurn,  // users handed over between cells every interval
  kCatalogDrift,   // per-interval taste drift + popularity decay stress
};

inline constexpr std::size_t kScenarioKindCount = 4;

/// All scenario kinds, in enum order.
const std::array<ScenarioKind, kScenarioKindCount>& all_scenarios();

/// Scenario name ("steady_state", "flash_crowd", ...).
std::string to_string(ScenarioKind kind);

/// A fully specified scenario run.
struct ScenarioConfig {
  ScenarioKind kind = ScenarioKind::kSteadyState;
  std::size_t total_users = 480;
  std::size_t cell_count = 4;
  std::size_t intervals = 6;
  std::uint64_t seed = 42;

  // Flash crowd: `surge_fraction` of total_users arrive in `surge_cell`
  // at the start of interval `surge_interval`.
  std::size_t surge_interval = 2;
  std::size_t surge_cell = 0;
  double surge_fraction = 0.5;

  // Mobility churn: fraction of users handed over before each interval
  // (after the first, so cold twins exist to disturb).
  double churn_fraction = 0.08;

  // Catalog drift: per-interval taste drift rate and the aggressive
  // popularity forgetting that stresses recommendation stability.
  double drift_rate = 0.25;
  double drift_popularity_forgetting = 0.45;

  /// Per-cell scheme; make_scenario() fills a smoke-friendly base and the
  /// kind-specific knobs, callers may tweak afterwards.
  SchemeConfig base{};
};

/// Builds the canonical configuration of `kind` at the requested scale.
ScenarioConfig make_scenario(ScenarioKind kind, std::size_t total_users,
                             std::size_t cell_count, std::uint64_t seed = 42);

/// Outcome of a scenario run.
struct ScenarioResult {
  ScenarioKind kind = ScenarioKind::kSteadyState;
  std::vector<FleetReport> reports;
  std::size_t peak_users = 0;
  std::size_t handovers = 0;  // mobility churn only
  /// Paper metric (1 − MAPE, floored at 0) on fleet radio totals over the
  /// intervals that had predictions; 0 when none did.
  double radio_accuracy = 0.0;
  /// Volume-weighted accuracy on fleet compute totals (robust to bursty
  /// per-interval transcode loads).
  double compute_accuracy = 0.0;
};

/// Runs the scenario start to finish on a fresh fleet. When `sink` is
/// non-null it observes the full report stream (per-group, per-shard
/// interval, and churn handover events) in deterministic order while the
/// scenario executes — consumers aggregate on the fly instead of walking
/// `ScenarioResult::reports` afterwards.
ScenarioResult run_scenario(const ScenarioConfig& config,
                            ReportSink* sink = nullptr);

}  // namespace dtmsv::core
