#include "core/fleet.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace dtmsv::core {

namespace {

/// Shard seed derived from the fleet seed and the shard's creation index:
/// a pure function of the pair, so shard streams never depend on thread
/// count or on when surge shards join.
std::uint64_t shard_seed(std::uint64_t fleet_seed, std::uint64_t seq) {
  util::SplitMix64 sm(fleet_seed ^ (0xD1B54A32D192ED03ULL * (seq + 1)));
  return sm.next();
}

}  // namespace

SimulationFleet::SimulationFleet(const FleetConfig& config)
    : config_(config),
      churn_rng_(util::SplitMix64(config.seed ^ 0xF1EE7C0DEULL).next()) {
  DTMSV_EXPECTS(config.cell_count > 0);
  DTMSV_EXPECTS_MSG(config.total_users >= config.cell_count,
                    "SimulationFleet: every cell needs at least one user");
  shards_.reserve(config.cell_count);
  const std::size_t per_cell = config.total_users / config.cell_count;
  const std::size_t extra = config.total_users % config.cell_count;
  for (std::size_t c = 0; c < config.cell_count; ++c) {
    add_shard(c, per_cell + (c < extra ? 1 : 0));
  }
}

void SimulationFleet::add_shard(std::size_t cell, std::size_t users) {
  DTMSV_EXPECTS(cell < config_.cell_count);
  DTMSV_EXPECTS(users > 0);
  SchemeConfig cfg = config_.base;
  cfg.user_count = users;
  cfg.seed = shard_seed(config_.seed, shard_seq_++);
  Shard shard;
  shard.cell = cell;
  shard.sim = std::make_unique<Simulation>(cfg);
  shards_.push_back(std::move(shard));
}

void SimulationFleet::add_surge_shard(std::size_t cell, std::size_t users) {
  add_shard(cell, users);
}

std::size_t SimulationFleet::user_count() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    total += s.sim->config().user_count;
  }
  return total;
}

Simulation& SimulationFleet::shard(std::size_t i) {
  DTMSV_EXPECTS(i < shards_.size());
  return *shards_[i].sim;
}

const Simulation& SimulationFleet::shard(std::size_t i) const {
  DTMSV_EXPECTS(i < shards_.size());
  return *shards_[i].sim;
}

std::size_t SimulationFleet::shard_cell(std::size_t i) const {
  DTMSV_EXPECTS(i < shards_.size());
  return shards_[i].cell;
}

FleetReport SimulationFleet::run_interval() {
  FleetReport report;
  report.interval = interval_;
  report.cell_count = config_.cell_count;
  report.shards.resize(shards_.size());
  std::vector<util::RunningStats> group_err(shards_.size());

  // Parallel phase: each worker owns a disjoint shard range, writes only
  // its shards' slots, and any parallel_for a shard's pipeline issues runs
  // inline on that worker (the pool is reentrancy-safe but not nested-
  // parallel). No cross-shard state is touched.
  util::parallel_for(0, shards_.size(), 1,
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t s = lo; s < hi; ++s) {
                         report.shards[s] = shards_[s].sim->run_interval();
                         for (const auto& g : report.shards[s].groups) {
                           if (g.actual_radio_hz > 0.0) {
                             group_err[s].add(
                                 std::abs(g.predicted_radio_hz - g.actual_radio_hz) /
                                 g.actual_radio_hz);
                           }
                         }
                       }
                     });

  // Aggregation walks shards in fixed index order — never completion
  // order — so the report is independent of scheduling and thread count.
  report.shard_cell.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const EpochReport& r = report.shards[s];
    report.shard_cell.push_back(shards_[s].cell);
    report.user_count += shards_[s].sim->config().user_count;
    report.predicted_radio_hz_total += r.predicted_radio_hz_total;
    report.actual_radio_hz_total += r.actual_radio_hz_total;
    report.predicted_compute_total += r.predicted_compute_total;
    report.actual_compute_total += r.actual_compute_total;
    report.unicast_radio_hz_total += r.unicast_radio_hz_total;
    if (r.grouped) {
      ++report.grouped_shards;
    }
    if (r.has_prediction) {
      report.shard_radio_error.add(r.radio_error);
      report.shard_compute_error.add(r.compute_error);
    }
    report.group_radio_error.merge(group_err[s]);
  }
  if (report.actual_radio_hz_total > 0.0) {
    report.radio_error =
        std::abs(report.predicted_radio_hz_total - report.actual_radio_hz_total) /
        report.actual_radio_hz_total;
  }
  if (report.actual_compute_total > 0.0) {
    report.compute_error =
        std::abs(report.predicted_compute_total - report.actual_compute_total) /
        report.actual_compute_total;
  }

  ++interval_;
  return report;
}

std::vector<FleetReport> SimulationFleet::run(std::size_t n) {
  std::vector<FleetReport> reports;
  reports.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    reports.push_back(run_interval());
  }
  return reports;
}

std::size_t SimulationFleet::churn(double fraction) {
  DTMSV_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  if (shards_.size() < 2) {
    return 0;
  }
  const auto pairs = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(user_count()) * 0.5));
  std::size_t handed_over = 0;
  std::vector<std::size_t> peers;  // shards in a different cell than a's
  for (std::size_t p = 0; p < pairs; ++p) {
    const auto a = static_cast<std::size_t>(churn_rng_.uniform_int(
        0, static_cast<std::int64_t>(shards_.size()) - 1));
    // Handovers are strictly inter-cell: the peer must live in a different
    // cell, not merely be a different shard (a surge shard shares its cell
    // with the base shard it joined).
    peers.clear();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s].cell != shards_[a].cell) {
        peers.push_back(s);
      }
    }
    if (peers.empty()) {
      return handed_over;  // single-cell fleet: nowhere to hand over to
    }
    const std::size_t b = peers[static_cast<std::size_t>(churn_rng_.uniform_int(
        0, static_cast<std::int64_t>(peers.size()) - 1))];
    const auto slot_a = static_cast<std::size_t>(churn_rng_.uniform_int(
        0, static_cast<std::int64_t>(shards_[a].sim->config().user_count) - 1));
    const auto slot_b = static_cast<std::size_t>(churn_rng_.uniform_int(
        0, static_cast<std::int64_t>(shards_[b].sim->config().user_count) - 1));
    const behavior::PreferenceVector aff_a =
        shards_[a].sim->true_affinities()[slot_a];
    const behavior::PreferenceVector aff_b =
        shards_[b].sim->true_affinities()[slot_b];
    shards_[a].sim->handover_user(slot_a, aff_b);
    shards_[b].sim->handover_user(slot_b, aff_a);
    handed_over += 2;
  }
  return handed_over;
}

}  // namespace dtmsv::core
