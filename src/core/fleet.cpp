#include "core/fleet.hpp"

#include <cmath>
#include <optional>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace dtmsv::core {

namespace {

/// Shard seed derived from the fleet seed and the shard's creation index:
/// a pure function of the pair, so shard streams never depend on thread
/// count or on when surge shards join.
std::uint64_t shard_seed(std::uint64_t fleet_seed, std::uint64_t seq) {
  util::SplitMix64 sm(fleet_seed ^ (0xD1B54A32D192ED03ULL * (seq + 1)));
  return sm.next();
}

/// Per-shard streaming accumulator used in the parallel phase. Reduces the
/// shard's interval to the ShardSummary scalars and the per-group error
/// distribution on the fly; only when a caller sink is attached does it
/// additionally buffer the stream for the deterministic fixed-order replay
/// after the barrier.
class ShardAccumulator final : public ReportSink {
 public:
  void enable_buffering() { buffering_ = true; }

  void on_group(const GroupReport& group, util::IntervalId interval) override {
    if (group.actual_radio_hz > 0.0) {
      group_error.add(std::abs(group.predicted_radio_hz - group.actual_radio_hz) /
                      group.actual_radio_hz);
    }
    if (buffering_) {
      buffered_groups_.push_back(group);
      buffered_group_intervals_.push_back(interval);
    }
  }

  void on_interval(const EpochReport& report) override {
    summary.grouped = report.grouped;
    summary.has_prediction = report.has_prediction;
    summary.k = report.k;
    summary.silhouette = report.silhouette;
    summary.predicted_radio_hz_total = report.predicted_radio_hz_total;
    summary.actual_radio_hz_total = report.actual_radio_hz_total;
    summary.predicted_compute_total = report.predicted_compute_total;
    summary.actual_compute_total = report.actual_compute_total;
    summary.unicast_radio_hz_total = report.unicast_radio_hz_total;
    summary.radio_error = report.radio_error;
    summary.compute_error = report.compute_error;
    if (buffering_) {
      buffered_interval_ = report;  // `groups` already empty in streaming mode
    }
  }

  /// Replays the buffered stream into the caller's sink (fixed shard order).
  void replay(ReportSink& sink) const {
    for (std::size_t i = 0; i < buffered_groups_.size(); ++i) {
      sink.on_group(buffered_groups_[i], buffered_group_intervals_[i]);
    }
    if (buffered_interval_.has_value()) {
      sink.on_interval(*buffered_interval_);
    }
  }

  ShardSummary summary;
  util::RunningStats group_error;

 private:
  bool buffering_ = false;
  std::vector<GroupReport> buffered_groups_;
  std::vector<util::IntervalId> buffered_group_intervals_;
  std::optional<EpochReport> buffered_interval_;
};

}  // namespace

void validate(const FleetConfig& config) {
  DTMSV_EXPECTS_MSG(config.cell_count > 0, "FleetConfig: cell_count must be > 0");
  DTMSV_EXPECTS_MSG(config.total_users >= config.cell_count,
                    "FleetConfig: every cell needs at least one user");
  validate(config.base);
}

SimulationFleet::SimulationFleet(const FleetConfig& config)
    : config_((validate(config), config)),
      churn_rng_(util::SplitMix64(config.seed ^ 0xF1EE7C0DEULL).next()) {
  shards_.reserve(config.cell_count);
  const std::size_t per_cell = config.total_users / config.cell_count;
  const std::size_t extra = config.total_users % config.cell_count;
  for (std::size_t c = 0; c < config.cell_count; ++c) {
    add_shard(c, per_cell + (c < extra ? 1 : 0));
  }
}

void SimulationFleet::add_shard(std::size_t cell, std::size_t users) {
  DTMSV_EXPECTS(cell < config_.cell_count);
  DTMSV_EXPECTS(users > 0);
  SchemeConfig cfg = config_.base;
  cfg.user_count = users;
  cfg.seed = shard_seed(config_.seed, shard_seq_++);
  Shard shard;
  shard.cell = cell;
  shard.sim = std::make_unique<Simulation>(cfg);
  shards_.push_back(std::move(shard));
}

void SimulationFleet::add_surge_shard(std::size_t cell, std::size_t users) {
  add_shard(cell, users);
}

std::size_t SimulationFleet::user_count() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    total += s.sim->config().user_count;
  }
  return total;
}

Simulation& SimulationFleet::shard(std::size_t i) {
  DTMSV_EXPECTS(i < shards_.size());
  return *shards_[i].sim;
}

const Simulation& SimulationFleet::shard(std::size_t i) const {
  DTMSV_EXPECTS(i < shards_.size());
  return *shards_[i].sim;
}

std::size_t SimulationFleet::shard_cell(std::size_t i) const {
  DTMSV_EXPECTS(i < shards_.size());
  return shards_[i].cell;
}

FleetReport SimulationFleet::run_interval(ReportSink* sink) {
  FleetReport report;
  report.interval = interval_;
  report.cell_count = config_.cell_count;
  std::vector<ShardAccumulator> accumulators(shards_.size());
  if (sink != nullptr) {
    for (auto& acc : accumulators) {
      acc.enable_buffering();
    }
  }

  // Parallel phase: each worker owns a disjoint shard range, streams its
  // shards' reports into their private accumulators, and any parallel_for a
  // shard's pipeline issues runs inline on that worker (the pool is
  // reentrancy-safe but not nested-parallel). No cross-shard state is
  // touched; nothing is materialized beyond the per-shard scalars.
  util::parallel_for(0, shards_.size(), 1,
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t s = lo; s < hi; ++s) {
                         shards_[s].sim->run_interval(accumulators[s]);
                       }
                     });

  // Aggregation walks shards in fixed index order — never completion
  // order — so the report (and any sink replay) is independent of
  // scheduling and thread count.
  report.shards.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardAccumulator& acc = accumulators[s];
    acc.summary.cell = shards_[s].cell;
    acc.summary.users = shards_[s].sim->config().user_count;
    const ShardSummary& summary = acc.summary;
    report.user_count += summary.users;
    report.predicted_radio_hz_total += summary.predicted_radio_hz_total;
    report.actual_radio_hz_total += summary.actual_radio_hz_total;
    report.predicted_compute_total += summary.predicted_compute_total;
    report.actual_compute_total += summary.actual_compute_total;
    report.unicast_radio_hz_total += summary.unicast_radio_hz_total;
    if (summary.grouped) {
      ++report.grouped_shards;
    }
    if (summary.has_prediction) {
      report.shard_radio_error.add(summary.radio_error);
      report.shard_compute_error.add(summary.compute_error);
    }
    report.group_radio_error.merge(acc.group_error);
    if (sink != nullptr) {
      acc.replay(*sink);
    }
    report.shards.push_back(summary);
  }
  if (report.actual_radio_hz_total > 0.0) {
    report.radio_error =
        std::abs(report.predicted_radio_hz_total - report.actual_radio_hz_total) /
        report.actual_radio_hz_total;
  }
  if (report.actual_compute_total > 0.0) {
    report.compute_error =
        std::abs(report.predicted_compute_total - report.actual_compute_total) /
        report.actual_compute_total;
  }

  ++interval_;
  return report;
}

std::vector<FleetReport> SimulationFleet::run(std::size_t n) {
  std::vector<FleetReport> reports;
  reports.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    reports.push_back(run_interval());
  }
  return reports;
}

std::size_t SimulationFleet::churn(double fraction, ReportSink* sink) {
  DTMSV_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  if (shards_.size() < 2) {
    return 0;
  }
  const auto pairs = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(user_count()) * 0.5));
  std::size_t handed_over = 0;
  std::vector<std::size_t> peers;  // shards in a different cell than a's
  for (std::size_t p = 0; p < pairs; ++p) {
    const auto a = static_cast<std::size_t>(churn_rng_.uniform_int(
        0, static_cast<std::int64_t>(shards_.size()) - 1));
    // Handovers are strictly inter-cell: the peer must live in a different
    // cell, not merely be a different shard (a surge shard shares its cell
    // with the base shard it joined).
    peers.clear();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s].cell != shards_[a].cell) {
        peers.push_back(s);
      }
    }
    if (peers.empty()) {
      return handed_over;  // single-cell fleet: nowhere to hand over to
    }
    const std::size_t b = peers[static_cast<std::size_t>(churn_rng_.uniform_int(
        0, static_cast<std::int64_t>(peers.size()) - 1))];
    const auto slot_a = static_cast<std::size_t>(churn_rng_.uniform_int(
        0, static_cast<std::int64_t>(shards_[a].sim->config().user_count) - 1));
    const auto slot_b = static_cast<std::size_t>(churn_rng_.uniform_int(
        0, static_cast<std::int64_t>(shards_[b].sim->config().user_count) - 1));
    const behavior::PreferenceVector aff_a =
        shards_[a].sim->true_affinities()[slot_a];
    const behavior::PreferenceVector aff_b =
        shards_[b].sim->true_affinities()[slot_b];
    shards_[a].sim->handover_user(slot_a, aff_b);
    shards_[b].sim->handover_user(slot_b, aff_a);
    handed_over += 2;
    if (sink != nullptr) {
      HandoverEvent event;
      event.interval = interval_;
      event.shard_a = a;
      event.shard_b = b;
      event.slot_a = slot_a;
      event.slot_b = slot_b;
      sink->on_handover(event);
    }
  }
  return handed_over;
}

}  // namespace dtmsv::core
