#include "core/group_constructor.hpp"

#include <algorithm>
#include <cmath>

#include "clustering/metrics.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace dtmsv::core {

std::size_t GroupConstructor::state_dimension(const GroupConstructorConfig& config) {
  // histogram bins + [mean dist, std dist, log-size, prev-K norm].
  return config.distance_histogram_bins + 4;
}

GroupConstructor::GroupConstructor(const GroupConstructorConfig& config,
                                   std::uint64_t seed)
    : config_(config) {
  DTMSV_EXPECTS(config.k_min >= 1);
  DTMSV_EXPECTS(config.k_max >= config.k_min);
  DTMSV_EXPECTS(config.distance_histogram_bins >= 4);

  rl::DdqnConfig ddqn = config.ddqn;
  ddqn.state_dim = state_dimension(config);
  ddqn.action_count = config.k_max - config.k_min + 1;
  agent_ = std::make_unique<rl::DdqnAgent>(ddqn, seed);
  previous_k_ = config.k_min;
}

std::vector<float> GroupConstructor::encode_state(const clustering::Points& embeddings,
                                                  std::size_t previous_k) const {
  DTMSV_EXPECTS(!embeddings.empty());
  const std::size_t n = embeddings.size();

  // Pairwise-distance sample (cap the O(n²) work at ~2000 pairs by striding).
  util::RunningStats dist_stats;
  std::vector<double> distances;
  const std::size_t total_pairs = n * (n - 1) / 2;
  const std::size_t stride = std::max<std::size_t>(1, total_pairs / 2000);
  std::size_t pair_index = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (pair_index++ % stride != 0) {
        continue;
      }
      const double d = clustering::distance(embeddings[i], embeddings[j]);
      distances.push_back(d);
      dist_stats.add(d);
    }
  }

  const double max_d = dist_stats.empty() ? 1.0 : std::max(dist_stats.max(), 1e-9);
  util::Histogram hist(0.0, max_d, config_.distance_histogram_bins);
  for (const double d : distances) {
    hist.add(d);
  }

  std::vector<float> state;
  state.reserve(state_dimension(config_));
  for (const double density : hist.densities()) {
    state.push_back(static_cast<float>(density));
  }
  state.push_back(
      static_cast<float>(dist_stats.empty() ? 0.0 : dist_stats.mean() / max_d));
  state.push_back(
      static_cast<float>(dist_stats.empty() ? 0.0 : dist_stats.stddev() / max_d));
  state.push_back(static_cast<float>(std::log1p(static_cast<double>(n)) / 8.0));
  const double k_span = std::max<double>(1.0, static_cast<double>(config_.k_max - config_.k_min));
  state.push_back(static_cast<float>(
      static_cast<double>(previous_k - std::min(previous_k, config_.k_min)) / k_span));
  return state;
}

void GroupConstructor::report_outcome(double prediction_error) {
  DTMSV_EXPECTS(prediction_error >= 0.0);
  last_reported_error_ = std::min(prediction_error, 2.0);
}

GroupingDecision GroupConstructor::construct(const clustering::Points& embeddings,
                                             util::Rng& rng) {
  DTMSV_EXPECTS_MSG(!embeddings.empty(), "GroupConstructor: no users to cluster");

  const std::vector<float> state = encode_state(embeddings, previous_k_);

  // Close out the previous decision now that its next-state (and the demand
  // error reported for its interval) are known.
  if (pending_) {
    const double reward = config_.silhouette_weight * pending_->silhouette -
                          config_.k_cost_weight * pending_->k_norm -
                          config_.error_weight * last_reported_error_;
    agent_->observe({pending_->state, pending_->action, static_cast<float>(reward),
                     state, /*done=*/false});
    for (std::size_t i = 0; i < config_.train_steps_per_interval; ++i) {
      agent_->train_step();
    }
  }

  GroupingDecision decision;
  decision.epsilon = agent_->current_epsilon();
  const std::size_t action = agent_->act(state);
  decision.explored = agent_->replay_size() < agent_->config().min_replay_before_train;

  std::size_t k = config_.k_min + action;
  k = std::clamp<std::size_t>(k, 1, embeddings.size());
  decision.k = k;

  const auto result = clustering::k_means(embeddings, k, rng, config_.kmeans);
  decision.assignment = result.assignment;
  decision.centroids = result.centroids;
  // Sampled silhouette keeps the per-interval reward O(n) beyond ~2k
  // users; below the cap it is exact and consumes no rng draws.
  decision.silhouette = clustering::silhouette_sampled(
      embeddings, result.assignment, config_.silhouette_sample_cap, rng);

  const double k_span =
      std::max<double>(1.0, static_cast<double>(config_.k_max - config_.k_min));
  pending_ = Pending{state, action, decision.silhouette,
                     static_cast<double>(k - std::min(k, config_.k_min)) / k_span};
  previous_k_ = k;
  last_reported_error_ = 0.0;  // consumed; next interval reports anew
  return decision;
}

}  // namespace dtmsv::core
