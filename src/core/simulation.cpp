#include "core/simulation.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <istream>
#include <ostream>

#include "util/error.hpp"

namespace dtmsv::core {

namespace {

/// Monotonic seconds for the stage-timing breakdown.
double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void validate(const SchemeConfig& config) {
  DTMSV_EXPECTS_MSG(config.user_count > 0, "SchemeConfig: user_count must be > 0");
  DTMSV_EXPECTS_MSG(config.interval_s > 0.0, "SchemeConfig: interval_s must be > 0");
  DTMSV_EXPECTS_MSG(config.tick_s > 0.0, "SchemeConfig: tick_s must be > 0");
  DTMSV_EXPECTS_MSG(config.tick_s <= config.interval_s,
                    "SchemeConfig: interval_s must be >= tick_s");
  DTMSV_EXPECTS_MSG(config.feature_window_s > 0.0,
                    "SchemeConfig: feature_window_s must be > 0");
  DTMSV_EXPECTS_MSG(config.feature_timesteps >= 8,
                    "SchemeConfig: feature_timesteps must be >= 8");
  DTMSV_EXPECTS_MSG(config.swiping_bins >= 2,
                    "SchemeConfig: swiping_bins must be >= 2");
  DTMSV_EXPECTS_MSG(
      config.swiping_forgetting > 0.0 && config.swiping_forgetting <= 1.0,
      "SchemeConfig: swiping_forgetting must be in (0, 1]");
  DTMSV_EXPECTS_MSG(
      config.popularity_forgetting > 0.0 && config.popularity_forgetting <= 1.0,
      "SchemeConfig: popularity_forgetting must be in (0, 1]");
  DTMSV_EXPECTS_MSG(
      config.affinity_drift_rate >= 0.0 && config.affinity_drift_rate <= 1.0,
      "SchemeConfig: affinity_drift_rate must be in [0, 1]");
  DTMSV_EXPECTS_MSG(config.grouping.k_min >= 1,
                    "SchemeConfig: grouping.k_min must be >= 1");
  DTMSV_EXPECTS_MSG(config.grouping.k_min <= config.grouping.k_max,
                    "SchemeConfig: grouping.k_min must be <= k_max");
  DTMSV_EXPECTS_MSG(config.demand.interval_s > 0.0,
                    "SchemeConfig: demand.interval_s must be > 0");
}

Simulation::Simulation(const SchemeConfig& config)
    : config_(config),
      rng_((validate(config), config.seed)),
      campus_(mobility::CampusMap::waterloo_campus()),
      catalog_(video::Catalog::generate(config.session.engagement.catalog, rng_)),
      content_(predict::ContentStats::from_catalog(catalog_)),
      popularity_(config.popularity_forgetting),
      phy_(config.demand.efficiency_floor),
      playback_rng_(0),
      cluster_rng_(0),
      drift_rng_(0),
      handover_rng_(0) {
  util::Rng fork_source = rng_.fork(1);
  mobility_ = std::make_unique<mobility::MobilityField>(
      campus_, config.mobility, config.user_count, fork_source);
  util::Rng channel_rng = rng_.fork(2);
  channel_ = std::make_unique<wireless::ChannelModel>(campus_, config.radio,
                                                      config.user_count, channel_rng);
  twins_ = std::make_unique<twin::TwinStore>(config.user_count);
  collector_ = std::make_unique<twin::StatusCollector>(config.collection,
                                                       config.user_count, rng_.fork(3));

  affinities_.reserve(config.user_count);
  util::Rng affinity_rng = rng_.fork(4);
  for (std::size_t u = 0; u < config.user_count; ++u) {
    affinities_.push_back(
        behavior::sample_affinity(config.affinity_concentration, affinity_rng));
  }

  warmup_sessions_.reserve(config.user_count);
  util::Rng session_rng = rng_.fork(5);
  for (std::size_t u = 0; u < config.user_count; ++u) {
    warmup_sessions_.emplace_back(u, catalog_, config.session, affinities_[u],
                                  session_rng.fork(u));
  }

  // Stage construction order is part of the reproducible RNG schedule: the
  // feature stage may draw from rng_.fork(6), the grouping stage from
  // rng_.fork(7) (see StageRegistry docs).
  const StageRegistry& registry = StageRegistry::instance();
  feature_stage_ = registry.make_feature(feature_stage_key(config_), config_, rng_);
  grouping_stage_ = registry.make_grouping(grouping_stage_key(config_), config_, rng_);
  demand_stage_ = registry.make_demand(demand_stage_key(config_), config_, rng_);
  playback_rng_ = rng_.fork(8);
  cluster_rng_ = rng_.fork(9);
  drift_rng_ = rng_.fork(10);
  handover_rng_ = rng_.fork(11);
}

Simulation::~Simulation() = default;

const twin::CollectorStats& Simulation::collector_stats() const {
  return collector_->stats();
}

namespace {

[[noreturn]] void throw_group_out_of_range(const char* accessor, std::size_t g,
                                           std::size_t count) {
  throw util::RuntimeError(std::string(accessor) + ": group index " +
                           std::to_string(g) + " out of range (" +
                           std::to_string(count) + " active groups)");
}

}  // namespace

const std::vector<std::size_t>& Simulation::group_members(std::size_t g) const {
  if (g >= groups_.size()) {
    throw_group_out_of_range("group_members", g, groups_.size());
  }
  return groups_[g].members;
}

const analysis::SwipingDistribution& Simulation::group_swiping(std::size_t g) const {
  if (g >= groups_.size()) {
    throw_group_out_of_range("group_swiping", g, groups_.size());
  }
  return groups_[g].swiping;
}

const behavior::PreferenceVector& Simulation::group_preference(std::size_t g) const {
  if (g >= groups_.size()) {
    throw_group_out_of_range("group_preference", g, groups_.size());
  }
  return groups_[g].preference;
}

const analysis::Recommendation& Simulation::group_recommendation(std::size_t g) const {
  if (g >= groups_.size()) {
    throw_group_out_of_range("group_recommendation", g, groups_.size());
  }
  return groups_[g].recommendation;
}

std::size_t Simulation::most_preferring_group(video::Category category) const {
  if (groups_.empty()) {
    throw util::RuntimeError("most_preferring_group: no active multicast groups");
  }
  std::size_t best = 0;
  double best_weight = -1.0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const double w = groups_[g].preference[static_cast<std::size_t>(category)];
    if (w > best_weight) {
      best_weight = w;
      best = g;
    }
  }
  return best;
}

double Simulation::group_live_efficiency(const Group& g) const {
  std::vector<double> effs;
  effs.reserve(g.members.size());
  for (const std::size_t u : g.members) {
    effs.push_back(channel_->sample_of(u).efficiency_bps_hz);
  }
  return phy_.group_efficiency(effs);
}

void Simulation::start_group_video(Group& g, util::SimTime at) {
  const auto& playlist = g.recommendation.playlist;
  std::uint64_t video_id = 0;
  if (!playlist.empty()) {
    video_id = playlist[g.playlist_pos % playlist.size()];
    ++g.playlist_pos;
  } else {
    // Degenerate recommendation: fall back to a popularity sample.
    const auto cat = video::all_categories()[static_cast<std::size_t>(
        playback_rng_.uniform_int(0, static_cast<std::int64_t>(video::kCategoryCount) - 1))];
    video_id = catalog_.sample_from_category(cat, playback_rng_).id;
  }
  const video::Video& v = catalog_.video(video_id);
  g.current = &v;
  g.video_started = at;
  g.events_emitted = false;

  const double eff = group_live_efficiency(g);
  const double budget_kbps = config_.demand.group_bandwidth_budget_hz * eff / 1e3;
  g.rung = v.ladder.best_rung_within(budget_kbps);

  const auto cat_idx = static_cast<std::size_t>(v.category);
  g.member_watch_s.assign(g.members.size(), 0.0);
  double max_watch = 0.0;
  for (std::size_t i = 0; i < g.members.size(); ++i) {
    const behavior::PreferenceVector aff =
        behavior::normalized(affinities_[g.members[i]]);
    const double frac = video::sample_watch_fraction(
        aff[cat_idx], config_.session.engagement, playback_rng_);
    g.member_watch_s[i] = std::min(frac, 1.0) * v.duration_s;
    max_watch = std::max(max_watch, g.member_watch_s[i]);
  }
  // Floor the on-air window at 0.2 s, but never above the clip length:
  // std::clamp with lo > hi (a sub-0.2 s clip) is undefined behaviour.
  const double min_on_air = std::min(0.2, v.duration_s);
  g.on_air_s =
      std::clamp(max_watch + config_.demand.prefetch_s, min_on_air, v.duration_s);
  // Members planning to outlast the on-air window are truncated to it so
  // watch events never exceed what was actually transmitted.
  for (double& w : g.member_watch_s) {
    w = std::min(w, g.on_air_s);
  }
}

void Simulation::advance_group(Group& g, util::SimTime from, double dt,
                               std::vector<behavior::ViewEvent>& events) {
  double remaining = dt;
  util::SimTime t = from;
  while (remaining > 1e-9) {
    if (g.gap_remaining_s > 0.0) {
      const double consume = std::min(g.gap_remaining_s, remaining);
      g.gap_remaining_s -= consume;
      t += consume;
      remaining -= consume;
      continue;
    }
    if (g.current == nullptr) {
      start_group_video(g, t);
    }
    const double elapsed = t - g.video_started;
    const double left_on_air = g.on_air_s - elapsed;
    if (left_on_air <= 1e-9) {
      // Video leaves the air: emit each member's watch event.
      for (std::size_t i = 0; i < g.members.size(); ++i) {
        behavior::ViewEvent ev;
        ev.user_id = g.members[i];
        ev.video_id = g.current->id;
        ev.category = g.current->category;
        ev.start_time = g.video_started;
        ev.duration_s = g.current->duration_s;
        ev.watch_seconds = g.member_watch_s[i];
        ev.watch_fraction =
            std::min(1.0, g.member_watch_s[i] / std::max(g.current->duration_s, 1e-9));
        ev.completed = g.member_watch_s[i] >= g.current->duration_s - 1e-9;
        events.push_back(ev);
      }
      ++g.videos_played;
      g.current = nullptr;
      g.gap_remaining_s = config_.demand.swipe_gap_s;
      continue;
    }

    const double step = std::min(left_on_air, remaining);
    const double eff = group_live_efficiency(g);
    const double bitrate_bps = g.current->ladder.kbps(g.rung) * 1e3;
    const double bits = bitrate_bps * step;
    g.bits += bits;
    g.hz_seconds += bits / eff;
    if (g.rung + 1 < g.current->ladder.rung_count()) {
      g.compute_cycles += config_.demand.transcode.cycles_per_bit * bits;
    }
    g.efficiency_time_integral += eff * step;
    g.on_air_time += step;

    // Unicast counterfactual: each member still watching would receive a
    // private stream link-adapted to their own channel.
    for (std::size_t i = 0; i < g.members.size(); ++i) {
      if (elapsed >= g.member_watch_s[i]) {
        continue;  // member already swiped away
      }
      const double member_step = std::min(step, g.member_watch_s[i] - elapsed);
      const double member_eff =
          std::max(channel_->sample_of(g.members[i]).efficiency_bps_hz,
                   phy_.min_efficiency_floor());
      const double budget_kbps =
          config_.demand.group_bandwidth_budget_hz * member_eff / 1e3;
      const double member_bitrate_bps =
          g.current->ladder.kbps(g.current->ladder.best_rung_within(budget_kbps)) * 1e3;
      g.unicast_hz_seconds += member_bitrate_bps * member_step / member_eff;
    }
    t += step;
    remaining -= step;
  }
}

void Simulation::tick(std::vector<behavior::ViewEvent>& events, util::SimTime t0,
                      util::SimTime t1) {
  const double dt = t1 - t0;
  mobility_->advance(dt);
  channel_->step(mobility_->snapshot());

  if (groups_.empty()) {
    for (auto& session : warmup_sessions_) {
      session.advance(t0, dt, events);
    }
  } else {
    for (auto& g : groups_) {
      advance_group(g, t0, dt, events);
    }
  }
  now_ = t1;
  ++tick_count_;
  collector_->tick(now_, dt, *twins_, *channel_, *mobility_, events);
  for (const auto& ev : events) {
    popularity_.observe(ev.video_id, ev.watch_seconds);
  }
}

void Simulation::drift_affinities() {
  const double rate = std::min(config_.affinity_drift_rate, 1.0);
  for (std::size_t u = 0; u < affinities_.size(); ++u) {
    // Drift targets come from a dedicated stream: drawing them from the
    // playback stream would make toggling affinity_drift_rate perturb
    // group playback, breaking A/B comparability across scenarios.
    const behavior::PreferenceVector target =
        behavior::sample_affinity(config_.affinity_concentration, drift_rng_);
    for (std::size_t c = 0; c < affinities_[u].size(); ++c) {
      affinities_[u][c] = (1.0 - rate) * affinities_[u][c] + rate * target[c];
    }
    // A convex combination of distributions already sums to 1 up to the
    // same rounding a renormalising divide would leave, so the vector is
    // used as-is; renormalising here would perturb bits even for drift
    // nudges small enough to be absorbed entirely.
    if (groups_.empty() && u < warmup_sessions_.size()) {
      warmup_sessions_[u].set_affinity(affinities_[u]);
    }
  }
}

behavior::PreferenceVector Simulation::handover_user(
    std::size_t slot, const behavior::PreferenceVector& incoming) {
  DTMSV_EXPECTS(slot < affinities_.size());
  behavior::PreferenceVector outgoing = affinities_[slot];
  // Stored verbatim (no renormalisation): a handover between cells must be
  // an exact exchange, so fleet-level churn conserves the population
  // bitwise. Callers pass affinities that are already distributions.
  affinities_[slot] = incoming;
  // The newcomer enters the cell at a fresh waypoint with fresh large- and
  // small-scale channel state; their twin starts empty (the serving BS has
  // no history for an arriving user, so the pipeline must re-learn them).
  mobility_->reseat(slot, handover_rng_.fork(slot));
  channel_->reset_user(slot, handover_rng_);
  twins_->reset_user(slot);
  if (slot < warmup_sessions_.size()) {
    warmup_sessions_[slot].set_affinity(affinities_[slot]);
  }
  return outgoing;
}

void Simulation::rebuild_groups(const clustering::Points& points,
                                EpochReport& report) {
  const double t_group0 = wall_s();
  GroupingOutcome grouping = grouping_stage_->group(points, cluster_rng_);
  report.k = grouping.k;
  report.silhouette = grouping.silhouette;
  report.ddqn_epsilon = grouping.epsilon;
  const double t_group1 = wall_s();
  timings_.grouping_s += t_group1 - t_group0;

  groups_.clear();
  for (std::size_t g = 0; g < grouping.k; ++g) {
    Group group(config_.swiping_bins, config_.swiping_forgetting);
    for (std::size_t u = 0; u < grouping.assignment.size(); ++u) {
      if (grouping.assignment[u] == g) {
        group.members.push_back(u);
      }
    }
    if (group.members.empty()) {
      continue;  // K-means re-seeding should prevent this, but stay safe
    }

    std::vector<const twin::UserDigitalTwin*> member_twins;
    member_twins.reserve(group.members.size());
    for (const std::size_t u : group.members) {
      member_twins.push_back(&twins_->twin(u));
    }

    group.swiping =
        analysis::build_group_swiping(member_twins, now_, config_.feature_window_s,
                                      config_.swiping_bins, config_.swiping_forgetting);
    group.preference = analysis::aggregate_group_preference(member_twins);
    group.recommendation =
        analysis::recommend(catalog_, popularity_, group.preference,
                            config_.recommender);

    GroupDemandContext context;
    context.members = &member_twins;
    context.preference = &group.preference;
    context.swiping = &group.swiping;
    context.playlist_per_category = &group.recommendation.per_category_counts;
    context.content = &content_;
    context.now = now_;
    const GroupDemandForecast forecast = demand_stage_->predict(context);
    group.predicted_efficiency = forecast.efficiency;
    group.predicted = forecast.demand;
    if (config_.online_bias_correction) {
      if (radio_bias_.has_value()) {
        const double f = std::clamp(radio_bias_.value(), 0.7, 1.3);
        group.predicted.radio_hz *= f;
        group.predicted.transmitted_bits *= f;
      }
      if (compute_bias_.has_value()) {
        group.predicted.compute_cycles *=
            std::clamp(compute_bias_.value(), 0.5, 1.5);
      }
    }
    groups_.push_back(std::move(group));
  }
  timings_.demand_s += wall_s() - t_group1;
}

EpochReport Simulation::run_interval_impl(ReportSink* sink) {
  EpochReport report;
  report.interval = interval_;
  report.grouped = !groups_.empty();

  // Ticks are scheduled by integer index within the interval: accumulating
  // now_ += tick_s in floating point drifts after thousands of intervals
  // (tick counts change once the error outgrows the boundary guard), so
  // each tick's endpoints are computed from the index instead and the
  // interval lands exactly on its nominal boundary. When tick_s does not
  // divide interval_s the final tick is truncated to the boundary.
  const double t_sim0 = wall_s();
  const util::SimTime interval_start = now_;
  const util::SimTime interval_end =
      static_cast<double>(interval_ + 1) * config_.interval_s;
  const auto ticks = static_cast<std::size_t>(
      std::ceil((interval_end - interval_start) / config_.tick_s - 1e-9));
  std::vector<behavior::ViewEvent> events;
  for (std::size_t i = 0; i < ticks; ++i) {
    const util::SimTime t0 =
        interval_start + static_cast<double>(i) * config_.tick_s;
    const util::SimTime t1 =
        i + 1 == ticks
            ? interval_end
            : interval_start + static_cast<double>(i + 1) * config_.tick_s;
    events.clear();
    tick(events, t0, t1);
  }
  timings_.simulate_s += wall_s() - t_sim0;

  // Score the predictions made at the start of this interval.
  if (report.grouped) {
    report.has_prediction = true;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      const Group& grp = groups_[g];
      GroupReport gr;
      gr.group_id = g;
      gr.size = grp.members.size();
      gr.rung = grp.rung;
      gr.predicted_efficiency = grp.predicted_efficiency;
      gr.realized_efficiency =
          grp.on_air_time > 0.0 ? grp.efficiency_time_integral / grp.on_air_time : 0.0;
      gr.predicted_radio_hz = grp.predicted.radio_hz;
      gr.actual_radio_hz = grp.hz_seconds / config_.interval_s;
      gr.predicted_compute_cycles = grp.predicted.compute_cycles;
      gr.actual_compute_cycles = grp.compute_cycles;
      gr.unicast_radio_hz = grp.unicast_hz_seconds / config_.interval_s;
      gr.videos_played = grp.videos_played;

      report.predicted_radio_hz_total += gr.predicted_radio_hz;
      report.actual_radio_hz_total += gr.actual_radio_hz;
      report.predicted_compute_total += gr.predicted_compute_cycles;
      report.actual_compute_total += gr.actual_compute_cycles;
      report.unicast_radio_hz_total += gr.unicast_radio_hz;
      if (sink != nullptr) {
        sink->on_group(gr, report.interval);
      } else {
        report.groups.push_back(gr);
      }
    }
    if (report.actual_radio_hz_total > 0.0) {
      report.radio_error =
          std::abs(report.predicted_radio_hz_total - report.actual_radio_hz_total) /
          report.actual_radio_hz_total;
    }
    if (report.actual_compute_total > 0.0) {
      report.compute_error =
          std::abs(report.predicted_compute_total - report.actual_compute_total) /
          report.actual_compute_total;
    }
    // Delayed reward for learning grouping stages (no-op otherwise).
    grouping_stage_->report_outcome(report.radio_error);
    // Online residual calibration: remember how far off this interval's
    // forecast was so the next one can be rescaled.
    if (config_.online_bias_correction) {
      if (report.predicted_radio_hz_total > 0.0 && report.actual_radio_hz_total > 0.0) {
        radio_bias_.add(std::clamp(
            report.actual_radio_hz_total / report.predicted_radio_hz_total, 0.5, 2.0));
      }
      if (report.predicted_compute_total > 0.0 && report.actual_compute_total > 0.0) {
        compute_bias_.add(std::clamp(
            report.actual_compute_total / report.predicted_compute_total, 0.5, 2.0));
      }
    }
  }

  // Interval housekeeping.
  twins_->decay_preferences();
  popularity_.decay();
  if (config_.affinity_drift_rate > 0.0) {
    drift_affinities();
  }

  // Re-cluster and predict for the next interval once warm-up is over.
  if (interval_ + 1 >= static_cast<util::IntervalId>(config_.warmup_intervals)) {
    const double t_feat0 = wall_s();
    TwinSnapshot snapshot;
    snapshot.twins = twins_.get();
    snapshot.now = now_;
    snapshot.window_s = config_.feature_window_s;
    snapshot.timesteps = config_.feature_timesteps;
    snapshot.scaling =
        twin::FeatureScaling{campus_.width(), campus_.height(), 10.0, 40.0};
    snapshot.arena = &feature_arena_;
    FeatureOutput features = feature_stage_->extract(snapshot);
    report.reconstruction_loss = features.reconstruction_loss;
    timings_.feature_s += wall_s() - t_feat0;
    rebuild_groups(features.points, report);
  }

  ++interval_;
  ++timings_.intervals;
  if (sink != nullptr) {
    sink->on_interval(report);
  }
  return report;
}

EpochReport Simulation::run_interval() { return run_interval_impl(nullptr); }

void Simulation::run_interval(ReportSink& sink) { run_interval_impl(&sink); }

void Simulation::save_models(std::ostream& os) const {
  const bool feature = feature_stage_->has_learned_state();
  const bool grouping = grouping_stage_->has_learned_state();
  DTMSV_EXPECTS_MSG(feature || grouping,
                    "save_models: no learned models in this configuration");
  os << (feature ? 1 : 0) << ' ' << (grouping ? 1 : 0) << '\n';
  if (feature) {
    feature_stage_->save_state(os);
  }
  if (grouping) {
    grouping_stage_->save_state(os);
  }
}

void Simulation::load_models(std::istream& is) {
  int has_feature = 0;
  int has_grouping = 0;
  is >> has_feature >> has_grouping;
  if (!is) {
    throw util::RuntimeError("load_models: malformed header");
  }
  if ((has_feature != 0) != feature_stage_->has_learned_state() ||
      (has_grouping != 0) != grouping_stage_->has_learned_state()) {
    throw util::RuntimeError(
        "load_models: saved models do not match this configuration");
  }
  if (has_feature != 0) {
    feature_stage_->load_state(is);
  }
  if (has_grouping != 0) {
    grouping_stage_->load_state(is);
  }
}

std::vector<EpochReport> Simulation::run(std::size_t n) {
  std::vector<EpochReport> reports;
  reports.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    reports.push_back(run_interval());
  }
  return reports;
}

void Simulation::run(std::size_t n, ReportSink& sink) {
  for (std::size_t i = 0; i < n; ++i) {
    run_interval(sink);
  }
}

}  // namespace dtmsv::core
